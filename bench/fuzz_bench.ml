(* Differential-fuzzing throughput benchmark: generate a seeded corpus
   round-robin over the four shapes, run the full oracle on every
   instance, and write BENCH_fuzz.json (instances/sec overall and per
   shape, wall-time breakdown, discrepancy count).  Exits 1 on any
   discrepancy — the bench doubles as a long-running self-check — or
   when --min-rate is given and the overall throughput falls below it.

   Usage: fuzz_bench [--count N] [--seed N] [--jobs N] [--scenarios N]
                     [--min-rate R] [-o FILE] *)

let shapes = Diff.Gen.all_shapes

type shape_row = {
  mutable sr_count : int;
  mutable sr_ms : float;
  mutable sr_sup_min : int;
  mutable sr_sup_max : int;
  mutable sr_discrepant : int;
}

let () =
  let count = ref 400
  and seed = ref 42
  and jobs = ref 2
  and scenarios = ref 2
  and min_rate = ref 0.
  and out = ref "BENCH_fuzz.json" in
  let rec parse = function
    | [] -> ()
    | "--count" :: v :: rest -> count := int_of_string v; parse rest
    | "--seed" :: v :: rest -> seed := int_of_string v; parse rest
    | "--jobs" :: v :: rest -> jobs := int_of_string v; parse rest
    | "--scenarios" :: v :: rest -> scenarios := int_of_string v; parse rest
    | "--min-rate" :: v :: rest -> min_rate := float_of_string v; parse rest
    | "-o" :: v :: rest -> out := v; parse rest
    | arg :: _ ->
      Printf.eprintf "fuzz_bench: unknown argument %s\n" arg;
      exit 3
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !count <= 0 then begin
    Printf.eprintf "fuzz_bench: --count must be positive\n";
    exit 3
  end;
  let cfg =
    { Diff.Oracle.default with
      Diff.Oracle.jobs = !jobs;
      scenarios = !scenarios }
  in
  let rows =
    List.map
      (fun s ->
        ( s,
          { sr_count = 0; sr_ms = 0.; sr_sup_min = max_int; sr_sup_max = 0;
            sr_discrepant = 0 } ))
      shapes
  in
  let nshapes = List.length shapes in
  let discrepancies = ref 0 in
  let t0 = Unix.gettimeofday () in
  for index = 0 to !count - 1 do
    let shape = List.nth shapes (index mod nshapes) in
    let inst = Diff.Gen.instance ~seed:!seed ~index shape in
    let v = Diff.Oracle.run cfg inst in
    let row = List.assoc shape rows in
    row.sr_count <- row.sr_count + 1;
    row.sr_ms <- row.sr_ms +. v.Diff.Oracle.v_wall_ms;
    (match v.Diff.Oracle.v_sup with
    | Some s ->
      row.sr_sup_min <- min row.sr_sup_min s;
      row.sr_sup_max <- max row.sr_sup_max s
    | None -> ());
    if v.Diff.Oracle.v_discrepancies <> [] then begin
      row.sr_discrepant <- row.sr_discrepant + 1;
      incr discrepancies;
      List.iter
        (fun d ->
          Printf.eprintf "fuzz_bench: %s DISCREPANCY [%s] %s\n"
            v.Diff.Oracle.v_id
            (Diff.Oracle.check_name d.Diff.Oracle.d_check)
            d.Diff.Oracle.d_detail)
        v.Diff.Oracle.v_discrepancies
    end
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let rate = float_of_int !count /. wall_s in
  let shape_json (s, r) =
    Store.Json.Obj
      [ ("shape", Store.Json.String (Diff.Gen.shape_name s));
        ("instances", Store.Json.Int r.sr_count);
        ("wall_ms", Store.Json.Float r.sr_ms);
        ( "rate_per_s",
          Store.Json.Float
            (if r.sr_ms > 0. then 1000. *. float_of_int r.sr_count /. r.sr_ms
             else 0.) );
        ( "sup_min",
          if r.sr_sup_min = max_int then Store.Json.Null
          else Store.Json.Int r.sr_sup_min );
        ("sup_max", Store.Json.Int r.sr_sup_max);
        ("discrepant", Store.Json.Int r.sr_discrepant) ]
  in
  let doc =
    Store.Json.Obj
      [ ("count", Store.Json.Int !count);
        ("seed", Store.Json.Int !seed);
        ("jobs", Store.Json.Int !jobs);
        ("scenarios", Store.Json.Int !scenarios);
        ("wall_s", Store.Json.Float wall_s);
        ("rate_per_s", Store.Json.Float rate);
        ("discrepancies", Store.Json.Int !discrepancies);
        ("shapes", Store.Json.List (List.map shape_json rows)) ]
  in
  let oc = open_out !out in
  output_string oc (Store.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  List.iter
    (fun (s, r) ->
      Printf.printf
        "%-12s %4d instances  %7.1f ms  %7.1f/s  sup [%s, %d]  %d discrepant\n"
        (Diff.Gen.shape_name s) r.sr_count r.sr_ms
        (if r.sr_ms > 0. then 1000. *. float_of_int r.sr_count /. r.sr_ms
         else 0.)
        (if r.sr_sup_min = max_int then "-" else string_of_int r.sr_sup_min)
        r.sr_sup_max r.sr_discrepant)
    rows;
  Printf.printf "%d instances in %.1fs (%.1f/s), %d discrepant\nwrote %s\n"
    !count wall_s rate !discrepancies !out;
  if !discrepancies > 0 then begin
    Printf.eprintf "fuzz_bench: %d discrepanc%s\n" !discrepancies
      (if !discrepancies = 1 then "y" else "ies");
    exit 1
  end;
  if !min_rate > 0. && rate < !min_rate then begin
    Printf.eprintf "fuzz_bench: rate gate violated: %.1f/s < %.1f/s\n" rate
      !min_rate;
    exit 1
  end
