(* Incremental re-verification benchmark: randomized edit-one-constant
   sequences over the Table-1 GPCA suite, each edit re-verified through
   the {!Incr.Session} ladder and checked against a from-scratch
   sequential run.  Writes BENCH_incr.json (cold/warm/delta wall times
   plus the ladder-rung breakdown) and exits 1 on any delta-vs-scratch
   verdict mismatch or a gate violation.

   Usage: incr_bench [--edits N] [--seed N] [--gate-ratio R]
                     [--gate-floor-ms MS] [--max-states N] [-o FILE]

   Edit-one-constant sequences can produce models whose zone graph
   explodes — e.g. nudging one side of a periodic [p == K] guard /
   [p <= K] invariant pair desynchronizes the task periods and
   fragments every zone.  Each edit is first probed by a from-scratch
   run under an exact visited-state budget (--max-states, default
   200000); an edit that blows the budget is recorded as skipped and
   reverted, which keeps the probe deterministic (the visited count at
   jobs 1 does not depend on timing) and the bench finite.

   --gate-ratio R fails the run unless every spec's median delta answer
   time is at most R * the cold answer time.  Times compared are
   [Incr.Session.so_answer_ms] — the answering exploration alone, so the
   cold and delta columns exclude graph persistence on both sides.
   Specs whose cold answer is below --gate-floor-ms (default 50) are
   reported but exempt from the ratio gate: at sub-millisecond cold
   times the ratio is timer noise. *)

let params = Gpca.Params.default

let specs () =
  let gpca_psm =
    lazy (Gpca.Model.psm ~variant:Gpca.Model.Bolus_only params).Transform.psm_net
  in
  let gpca_ceiling =
    2 * (Gpca.Experiment.analytic_bounds params).Gpca.Experiment.a_mc
  in
  let spec name net ~trigger ~response ~ceiling =
    { Analysis.Queries.qs_name = name; qs_net = net; qs_trigger = trigger;
      qs_response = response; qs_ceiling = ceiling }
  in
  [ spec "gpca-pim-mc"
      (fun () -> Gpca.Model.network ~variant:Gpca.Model.Bolus_only params)
      ~trigger:Gpca.Model.bolus_req ~response:Gpca.Model.start_infusion
      ~ceiling:1000;
    spec "gpca-psm-input"
      (fun () -> Lazy.force gpca_psm)
      ~trigger:Gpca.Model.bolus_req
      ~response:(Transform.Names.input_chan Gpca.Model.bolus_req)
      ~ceiling:gpca_ceiling;
    spec "gpca-psm-output"
      (fun () -> Lazy.force gpca_psm)
      ~trigger:(Transform.Names.output_chan Gpca.Model.start_infusion)
      ~response:Gpca.Model.start_infusion ~ceiling:gpca_ceiling;
    spec "gpca-psm-mc"
      (fun () -> Lazy.force gpca_psm)
      ~trigger:Gpca.Model.bolus_req ~response:Gpca.Model.start_infusion
      ~ceiling:gpca_ceiling ]

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, 1000. *. (Unix.gettimeofday () -. t0))

let median xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let outcome_json (r : Mc.Query.result) =
  Store.Json.to_string
    (Store.Entry.outcome_to_json
       (Analysis.Qcache.outcome_to_entry r.Mc.Query.res_outcome))

(* a throwaway store so the warm rung is the real disk path *)
let with_store_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psv_incr_bench_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun x -> rm (Filename.concat path x)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm dir with _ -> ()) (fun () -> f dir)

type edit_row = {
  er_desc : string;
  er_rung : string;
  er_ms : float;  (* answering exploration only (so_answer_ms) *)
  er_total_ms : float;  (* whole Session.run call, incl. persistence *)
  er_match : bool;
}

type spec_row = {
  sr_name : string;
  sr_cold_ms : float;  (* cold answering exploration (so_answer_ms) *)
  sr_cold_total_ms : float;  (* cold Session.run incl. graph persist *)
  sr_warm_ms : float;
  sr_edits : edit_row list;
  sr_delta_median_ms : float;
  sr_ratio : float;
  sr_rungs : int * int * int * int;  (* store, cone, delta, full *)
  sr_skipped : int;  (* edits whose scratch probe blew the state budget *)
}

(* budgeted from-scratch run: [Ok result] when the model is tractable
   within [max_states], [Error visited] when the budget interrupted it *)
let scratch_probe ~max_states net q =
  let ctl =
    Mc.Runctl.create
      ~budget:{ Mc.Runctl.no_budget with b_states = Some max_states } ()
  in
  let r = Mc.Query.eval ~jobs:1 ~ctl net q in
  match r.Mc.Query.res_outcome with
  | Mc.Query.Unknown (Mc.Runctl.State_budget _, _) ->
    Error r.Mc.Query.res_stats.Mc.Explorer.visited
  | _ -> Ok r

let run_spec ~seed ~edits ~index ~max_states dir
    (s : Analysis.Queries.query_spec) =
  let disk =
    match Store.Disk.open_ (Filename.concat dir s.Analysis.Queries.qs_name) with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  let cache = Analysis.Qcache.make disk in
  let sess =
    Incr.Session.make ~cache ~tag:("bench:" ^ s.Analysis.Queries.qs_name) ()
  in
  let q =
    Mc.Query.Sup_delay
      { trigger = s.Analysis.Queries.qs_trigger;
        response = s.Analysis.Queries.qs_response;
        ceiling = s.Analysis.Queries.qs_ceiling }
  in
  let net0 = s.Analysis.Queries.qs_net () in
  let cold_o, cold_total_ms = time (fun () -> Incr.Session.run sess net0 q) in
  let cold_ms = cold_o.Incr.Session.so_answer_ms in
  let _, warm_ms = time (fun () -> Incr.Session.run sess net0 q) in
  let rng = Random.State.make [| seed; index |] in
  let store_n = ref 0 and cone_n = ref 0 and delta_n = ref 0
  and full_n = ref 0 and skipped_n = ref 0 in
  let net = ref net0 in
  let rows = ref [] in
  for _ = 1 to edits do
    (match Incr.Edit.tweak_constant rng !net with
     | None -> ()
     | Some ed ->
       match scratch_probe ~max_states ed.Incr.Edit.ed_net q with
       | Error visited ->
         (* intractable edit: record it, keep the previous net *)
         incr skipped_n;
         rows :=
           { er_desc =
               Printf.sprintf "%s [>%d states, skipped]"
                 ed.Incr.Edit.ed_desc visited;
             er_rung = "skipped";
             er_ms = 0.;
             er_total_ms = 0.;
             er_match = true }
           :: !rows
       | Ok scratch ->
         net := ed.Incr.Edit.ed_net;
         let o, total_ms = time (fun () -> Incr.Session.run sess !net q) in
         let rung = o.Incr.Session.so_rung in
         (* store/cone rungs answer without exploring: so_answer_ms is 0
            there, so the whole call is the honest answer latency *)
         let ms =
           match rung with
           | Incr.Session.Store_hit | Incr.Session.Cone_hit -> total_ms
           | Incr.Session.Delta | Incr.Session.Full ->
             o.Incr.Session.so_answer_ms
         in
         (match rung with
          | Incr.Session.Store_hit -> incr store_n
          | Incr.Session.Cone_hit -> incr cone_n
          | Incr.Session.Delta -> incr delta_n
          | Incr.Session.Full -> incr full_n);
         let ok =
           String.equal (outcome_json scratch)
             (outcome_json o.Incr.Session.so_result)
         in
         if not ok then
           Printf.eprintf
             "MISMATCH %s after %S (%s rung):\n  incremental %s\n  scratch     %s\n"
             s.Analysis.Queries.qs_name ed.Incr.Edit.ed_desc
             (Incr.Session.rung_name rung)
             (outcome_json o.Incr.Session.so_result)
             (outcome_json scratch);
         rows :=
           { er_desc = ed.Incr.Edit.ed_desc;
             er_rung = Incr.Session.rung_name rung;
             er_ms = ms;
             er_total_ms = total_ms;
             er_match = ok }
           :: !rows)
  done;
  let rows = List.rev !rows in
  (* the ladder's whole point is constant edits landing on the delta
     rung — the median is over the re-explorations it actually ran *)
  let delta_times =
    List.filter_map
      (fun r -> if r.er_rung = "delta" then Some r.er_ms else None)
      rows
  in
  let delta_median =
    match delta_times with
    | [] ->
      median
        (List.filter_map
           (fun r -> if r.er_rung = "skipped" then None else Some r.er_ms)
           rows)
    | ts -> median ts
  in
  { sr_name = s.Analysis.Queries.qs_name;
    sr_cold_ms = cold_ms;
    sr_cold_total_ms = cold_total_ms;
    sr_warm_ms = warm_ms;
    sr_edits = rows;
    sr_delta_median_ms = delta_median;
    sr_ratio = (if cold_ms > 0. then delta_median /. cold_ms else 0.);
    sr_rungs = (!store_n, !cone_n, !delta_n, !full_n);
    sr_skipped = !skipped_n }

let row_json r =
  let store_n, cone_n, delta_n, full_n = r.sr_rungs in
  let open Store.Json in
  Obj
    [ ("name", String r.sr_name);
      ("cold_ms", Float r.sr_cold_ms);
      ("cold_total_ms", Float r.sr_cold_total_ms);
      ("warm_ms", Float r.sr_warm_ms);
      ("delta_median_ms", Float r.sr_delta_median_ms);
      ("delta_to_cold_ratio", Float r.sr_ratio);
      ( "rungs",
        Obj
          [ ("store", Int store_n); ("cone", Int cone_n);
            ("delta", Int delta_n); ("full", Int full_n);
            ("skipped", Int r.sr_skipped) ] );
      ( "edits",
        List
          (List.map
             (fun e ->
               Obj
                 [ ("edit", String e.er_desc); ("rung", String e.er_rung);
                   ("ms", Float e.er_ms);
                   ("total_ms", Float e.er_total_ms);
                   ("matches_scratch", Bool e.er_match) ])
             r.sr_edits) ) ]

let () =
  let edits = ref 12 and seed = ref 7 and gate = ref None
  and gate_floor = ref 50. and max_states = ref 200_000
  and out = ref "BENCH_incr.json" in
  let rec parse = function
    | [] -> ()
    | "--edits" :: v :: rest -> edits := int_of_string v; parse rest
    | "--seed" :: v :: rest -> seed := int_of_string v; parse rest
    | "--gate-ratio" :: v :: rest -> gate := Some (float_of_string v); parse rest
    | "--gate-floor-ms" :: v :: rest ->
      gate_floor := float_of_string v; parse rest
    | "--max-states" :: v :: rest -> max_states := int_of_string v; parse rest
    | ("-o" | "--output") :: v :: rest -> out := v; parse rest
    | arg :: _ -> Printf.eprintf "incr_bench: unknown argument %s\n" arg; exit 3
  in
  parse (List.tl (Array.to_list Sys.argv));
  with_store_dir (fun dir ->
      let rows =
        List.mapi
          (fun index s ->
            run_spec ~seed:!seed ~edits:!edits ~index
              ~max_states:!max_states dir s)
          (specs ())
      in
      let mismatches =
        List.concat_map
          (fun r ->
            List.filter_map
              (fun e -> if e.er_match then None else Some (r.sr_name, e.er_desc))
              r.sr_edits)
          rows
      in
      let doc =
        Store.Json.Obj
          [ ("edits_per_spec", Store.Json.Int !edits);
            ("seed", Store.Json.Int !seed);
            ("max_states", Store.Json.Int !max_states);
            ("mismatches", Store.Json.Int (List.length mismatches));
            ("specs", Store.Json.List (List.map row_json rows)) ]
      in
      let oc = open_out !out in
      output_string oc (Store.Json.to_string doc);
      output_string oc "\n";
      close_out oc;
      List.iter
        (fun r ->
          let store_n, cone_n, delta_n, full_n = r.sr_rungs in
          Printf.printf
            "%-18s cold %7.1f ms (%7.1f with persist)  warm %5.2f ms  \
             delta median %6.2f ms (%.1f%% of cold)  rungs: %d store, \
             %d cone, %d delta, %d full, %d skipped\n"
            r.sr_name r.sr_cold_ms r.sr_cold_total_ms r.sr_warm_ms
            r.sr_delta_median_ms (100. *. r.sr_ratio) store_n cone_n delta_n
            full_n r.sr_skipped)
        rows;
      Printf.printf "wrote %s\n" !out;
      if mismatches <> [] then begin
        Printf.eprintf "incr_bench: %d verdict mismatch%s\n"
          (List.length mismatches)
          (if List.length mismatches = 1 then "" else "es");
        exit 1
      end;
      match !gate with
      | None -> ()
      | Some ratio ->
        let gated = List.filter (fun r -> r.sr_cold_ms >= !gate_floor) rows in
        let worst = List.fold_left (fun acc r -> max acc r.sr_ratio) 0. gated in
        if worst > ratio then begin
          Printf.eprintf
            "incr_bench: gate violated: worst delta/cold ratio %.3f > %.3f\n"
            worst ratio;
          exit 1
        end)
