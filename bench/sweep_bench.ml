(* Prefilter-vs-explorer race benchmark for `psv sweep-schemes`.

   Runs the same scheme grid twice through Analysis.Sweep — once with
   the analytic prefilter on (auditing every --audit-th analytic
   decision against the explorer), once in explorer-everywhere baseline
   mode — and compares them pointwise.  The run FAILS (exit 1) if:

   - any point's verdict differs between the two modes (the prefilter
     must be an optimisation, never an answer change),
   - any audited analytic decision disagreed with the explorer,
   - the skip rate lands under --min-skip-rate, or
   - the end-to-end speedup lands under --min-speedup.

   With --json the two columns (wall clock, mc runs, verdict counts),
   the skip rate, the speedup and the Pareto frontier go to a
   BENCH_sweep.json artifact. *)

let axes_ref : string list ref = ref []
let space = ref "small"
let req = ref 0
let audit = ref 97
let jobs = ref 1
let limit = ref 500_000
let min_skip = ref 0.0
let min_speedup = ref 0.0
let json_out = ref ""

let args =
  [ ("--axis", Arg.String (fun s -> axes_ref := s :: !axes_ref),
     "NAME=SPEC add a grid axis (repeatable); default: the calibrated \
      10k-point GPCA grid");
    ("--space", Arg.Set_string space,
     "BASE base parameter set, small or table1 (default small)");
    ("--req", Arg.Set_int req,
     "BOUND requirement on the mc-boundary delay (default: the base's)");
    ("--audit", Arg.Set_int audit,
     "N explorer-audit every N-th analytic decision (default 97)");
    ("--jobs", Arg.Set_int jobs, "N worker domains (default 1)");
    ("--limit", Arg.Set_int limit, "N per-query state limit");
    ("--min-skip-rate", Arg.Set_float min_skip,
     "R fail if the prefilter decides less than R of the points (0..1)");
    ("--min-speedup", Arg.Set_float min_speedup,
     "X fail if prefilter mode is not at least X times faster");
    ("--json", Arg.Set_string json_out, "FILE write results as JSON") ]

let usage = "sweep_bench [options]"

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("sweep_bench: " ^ m); exit 1) fmt

(* The calibrated default grid: wide enough that all three prefilter
   outcomes (analytic pass, analytic fail, undecided band) and the
   invalid combinations are all well represented, and the expensive
   explorations (small periods) sit in the analytically decided region. *)
let default_axes =
  [ "period=10,20,30,40,60,80";
    "poll=5,10,20,40,80,120,140,160";
    "mech=0,1";
    "buffer=1,2,4";
    "policy=0,1";
    "signal=0,1";
    "in_dmax=2,5,10";
    "out_dmax=5,10,20" ]

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let axis_specs = if !axes_ref = [] then default_axes else List.rev !axes_ref in
  let parsed =
    List.map
      (fun s ->
        match Scheme.Grid.parse_axis s with
        | Ok ax -> ax
        | Error msg -> fail "bad --axis %S: %s" s msg)
      axis_specs
  in
  (match Gpca.Sweep_space.validate_axes (List.map fst parsed) with
   | Ok () -> ()
   | Error msg -> fail "%s" msg);
  let grid =
    match Scheme.Grid.make parsed with
    | Ok g -> g
    | Error msg -> fail "%s" msg
  in
  let base =
    match Gpca.Sweep_space.base_of_string !space with
    | Ok b -> b
    | Error msg -> fail "%s" msg
  in
  let req =
    if !req > 0 then !req
    else
      match base with
      (* REQ1 scaled to sit inside the default grid's undecided band *)
      | Gpca.Sweep_space.Small -> 150
      | Gpca.Sweep_space.Table1 -> Gpca.Sweep_space.default_req base
  in
  let points = Scheme.Grid.cardinality grid in
  let build = Gpca.Sweep_space.build ~base ~req grid in
  Printf.eprintf "sweep_bench: %d points, base %s, req %d, audit %d\n%!"
    points (Gpca.Sweep_space.base_name base) req !audit;
  let verdicts prefilter audit =
    let vs = Array.make points Analysis.Sweep.Unknown in
    let cfg =
      { Analysis.Sweep.default_config with
        Analysis.Sweep.sw_prefilter = prefilter;
        sw_jobs = !jobs;
        sw_limit = Some !limit;
        sw_audit = audit;
        sw_emit =
          Some
            (fun pr ->
              vs.(pr.Analysis.Sweep.pr_index) <- pr.Analysis.Sweep.pr_verdict) }
    in
    let o = Analysis.Sweep.run cfg ~points ~build in
    (vs, o)
  in
  let pre_vs, pre = verdicts true !audit in
  Printf.eprintf
    "sweep_bench: prefilter   %.0f ms, %d mc runs, skip %.1f%%, %d audited\n%!"
    pre.Analysis.Sweep.o_wall_ms pre.Analysis.Sweep.o_mc_runs
    (100. *. pre.Analysis.Sweep.o_skip_rate)
    pre.Analysis.Sweep.o_audited;
  let base_vs, baseline = verdicts false 0 in
  Printf.eprintf "sweep_bench: explorer-all %.0f ms, %d mc runs\n%!"
    baseline.Analysis.Sweep.o_wall_ms baseline.Analysis.Sweep.o_mc_runs;
  (* pointwise agreement: every point, not just a sample *)
  let mismatches = ref [] in
  for i = points - 1 downto 0 do
    if pre_vs.(i) <> base_vs.(i) then mismatches := i :: !mismatches
  done;
  List.iteri
    (fun n i ->
      if n < 20 then
        Printf.eprintf "sweep_bench: verdict mismatch at point %d: %s vs %s\n"
          i
          (Analysis.Sweep.verdict_name pre_vs.(i))
          (Analysis.Sweep.verdict_name base_vs.(i)))
    !mismatches;
  let speedup =
    baseline.Analysis.Sweep.o_wall_ms /. max 1e-9 pre.Analysis.Sweep.o_wall_ms
  in
  Printf.printf
    "points %d | skip %.1f%% | speedup %.2fx | mismatches %d | audit \
     mismatches %d | pareto %d\n%!"
    points
    (100. *. pre.Analysis.Sweep.o_skip_rate)
    speedup
    (List.length !mismatches)
    (List.length pre.Analysis.Sweep.o_audit_mismatches)
    (List.length pre.Analysis.Sweep.o_pareto);
  if !json_out <> "" then begin
    let column (o : Analysis.Sweep.outcome) =
      Printf.sprintf
        {|{"wall_ms": %.1f, "mc_runs": %d, "explored": %d, "memo_hits": %d, "pass": %d, "fail": %d, "unknown": %d, "invalid": %d, "analytic_pass": %d, "analytic_fail": %d, "skip_rate": %.4f}|}
        o.Analysis.Sweep.o_wall_ms o.Analysis.Sweep.o_mc_runs
        o.Analysis.Sweep.o_explored o.Analysis.Sweep.o_memo_hits
        o.Analysis.Sweep.o_pass o.Analysis.Sweep.o_fail
        o.Analysis.Sweep.o_unknown o.Analysis.Sweep.o_invalid
        o.Analysis.Sweep.o_analytic_pass o.Analysis.Sweep.o_analytic_fail
        o.Analysis.Sweep.o_skip_rate
    in
    let pareto =
      String.concat ", "
        (List.map
           (fun (i, cost) ->
             Printf.sprintf {|{"point": %d, "cost": [%s]}|} i
               (String.concat ", "
                  (Array.to_list (Array.map string_of_int cost))))
           pre.Analysis.Sweep.o_pareto)
    in
    let doc =
      Printf.sprintf
        {|{"bench": "sweep", "points": %d, "base": "%s", "req": %d, "axes": [%s], "jobs": %d, "prefilter": %s, "explorer_everywhere": %s, "speedup": %.2f, "verdict_mismatches": %d, "audited": %d, "audit_mismatches": %d, "pareto_size": %d, "pareto": [%s]}|}
        points (Gpca.Sweep_space.base_name base) req
        (String.concat ", "
           (List.map (fun s -> Printf.sprintf "%S" s) axis_specs))
        !jobs (column pre) (column baseline) speedup
        (List.length !mismatches)
        pre.Analysis.Sweep.o_audited
        (List.length pre.Analysis.Sweep.o_audit_mismatches)
        (List.length pre.Analysis.Sweep.o_pareto)
        pareto
    in
    let oc = open_out !json_out in
    output_string oc doc;
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "sweep_bench: wrote %s\n%!" !json_out
  end;
  if !mismatches <> [] then
    fail "%d verdict mismatch%s between prefilter and explorer-everywhere"
      (List.length !mismatches)
      (if List.length !mismatches = 1 then "" else "es");
  if pre.Analysis.Sweep.o_audit_mismatches <> [] then
    fail "%d audited analytic decision%s contradicted by the explorer"
      (List.length pre.Analysis.Sweep.o_audit_mismatches)
      (if List.length pre.Analysis.Sweep.o_audit_mismatches = 1 then ""
       else "s");
  if pre.Analysis.Sweep.o_skip_rate < !min_skip then
    fail "skip rate %.3f under the required %.3f"
      pre.Analysis.Sweep.o_skip_rate !min_skip;
  if speedup < !min_speedup then
    fail "speedup %.2fx under the required %.2fx" speedup !min_speedup
