(* Benchmark and reproduction harness.

   Part 1 regenerates every evaluation artifact of the paper (Table I and
   the behavior shown in Figs. 1-6) plus the ablations of DESIGN.md,
   printing the rows/series; part 2 times the regeneration kernels with
   Bechamel (one Test.make per experiment).

   Experiment ids follow DESIGN.md's per-experiment index:
     E1 Table I verified row          E5 Fig. 3 read-one vs read-all
     E2 Table I measured rows         E6 Fig. 4 PIM vs PSM behavior
     E3 REQ1 violation                E7 Fig. 5/6 constructed automata
     E4 Fig. 1 PIM verification       A1-A3 ablations *)

open Ta

let params = Gpca.Params.default

let header title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=')

(* ---------------------------------------------------------------- E4 -- *)

let e4_pim_verification () =
  header "E4 (Fig. 1): the platform-independent model meets REQ1";
  let net = Gpca.Model.network ~variant:Gpca.Model.Bolus_only params in
  let r =
    Analysis.Queries.max_delay net ~trigger:Gpca.Model.bolus_req
      ~response:Gpca.Model.start_infusion ~ceiling:1000
  in
  Fmt.pr "PIM max delay bolus-request -> infusion-start: %a@."
    Mc.Explorer.pp_sup_result r.Analysis.Queries.dr_sup;
  Fmt.pr "PIM |= P(500): %a@." Mc.Explorer.pp_verdict
    (Psv.verify_response net ~trigger:Gpca.Model.bolus_req
       ~response:Gpca.Model.start_infusion ~bound:500)

(* ------------------------------------------------------------ E1-E3 -- *)

let e123_table1 () =
  header "E1+E2+E3 (Table I): verified bounds vs measured delays";
  let t = Gpca.Experiment.table1 ~seed:42 params in
  Fmt.pr "%a@." Gpca.Experiment.pp_table1 t;
  Fmt.pr
    "@.Paper's Table I for comparison:@.\
     \  Verified: M-C 1430 / Input 490 / Output 440, overflow not occurring@.\
     \  Measured: M-C 610/748/456, Input 97/152/48, Output 215/304/100@.\
     \  REQ1 violated in 53 of 60 scenarios@."

(* ---------------------------------------------------------------- E5 -- *)

(* A three-tick counter and a bursty environment reproduce Fig. 3's
   io-boundary semantics: under read-one an invocation consumes a single
   buffered input; under read-all it drains the buffer. *)
let e5_pim () =
  let loc = Model.location and edge = Model.edge in
  let soft =
    Model.automaton ~name:"Counter" ~initial:"S0"
      [ loc "S0"; loc "S1"; loc "S2"; loc "S3" ]
      [ edge ~sync:(Model.Recv "m_Tick") "S0" "S1";
        edge ~sync:(Model.Recv "m_Tick") "S1" "S2";
        edge ~sync:(Model.Recv "m_Tick") "S2" "S3" ]
  in
  let env =
    Model.automaton ~name:"Env" ~initial:"E0"
      [ loc "E0"; loc "E1" ]
      [ edge ~sync:(Model.Send "m_Tick") "E0" "E1" ]
  in
  let net =
    Model.network ~name:"fig3" ~clocks:[] ~vars:[]
      ~channels:[ ("m_Tick", Model.Broadcast) ]
      [ soft; env ]
  in
  Transform.Pim.make net ~software:"Counter" ~environment:"Env"

let e5_scheme policy =
  { Scheme.is_name = "fig3";
    is_inputs = [ ("m_Tick", Scheme.interrupt_input (Scheme.delay 1 2)) ];
    is_outputs = [];
    is_input_comm = Scheme.Buffer (5, policy);
    is_output_comm = Scheme.Buffer (5, policy);
    is_invocation = Scheme.Periodic 100;
    is_exec = { Scheme.wcet_min = 1; wcet_max = 10 } }

let e5_run policy =
  let typical =
    { Sim.Engine.typ_input_proc = (fun _ -> (1.5, 1.5));
      typ_output_proc = (fun _ -> (1.0, 1.0));
      typ_exec = (2.0, 2.0) }
  in
  let config =
    { Sim.Engine.cfg_pim = e5_pim ();
      cfg_scheme = e5_scheme policy;
      cfg_typical = typical;
      cfg_stimuli =
        [ (105.0, "m_Tick"); (130.0, "m_Tick"); (155.0, "m_Tick") ];
      cfg_horizon = 700.0 }
  in
  Sim.Engine.run ~seed:5 config

let e5_read_policies () =
  header "E5 (Fig. 3): read-one vs read-all at the io-boundary";
  let show label policy =
    let log = e5_run policy in
    let reads =
      List.filter_map
        (fun (e : Sim.Engine.entry) ->
          match e.Sim.Engine.event with
          | Sim.Engine.Input_read _ -> Some e.Sim.Engine.at
          | Sim.Engine.Env_signal _ | Sim.Engine.Input_inserted _
          | Sim.Engine.Input_discarded _ | Sim.Engine.Input_lost _
          | Sim.Engine.Code_output _ | Sim.Engine.Output_visible _
          | Sim.Engine.Output_lost _ -> None)
        log
    in
    Fmt.pr "%-10s inputs read at invocations: %a@." label
      Fmt.(list ~sep:comma (fmt "%.0f"))
      reads
  in
  Fmt.pr "three pulses at 105/130/155; invocations every 100@.";
  show "read-all" Scheme.Read_all;
  show "read-one" Scheme.Read_one;
  Fmt.pr "@.read-one timeline:@.%s%s@."
    (Sim.Timeline.render ~width:64 (e5_run Scheme.Read_one))
    Sim.Timeline.legend;
  Fmt.pr
    "(read-all drains the buffer at invocation 200; read-one consumes one \
     input per invocation, as in Fig. 3)@."

(* ---------------------------------------------------------------- E6 -- *)

let e6_traces () =
  header "E6 (Fig. 4): PIM vs PSM timed behavior of one bolus request";
  let show label net pump_aut =
    let t = Mc.Explorer.make net in
    let infusing = Mc.Explorer.at t ~aut:pump_aut ~loc:"Infusing" in
    match Mc.Explorer.timed_trace t infusing with
    | Some steps ->
      Fmt.pr "@[<v 2>%s reaches Infusing in %d steps:@,%a@]@." label
        (List.length steps)
        Fmt.(list ~sep:cut Mc.Explorer.pp_timed_step)
        steps
    | None -> Fmt.pr "%s: Infusing unreachable?!@." label
  in
  show "PIM" (Gpca.Model.network ~variant:Gpca.Model.Bolus_only params) "Pump";
  show "PSM"
    (Gpca.Model.psm ~variant:Gpca.Model.Bolus_only params).Transform.psm_net
    "Pump_IO"

(* ---------------------------------------------------------------- E7 -- *)

let e7_constructions () =
  header "E7 (Figs. 5/6): the constructed IFMI / IFOC / EXEIO automata";
  let psm = Gpca.Model.psm ~variant:Gpca.Model.Bolus_only params in
  let net = psm.Transform.psm_net in
  List.iter
    (fun name ->
      let a = Model.find_automaton net name in
      Fmt.pr "%a@.@." Xta.Print.network
        (Model.network ~name:("fragment_" ^ name)
           ~clocks:net.Model.net_clocks ~vars:net.Model.net_vars
           ~channels:net.Model.net_channels [ a ]))
    [ "IFMI_BolusReq"; "IFOC_StartInfusion"; "EXEIO" ]

(* ---------------------------------------------------------------- A1 -- *)

let a1_period_sweep () =
  header "A1 (ablation): invocation period vs the two bounds";
  Fmt.pr "%8s | %13s | %13s@." "period" "analytic" "verified";
  List.iter
    (fun period ->
      let p =
        { params with
          Gpca.Params.period;
          exec = { Scheme.wcet_min = min 20 (period / 2); wcet_max = period } }
      in
      let analytic = (Gpca.Experiment.analytic_bounds p).Gpca.Experiment.a_mc in
      let psm = Gpca.Model.psm ~variant:Gpca.Model.Bolus_only p in
      let verified =
        (Analysis.Queries.max_delay ~limit:500_000 psm.Transform.psm_net
           ~trigger:Gpca.Model.bolus_req ~response:Gpca.Model.start_infusion
           ~ceiling:(3 * analytic))
          .Analysis.Queries.dr_sup
      in
      Fmt.pr "%8d | %13d | %13s@." period analytic
        (Fmt.str "%a" Mc.Explorer.pp_sup_result verified))
    [ 50; 100; 200 ]

(* ---------------------------------------------------------------- A2 -- *)

let a2_buffer_sweep () =
  header "A2 (ablation): buffer capacity under a bursty environment";
  let loc = Model.location and edge = Model.edge in
  (* three pulses, 4 ms apart *)
  let soft =
    Model.automaton ~name:"Soft" ~initial:"S0"
      [ loc "S0"; loc "S1"; loc "S2"; loc "S3" ]
      [ edge ~sync:(Model.Recv "m_a") "S0" "S1";
        edge ~sync:(Model.Recv "m_a") "S1" "S2";
        edge ~sync:(Model.Recv "m_a") "S2" "S3" ]
  in
  let env =
    Model.automaton ~name:"Env" ~initial:"E0"
      [ loc ~inv:[ Clockcons.le "e" 0 ] "E0";
        loc ~inv:[ Clockcons.le "e" 4 ] "E1";
        loc ~inv:[ Clockcons.le "e" 4 ] "E2";
        loc "E3" ]
      [ edge ~sync:(Model.Send "m_a") ~resets:[ "e" ] "E0" "E1";
        edge ~guard:[ Clockcons.eq_ "e" 4 ] ~sync:(Model.Send "m_a")
          ~resets:[ "e" ] "E1" "E2";
        edge ~guard:[ Clockcons.eq_ "e" 4 ] ~sync:(Model.Send "m_a") "E2" "E3" ]
  in
  let net =
    Model.network ~name:"a2" ~clocks:[ "e" ] ~vars:[]
      ~channels:[ ("m_a", Model.Broadcast) ]
      [ soft; env ]
  in
  let pim = Transform.Pim.make net ~software:"Soft" ~environment:"Env" in
  Fmt.pr "%8s | %s@." "buffer" "constraint 2 (no input-buffer overflow)";
  List.iter
    (fun size ->
      let scheme =
        { Scheme.is_name = "a2";
          is_inputs = [ ("m_a", Scheme.interrupt_input (Scheme.delay 1 1)) ];
          is_outputs = [];
          is_input_comm = Scheme.Buffer (size, Scheme.Read_all);
          is_output_comm = Scheme.Buffer (size, Scheme.Read_all);
          is_invocation = Scheme.Periodic 50;
          is_exec = { Scheme.wcet_min = 1; wcet_max = 5 } }
      in
      let psm = Transform.psm_of_pim pim scheme in
      let results = Analysis.Constraints.check_all psm in
      let c2 =
        List.find
          (fun (r : Analysis.Constraints.result) ->
            r.Analysis.Constraints.c_id = 2)
          results
      in
      let status =
        match c2.Analysis.Constraints.c_status with
        | Analysis.Constraints.Satisfied -> "satisfied"
        | Analysis.Constraints.Violated _ -> "VIOLATED"
        | Analysis.Constraints.Unknown reason -> "unknown: " ^ reason
      in
      Fmt.pr "%8d | %s@." size status)
    [ 1; 2; 3; 4 ]

(* ---------------------------------------------------------------- A3 -- *)

let a3_scheme_matrix () =
  header "A3 (ablation): mechanism choices vs analytic bounds";
  let scheme = Gpca.Params.scheme params in
  let describe label s =
    let input = Analysis.Bounds.input_delay s Gpca.Model.bolus_req in
    let output = Analysis.Bounds.output_delay s Gpca.Model.start_infusion in
    Fmt.pr "%-36s | input <= %4d | output <= %4d | Delta'mc <= %4d@." label
      input output
      (input + output + params.Gpca.Params.prep_max)
  in
  describe "periodic(100), buffer(5) read-all" scheme;
  describe "periodic(100), buffer(5) read-one"
    { scheme with Scheme.is_input_comm = Scheme.Buffer (5, Scheme.Read_one) };
  describe "periodic(100), shared variable"
    { scheme with Scheme.is_input_comm = Scheme.Shared_variable };
  describe "aperiodic(0), buffer(5) read-all"
    { scheme with Scheme.is_invocation = Scheme.Aperiodic 0 };
  describe "aperiodic(10), buffer(5) read-all"
    { scheme with Scheme.is_invocation = Scheme.Aperiodic 10 };
  Fmt.pr
    "(aperiodic rows are analytic what-ifs: the transformation rejects      aperiodic invocation for the GPCA software, whose bolus preparation      waits on a clock)@."

(* ---------------------------------------------------------------- R1 -- *)

(* Robustness workload: the Table-I scenario under increasingly degraded
   platforms.  Faults stretch device delays and drop/duplicate
   mc-boundary samples, so measured delays may grow and samples may
   vanish — but no profile can push a measured Input-Delay below the
   scheme's analytic lower bound (Bounds.input_delay_min), since jitter
   never shortens a delay.  The last column checks exactly that. *)

let r1_fault_sweep () =
  header "R1 (robustness): fault-injected simulations vs analytic bounds";
  let scheme = Gpca.Params.scheme params in
  let floor_in =
    float_of_int (Analysis.Bounds.input_delay_min scheme Gpca.Model.bolus_req)
  in
  let scenarios = 20 in
  (* the fault seed varies per scenario: a single-stimulus scenario only
     draws once from the fault stream, so a fixed seed would make every
     scenario take the same drop/dup decision *)
  let run_profile mk_faults =
    let delays = ref [] and lost = ref 0 in
    for i = 0 to scenarios - 1 do
      let request_time = 100.0 +. (37.0 *. float_of_int i) in
      let config = Gpca.Experiment.scenario_config params ~request_time in
      let log = Sim.Engine.run ~seed:(1 + i) ?faults:(mk_faults i) config in
      lost :=
        !lost
        + Sim.Measure.count log (function
            | Sim.Engine.Input_lost _ -> true
            | _ -> false);
      List.iter
        (fun s ->
          match Sim.Measure.input_delay s with
          | Some d -> delays := d :: !delays
          | None -> ())
        (Sim.Measure.samples log ~trigger:Gpca.Model.bolus_req
           ~response:Gpca.Model.start_infusion)
    done;
    (!delays, !lost)
  in
  Fmt.pr "%-28s | %7s | %4s | %9s | %s@." "profile" "samples" "lost"
    "input-max" "min >= analytic min?";
  let show label mk_faults =
    let delays, lost = run_profile mk_faults in
    match Sim.Measure.stats_of delays with
    | Some st ->
      Fmt.pr "%-28s | %7d | %4d | %9.1f | %.1f >= %.0f: %b@." label
        st.Sim.Measure.st_count lost st.Sim.Measure.st_max
        st.Sim.Measure.st_min floor_in
        (st.Sim.Measure.st_min >= floor_in)
    | None -> Fmt.pr "%-28s | %7d | %4d | %9s | (no samples)@." label 0 lost "-"
  in
  show "nominal" (fun _ -> None);
  show "jitter 0.5" (fun i -> Some (Sim.Engine.faults ~seed:i ~jitter:0.5 ()));
  show "jitter 2.0" (fun i -> Some (Sim.Engine.faults ~seed:i ~jitter:2.0 ()));
  show "drop 0.2" (fun i -> Some (Sim.Engine.faults ~seed:i ~drop:0.2 ()));
  show "dup 0.3" (fun i -> Some (Sim.Engine.faults ~seed:i ~dup:0.3 ()));
  show "jitter 1.0 drop 0.1 dup 0.1" (fun i ->
      Some (Sim.Engine.faults ~seed:i ~jitter:1.0 ~drop:0.1 ~dup:0.1 ()))

(* ------------------------------------------------------ supplemental -- *)

let supplemental_requirements () =
  header "Supplemental: REQ2 (alarm) and REQ3 (pause) on the full GPCA";
  let verify_psm = Sys.getenv_opt "PSV_BENCH_FULL" <> None in
  if not verify_psm then
    Fmt.pr
      "(set PSV_BENCH_FULL=1 to also model-check the full-variant PSM;        ~2-4 minutes)@.";
  let s = Gpca.Experiment.supplemental ~verify_psm params in
  Fmt.pr "%a@." Gpca.Experiment.pp_supplemental s

(* ------------------------------------------------- explorer bench -- *)

(* Fixed explorer workload used to track zone-explorer performance over
   time: the Table-I verified-bound queries on the infusion-pump models
   plus the railroad gate-controller PSMs from examples/railroad.ml
   (reconstructed here; examples are not a library).  [--json] runs only
   this suite and emits one record per query with visited/stored state
   counts and wall time, the format recorded in BENCH_explorer.json. *)

let railroad_net ~headway =
  let loc = Model.location and edge = Model.edge in
  let controller =
    Model.automaton ~name:"GateCtrl" ~initial:"Open"
      [ loc "Open";
        loc ~inv:[ Clockcons.le "g" 5 ] "Lowering";
        loc "Closed" ]
      [ edge ~sync:(Model.Recv "m_Train") ~resets:[ "g" ] "Open" "Lowering";
        edge ~sync:(Model.Send "c_GateDown") "Lowering" "Closed";
        edge ~sync:(Model.Recv "m_Clear") "Closed" "Open" ]
  in
  let track =
    Model.automaton ~name:"Track" ~initial:"Away"
      [ loc "Away";
        loc "Approaching";
        loc ~inv:[ Clockcons.le "t" 1_500 ] "Passing" ]
      [ edge
          ~guard:(if headway = 0 then [] else [ Clockcons.ge "t" headway ])
          ~sync:(Model.Send "m_Train") ~resets:[ "t" ] "Away" "Approaching";
        edge ~sync:(Model.Recv "c_GateDown") ~resets:[ "t" ] "Approaching"
          "Passing";
        edge
          ~guard:[ Clockcons.ge "t" 1_000 ]
          ~sync:(Model.Send "m_Clear") ~resets:[ "t" ] "Passing" "Away" ]
  in
  Model.network ~name:"railroad" ~clocks:[ "g"; "t" ] ~vars:[]
    ~channels:
      [ ("m_Train", Model.Broadcast);
        ("m_Clear", Model.Broadcast);
        ("c_GateDown", Model.Broadcast) ]
    [ controller; track ]

let railroad_psm ~headway ~invocation =
  let pim =
    Transform.Pim.make (railroad_net ~headway) ~software:"GateCtrl"
      ~environment:"Track"
  in
  let scheme =
    { Scheme.is_name = "ecu";
      is_inputs =
        [ ("m_Train", Scheme.interrupt_input (Scheme.delay 1 4));
          ("m_Clear", Scheme.interrupt_input (Scheme.delay 1 4)) ];
      is_outputs = [ ("c_GateDown", Scheme.pulse_output (Scheme.delay 5 20)) ];
      is_input_comm = Scheme.Buffer (2, Scheme.Read_all);
      is_output_comm = Scheme.Buffer (2, Scheme.Read_all);
      is_invocation = invocation;
      is_exec = { Scheme.wcet_min = 1; wcet_max = 8 } }
  in
  (Transform.psm_of_pim pim scheme).Transform.psm_net

(* The workload is a list of {!Analysis.Queries.query_spec} — the same
   data-carrying form the CLI's [sweep] uses — so the cache rows below
   can route the identical queries through {!Analysis.Queries.run_all}
   with a store attached. *)
let explorer_queries () =
  let gpca_psm =
    lazy (Gpca.Model.psm ~variant:Gpca.Model.Bolus_only params).Transform.psm_net
  in
  let gpca_ceiling = 2 * (Gpca.Experiment.analytic_bounds params).Gpca.Experiment.a_mc in
  let spec name net ~trigger ~response ~ceiling =
    { Analysis.Queries.qs_name = name; qs_net = net; qs_trigger = trigger;
      qs_response = response; qs_ceiling = ceiling }
  in
  [ spec "gpca-pim-mc"
      (fun () -> Gpca.Model.network ~variant:Gpca.Model.Bolus_only params)
      ~trigger:Gpca.Model.bolus_req ~response:Gpca.Model.start_infusion
      ~ceiling:1000;
    spec "gpca-psm-input"
      (fun () -> Lazy.force gpca_psm)
      ~trigger:Gpca.Model.bolus_req
      ~response:(Transform.Names.input_chan Gpca.Model.bolus_req)
      ~ceiling:gpca_ceiling;
    spec "gpca-psm-output"
      (fun () -> Lazy.force gpca_psm)
      ~trigger:(Transform.Names.output_chan Gpca.Model.start_infusion)
      ~response:Gpca.Model.start_infusion ~ceiling:gpca_ceiling;
    spec "gpca-psm-mc"
      (fun () -> Lazy.force gpca_psm)
      ~trigger:Gpca.Model.bolus_req ~response:Gpca.Model.start_infusion
      ~ceiling:gpca_ceiling;
    spec "railroad-psm-event"
      (fun () -> railroad_psm ~headway:300 ~invocation:(Scheme.Aperiodic 0))
      ~trigger:"m_Train" ~response:"c_GateDown" ~ceiling:320;
    spec "railroad-psm-periodic25"
      (fun () -> railroad_psm ~headway:300 ~invocation:(Scheme.Periodic 25))
      ~trigger:"m_Train" ~response:"c_GateDown" ~ceiling:320;
    spec "railroad-psm-race"
      (fun () -> railroad_psm ~headway:0 ~invocation:(Scheme.Aperiodic 0))
      ~trigger:"m_Train" ~response:"c_GateDown" ~ceiling:320 ]

let run_spec ~jobs (q : Analysis.Queries.query_spec) =
  Analysis.Queries.max_delay ~jobs (q.Analysis.Queries.qs_net ())
    ~trigger:q.Analysis.Queries.qs_trigger
    ~response:q.Analysis.Queries.qs_response
    ~ceiling:q.Analysis.Queries.qs_ceiling

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let median l =
  let a = Array.of_list (List.sort compare l) in
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* [repeat] timed runs of one query at a fixed worker count: the result
   of the first run plus median and min wall time, and the allocation of
   the first run (allocation is deterministic per run shape). *)
let timed_runs ~repeat ~jobs q =
  let results =
    List.init repeat (fun _ ->
        let a0 = Gc.allocated_bytes () in
        let t0 = Unix.gettimeofday () in
        let r = run_spec ~jobs q in
        let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
        let alloc_mb = (Gc.allocated_bytes () -. a0) /. 1048576.0 in
        (r, wall_ms, alloc_mb))
  in
  let walls = List.map (fun (_, w, _) -> w) results in
  let r, _, alloc_mb = List.hd results in
  (r, median walls, List.fold_left min infinity walls, alloc_mb)

(* Cold-vs-warm timing of one query through the persistent store: the
   entry is evicted first, so the first governed run pays the search and
   the insert, the second answers purely from disk. *)
let cache_runs cache (q : Analysis.Queries.query_spec) =
  let key =
    Analysis.Qcache.key (q.Analysis.Queries.qs_net ())
      (Analysis.Queries.spec_query q)
  in
  Store.Disk.remove (Analysis.Qcache.disk cache) key;
  let timed () =
    let t0 = Unix.gettimeofday () in
    let r =
      List.hd (Analysis.Queries.run_all ~cache [ q ])
    in
    (snd r, 1000.0 *. (Unix.gettimeofday () -. t0))
  in
  let cold_r, cold_ms = timed () in
  let warm_r, warm_ms = timed () in
  if warm_r.Analysis.Queries.dr_sup <> cold_r.Analysis.Queries.dr_sup then begin
    Printf.eprintf "bench: %s: warm cache sup disagrees with cold run\n"
      q.Analysis.Queries.qs_name;
    exit 1
  end;
  (cold_r, cold_ms, warm_ms)

(* A jobs-scaling row is only meaningful on searches with real work; a
   query that finishes in a few hundred states measures domain-spawn
   overhead, not exploration. *)
let scaling_threshold = 1000

(* The scaling-regression gate only judges searches big enough that the
   speedup is dominated by exploration, not fixed costs. *)
let gate_threshold = 8_000
let gate_jobs = 4

let explorer_bench_json ?path ?cache_dir ?faults ?(repeat = 1)
    ?(jobs_list = []) ?gate ?(allow_oversubscribe = false) () =
  (* More workers than cores measures scheduler contention, not
     scaling; drop those rows unless explicitly asked to keep them. *)
  let jobs_list =
    let avail = Mc.Parsearch.recommended_jobs () in
    if allow_oversubscribe then jobs_list
    else
      List.filter
        (fun j ->
          j <= avail
          || begin
               Printf.eprintf
                 "bench: dropping jobs=%d (host has %d core%s; pass \
                  --allow-oversubscribe to keep oversubscribed rows)\n"
                 j avail
                 (if avail = 1 then "" else "s");
               false
             end)
        jobs_list
  in
  let gate_violations = ref [] in
  let cache =
    Option.map
      (fun dir ->
        match Store.Disk.open_ dir with
        | Ok disk -> Analysis.Qcache.make disk
        | Error msg -> prerr_endline ("bench: --cache: " ^ msg); exit 3)
      cache_dir
  in
  (* The fault column reruns the cache cold/warm pair against a second
     store whose host I/O replays the given seeded schedule — same
     queries, same budgets, sick disk.  The sup must not move. *)
  let fault_cache =
    match (faults, cache_dir) with
    | None, _ -> None
    | Some _, None ->
      prerr_endline "bench: --faults needs --cache";
      exit 3
    | Some profile, Some dir ->
      (* Lay the store out fault-free, then reopen it on the sick io so
         the schedule only strikes the per-query read/write path. *)
      let fdir = dir ^ "-faulted" in
      (match Store.Disk.open_ fdir with
       | Ok _ -> ()
       | Error msg ->
         prerr_endline ("bench: --faults store: " ^ msg);
         exit 3);
      let stats = Fault.Io.stats () in
      let io = Fault.Io.inject ~stats profile Fault.Io.real in
      let retry = Fault.Retry.with_attempts 6 in
      (match Store.Disk.open_ ~io ~retry fdir with
       | Ok disk -> Some (Analysis.Qcache.make ~warn:(fun _ -> ()) disk, stats)
       | Error msg ->
         prerr_endline ("bench: --faults store: " ^ msg);
         exit 3)
  in
  let rows =
    List.map
      (fun q ->
        let r, wall_ms, wall_min, alloc_mb = timed_runs ~repeat ~jobs:1 q in
        let stats = r.Analysis.Queries.dr_stats in
        let cache_cells =
          match cache with
          | None -> ""
          | Some cache ->
            let _, cold_ms, warm_ms = cache_runs cache q in
            Printf.sprintf
              ", \"cache_cold_ms\": %.1f, \"cache_warm_ms\": %.1f, \
               \"cache_speedup\": %.1f"
              cold_ms warm_ms (cold_ms /. warm_ms)
        in
        let fault_cells =
          match fault_cache with
          | None -> ""
          | Some (fcache, fstats) ->
            let before = Atomic.get fstats.Fault.Io.fs_faults in
            let fr, fcold_ms, fwarm_ms = cache_runs fcache q in
            if fr.Analysis.Queries.dr_sup <> r.Analysis.Queries.dr_sup
            then begin
              Printf.eprintf
                "bench: %s: sup under fault injection disagrees with the \
                 clean run\n"
                q.Analysis.Queries.qs_name;
              exit 1
            end;
            Printf.sprintf
              ", \"fault_cold_ms\": %.1f, \"fault_warm_ms\": %.1f, \
               \"fault_injected\": %d"
              fcold_ms fwarm_ms
              (Atomic.get fstats.Fault.Io.fs_faults - before)
        in
        let scaling =
          let eligible =
            jobs_list <> [] && stats.Mc.Explorer.visited >= scaling_threshold
          in
          if not eligible then ""
          else begin
            let cells =
              List.map
                (fun jobs ->
                  let rj, wj, _, _ = timed_runs ~repeat ~jobs q in
                  (* parallel exploration must agree with the sequential
                     sup — a mismatch is a correctness bug, not noise *)
                  if rj.Analysis.Queries.dr_sup <> r.Analysis.Queries.dr_sup
                  then begin
                    Printf.eprintf
                      "bench: %s: jobs=%d sup disagrees with sequential\n"
                      q.Analysis.Queries.qs_name jobs;
                    exit 1
                  end;
                  let speedup = wall_ms /. wj in
                  (match gate with
                   | Some g
                     when jobs = gate_jobs
                          && stats.Mc.Explorer.visited >= gate_threshold
                          && speedup < g ->
                     gate_violations :=
                       (q.Analysis.Queries.qs_name, speedup)
                       :: !gate_violations
                   | Some _ | None -> ());
                  Printf.sprintf
                    "{\"jobs\": %d, \"wall_ms\": %.1f, \"speedup\": %.2f}"
                    jobs wj speedup)
                jobs_list
            in
            Printf.sprintf ", \"jobs_scaling\": [%s]"
              (String.concat ", " cells)
          end
        in
        Printf.sprintf
          "    {\"name\": \"%s\", \"visited\": %d, \"stored\": %d, \
           \"wall_ms\": %.1f, \"wall_ms_min\": %.1f, \"repeat\": %d, \
           \"alloc_mb\": %.1f, \"result\": \"%s\"%s%s}"
          (json_escape q.Analysis.Queries.qs_name) stats.Mc.Explorer.visited
          stats.Mc.Explorer.stored wall_ms wall_min repeat alloc_mb
          (json_escape
             (Fmt.str "%a" Mc.Explorer.pp_sup_result r.Analysis.Queries.dr_sup))
          scaling (cache_cells ^ fault_cells))
      (explorer_queries ())
  in
  let faults_field =
    match faults with
    | None -> ""
    | Some p ->
      Printf.sprintf "  \"faults\": \"%s\",\n"
        (json_escape (Fault.Profile.to_string p))
  in
  let body =
    Printf.sprintf
      "{\n  \"suite\": \"explorer\",\n%s  \"queries\": [\n%s\n  ]\n}\n"
      faults_field
      (String.concat ",\n" rows)
  in
  (match path with
   | None -> print_string body
   | Some p ->
     let oc = open_out p in
     output_string oc body;
     close_out oc;
     Printf.printf "wrote %s\n" p);
  match (gate, !gate_violations) with
  | None, _ | Some _, [] -> ()
  | Some g, violations ->
    List.iter
      (fun (name, speedup) ->
        Printf.eprintf
          "bench: scaling regression: %s speedup %.2fx at jobs=%d is below \
           the %.2fx gate\n"
          name speedup gate_jobs g)
      (List.rev violations);
    exit 1

(* ----------------------------------------------------- bechamel part -- *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let bolus_psm =
    lazy (Gpca.Model.psm ~variant:Gpca.Model.Bolus_only params)
  in
  let tests =
    [ Test.make ~name:"E1:verified-input-bound"
        (Staged.stage (fun () ->
             let psm = Lazy.force bolus_psm in
             Analysis.Queries.max_delay psm.Transform.psm_net
               ~trigger:Gpca.Model.bolus_req
               ~response:(Transform.Names.input_chan Gpca.Model.bolus_req)
               ~ceiling:2000));
      Test.make ~name:"E2:one-scenario-sim"
        (Staged.stage (fun () ->
             let config =
               Gpca.Experiment.scenario_config params ~request_time:123.0
             in
             Sim.Engine.run ~seed:9 config));
      Test.make ~name:"E3:req1-check-pim"
        (Staged.stage (fun () ->
             Psv.verify_response
               (Gpca.Model.network ~variant:Gpca.Model.Bolus_only params)
               ~trigger:Gpca.Model.bolus_req
               ~response:Gpca.Model.start_infusion ~bound:500));
      Test.make ~name:"E5:read-policy-sim"
        (Staged.stage (fun () -> e5_run Scheme.Read_one));
      Test.make ~name:"E6:witness-trace"
        (Staged.stage (fun () ->
             let net =
               Gpca.Model.network ~variant:Gpca.Model.Bolus_only params
             in
             let t = Mc.Explorer.make net in
             Mc.Explorer.reachable t
               (Mc.Explorer.at t ~aut:"Pump" ~loc:"Infusing")));
      Test.make ~name:"E7:pim-to-psm-transform"
        (Staged.stage (fun () ->
             Gpca.Model.psm ~variant:Gpca.Model.Bolus_only params));
      Test.make ~name:"A1:analytic-bounds"
        (Staged.stage (fun () -> Gpca.Experiment.analytic_bounds params));
      Test.make ~name:"E7b:codegen-c"
        (Staged.stage (fun () ->
             let pim = Gpca.Model.pim ~variant:Gpca.Model.Bolus_only params in
             (Codegen.emit_header pim, Codegen.emit_source pim)));
      Test.make ~name:"infra:query-parse"
        (Staged.stage (fun () ->
             Mc.Query.parse
               "bounded: m_BolusReq -> c_StartInfusion within 500"));
      Test.make ~name:"infra:dbm-ops"
        (Staged.stage (fun () ->
             let z = Zone.Dbm.zero 10 in
             Zone.Dbm.up z;
             for i = 1 to 9 do
               Zone.Dbm.constrain z i 0 (Zone.Bound.le (10 * i))
             done;
             Zone.Dbm.reset z 3;
             Zone.Dbm.extrapolate z
               [| 0; 10; 20; 30; 40; 50; 60; 70; 80; 90 |]));
      Test.make ~name:"infra:xta-roundtrip"
        (Staged.stage (fun () ->
             let psm = Lazy.force bolus_psm in
             let text = Xta.Print.to_string psm.Transform.psm_net in
             Xta.Parse.network text)) ]
  in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) ~stabilize:false ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"psv" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  header "Bechamel timings (per-run estimates)";
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ t ] -> Fmt.pr "%-36s %14.0f ns/run@." name t
      | Some _ | None -> Fmt.pr "%-36s (no estimate)@." name)
    rows

let () =
  match Array.to_list Sys.argv with
  | _ :: "--json" :: rest ->
    let bad fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 3) fmt in
    let int_arg flag s =
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | Some _ | None -> bad "bench: bad %s %S" flag s
    in
    let path = ref None and repeat = ref 1 and jobs_list = ref [] in
    let cache_dir = ref None and faults = ref None in
    let gate = ref None and allow_oversubscribe = ref false in
    let rec parse = function
      | [] -> ()
      | "--repeat" :: r :: rest ->
        repeat := int_arg "--repeat" r;
        parse rest
      | "--jobs" :: l :: rest ->
        jobs_list := List.map (int_arg "--jobs") (String.split_on_char ',' l);
        parse rest
      | "--cache" :: dir :: rest ->
        cache_dir := Some dir;
        parse rest
      | "--faults" :: spec :: rest -> (
        match Fault.Profile.parse spec with
        | Ok p -> faults := Some p; parse rest
        | Error msg -> bad "bench: %s" msg)
      | "--scaling-gate" :: g :: rest -> (
        match float_of_string_opt g with
        | Some v when v > 0.0 -> gate := Some v; parse rest
        | Some _ | None -> bad "bench: bad --scaling-gate %S" g)
      | "--allow-oversubscribe" :: rest ->
        allow_oversubscribe := true;
        parse rest
      | [ ("--repeat" | "--jobs" | "--cache" | "--faults" | "--scaling-gate")
          as flag ] ->
        bad "bench: %s needs a value" flag
      | p :: rest ->
        path := Some p;
        parse rest
    in
    parse rest;
    explorer_bench_json ?path:!path ?cache_dir:!cache_dir ?faults:!faults
      ~repeat:!repeat ~jobs_list:!jobs_list ?gate:!gate
      ~allow_oversubscribe:!allow_oversubscribe ()
  | _ ->
  e4_pim_verification ();
  e123_table1 ();
  e5_read_policies ();
  e6_traces ();
  e7_constructions ();
  a1_period_sweep ();
  a2_buffer_sweep ();
  a3_scheme_matrix ();
  r1_fault_sweep ();
  supplemental_requirements ();
  bechamel_suite ()
