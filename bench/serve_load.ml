(* Closed-loop multi-client load generator for the serve listener.

   Two modes:
   - embedded (default): spawns a Netserve listener in-process on a
     Unix socket, with the GPCA bolus-only PSM as model "gpca" and a
     fresh temp store as the cache — a self-contained latency /
     shedding experiment.
   - --connect ADDR: drives an external `psv serve --listen` process;
     with --tolerate-disconnect a mid-run server exit (e.g. a SIGTERM
     drain experiment) ends each client quietly instead of failing.

   Each client thread runs closed-loop: send one request, wait for its
   response, record the round-trip, repeat.  Every response must be
   well-formed JSON with a known status — anything else is a protocol
   error, and a response that never arrives is a hang; both fail the
   run.  Results (p50/p90/p99, throughput, shed counts) go to stdout
   and, with --json, into a BENCH_serve.json artifact. *)

let clients_spec = ref "2,8"
let requests = ref 100
let queue = ref 64
let jobs = ref 2
let json_out = ref ""
let distinct = ref false
let expect_shed = ref false
let connect_addr = ref ""
let model_name = ref "gpca"
let tolerate_disconnect = ref false

let args =
  [ ("--clients", Arg.Set_string clients_spec,
     "N,M,.. client counts, one run each (default 2,8)");
    ("--requests", Arg.Set_int requests,
     "N requests per client per run (default 100)");
    ("--queue", Arg.Set_int queue,
     "N admission queue capacity of the embedded server (default 64)");
    ("--jobs", Arg.Set_int jobs,
     "N worker domains of the embedded server (default 2)");
    ("--json", Arg.Set_string json_out, "FILE write results as JSON");
    ("--distinct", Arg.Set distinct,
     " every request unique: all cache misses, slow evaluations");
    ("--expect-shed", Arg.Set expect_shed,
     " fail unless the server shed at least one request");
    ("--connect", Arg.Set_string connect_addr,
     "ADDR drive an external listener (HOST:PORT or unix:PATH)");
    ("--model", Arg.Set_string model_name,
     "NAME model field sent in requests (default gpca; a path when \
      driving an external server)");
    ("--tolerate-disconnect", Arg.Set tolerate_disconnect,
     " a server that closes mid-run ends the client, not the bench") ]

let usage = "serve_load [options]"

(* --- request mix ----------------------------------------------------------- *)

(* Warm mix: cheap reachability queries that are store hits after the
   first evaluation.  Distinct mix: sup queries with unique ceilings —
   never a hit, ~1s each on the PSM, exactly what an overload needs. *)
let warm_queries =
  [| "E<> Pump_IO.Infusing";
     "E<> Patient.Observing";
     "A[] not (Pump_IO.Infusing and Patient.Rest)";
     "E<> (Pump_IO.Idle and Patient.Rest)" |]

let request_body ~client ~seq =
  let id = (client * 1_000_000) + seq in
  let query =
    if !distinct then
      Printf.sprintf "sup: m_BolusReq -> c_StartInfusion ceiling %d"
        (3000 + (client * 97) + seq)
    else warm_queries.(seq mod Array.length warm_queries)
  in
  (id, Printf.sprintf "{\"id\": %d, \"model\": %S, \"query\": %S}" id
         !model_name query)

(* --- client side ----------------------------------------------------------- *)

type tally = {
  mutable ok : int;
  mutable busy : int;
  mutable errors : int;
  mutable hung : int;
  mutable disconnected : bool;
  mutable latencies : float list;  (* ms *)
}

let new_tally () =
  { ok = 0; busy = 0; errors = 0; hung = 0; disconnected = false;
    latencies = [] }

let sockaddr_of addr =
  if String.length addr > 5 && String.sub addr 0 5 = "unix:" then
    Unix.ADDR_UNIX (String.sub addr 5 (String.length addr - 5))
  else
    match String.rindex_opt addr ':' with
    | None -> failwith ("bad address: " ^ addr)
    | Some i ->
      let host = String.sub addr 0 i in
      let port = int_of_string (String.sub addr (i + 1)
                                  (String.length addr - i - 1)) in
      let ip =
        if host = "" then Unix.inet_addr_loopback
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.ADDR_INET (ip, port)

let connect addr =
  let sa = sockaddr_of addr in
  let dom = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket ~cloexec:true dom Unix.SOCK_STREAM 0 in
  Unix.connect fd sa;
  (match sa with
  | Unix.ADDR_INET _ ->
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
  | Unix.ADDR_UNIX _ -> ());
  fd

(* Blocking line reader with a deadline; [None] = EOF, [Some ""] never
   happens (responses are non-empty). *)
let recv_line ?(timeout_s = 120.) fd buf_acc =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let chunk = Bytes.create 65536 in
  let take () =
    let s = Buffer.contents buf_acc in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear buf_acc;
      Buffer.add_string buf_acc
        (String.sub s (i + 1) (String.length s - i - 1));
      Some (`Line (String.sub s 0 i))
    | None -> None
  in
  let rec go () =
    match take () with
    | Some r -> Some r
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then None
      else (
        match Unix.select [ fd ] [] [] (Float.min left 1.0) with
        | [], _, _ -> go ()
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> Some `Eof
          | n ->
            Buffer.add_subbytes buf_acc chunk 0 n;
            go ()
          | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
            Some `Eof
          | exception Unix.Unix_error (EINTR, _, _) -> go ()))
  in
  go ()

let client_thread addr client_idx n tally =
  match connect addr with
  | exception _ ->
    if !tolerate_disconnect then tally.disconnected <- true
    else tally.errors <- tally.errors + 1
  | fd ->
    let buf = Buffer.create 4096 in
    let send line =
      let line = line ^ "\n" in
      ignore (Unix.write_substring fd line 0 (String.length line))
    in
    let classify line dt_ms =
      match Store.Json.parse line with
      | Error _ -> tally.errors <- tally.errors + 1
      | Ok j -> (
        match Store.Json.(Option.bind (member "status" j) to_str) with
        | Some "ok" ->
          tally.ok <- tally.ok + 1;
          tally.latencies <- dt_ms :: tally.latencies
        | Some "busy" -> tally.busy <- tally.busy + 1
        | Some "error" ->
          (* server-diagnosed request error: still a protocol-clean
             answer, but the bench sends only valid requests, so any
             error response is a finding *)
          tally.errors <- tally.errors + 1
        | Some _ | None -> tally.errors <- tally.errors + 1)
    in
    let rec loop seq =
      if seq < n then begin
        let _, body = request_body ~client:client_idx ~seq in
        let t0 = Unix.gettimeofday () in
        match send body with
        | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
          if !tolerate_disconnect then tally.disconnected <- true
          else tally.errors <- tally.errors + 1
        | () -> (
          match recv_line fd buf with
          | None -> tally.hung <- tally.hung + 1
          | Some `Eof ->
            if !tolerate_disconnect then tally.disconnected <- true
            else tally.hung <- tally.hung + 1
          | Some (`Line l) ->
            classify l (1000. *. (Unix.gettimeofday () -. t0));
            loop (seq + 1))
      end
    in
    loop 0;
    (try Unix.close fd with Unix.Unix_error _ -> ())

(* Ask the server how much it shed, over a fresh connection. *)
let probe_stats addr =
  match connect addr with
  | exception _ -> None
  | fd ->
    let buf = Buffer.create 1024 in
    let line = "{\"id\": \"bench-stats\", \"stats\": true}\n" in
    (try ignore (Unix.write_substring fd line 0 (String.length line))
     with Unix.Unix_error _ -> ());
    let r =
      match recv_line ~timeout_s:10. fd buf with
      | Some (`Line l) -> Store.Json.parse l |> Result.to_option
      | _ -> None
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    r

let shed_of_stats j =
  let open Store.Json in
  Option.bind j (member "stats")
  |> Fun.flip Option.bind (member "queue")
  |> Fun.flip Option.bind (member "shed")
  |> Fun.flip Option.bind to_int

(* --- percentiles ----------------------------------------------------------- *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let i = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) i))

(* --- one run --------------------------------------------------------------- *)

let run_once addr n_clients =
  let tallies = Array.init n_clients (fun _ -> new_tally ()) in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init n_clients (fun i ->
        Thread.create (fun () -> client_thread addr i !requests tallies.(i)) ())
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let sum f = Array.fold_left (fun a t -> a + f t) 0 tallies in
  let ok = sum (fun t -> t.ok) in
  let busy = sum (fun t -> t.busy) in
  let errors = sum (fun t -> t.errors) in
  let hung = sum (fun t -> t.hung) in
  let answered = ok + busy in
  let lat =
    Array.of_list
      (Array.fold_left (fun acc t -> t.latencies @ acc) [] tallies)
  in
  Array.sort compare lat;
  let shed = shed_of_stats (probe_stats addr) in
  let round3 v = Float.round (v *. 1000.) /. 1000. in
  let open Store.Json in
  let fields =
    [ ("clients", Int n_clients);
      ("requests_per_client", Int !requests);
      ("total", Int (answered + errors + hung));
      ("ok", Int ok);
      ("busy", Int busy);
      ("errors", Int errors);
      ("hung", Int hung);
      ("throughput_rps",
       Float (round3 (float_of_int answered /. Float.max wall_s 1e-9)));
      ("wall_s", Float (round3 wall_s)) ]
  in
  let fields =
    if Array.length lat = 0 then fields
    else
      fields
      @ [ ("p50_ms", Float (round3 (percentile lat 0.50)));
          ("p90_ms", Float (round3 (percentile lat 0.90)));
          ("p99_ms", Float (round3 (percentile lat 0.99))) ]
  in
  let fields =
    match shed with None -> fields | Some s -> fields @ [ ("shed_total", Int s) ]
  in
  Printf.printf
    "clients=%d ok=%d busy=%d errors=%d hung=%d wall=%.2fs rps=%.1f%s%s\n%!"
    n_clients ok busy errors hung wall_s
    (float_of_int answered /. Float.max wall_s 1e-9)
    (if Array.length lat = 0 then ""
     else
       Printf.sprintf " p50=%.3fms p90=%.3fms p99=%.3fms"
         (percentile lat 0.50) (percentile lat 0.90) (percentile lat 0.99))
    (match shed with
    | None -> ""
    | Some s -> Printf.sprintf " shed_total=%d" s);
  (Obj fields, ok, busy, errors, hung, shed)

(* --- embedded server ------------------------------------------------------- *)

let with_embedded_server f =
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "psv_serve_load_%d" (Unix.getpid ()))
  in
  let sock = tmp ^ ".sock" in
  let store_dir = tmp ^ ".store" in
  let store =
    match Store.Disk.open_ store_dir with
    | Ok s -> s
    | Error msg -> failwith ("store: " ^ msg)
  in
  let cache = Analysis.Qcache.make ~warn:(fun _ -> ()) store in
  let psm =
    lazy (Gpca.Model.psm ~variant:Gpca.Model.Bolus_only Gpca.Params.default)
  in
  let load_model name =
    if name = "gpca" then Ok (Lazy.force psm).Transform.psm_net
    else Error (Printf.sprintf "unknown model %S" name)
  in
  let ncfg =
    { Analysis.Netserve.default_config with
      Analysis.Netserve.ns_addr = Analysis.Netserve.Unix_path sock;
      ns_serve =
        { Analysis.Serve.default_config with Analysis.Serve.sv_jobs = !jobs };
      ns_queue = !queue }
  in
  let drain = Analysis.Serve.drain () in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Analysis.Netserve.listen ncfg ~cache ~drain
          ~on_ready:(fun _ -> Atomic.set ready true)
          ~load_model ())
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  if not (Atomic.get ready) then failwith "embedded server did not come up";
  let r =
    Fun.protect
      ~finally:(fun () ->
        Analysis.Serve.request_drain drain;
        ignore (Domain.join server);
        let rec rm path =
          if Sys.file_exists path then
            if Sys.is_directory path then begin
              Array.iter
                (fun g -> rm (Filename.concat path g))
                (Sys.readdir path);
              Unix.rmdir path
            end
            else Sys.remove path
        in
        (try rm store_dir with _ -> ());
        try Sys.remove sock with _ -> ())
      (fun () -> f ("unix:" ^ sock))
  in
  r

(* --- main ------------------------------------------------------------------ *)

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let client_counts =
    String.split_on_char ',' !clients_spec
    |> List.filter_map (fun s ->
           match int_of_string_opt (String.trim s) with
           | Some n when n > 0 -> Some n
           | _ -> None)
  in
  if client_counts = [] then failwith "--clients needs at least one count";
  (* One untimed pass over the warm mix so the store is populated
     before any timed run: the latency runs measure warm-path service,
     not the first cold evaluation of each query. *)
  let warmup addr =
    if not !distinct then
      match connect addr with
      | exception _ -> ()
      | fd ->
        let buf = Buffer.create 1024 in
        Array.iteri
          (fun i q ->
            let line =
              Printf.sprintf
                "{\"id\": \"warm-%d\", \"model\": %S, \"query\": %S}\n" i
                !model_name q
            in
            (try ignore (Unix.write_substring fd line 0 (String.length line))
             with Unix.Unix_error _ -> ());
            ignore (recv_line ~timeout_s:60. fd buf))
          warm_queries;
        (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let drive addr =
    warmup addr;
    List.map (fun c -> run_once addr c) client_counts
  in
  let results =
    if !connect_addr <> "" then drive !connect_addr
    else with_embedded_server drive
  in
  let runs = List.map (fun (j, _, _, _, _, _) -> j) results in
  let doc =
    Store.Json.Obj
      [ ("suite", String "serve");
        ("generator",
         String
           "dune exec bench/serve_load.exe -- --clients LIST --requests N \
            [--queue C] [--jobs J] [--distinct] [--expect-shed] [--json \
            PATH] [--connect ADDR] [--model NAME] [--tolerate-disconnect]");
        ("note",
         String
           "closed-loop clients against the psv serve --listen socket front \
            end (embedded unless --connect): p50/p90/p99 are client-side \
            round-trips of status-ok responses over a warm store; busy \
            counts are shed responses from the admission queue; errors and \
            hung must be 0 for the run to pass.  --distinct makes every \
            request a distinct ~1s cache miss (the overload mix).");
        ("queue", Int !queue);
        ("jobs", Int !jobs);
        ("distinct", Bool !distinct);
        ("runs", List runs) ]
  in
  if !json_out <> "" then begin
    let oc = open_out !json_out in
    output_string oc (Store.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n%!" !json_out
  end;
  let failed = ref false in
  List.iter
    (fun (_, _ok, _busy, errors, hung, _) ->
      if errors > 0 then begin
        Printf.eprintf "FAIL: %d protocol/request errors\n%!" errors;
        failed := true
      end;
      if hung > 0 then begin
        Printf.eprintf "FAIL: %d requests hung\n%!" hung;
        failed := true
      end)
    results;
  if !expect_shed then begin
    let total_shed =
      List.fold_left
        (fun acc (_, _, busy, _, _, shed) ->
          acc + Option.value shed ~default:busy)
        0 results
    in
    if total_shed = 0 then begin
      Printf.eprintf "FAIL: expected shedding, server shed nothing\n%!";
      failed := true
    end
  end;
  if !failed then exit 1
