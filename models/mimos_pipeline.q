# Queries for the multi-rate MIMOS-style pipeline
# (models/mimos_pipeline.xta).  Run with:
#   dune exec bin/psv_cli.exe -- check models/mimos_pipeline.xta models/mimos_pipeline.q
#
# End-to-end: one full sensor period + one full controller period
# + worst-case processing = 10 + 25 + 8 = 43.
bounded: m_Sample -> c_Actuate within 43
sup: m_Sample -> c_Actuate ceiling 200
# Both stages can complete.
E<> Sensor.Forwarded
E<> Controller.Done
# The controller never actuates on a stale (never-staged) value.
A[] not Controller.Done or staged == 1
