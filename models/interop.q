# Queries for the interoperable-medical-system case study
# (models/interop.xta).  Run with:
#   dune exec bin/psv_cli.exe -- check models/interop.xta models/interop.q
#
# The closed-loop safety requirement: a desaturation stops the pump
# within 50 (one 20-unit sampling period + 5 oximeter processing
# + 10 supervisor decision + 15 pump stop).
bounded: m_Desat -> c_PumpStopped within 50
# The bound is tight: one unit less fails.
sup: m_Desat -> c_PumpStopped ceiling 200
# Once the oximeter has published, the platform-side chain alone
# completes within 25.
bounded: spo2_low -> c_PumpStopped within 25
# The pump really can stop, and the patient can reach safety.
E<> Pump.Stopped
E<> Patient.Safe
# The pump never stops without a latched desaturation.
A[] not Pump.Stopped or desat == 1
