(** Deterministic counterexample shrinking.

    Given a network + query on which {!Oracle.core} reports a
    discrepancy of some check class, greedily search for a smaller
    network that still exhibits a discrepancy of the {e same} class:

    + enumerate candidate reductions in a fixed canonical order — drop
      an automaton, drop an edge, drop an invariant atom, drop a guard
      atom, clear a data guard, drop a reset, drop an update, halve or
      decrement a clock-constraint constant;
    + accept the first candidate that (a) still validates and (b) still
      reproduces the discrepancy, then restart the scan on the reduced
      network;
    + stop at the fixed point, then garbage-collect declarations
      (clocks / variables / channels no automaton references any more,
      keeping the query's own channels).

    Every step is a pure function of (config, network, query, seed) and
    every answerer consulted is deterministic at any job count, so the
    same discrepancy shrinks to the byte-identical minimal [.xta] on
    every run and at every [--jobs] — which is what makes corpus
    entries stable artifacts.

    Only construction-independent discrepancies ({!Oracle.Jobs},
    {!Oracle.Xta}, {!Oracle.Store_trip}, {!Oracle.Delta_replay}) can be
    shrunk: the generator's ground truth does not survive surgery on
    the network. *)

type result = {
  sh_net : Ta.Model.network;  (** the minimal reproducing network *)
  sh_xta : string;  (** its canonical [.xta] text *)
  sh_accepted : int;  (** reductions applied *)
  sh_tested : int;  (** candidate oracle runs *)
}

(** [shrink cfg ~check ~seed ~q net] minimises [net].  [check] is the
    discrepancy class to preserve; [seed] must be the value passed to
    {!Oracle.core} when the discrepancy was found.  If [net] does not
    reproduce the discrepancy in the first place the result is [net]
    unchanged with [sh_accepted = 0]. *)
val shrink :
  Oracle.config ->
  check:Oracle.check ->
  seed:int ->
  q:Mc.Query.t ->
  Ta.Model.network ->
  result

(** [write_entry ~dir ~id ~query_text ~meta_json r] persists a corpus
    entry: [dir/id/model.xta], [dir/id/query.q] and [dir/id/meta.json]
    (directories created as needed).  Returns the entry directory. *)
val write_entry :
  dir:string ->
  id:string ->
  query_text:string ->
  meta_json:Store.Json.t ->
  result ->
  string
