(* Greedy deterministic counterexample shrinking — see shrink.mli. *)

open Ta

type result = {
  sh_net : Model.network;
  sh_xta : string;
  sh_accepted : int;
  sh_tested : int;
}

let remove_nth l n = List.filteri (fun i _ -> i <> n) l

let map_nth l n f = List.mapi (fun i x -> if i = n then f x else x) l

let map_auto net ai f =
  { net with Model.net_automata = map_nth net.Model.net_automata ai f }

let map_edge a ei f = { a with Model.aut_edges = map_nth a.Model.aut_edges ei f }

let map_loc a li f =
  { a with Model.aut_locations = map_nth a.Model.aut_locations li f }

let atom_const = function
  | Clockcons.Simple (_, _, n) | Clockcons.Diff (_, _, _, n) -> n

let with_const atom n =
  match atom with
  | Clockcons.Simple (x, r, _) -> Clockcons.Simple (x, r, n)
  | Clockcons.Diff (x, y, r, _) -> Clockcons.Diff (x, y, r, n)

(* candidate reductions in canonical order; each is (description, net) *)
let candidates (net : Model.network) =
  let acc = ref [] in
  let add desc n = acc := (desc, n) :: !acc in
  let autos = net.Model.net_automata in
  (* drop a whole automaton *)
  if List.length autos > 1 then
    List.iteri
      (fun ai (a : Model.automaton) ->
        add
          (Printf.sprintf "drop automaton %s" a.Model.aut_name)
          { net with Model.net_automata = remove_nth autos ai })
      autos;
  (* drop an edge *)
  List.iteri
    (fun ai (a : Model.automaton) ->
      List.iteri
        (fun ei (_ : Model.edge) ->
          add
            (Printf.sprintf "drop %s edge %d" a.Model.aut_name ei)
            (map_auto net ai (fun a ->
                 { a with Model.aut_edges = remove_nth a.Model.aut_edges ei })))
        a.Model.aut_edges)
    autos;
  (* drop one invariant atom *)
  List.iteri
    (fun ai (a : Model.automaton) ->
      List.iteri
        (fun li (l : Model.location) ->
          List.iteri
            (fun ci _ ->
              add
                (Printf.sprintf "drop %s.%s invariant atom %d"
                   a.Model.aut_name l.Model.loc_name ci)
                (map_auto net ai (fun a ->
                     map_loc a li (fun l ->
                         { l with
                           Model.loc_inv = remove_nth l.Model.loc_inv ci }))))
            l.Model.loc_inv)
        a.Model.aut_locations)
    autos;
  (* drop one guard atom / clear the data guard / drop a reset or update *)
  List.iteri
    (fun ai (a : Model.automaton) ->
      List.iteri
        (fun ei (e : Model.edge) ->
          List.iteri
            (fun ci _ ->
              add
                (Printf.sprintf "drop %s edge %d guard atom %d"
                   a.Model.aut_name ei ci)
                (map_auto net ai (fun a ->
                     map_edge a ei (fun e ->
                         { e with
                           Model.edge_guard = remove_nth e.Model.edge_guard ci
                         }))))
            e.Model.edge_guard;
          if e.Model.edge_pred <> Expr.True then
            add
              (Printf.sprintf "clear %s edge %d data guard" a.Model.aut_name
                 ei)
              (map_auto net ai (fun a ->
                   map_edge a ei (fun e ->
                       { e with Model.edge_pred = Expr.True })));
          List.iteri
            (fun ri _ ->
              add
                (Printf.sprintf "drop %s edge %d reset %d" a.Model.aut_name ei
                   ri)
                (map_auto net ai (fun a ->
                     map_edge a ei (fun e ->
                         { e with
                           Model.edge_resets = remove_nth e.Model.edge_resets ri
                         }))))
            e.Model.edge_resets;
          List.iteri
            (fun ui _ ->
              add
                (Printf.sprintf "drop %s edge %d update %d" a.Model.aut_name
                   ei ui)
                (map_auto net ai (fun a ->
                     map_edge a ei (fun e ->
                         { e with
                           Model.edge_updates =
                             remove_nth e.Model.edge_updates ui
                         }))))
            e.Model.edge_updates)
        a.Model.aut_edges)
    autos;
  (* shrink clock-constraint constants: halve, then decrement *)
  (* invariant constants *)
  List.iteri
    (fun ai (a : Model.automaton) ->
      List.iteri
        (fun li (l : Model.location) ->
          List.iteri
            (fun ci atom ->
              let n = atom_const atom in
              List.iter
                (fun n' ->
                  add
                    (Printf.sprintf "%s.%s invariant constant %d -> %d"
                       a.Model.aut_name l.Model.loc_name n n')
                    (map_auto net ai (fun a ->
                         map_loc a li (fun l ->
                             { l with
                               Model.loc_inv =
                                 map_nth l.Model.loc_inv ci (fun at ->
                                     with_const at n')
                             }))))
                ((if n > 1 then [ n / 2 ] else [])
                @ (if n > 0 then [ n - 1 ] else [])))
            l.Model.loc_inv)
        a.Model.aut_locations)
    autos;
  (* guard constants *)
  List.iteri
    (fun ai (a : Model.automaton) ->
      List.iteri
        (fun ei (e : Model.edge) ->
          List.iteri
            (fun ci atom ->
              let n = atom_const atom in
              List.iter
                (fun n' ->
                  add
                    (Printf.sprintf "%s edge %d guard constant %d -> %d"
                       a.Model.aut_name ei n n')
                    (map_auto net ai (fun a ->
                         map_edge a ei (fun e ->
                             { e with
                               Model.edge_guard =
                                 map_nth e.Model.edge_guard ci (fun at ->
                                     with_const at n')
                             }))))
                ((if n > 1 then [ n / 2 ] else [])
                @ (if n > 0 then [ n - 1 ] else [])))
            e.Model.edge_guard)
        a.Model.aut_edges)
    autos;
  List.rev !acc

(* declarations no automaton references any more (the query's channels
   are pinned: the delay monitor needs them declared) *)
let gc_declarations ~keep_channels (net : Model.network) =
  let clocks = Hashtbl.create 8
  and vars = Hashtbl.create 8
  and chans = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace chans c ()) keep_channels;
  let use tbl n = Hashtbl.replace tbl n () in
  let use_atom atom =
    match atom with
    | Clockcons.Simple (x, _, _) -> use clocks x
    | Clockcons.Diff (x, y, _, _) ->
      use clocks x;
      use clocks y
  in
  List.iter
    (fun (a : Model.automaton) ->
      List.iter
        (fun (l : Model.location) -> List.iter use_atom l.Model.loc_inv)
        a.Model.aut_locations;
      List.iter
        (fun (e : Model.edge) ->
          List.iter use_atom e.Model.edge_guard;
          List.iter (use clocks) e.Model.edge_resets;
          List.iter (use vars) (Expr.vars_of_pred e.Model.edge_pred);
          List.iter
            (fun (x, ex) ->
              use vars x;
              List.iter (use vars) (Expr.vars_of_expr ex))
            e.Model.edge_updates;
          match e.Model.edge_sync with
          | Model.Tau -> ()
          | Model.Send c | Model.Recv c -> use chans c)
        a.Model.aut_edges)
    net.Model.net_automata;
  { net with
    Model.net_clocks =
      List.filter (Hashtbl.mem clocks) net.Model.net_clocks;
    net_vars = List.filter (fun (v, _) -> Hashtbl.mem vars v) net.Model.net_vars;
    net_channels =
      List.filter (fun (c, _) -> Hashtbl.mem chans c) net.Model.net_channels }

let query_channels = function
  | Mc.Query.Sup_delay { trigger; response; _ }
  | Mc.Query.Bounded_response { trigger; response; _ } ->
    [ trigger; response ]
  | Mc.Query.Exists_eventually _ | Mc.Query.Always _ -> []

let shrink cfg ~check ~seed ~q net =
  let tested = ref 0 in
  let reproduces n =
    incr tested;
    match Oracle.core cfg ~net:n ~q ~seed with
    | _, _, discs -> List.exists (fun d -> d.Oracle.d_check = check) discs
    | exception _ -> false
  in
  let accepted = ref 0 in
  let rec fixpoint net =
    let rec scan = function
      | [] -> net
      | (_, candidate) :: rest ->
        if Model.validate candidate <> [] then scan rest
        else if reproduces candidate then begin
          incr accepted;
          fixpoint candidate
        end
        else scan rest
    in
    scan (candidates net)
  in
  let minimal =
    if reproduces net then begin
      let reduced = fixpoint net in
      let swept =
        gc_declarations ~keep_channels:(query_channels q) reduced
      in
      if Model.validate swept = [] && reproduces swept then swept else reduced
    end
    else net
  in
  { sh_net = minimal;
    sh_xta = Xta.Print.to_string minimal;
    sh_accepted = !accepted;
    sh_tested = !tested }

(* --------------------------------------------------- corpus output -- *)

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_entry ~dir ~id ~query_text ~meta_json r =
  let entry_dir = Filename.concat dir id in
  mkdirs entry_dir;
  write_file (Filename.concat entry_dir "model.xta") r.sh_xta;
  write_file (Filename.concat entry_dir "query.q") (query_text ^ "\n");
  write_file
    (Filename.concat entry_dir "meta.json")
    (Store.Json.to_string meta_json ^ "\n");
  entry_dir
