(* The differential oracle — see oracle.mli for the check matrix. *)

type mutation = Sup_skew of int

type config = {
  jobs : int;
  scenarios : int;
  sim_faults : Sim.Engine.faults option;
  cache : Analysis.Qcache.t option;
  delta : bool;
  mutation : mutation option;
}

let default =
  { jobs = 2;
    scenarios = 3;
    sim_faults = None;
    cache = None;
    delta = true;
    mutation = None }

type check =
  | Truth
  | Analytic
  | Jobs
  | Bounded
  | Xta
  | Store_trip
  | Delta_replay
  | Sim

let check_name = function
  | Truth -> "truth"
  | Analytic -> "analytic"
  | Jobs -> "jobs"
  | Bounded -> "bounded"
  | Xta -> "xta"
  | Store_trip -> "store"
  | Delta_replay -> "delta"
  | Sim -> "sim"

let check_of_name = function
  | "truth" -> Some Truth
  | "analytic" -> Some Analytic
  | "jobs" -> Some Jobs
  | "bounded" -> Some Bounded
  | "xta" -> Some Xta
  | "store" -> Some Store_trip
  | "delta" -> Some Delta_replay
  | "sim" -> Some Sim
  | _ -> None

type discrepancy = {
  d_check : check;
  d_detail : string;
}

type verdict = {
  v_id : string;
  v_shape : Gen.shape;
  v_sup : int option;
  v_discrepancies : discrepancy list;
  v_wall_ms : float;
}

let outcome_str o = Fmt.str "%a" Mc.Query.pp_outcome o

let sup_of = function
  | Mc.Query.Sup (Mc.Explorer.Sup (v, _)) -> Some v
  | _ -> None

let mutate mutation o =
  match (mutation, o) with
  | Some (Sup_skew k), Mc.Query.Sup (Mc.Explorer.Sup (v, s)) ->
    Mc.Query.Sup (Mc.Explorer.Sup (v + k, s))
  | _, o -> o

let eval1 cfg net q =
  match cfg.cache with
  | Some c -> Analysis.Qcache.eval c net q
  | None -> Mc.Query.eval net q

(* ------------------------- construction-independent answerer pairs -- *)

let core cfg ~net ~q ~seed =
  let discs = ref [] in
  let add d_check fmt =
    Fmt.kstr (fun d_detail -> discs := { d_check; d_detail } :: !discs) fmt
  in
  let r1 = eval1 cfg net q in
  let o1 = mutate cfg.mutation r1.Mc.Query.res_outcome in
  (* parallel answerer: byte-identical outcome at any domain count *)
  let r2 = Mc.Query.eval ~jobs:cfg.jobs net q in
  if o1 <> r2.Mc.Query.res_outcome then
    add Jobs "jobs 1 says %s, jobs %d says %s" (outcome_str o1) cfg.jobs
      (outcome_str r2.Mc.Query.res_outcome);
  (* textual round-trip: print, reparse, re-verify *)
  (match Xta.Parse.network (Xta.Print.to_string net) with
  | Error msg -> add Xta "printed network does not reparse: %s" msg
  | Ok net' -> (
    match Ta.Model.validate net' with
    | _ :: _ as ps ->
      add Xta "reparsed network invalid: %s" (String.concat "; " ps)
    | [] ->
      let rx = Mc.Query.eval net' q in
      if rx.Mc.Query.res_outcome <> r1.Mc.Query.res_outcome then
        add Xta "round-trip changes outcome: %s -> %s"
          (outcome_str r1.Mc.Query.res_outcome)
          (outcome_str rx.Mc.Query.res_outcome)));
  (* store round-trip: the warm answer must equal the cold one *)
  (match cfg.cache with
  | None -> ()
  | Some c ->
    let r1' = Analysis.Qcache.eval c net q in
    if r1'.Mc.Query.res_outcome <> r1.Mc.Query.res_outcome then
      add Store_trip "stored entry answers %s, computed %s"
        (outcome_str r1'.Mc.Query.res_outcome)
        (outcome_str r1.Mc.Query.res_outcome));
  (* incremental ladder on a seeded edit vs a from-scratch run *)
  (if cfg.delta then
     match
       Incr.Edit.random_edit (Random.State.make [| 0xde17a; seed |]) net
     with
     | exception Invalid_argument _ -> ()
     | edit ->
       let sess = Incr.Session.make ~tag:"fuzz" () in
       ignore (Incr.Session.run sess net q);
       let incr_o =
         (Incr.Session.run sess edit.Incr.Edit.ed_net q).Incr.Session.so_result
       in
       let scratch = Mc.Query.eval edit.Incr.Edit.ed_net q in
       if incr_o.Mc.Query.res_outcome <> scratch.Mc.Query.res_outcome then
         add Delta_replay "after %S ladder says %s, scratch says %s"
           edit.Incr.Edit.ed_desc
           (outcome_str incr_o.Mc.Query.res_outcome)
           (outcome_str scratch.Mc.Query.res_outcome));
  (r1, o1, List.rev !discs)

(* ------------------------------------------- simulator cross-check -- *)

let typical_of_scheme scheme ~trigger ~response =
  let ind = Scheme.input_spec scheme trigger in
  let outd = Scheme.output_spec scheme response in
  { Sim.Engine.typ_input_proc =
      (fun _ ->
        ( float_of_int ind.Scheme.in_delay.Scheme.delay_min,
          float_of_int ind.Scheme.in_delay.Scheme.delay_max ));
    typ_output_proc =
      (fun _ ->
        ( float_of_int outd.Scheme.out_delay.Scheme.delay_min,
          float_of_int outd.Scheme.out_delay.Scheme.delay_max ));
    typ_exec =
      ( float_of_int scheme.Scheme.is_exec.Scheme.wcet_min,
        float_of_int scheme.Scheme.is_exec.Scheme.wcet_max ) }

let sim_check cfg (inst : Gen.instance) (si : Gen.sim_info) ~sup add =
  let scheme = si.Gen.si_scheme in
  let typical =
    typical_of_scheme scheme ~trigger:inst.Gen.trigger
      ~response:inst.Gen.response
  in
  let phase_span =
    3.0 *. float_of_int (Option.value ~default:10 (Scheme.period_opt scheme))
  in
  let st =
    Random.State.make [| 0x51a4; inst.Gen.seed; inst.Gen.index |]
  in
  for scenario = 0 to cfg.scenarios - 1 do
    let t = Random.State.float st phase_span in
    let sim_cfg =
      { Sim.Engine.cfg_pim = si.Gen.si_pim;
        cfg_scheme = scheme;
        cfg_typical = typical;
        cfg_stimuli = [ (t, inst.Gen.trigger) ];
        cfg_horizon = t +. (4.0 *. float_of_int (Gen.ub inst)) +. 100.0 }
    in
    let log =
      Sim.Engine.run
        ~seed:((1000 * inst.Gen.index) + scenario)
        ?faults:cfg.sim_faults sim_cfg
    in
    List.iter
      (fun s ->
        match Sim.Measure.mc_delay s with
        | None -> ()
        | Some d ->
          if d < float_of_int inst.Gen.floor -. 1e-9 then
            add Sim
              (Printf.sprintf "scenario %d measured %.3f below the floor %d"
                 scenario d inst.Gen.floor);
          (match (cfg.sim_faults, sup) with
          | None, Some v when d > float_of_int v +. 1e-9 ->
            add Sim
              (Printf.sprintf
                 "scenario %d measured %.3f above the verified sup %d"
                 scenario d v)
          | _ -> ()))
      (Sim.Measure.samples log ~trigger:inst.Gen.trigger
         ~response:inst.Gen.response)
  done

(* ------------------------------------------------------ the oracle -- *)

let run cfg (inst : Gen.instance) =
  let t0 = Unix.gettimeofday () in
  let q = Gen.query inst in
  let r1, o1, core_discs =
    core cfg ~net:inst.Gen.net ~q ~seed:(inst.Gen.seed + inst.Gen.index)
  in
  let discs = ref (List.rev core_discs) in
  let add d_check fmt =
    Fmt.kstr (fun d_detail -> discs := { d_check; d_detail } :: !discs) fmt
  in
  (* ground truth *)
  (match (inst.Gen.truth, sup_of o1) with
  | Gen.Exact e, Some v ->
    if v <> e then add Truth "constructed sup is %d, explorer says %d" e v
  | Gen.Between (lb, ub), Some v ->
    if v < lb || v > ub then
      add Analytic "explorer sup %d outside the analytic window [%d, %d]" v
        lb ub
  | _, None ->
    add Truth "expected a sup value, explorer says %s" (outcome_str o1));
  (* bounded verdicts on both sides of the sup *)
  let bounded bound =
    Mc.Query.Bounded_response
      { trigger = inst.Gen.trigger; response = inst.Gen.response; bound }
  in
  (match (Mc.Query.eval inst.Gen.net (bounded (Gen.ub inst))).res_outcome with
  | Mc.Query.Holds -> ()
  | o -> add Bounded "within %d should hold, got %s" (Gen.ub inst)
           (outcome_str o));
  (match
     (Mc.Query.eval inst.Gen.net (bounded (inst.Gen.floor - 1))).res_outcome
   with
  | Mc.Query.Fails _ -> ()
  | o ->
    add Bounded "within %d should fail (floor %d), got %s"
      (inst.Gen.floor - 1) inst.Gen.floor (outcome_str o));
  (* simulator measurement *)
  (match inst.Gen.sim with
  | Some si when cfg.scenarios > 0 ->
    sim_check cfg inst si
      ~sup:(sup_of r1.Mc.Query.res_outcome)
      (fun c detail -> add c "%s" detail)
  | Some _ | None -> ());
  { v_id = inst.Gen.id;
    v_shape = inst.Gen.shape;
    v_sup = sup_of r1.Mc.Query.res_outcome;
    v_discrepancies = List.rev !discs;
    v_wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) }
