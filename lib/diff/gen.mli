(** Seeded random model generator for differential fuzzing.

    Each generated {!instance} is a small, well-formed network of timed
    automata together with one bounded-response requirement whose
    worst-case trigger-to-response delay is {e known by construction}:
    the shapes are built so the supremum is an arithmetic function of
    the drawn parameters (sums, maxima, period alignments), giving the
    differential oracle an answer key that involves no model checking.

    Four shapes, in increasing platform realism:

    - {b Chain} — [k] relay stages in series, stage [i] holding the
      token for a nondeterministic [d_i in [dmin_i, dmax_i]].  The
      worst-case end-to-end delay is exactly [sum dmax_i]; no complete
      run beats [sum dmin_i].
    - {b Fan_in} — [n] parallel branches released by one broadcast,
      branch [i] firing its completion within [[a_i, b_i]]; a counting
      joiner announces the response from a committed location the
      instant the last branch lands.  Worst case exactly [max b_i];
      floor [max a_i].
    - {b Pipeline} — a MIMOS-style multi-rate two-stage pipeline: the
      input is latched into a shared flag, sampled by a period-[P1]
      task that forwards it to a period-[P2] task, which processes for
      [e2 in [e2min, e2max]] and emits.  With free trigger phase the
      worst case is exactly [P1 + P2 + e2max] (full miss of both rates
      plus the longest processing), the floor [e2min].
    - {b Psm_scheme} — a one-shot request/acknowledge PIM pushed
      through {!Transform.psm_of_pim} under a randomly drawn (valid)
      implementation scheme.  Here the exact supremum is not known in
      closed form; the instance instead carries the analytic window
      [[Bounds.relaxed_mc_delay_min, Bounds.relaxed_mc_delay]] (the
      generator keeps the scheme inside the lemmas' sound fragment:
      one serial stimulus, software deadline slack covering a full
      invocation period) and the PIM + scheme ride along so the
      simulator can measure the same boundary.

    Generation is deterministic in [(seed, index, shape)] — same
    inputs, byte-identical instance — which is what makes fuzz runs
    reproducible and counterexamples replayable from their seed. *)

type shape = Chain | Fan_in | Pipeline | Psm_scheme

val all_shapes : shape list

val shape_name : shape -> string

(** Inverse of {!shape_name}; [None] on an unknown name. *)
val shape_of_name : string -> shape option

(** What is known about the worst-case trigger-to-response delay. *)
type truth =
  | Exact of int  (** the supremum is exactly this value *)
  | Between of int * int  (** analytic window: [lb <= sup <= ub] *)

(** Everything the simulator needs to measure a {!Psm_scheme} instance
    at the same boundary the model checker verified. *)
type sim_info = {
  si_pim : Transform.Pim.t;
  si_scheme : Scheme.t;
  si_pmin : int;  (** software internal delay, lower bound *)
  si_pmax : int;  (** software internal delay, upper bound (deadline) *)
}

type instance = {
  id : string;  (** e.g. ["chain-000017"] — unique per (shape, index) *)
  seed : int;
  index : int;
  shape : shape;
  net : Ta.Model.network;
  trigger : string;  (** the requirement's m-channel *)
  response : string;  (** the requirement's c-channel *)
  ceiling : int;  (** sup-query ceiling, comfortably above the truth *)
  truth : truth;
  floor : int;
      (** every complete trigger-to-response run takes at least this
          long, on any conforming platform, under any fault profile
          that only stretches delays.  Always [>= 1], so [floor - 1]
          is a valid always-failing bound. *)
  sim : sim_info option;  (** present exactly on {!Psm_scheme} *)
}

(** [instance ~seed ~index shape] generates deterministically.  The
    result validates cleanly ({!Ta.Model.validate} returns []). *)
val instance : seed:int -> index:int -> shape -> instance

(** The instance's sup query:
    [sup: trigger -> response ceiling ceiling]. *)
val query : instance -> Mc.Query.t

(** Upper end of {!truth} ([Exact v] gives [v]). *)
val ub : instance -> int
