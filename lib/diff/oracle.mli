(** The differential oracle: run one generated instance through every
    independent answerer the repository has and assert pairwise
    consistency.

    Answerers and cross-checks, per instance:

    - {b truth} — the sequential explorer's sup against the generator's
      known-by-construction value ({!Gen.Exact}) or analytic Lemma-2
      window ({!Gen.Between}, reported as the {!Analytic} check);
    - {b jobs} — {!Mc.Parsearch} at [config.jobs] domains must return
      the identical outcome (the library's determinism guarantee);
    - {b bounded} — [bounded: t -> r within ub] must hold and
      [within floor - 1] must fail, exercising the verdict path on both
      sides of the sup;
    - {b xta} — print → reparse → re-verify: the textual round-trip
      must preserve the outcome byte-for-byte;
    - {b store} — with a cache attached, the warm store answer must
      equal the cold computed one (entry round-trip);
    - {b delta} — a seeded {!Incr.Edit.random_edit} re-verified through
      the {!Incr.Session} ladder must match a from-scratch run on the
      edited network;
    - {b sim} — for {!Gen.Psm_scheme} instances, measured M-C delays
      over randomized scenarios must stay within [[floor, sup]]; under
      a fault profile (which only ever stretches delays) the upper
      comparison is skipped and the floor must still hold.

    The [mutation] hook skews one answerer on purpose — the harness's
    own smoke detector: a skewed jobs-1 sup must be caught as a [Jobs]
    discrepancy and must survive shrinking. *)

(** Test-only fault injection: report the jobs-1 sup as [v + k]. *)
type mutation = Sup_skew of int

type config = {
  jobs : int;  (** domain count of the parallel answerer *)
  scenarios : int;  (** sim scenarios per {!Gen.Psm_scheme} instance *)
  sim_faults : Sim.Engine.faults option;
      (** measure under a degraded platform; disables the sim upper
          comparison, keeps the floor *)
  cache : Analysis.Qcache.t option;  (** enables the store round-trip *)
  delta : bool;  (** enables the incremental-replay cross-check *)
  mutation : mutation option;
}

(** [jobs = 2], [scenarios = 3], no faults, no cache, [delta = true],
    no mutation. *)
val default : config

type check =
  | Truth
  | Analytic
  | Jobs
  | Bounded
  | Xta
  | Store_trip
  | Delta_replay
  | Sim

val check_name : check -> string
val check_of_name : string -> check option

type discrepancy = {
  d_check : check;
  d_detail : string;
}

type verdict = {
  v_id : string;
  v_shape : Gen.shape;
  v_sup : int option;  (** the (unmutated) jobs-1 sup, when defined *)
  v_discrepancies : discrepancy list;
  v_wall_ms : float;
}

(** The construction-independent answerer pairs (jobs, xta, store,
    delta) on a bare network + query — the subset that stays meaningful
    on shrunk networks, where the generator's truth no longer applies.
    Returns the jobs-1 result, its (possibly mutated) outcome, and the
    discrepancies.  [seed] keys the delta edit.  May raise whatever
    {!Mc.Query.eval} raises on a hostile network. *)
val core :
  config ->
  net:Ta.Model.network ->
  q:Mc.Query.t ->
  seed:int ->
  Mc.Query.result * Mc.Query.outcome * discrepancy list

(** The full oracle on a generated instance. *)
val run : config -> Gen.instance -> verdict
