(* Seeded random model generator: see gen.mli for the shape catalogue
   and the construction arguments behind each ground-truth bound. *)

open Ta

type shape = Chain | Fan_in | Pipeline | Psm_scheme

let all_shapes = [ Chain; Fan_in; Pipeline; Psm_scheme ]

let shape_name = function
  | Chain -> "chain"
  | Fan_in -> "fan-in"
  | Pipeline -> "pipeline"
  | Psm_scheme -> "psm-scheme"

let shape_of_name = function
  | "chain" -> Some Chain
  | "fan-in" | "fanin" -> Some Fan_in
  | "pipeline" -> Some Pipeline
  | "psm-scheme" | "psm" -> Some Psm_scheme
  | _ -> None

let shape_code = function
  | Chain -> 1
  | Fan_in -> 2
  | Pipeline -> 3
  | Psm_scheme -> 4

type truth = Exact of int | Between of int * int

type sim_info = {
  si_pim : Transform.Pim.t;
  si_scheme : Scheme.t;
  si_pmin : int;
  si_pmax : int;
}

type instance = {
  id : string;
  seed : int;
  index : int;
  shape : shape;
  net : Model.network;
  trigger : string;
  response : string;
  ceiling : int;
  truth : truth;
  floor : int;
  sim : sim_info option;
}

let loc = Model.location
let edge = Model.edge

(* inclusive uniform draw *)
let int_in st lo hi = lo + Random.State.int st (hi - lo + 1)

(* the one-shot observer: raises the trigger whenever it likes, then
   waits for the response — the environment of every shape *)
let observer ~trigger ~response =
  Model.automaton ~name:"Env" ~initial:"E0"
    [ loc "E0"; loc "E1"; loc "E2" ]
    [ edge ~sync:(Model.Send trigger) "E0" "E1";
      edge ~sync:(Model.Recv response) "E1" "E2" ]

(* ----------------------------------------------------------- chain -- *)

(* k relay stages in series; stage i holds the token for
   [dmin_i, dmax_i].  Internal links are binary channels whose receiver
   is always parked on its receive edge, so hand-offs are immediate:
   the end-to-end delay is exactly the sum of the holds. *)
let chain st ~seed ~index =
  let k = int_in st 1 4 in
  let stages =
    List.init k (fun i ->
        let dmin = int_in st (if i = 0 then 1 else 0) 6 in
        (dmin, dmin + int_in st 0 6))
  in
  let trigger = "m_start" and response = "c_done" in
  let chan_in i = if i = 0 then trigger else Printf.sprintf "lnk%d" i in
  let chan_out i =
    if i = k - 1 then response else Printf.sprintf "lnk%d" (i + 1)
  in
  let clock i = Printf.sprintf "cx%d" (i + 1) in
  let stage i (dmin, dmax) =
    Model.automaton
      ~name:(Printf.sprintf "S%d" (i + 1))
      ~initial:"W"
      [ loc "W"; loc ~inv:[ Clockcons.le (clock i) dmax ] "P"; loc "D" ]
      [ edge ~sync:(Model.Recv (chan_in i)) ~resets:[ clock i ] "W" "P";
        edge
          ~guard:[ Clockcons.ge (clock i) dmin ]
          ~sync:(Model.Send (chan_out i)) "P" "D" ]
  in
  let links =
    List.init (max 0 (k - 1)) (fun i ->
        (Printf.sprintf "lnk%d" (i + 1), Model.Binary))
  in
  let net =
    Model.network
      ~name:(Printf.sprintf "chain_s%d_i%d" seed index)
      ~clocks:(List.init k clock) ~vars:[]
      ~channels:
        ([ (trigger, Model.Broadcast); (response, Model.Broadcast) ] @ links)
      (observer ~trigger ~response :: List.mapi stage stages)
  in
  let ub = List.fold_left (fun a (_, d) -> a + d) 0 stages in
  let floor = List.fold_left (fun a (d, _) -> a + d) 0 stages in
  (net, trigger, response, Exact ub, floor, ub, None)

(* ---------------------------------------------------------- fan-in -- *)

(* n branches released by one broadcast; branch i fires its completion
   within [a_i, b_i].  The joiner counts completions and announces the
   response from a committed location, so the response instant is the
   last completion: worst case max b_i, floor max a_i. *)
let fan_in st ~seed ~index =
  let n = int_in st 2 4 in
  let branches =
    List.init n (fun _ ->
        let a = int_in st 1 6 in
        (a, a + int_in st 0 6))
  in
  let trigger = "m_go" and response = "c_done" in
  let clock i = Printf.sprintf "by%d" (i + 1) in
  let fin i = Printf.sprintf "fin%d" (i + 1) in
  let branch i (a, b) =
    Model.automaton
      ~name:(Printf.sprintf "B%d" (i + 1))
      ~initial:"B0"
      [ loc "B0"; loc ~inv:[ Clockcons.le (clock i) b ] "B1"; loc "B2" ]
      [ edge ~sync:(Model.Recv trigger) ~resets:[ clock i ] "B0" "B1";
        edge
          ~guard:[ Clockcons.ge (clock i) a ]
          ~sync:(Model.Send (fin i)) "B1" "B2" ]
  in
  let bump = [ ("cnt", Expr.(var "cnt" + int 1)) ] in
  let joiner =
    Model.automaton ~name:"Join" ~initial:"J0"
      [ loc "J0"; loc ~kind:Model.Committed "JD"; loc "End" ]
      (List.concat
         (List.init n (fun i ->
              [ edge
                  ~pred:(Expr.lt (Expr.var "cnt") (Expr.int (n - 1)))
                  ~sync:(Model.Recv (fin i)) ~updates:bump "J0" "J0";
                edge
                  ~pred:(Expr.var_eq "cnt" (n - 1))
                  ~sync:(Model.Recv (fin i)) ~updates:bump "J0" "JD" ]))
      @ [ edge ~sync:(Model.Send response) "JD" "End" ])
  in
  let net =
    Model.network
      ~name:(Printf.sprintf "fanin_s%d_i%d" seed index)
      ~clocks:(List.init n clock)
      ~vars:[ ("cnt", Model.int_var ~min:0 ~max:n 0) ]
      ~channels:
        ([ (trigger, Model.Broadcast); (response, Model.Broadcast) ]
        @ List.init n (fun i -> (fin i, Model.Binary)))
      ((observer ~trigger ~response :: List.mapi branch branches) @ [ joiner ])
  in
  let ub = List.fold_left (fun a (_, b) -> max a b) 0 branches in
  let floor = List.fold_left (fun m (a, _) -> max m a) 0 branches in
  (net, trigger, response, Exact ub, floor, ub, None)

(* -------------------------------------------------------- pipeline -- *)

(* MIMOS-style multi-rate two-stage pipeline.  The trigger is latched
   into flag v1; a period-P1 sampler forwards it (v2) at its next tick;
   a period-P2 worker picks v2 up at its next tick, processes for
   [e2min, e2max] and emits.  Free trigger phase makes both full-period
   misses reachable simultaneously (tick coincidence at multiples of
   lcm(P1, P2), tick ordered before the latch), so the worst case is
   exactly P1 + P2 + e2max; the floor is e2min (both ticks hit). *)
let pipeline st ~seed ~index =
  let p1 = int_in st 2 6 and p2 = int_in st 2 6 in
  let e2min = int_in st 1 4 in
  let e2max = e2min + int_in st 0 4 in
  let trigger = "m_in" and response = "c_out" in
  let latch =
    Model.automaton ~name:"Latch" ~initial:"L0"
      [ loc "L0"; loc "L1" ]
      [ edge ~sync:(Model.Recv trigger)
          ~updates:[ ("v1", Expr.int 1) ]
          "L0" "L1" ]
  in
  let stage1 =
    Model.automaton ~name:"Stage1" ~initial:"A"
      [ loc ~inv:[ Clockcons.le "px1" p1 ] "A"; loc "A1" ]
      [ edge
          ~guard:[ Clockcons.eq_ "px1" p1 ]
          ~pred:(Expr.var_eq "v1" 0) ~resets:[ "px1" ] "A" "A";
        edge
          ~guard:[ Clockcons.eq_ "px1" p1 ]
          ~pred:(Expr.var_eq "v1" 1)
          ~updates:[ ("v2", Expr.int 1) ]
          "A" "A1" ]
  in
  let stage2 =
    Model.automaton ~name:"Stage2" ~initial:"B"
      [ loc ~inv:[ Clockcons.le "px2" p2 ] "B";
        loc ~inv:[ Clockcons.le "py" e2max ] "W";
        loc "Done" ]
      [ edge
          ~guard:[ Clockcons.eq_ "px2" p2 ]
          ~pred:(Expr.var_eq "v2" 0) ~resets:[ "px2" ] "B" "B";
        edge
          ~guard:[ Clockcons.eq_ "px2" p2 ]
          ~pred:(Expr.var_eq "v2" 1) ~resets:[ "py" ] "B" "W";
        edge
          ~guard:[ Clockcons.ge "py" e2min ]
          ~sync:(Model.Send response) "W" "Done" ]
  in
  let net =
    Model.network
      ~name:(Printf.sprintf "pipeline_s%d_i%d" seed index)
      ~clocks:[ "px1"; "px2"; "py" ]
      ~vars:[ ("v1", Model.flag ()); ("v2", Model.flag ()) ]
      ~channels:[ (trigger, Model.Broadcast); (response, Model.Broadcast) ]
      [ observer ~trigger ~response; latch; stage1; stage2 ]
  in
  let ub = p1 + p2 + e2max in
  (net, trigger, response, Exact ub, e2min, ub, None)

(* ------------------------------------------------------ psm-scheme -- *)

(* One-shot request/acknowledge PIM pushed through the PIM->PSM
   transformation under a random valid scheme.  The exact supremum is
   not closed-form; the analytic Lemma-2 window brackets it.  The
   software deadline pmax leaves a full invocation period plus one
   execution window of slack above pmin, so the MIO can always honour
   its location invariant inside some compute window — no platform
   phase can strand the deadline (and the simulator agrees with the
   verified model about which runs exist). *)
let psm_scheme st ~seed ~index =
  let trigger = "m_req" and response = "c_ack" in
  let period = int_in st 4 10 in
  let wcet_max = int_in st 1 (min 3 (period - 1)) in
  let pmin = int_in st 1 5 in
  let pmax = pmin + period + wcet_max + int_in st 0 4 in
  let software =
    Model.automaton ~name:"M" ~initial:"Idle"
      [ loc "Idle"; loc ~inv:[ Clockcons.le "sx" pmax ] "Prep"; loc "Done" ]
      [ edge ~sync:(Model.Recv trigger) ~resets:[ "sx" ] "Idle" "Prep";
        edge
          ~guard:[ Clockcons.ge "sx" pmin ]
          ~sync:(Model.Send response) "Prep" "Done" ]
  in
  let pim_net =
    Model.network
      ~name:(Printf.sprintf "psm_s%d_i%d" seed index)
      ~clocks:[ "sx" ] ~vars:[]
      ~channels:[ (trigger, Model.Broadcast); (response, Model.Broadcast) ]
      [ software; observer ~trigger ~response ]
  in
  let pim = Transform.Pim.make pim_net ~software:"M" ~environment:"Env" in
  let imin = int_in st 1 3 in
  let in_delay = Scheme.delay imin (imin + int_in st 0 3) in
  let input =
    if Random.State.bool st then Scheme.interrupt_input in_delay
    else Scheme.polling_input ~interval:(int_in st 2 6) in_delay
  in
  let omin = int_in st 1 3 in
  let output = Scheme.pulse_output (Scheme.delay omin (omin + int_in st 0 3)) in
  let comm st =
    if Random.State.bool st then Scheme.Shared_variable
    else
      Scheme.Buffer
        ( int_in st 1 3,
          if Random.State.bool st then Scheme.Read_all else Scheme.Read_one )
  in
  let scheme =
    { Scheme.is_name = Printf.sprintf "fuzz_s%d_i%d" seed index;
      is_inputs = [ (trigger, input) ];
      is_outputs = [ (response, output) ];
      is_input_comm = comm st;
      is_output_comm = comm st;
      is_invocation = Scheme.Periodic period;
      is_exec = { Scheme.wcet_min = 1; wcet_max } }
  in
  (match Scheme.check scheme with
  | [] -> ()
  | ps ->
    invalid_arg
      (Printf.sprintf "Diff.Gen: generated invalid scheme (%s)"
         (String.concat "; " ps)));
  let psm = Transform.psm_of_pim pim scheme in
  let ub =
    Analysis.Bounds.relaxed_mc_delay scheme ~input:trigger ~output:response
      ~internal:pmax
  in
  let lb =
    Analysis.Bounds.relaxed_mc_delay_min scheme ~input:trigger
      ~output:response ~internal_min:pmin
  in
  let floor =
    Analysis.Bounds.input_delay_min scheme trigger
    + pmin
    + Analysis.Bounds.output_delay_min scheme response
  in
  ( psm.Transform.psm_net,
    trigger,
    response,
    Between (lb, ub),
    floor,
    ub,
    Some { si_pim = pim; si_scheme = scheme; si_pmin = pmin; si_pmax = pmax } )

(* ------------------------------------------------------- dispatch -- *)

let instance ~seed ~index shape =
  let st = Random.State.make [| 0x5eed; seed; index; shape_code shape |] in
  let net, trigger, response, truth, floor, ub, sim =
    match shape with
    | Chain -> chain st ~seed ~index
    | Fan_in -> fan_in st ~seed ~index
    | Pipeline -> pipeline st ~seed ~index
    | Psm_scheme -> psm_scheme st ~seed ~index
  in
  (match Model.validate net with
  | [] -> ()
  | ps ->
    invalid_arg
      (Printf.sprintf "Diff.Gen: generated invalid network (%s)"
         (String.concat "; " ps)));
  { id = Printf.sprintf "%s-%06d" (shape_name shape) index;
    seed;
    index;
    shape;
    net;
    trigger;
    response;
    ceiling = ub + max 32 (ub / 2);
    truth;
    floor;
    sim }

let query i =
  Mc.Query.Sup_delay
    { trigger = i.trigger; response = i.response; ceiling = i.ceiling }

let ub i = match i.truth with Exact v -> v | Between (_, ub) -> ub
