(** The discrete-event platform simulator: the stand-in for the paper's
    physical infusion pump platform and oscilloscope.

    The engine realises an implementation scheme mechanically: interrupt
    dispatch or polling loops at the mc-boundary, bounded io-boundary
    slots, a periodic or aperiodic executive running the
    {!Code_runner} interpreter of the software automaton, and output
    devices — all with processing delays drawn uniformly from
    {e typical-case} intervals supplied by the caller.  The scheme's
    [delay_min]/[delay_max] windows are tested WCETs; typical runs sit
    well inside them, exactly as the paper's measured delays sit inside
    the verified bounds.

    The result is a timestamped event log of both system boundaries, from
    which {!Measure} extracts the M-C, Input- and Output-Delays. *)

(** Typical-case delay distributions (uniform over the given interval,
    in the same time unit as the models). *)
type typical = {
  typ_input_proc : string -> float * float;   (** per m-channel *)
  typ_output_proc : string -> float * float;  (** per c-channel *)
  typ_exec : float * float;                   (** invocation execution time *)
}

type event =
  | Env_signal of string      (** the environment raises an m-signal *)
  | Input_inserted of string  (** processed input entered the io slot *)
  | Input_read of string      (** the code consumed the input *)
  | Input_discarded of string (** delivered, but no enabled edge *)
  | Input_lost of string      (** missed interrupt, overflow or overwrite *)
  | Code_output of string     (** the code produced an output *)
  | Output_visible of string  (** the environment observes the c-signal *)
  | Output_lost of string     (** output overflow or overwrite *)

type entry = {
  at : float;
  event : event;
}

type config = {
  cfg_pim : Transform.Pim.t;
  cfg_scheme : Scheme.t;
  cfg_typical : typical;
  cfg_stimuli : (float * string) list;  (** environment signal times *)
  cfg_horizon : float;                  (** simulation end time *)
}

(** Fault-injection profile for robustness stress-testing.  Faults model
    a degraded platform, not a different one: delay jitter only ever
    {e stretches} device processing delays (never shortens them), and
    drop/duplicate act on mc-boundary samples before the device reacts.
    Consequently the scheme's analytic {e lower} bounds
    ({!Analysis.Bounds.input_delay_min}) still hold under any profile —
    the property the fault-injection tests pin down. *)
type faults = {
  f_seed : int;          (** fault-stream RNG seed, independent of [~seed] *)
  f_delay_jitter : float;(** device delays stretched by up to this fraction *)
  f_drop : float;        (** probability an env sample is lost pre-device *)
  f_dup : float;         (** probability an env sample bounces (duplicates) *)
}

(** [faults ()] builds a profile; raises [Invalid_argument] when
    [jitter < 0] or a probability is outside [[0, 1]]. *)
val faults :
  ?seed:int -> ?jitter:float -> ?drop:float -> ?dup:float -> unit -> faults

(** [run ~seed config] simulates one scenario and returns the event log
    in time order.  Deterministic in [(seed, faults, config)]; with
    [?faults] omitted the run is draw-for-draw identical to the engine
    without fault injection. *)
val run : seed:int -> ?faults:faults -> config -> entry list

val pp_event : Format.formatter -> event -> unit
val pp_entry : Format.formatter -> entry -> unit
