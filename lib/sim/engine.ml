type typical = {
  typ_input_proc : string -> float * float;
  typ_output_proc : string -> float * float;
  typ_exec : float * float;
}

type event =
  | Env_signal of string
  | Input_inserted of string
  | Input_read of string
  | Input_discarded of string
  | Input_lost of string
  | Code_output of string
  | Output_visible of string
  | Output_lost of string

type entry = {
  at : float;
  event : event;
}

type config = {
  cfg_pim : Transform.Pim.t;
  cfg_scheme : Scheme.t;
  cfg_typical : typical;
  cfg_stimuli : (float * string) list;
  cfg_horizon : float;
}

type faults = {
  f_seed : int;
  f_delay_jitter : float;
  f_drop : float;
  f_dup : float;
}

let faults ?(seed = 7) ?(jitter = 0.0) ?(drop = 0.0) ?(dup = 0.0) () =
  if jitter < 0.0 then invalid_arg "Engine.faults: jitter must be >= 0";
  let prob name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Engine.faults: %s must be in [0, 1]" name)
  in
  prob "drop" drop;
  prob "dup" dup;
  { f_seed = seed; f_delay_jitter = jitter; f_drop = drop; f_dup = dup }

(* queued simulation events *)
type sim_event =
  | Stimulus of string
  | Poll of string
  | Latch_drop of string * int  (* generation, to cancel stale drops *)
  | Input_done of string
  | Invoke
  | Window_end
  | Output_done of string

type input_device = {
  in_chan : string;
  in_spec : Scheme.mc_input;
  mutable in_latch : bool;
  mutable in_latch_gen : int;
  mutable in_busy : bool;
  mutable in_buf : int;
}

type output_device = {
  out_chan : string;
  mutable out_busy : bool;
  mutable out_buf : int;
}

type executive = {
  mutable exe_busy : bool;
  mutable exe_pending_invoke : bool;
  mutable exe_staged : string list;  (* outputs of the current invocation *)
}

let pp_event ppf = function
  | Env_signal c -> Fmt.pf ppf "env-signal %s" c
  | Input_inserted c -> Fmt.pf ppf "input-inserted %s" c
  | Input_read c -> Fmt.pf ppf "input-read %s" c
  | Input_discarded c -> Fmt.pf ppf "input-discarded %s" c
  | Input_lost c -> Fmt.pf ppf "input-lost %s" c
  | Code_output c -> Fmt.pf ppf "code-output %s" c
  | Output_visible c -> Fmt.pf ppf "output-visible %s" c
  | Output_lost c -> Fmt.pf ppf "output-lost %s" c

let pp_entry ppf e = Fmt.pf ppf "%8.2f  %a" e.at pp_event e.event

let input_capacity scheme =
  match scheme.Scheme.is_input_comm with
  | Scheme.Buffer (size, _) -> size
  | Scheme.Shared_variable -> 1

let output_capacity scheme =
  match scheme.Scheme.is_output_comm with
  | Scheme.Buffer (size, _) -> size
  | Scheme.Shared_variable -> 1

let run ~seed ?faults config =
  let rng = Rng.create seed in
  (* the fault stream has its own RNG so that [faults = None] is
     draw-for-draw identical to the engine before fault injection
     existed, and so that the same fault seed reproduces the same
     degradation across different nominal seeds *)
  let frng = Option.map (fun f -> (Rng.create f.f_seed, f)) faults in
  let chance p =
    match frng with
    | Some (r, _) when p > 0.0 -> Rng.float01 r < p
    | Some _ | None -> false
  in
  (* jitter only ever stretches a device delay; it never shortens one,
     so analytic lower bounds survive any degradation level *)
  let jitter v =
    match frng with
    | Some (r, f) when f.f_delay_jitter > 0.0 ->
      v *. (1.0 +. (Rng.float01 r *. f.f_delay_jitter))
    | Some _ | None -> v
  in
  let scheme = config.cfg_scheme in
  let pim = config.cfg_pim in
  let log = ref [] in
  let record at event = log := { at; event } :: !log in
  let queue : sim_event Event_queue.t = Event_queue.create () in
  let inputs =
    List.map
      (fun m ->
        { in_chan = m;
          in_spec = Scheme.input_spec scheme m;
          in_latch = false;
          in_latch_gen = 0;
          in_busy = false;
          in_buf = 0 })
      pim.Transform.Pim.pim_inputs
  in
  let outputs =
    List.map
      (fun c -> { out_chan = c; out_busy = false; out_buf = 0 })
      pim.Transform.Pim.pim_outputs
  in
  let exe = { exe_busy = false; exe_pending_invoke = false; exe_staged = [] } in
  let runner = Code_runner.create (Transform.Pim.software pim) in
  let input m = List.find (fun d -> d.in_chan = m) inputs in
  let output c = List.find (fun d -> d.out_chan = c) outputs in
  let draw (lo, hi) = jitter (Rng.float_range rng lo hi) in
  let input_proc_time d = draw (config.cfg_typical.typ_input_proc d.in_chan) in
  let start_input_processing t d =
    d.in_busy <- true;
    Event_queue.push queue (t +. input_proc_time d) (Input_done d.in_chan)
  in
  let request_invoke t delay =
    if not (exe.exe_busy || exe.exe_pending_invoke) then begin
      exe.exe_pending_invoke <- true;
      Event_queue.push queue (t +. delay) Invoke
    end
  in
  let start_output t d =
    if (not d.out_busy) && d.out_buf > 0 then begin
      d.out_buf <- d.out_buf - 1;
      d.out_busy <- true;
      let proc = draw (config.cfg_typical.typ_output_proc d.out_chan) in
      Event_queue.push queue (t +. proc) (Output_done d.out_chan)
    end
  in
  let insert_input t d =
    if d.in_buf < input_capacity scheme then begin
      d.in_buf <- d.in_buf + 1;
      record t (Input_inserted d.in_chan);
      match scheme.Scheme.is_invocation with
      | Scheme.Aperiodic gap -> request_invoke t (float_of_int gap)
      | Scheme.Periodic _ -> ()
    end
    else record t (Input_lost d.in_chan)
  in
  let deliver_one t d =
    d.in_buf <- d.in_buf - 1;
    if Code_runner.deliver runner ~now:t d.in_chan then
      record t (Input_read d.in_chan)
    else record t (Input_discarded d.in_chan)
  in
  let read_stage t =
    match scheme.Scheme.is_input_comm with
    | Scheme.Buffer (_, Scheme.Read_one) ->
      (match List.find_opt (fun d -> d.in_buf > 0) inputs with
       | Some d -> deliver_one t d
       | None -> ())
    | Scheme.Buffer (_, Scheme.Read_all) | Scheme.Shared_variable ->
      List.iter
        (fun d ->
          while d.in_buf > 0 do
            deliver_one t d
          done)
        inputs
  in
  let stimulate t d m =
    match d.in_spec.Scheme.in_read with
    | Scheme.Interrupt _ ->
      if d.in_busy then record t (Input_lost m)
      else start_input_processing t d
    | Scheme.Polling _ ->
      d.in_latch <- true;
      d.in_latch_gen <- d.in_latch_gen + 1;
      (match d.in_spec.Scheme.in_signal with
       | Scheme.Sustained duration ->
         Event_queue.push queue
           (t +. float_of_int duration)
           (Latch_drop (m, d.in_latch_gen))
       | Scheme.Sustained_until_read | Scheme.Pulse -> ())
  in
  let handle t = function
    | Stimulus m ->
      let d = input m in
      record t (Env_signal m);
      let dropped = chance (match frng with Some (_, f) -> f.f_drop | None -> 0.0) in
      if dropped then
        (* the signal fired but the mc-boundary sample vanished before
           the device noticed: neither latch nor interrupt dispatch *)
        record t (Input_lost m)
      else begin
        stimulate t d m;
        (* a duplicated sample behaves like contact bounce: the device
           is stimulated again immediately.  An interrupt line mid-
           processing loses the duplicate; a polling latch absorbs it. *)
        if chance (match frng with Some (_, f) -> f.f_dup | None -> 0.0) then
          stimulate t d m
      end
    | Latch_drop (m, generation) ->
      let d = input m in
      if d.in_latch_gen = generation then d.in_latch <- false
    | Poll m ->
      let d = input m in
      if d.in_busy then ()  (* next poll is scheduled from Input_done *)
      else if d.in_latch then begin
        d.in_latch <- false;
        start_input_processing t d
      end
      else begin
        match d.in_spec.Scheme.in_read with
        | Scheme.Polling interval ->
          Event_queue.push queue (t +. float_of_int interval) (Poll m)
        | Scheme.Interrupt _ -> assert false
      end
    | Input_done m ->
      let d = input m in
      d.in_busy <- false;
      insert_input t d;
      (match d.in_spec.Scheme.in_read with
       | Scheme.Polling interval ->
         Event_queue.push queue (t +. float_of_int interval) (Poll m)
       | Scheme.Interrupt _ -> ())
    | Invoke ->
      exe.exe_pending_invoke <- false;
      exe.exe_busy <- true;
      read_stage t;
      let emitted = Code_runner.compute runner ~now:t in
      List.iter (fun c -> record t (Code_output c)) emitted;
      exe.exe_staged <- exe.exe_staged @ emitted;
      let lo, hi = config.cfg_typical.typ_exec in
      Event_queue.push queue (t +. Rng.float_range rng lo hi) Window_end;
      (match scheme.Scheme.is_invocation with
       | Scheme.Periodic period ->
         Event_queue.push queue (t +. float_of_int period) Invoke
       | Scheme.Aperiodic _ -> ())
    | Window_end ->
      let staged = exe.exe_staged in
      exe.exe_staged <- [];
      exe.exe_busy <- false;
      List.iter
        (fun c ->
          let d = output c in
          if d.out_buf < output_capacity scheme then begin
            d.out_buf <- d.out_buf + 1;
            start_output t d
          end
          else record t (Output_lost c))
        staged;
      (match scheme.Scheme.is_invocation with
       | Scheme.Aperiodic gap ->
         if List.exists (fun d -> d.in_buf > 0) inputs then
           request_invoke t (float_of_int gap)
       | Scheme.Periodic _ -> ())
    | Output_done c ->
      let d = output c in
      d.out_busy <- false;
      record t (Output_visible c);
      start_output t d
  in
  (* initial schedule *)
  List.iter (fun (t, m) -> Event_queue.push queue t (Stimulus m))
    config.cfg_stimuli;
  List.iter
    (fun d ->
      match d.in_spec.Scheme.in_read with
      | Scheme.Polling interval ->
        Event_queue.push queue (float_of_int interval) (Poll d.in_chan)
      | Scheme.Interrupt _ -> ())
    inputs;
  (match scheme.Scheme.is_invocation with
   | Scheme.Periodic period ->
     Event_queue.push queue (float_of_int period) Invoke
   | Scheme.Aperiodic _ -> ());
  (* main loop *)
  let rec loop () =
    match Event_queue.pop queue with
    | Some (t, ev) when t <= config.cfg_horizon ->
      handle t ev;
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  List.rev !log
