type t = {
  n : int;  (* dimension including the reference clock *)
  m : int array;  (* n*n encoded bounds, row-major *)
}

let dim z = z.n

let idx z i j = (i * z.n) + j
let get z i j = z.m.(idx z i j)
let set z i j b = z.m.(idx z i j) <- b

let zero n =
  assert (n >= 1);
  { n; m = Array.make (n * n) Bound.zero }

let copy z = { n = z.n; m = Array.copy z.m }

let mark_empty z = set z 0 0 (Bound.lt 0)

let is_empty z = get z 0 0 < Bound.zero

let canonicalize z =
  let n = z.n in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = get z i k in
      if not (Bound.is_infinite dik) then
        for j = 0 to n - 1 do
          let through = Bound.add dik (get z k j) in
          if through < get z i j then set z i j through
        done
    done
  done;
  let negative_diagonal = ref false in
  for i = 0 to n - 1 do
    if get z i i < Bound.zero then negative_diagonal := true
  done;
  if !negative_diagonal then mark_empty z

let up z =
  if not (is_empty z) then
    for i = 1 to z.n - 1 do
      set z i 0 Bound.infinity
    done

let satisfiable z i j b =
  (not (is_empty z)) && Bound.add b (get z j i) >= Bound.zero

let constrain z i j b =
  if not (is_empty z) then begin
    if Bound.add b (get z j i) < Bound.zero then mark_empty z
    else if b < get z i j then begin
      set z i j b;
      (* O(n^2) re-closure through the tightened entry. *)
      let n = z.n in
      for k = 0 to n - 1 do
        let dki = get z k i in
        if not (Bound.is_infinite dki) then begin
          let via_i = Bound.add dki b in
          for l = 0 to n - 1 do
            let through = Bound.add via_i (get z j l) in
            if through < get z k l then set z k l through
          done
        end
      done
    end
  end

let reset z i =
  if not (is_empty z) then
    for j = 0 to z.n - 1 do
      if j <> i then begin
        set z i j (get z 0 j);
        set z j i (get z j 0)
      end
    done

let free z i =
  if not (is_empty z) then
    for j = 0 to z.n - 1 do
      if j <> i then begin
        set z i j Bound.infinity;
        set z j i (get z j 0)
      end
    done

let extrapolate z k =
  if not (is_empty z) then begin
    let n = z.n in
    assert (Array.length k = n && k.(0) = 0);
    let changed = ref false in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then begin
          let b = get z i j in
          if (not (Bound.is_infinite b)) && b > Bound.le k.(i) then begin
            set z i j Bound.infinity;
            changed := true
          end
          else if b < Bound.lt (-k.(j)) then begin
            set z i j (Bound.lt (-k.(j)));
            changed := true
          end
        end
      done
    done;
    if !changed then canonicalize z
  end

let extrapolate_lu z l u =
  if not (is_empty z) then begin
    let n = z.n in
    assert (Array.length l = n && Array.length u = n && l.(0) = 0 && u.(0) = 0);
    let changed = ref false in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then begin
          let b = get z i j in
          if i <> 0 && (not (Bound.is_infinite b)) && b > Bound.le l.(i)
          then begin
            set z i j Bound.infinity;
            changed := true
          end
          else if j <> 0 && b < Bound.lt (-u.(j)) then begin
            set z i j (Bound.lt (-u.(j)));
            changed := true
          end
        end
      done
    done;
    if !changed then canonicalize z
  end

let includes a b =
  assert (a.n = b.n);
  if is_empty b then true
  else if is_empty a then false
  else begin
    let ok = ref true in
    let i = ref 0 in
    let total = a.n * a.n in
    while !ok && !i < total do
      if b.m.(!i) > a.m.(!i) then ok := false;
      incr i
    done;
    !ok
  end

let equal a b =
  a.n = b.n && ((is_empty a && is_empty b) || a.m = b.m)

(* FNV-1a over the encoded bounds.  All empty zones of a dimension hash
   alike (they compare equal regardless of which entry went negative). *)
let hash z =
  if is_empty z then z.n land max_int
  else begin
    let h = ref (z.n + 0x811c9dc5) in
    for i = 0 to Array.length z.m - 1 do
      h := (!h lxor z.m.(i)) * 0x01000193
    done;
    !h land max_int
  end

(* Clamped sum of the encoded bounds: a dominance measure.  Clamping is
   monotone and [Bound.infinity] (= [max_int]) is the only encoding
   above the cap, so [includes a b] implies [weight a >= weight b], and
   equal weights with pointwise dominance force the zones equal.  Used
   by the explorer to order passed-list buckets so subsumption probes
   scan only the entries that could possibly dominate. *)
let weight_cap = 1 lsl 40

let weight z =
  let s = ref 0 in
  for i = 0 to Array.length z.m - 1 do
    let b = z.m.(i) in
    s := !s + (if b > weight_cap then weight_cap else b)
  done;
  !s

let to_ints z = Array.copy z.m

let of_ints ~dim m =
  if dim < 1 || Array.length m <> dim * dim then
    invalid_arg "Dbm.of_ints: length does not match dimension";
  { n = dim; m = Array.copy m }

let sup_clock z i = get z i 0

let inf_clock z i =
  let b = get z 0 i in
  (-Bound.constant b, Bound.is_strict b)

let contains z values =
  assert (Array.length values = z.n && values.(0) = 0);
  if is_empty z then false
  else begin
    let ok = ref true in
    for i = 0 to z.n - 1 do
      for j = 0 to z.n - 1 do
        let b = get z i j in
        if not (Bound.is_infinite b) then begin
          let diff = values.(i) - values.(j) in
          let fits =
            if Bound.is_strict b then diff < Bound.constant b
            else diff <= Bound.constant b
          in
          if not fits then ok := false
        end
      done
    done;
    !ok
  end

let pp ?names () ppf z =
  if is_empty z then Fmt.string ppf "empty"
  else begin
    let name i =
      match names with
      | Some arr when i < Array.length arr -> arr.(i)
      | Some _ | None -> if i = 0 then "0" else Fmt.str "x%d" i
    in
    let first = ref true in
    for i = 0 to z.n - 1 do
      for j = 0 to z.n - 1 do
        if i <> j then begin
          let b = get z i j in
          if not (Bound.is_infinite b) then begin
            if not !first then Fmt.string ppf " && ";
            first := false;
            if j = 0 then Fmt.pf ppf "%s %a" (name i) Bound.pp b
            else if i = 0 then
              Fmt.pf ppf "-%s %a" (name j) Bound.pp b
            else Fmt.pf ppf "%s - %s %a" (name i) (name j) Bound.pp b
          end
        end
      done
    done;
    if !first then Fmt.string ppf "true"
  end

(* --- scratch pool ----------------------------------------------------- *)

module Pool = struct
  type zone = t

  type t = {
    p_dim : int;
    mutable p_free : zone list;
  }

  let create p_dim =
    assert (p_dim >= 1);
    { p_dim; p_free = [] }

  let dim p = p.p_dim

  let base_copy = copy

  let copy p src =
    assert (src.n = p.p_dim);
    match p.p_free with
    | z :: rest ->
      p.p_free <- rest;
      Array.blit src.m 0 z.m 0 (Array.length src.m);
      z
    | [] -> base_copy src

  let release p z =
    assert (z.n = p.p_dim);
    p.p_free <- z :: p.p_free
end
