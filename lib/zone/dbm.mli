(** Difference bound matrices over [dim] clocks, where clock 0 is the
    constant reference clock.  Entry [(i, j)] bounds [x_i - x_j].

    All operations other than {!copy} mutate in place.  Unless noted
    otherwise they expect the input in canonical form (as produced by
    {!zero}, {!canonicalize} or any operation below) and preserve
    canonicity.  An empty zone is represented with a negative diagonal
    entry at [(0, 0)]; operations on empty zones are allowed and keep the
    zone empty. *)

type t

(** [zero dim] is the point zone where every clock equals 0.
    [dim] counts the reference clock, so a model with [n] clocks uses
    [dim = n + 1]. *)
val zero : int -> t

val dim : t -> int
val copy : t -> t
val get : t -> int -> int -> Bound.t
val is_empty : t -> bool

(** Full Floyd-Warshall closure.  Needed only after batch updates made
    through unchecked writes; the public operations keep zones closed. *)
val canonicalize : t -> unit

(** Delay: remove the upper bounds of all clocks (future closure). *)
val up : t -> unit

(** [constrain z i j b] intersects with [x_i - x_j ~ b].  O(dim^2). *)
val constrain : t -> int -> int -> Bound.t -> unit

(** [satisfiable z i j b] is whether intersecting with [x_i - x_j ~ b]
    would leave the zone non-empty.  Does not mutate. *)
val satisfiable : t -> int -> int -> Bound.t -> bool

(** [reset z i] sets clock [i] to 0. *)
val reset : t -> int -> unit

(** [free z i] removes all constraints on clock [i] except non-negativity. *)
val free : t -> int -> unit

(** Classic maximal-constant extrapolation (ExtraM).  [k.(i)] is the
    largest constant compared against clock [i]; [k.(0)] must be 0. *)
val extrapolate : t -> int array -> unit

(** Lower/upper-bound extrapolation (ExtraLU, Behrmann et al.): [l.(i)]
    is the largest constant in lower-bound comparisons against clock [i],
    [u.(i)] in upper-bound comparisons; both [l.(0)] and [u.(0)] must
    be 0.  Coarser than ExtraM (equal when [l = u = k]) and exact for
    location reachability of diagonal-free automata. *)
val extrapolate_lu : t -> int array -> int array -> unit

(** [includes a b] is whether [b]'s valuation set is a subset of [a]'s.
    Both must be canonical.  An empty [b] is included in everything. *)
val includes : t -> t -> bool

(** Semantic equality: same dimension and either the same canonical
    matrix or both empty. *)
val equal : t -> t -> bool

(** Cheap content hash, compatible with {!equal}: equal zones hash
    equal (all empty zones of one dimension share a hash).  Inputs must
    be canonical.  O(dim^2). *)
val hash : t -> int

(** Clamped sum of the encoded bounds: a scalar dominance measure.
    [includes a b] implies [weight a >= weight b], and equal weights
    together with pointwise dominance force the zones equal — so a
    collection ordered by descending weight confines subsumption probes
    of a new zone to the at-least-as-heavy prefix (candidates to cover
    it) and the strictly lighter suffix (candidates it covers). *)
val weight : t -> int

(** [to_ints z] is the raw encoded bound matrix, row-major, as a fresh
    array — the serialization counterpart of {!of_ints}.  The encoding
    is the internal one; treat it as opaque. *)
val to_ints : t -> int array

(** [of_ints ~dim m] rebuilds a zone from {!to_ints} output.  The matrix
    is trusted to be canonical (as every {!to_ints} result is); feeding
    a non-canonical matrix breaks the inclusion and hash invariants.
    @raise Invalid_argument when the length is not [dim * dim]. *)
val of_ints : dim:int -> int array -> t

(** Upper bound of clock [i] in the zone: the [(i, 0)] entry. *)
val sup_clock : t -> int -> Bound.t

(** Lower bound of clock [i]: [m] with strictness such that [x_i >= m]
    (or [> m]).  Returned as [(constant, strict)]. *)
val inf_clock : t -> int -> int * bool

(** [contains z values] tests membership of a concrete integer valuation
    ([values.(0)] must be 0).  Used by cross-checking tests. *)
val contains : t -> int array -> bool

val pp : ?names:string array -> unit -> Format.formatter -> t -> unit

(** A freelist of DBMs of one fixed dimension, for allocation-free
    scratch copies on hot paths (e.g. candidate firing in the zone
    explorer, where most copies die immediately on an unsatisfiable
    guard).  Not thread-safe; one pool per search.

    {b Ownership:} a zone obtained from {!Pool.copy} is exclusively the
    caller's until passed to {!Pool.release}; after release any
    reference to it is invalid (the matrix will be overwritten by a
    later {!Pool.copy}). *)
module Pool : sig
  type zone := t
  type t

  (** [create dim] is an empty pool of [dim]-dimensional zones. *)
  val create : int -> t

  val dim : t -> int

  (** [copy pool src] is a zone equal to [src], reusing a released
      matrix when one is available.  [src] must have the pool's
      dimension. *)
  val copy : t -> zone -> zone

  (** Return a zone to the freelist.  The caller must not touch it
      afterwards. *)
  val release : t -> zone -> unit
end
