(** Platform-Specific timing Verification — the umbrella namespace.

    This library reproduces Kim, Feng, Phan, Sokolsky and Lee,
    {e "Platform-Specific Timing Verification Framework in Model-Based
    Implementation"} (DATE 2015).  The pipeline:

    + model the software and its environment as a network of timed
      automata ({!Model}) — the platform-independent model (PIM,
      {!Pim});
    + verify its timing requirements with the zone-based model checker
      ({!Explorer}, or the convenience wrappers below);
    + describe the execution platform as an implementation scheme
      ({!Scheme});
    + transform the PIM into the platform-specific model
      ({!Transform.psm_of_pim});
    + re-verify on the PSM, derive the relaxed bound
      [Δ'mc = Δmi + Δoc + Δio-internal] ({!Bounds}, {!Queries}) after
      checking the four boundedness constraints ({!Constraints});
    + cross-validate against the simulated implementation ({!Sim}).

    The GPCA infusion pump case study lives in {!Gpca}; models can be
    exchanged in a textual format via {!Xta}. *)

module Expr = Ta.Expr
module Clockcons = Ta.Clockcons
module Model = Ta.Model
module Compiled = Ta.Compiled
module Bound = Zone.Bound
module Dbm = Zone.Dbm
module Monitor = Mc.Monitor
module Explorer = Mc.Explorer
module Runctl = Mc.Runctl
module Query = Mc.Query
module Store = Store
module Qcache = Analysis.Qcache
module Scheme = Scheme
module Pim = Transform.Pim
module Transform = Transform
module Bounds = Analysis.Bounds
module Queries = Analysis.Queries
module Constraints = Analysis.Constraints
module Sim = Sim
module Gpca = Gpca
module Xta = Xta
module Codegen = Codegen

(** [verify_response net ~trigger ~response ~bound] checks the bounded
    response requirement [P(bound)] on any network (PIM or PSM).
    Three-valued: [Unknown] when a govern token's budget interrupted the
    search before a definite answer.  [jobs] runs the exploration on
    that many domains ({!Mc.Parsearch}) — same verdict. *)
val verify_response :
  ?jobs:int -> ?limit:int -> ?ctl:Mc.Runctl.t ->
  Model.network -> trigger:string -> response:string -> bound:int ->
  Mc.Explorer.verdict

(** Verified maximum delay between two synchronisations. *)
val max_delay :
  ?jobs:int -> ?limit:int -> ?ctl:Mc.Runctl.t -> ?resume:Mc.Explorer.snapshot ->
  Model.network ->
  trigger:string -> response:string -> ceiling:int ->
  Analysis.Queries.delay_result

(** Alias for {!Transform.psm_of_pim}. *)
val transform : Pim.t -> Scheme.t -> Transform.psm
