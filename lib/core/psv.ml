module Expr = Ta.Expr
module Clockcons = Ta.Clockcons
module Model = Ta.Model
module Compiled = Ta.Compiled
module Bound = Zone.Bound
module Dbm = Zone.Dbm
module Monitor = Mc.Monitor
module Explorer = Mc.Explorer
module Runctl = Mc.Runctl
module Query = Mc.Query
module Store = Store
module Qcache = Analysis.Qcache
module Scheme = Scheme
module Pim = Transform.Pim
module Transform = Transform
module Bounds = Analysis.Bounds
module Queries = Analysis.Queries
module Constraints = Analysis.Constraints
module Sim = Sim
module Gpca = Gpca
module Xta = Xta
module Codegen = Codegen

let verify_response ?jobs ?limit ?ctl net ~trigger ~response ~bound =
  Analysis.Queries.satisfies_response_bound ?jobs ?limit ?ctl net ~trigger
    ~response ~bound

let max_delay = Analysis.Queries.max_delay

let transform = Transform.psm_of_pim
