(** Zone-graph exploration for compiled networks, with an optional
    non-blocking monitor composed at the semantic level.

    States are (location vector, variable valuation, monitor state, zone)
    tuples; zones are kept delay-closed under location invariants and
    extrapolated with per-clock maximal constants, so the search is finite
    whenever variables are bounded.  Subsumption (zone inclusion) prunes
    the passed/waiting store.

    Every query is governed: a search that exhausts a budget (the
    explorer's own state limit, or any budget of a supplied
    {!Runctl.t}) stops cleanly and reports the partial statistics and
    the interruption {!Runctl.reason} instead of raising.  The timed
    queries additionally emit a resumable {!snapshot} at that point. *)

type t

(** A symbolic state handed to predicates and fold functions. *)
type state = {
  st_locs : int array;
  st_vars : int array;
  st_mon : int;
  st_zone : Zone.Dbm.t;
}

type stats = {
  visited : int;   (** states popped and expanded *)
  stored : int;    (** states stored (after subsumption) *)
  frontier : int;  (** live waiting-queue length when the search ended *)
}

(** The three-valued verdict of a governed check.  The verdict lattice
    is [Unknown < Proved], [Unknown < Refuted]: more budget can turn
    [Unknown] into either definite answer, but never flips a definite
    answer. *)
type verdict =
  | Proved
  | Refuted of string list option  (** counterexample trace when available *)
  | Unknown of Runctl.reason       (** search interrupted before an answer *)

val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Progress reporting}

    All searches report through one stats hook, called every 1000
    visited states.  The default hook prints to stderr when
    [PSV_MC_PROGRESS] is set in the environment (checked once, not per
    state); {!set_progress_hook} replaces it for embedding (TUIs,
    logging, cancellation timers). *)

type progress = {
  pr_visited : int;  (** states popped and expanded so far *)
  pr_stored : int;   (** states stored so far (after subsumption) *)
  pr_queue : int;    (** current waiting-queue length *)
}

val set_progress_hook : (progress -> unit) option -> unit

(** {1 Snapshots}

    A snapshot freezes an interrupted search: the live passed/waiting
    store (discrete state plus DBM rows), the waiting queue in FIFO
    order, the trace side-table, the visited/stored counters and the
    query's own accumulator.  Resuming continues to a byte-identical
    verdict and statistics versus an uninterrupted run.

    Snapshots are written with a magic header carrying a format version
    ([PSVSNAP2]); {!load_snapshot} rejects foreign files, and names the
    version mismatch when handed a snapshot from an older build
    ([PSVSNAP1]) so the user knows to simply re-run the query.  A
    snapshot also records a 128-bit structural fingerprint
    ({!Store.D128}) of the model text, monitor and explorer
    configuration — resuming against anything else is refused with
    [Invalid_argument]. *)

type snapshot

val save_snapshot : string -> snapshot -> unit

val load_snapshot : string -> (snapshot, string) result

(** [make ?monitor ?tight ?limit net] prepares an explorer.

    With the default per-clock extrapolation constants, sup-queries over
    monitor clocks are {e sound over-approximations}: the reported
    supremum is an upper bound on the true one, and may exceed it when
    extrapolating another clock loosens a difference bound involving the
    monitor clock.  [tight:true] raises every clock's extrapolation
    constant to the global maximum, which makes the sup exact at the cost
    of a (sometimes drastically) larger zone graph.  For the paper's
    purpose — a verified upper bound on the implementation's delay —
    soundness is what matters.

    [limit] bounds the number of visited states (default
    {!default_limit}); reaching it ends the search with
    [Unknown (State_budget limit)].

    [reduce] (default [true]) enables clock-activity reduction: clocks
    that are dead at a location (per {!Ta.Compiled.cl_free}) and monitor
    clocks outside their active states are freed, collapsing zones that
    differ only in dead-clock values.  Reachability, safety and
    monitor-clock sup results are unaffected; disable it only to inspect
    raw zones.

    [lu] (default [false]) switches from classic maximal-constant
    extrapolation (ExtraM) to the coarser lower/upper-bound ExtraLU,
    which can shrink the zone graph when guards are one-sided.  Both are
    exact for location reachability (the library rejects diagonal
    constraints in models, the case where these abstractions would be
    unsound). *)
val make :
  ?monitor:Monitor.t -> ?tight:bool -> ?limit:int -> ?reduce:bool ->
  ?lu:bool -> Ta.Model.network -> t

(** The default visited-state limit, [2_000_000]. *)
val default_limit : int

val compiled : t -> Ta.Compiled.t

(** {1 Predicate helpers} *)

val at : t -> aut:string -> loc:string -> state -> bool
val var_value : t -> string -> state -> int
val mon_in : t -> string -> state -> bool

(** {1 Queries}

    Each query accepts an optional [ctl] govern token
    ({!Runctl.create}); without one, only the explorer's state limit
    applies. *)

(** A candidate discrete transition out of a state: the moving edges in
    update order plus the synchronising channel, precomputed by
    {!candidates} (declared here because the [expand] hooks below name
    it; the expansion engine itself lives at the end of this
    interface). *)
type candidate

type reach_result = {
  r_trace : string list option;
      (** edge descriptions from the initial state, when found *)
  r_stats : stats;
  r_interrupt : Runctl.reason option;
      (** [Some] when the search stopped before exhausting the state
          space; a [None] trace then means "not found so far", not
          "unreachable" *)
}

(** [reachable t pred] is the UPPAAL query [E<> pred].  [expand]
    overrides successor generation as in {!search}. *)
val reachable :
  ?expand:(Zone.Dbm.Pool.t -> state -> (candidate * state option) list) ->
  ?ctl:Runctl.t -> t -> (state -> bool) -> reach_result

(** [safe t pred] is [A[] not pred]: [Proved] when no reachable state
    satisfies [pred], [Refuted] with the witness trace otherwise,
    [Unknown] when interrupted first. *)
val safe : ?ctl:Runctl.t -> t -> (state -> bool) -> verdict * stats

type sup_result =
  | Sup_unreached          (** no reachable state satisfies the predicate *)
  | Sup of int * bool      (** supremum value; [true] means strict ([< v]) *)
  | Sup_exceeds of int     (** the supremum exceeds the clock's ceiling *)

(** The result of a governed sup-query.  On interruption [so_sup] is the
    sup over the states explored so far — a valid {e lower} bound on the
    true supremum (useful to refute a response bound early), and
    [so_snapshot] can be saved and passed back as [resume]. *)
type sup_outcome = {
  so_sup : sup_result;
  so_stats : stats;
  so_interrupt : Runctl.reason option;
  so_snapshot : snapshot option;
}

(** [sup_clock t ~pred ~clock] is the supremum of [clock] over all
    reachable states satisfying [pred] — the engine behind UPPAAL-style
    [sup] queries.  [clock] is typically a monitor clock; its ceiling
    (from the monitor declaration) bounds the values that are reported
    exactly.

    [resume] continues a previous interrupted run of the {e same} query
    on the {e same} model; the running sup is restored from the
    snapshot, and the combined run reaches the same result, visited and
    stored counts as an uninterrupted one.
    @raise Invalid_argument when the snapshot does not match. *)
val sup_clock :
  ?expand:(Zone.Dbm.Pool.t -> state -> (candidate * state option) list) ->
  ?ctl:Runctl.t -> ?resume:snapshot ->
  t -> pred:(state -> bool) -> clock:string -> sup_outcome

val pp_sup_result : Format.formatter -> sup_result -> unit

(** [find_timelock t] searches for a reachable state in which no discrete
    transition is possible and time cannot diverge (an urgent/committed
    location pins the clock, or a location invariant caps it).  Quiescent
    terminal states (no moves but unbounded delay) are not reported.
    An interrupted search ([r_interrupt <> None]) means "none found
    within budget".

    In a transformed PSM, timelocks mark reliance on the generated code's
    {e eagerness}: a deadline transition of [MIO] that the model may
    postpone past its last compute window.  When the guard window is wide
    enough (see [Analysis.Implementability.check_window_widths]) eager
    code never hits the deadline between windows and the timelock is a
    model-level artifact; when it is too narrow, even eager code misses
    the deadline and the timelock is a real defect.

    The search deduplicates states by zone equality rather than
    subsumption (a time-pinned sub-zone must not be hidden inside a wider
    stored zone), so it explores more states than {!reachable}.  The
    check is an {e under-approximation}: a symbolic state mixing blocked
    and live valuations is not flagged. *)
val find_timelock : ?ctl:Runctl.t -> t -> reach_result

(** One step of a timed witness: the transition description and the
    interval of absolute times at which the step can fire among runs
    following the witness's transition sequence.  Bounds are
    [(value, strict)]; [td_latest = None] means unbounded. *)
type timed_step = {
  td_desc : string;
  td_earliest : int * bool;
  td_latest : (int * bool) option;
}

(** [timed_trace t pred] is {!reachable} with timing: the witness chain is
    replayed exactly (no extrapolation) with an absolute-time clock, and
    each step is annotated with its feasible firing-time interval.
    [None] if the predicate is unreachable. *)
val timed_trace : t -> (state -> bool) -> timed_step list option

(** [replay t chain] replays a transition chain (as returned in
    {!search_result.sr_chain}) exactly — no extrapolation, no activity
    reduction — with an extra absolute-time clock, and annotates each
    step with its feasible firing-time interval.  [None] when the chain
    is infeasible (a guard or invariant empties the zone), so it doubles
    as a feasibility check for witnesses found by other searches (e.g.
    {!Parsearch}). *)
val replay :
  t -> (int * Ta.Compiled.cedge) list list -> timed_step list option

val pp_timed_step : Format.formatter -> timed_step -> unit

(** Structural coverage of a full exploration: locations never entered
    and edges never fired in any reachable state.  Dead structure in a
    verified model usually means a modeling mistake (an unreachable
    error handler, a guard that can never be satisfied). *)
type coverage = {
  cov_unreached_locations : (string * string) list;
      (** (automaton, location) pairs *)
  cov_unfired_edges : string list;  (** edge descriptions *)
  cov_stats : stats;
}

val coverage : t -> coverage

(** {1 Expansion engine}

    The successor-generation primitives behind {!search}, exposed so the
    domain-parallel explorer ({!Parsearch}) drives the {e same} firing
    semantics through its own sharded store.  Library-internal in
    spirit: prefer the query functions above. *)

(** The initial symbolic state (delay-closed, invariant-constrained,
    extrapolated).  Its zone may be empty if the initial invariants are
    unsatisfiable. *)
val initial_state : t -> state

(** The explorer's visited-state limit (the [limit] given to {!make}). *)
val state_limit : t -> int

(** A fresh DBM scratch pool of the explorer's zone dimension.  Pools
    are single-domain: a parallel search creates one per worker. *)
val fresh_pool : t -> Zone.Dbm.Pool.t

(** All discrete transition candidates enabled in (the discrete part of)
    a state, in the deterministic enumeration order of the sequential
    search.  Zone satisfiability is {e not} checked here — {!fire}
    does that. *)
val candidates : t -> state -> candidate list

(** [fire t pool st cd] applies candidate [cd] to [st]: guards,
    location/variable updates, monitor step, resets, activity reduction,
    target invariants, delay closure and extrapolation.  [None] when the
    successor zone is empty (the scratch zone returns to [pool]); the
    returned state's zone is owned by the caller. *)
val fire : t -> Zone.Dbm.Pool.t -> state -> candidate -> state option

(** The result of {!fire_pre}.  [Fired_dead] means the successor zone
    emptied {e before} extrapolation — a fact independent of the
    extrapolation constants.  [Fired_live] carries the successor's
    discrete part, its zone as it stood just before extrapolation
    ([fl_pre], {!Zone.Dbm.to_ints} encoding) and the ordinary {!fire}
    result ([fl_state]; [None] only in the never-observed case of
    extrapolation emptying the zone, kept for exact [fire] parity). *)
type fired =
  | Fired_dead
  | Fired_live of {
      fl_state : state option;
      fl_locs : int array;
      fl_vars : int array;
      fl_mon : int;
      fl_pre : int array;
    }

(** [fire] with the pre-extrapolation successor zone exposed — the
    recording primitive of the incremental explorer ([Incr.Delta]).
    Identical pipeline and zone results to {!fire}. *)
val fire_pre : t -> Zone.Dbm.Pool.t -> state -> candidate -> fired

(** [admit_pre t ~locs ~vars ~mon ~pre] rebuilds a successor recorded by
    {!fire_pre}: decodes [pre], applies {e this} explorer's
    extrapolation, and returns exactly what {!fire} would have — so a
    replayed successor is byte-identical to a freshly fired one even
    when the maximal constants moved between recording and replay. *)
val admit_pre :
  t -> locs:int array -> vars:int array -> mon:int -> pre:int array ->
  state option

(** [admit_post t ~locs ~vars ~mon ~post] rebuilds a successor from its
    recorded {e post}-extrapolation zone, skipping extrapolation and the
    O(n³) re-canonicalisation it entails.  Sound only when this
    explorer's extrapolation equals the recording explorer's
    ({!same_extrapolation}); the recorded encoding then already is
    exactly what {!admit_pre} would recompute.  A zero-length [post]
    denotes a successor extrapolation emptied, and yields [None]. *)
val admit_post :
  t -> locs:int array -> vars:int array -> mon:int -> post:int array ->
  state option

(** Whether two explorers extrapolate identically — same scheme
    (k-norm vs LU) and equal per-clock constant tables — so zones
    recorded under one admit verbatim under the other. *)
val same_extrapolation : t -> t -> bool

(** The moving edges of a candidate, as [(automaton index, edge)] pairs —
    the per-step payload of a witness chain. *)
val movers : candidate -> (int * Ta.Compiled.cedge) list

(** [candidate ~movers ~chan] rebuilds a candidate from its parts (the
    replay counterpart of {!movers}/{!candidate_chan}); [chan] is the
    synchronising channel index, [None] for internal moves. *)
val candidate :
  movers:(int * Ta.Compiled.cedge) list -> chan:int option -> candidate

val candidate_chan : candidate -> int option

(** Human-readable description of each step of a witness chain. *)
val describe_chain :
  t -> (int * Ta.Compiled.cedge) list list -> string list

(** The FNV-style hash of a discrete state (locations, variables,
    monitor state) that keys the passed/waiting store.  Exposed so a
    sharded store routes on the same hash it probes with, computing it
    once per state. *)
val hash_discrete : int array -> int array -> int -> int

(** {2 Snapshot plumbing}

    The pieces a foreign passed/waiting store (the sharded one of
    {!Parsearch}) needs to restore from and serialize to the same
    PSVSNAP2 format as the sequential search, so a checkpoint taken at
    any [--jobs] resumes at any other.  Library-internal in spirit. *)

(** A stored state flattened for serialization: the raw discrete
    vectors plus the zone's encoded bound matrix
    ({!Zone.Dbm.to_ints}/{!Zone.Dbm.of_ints}). *)
type snap_entry = {
  se_id : int;
  se_locs : int array;
  se_vars : int array;
  se_mon : int;
  se_zone : int array;
}

(** [check_snapshot t ~label ~subsume snap] is the resume guard shared
    by every store: fingerprint, query label, dedup mode and zone
    dimension must all match.
    @raise Invalid_argument when they do not (same messages as the
    sequential resume path). *)
val check_snapshot : t -> label:string -> subsume:bool -> snapshot -> unit

val snapshot_next_id : snapshot -> int
val snapshot_visited : snapshot -> int
val snapshot_stored : snapshot -> int

(** Every live passed/waiting state of the interrupted run. *)
val snapshot_entries : snapshot -> snap_entry list

(** Ids of the waiting (not yet expanded) entries, in the order the
    producing store drained them. *)
val snapshot_queue : snapshot -> int array

(** Per id: parent id and the step's movers as
    [(automaton, edge-index)] pairs; [(-1, [])] for roots and for ids
    whose row the producing store no longer knew. *)
val snapshot_trace : snapshot -> (int * (int * int) list) array

(** The query's own accumulator (e.g. the marshalled running sup). *)
val snapshot_payload : snapshot -> string

(** [make_snapshot t ...] assembles a snapshot carrying [t]'s
    fingerprint and zone dimension; the counters, store content and
    payload come from the caller's store. *)
val make_snapshot :
  t -> label:string -> subsume:bool -> next_id:int -> visited:int ->
  stored:int -> entries:snap_entry list -> queue:int array ->
  trace:(int * (int * int) list) array -> payload:string -> snapshot

(** DBM index and exact-reporting ceiling of a (typically monitor)
    clock, as resolved by {!sup_clock}. *)
val monitor_clock_info : t -> string -> int * int

(** The result of a raw {!search}: the witness chain when the visit
    callback stopped the search, the final statistics, the interruption
    reason and (for interrupted runs) a resumable snapshot. *)
type search_result = {
  sr_chain : (int * Ta.Compiled.cedge) list list option;
  sr_stats : stats;
  sr_interrupt : Runctl.reason option;
  sr_snapshot : snapshot option;
}

(** The generic sequential search loop: calls [visit] on every stored
    state (including the initial one) and stops early when it returns
    [`Stop].  [on_expanded] runs after a state's successors were
    generated, with the count of non-empty successors; [on_transition]
    on every fired candidate.  [subsume:false] deduplicates by zone
    equality instead of inclusion.  [label] names the query kind (must
    match on [resume]); [payload] saves the caller's accumulator into
    the snapshot.  All higher-level queries — sequential and the
    [jobs = 1] parallel path — go through here.

    [expand] overrides successor generation for one popped state: it
    must return, in the enumeration order of {!candidates}, every
    candidate that {!fire} would return a successor for, paired with
    that successor ([None] pairs are permitted and skipped).  The loop
    then runs the identical bookkeeping (visit order, subsumption,
    counters, [`Stop] short-circuit) over the list, so a correct
    override — e.g. the memoized replay of [Incr.Delta] — yields
    byte-identical results and statistics to the inline path. *)
val search :
  ?on_expanded:(state -> int -> [ `Stop | `Continue ]) ->
  ?on_transition:(candidate -> unit) ->
  ?subsume:bool ->
  ?expand:(Zone.Dbm.Pool.t -> state -> (candidate * state option) list) ->
  ?ctl:Runctl.t ->
  ?resume:snapshot ->
  ?label:string ->
  ?payload:(unit -> string) ->
  t -> (state -> [ `Stop | `Continue ]) -> search_result
