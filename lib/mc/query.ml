type pred =
  | At of string * string
  | Cmp of string * Ta.Expr.rel * int
  | Const of bool
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type t =
  | Exists_eventually of pred
  | Always of pred
  | Sup_delay of { trigger : string; response : string; ceiling : int }
  | Bounded_response of { trigger : string; response : string; bound : int }

type outcome =
  | Holds
  | Fails of string list option
  | Sup of Explorer.sup_result
  | Unknown of Runctl.reason * Explorer.sup_result option

type result = {
  res_outcome : outcome;
  res_stats : Explorer.stats;
}

(* --- tokenising --------------------------------------------------------- *)

type token =
  | Word of string
  | Num of int
  | Op of string  (* comparison operators, "->", parens, "." *)

exception Bad_query of string

let fail fmt = Fmt.kstr (fun s -> raise (Bad_query s)) fmt

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
    || (c >= '0' && c <= '9')
  in
  let rec scan i =
    if i >= n then ()
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1)
      | '(' -> emit (Op "("); scan (i + 1)
      | ')' -> emit (Op ")"); scan (i + 1)
      | '.' -> emit (Op "."); scan (i + 1)
      | ':' -> emit (Op ":"); scan (i + 1)
      | '-' when i + 1 < n && text.[i + 1] = '>' -> emit (Op "->"); scan (i + 2)
      | '<' when i + 1 < n && text.[i + 1] = '>' -> emit (Op "<>"); scan (i + 2)
      | '<' when i + 1 < n && text.[i + 1] = '=' -> emit (Op "<="); scan (i + 2)
      | '<' -> emit (Op "<"); scan (i + 1)
      | '>' when i + 1 < n && text.[i + 1] = '=' -> emit (Op ">="); scan (i + 2)
      | '>' -> emit (Op ">"); scan (i + 1)
      | '=' when i + 1 < n && text.[i + 1] = '=' -> emit (Op "=="); scan (i + 2)
      | '!' when i + 1 < n && text.[i + 1] = '=' -> emit (Op "!="); scan (i + 2)
      | '[' when i + 1 < n && text.[i + 1] = ']' -> emit (Op "[]"); scan (i + 2)
      | 'E' when i + 2 < n && text.[i + 1] = '<' && text.[i + 2] = '>' ->
        emit (Word "E");
        emit (Op "<>");
        scan (i + 3)
      | c when c >= '0' && c <= '9' ->
        let rec stop j =
          if j < n && text.[j] >= '0' && text.[j] <= '9' then stop (j + 1)
          else j
        in
        let j = stop i in
        emit (Num (int_of_string (String.sub text i (j - i))));
        scan j
      | c when is_word c ->
        let rec stop j = if j < n && is_word text.[j] then stop (j + 1) else j in
        let j = stop i in
        emit (Word (String.sub text i (j - i)));
        scan j
      | c -> fail "unexpected character %C" c
  in
  scan 0;
  List.rev !tokens

(* --- parsing ------------------------------------------------------------- *)

let rel_of_op = function
  | "==" -> Some Ta.Expr.Eq
  | "!=" -> Some Ta.Expr.Ne
  | "<" -> Some Ta.Expr.Lt
  | "<=" -> Some Ta.Expr.Le
  | ">" -> Some Ta.Expr.Gt
  | ">=" -> Some Ta.Expr.Ge
  | _ -> None

let rec parse_pred tokens =
  let term, rest = parse_term tokens in
  match rest with
  | Word "or" :: rest ->
    let rhs, rest = parse_pred rest in
    (Or (term, rhs), rest)
  | _ -> (term, rest)

and parse_term tokens =
  let factor, rest = parse_factor tokens in
  match rest with
  | Word "and" :: rest ->
    let rhs, rest = parse_term rest in
    (And (factor, rhs), rest)
  | _ -> (factor, rest)

and parse_factor = function
  | Word "not" :: rest ->
    let p, rest = parse_factor rest in
    (Not p, rest)
  | Word "true" :: rest -> (Const true, rest)
  | Word "false" :: rest -> (Const false, rest)
  | Op "(" :: rest ->
    let p, rest = parse_pred rest in
    (match rest with
     | Op ")" :: rest -> (p, rest)
     | _ -> fail "missing closing parenthesis")
  | Word w :: Op "." :: Word l :: rest -> (At (w, l), rest)
  | Word w :: Op op :: Num v :: rest ->
    (match rel_of_op op with
     | Some rel -> (Cmp (w, rel, v), rest)
     | None -> fail "expected a comparison after %S" w)
  | Word w :: _ -> fail "dangling identifier %S" w
  | Num v :: _ -> fail "unexpected number %d" v
  | Op op :: _ -> fail "unexpected %S" op
  | [] -> fail "unexpected end of query"

let parse_chain rest =
  match rest with
  | Word trigger :: Op "->" :: Word response :: rest ->
    (trigger, response, rest)
  | _ -> fail "expected CHAN -> CHAN"

let parse text =
  match tokenize text with
  | exception Bad_query msg -> Error msg
  | tokens ->
    (try
       match tokens with
       | Word "E" :: Op "<>" :: rest ->
         let p, rest = parse_pred rest in
         if rest <> [] then fail "trailing tokens after predicate";
         Ok (Exists_eventually p)
       | Word "A" :: Op "[]" :: rest ->
         let p, rest = parse_pred rest in
         if rest <> [] then fail "trailing tokens after predicate";
         Ok (Always p)
       | Word "sup" :: Op ":" :: rest ->
         let trigger, response, rest = parse_chain rest in
         let ceiling =
           match rest with
           | [] -> 10_000
           | [ Word "ceiling"; Num c ] -> c
           | _ -> fail "expected 'ceiling N' or end"
         in
         Ok (Sup_delay { trigger; response; ceiling })
       | Word "bounded" :: Op ":" :: rest ->
         let trigger, response, rest = parse_chain rest in
         (match rest with
          | [ Word "within"; Num bound ] ->
            Ok (Bounded_response { trigger; response; bound })
          | _ -> fail "expected 'within N'")
       | _ -> fail "a query starts with E<>, A[], sup: or bounded:"
     with Bad_query msg -> Error msg)

(* --- canonical printing -------------------------------------------------- *)

let string_of_rel = function
  | Ta.Expr.Eq -> "=="
  | Ta.Expr.Ne -> "!="
  | Ta.Expr.Lt -> "<"
  | Ta.Expr.Le -> "<="
  | Ta.Expr.Gt -> ">"
  | Ta.Expr.Ge -> ">="

(* Every binary node is parenthesized, so the output re-parses to the
   same tree regardless of the grammar's precedence and associativity;
   [parse (to_string q) = Ok q] is checked by the test suite.  This is
   the canonical query text that feeds the cache key ({!Store.Key}). *)
let rec pred_to_string = function
  | At (aut, loc) -> aut ^ "." ^ loc
  | Cmp (v, rel, n) -> Printf.sprintf "%s %s %d" v (string_of_rel rel) n
  | Const true -> "true"
  | Const false -> "false"
  | And (a, b) ->
    Printf.sprintf "(%s and %s)" (pred_to_string a) (pred_to_string b)
  | Or (a, b) ->
    Printf.sprintf "(%s or %s)" (pred_to_string a) (pred_to_string b)
  | Not (At _ as p) | Not (Const _ as p) -> "not " ^ pred_to_string p
  | Not p -> Printf.sprintf "not (%s)" (pred_to_string p)

let to_string = function
  | Exists_eventually p -> "E<> " ^ pred_to_string p
  | Always p -> "A[] " ^ pred_to_string p
  | Sup_delay { trigger; response; ceiling } ->
    Printf.sprintf "sup: %s -> %s ceiling %d" trigger response ceiling
  | Bounded_response { trigger; response; bound } ->
    Printf.sprintf "bounded: %s -> %s within %d" trigger response bound

(* --- evaluation ----------------------------------------------------------- *)

let compile_pred t p =
  let rec build = function
    | At (aut, loc) -> Explorer.at t ~aut ~loc
    | Cmp (v, rel, n) ->
      let value = Explorer.var_value t v in
      let holds =
        match rel with
        | Ta.Expr.Lt -> fun x -> x < n
        | Ta.Expr.Le -> fun x -> x <= n
        | Ta.Expr.Eq -> fun x -> x = n
        | Ta.Expr.Ge -> fun x -> x >= n
        | Ta.Expr.Gt -> fun x -> x > n
        | Ta.Expr.Ne -> fun x -> x <> n
      in
      fun st -> holds (value st)
    | Const b -> fun _ -> b
    | And (a, b) ->
      let fa = build a and fb = build b in
      fun st -> fa st && fb st
    | Or (a, b) ->
      let fa = build a and fb = build b in
      fun st -> fa st || fb st
    | Not a ->
      let fa = build a in
      fun st -> not (fa st)
  in
  build p

let delay_monitor_clock = "psv_query_mon"

let eval ?(jobs = 1) ?ctl ?limit net q =
  match q with
  | Exists_eventually p ->
    let t = Explorer.make ?limit net in
    let r = Parsearch.reachable ~jobs ?ctl t (compile_pred t p) in
    let outcome =
      match r.Explorer.r_trace, r.Explorer.r_interrupt with
      | Some _, _ -> Holds  (* a witness is a witness, budget or not *)
      | None, Some reason -> Unknown (reason, None)
      | None, None -> Fails None
    in
    { res_outcome = outcome; res_stats = r.Explorer.r_stats }
  | Always p ->
    let t = Explorer.make ?limit net in
    let r =
      Parsearch.reachable ~jobs ?ctl t (fun st -> not (compile_pred t p st))
    in
    let outcome =
      match r.Explorer.r_trace, r.Explorer.r_interrupt with
      | Some trace, _ -> Fails (Some trace)
      | None, Some reason -> Unknown (reason, None)
      | None, None -> Holds
    in
    { res_outcome = outcome; res_stats = r.Explorer.r_stats }
  | Sup_delay { trigger; response; ceiling } ->
    let monitor =
      Monitor.delay ~trigger ~response ~clock:delay_monitor_clock ~ceiling ()
    in
    let t = Explorer.make ?limit ~monitor net in
    let o =
      Parsearch.sup_clock ~jobs ?ctl t
        ~pred:(Explorer.mon_in t "Waiting")
        ~clock:delay_monitor_clock
    in
    let outcome =
      match o.Explorer.so_interrupt with
      | Some reason -> Unknown (reason, Some o.Explorer.so_sup)
      | None -> Sup o.Explorer.so_sup
    in
    { res_outcome = outcome; res_stats = o.Explorer.so_stats }
  | Bounded_response { trigger; response; bound } ->
    let monitor =
      Monitor.delay ~trigger ~response ~clock:delay_monitor_clock
        ~ceiling:bound ()
    in
    let t = Explorer.make ?limit ~monitor net in
    let o =
      Parsearch.sup_clock ~jobs ?ctl t
        ~pred:(Explorer.mon_in t "Waiting")
        ~clock:delay_monitor_clock
    in
    let outcome =
      match o.Explorer.so_interrupt, o.Explorer.so_sup with
      | None, Explorer.Sup_unreached -> Holds
      | None, Explorer.Sup (v, _) ->
        if v <= bound then Holds else Fails None
      | None, Explorer.Sup_exceeds _ -> Fails None
      (* the partial sup only grows with more exploration, so a partial
         value already past the bound refutes even under interruption *)
      | Some _, Explorer.Sup (v, _) when v > bound -> Fails None
      | Some _, Explorer.Sup_exceeds _ -> Fails None
      | Some reason, partial -> Unknown (reason, Some partial)
    in
    { res_outcome = outcome; res_stats = o.Explorer.so_stats }

let pp_outcome ppf = function
  | Holds -> Fmt.string ppf "holds"
  | Fails None -> Fmt.string ppf "FAILS"
  | Fails (Some trace) ->
    Fmt.pf ppf "FAILS (counterexample of %d steps)" (List.length trace)
  | Sup sup -> Fmt.pf ppf "sup = %a" Explorer.pp_sup_result sup
  | Unknown (reason, None) ->
    Fmt.pf ppf "UNKNOWN (%a)" Runctl.pp_reason reason
  | Unknown (reason, Some partial) ->
    Fmt.pf ppf "UNKNOWN (%a; sup so far %a)" Runctl.pp_reason reason
      Explorer.pp_sup_result partial
