(** A small UPPAAL-flavoured query language over networks.

    Grammar (whitespace-insensitive):

    {v
query ::= "E<>" pred                        existential reachability
        | "A[]" pred                        invariance
        | "sup:" chan "->" chan             maximum delay between two
            [ "ceiling" INT ]                 synchronisations (default
                                              ceiling 10000)
        | "bounded:" chan "->" chan "within" INT
                                            the paper's P(Δ)

pred  ::= term { "or" term }
term  ::= factor { "and" factor }
factor::= "not" factor | "(" pred ")" | atom | "true" | "false"
atom  ::= IDENT "." IDENT                   process at location
        | IDENT cmp INT                     variable comparison
cmp   ::= "==" | "!=" | "<" | "<=" | ">" | ">="
    v}

    Examples: ["E<> Pump.Infusing"], ["A[] iovf_BolusReq == 0"],
    ["sup: m_BolusReq -> c_StartInfusion ceiling 2000"],
    ["bounded: m_BolusReq -> c_StartInfusion within 500"]. *)

type pred =
  | At of string * string
  | Cmp of string * Ta.Expr.rel * int
  | Const of bool
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type t =
  | Exists_eventually of pred
  | Always of pred
  | Sup_delay of { trigger : string; response : string; ceiling : int }
  | Bounded_response of { trigger : string; response : string; bound : int }

type outcome =
  | Holds
  | Fails of string list option  (** counterexample trace when available *)
  | Sup of Explorer.sup_result
  | Unknown of Runctl.reason * Explorer.sup_result option
      (** the search was interrupted before a definite answer; for the
          timed queries the partial sup explored so far rides along.
          A [Bounded_response] whose partial sup already exceeds the
          bound is reported [Fails], not [Unknown] — the sup only grows. *)

(** An evaluated query: the three-valued outcome plus the exploration
    statistics (partial when the outcome is [Unknown]). *)
type result = {
  res_outcome : outcome;
  res_stats : Explorer.stats;
}

(** [parse text] parses a query.  Errors mention the offending token. *)
val parse : string -> (t, string) Stdlib.result

(** Canonical text form: [parse (to_string q) = Ok q], and two queries
    print equal iff their trees are equal (binary predicate nodes are
    fully parenthesized).  This is the query contribution to the result
    store's cache key. *)
val to_string : t -> string

(** [eval net q] builds the needed explorer (with a delay monitor for the
    timed queries) and evaluates under the optional [ctl] govern token.
    [jobs] (default 1) selects the number of exploration domains; with
    [jobs > 1] evaluation goes through {!Parsearch} — same outcome,
    order-dependent statistics (see {!Parsearch}).
    @raise Ta.Compiled.Compile_error on an
    invalid network, [Not_found] if the query names an unknown process,
    location or variable. *)
val eval :
  ?jobs:int -> ?ctl:Runctl.t -> ?limit:int -> Ta.Model.network -> t -> result

val pp_outcome : Format.formatter -> outcome -> unit

(** Compile a predicate against an explorer for direct use with
    {!Explorer.reachable} or {!Explorer.timed_trace}.
    @raise Not_found on unknown names. *)
val compile_pred : Explorer.t -> pred -> Explorer.state -> bool

(** The reserved clock name of the delay monitor {!eval} composes for
    the timed queries — exposed so an alternative evaluation engine
    (the incremental explorer) builds a monitor with the identical
    fingerprint. *)
val delay_monitor_clock : string
