(** Domain-parallel zone exploration (OCaml 5 multicore).

    [Parsearch] runs the same zone exploration as {!Explorer} across
    [jobs] domains:

    - the passed/waiting store is {e sharded} by the discrete-state
      hash ({!Explorer.hash_discrete}) into {!num_shards} mutex-guarded
      shards, and subsumption is checked within the owning shard;
    - each worker owns a private DBM scratch pool
      ({!Explorer.fresh_pool}); a successor that survives insertion
      transfers zone ownership to the store (stored zones are immutable
      and never return to any pool, so cross-domain reads are safe);
    - successors are pushed to the queue of the shard that owns their
      discrete state, and an idle worker steals work by scanning the
      other shards round-robin from its home position;
    - termination is detected by a quiescence count: an atomic counter
      of outstanding work (queued entries plus in-flight expansions)
      that is incremented on push and decremented only {e after} an
      expansion has pushed all its successors, so it reaches zero
      exactly when the frontier is globally empty;
    - {!Runctl} budgets and cancellation work unchanged — the token's
      state is [Atomic.t], the visited counter is shared, and the first
      worker to observe exhaustion stops the fleet.

    {b Determinism.}  For every [jobs], verdicts and sup values are
    identical to the sequential explorer: the search runs to the same
    zone-graph fixpoint, every reachable zone ends up covered by a
    stored zone that is itself reachable, and the supremum of a clock
    over a covering set equals the supremum over the full reachable set.
    What {e may} differ with [jobs > 1] is everything order-dependent:
    visited/stored counts (subsumption prunes differently), the witness
    trace (a different but still feasible counterexample may be found
    first), and the partial sup of an interrupted run (still a sound
    lower bound).

    [jobs <= 1] delegates to the sequential {!Explorer.search}
    byte-identically — same visited/stored counts, same snapshots.
    Parallel runs ([jobs > 1]) do not emit snapshots and do not call
    the progress hook.

    {b Supervision.}  A worker domain that raises does not kill the
    process: the first crash wins the stop cell, the remaining workers
    wind down at their next poll, and the search returns an interrupted
    result with {!Runctl.reason} [Crash] carrying the exception (and
    backtrace when recorded).  Callers observe a diagnosed [Unknown]
    verdict — never an escaping exception — so one poisoned query
    cannot take down a batch or the serve loop.  Crash results are
    never cached ({!Store.Entry.reusable}). *)

(** Shard count of the parallel passed/waiting store (a power of two,
    well above any sane worker count so shard contention stays low). *)
val num_shards : int

(** [reachable ~jobs t pred] is {!Explorer.reachable} on [jobs]
    domains.  The witness trace, when present, is feasible (it is a
    real path of the zone graph) but need not be the one the
    sequential search finds. *)
val reachable :
  ?jobs:int -> ?ctl:Runctl.t ->
  Explorer.t -> (Explorer.state -> bool) -> Explorer.reach_result

(** [safe ~jobs t pred] is {!Explorer.safe} on [jobs] domains. *)
val safe :
  ?jobs:int -> ?ctl:Runctl.t ->
  Explorer.t -> (Explorer.state -> bool) -> Explorer.verdict * Explorer.stats

(** [sup_clock ~jobs t ~pred ~clock] is {!Explorer.sup_clock} on [jobs]
    domains: each worker folds a private running sup over the states it
    stores, and the per-worker results merge by max ([Sup_exceeds]
    dominates; at equal values a non-strict bound beats a strict one).
    With [jobs > 1] the outcome never carries a snapshot; pass
    [resume] work through the sequential path instead. *)
val sup_clock :
  ?jobs:int -> ?ctl:Runctl.t ->
  Explorer.t -> pred:(Explorer.state -> bool) -> clock:string ->
  Explorer.sup_outcome

(** [timed_witness ~jobs t pred] finds a witness chain (in parallel)
    and replays it sequentially via {!Explorer.replay}: the parallel
    analogue of {!Explorer.timed_trace}.  [None] when the predicate is
    unreachable (or not reached within budget).  Because every chain
    the search returns is a real zone-graph path, the replay of a found
    witness always succeeds. *)
val timed_witness :
  ?jobs:int -> ?ctl:Runctl.t ->
  Explorer.t -> (Explorer.state -> bool) ->
  Explorer.timed_step list option
