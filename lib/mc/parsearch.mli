(** Domain-parallel zone exploration (OCaml 5 multicore).

    [Parsearch] runs the same zone exploration as {!Explorer} across
    [jobs] domains:

    - work lives in {e per-worker deques}: the owner pushes and pops at
      the back (one lock per pop), an idle worker steals a batch from
      the front of a victim's deque, and victims are probed through a
      lock-free size mirror — idle workers never contend a lock the
      busy ones need;
    - the passed store is sharded by the discrete-state hash
      ({!Explorer.hash_discrete}) into {!num_shards} shards of atomic
      buckets; successors transfer in {e batches}, one shard-lock
      acquisition per batch, and both subsumption directions run
      against a lock-free snapshot of the entry list {e outside} the
      lock (stored zones are immutable and published through
      [Atomic.t], so reads need no lock; publish decisions are
      revalidated under the lock by pointer equality);
    - each worker owns a private DBM scratch pool
      ({!Explorer.fresh_pool}); a successor that survives insertion
      transfers zone ownership to the store;
    - sup queries order each batch {e max-delay-first} (scored by the
      monitor clock's supremum), which reaches the final sup sooner and
      lets subsumption prune the low-delay frontier;
    - termination is a quiescence count of buffered successors, queued
      entries and in-flight expansions; it reaches zero exactly when no
      work exists anywhere and none can appear;
    - {!Runctl} budgets and cancellation work unchanged; the visited
      counter is reserved by CAS and can never pass the state budget,
      even transiently.

    {b Determinism.}  For every [jobs], verdicts and sup values are
    identical to the sequential explorer: the search runs to the same
    zone-graph fixpoint, every reachable zone ends up covered by a
    stored zone that is itself reachable, and the supremum of a clock
    over a covering set equals the supremum over the full reachable set.
    What {e may} differ with [jobs > 1] is everything order-dependent:
    visited/stored counts (subsumption prunes differently), the witness
    trace (a different but still feasible counterexample may be found
    first), and the partial sup of an interrupted run (still a sound
    lower bound).

    [jobs <= 1] delegates to the sequential {!Explorer.search}
    byte-identically — same visited/stored counts, same snapshots.
    Parallel runs do not call the progress hook.

    {b Checkpoints.}  An interrupted parallel [sup_clock] emits a
    PSVSNAP2 snapshot, same format as the sequential one: the fleet
    finishes its in-flight expansions and flushes its buffers on a
    budget/cancel interrupt, so the serialized store plus frontier is a
    coherent cut of the search.  A snapshot taken at any [jobs] resumes
    at any other [jobs], to the same sup and verdict as an
    uninterrupted run.

    {b Supervision.}  A worker domain that raises does not kill the
    process: the first crash wins the stop cell, the remaining workers
    wind down at their next poll, and the search returns an interrupted
    result with {!Runctl.reason} [Crash] carrying the exception (and
    backtrace when recorded).  Callers observe a diagnosed [Unknown]
    verdict — never an escaping exception, and never a hang on the
    quiescence count (workers exit on the stop cell regardless of
    outstanding tokens) — so one poisoned query cannot take down a
    batch or the serve loop.  Crash results are never cached
    ({!Store.Entry.reusable}), and a crashed run emits no snapshot (its
    cut may be incoherent). *)

(** Shard count of the parallel passed store (a power of two, well
    above any sane worker count so shard contention stays low). *)
val num_shards : int

(** [Domain.recommended_domain_count ()]: the number of workers this
    host can actually run in parallel.  CLI layers clamp user-supplied
    [--jobs] to it (more workers than cores only adds contention);
    library functions do {e not} clamp, so tests can exercise
    multi-domain schedules on any host. *)
val recommended_jobs : unit -> int

(** [reachable ~jobs t pred] is {!Explorer.reachable} on [jobs]
    domains.  The witness trace, when present, is feasible (it is a
    real path of the zone graph) but need not be the one the
    sequential search finds. *)
val reachable :
  ?jobs:int -> ?ctl:Runctl.t ->
  Explorer.t -> (Explorer.state -> bool) -> Explorer.reach_result

(** [safe ~jobs t pred] is {!Explorer.safe} on [jobs] domains. *)
val safe :
  ?jobs:int -> ?ctl:Runctl.t ->
  Explorer.t -> (Explorer.state -> bool) -> Explorer.verdict * Explorer.stats

(** [sup_clock ~jobs t ~pred ~clock] is {!Explorer.sup_clock} on [jobs]
    domains: each worker folds a private running sup over the states it
    stores, and the per-worker results merge by max ([Sup_exceeds]
    dominates; at equal values a non-strict bound beats a strict one).
    [resume] continues an interrupted run (sequential- or
    parallel-written snapshot alike); an interrupted run carries a
    snapshot in [so_snapshot].
    @raise Invalid_argument when the snapshot does not match. *)
val sup_clock :
  ?jobs:int -> ?ctl:Runctl.t -> ?resume:Explorer.snapshot ->
  Explorer.t -> pred:(Explorer.state -> bool) -> clock:string ->
  Explorer.sup_outcome

(** [timed_witness ~jobs t pred] finds a witness chain (in parallel)
    and replays it sequentially via {!Explorer.replay}: the parallel
    analogue of {!Explorer.timed_trace}.  [None] when the predicate is
    unreachable (or not reached within budget).  Because every chain
    the search returns is a real zone-graph path, the replay of a found
    witness always succeeds. *)
val timed_witness :
  ?jobs:int -> ?ctl:Runctl.t ->
  Explorer.t -> (Explorer.state -> bool) ->
  Explorer.timed_step list option
