(** Run governance for long verification runs.

    A {!t} is a cooperative cancellation token with optional resource
    budgets.  The explorer polls it between state expansions; when a
    budget is exhausted (or {!cancel} has been called) the search stops
    cleanly and reports an {!reason} instead of raising, so partial
    statistics — and a resumable snapshot — survive the interruption.

    Budgets are deliberately approximate: wall-clock and live-memory are
    sampled every few hundred expansions (a [gettimeofday] or
    [Gc.quick_stat] per state would dominate small models), so a run may
    overshoot a budget by one sampling interval.  The visited-state
    budget is exact.

    {b Domain-safety.}  One token may be shared by every worker of a
    parallel search ({!Parsearch}) and by a SIGINT handler, so the
    mutable state ([cancelled], the sampling tick counter) lives in
    [Atomic.t] cells.  The OCaml 5 memory model gives plain mutable
    fields no publication guarantee between domains — a worker polling a
    plain [mutable bool] written by another domain may read a stale
    value indefinitely, making cancellation unsound.  [Atomic] operations
    are sequentially consistent: once {!cancel} returns, every later
    {!check} on any domain observes it.  The tick counter uses
    [fetch_and_add], so the expensive clock/heap sampling interval is
    global across workers rather than multiplied by the worker count.
    [check] itself never blocks and takes no locks, so workers can poll
    it on their hot path. *)

(** Why a search stopped short of a definitive answer. *)
type reason =
  | Time_budget of float   (** wall-clock budget, in seconds *)
  | State_budget of int    (** visited-state budget *)
  | Memory_budget of int   (** live-heap budget, in bytes *)
  | Cancelled              (** {!cancel} was called (e.g. SIGINT) *)
  | Crash of string
      (** a worker domain raised; the search was downgraded instead of
          killing the process — diagnostic (with backtrace) attached *)

type budget = {
  b_time_s : float option;     (** wall-clock seconds from {!create} *)
  b_states : int option;       (** visited (expanded) states *)
  b_mem_bytes : int option;    (** live major-heap bytes ([Gc.quick_stat]) *)
}

val no_budget : budget

type t

(** [create ?budget ()] starts the wall clock now. *)
val create : ?budget:budget -> unit -> t

(** The budget the token was created with. *)
val budget : t -> budget

(** Request cancellation; the next poll observes it.  Idempotent and
    safe to call from a signal handler. *)
val cancel : t -> unit

val cancelled : t -> bool

(** [check t ~visited] polls the token: [Some reason] when the run must
    stop.  Cheap (a few comparisons) except every 256th call, which
    samples the clock and the heap.  The first call always samples. *)
val check : t -> visited:int -> reason option

(** [check_striped t ~visited ~tick] is {!check} with the clock/heap
    sampling driven by a caller-supplied tick counter instead of the
    shared one: a parallel worker passes its worker-local expansion
    count, so the hot path costs one atomic read (the cancel flag) and
    no read-modify-write on a cache line shared by every worker.  The
    sampling mask is tighter (every 64th tick) since each worker ticks
    at roughly 1/jobs the fleet's rate; [tick = 0] samples, so a run
    already over budget stops before its first expansion. *)
val check_striped : t -> visited:int -> tick:int -> reason option

(** Install a SIGINT handler that cancels [t].  A second SIGINT restores
    the default behavior (terminate), so a wedged run can still be
    killed.  No-op on platforms without [Sys.sigint] handling. *)
val install_sigint : t -> unit

(** [parse_duration s] parses ["250ms"], ["2s"], ["1.5s"], ["3m"],
    ["1h"], or a bare number of seconds, into seconds. *)
val parse_duration : string -> (float, string) result

val pp_reason : Format.formatter -> reason -> unit

(** Short machine-readable tag: ["time-budget"], ["state-budget"],
    ["memory-budget"], ["cancelled"] or ["crash"]. *)
val reason_tag : reason -> string
