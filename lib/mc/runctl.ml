type reason =
  | Time_budget of float
  | State_budget of int
  | Memory_budget of int
  | Cancelled
  | Crash of string

type budget = {
  b_time_s : float option;
  b_states : int option;
  b_mem_bytes : int option;
}

let no_budget = { b_time_s = None; b_states = None; b_mem_bytes = None }

(* Both mutable fields are [Atomic.t] because one token is shared by
   every domain of a parallel search (Parsearch).  A plain mutable bool
   written by the cancelling domain (or a signal handler) carries no
   inter-domain publication guarantee under the OCaml 5 memory model: a
   worker could spin on a stale cached value forever.  [Atomic.get/set]
   are seq-cst, so a [cancel] becomes visible to every subsequent
   [check] on any domain. *)
type t = {
  budget : budget;
  started : float;
  is_cancelled : bool Atomic.t;
  ticks : int Atomic.t;  (* calls to [check] since the last expensive poll *)
}

let create ?(budget = no_budget) () =
  { budget;
    started = Unix.gettimeofday ();
    is_cancelled = Atomic.make false;
    ticks = Atomic.make 0 }

let budget t = t.budget

let cancel t = Atomic.set t.is_cancelled true

let cancelled t = Atomic.get t.is_cancelled

(* Sampling interval for the expensive checks (clock, heap).  Power of
   two so the modulo is a mask. *)
let sample_mask = 255

let word_bytes = Sys.word_size / 8

(* The expensive sampled polls: wall clock and heap size. *)
let slow_poll t =
  let over_time =
    match t.budget.b_time_s with
    | Some limit when Unix.gettimeofday () -. t.started >= limit ->
      Some (Time_budget limit)
    | Some _ | None -> None
  in
  match over_time with
  | Some _ as r -> r
  | None ->
    (match t.budget.b_mem_bytes with
     | Some limit when (Gc.quick_stat ()).Gc.heap_words * word_bytes >= limit
       ->
       Some (Memory_budget limit)
     | Some _ | None -> None)

let over_states t ~visited =
  match t.budget.b_states with
  | Some n when visited >= n -> Some (State_budget n)
  | Some _ | None -> None

let check t ~visited =
  if Atomic.get t.is_cancelled then Some Cancelled
  else begin
    match over_states t ~visited with
    | Some _ as r -> r
    | None ->
      (* [ticks = 0] on the first call, so a run that is already over
         budget stops before expanding anything.  Under a parallel
         search the counter is shared: the sampling interval is global
         across workers, not per worker, keeping the clock/heap poll
         rate independent of the worker count. *)
      let sample = Atomic.fetch_and_add t.ticks 1 land sample_mask = 0 in
      if not sample then None else slow_poll t
  end

(* Sampling interval for [check_striped].  Tighter than [sample_mask]
   because each worker ticks at roughly 1/jobs the fleet's rate. *)
let striped_mask = 63

let check_striped t ~visited ~tick =
  if Atomic.get t.is_cancelled then Some Cancelled
  else begin
    match over_states t ~visited with
    | Some _ as r -> r
    | None -> if tick land striped_mask <> 0 then None else slow_poll t
  end

let install_sigint t =
  match Sys.signal Sys.sigint (Sys.Signal_handle (fun _ ->
      cancel t;
      (* second ^C falls through to the default handler: terminate *)
      Sys.set_signal Sys.sigint Sys.Signal_default))
  with
  | _previous -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

let parse_duration s =
  let s = String.trim s in
  let num text =
    match float_of_string_opt text with
    | Some v when v >= 0.0 -> Ok v
    | Some _ -> Error "duration must be non-negative"
    | None -> Error (Printf.sprintf "cannot parse %S as a number" text)
  in
  let scaled text factor =
    Result.map (fun v -> v *. factor) (num text)
  in
  let n = String.length s in
  if n = 0 then Error "empty duration"
  else if n >= 2 && String.sub s (n - 2) 2 = "ms" then
    scaled (String.sub s 0 (n - 2)) 0.001
  else
    match s.[n - 1] with
    | 's' -> num (String.sub s 0 (n - 1))
    | 'm' -> scaled (String.sub s 0 (n - 1)) 60.0
    | 'h' -> scaled (String.sub s 0 (n - 1)) 3600.0
    | _ -> num s

let pp_reason ppf = function
  | Time_budget limit -> Fmt.pf ppf "time budget (%gs) exhausted" limit
  | State_budget limit -> Fmt.pf ppf "state budget (%d) exhausted" limit
  | Memory_budget limit ->
    Fmt.pf ppf "memory budget (%d MB) exhausted" (limit / (1024 * 1024))
  | Cancelled -> Fmt.string ppf "cancelled"
  | Crash msg -> Fmt.pf ppf "worker crashed: %s" msg

let reason_tag = function
  | Time_budget _ -> "time-budget"
  | State_budget _ -> "state-budget"
  | Memory_budget _ -> "memory-budget"
  | Cancelled -> "cancelled"
  | Crash _ -> "crash"
