(* Domain-parallel zone exploration.

   The first cut of this module sharded the passed/waiting store into
   64 mutex-guarded shards, each carrying its own FIFO: every [take]
   scanned (and locked) up to all 64 shard mutexes, idle workers
   spin-scanned the whole array while [pending > 0], and both
   subsumption directions ran inside the shard lock on every insert.
   On real multicore hosts the lock traffic convoyed the workers doing
   actual DBM work and made [--jobs 2] slower than sequential.

   The current design keeps lock hold times off the hot path entirely:

   - {b Per-worker deques.}  Work lives in one growable ring deque per
     worker, guarded by its own mutex.  The owner pushes and pops at
     the back (LIFO — with ordered search this pops the highest-score
     successor of the latest batch first); an idle worker steals a
     batch (up to half the victim's deque, capped) from the front.  A
     worker touches exactly one lock per pop instead of up to 64.

   - {b Batched shard transfers.}  Successors park in a worker-local
     per-shard buffer and are delivered in batches (threshold
     {!batch_size}, plus a full flush whenever the worker's own deque
     runs dry and at wind-down), so one shard-lock acquisition is
     amortized over a whole batch instead of paid per successor.

   - {b Subsumption outside the lock.}  A shard is a fixed array of
     buckets, each an [Atomic.t] holding an immutable list of nodes;
     each node holds its entry list in an [Atomic.t] too.  Both
     subsumption directions run against an [Atomic.get] snapshot of the
     entry list {e without} the shard lock.  This is sound under the
     OCaml 5 memory model: lists are immutable cons cells published by
     [Atomic.set] (release) and read by [Atomic.get] (acquire), and a
     stored zone is immutable and never returns to a scratch pool, so
     everything reachable from the snapshot is frozen.  A "covered"
     verdict is final even without the lock — stored zones never shrink,
     and a cover of a cover still covers, so later pruning of the
     coverer cannot un-cover us.  A "publish" decision is revalidated
     under the lock by physical equality of the entry list (lists are
     freshly consed on every commit, so pointer equality means
     "unchanged"); only the rare conflicting batch repeats the DBM work
     inside the lock.

   - {b Ordered frontiers.}  An optional [order] scores each successor
     (sup queries score by the monitor clock's supremum); batches are
     pushed in ascending score order so the owner's LIFO pop explores
     max-delay states first, which reaches the final sup sooner and
     lets subsumption prune more of the low-delay frontier.

   - {b Exact state budgets.}  Workers reserve an expansion slot with a
     CAS loop on the shared [visited] counter that never lets it pass
     the effective limit (the explorer's own cap or the token's
     [b_states], whichever binds) — not even transiently, so partial
     stats cannot report [visited > budget] no matter how many workers
     race into the limit.

   - {b Coherent checkpoints.}  On a budget/cancel interrupt the fleet
     finishes its in-flight expansions and flushes its buffers, so the
     store plus the deque contents form a consistent cut of the search;
     the cut serializes through the sequential PSVSNAP2 format
     ({!Explorer.make_snapshot}) and resumes at any [--jobs].

   Termination is still a quiescence count: [pending] tracks buffered
   successors, queued entries and in-flight expansions (a successor
   takes its token when buffered, hands it to the deque entry when
   published, releases it when covered, popped dead, or expanded), so
   [pending = 0] observed by an idle worker means no work exists
   anywhere and none can appear.

   Dead marks ([p_dead]) are written under the shard lock but read
   without it by pops; a stale read just re-expands a subsumed entry,
   which is redundant (its successors are covered once the coverer's
   are published) but never unsound — all explored states remain
   reachable, so verdicts and sups are unaffected.

   Determinism: verdicts and sup values match the sequential explorer
   because both run the same zone-graph closure to a fixpoint — every
   reachable zone ends up included in some stored zone that is itself
   reachable, so predicates over discrete states and suprema of clocks
   agree no matter the exploration order.  Visited/stored counts,
   witness choice and interrupted partial results are order-dependent
   and may differ. *)

open Ta

let num_shards = 64
let shard_shift = 6 (* log2 num_shards; bucket index uses the next bits *)
let shard_buckets = 512
let batch_size = 32

let recommended_jobs () = Domain.recommended_domain_count ()

(* A stored symbolic state.  The parent link doubles as the trace side
   table: witness chains are rebuilt by walking [p_parent], so no
   global id-indexed array (and no lock around it) is needed.
   [p_dead] is written under the owning shard's mutex (and read racily,
   see above). *)
type entry = {
  p_id : int;
  p_state : Explorer.state;
  p_sum : int;  (* Dbm.weight of the zone, prefilters subsumption probes *)
  p_parent : entry option;
  p_movers : (int * Compiled.cedge) list;
  p_score : int;
  mutable p_dead : bool;
}

type node = {
  n_hash : int;
  n_locs : int array;
  n_vars : int array;
  n_mon : int;
  n_entries : entry list Atomic.t;
}

type shard = {
  s_lock : Mutex.t;
  s_buckets : node list Atomic.t array;
}

(* Why a search (or a worker) is winding down.  [Running] is an
   immediate constructor, so first-one-wins transitions use
   [compare_and_set stop Running _]. *)
type stop_state =
  | Running
  | Found of entry
  | Interrupted of Runctl.reason
  | Crashed of exn * string  (* exception + backtrace of the first crash *)

type par_result = {
  pr_chain : (int * Compiled.cedge) list list option;
  pr_stats : Explorer.stats;
  pr_interrupt : Runctl.reason option;
  pr_snapshot : Explorer.snapshot option;
}

let chain_of entry =
  let rec walk acc e =
    match e.p_parent with
    | None -> acc
    | Some p -> walk (e.p_movers :: acc) p
  in
  walk [] entry

(* Critical sections never block and never call user code, but an
   exception leaking out of one (a library bug) must not leave the
   mutex held: the other workers would wedge in [Mutex.lock] where they
   cannot observe the stop cell. *)
let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception exn ->
    Mutex.unlock m;
    raise exn

(* --- per-worker deque --------------------------------------------------- *)

(* A growable ring guarded by its own mutex.  [d_size] mirrors the
   length so idle workers can scan for a victim without touching any
   lock.  Slots are not cleared on pop: every entry is also reachable
   from the store (or from a live descendant's parent chain), so the
   stale references retain nothing extra. *)
type deque = {
  d_lock : Mutex.t;
  mutable d_buf : entry array;
  mutable d_head : int;
  mutable d_len : int;
  d_size : int Atomic.t;
}

let deque_make () =
  { d_lock = Mutex.create ();
    d_buf = [||];
    d_head = 0;
    d_len = 0;
    d_size = Atomic.make 0 }

(* Ring helpers; callers hold [d_lock] and refresh [d_size] once per
   critical section. *)
let deque_reserve d extra filler =
  let cap = Array.length d.d_buf in
  if d.d_len + extra > cap then begin
    let ncap = ref (max 64 cap) in
    while !ncap < d.d_len + extra do
      ncap := 2 * !ncap
    done;
    let nb = Array.make !ncap filler in
    for i = 0 to d.d_len - 1 do
      nb.(i) <- d.d_buf.((d.d_head + i) mod cap)
    done;
    d.d_buf <- nb;
    d.d_head <- 0
  end

let deque_push_back d e =
  deque_reserve d 1 e;
  d.d_buf.((d.d_head + d.d_len) mod Array.length d.d_buf) <- e;
  d.d_len <- d.d_len + 1

let deque_pop_back d =
  if d.d_len = 0 then None
  else begin
    d.d_len <- d.d_len - 1;
    Some d.d_buf.((d.d_head + d.d_len) mod Array.length d.d_buf)
  end

let deque_pop_front d =
  if d.d_len = 0 then None
  else begin
    let e = d.d_buf.(d.d_head) in
    d.d_head <- (d.d_head + 1) mod Array.length d.d_buf;
    d.d_len <- d.d_len - 1;
    Some e
  end

(* A successor parked in its producing worker's per-shard buffer,
   waiting for the batched transfer into the store. *)
type succ = {
  c_hash : int;
  c_parent : entry option;
  c_movers : (int * Compiled.cedge) list;
  c_state : Explorer.state;
  c_score : int;
}

type wstate = {
  w_index : int;
  w_pool : Zone.Dbm.Pool.t;
  w_deque : deque;
  w_buf : succ list array; (* per destination shard, newest first *)
  w_nbuf : int array;
  mutable w_buffered : int; (* total across shards *)
  mutable w_tick : int;     (* expansions, for striped runctl sampling *)
}

(* [visit] is called by the inserting worker with its worker index, so
   callers can fold into per-worker accumulators without locks.
   [order] scores successors for max-first frontier ordering;
   [snapshot_label]/[payload] enable PSVSNAP2 checkpoints on interrupt,
   and [resume] seeds the store from one (its label must match). *)
let run_parallel ~jobs ?ctl ?order ?resume ?snapshot_label
    ?(payload = fun () -> "") t visit =
  let jobs = max 1 jobs in
  let dim = (Explorer.compiled t).Compiled.c_nclocks + 1 in
  let shards =
    Array.init num_shards (fun _ ->
        { s_lock = Mutex.create ();
          s_buckets = Array.init shard_buckets (fun _ -> Atomic.make []) })
  in
  let wstates =
    Array.init jobs (fun w ->
        { w_index = w;
          w_pool = Explorer.fresh_pool t;
          w_deque = deque_make ();
          w_buf = Array.make num_shards [];
          w_nbuf = Array.make num_shards 0;
          w_buffered = 0;
          w_tick = 0 })
  in
  let next_id = Atomic.make 0 in
  let pending = Atomic.make 0 in
  let visited = Atomic.make 0 in
  let stored = Atomic.make 0 in
  let stop = Atomic.make Running in
  (* the state budget is enforced by reservation (a CAS loop on
     [visited]), not detection: the counter can never pass
     [hard_limit], even transiently, so partial stats never report
     more visited states than the budget allows *)
  let hard_limit =
    let limit = Explorer.state_limit t in
    match ctl with
    | Some c ->
      (match (Runctl.budget c).Runctl.b_states with
       | Some n -> min n limit
       | None -> limit)
    | None -> limit
  in
  let score_of = match order with None -> fun _ -> 0 | Some f -> f in
  let ordered = order <> None in
  let running () = match Atomic.get stop with Running -> true | _ -> false in
  (* on a budget/cancel interrupt the fleet finishes in-flight
     expansions and flushes, so store + deques stay a coherent cut of
     the search (snapshot-ready); [Found]/[Crashed] abandon at once *)
  let winding_down_ok () =
    match Atomic.get stop with
    | Running | Interrupted _ -> true
    | Found _ | Crashed _ -> false
  in
  let interrupt r =
    ignore (Atomic.compare_and_set stop Running (Interrupted r))
  in
  let found e = ignore (Atomic.compare_and_set stop Running (Found e)) in
  let crashed exn bt =
    ignore (Atomic.compare_and_set stop Running (Crashed (exn, bt)))
  in
  let find_node nodes h (st : Explorer.state) =
    let rec go = function
      | [] -> None
      | n :: rest ->
        if n.n_hash = h && n.n_mon = st.Explorer.st_mon
           && n.n_locs = st.Explorer.st_locs
           && n.n_vars = st.Explorer.st_vars
        then Some n
        else go rest
    in
    go nodes
  in
  (* both subsumption scans prefilter on the scalar zone weight (a
     dominance measure, see {!Zone.Dbm.weight}): an entry can cover the
     newcomer only when at least as heavy, and be covered only when no
     heavier, so most probes skip the O(dim^2) inclusion walk *)
  let covered_by entries (st : Explorer.state) =
    let w = Zone.Dbm.weight st.Explorer.st_zone in
    List.exists
      (fun e ->
        e.p_sum >= w
        && Zone.Dbm.includes e.p_state.Explorer.st_zone st.Explorer.st_zone)
      entries
  in
  (* survivors vs. entries the newcomer covers *)
  let split_killed entries (st : Explorer.state) =
    let w = Zone.Dbm.weight st.Explorer.st_zone in
    List.partition
      (fun e ->
        e.p_sum > w
        || not
             (Zone.Dbm.includes st.Explorer.st_zone e.p_state.Explorer.st_zone))
      entries
  in
  let fresh_entry it =
    { p_id = Atomic.fetch_and_add next_id 1;
      p_state = it.c_state;
      p_sum = Zone.Dbm.weight it.c_state.Explorer.st_zone;
      p_parent = it.c_parent;
      p_movers = it.c_movers;
      p_score = it.c_score;
      p_dead = false }
  in
  (* drop a covered successor: scratch zone back to the producing
     worker's pool, quiescence token released *)
  let drop ws it =
    Zone.Dbm.Pool.release ws.w_pool it.c_state.Explorer.st_zone;
    Atomic.decr pending
  in
  (* slow path, caller holds the shard lock: full insert against the
     current entry list *)
  let insert_locked ws it n =
    let cur = Atomic.get n.n_entries in
    if covered_by cur it.c_state then begin
      drop ws it;
      None
    end
    else begin
      let keep, killed = split_killed cur it.c_state in
      List.iter (fun e -> e.p_dead <- true) killed;
      let e = fresh_entry it in
      Atomic.set n.n_entries (e :: keep);
      Atomic.incr stored;
      Some e
    end
  in
  (* Deliver worker [ws]'s buffered successors for shard [si]: one
     optimistic pass without the lock, then one lock acquisition for
     the whole batch.  Published entries go to the worker's own deque
     (ascending score, so LIFO pops max first) and through [visit]. *)
  let flush_shard ws si =
    let items = ws.w_buf.(si) in
    ws.w_buf.(si) <- [];
    ws.w_buffered <- ws.w_buffered - ws.w_nbuf.(si);
    ws.w_nbuf.(si) <- 0;
    let sh = shards.(si) in
    (* phase 1 — no lock: resolve each successor's node and run both
       subsumption directions against the published snapshot *)
    let prep =
      List.rev_map
        (fun it ->
          let bi = (it.c_hash lsr shard_shift) land (shard_buckets - 1) in
          match
            find_node (Atomic.get sh.s_buckets.(bi)) it.c_hash it.c_state
          with
          | None -> (it, bi, None)
          | Some n ->
            let snap = Atomic.get n.n_entries in
            if covered_by snap it.c_state then (it, bi, Some (n, snap, None))
            else
              let keep, killed = split_killed snap it.c_state in
              (it, bi, Some (n, snap, Some (keep, killed))))
        items
    in
    (* phase 2 — commit the batch under one lock acquisition.
       "Covered" is final without re-checking; "publish" revalidates by
       pointer equality of the entry list and falls back to the locked
       slow path only when another worker committed to this node since
       phase 1 *)
    let published =
      with_lock sh.s_lock (fun () ->
          List.fold_left
            (fun acc (it, bi, info) ->
              match info with
              | Some (_, _, None) ->
                drop ws it;
                acc
              | Some (n, snap, Some (keep, killed)) ->
                if Atomic.get n.n_entries == snap then begin
                  List.iter (fun e -> e.p_dead <- true) killed;
                  let e = fresh_entry it in
                  Atomic.set n.n_entries (e :: keep);
                  Atomic.incr stored;
                  e :: acc
                end
                else begin
                  match insert_locked ws it n with
                  | Some e -> e :: acc
                  | None -> acc
                end
              | None -> begin
                  let nodes = Atomic.get sh.s_buckets.(bi) in
                  match find_node nodes it.c_hash it.c_state with
                  | Some n ->
                    (match insert_locked ws it n with
                     | Some e -> e :: acc
                     | None -> acc)
                  | None ->
                    let e = fresh_entry it in
                    let n =
                      { n_hash = it.c_hash;
                        n_locs = it.c_state.Explorer.st_locs;
                        n_vars = it.c_state.Explorer.st_vars;
                        n_mon = it.c_state.Explorer.st_mon;
                        n_entries = Atomic.make [ e ] }
                    in
                    Atomic.set sh.s_buckets.(bi) (n :: nodes);
                    Atomic.incr stored;
                    e :: acc
                end)
            [] prep)
    in
    let pub =
      List.stable_sort
        (fun a b -> compare a.p_score b.p_score)
        (List.rev published)
    in
    (match pub with
     | [] -> ()
     | _ ->
       let dq = ws.w_deque in
       with_lock dq.d_lock (fun () ->
           List.iter (deque_push_back dq) pub;
           Atomic.set dq.d_size dq.d_len));
    List.iter
      (fun e ->
        match visit ws.w_index e.p_state with
        | `Stop -> found e
        | `Continue -> ())
      pub
  in
  let flush_all ws =
    for si = 0 to num_shards - 1 do
      if ws.w_nbuf.(si) > 0 then flush_shard ws si
    done
  in
  let buffer_succ ws parent movers (st : Explorer.state) =
    let h =
      Explorer.hash_discrete st.Explorer.st_locs st.Explorer.st_vars
        st.Explorer.st_mon
    in
    let si = h land (num_shards - 1) in
    let it =
      { c_hash = h;
        c_parent = parent;
        c_movers = movers;
        c_state = st;
        c_score = score_of st }
    in
    (* the quiescence token is taken when a successor is buffered, not
       when it is published: [pending] over-approximates outstanding
       work, so it cannot hit zero while any worker still holds
       undelivered successors *)
    Atomic.incr pending;
    ws.w_buf.(si) <- it :: ws.w_buf.(si);
    ws.w_nbuf.(si) <- ws.w_nbuf.(si) + 1;
    ws.w_buffered <- ws.w_buffered + 1;
    if ws.w_nbuf.(si) >= batch_size then flush_shard ws si
  in
  let rec reserve_expansion () =
    let v = Atomic.get visited in
    if v >= hard_limit then false
    else if Atomic.compare_and_set visited v (v + 1) then true
    else reserve_expansion ()
  in
  (* [true] when [e] was expanded; [false] when a veto interrupted the
     search first (the caller returns [e] to the frontier) *)
  let expand ws e =
    let veto =
      match ctl with
      | None -> None
      | Some c ->
        let tick = ws.w_tick in
        ws.w_tick <- tick + 1;
        Runctl.check_striped c ~visited:(Atomic.get visited) ~tick
    in
    match veto with
    | Some r ->
      interrupt r;
      false
    | None ->
      if not (reserve_expansion ()) then begin
        interrupt (Runctl.State_budget hard_limit);
        false
      end
      else begin
        List.iter
          (fun cd ->
            if winding_down_ok () then
              match Explorer.fire t ws.w_pool e.p_state cd with
              | None -> ()
              | Some st -> buffer_succ ws (Some e) (Explorer.movers cd) st)
          (Explorer.candidates t e.p_state);
        true
      end
  in
  let pop_own ws =
    let dq = ws.w_deque in
    with_lock dq.d_lock (fun () ->
        let rec go () =
          match (if ordered then deque_pop_back dq else deque_pop_front dq) with
          | None -> None
          | Some e ->
            if e.p_dead then begin
              Atomic.decr pending;
              go ()
            end
            else Some e
        in
        let r = go () in
        Atomic.set dq.d_size dq.d_len;
        r)
  in
  let push_own ws e =
    let dq = ws.w_deque in
    with_lock dq.d_lock (fun () ->
        deque_push_back dq e;
        Atomic.set dq.d_size dq.d_len)
  in
  let steal ws =
    let rec scan i =
      if i >= jobs then None
      else begin
        let vd = wstates.((ws.w_index + i) mod jobs).w_deque in
        if Atomic.get vd.d_size = 0 then scan (i + 1)
        else begin
          let grabbed =
            with_lock vd.d_lock (fun () ->
                (* up to half the victim's deque, front (oldest) first *)
                let want = min batch_size (vd.d_len - (vd.d_len / 2)) in
                let rec front k acc =
                  if k = 0 then acc
                  else
                    match deque_pop_front vd with
                    | None -> acc
                    | Some e ->
                      if e.p_dead then begin
                        Atomic.decr pending;
                        front k acc
                      end
                      else front (k - 1) (e :: acc)
                in
                let l = front want [] in
                Atomic.set vd.d_size vd.d_len;
                List.rev l)
          in
          match grabbed with
          | [] -> scan (i + 1)
          | first :: rest ->
            if rest <> [] then begin
              let dq = ws.w_deque in
              with_lock dq.d_lock (fun () ->
                  List.iter (deque_push_back dq) rest;
                  Atomic.set dq.d_size dq.d_len)
            end;
            Some first
        end
      end
    in
    scan 1
  in
  let rec take ws =
    match pop_own ws with
    | Some e -> Some e
    | None ->
      if ws.w_buffered > 0 then begin
        flush_all ws;
        take ws
      end
      else steal ws
  in
  let worker w =
    let ws = wstates.(w) in
    (* Idle backoff: spin briefly (steals usually succeed within a few
       probes while work exists), then sleep sub-millisecond slices so
       an idle worker stops eating a core the busy ones — or a
       co-scheduled process on an oversubscribed host — need.  The
       [pending = 0] exit check runs before each backoff, so quiescence
       detection is delayed by at most one slice. *)
    let idle = ref 0 in
    let rec loop () =
      if running () then begin
        match take ws with
        | Some e ->
          idle := 0;
          if expand ws e then begin
            Atomic.decr pending;
            loop ()
          end
          else begin
            (* vetoed before expanding: the entry keeps its token and
               returns to the frontier, so an interrupt snapshot still
               carries it *)
            push_own ws e;
            loop ()
          end
        | None ->
          if Atomic.get pending = 0 then ()
          else begin
            incr idle;
            if !idle < 64 then Domain.cpu_relax ()
            else Unix.sleepf (if !idle < 256 then 0.000_05 else 0.000_5);
            loop ()
          end
      end
    in
    (try loop () with exn -> crashed exn (Printexc.get_backtrace ()));
    (* wind-down: deliver still-buffered successors so the store plus
       the deques form a coherent cut (and their tokens resolve);
       harmless after [Found] (a late [found] loses the CAS) *)
    try flush_all ws with exn -> crashed exn (Printexc.get_backtrace ())
  in
  (* seeding runs on the calling domain before any worker spawns, so no
     locks are contended; a crash in the seed visit is supervised like
     any worker crash.  Resume validation, in contrast, raises to the
     caller exactly like the sequential path. *)
  let old_trace =
    match resume with
    | None ->
      (try
         let initial = Explorer.initial_state t in
         if not (Zone.Dbm.is_empty initial.Explorer.st_zone) then begin
           let ws = wstates.(0) in
           buffer_succ ws None [] initial;
           flush_all ws
         end
       with exn -> crashed exn (Printexc.get_backtrace ()));
      [||]
    | Some snap ->
      let label = Option.value snapshot_label ~default:"" in
      Explorer.check_snapshot t ~label ~subsume:true snap;
      Atomic.set next_id (Explorer.snapshot_next_id snap);
      Atomic.set visited (Explorer.snapshot_visited snap);
      Atomic.set stored (Explorer.snapshot_stored snap);
      let by_id = Hashtbl.create 4096 in
      List.iter
        (fun (se : Explorer.snap_entry) ->
          let st =
            { Explorer.st_locs = se.Explorer.se_locs;
              st_vars = se.Explorer.se_vars;
              st_mon = se.Explorer.se_mon;
              st_zone = Zone.Dbm.of_ints ~dim se.Explorer.se_zone }
          in
          let e =
            { p_id = se.Explorer.se_id;
              p_state = st;
              p_sum = Zone.Dbm.weight st.Explorer.st_zone;
              p_parent = None;
              p_movers = [];
              p_score = score_of st;
              p_dead = false }
          in
          Hashtbl.replace by_id e.p_id e;
          let h =
            Explorer.hash_discrete st.Explorer.st_locs st.Explorer.st_vars
              st.Explorer.st_mon
          in
          let sh = shards.(h land (num_shards - 1)) in
          let bi = (h lsr shard_shift) land (shard_buckets - 1) in
          let nodes = Atomic.get sh.s_buckets.(bi) in
          match find_node nodes h st with
          | Some n -> Atomic.set n.n_entries (e :: Atomic.get n.n_entries)
          | None ->
            let n =
              { n_hash = h;
                n_locs = st.Explorer.st_locs;
                n_vars = st.Explorer.st_vars;
                n_mon = st.Explorer.st_mon;
                n_entries = Atomic.make [ e ] }
            in
            Atomic.set sh.s_buckets.(bi) (n :: nodes))
        (Explorer.snapshot_entries snap);
      (* the restored frontier spreads round-robin over the workers;
         the visit callback is NOT replayed for restored states (the
         caller's accumulator comes back through the payload, as in
         the sequential resume) *)
      Array.iteri
        (fun i id ->
          let e = Hashtbl.find by_id id in
          Atomic.incr pending;
          let dq = wstates.(i mod jobs).w_deque in
          deque_push_back dq e;
          Atomic.set dq.d_size dq.d_len)
        (Explorer.snapshot_queue snap);
      Explorer.snapshot_trace snap
  in
  let domains =
    Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  worker 0;
  Array.iter Domain.join domains;
  (* everything below runs after the join, which orders all worker
     writes before these reads *)
  let frontier_entries =
    Array.fold_left
      (fun acc ws ->
        let dq = ws.w_deque in
        let rec go i acc =
          if i >= dq.d_len then acc
          else
            let e = dq.d_buf.((dq.d_head + i) mod Array.length dq.d_buf) in
            go (i + 1) (if e.p_dead then acc else e :: acc)
        in
        go 0 acc)
      [] wstates
  in
  let stats =
    { Explorer.visited = Atomic.get visited;
      stored = Atomic.get stored;
      frontier = List.length frontier_entries }
  in
  let build_snapshot label =
    let live = ref [] in
    Array.iter
      (fun sh ->
        Array.iter
          (fun bucket ->
            List.iter
              (fun n ->
                List.iter
                  (fun e -> if not e.p_dead then live := e :: !live)
                  (Atomic.get n.n_entries))
              (Atomic.get bucket))
          sh.s_buckets)
      shards;
    let nid = Atomic.get next_id in
    let trace = Array.make nid (-1, []) in
    let filled = Array.make nid false in
    (* rows restored from the resumed-from snapshot survive verbatim *)
    Array.iteri
      (fun id row ->
        trace.(id) <- row;
        filled.(id) <- true)
      old_trace;
    let movers_ix movers =
      List.map (fun (ai, ce) -> (ai, ce.Compiled.ce_index)) movers
    in
    (* walk parent chains so interior (pruned) ancestors of live
       entries get their rows too; tail-recursive, stops at the first
       already-filled ancestor *)
    let rec fill e =
      if not filled.(e.p_id) then begin
        filled.(e.p_id) <- true;
        match e.p_parent with
        | None -> () (* root or restored: row stays/was set already *)
        | Some p ->
          trace.(e.p_id) <- (p.p_id, movers_ix e.p_movers);
          fill p
      end
    in
    List.iter fill !live;
    (* entries and queue sorted by id: the serialized cut is then a
       deterministic function of the final store, not of the worker
       interleaving that produced it *)
    let entries =
      !live
      |> List.map (fun e ->
             { Explorer.se_id = e.p_id;
               se_locs = e.p_state.Explorer.st_locs;
               se_vars = e.p_state.Explorer.st_vars;
               se_mon = e.p_state.Explorer.st_mon;
               se_zone = Zone.Dbm.to_ints e.p_state.Explorer.st_zone })
      |> List.sort (fun a b -> compare a.Explorer.se_id b.Explorer.se_id)
    in
    let queue =
      frontier_entries
      |> List.map (fun e -> e.p_id)
      |> List.sort compare |> Array.of_list
    in
    Explorer.make_snapshot t ~label ~subsume:true ~next_id:nid
      ~visited:stats.Explorer.visited ~stored:stats.Explorer.stored ~entries
      ~queue ~trace ~payload:(payload ())
  in
  match Atomic.get stop with
  | Crashed (exn, bt) ->
    (* Supervision: the crashed worker is already isolated (its domain
       has exited; the others observed [stop] and wound down).  The
       search is downgraded to a diagnosed Unknown instead of killing
       the calling process — the diagnosis carries the backtrace when
       the runtime recorded one. *)
    let diag =
      let b = String.trim bt in
      if b = "" then Printexc.to_string exn
      else Printexc.to_string exn ^ "\n" ^ b
    in
    { pr_chain = None;
      pr_stats = stats;
      pr_interrupt = Some (Runctl.Crash diag);
      pr_snapshot = None }
  | Found e ->
    { pr_chain = Some (chain_of e);
      pr_stats = stats;
      pr_interrupt = None;
      pr_snapshot = None }
  | Interrupted r ->
    { pr_chain = None;
      pr_stats = stats;
      pr_interrupt = Some r;
      pr_snapshot = Option.map build_snapshot snapshot_label }
  | Running ->
    { pr_chain = None;
      pr_stats = stats;
      pr_interrupt = None;
      pr_snapshot = None }

(* --- queries ----------------------------------------------------------- *)

let find_chain ~jobs ?ctl t pred =
  if jobs <= 1 then begin
    let r =
      Explorer.search ?ctl ~label:"reachable" t (fun st ->
          if pred st then `Stop else `Continue)
    in
    { pr_chain = r.Explorer.sr_chain;
      pr_stats = r.Explorer.sr_stats;
      pr_interrupt = r.Explorer.sr_interrupt;
      pr_snapshot = r.Explorer.sr_snapshot }
  end
  else
    run_parallel ~jobs ?ctl t (fun _ st ->
        if pred st then `Stop else `Continue)

let reachable ?(jobs = 1) ?ctl t pred =
  let r = find_chain ~jobs ?ctl t pred in
  { Explorer.r_trace = Option.map (Explorer.describe_chain t) r.pr_chain;
    r_stats = r.pr_stats;
    r_interrupt = r.pr_interrupt }

let safe ?jobs ?ctl t pred =
  let r = reachable ?jobs ?ctl t pred in
  match r.Explorer.r_trace, r.Explorer.r_interrupt with
  | Some trace, _ -> (Explorer.Refuted (Some trace), r.Explorer.r_stats)
  | None, Some reason -> (Explorer.Unknown reason, r.Explorer.r_stats)
  | None, None -> (Explorer.Proved, r.Explorer.r_stats)

(* Per-worker running sup, merged by max at the end.  [Sup_exceeds]
   dominates; at equal values the non-strict bound wins (a [<= v] is a
   weaker claim than [< v], matching the sequential update order). *)
let merge_sup a b =
  match a, b with
  | Explorer.Sup_exceeds c, _ | _, Explorer.Sup_exceeds c ->
    Explorer.Sup_exceeds c
  | Explorer.Sup_unreached, x | x, Explorer.Sup_unreached -> x
  | Explorer.Sup (v1, s1), Explorer.Sup (v2, s2) ->
    if v1 > v2 then Explorer.Sup (v1, s1)
    else if v2 > v1 then Explorer.Sup (v2, s2)
    else Explorer.Sup (v1, s1 && s2)

let sup_clock ?(jobs = 1) ?ctl ?resume t ~pred ~clock =
  if jobs <= 1 then Explorer.sup_clock ?ctl ?resume t ~pred ~clock
  else begin
    let ci, ceiling = Explorer.monitor_clock_info t clock in
    let label = "sup:" ^ clock in
    (* validate before unmarshalling the payload: a mismatched snapshot
       must raise, not feed foreign bytes to [Marshal.from_string] *)
    (match resume with
     | Some snap -> Explorer.check_snapshot t ~label ~subsume:true snap
     | None -> ());
    let bests =
      Array.init jobs (fun i ->
          ref
            (match resume with
             | Some snap
               when i = 0 && Explorer.snapshot_payload snap <> "" ->
               (Marshal.from_string (Explorer.snapshot_payload snap) 0
                 : Explorer.sup_result)
             | Some _ | None -> Explorer.Sup_unreached))
    in
    let visit w (st : Explorer.state) =
      if pred st then begin
        let best = bests.(w) in
        let b = Zone.Dbm.sup_clock st.Explorer.st_zone ci in
        if Zone.Bound.is_infinite b then best := Explorer.Sup_exceeds ceiling
        else begin
          let v = Zone.Bound.constant b
          and strict = Zone.Bound.is_strict b in
          match !best with
          | Explorer.Sup_exceeds _ -> ()
          | Explorer.Sup_unreached -> best := Explorer.Sup (v, strict)
          | Explorer.Sup (v0, s0) ->
            if v > v0 || (v = v0 && s0 && not strict) then
              best := Explorer.Sup (v, strict)
        end
      end;
      `Continue
    in
    let merged () =
      Array.fold_left
        (fun acc best -> merge_sup acc !best)
        Explorer.Sup_unreached bests
    in
    (* max-delay-first: explore high monitor-clock suprema before low
       ones, so the running sup peaks early and the low-delay frontier
       gets pruned by subsumption instead of expanded *)
    let order (st : Explorer.state) =
      let b = Zone.Dbm.sup_clock st.Explorer.st_zone ci in
      if Zone.Bound.is_infinite b then max_int else Zone.Bound.constant b
    in
    let payload () = Marshal.to_string (merged ()) [] in
    let r =
      run_parallel ~jobs ?ctl ~order ?resume ~snapshot_label:label ~payload t
        visit
    in
    { Explorer.so_sup = merged ();
      so_stats = r.pr_stats;
      so_interrupt = r.pr_interrupt;
      so_snapshot = r.pr_snapshot }
  end

let timed_witness ?(jobs = 1) ?ctl t pred =
  let r = find_chain ~jobs ?ctl t pred in
  Option.bind r.pr_chain (Explorer.replay t)
