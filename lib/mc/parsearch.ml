(* Domain-parallel zone exploration.

   The sequential explorer's passed/waiting list becomes an array of
   mutex-guarded shards, keyed by the same discrete-state hash the
   sequential store uses (computed once per state and reused for both
   shard routing and in-shard probing).  Each worker domain owns a
   private DBM scratch pool; a successor that survives insertion hands
   its zone over to the store, where it is immutable from then on — so
   cross-domain reads of stored zones need no synchronisation beyond
   the shard mutex that published them.

   Work distribution: every shard carries its own FIFO of waiting
   entries; a worker starts popping at its home shard and steals by
   scanning the other shards round-robin.  Termination is a quiescence
   count: [pending] tracks queued entries plus in-flight expansions
   (incremented before an entry becomes visible in a queue, decremented
   only after its expansion pushed all successors), so [pending = 0]
   observed by an idle worker means the frontier is globally empty and
   no expansion can refill it.

   Determinism: verdicts and sup values match the sequential explorer
   because both run the same zone-graph closure to a fixpoint — every
   reachable zone ends up included in some stored zone that is itself
   reachable, so predicates over discrete states and suprema of clocks
   agree no matter the exploration order.  Visited/stored counts,
   witness choice and interrupted partial results are order-dependent
   and may differ. *)

open Ta

let num_shards = 64

(* A stored symbolic state.  The parent link doubles as the trace side
   table: witness chains are rebuilt by walking [p_parent], so no
   global id-indexed array (and no lock around it) is needed.
   [p_dead] is guarded by the owning shard's mutex. *)
type entry = {
  p_state : Explorer.state;
  p_parent : entry option;
  p_movers : (int * Compiled.cedge) list;
  mutable p_dead : bool;
}

type node = {
  n_hash : int;
  n_locs : int array;
  n_vars : int array;
  n_mon : int;
  mutable n_entries : entry list;
}

type shard = {
  s_lock : Mutex.t;
  s_nodes : (int, node list ref) Hashtbl.t;
  s_queue : entry Queue.t;
}

(* Why a search (or a worker) is winding down.  [Running] is an
   immediate constructor, so first-one-wins transitions use
   [compare_and_set stop Running _]. *)
type stop_state =
  | Running
  | Found of entry
  | Interrupted of Runctl.reason
  | Crashed of exn * string  (* exception + backtrace of the first crash *)

type par_result = {
  pr_chain : (int * Compiled.cedge) list list option;
  pr_stats : Explorer.stats;
  pr_interrupt : Runctl.reason option;
}

let chain_of entry =
  let rec walk acc e =
    match e.p_parent with
    | None -> acc
    | Some p -> walk (e.p_movers :: acc) p
  in
  walk [] entry

(* [visit] is called by the inserting worker with its worker index, so
   callers can fold into per-worker accumulators without locks. *)
let run_parallel ~jobs ?ctl t visit =
  let shards =
    Array.init num_shards (fun _ ->
        { s_lock = Mutex.create ();
          s_nodes = Hashtbl.create 256;
          s_queue = Queue.create () })
  in
  let pools = Array.init jobs (fun _ -> Explorer.fresh_pool t) in
  let pending = Atomic.make 0 in
  let visited = Atomic.make 0 in
  let stored = Atomic.make 0 in
  let stop = Atomic.make Running in
  let limit = Explorer.state_limit t in
  let running () = match Atomic.get stop with Running -> true | _ -> false in
  let interrupt r =
    ignore (Atomic.compare_and_set stop Running (Interrupted r))
  in
  let found e = ignore (Atomic.compare_and_set stop Running (Found e)) in
  let crashed exn bt =
    ignore (Atomic.compare_and_set stop Running (Crashed (exn, bt)))
  in
  (* Insert a successor into the shard owning its discrete state.
     Returns [Some entry] when stored; [None] when covered by an
     existing zone (the scratch zone then goes back to the inserting
     worker's pool).  The quiescence count is incremented inside the
     critical section, before the entry becomes poppable, so [pending]
     never under-counts the frontier. *)
  let insert pool parent movers (st : Explorer.state) =
    let h =
      Explorer.hash_discrete st.Explorer.st_locs st.Explorer.st_vars
        st.Explorer.st_mon
    in
    let sh = shards.(h land (num_shards - 1)) in
    Mutex.lock sh.s_lock;
    let bucket =
      match Hashtbl.find_opt sh.s_nodes h with
      | Some b -> b
      | None ->
        let b = ref [] in
        Hashtbl.replace sh.s_nodes h b;
        b
    in
    let node =
      let rec find = function
        | [] -> None
        | n :: rest ->
          if n.n_hash = h && n.n_mon = st.Explorer.st_mon
             && n.n_locs = st.Explorer.st_locs
             && n.n_vars = st.Explorer.st_vars
          then Some n
          else find rest
      in
      match find !bucket with
      | Some n -> n
      | None ->
        let n =
          { n_hash = h;
            n_locs = st.Explorer.st_locs;
            n_vars = st.Explorer.st_vars;
            n_mon = st.Explorer.st_mon;
            n_entries = [] }
        in
        bucket := n :: !bucket;
        n
    in
    let covered =
      List.exists
        (fun e -> Zone.Dbm.includes e.p_state.Explorer.st_zone st.Explorer.st_zone)
        node.n_entries
    in
    if covered then begin
      Mutex.unlock sh.s_lock;
      Zone.Dbm.Pool.release pool st.Explorer.st_zone;
      None
    end
    else begin
      (* in-shard subsumption: entries the newcomer covers leave the
         node now and are skipped in O(1) when they drain from a queue;
         their zones stay owned by the GC (stored zones never return to
         a pool — they may still be read by another domain) *)
      node.n_entries <-
        List.filter
          (fun e ->
            if Zone.Dbm.includes st.Explorer.st_zone e.p_state.Explorer.st_zone
            then begin
              e.p_dead <- true;
              false
            end
            else true)
          node.n_entries;
      let e = { p_state = st; p_parent = parent; p_movers = movers; p_dead = false } in
      node.n_entries <- e :: node.n_entries;
      Atomic.incr pending;
      Queue.push e sh.s_queue;
      Mutex.unlock sh.s_lock;
      Atomic.incr stored;
      Some e
    end
  in
  (* Pop the next live entry, scanning shards round-robin from the
     worker's home position (work stealing beyond the home shard).
     Dead entries drain here, releasing their quiescence token
     immediately. *)
  let take home =
    let rec scan i =
      if i >= num_shards then None
      else begin
        let sh = shards.((home + i) land (num_shards - 1)) in
        Mutex.lock sh.s_lock;
        let rec pop () =
          if Queue.is_empty sh.s_queue then None
          else
            let e = Queue.pop sh.s_queue in
            if e.p_dead then begin
              Atomic.decr pending;
              pop ()
            end
            else Some e
        in
        let r = pop () in
        Mutex.unlock sh.s_lock;
        match r with Some _ -> r | None -> scan (i + 1)
      end
    in
    scan 0
  in
  let expand w pool e =
    (* budget poll before expanding, mirroring the sequential loop; the
       visited counter is the shared authority, so the state limit cuts
       the whole fleet after exactly [limit] expansions *)
    let v = Atomic.fetch_and_add visited 1 in
    if v >= limit then begin
      Atomic.decr visited;
      interrupt (Runctl.State_budget limit)
    end
    else begin
      let vetoed =
        match ctl with
        | None -> None
        | Some c -> Runctl.check c ~visited:v
      in
      match vetoed with
      | Some r ->
        Atomic.decr visited;
        interrupt r
      | None ->
        let cds = Explorer.candidates t e.p_state in
        List.iter
          (fun cd ->
            if running () then
              match Explorer.fire t pool e.p_state cd with
              | None -> ()
              | Some st ->
                (match insert pool (Some e) (Explorer.movers cd) st with
                 | Some e' ->
                   (match visit w e'.p_state with
                    | `Stop -> found e'
                    | `Continue -> ())
                 | None -> ()))
          cds
    end
  in
  let worker w =
    let pool = pools.(w) in
    let home = w * num_shards / jobs in
    let rec loop () =
      if running () then begin
        match take home with
        | Some e ->
          expand w pool e;
          Atomic.decr pending;
          loop ()
        | None ->
          if Atomic.get pending = 0 then ()
          else begin
            Domain.cpu_relax ();
            loop ()
          end
      end
    in
    try loop () with exn -> crashed exn (Printexc.get_backtrace ())
  in
  (* seed the store from the calling domain (worker 0's pool; the
     initial zone is GC-owned, and the store is empty so it cannot be
     covered); a crash in the seed visit is supervised like any worker
     crash *)
  (try
     let initial = Explorer.initial_state t in
     if not (Zone.Dbm.is_empty initial.Explorer.st_zone) then begin
       match insert pools.(0) None [] initial with
       | Some e ->
         (match visit 0 e.p_state with `Stop -> found e | `Continue -> ())
       | None -> ()
     end
   with exn -> crashed exn (Printexc.get_backtrace ()));
  let domains =
    Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  worker 0;
  Array.iter Domain.join domains;
  let frontier =
    Array.fold_left
      (fun acc sh ->
        Queue.fold (fun n e -> if e.p_dead then n else n + 1) acc sh.s_queue)
      0 shards
  in
  let stats =
    { Explorer.visited = Atomic.get visited;
      stored = Atomic.get stored;
      frontier }
  in
  match Atomic.get stop with
  | Crashed (exn, bt) ->
    (* Supervision: the crashed worker is already isolated (its domain
       has exited; the others observed [stop] and wound down).  The
       search is downgraded to a diagnosed Unknown instead of killing
       the calling process — the diagnosis carries the backtrace when
       the runtime recorded one. *)
    let diag =
      let b = String.trim bt in
      if b = "" then Printexc.to_string exn
      else Printexc.to_string exn ^ "\n" ^ b
    in
    { pr_chain = None; pr_stats = stats; pr_interrupt = Some (Runctl.Crash diag) }
  | Found e ->
    { pr_chain = Some (chain_of e); pr_stats = stats; pr_interrupt = None }
  | Interrupted r ->
    { pr_chain = None; pr_stats = stats; pr_interrupt = Some r }
  | Running -> { pr_chain = None; pr_stats = stats; pr_interrupt = None }

(* --- queries ----------------------------------------------------------- *)

let find_chain ~jobs ?ctl t pred =
  if jobs <= 1 then begin
    let r =
      Explorer.search ?ctl ~label:"reachable" t (fun st ->
          if pred st then `Stop else `Continue)
    in
    { pr_chain = r.Explorer.sr_chain;
      pr_stats = r.Explorer.sr_stats;
      pr_interrupt = r.Explorer.sr_interrupt }
  end
  else
    run_parallel ~jobs ?ctl t (fun _ st ->
        if pred st then `Stop else `Continue)

let reachable ?(jobs = 1) ?ctl t pred =
  let r = find_chain ~jobs ?ctl t pred in
  { Explorer.r_trace = Option.map (Explorer.describe_chain t) r.pr_chain;
    r_stats = r.pr_stats;
    r_interrupt = r.pr_interrupt }

let safe ?jobs ?ctl t pred =
  let r = reachable ?jobs ?ctl t pred in
  match r.Explorer.r_trace, r.Explorer.r_interrupt with
  | Some trace, _ -> (Explorer.Refuted (Some trace), r.Explorer.r_stats)
  | None, Some reason -> (Explorer.Unknown reason, r.Explorer.r_stats)
  | None, None -> (Explorer.Proved, r.Explorer.r_stats)

(* Per-worker running sup, merged by max at the end.  [Sup_exceeds]
   dominates; at equal values the non-strict bound wins (a [<= v] is a
   weaker claim than [< v], matching the sequential update order). *)
let merge_sup a b =
  match a, b with
  | Explorer.Sup_exceeds c, _ | _, Explorer.Sup_exceeds c ->
    Explorer.Sup_exceeds c
  | Explorer.Sup_unreached, x | x, Explorer.Sup_unreached -> x
  | Explorer.Sup (v1, s1), Explorer.Sup (v2, s2) ->
    if v1 > v2 then Explorer.Sup (v1, s1)
    else if v2 > v1 then Explorer.Sup (v2, s2)
    else Explorer.Sup (v1, s1 && s2)

let sup_clock ?(jobs = 1) ?ctl t ~pred ~clock =
  if jobs <= 1 then Explorer.sup_clock ?ctl t ~pred ~clock
  else begin
    let ci, ceiling = Explorer.monitor_clock_info t clock in
    let bests = Array.init jobs (fun _ -> ref Explorer.Sup_unreached) in
    let visit w (st : Explorer.state) =
      if pred st then begin
        let best = bests.(w) in
        let b = Zone.Dbm.sup_clock st.Explorer.st_zone ci in
        if Zone.Bound.is_infinite b then best := Explorer.Sup_exceeds ceiling
        else begin
          let v = Zone.Bound.constant b
          and strict = Zone.Bound.is_strict b in
          match !best with
          | Explorer.Sup_exceeds _ -> ()
          | Explorer.Sup_unreached -> best := Explorer.Sup (v, strict)
          | Explorer.Sup (v0, s0) ->
            if v > v0 || (v = v0 && s0 && not strict) then
              best := Explorer.Sup (v, strict)
        end
      end;
      `Continue
    in
    let r = run_parallel ~jobs ?ctl t visit in
    let sup =
      Array.fold_left
        (fun acc best -> merge_sup acc !best)
        Explorer.Sup_unreached bests
    in
    { Explorer.so_sup = sup;
      so_stats = r.pr_stats;
      so_interrupt = r.pr_interrupt;
      so_snapshot = None }
  end

let timed_witness ?(jobs = 1) ?ctl t pred =
  let r = find_chain ~jobs ?ctl t pred in
  Option.bind r.pr_chain (Explorer.replay t)
