open Ta

type t = {
  comp : Compiled.t;
  monitor : Monitor.t;
  mon_clock_index : (string * int) list;  (* monitor clock name -> DBM index *)
  mon_ceiling : (string * int) list;
  k : int array;  (* ExtraM constants, per DBM clock index *)
  lconsts : int array;  (* ExtraLU lower constants *)
  uconsts : int array;  (* ExtraLU upper constants *)
  use_lu : bool;
  limit : int;
  reduce : bool;
  (* per automaton, per location: tau edges, and send/receive edges
     indexed by channel -- precomputed so candidate enumeration is a
     table lookup *)
  taus : Compiled.cedge array array array;
  sends : Compiled.cedge array array array array;
  recvs : Compiled.cedge array array array array;
  (* per monitor state: DBM indices of the monitor clocks inactive there
     (freed after every fire) -- precomputed so the hot path neither
     calls [mon_active] nor searches association lists *)
  mon_free : int list array;
  (* per channel, per monitor state: the monitor step on that channel,
     with reset clocks already resolved to DBM indices *)
  mon_step : (int * int list) option array array;
}

type state = {
  st_locs : int array;
  st_vars : int array;
  st_mon : int;
  st_zone : Zone.Dbm.t;
}

type stats = {
  visited : int;
  stored : int;
  frontier : int;
}

type verdict =
  | Proved
  | Refuted of string list option
  | Unknown of Runctl.reason

let pp_verdict ppf = function
  | Proved -> Fmt.string ppf "proved"
  | Refuted None -> Fmt.string ppf "REFUTED"
  | Refuted (Some trace) ->
    Fmt.pf ppf "REFUTED (counterexample of %d steps)" (List.length trace)
  | Unknown reason -> Fmt.pf ppf "unknown: %a" Runctl.pp_reason reason

let default_limit = 2_000_000

let make ?(monitor = Monitor.trivial) ?tight ?(limit = default_limit)
    ?(reduce = true) ?(lu = false) net =
  let mon_clocks = List.map fst monitor.Monitor.mon_clocks in
  let comp =
    Compiled.compile ~extra_clocks:mon_clocks
      ~clock_ceilings:monitor.Monitor.mon_clocks net
  in
  let tight = match tight with Some b -> b | None -> false in
  let k = Array.copy comp.Compiled.c_max_consts in
  let lconsts = Array.copy comp.Compiled.c_lower_consts in
  let uconsts = Array.copy comp.Compiled.c_upper_consts in
  if tight then begin
    let hi = Array.fold_left max 0 k in
    for i = 1 to Array.length k - 1 do
      k.(i) <- hi;
      lconsts.(i) <- hi;
      uconsts.(i) <- hi
    done
  end;
  let mon_clock_index =
    List.map (fun c -> (c, Compiled.clock_index comp c)) mon_clocks
  in
  let nchans = Array.length comp.Compiled.c_chan_names in
  let table select =
    Array.map
      (fun a ->
        Array.map
          (fun edges ->
            let by_chan = Array.make nchans [] in
            (* cons-accumulate (edges are in declaration order, so reverse
               once per channel), then freeze as arrays *)
            List.iter
              (fun ce ->
                match select ce.Compiled.ce_sync with
                | Some ch -> by_chan.(ch) <- ce :: by_chan.(ch)
                | None -> ())
              edges;
            Array.map (fun l -> Array.of_list (List.rev l)) by_chan)
          a.Compiled.ca_out)
      comp.Compiled.c_automata
  in
  let taus =
    Array.map
      (fun a ->
        Array.map
          (fun edges ->
            Array.of_list
              (List.filter
                 (fun ce -> ce.Compiled.ce_sync = Compiled.CTau)
                 edges))
          a.Compiled.ca_out)
      comp.Compiled.c_automata
  in
  let sends =
    table (function Compiled.CSend ch -> Some ch | _ -> None)
  in
  let recvs =
    table (function Compiled.CRecv ch -> Some ch | _ -> None)
  in
  let nmonstates = Array.length monitor.Monitor.mon_states in
  let mon_free =
    Array.init nmonstates (fun s ->
        let active = monitor.Monitor.mon_active s in
        List.filter_map
          (fun (name, i) ->
            if List.mem name active then None else Some i)
          mon_clock_index)
  in
  let mon_step =
    Array.init nchans (fun ch ->
        let chan = comp.Compiled.c_chan_names.(ch) in
        Array.init nmonstates (fun s ->
            match Monitor.step monitor s chan with
            | Some (dst, resets) ->
              Some
                (dst,
                 List.map (fun c -> List.assoc c mon_clock_index) resets)
            | None -> None))
  in
  { comp;
    monitor;
    mon_clock_index;
    mon_ceiling = monitor.Monitor.mon_clocks;
    k;
    lconsts;
    uconsts;
    use_lu = lu;
    limit;
    reduce;
    taus;
    sends;
    recvs;
    mon_free;
    mon_step }

let compiled t = t.comp

let state_limit t = t.limit

let fresh_pool t = Zone.Dbm.Pool.create (t.comp.Compiled.c_nclocks + 1)

(* DBM index and exact-reporting ceiling of a (typically monitor) clock,
   as used by sup queries.  Shared with the parallel explorer so both
   resolve clock names identically. *)
let monitor_clock_info t clock =
  let ci =
    match List.assoc_opt clock t.mon_clock_index with
    | Some i -> i
    | None -> Compiled.clock_index t.comp clock
  in
  let ceiling =
    match List.assoc_opt clock t.mon_ceiling with
    | Some c -> c
    | None -> t.k.(ci)
  in
  (ci, ceiling)

let at t ~aut ~loc =
  let ai, li = Compiled.loc_index t.comp ~aut loc in
  fun st -> st.st_locs.(ai) = li

let var_value t name =
  let vi = Compiled.var_index t.comp name in
  fun st -> st.st_vars.(vi)

let mon_in t name =
  let si = Monitor.state_index t.monitor name in
  fun st -> st.st_mon = si

(* --- zone plumbing --------------------------------------------------- *)

let bound_of_dc (dc : Compiled.dconstraint) =
  if dc.Compiled.dc_strict then Zone.Bound.lt dc.Compiled.dc_bound
  else Zone.Bound.le dc.Compiled.dc_bound

let apply_dconstraints z dcs =
  List.iter
    (fun (dc : Compiled.dconstraint) ->
      Zone.Dbm.constrain z dc.Compiled.dc_i dc.Compiled.dc_j (bound_of_dc dc))
    dcs

let apply_invariants t locs z =
  Array.iteri
    (fun ai li ->
      apply_dconstraints z t.comp.Compiled.c_automata.(ai).Compiled.ca_locs.(li).Compiled.cl_inv)
    locs

let loc_kind t ai li =
  t.comp.Compiled.c_automata.(ai).Compiled.ca_locs.(li).Compiled.cl_kind

let committed_present t locs =
  let n = Array.length locs in
  let rec loop ai =
    ai < n
    && (loc_kind t ai locs.(ai) = Model.Committed || loop (ai + 1))
  in
  loop 0

let no_delay_present t locs =
  let n = Array.length locs in
  let rec loop ai =
    ai < n
    && ((match loc_kind t ai locs.(ai) with
         | Model.Urgent | Model.Committed -> true
         | Model.Normal -> false)
        || loop (ai + 1))
  in
  loop 0

(* Clocks the monitor declares inactive carry no information; freeing them
   merges zones that differ only in their value. *)
let free_inactive_monitor_clocks t mon_state z =
  List.iter (Zone.Dbm.free z) t.mon_free.(mon_state)

(* Activity reduction: free the clocks that are dead at an automaton's
   current location (see Compiled.cl_free). *)
let free_inactive_automaton_clocks t ai li z =
  if t.reduce then
    List.iter (Zone.Dbm.free z)
      t.comp.Compiled.c_automata.(ai).Compiled.ca_locs.(li).Compiled.cl_free

(* --- transition firing ------------------------------------------------ *)

(* A candidate discrete transition: the moving edges in update order
   (sender first), plus the synchronising channel (by index) if any. *)
type candidate = {
  cd_movers : (int * Compiled.cedge) list;
  cd_chan : int option;
}

let describe t cd =
  let heads =
    List.map (fun (_, ce) -> Compiled.describe_edge t.comp ce) cd.cd_movers
  in
  String.concat " | " heads

let movers cd = cd.cd_movers

let candidate ~movers ~chan = { cd_movers = movers; cd_chan = chan }

let candidate_chan cd = cd.cd_chan

(* [fire t pool st cd] applies candidate [cd] to [st].  The successor
   zone is taken from [pool]; candidates whose guard (or target
   invariant) empties the zone return their scratch matrix to the pool
   instead of leaving it to the GC -- in a typical exploration most
   candidates die here, so this removes the dominant allocation. *)
let fire t pool st cd =
  let z = Zone.Dbm.Pool.copy pool st.st_zone in
  let dead () =
    Zone.Dbm.Pool.release pool z;
    None
  in
  List.iter (fun (_, ce) -> apply_dconstraints z ce.Compiled.ce_guard)
    cd.cd_movers;
  if Zone.Dbm.is_empty z then dead ()
  else begin
    let locs' = Array.copy st.st_locs in
    List.iter (fun (ai, ce) -> locs'.(ai) <- ce.Compiled.ce_dst) cd.cd_movers;
    let vars' =
      (* [apply_updates] copies the valuation; share the parent's array
         for the common case of update-free movers *)
      List.fold_left
        (fun vals (_, ce) ->
          if ce.Compiled.ce_updates = [] then vals
          else Compiled.apply_updates t.comp vals ce.Compiled.ce_updates)
        st.st_vars cd.cd_movers
    in
    let mon', mon_resets =
      match cd.cd_chan with
      | None -> (st.st_mon, [])
      | Some ch ->
        (match t.mon_step.(ch).(st.st_mon) with
         | Some (dst, resets) -> (dst, resets)
         | None -> (st.st_mon, []))
    in
    List.iter
      (fun (_, ce) -> List.iter (Zone.Dbm.reset z) ce.Compiled.ce_resets)
      cd.cd_movers;
    List.iter (Zone.Dbm.reset z) mon_resets;
    free_inactive_monitor_clocks t mon' z;
    List.iter
      (fun (ai, ce) ->
        free_inactive_automaton_clocks t ai ce.Compiled.ce_dst z)
      cd.cd_movers;
    apply_invariants t locs' z;
    if Zone.Dbm.is_empty z then dead ()
    else begin
      if not (no_delay_present t locs') then begin
        Zone.Dbm.up z;
        apply_invariants t locs' z
      end;
      if t.use_lu then Zone.Dbm.extrapolate_lu z t.lconsts t.uconsts
      else Zone.Dbm.extrapolate z t.k;
      if Zone.Dbm.is_empty z then dead ()
      else Some { st_locs = locs'; st_vars = vars'; st_mon = mon'; st_zone = z }
    end
  end

(* [fire_pre] is [fire] with the successor zone additionally exposed as it
   stood just {e before} extrapolation.  Everything up to that point —
   guards, updates, monitor step, resets, activity reduction, invariants,
   delay closure — depends only on the model structure, never on the
   extrapolation constants, so a recorded pre-extrapolation zone stays
   valid across edits that merely move a maximal constant; the delta
   explorer re-applies the {e current} extrapolation at replay time.
   Emptiness is decided before extrapolation (widening cannot empty a
   non-empty canonical zone), so [Fired_dead] is extrapolation-independent
   too. *)
type fired =
  | Fired_dead
  | Fired_live of {
      fl_state : state option;
      fl_locs : int array;
      fl_vars : int array;
      fl_mon : int;
      fl_pre : int array;
    }

let fire_pre t pool st cd =
  let z = Zone.Dbm.Pool.copy pool st.st_zone in
  let dead () =
    Zone.Dbm.Pool.release pool z;
    Fired_dead
  in
  List.iter (fun (_, ce) -> apply_dconstraints z ce.Compiled.ce_guard)
    cd.cd_movers;
  if Zone.Dbm.is_empty z then dead ()
  else begin
    let locs' = Array.copy st.st_locs in
    List.iter (fun (ai, ce) -> locs'.(ai) <- ce.Compiled.ce_dst) cd.cd_movers;
    let vars' =
      List.fold_left
        (fun vals (_, ce) ->
          if ce.Compiled.ce_updates = [] then vals
          else Compiled.apply_updates t.comp vals ce.Compiled.ce_updates)
        st.st_vars cd.cd_movers
    in
    let mon', mon_resets =
      match cd.cd_chan with
      | None -> (st.st_mon, [])
      | Some ch ->
        (match t.mon_step.(ch).(st.st_mon) with
         | Some (dst, resets) -> (dst, resets)
         | None -> (st.st_mon, []))
    in
    List.iter
      (fun (_, ce) -> List.iter (Zone.Dbm.reset z) ce.Compiled.ce_resets)
      cd.cd_movers;
    List.iter (Zone.Dbm.reset z) mon_resets;
    free_inactive_monitor_clocks t mon' z;
    List.iter
      (fun (ai, ce) ->
        free_inactive_automaton_clocks t ai ce.Compiled.ce_dst z)
      cd.cd_movers;
    apply_invariants t locs' z;
    if Zone.Dbm.is_empty z then dead ()
    else begin
      if not (no_delay_present t locs') then begin
        Zone.Dbm.up z;
        apply_invariants t locs' z
      end;
      let fl_pre = Zone.Dbm.to_ints z in
      if t.use_lu then Zone.Dbm.extrapolate_lu z t.lconsts t.uconsts
      else Zone.Dbm.extrapolate z t.k;
      let fl_state =
        if Zone.Dbm.is_empty z then begin
          Zone.Dbm.Pool.release pool z;
          None
        end
        else
          Some { st_locs = locs'; st_vars = vars'; st_mon = mon'; st_zone = z }
      in
      Fired_live
        { fl_state; fl_locs = locs'; fl_vars = vars'; fl_mon = mon'; fl_pre }
    end
  end

(* Replay counterpart of [fire_pre]: rebuild a recorded successor from its
   pre-extrapolation zone and finish with {e this} explorer's
   extrapolation, so the state comes out exactly as [fire] on the current
   model would produce it. *)
let admit_pre t ~locs ~vars ~mon ~pre =
  let dim = t.comp.Compiled.c_nclocks + 1 in
  let z = Zone.Dbm.of_ints ~dim pre in
  if t.use_lu then Zone.Dbm.extrapolate_lu z t.lconsts t.uconsts
  else Zone.Dbm.extrapolate z t.k;
  if Zone.Dbm.is_empty z then None
  else Some { st_locs = locs; st_vars = vars; st_mon = mon; st_zone = z }

(* [admit_post] rebuilds a successor from its recorded post-extrapolation
   zone verbatim — no extrapolation, no re-canonicalisation.  Sound only
   when this explorer extrapolates exactly like the recording one
   ({!same_extrapolation}): the recorded encoding then already is what
   [admit_pre] would recompute from the pre zone.  A zero-length [post]
   records a successor that extrapolation emptied. *)
let admit_post t ~locs ~vars ~mon ~post =
  if Array.length post = 0 then None
  else
    let dim = t.comp.Compiled.c_nclocks + 1 in
    Some
      { st_locs = locs; st_vars = vars; st_mon = mon;
        st_zone = Zone.Dbm.of_ints ~dim post }

let same_extrapolation a b =
  a.use_lu = b.use_lu && a.k = b.k && a.lconsts = b.lconsts
  && a.uconsts = b.uconsts

(* --- transition enumeration ------------------------------------------ *)

(* Combos in lexicographic order (leftmost list most significant), built
   by consing onto the suffix combos -- no list appends. *)
let cartesian choice_lists =
  List.fold_right
    (fun choices acc ->
      List.concat_map (fun c -> List.map (fun rest -> c :: rest) acc) choices)
    choice_lists
    [ [] ]

let candidates t st =
  let comp = t.comp in
  let nauts = Array.length comp.Compiled.c_automata in
  let com = committed_present t st.st_locs in
  let allowed movers =
    (not com)
    || List.exists
         (fun (ai, ce) -> loc_kind t ai ce.Compiled.ce_src = Model.Committed)
         movers
  in
  let acc = ref [] in
  let add movers chan =
    let cd = { cd_movers = movers; cd_chan = chan } in
    if allowed movers then acc := cd :: !acc
  in
  let enabled ce = ce.Compiled.ce_pred st.st_vars in
  (* internal moves *)
  for ai = 0 to nauts - 1 do
    Array.iter
      (fun ce -> if enabled ce then add [ (ai, ce) ] None)
      t.taus.(ai).(st.st_locs.(ai))
  done;
  (* synchronisations, per channel *)
  let nchans = Array.length comp.Compiled.c_chan_kinds in
  for ch = 0 to nchans - 1 do
    let senders = ref [] in
    for ai = nauts - 1 downto 0 do
      Array.iter
        (fun ce -> if enabled ce then senders := (ai, ce) :: !senders)
        t.sends.(ai).(st.st_locs.(ai)).(ch)
    done;
    if !senders <> [] then begin
      match comp.Compiled.c_chan_kinds.(ch) with
      | Model.Binary ->
        let receivers = ref [] in
        for ai = nauts - 1 downto 0 do
          Array.iter
            (fun ce -> if enabled ce then receivers := (ai, ce) :: !receivers)
            t.recvs.(ai).(st.st_locs.(ai)).(ch)
        done;
        List.iter
          (fun (sa, se) ->
            List.iter
              (fun (ra, re) ->
                if sa <> ra then add [ (sa, se); (ra, re) ] (Some ch))
              !receivers)
          !senders
      | Model.Broadcast ->
        let recv_choices sa =
          let per_aut = ref [] in
          for ai = nauts - 1 downto 0 do
            if ai <> sa then begin
              let edges =
                Array.fold_right
                  (fun ce acc -> if enabled ce then (ai, ce) :: acc else acc)
                  t.recvs.(ai).(st.st_locs.(ai)).(ch)
                  []
              in
              if edges <> [] then per_aut := edges :: !per_aut
            end
          done;
          !per_aut
        in
        List.iter
          (fun (sa, se) ->
            let combos = cartesian (recv_choices sa) in
            List.iter
              (fun receivers -> add ((sa, se) :: receivers) (Some ch))
              combos)
          !senders
    end
  done;
  List.rev !acc

(* --- passed/waiting store ---------------------------------------------- *)

(* A stored symbolic state.  Trace information (parent id, movers) lives
   in a side table indexed by id, so a dead entry pins no zone and no
   trace data once it has drained from the queue. *)
type entry = {
  e_id : int;
  e_state : state;
  e_zhash : int;  (* Dbm.hash of the zone; used only when not subsuming *)
  e_sum : int;  (* Dbm.weight of the zone; used only when subsuming *)
  mutable e_dead : bool;
}

(* One discrete state (locs, vars, mon) of the passed/waiting list, with
   its live zones.  Nodes hang off a hash-keyed table; the hash is
   computed once per state and cached in the node ([pw_hash]), so
   subsumption probes compare a machine integer before touching the
   discrete vectors, and a parallel store can route on the same hash
   without recomputing it.  Collisions are resolved by structural
   comparison here. *)
type pw_node = {
  pw_hash : int;
  pw_locs : int array;
  pw_vars : int array;
  pw_mon : int;
  mutable pw_entries : entry list;
}

type progress = {
  pr_visited : int;
  pr_stored : int;
  pr_queue : int;
}

(* Single stats hook for progress output.  [PSV_MC_PROGRESS] is consulted
   once, not per state; [set_progress_hook] overrides the default
   stderr printer. *)
let progress_hook : (progress -> unit) option ref = ref None

let set_progress_hook h = progress_hook := h

let env_progress =
  lazy
    (if Sys.getenv_opt "PSV_MC_PROGRESS" <> None then
       Some
         (fun p ->
           Printf.eprintf "[mc] visited %d stored %d queue %d\n%!" p.pr_visited
             p.pr_stored p.pr_queue)
     else None)

let hash_discrete locs vars mon =
  let h = ref (mon + 0x9e3779b9) in
  Array.iter (fun v -> h := (!h lxor v) * 0x01000193) locs;
  Array.iter (fun v -> h := (!h lxor v) * 0x01000193) vars;
  !h land max_int

let initial_state t =
  let comp = t.comp in
  let locs =
    Array.map (fun a -> a.Compiled.ca_initial) comp.Compiled.c_automata
  in
  let vars = Array.copy comp.Compiled.c_var_init in
  let z = Zone.Dbm.zero (comp.Compiled.c_nclocks + 1) in
  free_inactive_monitor_clocks t t.monitor.Monitor.mon_initial z;
  Array.iteri (fun ai li -> free_inactive_automaton_clocks t ai li z) locs;
  apply_invariants t locs z;
  if not (no_delay_present t locs) then begin
    Zone.Dbm.up z;
    apply_invariants t locs z
  end;
  if t.use_lu then Zone.Dbm.extrapolate_lu z t.lconsts t.uconsts
  else Zone.Dbm.extrapolate z t.k;
  { st_locs = locs; st_vars = vars; st_mon = t.monitor.Monitor.mon_initial;
    st_zone = z }

(* --- snapshots --------------------------------------------------------- *)

(* A stored state flattened for serialization: raw discrete vectors plus
   the zone's encoded bound matrix. *)
type snap_entry = {
  se_id : int;
  se_locs : int array;
  se_vars : int array;
  se_mon : int;
  se_zone : int array;
}

type snapshot = {
  snap_fingerprint : Store.D128.t;
  snap_label : string;  (* which query took it; resume must match *)
  snap_dim : int;
  snap_subsume : bool;
  snap_next_id : int;
  snap_visited : int;
  snap_stored : int;
  snap_entries : snap_entry list;  (* every live passed/waiting state *)
  snap_queue : int array;          (* waiting entry ids, FIFO order *)
  snap_trace : (int * (int * int) list) array;
      (* per id: parent, movers as (automaton, edge-index) pairs *)
  snap_payload : string;           (* query accumulator, caller-defined *)
}

(* Format version lives in the magic string: bump the digit whenever the
   [snapshot] record layout or the fingerprint scheme changes, so stale
   files are rejected by the magic check instead of a Marshal
   segfault. *)
let snapshot_magic = "PSVSNAP2"

(* Structural digest of everything that shapes the exploration: a
   snapshot resumes correctly only against a byte-equivalent search
   space.  The model contribution is a digest of the source network's
   canonical [Xta.Print] text ({!Store.Key.network_digest}), which —
   unlike the pre-PSVSNAP2 structural walk — covers guards, invariants
   and updates, not just the automaton skeleton.  The monitor step table
   is included, so two delay monitors over different trigger/response
   pairs fingerprint differently even though their automata are
   isomorphic. *)
let fingerprint t =
  let st = Store.D128.builder () in
  let net_d = Store.Key.network_digest t.comp.Compiled.c_model in
  Store.D128.add_int64 st net_d.Store.D128.hi;
  Store.D128.add_int64 st net_d.Store.D128.lo;
  Store.D128.add_int_array st t.k;
  Store.D128.add_int_array st t.lconsts;
  Store.D128.add_int_array st t.uconsts;
  Store.D128.add_bool st t.use_lu;
  Store.D128.add_bool st t.reduce;
  Store.D128.add_int st (Array.length t.monitor.Monitor.mon_states);
  Store.D128.add_int st t.monitor.Monitor.mon_initial;
  Store.D128.add_int st (List.length t.mon_ceiling);
  List.iter
    (fun (c, ceiling) ->
      Store.D128.add_string st c;
      Store.D128.add_int st ceiling)
    t.mon_ceiling;
  Array.iter
    (fun row ->
      Store.D128.add_int st (Array.length row);
      Array.iter
        (function
          | None -> Store.D128.add_int st (-1)
          | Some (dst, resets) ->
            Store.D128.add_int st dst;
            Store.D128.add_int st (List.length resets);
            List.iter (Store.D128.add_int st) resets)
        row)
    t.mon_step;
  Store.D128.value st

let save_snapshot path snap =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc snapshot_magic;
      Marshal.to_channel oc (snap : snapshot) [];
      flush oc)

let load_snapshot path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let magic = really_input_string ic (String.length snapshot_magic) in
        if magic = snapshot_magic then
          Ok (Marshal.from_channel ic : snapshot)
        else if String.length magic >= 7 && String.sub magic 0 7 = "PSVSNAP"
        then
          Error
            (Printf.sprintf
               "snapshot version %s is not readable by this build (wants %s); \
                re-run the query without --resume to regenerate it"
               magic snapshot_magic)
        else Error "not a psv snapshot")
  with
  | Sys_error msg -> Error msg
  | End_of_file -> Error "truncated snapshot"
  | Failure msg -> Error ("corrupt snapshot: " ^ msg)

(* Shared resume guard: a snapshot replays correctly only into the same
   search space (fingerprint), the same query kind (label), the same
   dedup mode and the same zone dimension.  Used by the sequential
   [search] below and by the parallel store restore (Parsearch). *)
let check_snapshot t ~label ~subsume snap =
  if not (Store.D128.equal snap.snap_fingerprint (fingerprint t)) then
    invalid_arg
      "Explorer: snapshot does not match this model/monitor/configuration";
  if snap.snap_label <> label then
    invalid_arg "Explorer: snapshot was taken by a different kind of query";
  if snap.snap_subsume <> subsume then
    invalid_arg "Explorer: snapshot subsumption mode differs";
  if snap.snap_dim <> t.comp.Compiled.c_nclocks + 1 then
    invalid_arg "Explorer: snapshot zone dimension differs"

(* Accessors and a builder for foreign stores (the sharded parallel one)
   that restore from and serialize to the same PSVSNAP2 format, so a
   checkpoint taken at any [--jobs] resumes at any other. *)
let snapshot_next_id s = s.snap_next_id
let snapshot_visited s = s.snap_visited
let snapshot_stored s = s.snap_stored
let snapshot_entries s = s.snap_entries
let snapshot_queue s = s.snap_queue
let snapshot_trace s = s.snap_trace
let snapshot_payload s = s.snap_payload

let make_snapshot t ~label ~subsume ~next_id ~visited ~stored ~entries ~queue
    ~trace ~payload =
  { snap_fingerprint = fingerprint t;
    snap_label = label;
    snap_dim = t.comp.Compiled.c_nclocks + 1;
    snap_subsume = subsume;
    snap_next_id = next_id;
    snap_visited = visited;
    snap_stored = stored;
    snap_entries = entries;
    snap_queue = queue;
    snap_trace = trace;
    snap_payload = payload }

(* --- search ------------------------------------------------------------ *)

type search_result = {
  sr_chain : (int * Compiled.cedge) list list option;
  sr_stats : stats;
  sr_interrupt : Runctl.reason option;
  sr_snapshot : snapshot option;
}

(* Generic search: calls [visit] on every stored state (including the
   initial one); stops early when [visit] returns [`Stop].  [on_expanded]
   is called after a state's successors have been generated, with the
   number of (non-empty) successors -- used by the timelock detector.

   Budgets ([ctl] and the explorer's state limit) are polled at the top
   of the loop, before popping, so an interrupted search leaves the
   waiting queue intact: the snapshot then restarts exactly where the
   uninterrupted run would have continued.  [label] names the query kind
   and must match on resume; [payload] is called at snapshot time to
   save the caller's accumulator (e.g. the running sup). *)
let search ?(on_expanded = fun _ _ -> `Continue) ?(on_transition = fun _ -> ())
    ?(subsume = true) ?expand ?ctl ?resume ?(label = "")
    ?(payload = fun () -> "") t visit =
  let pool = fresh_pool t in
  let store : (int, pw_node list ref) Hashtbl.t = Hashtbl.create 4096 in
  (* trace side table: (parent, movers) per stored id, for witness
     reconstruction; grows geometrically *)
  let trace = ref (Array.make 1024 (-1, [])) in
  let record_trace id parent movers =
    let cap = Array.length !trace in
    if id >= cap then begin
      let bigger = Array.make (2 * cap) (-1, []) in
      Array.blit !trace 0 bigger 0 cap;
      trace := bigger
    end;
    !trace.(id) <- (parent, movers)
  in
  let next_id = ref 0 in
  let stored = ref 0 in
  let visited = ref 0 in
  let waiting : entry Queue.t = Queue.create () in
  (* the entry currently being expanded: its zone must not go back to the
     pool even if a successor subsumes it, because the remaining
     candidates of this expansion still read it *)
  let expanding = ref (-1) in
  let progress =
    match !progress_hook with Some h -> Some h | None -> Lazy.force env_progress
  in
  let find_node bucket h st =
    let rec go = function
      | [] -> None
      | (n : pw_node) :: rest ->
        if n.pw_hash = h && n.pw_mon = st.st_mon && n.pw_locs = st.st_locs
           && n.pw_vars = st.st_vars
        then Some n
        else go rest
    in
    go !bucket
  in
  let node_for st =
    let h = hash_discrete st.st_locs st.st_vars st.st_mon in
    let bucket =
      match Hashtbl.find_opt store h with
      | Some b -> b
      | None ->
        let b = ref [] in
        Hashtbl.replace store h b;
        b
    in
    match find_node bucket h st with
    | Some n -> n
    | None ->
      let n =
        { pw_hash = h; pw_locs = st.st_locs; pw_vars = st.st_vars;
          pw_mon = st.st_mon; pw_entries = [] }
      in
      bucket := n :: !bucket;
      n
  in
  (* The per-entry weight ({!Zone.Dbm.weight}, a scalar dominance
     measure) prefilters both subsumption scans: an entry can cover the
     newcomer only when at least as heavy, and be covered by it only
     when no heavier — so most probes are an integer compare instead of
     an O(dim^2) inclusion walk.  Scan {e decisions} are unchanged
     (covered is an existence check, pruning removes a set). *)
  let add_state parent movers st =
    let node = node_for st in
    let zhash = if subsume then 0 else Zone.Dbm.hash st.st_zone in
    let w = if subsume then Zone.Dbm.weight st.st_zone else 0 in
    let covered e =
      if subsume then
        e.e_sum >= w && Zone.Dbm.includes e.e_state.st_zone st.st_zone
      else e.e_zhash = zhash && Zone.Dbm.equal e.e_state.st_zone st.st_zone
    in
    if List.exists covered node.pw_entries then begin
      Zone.Dbm.Pool.release pool st.st_zone;
      None
    end
    else begin
      if subsume then begin
        (* in-place subsumption: entries covered by the newcomer leave
           the PW node now (dead ones drain from the queue in O(1) on
           pop) and their zones return to the scratch pool.  [prune]
           returns the input list physically unchanged when nothing is
           subsumed -- the common case -- so steady-state inserts do not
           reallocate the (often long) entry list *)
        let rec prune l =
          match l with
          | [] -> l
          | e :: rest ->
            if
              e.e_sum <= w
              && Zone.Dbm.includes st.st_zone e.e_state.st_zone
            then begin
              e.e_dead <- true;
              if e.e_id <> !expanding then
                Zone.Dbm.Pool.release pool e.e_state.st_zone;
              prune rest
            end
            else
              let rest' = prune rest in
              if rest' == rest then l else e :: rest'
        in
        node.pw_entries <- prune node.pw_entries
      end;
      let id = !next_id in
      incr next_id;
      incr stored;
      record_trace id parent movers;
      let e =
        { e_id = id; e_state = st; e_zhash = zhash; e_sum = w; e_dead = false }
      in
      node.pw_entries <- e :: node.pw_entries;
      Queue.push e waiting;
      Some e
    end
  in
  let stopped = ref None in
  let consider entry =
    match visit entry.e_state with
    | `Stop -> stopped := Some entry
    | `Continue -> ()
  in
  (* edge lookup by (automaton, declaration index), for rebuilding the
     trace table of a snapshot; forced only on resume *)
  let edge_by_index =
    lazy
      (Array.map
         (fun a ->
           let tbl = Hashtbl.create 64 in
           Array.iter
             (List.iter (fun ce ->
                  Hashtbl.replace tbl ce.Compiled.ce_index ce))
             a.Compiled.ca_out;
           tbl)
         t.comp.Compiled.c_automata)
  in
  (match resume with
   | None ->
     let initial = initial_state t in
     if not (Zone.Dbm.is_empty initial.st_zone) then begin
       match add_state (-1) [] initial with
       | Some e -> consider e
       | None -> ()
     end
   | Some snap ->
     check_snapshot t ~label ~subsume snap;
     next_id := snap.snap_next_id;
     visited := snap.snap_visited;
     stored := snap.snap_stored;
     let cap = ref (Array.length !trace) in
     while !cap < snap.snap_next_id do
       cap := 2 * !cap
     done;
     trace := Array.make !cap (-1, []);
     let edges = Lazy.force edge_by_index in
     Array.iteri
       (fun id (parent, movers) ->
         !trace.(id) <-
           ( parent,
             List.map (fun (ai, idx) -> (ai, Hashtbl.find edges.(ai) idx))
               movers ))
       snap.snap_trace;
     let by_id = Hashtbl.create 4096 in
     (* entries were saved in reverse bucket order, so consing here
        rebuilds each PW node's list bit-identically to the moment the
        snapshot was taken *)
     List.iter
       (fun se ->
         let st =
           { st_locs = se.se_locs; st_vars = se.se_vars; st_mon = se.se_mon;
             st_zone = Zone.Dbm.of_ints ~dim:snap.snap_dim se.se_zone }
         in
         let zhash = if subsume then 0 else Zone.Dbm.hash st.st_zone in
         let w = if subsume then Zone.Dbm.weight st.st_zone else 0 in
         let e =
           { e_id = se.se_id; e_state = st; e_zhash = zhash; e_sum = w;
             e_dead = false }
         in
         Hashtbl.replace by_id se.se_id e;
         let node = node_for st in
         node.pw_entries <- e :: node.pw_entries)
       snap.snap_entries;
     (* the visit callback is NOT replayed for restored states: they were
        considered when first stored, and the caller's accumulator comes
        back through [snap_payload] *)
     Array.iter
       (fun id -> Queue.push (Hashtbl.find by_id id) waiting)
       snap.snap_queue);
  let interrupt = ref None in
  let poll () =
    if !visited >= t.limit then interrupt := Some (Runctl.State_budget t.limit)
    else
      match ctl with
      | None -> ()
      | Some c ->
        (match Runctl.check c ~visited:!visited with
         | Some r -> interrupt := Some r
         | None -> ())
  in
  while !stopped = None && !interrupt = None && not (Queue.is_empty waiting) do
    poll ();
    if !interrupt = None then begin
    let e = Queue.pop waiting in
    if not e.e_dead then begin
      incr visited;
      (match progress with
       | Some hook when !visited mod 1_000 = 0 ->
         hook
           { pr_visited = !visited; pr_stored = !stored;
             pr_queue = Queue.length waiting }
       | Some _ | None -> ());
      expanding := e.e_id;
      let successors = ref 0 in
      let handle cd st =
        incr successors;
        on_transition cd;
        match add_state e.e_id cd.cd_movers st with
        | Some e' -> consider e'
        | None -> ()
      in
      (match expand with
       | None ->
         List.iter
           (fun cd ->
             if !stopped = None then
               match fire t pool e.e_state cd with
               | None -> ()
               | Some st -> handle cd st)
           (candidates t e.e_state)
       | Some f ->
         (* an expansion override produces the whole (candidate,
            successor) list up front; processing still honors [`Stop]
            exactly like the inline path, so verdicts, counters and
            callback order are byte-identical *)
         List.iter
           (fun (cd, succ) ->
             if !stopped = None then
               match succ with None -> () | Some st -> handle cd st)
           (f pool e.e_state));
      if !stopped = None then
        match on_expanded e.e_state !successors with
        | `Stop -> stopped := Some e
        | `Continue -> ()
    end
    end
  done;
  let chain_of entry =
    let rec walk acc id =
      if id < 0 then acc
      else
        let parent, movers = !trace.(id) in
        if parent < 0 then acc else walk (movers :: acc) parent
    in
    walk [] entry.e_id
  in
  let frontier =
    Queue.fold (fun n e -> if e.e_dead then n else n + 1) 0 waiting
  in
  let build_snapshot () =
    let entries = ref [] in
    Hashtbl.iter
      (fun _ bucket ->
        List.iter
          (fun n ->
            List.iter
              (fun e ->
                if not e.e_dead then
                  entries :=
                    { se_id = e.e_id;
                      se_locs = e.e_state.st_locs;
                      se_vars = e.e_state.st_vars;
                      se_mon = e.e_state.st_mon;
                      se_zone = Zone.Dbm.to_ints e.e_state.st_zone }
                    :: !entries)
              n.pw_entries)
          !bucket)
      store;
    let queue_ids =
      Queue.fold (fun acc e -> if e.e_dead then acc else e.e_id :: acc)
        [] waiting
      |> List.rev |> Array.of_list
    in
    let trace_tbl =
      Array.init !next_id (fun id ->
          let parent, movers = !trace.(id) in
          (parent, List.map (fun (ai, ce) -> (ai, ce.Compiled.ce_index)) movers))
    in
    { snap_fingerprint = fingerprint t;
      snap_label = label;
      snap_dim = t.comp.Compiled.c_nclocks + 1;
      snap_subsume = subsume;
      snap_next_id = !next_id;
      snap_visited = !visited;
      snap_stored = !stored;
      snap_entries = !entries;
      snap_queue = queue_ids;
      snap_trace = trace_tbl;
      snap_payload = payload () }
  in
  { sr_chain = Option.map chain_of !stopped;
    sr_stats = { visited = !visited; stored = !stored; frontier };
    sr_interrupt = !interrupt;
    sr_snapshot =
      (match !interrupt with
       | Some _ -> Some (build_snapshot ())
       | None -> None) }

let describe_chain t chain =
  List.map
    (fun movers -> describe t { cd_movers = movers; cd_chan = None })
    chain

type reach_result = {
  r_trace : string list option;
  r_stats : stats;
  r_interrupt : Runctl.reason option;
}

let reachable ?expand ?ctl t pred =
  let visit st = if pred st then `Stop else `Continue in
  let r = search ?expand ?ctl ~label:"reachable" t visit in
  { r_trace = Option.map (describe_chain t) r.sr_chain;
    r_stats = r.sr_stats;
    r_interrupt = r.sr_interrupt }

let safe ?ctl t pred =
  let r = reachable ?ctl t pred in
  match r.r_trace, r.r_interrupt with
  | Some trace, _ -> (Refuted (Some trace), r.r_stats)
  | None, Some reason -> (Unknown reason, r.r_stats)
  | None, None -> (Proved, r.r_stats)

type sup_result =
  | Sup_unreached
  | Sup of int * bool
  | Sup_exceeds of int

type sup_outcome = {
  so_sup : sup_result;
  so_stats : stats;
  so_interrupt : Runctl.reason option;
  so_snapshot : snapshot option;
}

let sup_clock ?expand ?ctl ?resume t ~pred ~clock =
  let ci, ceiling = monitor_clock_info t clock in
  (* the running sup travels with the snapshot: on interrupt it is
     marshalled into the payload, on resume restored from it, so the
     states considered before the interrupt are not re-visited *)
  let best =
    ref
      (match resume with
       | Some snap when snap.snap_payload <> "" ->
         (Marshal.from_string snap.snap_payload 0 : sup_result)
       | Some _ | None -> Sup_unreached)
  in
  let update st =
    if pred st then begin
      let b = Zone.Dbm.sup_clock st.st_zone ci in
      if Zone.Bound.is_infinite b then best := Sup_exceeds ceiling
      else begin
        let v = Zone.Bound.constant b and strict = Zone.Bound.is_strict b in
        match !best with
        | Sup_exceeds _ -> ()
        | Sup_unreached -> best := Sup (v, strict)
        | Sup (v0, s0) ->
          if v > v0 || (v = v0 && s0 && not strict) then best := Sup (v, strict)
      end
    end;
    `Continue
  in
  let label = "sup:" ^ clock in
  let payload () = Marshal.to_string !best [] in
  let r = search ?expand ?ctl ?resume ~label ~payload t update in
  { so_sup = !best;
    so_stats = r.sr_stats;
    so_interrupt = r.sr_interrupt;
    so_snapshot = r.sr_snapshot }

let pp_sup_result ppf = function
  | Sup_unreached -> Fmt.string ppf "unreached"
  | Sup (v, true) -> Fmt.pf ppf "< %d" v
  | Sup (v, false) -> Fmt.pf ppf "<= %d" v
  | Sup_exceeds c -> Fmt.pf ppf "> %d (ceiling)" c

(* --- timelock detection ------------------------------------------------ *)

(* A reachable state where no discrete transition is possible and time is
   blocked: either an urgent/committed location pins the clock, or some
   location invariant caps a clock (the stored zones are delay-closed, so
   a finite supremum means time cannot diverge).  Quiescent terminal
   states -- no successors but unbounded delay -- are not timelocks. *)
let find_timelock ?ctl t =
  let time_blocked st =
    no_delay_present t st.st_locs
    ||
    let z = st.st_zone in
    let dim = Zone.Dbm.dim z in
    let rec bounded i =
      i < dim
      && ((not (Zone.Bound.is_infinite (Zone.Dbm.sup_clock z i)))
          || bounded (i + 1))
    in
    bounded 1
  in
  let on_expanded st nsucc =
    if nsucc = 0 && time_blocked st then `Stop else `Continue
  in
  (* Subsumption can hide a time-pinned sub-zone inside a wider live zone,
     so the timelock search deduplicates by zone equality only. *)
  let r =
    search ?ctl ~on_expanded ~subsume:false ~label:"timelock" t
      (fun _ -> `Continue)
  in
  { r_trace = Option.map (describe_chain t) r.sr_chain;
    r_stats = r.sr_stats;
    r_interrupt = r.sr_interrupt }

(* --- timed witness traces ---------------------------------------------- *)

type timed_step = {
  td_desc : string;
  td_earliest : int * bool;
  td_latest : (int * bool) option;
}

let pp_time_bound ppf (v, strict) =
  if strict then Fmt.pf ppf "%d+" v else Fmt.int ppf v

let pp_timed_step ppf step =
  let time =
    match step.td_latest with
    | Some hi when hi = step.td_earliest ->
      Fmt.str "t = %a" pp_time_bound step.td_earliest
    | Some hi ->
      Fmt.str "t in [%a, %a]" pp_time_bound step.td_earliest pp_time_bound hi
    | None -> Fmt.str "t >= %a" pp_time_bound step.td_earliest
  in
  Fmt.pf ppf "%-18s %s" time step.td_desc

(* Replay a fixed transition chain exactly (no extrapolation, no
   reduction) with an extra never-reset clock measuring absolute time;
   the clock's interval at each firing gives the possible firing times of
   that step among runs following this chain.  [None] means the chain is
   infeasible — some guard or invariant empties the zone along the way.
   Exposed separately from [timed_trace] so a witness chain found by a
   different search (e.g. the parallel explorer) can be validated and
   annotated. *)
let replay t chain =
    let tclock = "psv_abs_time" in
    let comp =
      Compiled.compile ~extra_clocks:[ tclock ] t.comp.Compiled.c_model
    in
    let nauts = Array.length comp.Compiled.c_automata in
    let find_edge ai idx =
      let a = comp.Compiled.c_automata.(ai) in
      let hit = ref None in
      Array.iter
        (List.iter (fun ce -> if ce.Compiled.ce_index = idx then hit := Some ce))
        a.Compiled.ca_out;
      match !hit with
      | Some ce -> ce
      | None -> assert false
    in
    let invariants locs z =
      Array.iteri
        (fun ai li ->
          apply_dconstraints z
            comp.Compiled.c_automata.(ai).Compiled.ca_locs.(li).Compiled.cl_inv)
        locs
    in
    let blocked locs =
      let rec loop ai =
        ai < nauts
        && ((match comp.Compiled.c_automata.(ai)
                     .Compiled.ca_locs.(locs.(ai)).Compiled.cl_kind
             with
             | Model.Urgent | Model.Committed -> true
             | Model.Normal -> false)
            || loop (ai + 1))
      in
      loop 0
    in
    let dim = comp.Compiled.c_nclocks + 1 in
    let ti = Compiled.clock_index comp tclock in
    let locs =
      ref (Array.map (fun a -> a.Compiled.ca_initial) comp.Compiled.c_automata)
    in
    let vars = ref (Array.copy comp.Compiled.c_var_init) in
    let z = Zone.Dbm.zero dim in
    invariants !locs z;
    if not (blocked !locs) then begin
      Zone.Dbm.up z;
      invariants !locs z
    end;
    let steps = ref [] in
    let feasible = ref (not (Zone.Dbm.is_empty z)) in
    List.iter
      (fun movers ->
        if !feasible then begin
          let movers' =
            List.map
              (fun (ai, (ce : Compiled.cedge)) ->
                (ai, find_edge ai ce.Compiled.ce_index))
              movers
          in
          List.iter
            (fun (_, ce) -> apply_dconstraints z ce.Compiled.ce_guard)
            movers';
          if Zone.Dbm.is_empty z then feasible := false
          else begin
            let lo, lo_strict = Zone.Dbm.inf_clock z ti in
            let hi_bound = Zone.Dbm.sup_clock z ti in
            let hi =
              if Zone.Bound.is_infinite hi_bound then None
              else
                Some
                  (Zone.Bound.constant hi_bound, Zone.Bound.is_strict hi_bound)
            in
            steps :=
              { td_desc =
                  describe t { cd_movers = movers; cd_chan = None };
                td_earliest = (lo, lo_strict);
                td_latest = hi }
              :: !steps;
            let next_locs = Array.copy !locs in
            List.iter
              (fun (ai, ce) -> next_locs.(ai) <- ce.Compiled.ce_dst)
              movers';
            vars :=
              List.fold_left
                (fun vals (_, ce) ->
                  Compiled.apply_updates comp vals ce.Compiled.ce_updates)
                !vars movers';
            List.iter
              (fun (_, ce) -> List.iter (Zone.Dbm.reset z) ce.Compiled.ce_resets)
              movers';
            locs := next_locs;
            invariants !locs z;
            if not (blocked !locs) then begin
              Zone.Dbm.up z;
              invariants !locs z
            end;
            if Zone.Dbm.is_empty z then feasible := false
          end
        end)
      chain;
    if !feasible then Some (List.rev !steps) else None

let timed_trace t pred =
  let visit st = if pred st then `Stop else `Continue in
  match (search ~label:"reachable" t visit).sr_chain with
  | None -> None
  | Some chain -> replay t chain

(* --- coverage ----------------------------------------------------------- *)

type coverage = {
  cov_unreached_locations : (string * string) list;
  cov_unfired_edges : string list;
  cov_stats : stats;
}

(* Explore everything, recording which locations were entered and which
   edges fired; the complement is dead model structure worth reviewing. *)
let coverage t =
  let comp = t.comp in
  let nauts = Array.length comp.Compiled.c_automata in
  let seen_locs =
    Array.init nauts (fun ai ->
        Array.make
          (Array.length comp.Compiled.c_automata.(ai).Compiled.ca_locs)
          false)
  in
  let fired : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let visit st =
    Array.iteri (fun ai li -> seen_locs.(ai).(li) <- true) st.st_locs;
    `Continue
  in
  let on_transition cd =
    List.iter
      (fun (ai, (ce : Compiled.cedge)) ->
        Hashtbl.replace fired (ai, ce.Compiled.ce_index) ())
      cd.cd_movers
  in
  let stats = (search ~on_transition ~label:"coverage" t visit).sr_stats in
  let unreached = ref [] in
  Array.iteri
    (fun ai seen ->
      let a = comp.Compiled.c_automata.(ai) in
      Array.iteri
        (fun li entered ->
          if not entered then
            unreached :=
              (a.Compiled.ca_name, a.Compiled.ca_locs.(li).Compiled.cl_name)
              :: !unreached)
        seen)
    seen_locs;
  let unfired = ref [] in
  Array.iteri
    (fun ai a ->
      Array.iter
        (List.iter (fun (ce : Compiled.cedge) ->
             if not (Hashtbl.mem fired (ai, ce.Compiled.ce_index)) then
               unfired := Compiled.describe_edge comp ce :: !unfired))
        a.Compiled.ca_out)
    comp.Compiled.c_automata;
  { cov_unreached_locations = List.rev !unreached;
    cov_unfired_edges = List.rev !unfired;
    cov_stats = stats }
