open Ta

type variant =
  | Bolus_only
  | Full

let bolus_req = "m_BolusReq"
let empty_syringe = "m_EmptySyringe"
let pause_req = "m_PauseReq"
let start_infusion = "c_StartInfusion"
let stop_infusion = "c_StopInfusion"
let alarm = "c_Alarm"
let pause_infusion = "c_PauseInfusion"

let software_clock = "x"
let env_clock = "env_x"

let loc = Model.location
let edge = Model.edge

let software ?(variant = Full) (p : Params.t) =
  let x = software_clock in
  let bolus_locs =
    [ loc "Idle";
      loc ~inv:[ Clockcons.le x p.Params.prep_max ] "BolusPrep";
      loc
        ~inv:[ Clockcons.le x (p.Params.infusion_hold + p.Params.infusion_slack) ]
        "Infusing" ]
  in
  let bolus_edges =
    [ edge ~sync:(Model.Recv bolus_req) ~resets:[ x ] "Idle" "BolusPrep";
      edge
        ~guard:[ Clockcons.ge x p.Params.prep_min ]
        ~sync:(Model.Send start_infusion) ~resets:[ x ] "BolusPrep" "Infusing";
      edge
        ~guard:[ Clockcons.ge x p.Params.infusion_hold ]
        ~sync:(Model.Send stop_infusion) "Infusing" "Idle" ]
  in
  let locs, edges =
    match variant with
    | Bolus_only -> (bolus_locs, bolus_edges)
    | Full ->
      let alarm_locs =
        [ loc ~inv:[ Clockcons.le x p.Params.alarm_max ] "Empty";
          loc "Alarmed" ]
      in
      let empty_from src =
        edge ~sync:(Model.Recv empty_syringe) ~resets:[ x ] src "Empty"
      in
      let alarm_edges =
        [ empty_from "Idle";
          empty_from "BolusPrep";
          empty_from "Infusing";
          edge ~sync:(Model.Send alarm) "Empty" "Alarmed" ]
      in
      (* GPCA pause: a pause request during infusion must stop the motor
         within pause_max; the pump then idles until a new bolus is
         requested. *)
      let pause_locs =
        [ loc ~inv:[ Clockcons.le x p.Params.pause_max ] "PausePrep";
          loc "Paused" ]
      in
      let pause_edges =
        [ edge ~sync:(Model.Recv pause_req) ~resets:[ x ] "Infusing"
            "PausePrep";
          edge ~sync:(Model.Send pause_infusion) "PausePrep" "Paused";
          edge ~sync:(Model.Recv bolus_req) ~resets:[ x ] "Paused" "BolusPrep";
          edge ~sync:(Model.Recv empty_syringe) ~resets:[ x ] "Paused" "Empty" ]
      in
      ( bolus_locs @ alarm_locs @ pause_locs,
        bolus_edges @ alarm_edges @ pause_edges )
  in
  Model.automaton ~name:"Pump" ~initial:"Idle" locs edges

let environment ?(variant = Full) (_p : Params.t) =
  let bolus_locs = [ loc "Rest"; loc "AwaitStart"; loc "Observing" ] in
  let bolus_edges =
    [ edge ~sync:(Model.Send bolus_req) ~resets:[ env_clock ] "Rest"
        "AwaitStart";
      edge ~sync:(Model.Recv start_infusion) ~resets:[ env_clock ] "AwaitStart"
        "Observing";
      edge ~sync:(Model.Recv stop_infusion) "Observing" "Rest" ]
  in
  let locs, edges =
    match variant with
    | Bolus_only -> (bolus_locs, bolus_edges)
    | Full ->
      let alarm_locs = [ loc "AwaitAlarm"; loc "Halted" ] in
      let alarm_edges =
        [ edge ~sync:(Model.Send empty_syringe) ~resets:[ env_clock ] "Rest"
            "AwaitAlarm";
          edge ~sync:(Model.Send empty_syringe) ~resets:[ env_clock ]
            "Observing" "AwaitAlarm";
          edge ~sync:(Model.Recv alarm) "AwaitAlarm" "Halted" ]
      in
      let pause_locs = [ loc "AwaitPause"; loc "PausedEnv" ] in
      (* Environment assumption: a pause is only requested while the
         infusion is clearly still running (first half of the hold).
         Without it the platform admits a race: the stop output's device
         delay lets the patient pause after the pump has already stopped,
         and the pause request is discarded -- the end-to-end pause delay
         is then unbounded (found by verification; see DESIGN.md). *)
      let pause_edges =
        [ edge
            ~guard:[ Clockcons.le env_clock (_p.Params.infusion_hold / 2) ]
            ~sync:(Model.Send pause_req) ~resets:[ env_clock ] "Observing"
            "AwaitPause";
          edge ~sync:(Model.Recv pause_infusion) "AwaitPause" "PausedEnv";
          edge ~sync:(Model.Send bolus_req) ~resets:[ env_clock ] "PausedEnv"
            "AwaitStart" ]
      in
      ( bolus_locs @ alarm_locs @ pause_locs,
        bolus_edges @ alarm_edges @ pause_edges )
  in
  Model.automaton ~name:"Patient" ~initial:"Rest" locs edges

let channels ~variant =
  let base =
    [ (bolus_req, Model.Broadcast);
      (start_infusion, Model.Broadcast);
      (stop_infusion, Model.Broadcast) ]
  in
  match variant with
  | Bolus_only -> base
  | Full ->
    base
    @ [ (empty_syringe, Model.Broadcast);
        (alarm, Model.Broadcast);
        (pause_req, Model.Broadcast);
        (pause_infusion, Model.Broadcast) ]

let network ?(variant = Full) p =
  Model.network ~name:"gpca"
    ~clocks:[ software_clock; env_clock ]
    ~vars:[]
    ~channels:(channels ~variant)
    [ software ~variant p; environment ~variant p ]

let pim ?(variant = Full) p =
  Transform.Pim.make (network ~variant p) ~software:"Pump"
    ~environment:"Patient"

let psm_with ?(variant = Full) p scheme =
  Transform.psm_of_pim (pim ~variant p) scheme

let psm ?(variant = Full) p =
  let scheme =
    match variant with
    | Full -> Params.scheme p
    | Bolus_only ->
      let s = Params.scheme p in
      { s with
        Scheme.is_inputs =
          List.filter (fun (m, _) -> m = bolus_req) s.Scheme.is_inputs;
        is_outputs =
          List.filter
            (fun (c, _) -> c = start_infusion || c = stop_infusion)
            s.Scheme.is_outputs }
  in
  Transform.psm_of_pim (pim ~variant p) scheme
