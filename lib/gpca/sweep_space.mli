(** The GPCA design space for [psv sweep-schemes]: named grid axes over
    the bolus path's implementation choices and the per-point problem
    builder the sweep engine ({!Analysis.Sweep}) consumes.

    Every point describes a bolus-only PSM — the REQ1 cone of
    influence — so the dedup key contains only what that PSM and the
    Lemma-1/2 bounds depend on.  Axes that drop out (the poll interval
    of an interrupt-driven point, say) collapse onto one exploration. *)

(** The fixed parameters behind the axes. *)
type base =
  | Small
      (** every constant scaled ~10x down from Table I so an undecided
          point explores in 1-100 ms — the grid/bench preset *)
  | Table1  (** the paper's calibrated constants *)

val params_of_base : base -> Params.t
val base_of_string : string -> (base, string) result
val base_name : base -> string

(** REQ1 for the base: 500 ms against Table I, 60 against [Small]. *)
val default_req : base -> int

(** The recognised axis names with one-line descriptions ([period],
    [poll], [buffer], [policy], [comm], [mech], [signal], [in_dmin],
    [in_dmax], [out_dmin], [out_dmax], [wcet]). *)
val axis_names : (string * string) list

val validate_axes : string list -> (unit, string) result

(** [scheme_of_point base assignment] resolves one grid assignment
    against the base parameters: the per-point {!Params.t} (software
    timing and devices) and the bolus-path {!Scheme.t}. *)
val scheme_of_point :
  base -> (string * int) list -> Params.t * Scheme.t

(** The platform cost vector of a point, componentwise minimised by
    the Pareto frontier: buffer slots, invocation rate, detection rate
    (an interrupt line counted as a fast, expensive detector), and the
    two device speeds. *)
val cost : Params.t -> Scheme.t -> int array

(** Minimum spacing between bolus requests the serial environment
    guarantees: one prep window plus the full infusion hold. *)
val min_interarrival : Params.t -> int

(** [spec_of_assignment ~base ~req asg] resolves one explicit axis
    assignment into the engine's per-point spec: analytic bounds, the
    loss-freedom flag, the dedup key and the PSM thunk.  Callers with
    couplings a grid product cannot express (the period sweep ties the
    execution window to the period) enumerate assignments themselves. *)
val spec_of_assignment :
  ?variant:Model.variant ->
  base:base -> req:int -> (string * int) list -> Analysis.Sweep.spec

(** [build ~base ~req grid index] is the sweep engine's [build]
    callback: {!Scheme.Grid.point} composed with
    {!spec_of_assignment}. *)
val build :
  ?variant:Model.variant ->
  base:base -> req:int -> Scheme.Grid.t -> int -> Analysis.Sweep.spec
