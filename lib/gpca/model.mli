(** The GPCA infusion pump models of Fig. 1, extended with the
    empty-syringe alarm path mentioned in the paper's Fig. 1 listing
    ([m-EmptySyringe], [c-StopInfusion], [c-Alarm]).

    The software automaton [Pump] (the paper's [M]):

    - [Idle] --[m_BolusReq?]--> [BolusPrep] (clock [x] reset)
    - [BolusPrep] (inv [x <= prep_max]) --[x >= prep_min,
      c_StartInfusion!]--> [Infusing]
    - [Infusing] --[x >= infusion_hold, c_StopInfusion!]--> [Idle]
    - any operational location --[m_EmptySyringe?]--> [Empty]
      --[c_Alarm!]--> [Alarmed] within [alarm_max]

    The environment automaton [Patient] (the paper's [ENV]) requests a
    bolus, awaits the infusion start, observes the stop, and may instead
    signal an empty syringe and await the alarm.

    All channels are broadcast: mc-boundary synchronisations are direct
    and non-blocking (Fig. 4), and this is what lets the PSM discard an
    input the software cannot consume. *)

type variant =
  | Bolus_only  (** just the REQ1 path — smaller state space *)
  | Full        (** with the empty-syringe alarm and pause paths *)

(** {1 Channel names} *)

val bolus_req : string
val empty_syringe : string
val pause_req : string
val start_infusion : string
val stop_infusion : string
val alarm : string
val pause_infusion : string

(** {1 Clock names} *)

val software_clock : string
val env_clock : string

(** {1 Model builders} *)

val software : ?variant:variant -> Params.t -> Ta.Model.automaton
val environment : ?variant:variant -> Params.t -> Ta.Model.automaton
val network : ?variant:variant -> Params.t -> Ta.Model.network

(** The PIM descriptor [M || ENV] ready for {!Transform.psm_of_pim}. *)
val pim : ?variant:variant -> Params.t -> Transform.Pim.t

(** The PSM for the default Section-VI scheme. *)
val psm : ?variant:variant -> Params.t -> Transform.psm

(** The PSM under an explicit scheme — the sweep engine's
    parameterization hook: [p] supplies the software/environment timing
    (prep window, infusion hold), the scheme everything else.  The
    scheme's channels must match the variant's boundary. *)
val psm_with : ?variant:variant -> Params.t -> Scheme.t -> Transform.psm
