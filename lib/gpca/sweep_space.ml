(* The GPCA design space for `psv sweep-schemes`: named grid axes over
   the bolus path's implementation choices, and the per-point problem
   builder the sweep engine consumes.

   Every point is a bolus-only PSM (the REQ1 cone): one polled or
   interrupt-driven bolus input, the start/stop outputs, one io
   boundary.  The dedup key therefore contains only what that PSM and
   the analytic bounds depend on — e.g. the poll interval drops out of
   the key whenever the mechanism axis says interrupt, collapsing the
   whole poll axis to one exploration. *)

let bolus = Model.bolus_req
let start = Model.start_infusion

type base = Small | Table1

(* The Table-I parameters produce 10k-100k-state explorations per
   point — fine for a handful, hopeless for a grid.  [Small] scales
   every constant down ~10x so an undecided point explores in 1-100 ms
   while keeping the same structure (poll < period < prep < hold). *)
let params_of_base = function
  | Table1 -> Params.default
  | Small ->
    { Params.default with
      Params.poll_interval = 10;
      bolus_proc = Scheme.delay 1 5;
      empty_proc = Scheme.delay 1 2;
      output_proc = Scheme.delay 5 10;
      period = 20;
      exec = { Scheme.wcet_min = 2; wcet_max = 8 };
      buffer_size = 2;
      prep_min = 25;
      prep_max = 50;
      infusion_hold = 200;
      infusion_slack = 40 }

let base_of_string = function
  | "small" -> Ok Small
  | "table1" -> Ok Table1
  | s -> Error (Printf.sprintf "unknown base %S (want small or table1)" s)

let base_name = function Small -> "small" | Table1 -> "table1"

(* REQ1 for each base: 500 ms against the Table-I constants; the same
   bound scaled with the rest of the space for [Small]. *)
let default_req = function Table1 -> Params.req1_bound | Small -> 60

let axis_names =
  [ ("period", "invocation period");
    ("poll", "polling interval (mech=1 points)");
    ("buffer", "io-boundary buffer capacity");
    ("policy", "0 read-all, 1 read-one");
    ("comm", "0 bounded buffer, 1 shared variable");
    ("mech", "0 interrupt, 1 polling (bolus input)");
    ("signal", "0 latched, 1 pulse, >=2 sustained for that duration");
    ("in_dmin", "Input-Device min processing delay");
    ("in_dmax", "Input-Device max processing delay");
    ("out_dmin", "Output-Device min processing delay");
    ("out_dmax", "Output-Device max processing delay");
    ("wcet", "execution-window max (min tracks the base)") ]

let validate_axes names =
  let known = List.map fst axis_names in
  match List.find_opt (fun n -> not (List.mem n known)) names with
  | Some n ->
    Error
      (Printf.sprintf "unknown axis %S (known: %s)" n
         (String.concat ", " known))
  | None -> Ok ()

(* --- per-point construction --------------------------------------------- *)

let scheme_of_point base asg =
  let p0 = params_of_base base in
  let get name default =
    match List.assoc_opt name asg with Some v -> v | None -> default
  in
  let period = get "period" p0.Params.period in
  let poll = get "poll" p0.Params.poll_interval in
  let buffer = get "buffer" p0.Params.buffer_size in
  let policy =
    if get "policy" 0 = 0 then Scheme.Read_all else Scheme.Read_one
  in
  let shared = get "comm" 0 <> 0 in
  let mech = get "mech" 1 in
  let signal = get "signal" 0 in
  let in_delay =
    Scheme.delay
      (get "in_dmin" p0.Params.bolus_proc.Scheme.delay_min)
      (get "in_dmax" p0.Params.bolus_proc.Scheme.delay_max)
  in
  let out_delay =
    Scheme.delay
      (get "out_dmin" p0.Params.output_proc.Scheme.delay_min)
      (get "out_dmax" p0.Params.output_proc.Scheme.delay_max)
  in
  let wcet_max = get "wcet" p0.Params.exec.Scheme.wcet_max in
  let exec =
    { Scheme.wcet_min = min p0.Params.exec.Scheme.wcet_min wcet_max;
      wcet_max }
  in
  let in_signal =
    match signal with
    | 0 -> Scheme.Sustained_until_read
    | 1 -> Scheme.Pulse
    | d -> Scheme.Sustained d
  in
  let in_read =
    if mech = 0 then Scheme.Interrupt Scheme.Rising else Scheme.Polling poll
  in
  let p =
    { p0 with
      Params.poll_interval = poll;
      bolus_proc = in_delay;
      output_proc = out_delay;
      period;
      exec;
      buffer_size = buffer }
  in
  let comm =
    if shared then Scheme.Shared_variable else Scheme.Buffer (buffer, policy)
  in
  let scheme =
    { Scheme.is_name = "sweep";
      is_inputs = [ (bolus, { Scheme.in_signal; in_read; in_delay }) ];
      is_outputs =
        [ (start, Scheme.pulse_output out_delay);
          (Model.stop_infusion, Scheme.pulse_output out_delay) ];
      is_input_comm = comm;
      is_output_comm = Scheme.Buffer (max 1 buffer, Scheme.Read_all);
      is_invocation = Scheme.Periodic period;
      is_exec = exec }
  in
  (p, scheme)

(* Platform cost, componentwise minimised by the Pareto frontier.
   Faster is costlier: invocation rate, detection rate (a dedicated
   interrupt line counted as a fast, expensive detector), device
   speeds; plus the buffer memory itself.  Absolute numbers are
   arbitrary — only the partial order matters. *)
let cost (p : Params.t) (scheme : Scheme.t) =
  let spec = Scheme.input_spec scheme bolus in
  let detect =
    match spec.Scheme.in_read with
    | Scheme.Interrupt _ -> 2000
    | Scheme.Polling i -> 1000 / max 1 i
  in
  let slots =
    match scheme.Scheme.is_input_comm with
    | Scheme.Buffer (n, _) -> n
    | Scheme.Shared_variable -> 1
  in
  [| slots;
     10_000 / max 1 p.Params.period;
     detect;
     10_000 / (1 + spec.Scheme.in_delay.Scheme.delay_max);
     10_000 / (1 + p.Params.output_proc.Scheme.delay_max) |]

(* The environment is serial: a new bolus request can only follow the
   previous infusion's completion, so consecutive triggerings are at
   least a prep window plus the full hold apart. *)
let min_interarrival (p : Params.t) = p.Params.prep_min + p.Params.infusion_hold

let spec_of_assignment ?(variant = Model.Bolus_only) ~base ~req asg =
  let p, scheme = scheme_of_point base asg in
  let problems = Scheme.check scheme in
  let ub =
    Analysis.Bounds.relaxed_mc_delay scheme ~input:bolus ~output:start
      ~internal:p.Params.prep_max
  in
  let lb =
    Analysis.Bounds.relaxed_mc_delay_min scheme ~input:bolus ~output:start
      ~internal_min:p.Params.prep_min
  in
  let gap = min_interarrival p in
  (* Pass decisions additionally require the output path to clear
     before the next output can be produced (one start and one stop per
     cycle, a hold apart), so neither boundary can lose a value. *)
  let sound =
    Analysis.Bounds.loss_free_serial scheme bolus ~min_interarrival:gap
    && Analysis.Bounds.output_delay scheme start < p.Params.infusion_hold
  in
  (* everything the PSM and the bounds depend on; what the key omits
     (e.g. the poll axis on interrupt points) dedups away *)
  let key =
    Printf.sprintf "%s|prep%d:%d|hold%d+%d|req%d"
      (Scheme.to_key scheme)
      p.Params.prep_min p.Params.prep_max p.Params.infusion_hold
      p.Params.infusion_slack req
  in
  { Analysis.Sweep.sp_req = req;
    sp_ub = ub;
    sp_lb = lb;
    sp_sound = sound;
    sp_key = key;
    sp_net = (fun () -> (Model.psm_with ~variant p scheme).Transform.psm_net);
    sp_trigger = bolus;
    sp_response = start;
    sp_cost = cost p scheme;
    sp_invalid =
      (match problems with
       | [] -> None
       | ps -> Some (String.concat "; " ps)) }

let build ?variant ~base ~req grid index =
  spec_of_assignment ?variant ~base ~req (Scheme.Grid.point grid index)
