(** Analytic delay bounds — Lemmas 1 and 2 of Section V.

    These bounds are functions of the platform-specific parameters only;
    no model checking involved.  They assume the four system constraints
    hold (checked separately by {!Constraints}); when a constraint fails,
    the end-to-end delay may be unbounded (Remark 1). *)

(** Worst-case Input-Delay [Δmi] for one monitored variable: the time from
    the environment triggering the input until the code reads it.

    [detection + processing + buffer wait]:
    - detection: one full polling interval for a polled input, 0 for an
      interrupt;
    - processing: the Input-Device's [delay_max];
    - buffer wait: one invocation period under read-all (the input is
      delivered at the next invocation); under read-one an input may sit
      behind up to [buffer-size - 1] earlier entries, each costing one
      more period; an aperiodic executive is invoked on insertion, so
      only the minimum re-invocation gap applies. *)
val input_delay : Scheme.t -> string -> int

(** Analytic {e lower} bound on the Input-Delay: in the best case the
    signal is detected immediately and delivered at once, leaving only
    the Input-Device's minimum processing delay.  No implementation of
    the scheme — however degraded its timing otherwise — can report a
    smaller delay, which makes this the reference line for
    fault-injection stress tests. *)
val input_delay_min : Scheme.t -> string -> int

(** Analytic lower bound on the Output-Delay: the Output-Device's
    minimum processing delay (publication and queueing can be free). *)
val output_delay_min : Scheme.t -> string -> int

(** Worst-case Output-Delay [Δoc] for one controlled variable: the time
    from the code producing the output until the environment observes it.

    [visibility + device queue + processing]:
    - visibility: outputs are published at the end of the invocation's
      execution window, up to [wcet_max] after being produced;
    - device queue: under read-all every earlier buffered output is
      processed first, each costing up to [delay_max]; we charge
      [queued_before] of them (default 0: the single-output chain of the
      case study);
    - processing: the Output-Device's [delay_max]. *)
val output_delay : ?queued_before:int -> Scheme.t -> string -> int

(** Lemma 2: [Δ'mc = Δmi + Δoc + Δio-internal]. *)
val relaxed_mc_delay :
  ?queued_before:int ->
  Scheme.t -> input:string -> output:string -> internal:int -> int

(** Constraint 1's analytic side-condition: the Input-Device can detect
    every signal iff its worst-case turnaround (detection + processing)
    is below the environment's minimum inter-arrival time. *)
val detects_all_inputs :
  Scheme.t -> string -> min_interarrival:int -> bool

(** Analytic {e lower} bound on the {e worst-case} M-C delay — the dual
    of {!relaxed_mc_delay}, used by the sweep prefilter to refute a
    requirement without model checking.  Unlike {!input_delay_min}
    (which bounds the best case), this bounds the supremum from below
    by exhibiting a witness run: for a polled input the environment can
    raise the signal just after a poll tick, forcing a full interval of
    detection latency ({!Scheme.check}-valid polled schemes guarantee
    the signal is still observable at the next tick), and every run
    additionally pays both devices' minimum processing plus the
    software's minimum internal delay [internal_min].  Whenever the
    model-checked supremum is defined it is [>= ] this value — the
    seeded property test in [test/test_sweep.ml] pins the invariant. *)
val relaxed_mc_delay_min :
  Scheme.t -> input:string -> output:string -> internal_min:int -> int

(** Sufficient analytic condition for loss-freedom of a {e serial}
    input (the environment never re-triggers before the previous
    response): when [input_delay < min_interarrival], each triggering
    is consumed before the next arrives, so at most one value is in
    flight — no register overwrite, no missed poll, no buffer
    overflow.  The cheap stand-in for Constraints 1-3 that lets the
    sweep prefilter trust Lemma 2's upper bound without running the
    model checker. *)
val loss_free_serial : Scheme.t -> string -> min_interarrival:int -> bool
