(** The admission-control plane of the network serve loop: a bounded
    multi-producer / multi-consumer request queue with
    shed-on-overload.

    The event loop {!try_push}es each admitted request; worker domains
    {!pop} in FIFO order.  A full queue never blocks the producer —
    {!try_push} returns [false] immediately and the caller answers the
    client with a diagnosed "busy" response (the 429 of the wire
    protocol).  Shed and accepted counts are exported to the metrics
    surface.

    Domain-safe (mutex + condition); {!pop} blocks until an item
    arrives or the queue is closed and drained. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** [capacity] is clamped to at least 1. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed — the request must be
    shed.  Never blocks. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available.  After {!close}, keeps
    returning the already-admitted items, then [None] once empty — the
    consumer's signal to exit. *)

val close : 'a t -> unit
(** Stop admitting; wake every blocked consumer.  Already-queued items
    remain poppable so a graceful drain can answer them. *)

val closed : 'a t -> bool
val depth : 'a t -> int

val shed : 'a t -> int
(** Requests refused by {!try_push} so far. *)

val accepted : 'a t -> int
(** Requests admitted by {!try_push} so far. *)
