type delay_result = {
  dr_trigger : string;
  dr_response : string;
  dr_sup : Mc.Explorer.sup_result;
  dr_stats : Mc.Explorer.stats;
  dr_interrupt : Mc.Runctl.reason option;
  dr_snapshot : Mc.Explorer.snapshot option;
}

let monitor_clock = "psv_delay_mon"

let max_delay ?limit ?ctl ?resume net ~trigger ~response ~ceiling =
  let monitor =
    Mc.Monitor.delay ~trigger ~response ~clock:monitor_clock ~ceiling ()
  in
  let t = Mc.Explorer.make ~monitor ?limit net in
  let o =
    Mc.Explorer.sup_clock ?ctl ?resume t
      ~pred:(Mc.Explorer.mon_in t "Waiting")
      ~clock:monitor_clock
  in
  { dr_trigger = trigger; dr_response = response;
    dr_sup = o.Mc.Explorer.so_sup;
    dr_stats = o.Mc.Explorer.so_stats;
    dr_interrupt = o.Mc.Explorer.so_interrupt;
    dr_snapshot = o.Mc.Explorer.so_snapshot }

let verdict_of_delay r ~bound =
  match r.dr_interrupt, r.dr_sup with
  | None, Mc.Explorer.Sup_unreached ->
    Mc.Explorer.Proved  (* the trigger never fires *)
  | None, Mc.Explorer.Sup (v, _) ->
    if v <= bound then Mc.Explorer.Proved else Mc.Explorer.Refuted None
  | None, Mc.Explorer.Sup_exceeds _ -> Mc.Explorer.Refuted None
  (* partial sups are lower bounds on the true sup, so exceeding the
     bound refutes even when the search was cut short *)
  | Some _, Mc.Explorer.Sup (v, _) when v > bound -> Mc.Explorer.Refuted None
  | Some _, Mc.Explorer.Sup_exceeds _ -> Mc.Explorer.Refuted None
  | Some reason, _ -> Mc.Explorer.Unknown reason

let satisfies_response_bound ?limit ?ctl net ~trigger ~response ~bound =
  let r = max_delay ?limit ?ctl net ~trigger ~response ~ceiling:bound in
  verdict_of_delay r ~bound

let pim_internal_bound ?limit (pim : Transform.Pim.t) ~input ~output ~ceiling =
  max_delay ?limit pim.Transform.Pim.pim_net ~trigger:input ~response:output
    ~ceiling

let pp_delay_result ppf r =
  Fmt.pf ppf "max delay %s -> %s: %a (%d states)" r.dr_trigger r.dr_response
    Mc.Explorer.pp_sup_result r.dr_sup r.dr_stats.Mc.Explorer.visited;
  match r.dr_interrupt with
  | Some reason -> Fmt.pf ppf " [interrupted: %a]" Mc.Runctl.pp_reason reason
  | None -> ()
