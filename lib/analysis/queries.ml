type delay_result = {
  dr_trigger : string;
  dr_response : string;
  dr_sup : Mc.Explorer.sup_result;
  dr_stats : Mc.Explorer.stats;
  dr_interrupt : Mc.Runctl.reason option;
  dr_snapshot : Mc.Explorer.snapshot option;
}

let monitor_clock = "psv_delay_mon"

let max_delay ?(jobs = 1) ?limit ?ctl ?resume net ~trigger ~response ~ceiling =
  let monitor =
    Mc.Monitor.delay ~trigger ~response ~clock:monitor_clock ~ceiling ()
  in
  let t = Mc.Explorer.make ~monitor ?limit net in
  (* Parsearch delegates jobs <= 1 to the sequential path; snapshots
     use one format either way, so a checkpoint taken at any [jobs]
     resumes at any other *)
  let o =
    Mc.Parsearch.sup_clock ~jobs ?ctl ?resume t
      ~pred:(Mc.Explorer.mon_in t "Waiting")
      ~clock:monitor_clock
  in
  { dr_trigger = trigger; dr_response = response;
    dr_sup = o.Mc.Explorer.so_sup;
    dr_stats = o.Mc.Explorer.so_stats;
    dr_interrupt = o.Mc.Explorer.so_interrupt;
    dr_snapshot = o.Mc.Explorer.so_snapshot }

let verdict_of_delay r ~bound =
  match r.dr_interrupt, r.dr_sup with
  | None, Mc.Explorer.Sup_unreached ->
    Mc.Explorer.Proved  (* the trigger never fires *)
  | None, Mc.Explorer.Sup (v, _) ->
    if v <= bound then Mc.Explorer.Proved else Mc.Explorer.Refuted None
  | None, Mc.Explorer.Sup_exceeds _ -> Mc.Explorer.Refuted None
  (* partial sups are lower bounds on the true sup, so exceeding the
     bound refutes even when the search was cut short *)
  | Some _, Mc.Explorer.Sup (v, _) when v > bound -> Mc.Explorer.Refuted None
  | Some _, Mc.Explorer.Sup_exceeds _ -> Mc.Explorer.Refuted None
  | Some reason, _ -> Mc.Explorer.Unknown reason

let satisfies_response_bound ?jobs ?limit ?ctl net ~trigger ~response ~bound =
  let r = max_delay ?jobs ?limit ?ctl net ~trigger ~response ~ceiling:bound in
  verdict_of_delay r ~bound

let pim_internal_bound ?limit (pim : Transform.Pim.t) ~input ~output ~ceiling =
  max_delay ?limit pim.Transform.Pim.pim_net ~trigger:input ~response:output
    ~ceiling

(* --- parallel query driver ---------------------------------------------- *)

(* Generic bounded domain pool over a work list.  Items are claimed by
   an atomic next-index counter; the first exception wins, parks in an
   atomic slot, drains the remaining items (workers stop claiming once
   a failure is recorded) and is re-raised on the caller's domain after
   the join. *)
let pool_map ~jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        match Atomic.get failure with
        | Some _ -> ()
        | None ->
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (match f arr.(i) with
             | r -> results.(i) <- Some r
             | exception exn ->
               ignore (Atomic.compare_and_set failure None (Some exn)));
            loop ()
          end
      in
      loop ()
    in
    let doms = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join doms;
    (match Atomic.get failure with Some exn -> raise exn | None -> ());
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

type query_spec = {
  qs_name : string;
  qs_net : unit -> Ta.Model.network;
  qs_trigger : string;
  qs_response : string;
  qs_ceiling : int;
}

let spec_query spec =
  Mc.Query.Sup_delay
    { trigger = spec.qs_trigger;
      response = spec.qs_response;
      ceiling = spec.qs_ceiling }

(* A cached entry for a sup query, replayed as a delay_result.  The
   entry's outcome is [Sup] (finished) or [Unknown] with the partial sup
   (interrupted); anything else means the entry was produced by a
   different query kind under a colliding key, which we treat as a miss
   rather than trust. *)
let delay_of_entry spec (e : Store.Entry.t) =
  let finish sup interrupt =
    Some
      { dr_trigger = spec.qs_trigger;
        dr_response = spec.qs_response;
        dr_sup = sup;
        dr_stats = Qcache.stats_of_entry e.Store.Entry.en_stats;
        dr_interrupt = interrupt;
        dr_snapshot = None }
  in
  match e.Store.Entry.en_outcome with
  | Store.Entry.Sup s -> finish (Qcache.sup_of_entry s) None
  | Store.Entry.Unknown (reason, partial) ->
    let sup =
      match partial with
      | Some s -> Qcache.sup_of_entry s
      | None -> Mc.Explorer.Sup_unreached
    in
    finish sup (Some (Qcache.reason_of_entry reason))
  | Store.Entry.Holds | Store.Entry.Fails _ -> None

let entry_of_delay ~key ~query ~budget ~jobs ~wall_ms r =
  let outcome =
    match r.dr_interrupt with
    | None -> Store.Entry.Sup (Qcache.sup_to_entry r.dr_sup)
    | Some reason ->
      Store.Entry.Unknown
        (Qcache.reason_to_entry reason, Some (Qcache.sup_to_entry r.dr_sup))
  in
  { Store.Entry.en_key = key;
    en_query = query;
    en_outcome = outcome;
    en_stats = Qcache.stats_to_entry r.dr_stats;
    en_budget = budget;
    en_prov = Qcache.provenance ~jobs ~wall_ms }

let run_all ?(jobs = 1) ?(search_jobs = 1) ?limit ?ctl ?cache specs =
  pool_map ~jobs
    (fun spec ->
      (* each worker builds its own network from the thunk, so no model
         structure is shared across domains *)
      let net = spec.qs_net () in
      let run () =
        max_delay ~jobs:search_jobs ?limit ?ctl net ~trigger:spec.qs_trigger
          ~response:spec.qs_response ~ceiling:spec.qs_ceiling
      in
      match cache with
      | None -> (spec, run ())
      | Some cache ->
        let q = spec_query spec in
        let key = Qcache.key net q in
        let requested = Qcache.entry_budget ?limit ?ctl () in
        let cached =
          Option.bind (Qcache.find cache ~requested key) (delay_of_entry spec)
        in
        (match cached with
         | Some r -> (spec, r)
         | None ->
           let t0 = Unix.gettimeofday () in
           let r = run () in
           let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
           Qcache.insert cache
             (entry_of_delay ~key ~query:(Mc.Query.to_string q)
                ~budget:requested ~jobs:search_jobs ~wall_ms r);
           (spec, r)))
    specs

let pp_delay_result ppf r =
  Fmt.pf ppf "max delay %s -> %s: %a (%d states)" r.dr_trigger r.dr_response
    Mc.Explorer.pp_sup_result r.dr_sup r.dr_stats.Mc.Explorer.visited;
  match r.dr_interrupt with
  | Some reason -> Fmt.pf ppf " [interrupted: %a]" Mc.Runctl.pp_reason reason
  | None -> ()
