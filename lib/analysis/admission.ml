type 'a t = {
  cap : int;
  q : 'a Queue.t;
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  shed : int Atomic.t;
  accepted : int Atomic.t;
}

let create ~capacity () =
  { cap = max 1 capacity;
    q = Queue.create ();
    mu = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
    shed = Atomic.make 0;
    accepted = Atomic.make 0 }

let capacity t = t.cap
let shed t = Atomic.get t.shed
let accepted t = Atomic.get t.accepted

let depth t =
  Mutex.lock t.mu;
  let n = Queue.length t.q in
  Mutex.unlock t.mu;
  n

(* Admission control is a single atomic decision under the lock: either
   the request takes a queue slot now, or the caller learns immediately
   that it must shed.  There is no blocking push — backpressure is a
   "busy" response, never a hang. *)
let try_push t v =
  Mutex.lock t.mu;
  let ok = (not t.closed) && Queue.length t.q < t.cap in
  if ok then begin
    Queue.push v t.q;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.mu;
  if not ok then Atomic.incr t.shed else Atomic.incr t.accepted;
  ok

(* Workers block here between requests.  After [close], the queue keeps
   handing out what was already admitted (so a drain can answer every
   admitted request, typically as cancelled) and returns [None] only
   once it is empty — the worker's signal to exit. *)
let pop t =
  Mutex.lock t.mu;
  let rec wait () =
    if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
    else if t.closed then None
    else begin
      Condition.wait t.nonempty t.mu;
      wait ()
    end
  in
  let r = wait () in
  Mutex.unlock t.mu;
  r

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu

let closed t =
  Mutex.lock t.mu;
  let c = t.closed in
  Mutex.unlock t.mu;
  c
