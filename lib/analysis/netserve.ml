(* The socket front end of [psv serve]: one event-loop domain owns
   every file descriptor and every connection record; a pool of worker
   domains owns nothing but the admission queue and a completion
   queue.  Workers never touch a socket, so a stalled or vanished
   client can never pin a worker — the worst a hostile client can do
   is occupy one connection slot until a deadline reaps it. *)

type addr = Tcp of string * int | Unix_path of string

type config = {
  ns_addr : addr;
  ns_serve : Serve.config;
  ns_queue : int;
  ns_max_conns : int;
  ns_max_inflight : int;
  ns_read_deadline_s : float;
  ns_max_out_bytes : int;
}

let default_config =
  { ns_addr = Tcp ("127.0.0.1", 0);
    ns_serve = Serve.default_config;
    ns_queue = 64;
    ns_max_conns = 64;
    ns_max_inflight = 16;
    ns_read_deadline_s = 10.;
    ns_max_out_bytes = 64 * 1024 * 1024 }

type stop = Drained | Error_limit

type outcome = {
  no_served : int;
  no_errors : int;
  no_shed : int;
  no_conns : int;
  no_stop : stop;
}

(* Per-connection state.  Event-loop-private: no field is ever touched
   by a worker domain, so none of it needs a lock. *)
type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;  (* partial request line *)
  mutable c_dropping : bool;  (* over-long line: discard to newline *)
  mutable c_last_data : float;  (* read-deadline base *)
  mutable c_eof : bool;  (* no more reads *)
  mutable c_closing : bool;  (* close once output drains *)
  mutable c_dead : bool;  (* reap immediately, drop output *)
  mutable c_inflight : int;  (* admitted jobs not yet routed back *)
  c_outq : string Queue.t;
  mutable c_sent : int;  (* bytes of the head chunk already written *)
  mutable c_out_bytes : int;  (* total queued output *)
}

(* What the event loop admits for a worker. *)
type job = { j_conn : int; j_item : Serve.prepared; j_t0 : float }

let set_nonblock fd = Unix.set_nonblock fd

let bind_listener addr =
  match addr with
  | Unix_path path ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       if Sys.file_exists path then Unix.unlink path;
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64;
       set_nonblock fd;
       Ok fd
     with
    | Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      Error (Printf.sprintf "cannot listen on unix:%s: %s" path
               (Unix.error_message e))
    | Sys_error msg -> Unix.close fd; Error msg)
  | Tcp (host, port) -> (
    match
      if host = "" || host = "*" then Ok Unix.inet_addr_any
      else
        try Ok (Unix.inet_addr_of_string host)
        with Failure _ -> (
          try Ok (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found | Invalid_argument _ ->
            Error (Printf.sprintf "cannot resolve host %S" host))
    with
    | Error msg -> Error msg
    | Ok ip -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (ip, port));
        Unix.listen fd 64;
        set_nonblock fd;
        Ok fd
      with Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error (Printf.sprintf "cannot listen on %s:%d: %s" host port
                 (Unix.error_message e))))

let listen cfg ?cache ?drain:dtoken ?on_ready ~load_model () =
  match bind_listener cfg.ns_addr with
  | Error _ as e -> e
  | Ok listener ->
    (* A write to a vanished client must be an error, not a signal. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let drain =
      match dtoken with Some d -> d | None -> Serve.drain ()
    in
    let scfg = cfg.ns_serve in
    let jobs = max 1 scfg.Serve.sv_jobs in
    let metrics = Metrics.create () in
    let queue : job Admission.t = Admission.create ~capacity:cfg.ns_queue () in
    (* Completions flow worker -> event loop through this queue; the
       byte written to [wake_wr] interrupts the select so a finished
       request reaches its client immediately, not at the next tick. *)
    let completions : (int * string * bool) Queue.t = Queue.create () in
    let comp_mu = Mutex.create () in
    let wake_rd, wake_wr = Unix.pipe ~cloexec:true () in
    set_nonblock wake_rd;
    set_nonblock wake_wr;
    let wake () =
      try ignore (Unix.write_substring wake_wr "x" 0 1)
      with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) -> ()
    in
    let workers_done = Atomic.make 0 in
    let worker () =
      let rec go () =
        match Admission.pop queue with
        | None ->
          Atomic.incr workers_done;
          wake ()
        | Some j ->
          let reply = Serve.evaluate scfg ?cache ~drain j.j_item in
          let doc, is_err = Serve.reply_json ?cache reply in
          Metrics.record metrics (1000. *. (Unix.gettimeofday () -. j.j_t0));
          Mutex.lock comp_mu;
          Queue.push (j.j_conn, Store.Json.to_string doc, is_err) completions;
          Mutex.unlock comp_mu;
          wake ();
          go ()
      in
      go ()
    in
    let workers = List.init jobs (fun _ -> Domain.spawn worker) in
    let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
    let next_id = ref 0 in
    let conns_total = ref 0 in
    let served = ref 0 in
    let errors = ref 0 in
    let shed_inflight = ref 0 in
    let stop_reason = ref Drained in
    let listener_open = ref true in
    let shutdown_t0 = ref nan in
    let over_error_limit () =
      match scfg.Serve.sv_max_errors with
      | None -> false
      | Some m -> !errors > m
    in
    let gauges () =
      { Metrics.g_queue_depth = Admission.depth queue;
        g_queue_capacity = Admission.capacity queue;
        g_shed = Admission.shed queue;
        g_conns_active = Hashtbl.length conns;
        g_conns_total = !conns_total }
    in
    let stats_json () = Metrics.to_json metrics ?cache ~gauges:(gauges ()) () in
    (* Everything the server says to a client funnels through here. *)
    let send conn doc is_err =
      if not conn.c_dead then begin
        let line = doc ^ "\n" in
        Queue.push line conn.c_outq;
        conn.c_out_bytes <- conn.c_out_bytes + String.length line;
        (* A reader that never drains its side cannot hold unbounded
           server memory: past the cap the connection is dropped. *)
        if conn.c_out_bytes > cfg.ns_max_out_bytes then conn.c_dead <- true
      end;
      incr served;
      Metrics.incr_answered metrics;
      if is_err then begin
        incr errors;
        Metrics.incr_errors metrics;
        if over_error_limit () then begin
          stop_reason := Error_limit;
          Serve.request_drain drain
        end
      end
    in
    let handle_line id conn line =
      let line = String.trim line in
      if line <> "" then begin
        Metrics.incr_received metrics;
        let t0 = Unix.gettimeofday () in
        match Serve.prepare scfg ?cache ~load_model line with
        | `Run ri as item ->
          (* Per-client fairness: one connection may only occupy a
             bounded share of the admission queue.  Past its cap the
             client gets the same diagnosed busy frame a full queue
             would produce — other clients' slots stay reachable. *)
          if conn.c_inflight >= cfg.ns_max_inflight then begin
            incr shed_inflight;
            Metrics.incr_busy metrics;
            send conn
              (Store.Json.to_string
                 (Serve.busy_json ?cache
                    ~reason:
                      "server busy: per-connection in-flight limit reached"
                    ri.Serve.ri_id))
              false
          end
          else if
            Admission.try_push queue { j_conn = id; j_item = item; j_t0 = t0 }
          then conn.c_inflight <- conn.c_inflight + 1
          else begin
            Metrics.incr_busy metrics;
            send conn
              (Store.Json.to_string
                 (Serve.busy_json ?cache ri.Serve.ri_id))
              false
          end
        | (`Err _ | `Hit _ | `Stats _) as item ->
          (* Cache hits, immediate errors and stats frames are answered
             on the event loop: no queue slot, no worker, microseconds
             of latency. *)
          let reply = Serve.evaluate scfg ?cache ~drain item in
          let doc, is_err = Serve.reply_json ?cache ~stats_json reply in
          Metrics.record metrics (1000. *. (Unix.gettimeofday () -. t0));
          send conn (Store.Json.to_string doc) is_err
      end
    in
    let feed id conn bytes n =
      let cap = scfg.Serve.sv_max_request_bytes in
      for i = 0 to n - 1 do
        match Bytes.get bytes i with
        | '\n' ->
          let line = Buffer.contents conn.c_buf in
          Buffer.clear conn.c_buf;
          conn.c_dropping <- false;
          handle_line id conn line
        | c ->
          if not conn.c_dropping then
            if Buffer.length conn.c_buf > cap then conn.c_dropping <- true
              (* the cap+1 bytes kept are enough for the line validator
                 to reject the request as over-long; the rest of the
                 line is discarded, holding memory bounded *)
            else Buffer.add_char conn.c_buf c
      done
    in
    let read_conn id conn =
      let buf = Bytes.create 65536 in
      let rec go () =
        match Unix.read conn.c_fd buf 0 (Bytes.length buf) with
        | 0 -> conn.c_eof <- true
        | n ->
          conn.c_last_data <- Unix.gettimeofday ();
          feed id conn buf n;
          if not conn.c_dead then go ()
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          ()
        | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
          conn.c_dead <- true
      in
      go ()
    in
    let flush_conn conn =
      let rec go () =
        if (not conn.c_dead) && not (Queue.is_empty conn.c_outq) then begin
          let chunk = Queue.peek conn.c_outq in
          let len = String.length chunk - conn.c_sent in
          match Unix.write_substring conn.c_fd chunk conn.c_sent len with
          | n ->
            if n = len then begin
              ignore (Queue.pop conn.c_outq);
              conn.c_out_bytes <- conn.c_out_bytes - String.length chunk;
              conn.c_sent <- 0;
              go ()
            end
            else conn.c_sent <- conn.c_sent + n
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
            ->
            ()
          | exception
              Unix.Unix_error ((EPIPE | ECONNRESET | EBADF | ENOTCONN), _, _)
            ->
            conn.c_dead <- true
        end
      in
      go ()
    in
    let accept_conns () =
      let rec go () =
        match Unix.accept ~cloexec:true listener with
        | fd, _peer ->
          set_nonblock fd;
          (match cfg.ns_addr with
          | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true
                       with Unix.Unix_error _ -> ())
          | Unix_path _ -> ());
          incr next_id;
          incr conns_total;
          let conn =
            { c_fd = fd;
              c_buf = Buffer.create 256;
              c_dropping = false;
              c_last_data = Unix.gettimeofday ();
              c_eof = false;
              c_closing = false;
              c_dead = false;
              c_inflight = 0;
              c_outq = Queue.create ();
              c_sent = 0;
              c_out_bytes = 0 }
          in
          Hashtbl.replace conns !next_id conn;
          (* Over the connection cap the client still gets an answer —
             a busy frame and an orderly close, never a silent reset. *)
          if Hashtbl.length conns > cfg.ns_max_conns then begin
            Metrics.incr_busy metrics;
            send conn
              (Store.Json.to_string
                 (Serve.busy_json ?cache
                    ~reason:"server busy: connection limit reached" Null))
              false;
            conn.c_eof <- true;
            conn.c_closing <- true
          end;
          go ()
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          ()
        | exception Unix.Unix_error (_, _, _) -> ()
      in
      go ()
    in
    let route_completions () =
      Mutex.lock comp_mu;
      let pending = Queue.create () in
      Queue.transfer completions pending;
      Mutex.unlock comp_mu;
      Queue.iter
        (fun (id, doc, is_err) ->
          match Hashtbl.find_opt conns id with
          | None ->
            (* client vanished mid-evaluation; the verdict still counts *)
            incr served;
            Metrics.incr_answered metrics;
            if is_err then begin
              incr errors;
              Metrics.incr_errors metrics
            end
          | Some conn ->
            conn.c_inflight <- conn.c_inflight - 1;
            send conn doc is_err)
        pending
    in
    let begin_shutdown () =
      if Float.is_nan !shutdown_t0 then begin
        shutdown_t0 := Unix.gettimeofday ();
        if !listener_open then begin
          listener_open := false;
          (try Unix.close listener with Unix.Unix_error _ -> ())
        end;
        (* Stop reading: admitted work is answered (cancelled work as
           unknown/cancelled), half-typed requests are abandoned. *)
        Hashtbl.iter (fun _ c -> c.c_eof <- true) conns;
        Admission.close queue
      end
    in
    let drain_wake () =
      let buf = Bytes.create 512 in
      let rec go () =
        match Unix.read wake_rd buf 0 512 with
        | 0 -> ()
        | _ -> go ()
        | exception Unix.Unix_error _ -> ()
      in
      go ()
    in
    let reap () =
      let dead = ref [] in
      Hashtbl.iter
        (fun id c ->
          let finished =
            (c.c_eof || c.c_closing)
            && c.c_inflight = 0
            && Queue.is_empty c.c_outq
          in
          if c.c_dead || finished then dead := (id, c) :: !dead)
        conns;
      List.iter
        (fun (id, c) ->
          (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
          Hashtbl.remove conns id)
        !dead
    in
    (match on_ready with
    | None -> ()
    | Some f -> f (Unix.getsockname listener));
    let rec loop () =
      if Serve.draining drain then begin_shutdown ();
      let shutting_down = not (Float.is_nan !shutdown_t0) in
      let reads =
        let base = [ wake_rd ] in
        let base =
          if !listener_open && not shutting_down then listener :: base
          else base
        in
        Hashtbl.fold
          (fun _ c acc ->
            if (not c.c_eof) && not c.c_dead then c.c_fd :: acc else acc)
          conns base
      in
      let writes =
        Hashtbl.fold
          (fun _ c acc ->
            if (not c.c_dead) && not (Queue.is_empty c.c_outq) then
              c.c_fd :: acc
            else acc)
          conns []
      in
      let rd, wr, _ =
        try Unix.select reads writes [] 0.05
        with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
      in
      if List.memq wake_rd rd then drain_wake ();
      route_completions ();
      if !listener_open && List.memq listener rd then accept_conns ();
      Hashtbl.iter
        (fun id c -> if List.memq c.c_fd rd then read_conn id c)
        conns;
      (* completions may have landed while we were reading *)
      route_completions ();
      (* A half-received request line that stops making progress is a
         slowloris; past the deadline it gets a diagnosed error frame
         and the connection is retired. *)
      let now = Unix.gettimeofday () in
      Hashtbl.iter
        (fun _ c ->
          if
            (not c.c_eof) && (not c.c_dead)
            && (Buffer.length c.c_buf > 0 || c.c_dropping)
            && now -. c.c_last_data > cfg.ns_read_deadline_s
          then begin
            let doc, is_err =
              Serve.reply_json ?cache
                (`Err
                  ( Store.Json.Null,
                    Printf.sprintf
                      "read deadline exceeded (%.3gs): partial request line \
                       dropped"
                      cfg.ns_read_deadline_s,
                    None ))
            in
            send c (Store.Json.to_string doc) is_err;
            c.c_eof <- true;
            c.c_closing <- true
          end)
        conns;
      (* Eager flush: answers leave on the tick that produced them;
         [wr] from the select only matters for partially-written
         chunks, and those are retried here too. *)
      ignore wr;
      Hashtbl.iter (fun _ c -> flush_conn c) conns;
      reap ();
      if Serve.draining drain then begin_shutdown ();
      let shutting_down = not (Float.is_nan !shutdown_t0) in
      if
        shutting_down
        && Atomic.get workers_done = jobs
        && (Hashtbl.length conns = 0
           || Unix.gettimeofday () -. !shutdown_t0 > 5.0)
      then ()
      else loop ()
    in
    Fun.protect
      ~finally:(fun () ->
        if !listener_open then (
          try Unix.close listener with Unix.Unix_error _ -> ());
        Hashtbl.iter
          (fun _ c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
          conns;
        Hashtbl.reset conns;
        Admission.close queue;
        List.iter Domain.join workers;
        (try Unix.close wake_rd with Unix.Unix_error _ -> ());
        (try Unix.close wake_wr with Unix.Unix_error _ -> ());
        match cfg.ns_addr with
        | Unix_path p -> ( try Unix.unlink p with _ -> ())
        | Tcp _ -> ())
      (fun () ->
        loop ();
        Ok
          { no_served = !served;
            no_errors = !errors;
            no_shed = Admission.shed queue + !shed_inflight;
            no_conns = !conns_total;
            no_stop = !stop_reason })
