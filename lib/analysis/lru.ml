type ('k, 'v) t = {
  cap : int;
  tbl : ('k, 'v * int ref) Hashtbl.t;
  mutable tick : int;
  mu : Mutex.t;
}

let create ~capacity () =
  { cap = max 1 capacity; tbl = Hashtbl.create 16; tick = 0; mu = Mutex.create () }

let capacity t = t.cap

let length t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mu;
  n

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Eviction scans for the stalest entry — O(capacity), and capacity is
   small by construction (a handful of parsed model files), so a scan
   beats maintaining an intrusive recency list. *)
let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun k (_, stamp) acc ->
        match acc with
        | Some (_, best) when best <= !stamp -> acc
        | _ -> Some (k, !stamp))
      t.tbl None
  in
  match victim with Some (k, _) -> Hashtbl.remove t.tbl k | None -> ()

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some (v, stamp) ->
        t.tick <- t.tick + 1;
        stamp := t.tick;
        Some v
      | None -> None)

let add t k v =
  locked t (fun () ->
      if not (Hashtbl.mem t.tbl k) then begin
        if Hashtbl.length t.tbl >= t.cap then evict_oldest t;
        t.tick <- t.tick + 1;
        Hashtbl.replace t.tbl k (v, ref t.tick)
      end)

let find_or_add t k f =
  match find t k with
  | Some v -> v
  | None ->
    (* compute outside the lock: a slow [f] (a model parse) must not
       block concurrent lookups.  Two racing misses both compute; the
       second [add] is a no-op, which is harmless for a pure loader. *)
    let v = f k in
    add t k v;
    v
