(** The supervised batch query service behind [psv serve].

    One line-delimited JSON request per line — [{"id": .., "model":
    "M.xta", "query": ".."}] — a blank line (or EOF) flushes the batch:
    store hits answered instantly, misses fanned out over the domain
    pool, one JSON response line each, in request order.

    The loop is written against injectable [read_line]/[write_line]/
    [load_model] callbacks so the chaos tests drive it entirely
    in-process; the CLI supplies stdin/stdout and the filesystem.

    {b Supervision guarantees.}
    - A malformed, over-long, or invalid-UTF-8 request line yields a
      well-formed JSON error response, never a crash and never invalid
      UTF-8 output.
    - A worker exception during evaluation is confined to its request:
      the response is a JSON error object carrying the exception (and
      backtrace when the runtime recorded one); remaining requests are
      still answered.
    - A per-request deadline ([sv_request_timeout]) caps each
      evaluation's wall clock via the run-governance budget: an overrun
      is answered as a diagnosed [unknown]/[time-budget] outcome.
    - [sv_max_errors] is a trip wire: once more than that many error
      responses have been emitted, the loop finishes the current batch
      and stops ({!Error_limit}).
    - A {!drain} request (SIGTERM/SIGINT in the CLI) stops reading new
      input, cancels in-flight evaluations, and flushes what was
      already read — partial output is valid LDJSON. *)

type config = {
  sv_jobs : int;  (** domain-pool width for cache misses *)
  sv_budget : Mc.Runctl.budget;  (** per-request resource budget *)
  sv_request_timeout : float option;
      (** per-request wall-clock deadline, seconds; composes with
          [sv_budget.b_time_s] by [min] *)
  sv_max_errors : int option;  (** stop after this many error responses *)
  sv_max_request_bytes : int;  (** longest accepted request line *)
}

val default_config : config
(** 1 job, no budget, no timeout, no error limit, 1 MiB line cap. *)

(** Why the loop returned. *)
type stop =
  | Eof  (** input exhausted *)
  | Drained  (** a drain was requested; already-read requests answered *)
  | Error_limit  (** [sv_max_errors] exceeded *)

type outcome = {
  sv_served : int;  (** responses written, errors included *)
  sv_errors : int;  (** error responses among them *)
  sv_stop : stop;
}

(** {2 Graceful drain} *)

(** A drain token connects a signal handler (or a test) to the loop:
    requesting a drain stops further reads and cancels the in-flight
    evaluations' governance tokens.  All state is atomic — safe to
    trigger from a signal handler on any domain. *)
type drain

val drain : unit -> drain
val draining : drain -> bool

val request_drain : drain -> unit
(** Idempotent; safe from a signal handler. *)

val register_ctl : drain -> Mc.Runctl.t -> unit
(** Attach an in-flight evaluation's governance token to the drain
    token: a drain request cancels it.  If the drain already fired the
    token is cancelled immediately. *)

val unregister_ctl : drain -> Mc.Runctl.t -> unit
(** Detach a finished evaluation's token (physical equality) so a
    long-lived listener does not accumulate dead tokens. *)

(** {2 Input hygiene} *)

val utf8_valid : string -> bool

val sanitize_utf8 : string -> string
(** Replace every byte that is not part of a valid UTF-8 sequence with
    U+FFFD, so error messages that echo request fragments can never
    poison the LDJSON output stream. *)

val fd_line_reader :
  ?poll_s:float ->
  ?cap_bytes:int ->
  draining:(unit -> bool) ->
  Unix.file_descr ->
  unit ->
  string option
(** A [read_line] callback over a file descriptor that polls the drain
    flag every [poll_s] seconds (default 0.1) while waiting for input,
    so a drain request interrupts a blocking read.  [None] on EOF or
    drain.  Lines longer than [cap_bytes] (default 8 MiB) are truncated
    to the cap while the remainder is consumed and discarded — the
    over-long request is then rejected by the loop's line validation,
    with bounded memory. *)

(** {2 Wire protocol}

    The request/evaluate/render pipeline, shared between the batch loop
    ({!run}) and the socket listener ({!Netserve}) so both front ends
    render byte-identical response documents. *)

(** A validated cache-miss request, ready for a worker. *)
type run_item = {
  ri_id : Store.Json.t;
  ri_net : Ta.Model.network;
  ri_query : Mc.Query.t;
  ri_limit : int option;
  ri_key : Store.D128.t;
  ri_budget : Store.Entry.budget;
}

(** The outcome of parsing + cache lookup: an immediate error, a cache
    hit, a stats request, or work for the pool. *)
type prepared =
  [ `Err of Store.Json.t * string * string option
  | `Hit of Store.Json.t * Store.Entry.t
  | `Run of run_item
  | `Stats of Store.Json.t ]

(** A completed request, ready to render. *)
type reply =
  [ `Err of Store.Json.t * string * string option
  | `Hit of Store.Json.t * Store.Entry.t
  | `Ok of Store.Json.t * Mc.Query.result
  | `Stats of Store.Json.t ]

val effective_budget : config -> Mc.Runctl.budget
(** [sv_budget] with [b_time_s] tightened to [sv_request_timeout]. *)

val prepare :
  config ->
  ?cache:Qcache.t ->
  load_model:(string -> (Ta.Model.network, string) result) ->
  string ->
  prepared
(** Validate, parse, resolve the model, parse the query, and consult
    the cache.  Never raises; every failure is an [`Err] with the id
    when one was recoverable. *)

val evaluate : config -> ?cache:Qcache.t -> ?drain:drain -> prepared -> reply
(** Run a [`Run] item under a fresh governance token (registered with
    [drain] for the duration); pass everything else through.  Worker
    exceptions are confined to the reply. *)

val reply_json :
  ?cache:Qcache.t ->
  ?stats_json:(unit -> Store.Json.t) ->
  reply ->
  Store.Json.t * bool
(** Render a reply document; [true] when it is an error response (for
    the [sv_max_errors] trip wire).  [stats_json] supplies the body of
    a [`Stats] reply; without it a minimal cache-only body is used. *)

val busy_json :
  ?cache:Qcache.t -> ?reason:string -> Store.Json.t -> Store.Json.t
(** The shed response: the admission queue was full (default [reason])
    and the request was refused, diagnosed immediately rather than
    left to hang. *)

(** {2 The loop} *)

val run :
  config ->
  ?cache:Qcache.t ->
  ?drain:drain ->
  load_model:(string -> (Ta.Model.network, string) result) ->
  read_line:(unit -> string option) ->
  write_line:(string -> unit) ->
  unit ->
  outcome
(** [run cfg ~load_model ~read_line ~write_line ()] serves until
    [read_line] returns [None], the drain token fires, or the error
    trip wire trips.  [write_line] receives one complete JSON document
    per call (no trailing newline).  When [cache] is degraded
    (breaker tripped), responses carry a ["degraded": true] field and
    the CLI maps the completion to its documented exit code. *)
