(** The socket front end of [psv serve]: a persistent listener (TCP or
    Unix-domain) sharing one warm store and one worker-domain pool
    across many concurrent client connections.

    {b Architecture.}  A single event-loop domain owns the listener,
    every connection, and every buffer; worker domains own nothing but
    the bounded admission queue ({!Admission}) and a completion queue.
    Workers never touch a socket: a stalled, slow, or vanished client
    can at worst occupy a connection slot until a deadline reaps it —
    it can never pin a worker or block another client's answer.

    {b Wire protocol.}  Same LDJSON request/response documents as the
    stdin/stdout batch mode, rendered by the shared {!Serve.prepare} /
    {!Serve.evaluate} / {!Serve.reply_json} pipeline, so a request
    that completes returns byte-identical JSON in either mode.  Two
    listener-only frames exist: [{"status":"busy", ...}] when the
    admission queue (or connection limit) sheds a request, and
    [{"status":"stats", ...}] answering [{"stats": true}] probes with
    live counters, queue gauges, latency percentiles and breaker
    state.

    {b Overload.}  A full admission queue never blocks and never
    hangs a client: the request is refused with a diagnosed busy frame
    immediately.  Output to each client is capped ([ns_max_out_bytes])
    so a reader that never drains cannot hold server memory.

    {b Drain.}  When the drain token fires (SIGTERM/SIGINT in the
    CLI, or the [sv_max_errors] trip wire), the listener closes, reads
    stop, in-flight evaluations are cancelled (answered as
    [unknown]/[cancelled], never written to the store — the store
    stays fsck-clean), queued-but-unstarted work is answered the same
    way, pending output is flushed, and the loop exits. *)

type addr =
  | Tcp of string * int
      (** host (name, dotted quad, [""]/["*"] for any) and port;
          port [0] binds an ephemeral port — [on_ready] reports it *)
  | Unix_path of string  (** Unix-domain socket path, replaced if stale *)

type config = {
  ns_addr : addr;
  ns_serve : Serve.config;  (** jobs, budget, timeout, error trip wire *)
  ns_queue : int;  (** admission queue capacity *)
  ns_max_conns : int;  (** concurrent connection cap *)
  ns_max_inflight : int;
      (** per-connection cap on admitted-but-unanswered requests: one
          client can no longer fill the whole admission queue; its
          excess requests get the diagnosed busy frame immediately
          while other clients' slots stay reachable *)
  ns_read_deadline_s : float;  (** max age of a partial request line *)
  ns_max_out_bytes : int;  (** per-connection pending-output cap *)
}

val default_config : config
(** Loopback TCP on an ephemeral port, queue 64, 64 connections, 16
    in-flight requests per connection, 10 s read deadline, 64 MiB
    output cap. *)

type stop = Drained | Error_limit

type outcome = {
  no_served : int;  (** response frames produced, busy/error included *)
  no_errors : int;  (** error frames among them *)
  no_shed : int;
      (** requests refused by the admission queue or the per-connection
          in-flight cap *)
  no_conns : int;  (** connections accepted over the lifetime *)
  no_stop : stop;
}

val listen :
  config ->
  ?cache:Qcache.t ->
  ?drain:Serve.drain ->
  ?on_ready:(Unix.sockaddr -> unit) ->
  load_model:(string -> (Ta.Model.network, string) result) ->
  unit ->
  (outcome, string) result
(** Bind, listen, and serve until the drain token fires.  [Error msg]
    only for listener setup failures (bind/resolve); everything after
    a successful bind is confined per-request or per-connection.
    [on_ready] runs with the bound address (the real port when an
    ephemeral one was requested) just before the loop starts —
    tests and the CLI use it to learn where to connect. *)
