type t = {
  m_now : unit -> float;
  m_start : float;
  m_received : int Atomic.t;
  m_answered : int Atomic.t;
  m_errors : int Atomic.t;
  m_busy : int Atomic.t;
  (* latency ring: the last [Array.length m_ring] request latencies in
     milliseconds.  A mutex guards index + slots; recording is a few
     nanoseconds of critical section, far below the cost of the request
     it measures. *)
  m_ring : float array;
  m_count : int ref;
  m_mu : Mutex.t;
}

let create ?(ring = 1024) ?(now = Unix.gettimeofday) () =
  { m_now = now;
    m_start = now ();
    m_received = Atomic.make 0;
    m_answered = Atomic.make 0;
    m_errors = Atomic.make 0;
    m_busy = Atomic.make 0;
    m_ring = Array.make (max 16 ring) 0.;
    m_count = ref 0;
    m_mu = Mutex.create () }

let incr_received t = Atomic.incr t.m_received
let incr_answered t = Atomic.incr t.m_answered
let incr_errors t = Atomic.incr t.m_errors
let incr_busy t = Atomic.incr t.m_busy

let received t = Atomic.get t.m_received
let answered t = Atomic.get t.m_answered
let errors t = Atomic.get t.m_errors
let busy t = Atomic.get t.m_busy

let record t ms =
  Mutex.lock t.m_mu;
  t.m_ring.(!(t.m_count) mod Array.length t.m_ring) <- ms;
  incr t.m_count;
  Mutex.unlock t.m_mu

(* Nearest-rank percentile over the retained window.  The copy is at
   most the ring size, taken under the lock; the sort happens outside
   it. *)
let snapshot t =
  Mutex.lock t.m_mu;
  let n = min !(t.m_count) (Array.length t.m_ring) in
  let copy = Array.sub t.m_ring 0 n in
  let total = !(t.m_count) in
  Mutex.unlock t.m_mu;
  Array.sort compare copy;
  (copy, total)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let i = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) i))

let percentiles t =
  let sorted, _ = snapshot t in
  if Array.length sorted = 0 then None
  else
    Some
      (percentile sorted 0.50, percentile sorted 0.90, percentile sorted 0.99)

type gauges = {
  g_queue_depth : int;
  g_queue_capacity : int;
  g_shed : int;
  g_conns_active : int;
  g_conns_total : int;
}

(* round to 1/1000 ms so stats frames stay compact and stable-width *)
let ms v = Store.Json.Float (Float.round (v *. 1000.) /. 1000.)

let to_json t ?cache ?gauges () =
  let open Store.Json in
  let sorted, total = snapshot t in
  let latency =
    if Array.length sorted = 0 then [ ("count", Int 0) ]
    else
      [ ("count", Int total);
        ("p50", ms (percentile sorted 0.50));
        ("p90", ms (percentile sorted 0.90));
        ("p99", ms (percentile sorted 0.99)) ]
  in
  let base =
    [ ("uptime_s", ms (t.m_now () -. t.m_start));
      ( "requests",
        Obj
          [ ("received", Int (received t));
            ("answered", Int (answered t));
            ("errors", Int (errors t));
            ("busy", Int (busy t)) ] );
      ("latency_ms", Obj latency) ]
  in
  let base =
    match gauges with
    | None -> base
    | Some g ->
      base
      @ [ ( "queue",
            Obj
              [ ("depth", Int g.g_queue_depth);
                ("capacity", Int g.g_queue_capacity);
                ("shed", Int g.g_shed) ] );
          ( "connections",
            Obj
              [ ("active", Int g.g_conns_active);
                ("total", Int g.g_conns_total) ] ) ]
  in
  let base =
    match cache with
    | None -> base
    | Some c -> base @ [ ("cache", Qcache.stats_json c) ]
  in
  Obj base
