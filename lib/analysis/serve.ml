type config = {
  sv_jobs : int;
  sv_budget : Mc.Runctl.budget;
  sv_request_timeout : float option;
  sv_max_errors : int option;
  sv_max_request_bytes : int;
}

let default_config =
  { sv_jobs = 1;
    sv_budget = Mc.Runctl.no_budget;
    sv_request_timeout = None;
    sv_max_errors = None;
    sv_max_request_bytes = 1 lsl 20 }

type stop = Eof | Drained | Error_limit

type outcome = { sv_served : int; sv_errors : int; sv_stop : stop }

(* --- graceful drain ------------------------------------------------------ *)

(* The flag and the in-flight ctl list are atomic so [request_drain]
   may run inside a signal handler while worker domains evaluate: it
   sets the flag (stops further reads) and cancels every registered
   governance token (stops in-flight searches at their next poll). *)
type drain = {
  dr_flag : bool Atomic.t;
  dr_ctls : Mc.Runctl.t list Atomic.t;
}

let drain () = { dr_flag = Atomic.make false; dr_ctls = Atomic.make [] }
let draining d = Atomic.get d.dr_flag

let request_drain d =
  Atomic.set d.dr_flag true;
  List.iter Mc.Runctl.cancel (Atomic.get d.dr_ctls)

let register_ctl d ctl =
  let rec add () =
    let cur = Atomic.get d.dr_ctls in
    if not (Atomic.compare_and_set d.dr_ctls cur (ctl :: cur)) then add ()
  in
  add ();
  (* drain may have fired between the flag check and registration;
     cancelling here closes that race *)
  if Atomic.get d.dr_flag then Mc.Runctl.cancel ctl

(* Removal by physical equality: a long-lived listener evaluates an
   unbounded stream of requests against one drain token, so finished
   tokens must leave the list or it leaks. *)
let unregister_ctl d ctl =
  let rec remove () =
    let cur = Atomic.get d.dr_ctls in
    let next = List.filter (fun c -> c != ctl) cur in
    if not (Atomic.compare_and_set d.dr_ctls cur next) then remove ()
  in
  remove ()

(* --- input hygiene ------------------------------------------------------- *)

let utf8_seq_len c =
  if c < 0x80 then 1
  else if c land 0xE0 = 0xC0 && c >= 0xC2 then 2
  else if c land 0xF0 = 0xE0 then 3
  else if c land 0xF8 = 0xF0 && c <= 0xF4 then 4
  else 0

(* [Some (i + len)] when a valid sequence starts at [i], rejecting
   overlong encodings, surrogates and values above U+10FFFF. *)
let utf8_step s i =
  let n = String.length s in
  let c = Char.code s.[i] in
  let len = utf8_seq_len c in
  if len = 0 || i + len > n then None
  else begin
    let cont k = Char.code s.[i + k] land 0xC0 = 0x80 in
    let conts_ok =
      (len < 2 || cont 1) && (len < 3 || cont 2) && (len < 4 || cont 3)
    in
    if not conts_ok then None
    else
      let range_ok =
        match len with
        | 1 | 2 -> true
        | 3 ->
          let c1 = Char.code s.[i + 1] in
          not (c = 0xE0 && c1 < 0xA0) && not (c = 0xED && c1 >= 0xA0)
        | _ ->
          let c1 = Char.code s.[i + 1] in
          not (c = 0xF0 && c1 < 0x90) && not (c = 0xF4 && c1 >= 0x90)
      in
      if range_ok then Some (i + len) else None
  end

let utf8_valid s =
  let n = String.length s in
  let rec go i =
    if i >= n then true
    else match utf8_step s i with Some j -> go j | None -> false
  in
  go 0

let replacement = "\xEF\xBF\xBD" (* U+FFFD *)

let sanitize_utf8 s =
  if utf8_valid s then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i < n then
        match utf8_step s i with
        | Some j ->
          Buffer.add_substring b s i (j - i);
          go j
        | None ->
          Buffer.add_string b replacement;
          go (i + 1)
    in
    go 0;
    Buffer.contents b
  end

(* --- fd line reader ------------------------------------------------------ *)

let fd_line_reader ?(poll_s = 0.1) ?(cap_bytes = 8 lsl 20) ~draining fd =
  let acc = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let pending : string Queue.t = Queue.create () in
  let eof = ref false in
  let push_acc () =
    Queue.push (Buffer.contents acc) pending;
    Buffer.clear acc
  in
  let consume n =
    for i = 0 to n - 1 do
      let c = Bytes.get chunk i in
      if c = '\n' then push_acc ()
      else if Buffer.length acc < cap_bytes then Buffer.add_char acc c
      (* beyond the cap: swallow bytes until the newline; the truncated
         line is over [sv_max_request_bytes] and will be rejected *)
    done
  in
  fun () ->
    let rec next () =
      if not (Queue.is_empty pending) then Some (Queue.pop pending)
      else if !eof then
        if Buffer.length acc > 0 then begin
          push_acc ();
          next ()
        end
        else None
      else if draining () then None
      else begin
        match Unix.select [ fd ] [] [] poll_s with
        | [], _, _ -> next ()
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 ->
            eof := true;
            next ()
          | n ->
            consume n;
            next ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
      end
    in
    next ()

(* --- the wire protocol --------------------------------------------------- *)

(* The request/evaluate/render pipeline is shared verbatim between the
   stdin/stdout batch loop below and the socket listener
   ({!Netserve}): a request that completes must render the same
   response document no matter which front end carried it. *)

type run_item = {
  ri_id : Store.Json.t;
  ri_net : Ta.Model.network;
  ri_query : Mc.Query.t;
  ri_limit : int option;
  ri_key : Store.D128.t;
  ri_budget : Store.Entry.budget;
}

type prepared =
  [ `Err of Store.Json.t * string * string option
  | `Hit of Store.Json.t * Store.Entry.t
  | `Run of run_item
  | `Stats of Store.Json.t ]

type reply =
  [ `Err of Store.Json.t * string * string option
  | `Hit of Store.Json.t * Store.Entry.t
  | `Ok of Store.Json.t * Mc.Query.result
  | `Stats of Store.Json.t ]

let effective_budget cfg =
  match cfg.sv_request_timeout with
  | None -> cfg.sv_budget
  | Some tmo ->
    let t =
      match cfg.sv_budget.Mc.Runctl.b_time_s with
      | None -> tmo
      | Some b -> Float.min b tmo
    in
    { cfg.sv_budget with Mc.Runctl.b_time_s = Some t }

let str_field name j =
  match Option.bind (Store.Json.member name j) Store.Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "request needs a %S string field" name)

(* Validation before parsing: an over-long or non-UTF-8 line gets a
   JSON error response (id unknowable), and whatever fragment of it an
   error message echoes is sanitized so the output stream stays valid
   UTF-8 LDJSON. *)
let validate cfg line =
  let n = String.length line in
  if n > cfg.sv_max_request_bytes then
    Error
      (Printf.sprintf "request line too long (%d bytes; limit %d)" n
         cfg.sv_max_request_bytes)
  else if not (utf8_valid line) then Error "request line is not valid UTF-8"
  else Ok ()

let prepare cfg ?cache ~load_model line : prepared =
  match validate cfg line with
  | Error msg -> `Err (Store.Json.Null, msg, None)
  | Ok () -> (
    match Store.Json.parse line with
    | Error msg -> `Err (Store.Json.Null, "bad request: " ^ msg, None)
    | Ok j ->
      let id =
        Option.value (Store.Json.member "id" j) ~default:Store.Json.Null
      in
      if Store.Json.member "stats" j = Some (Store.Json.Bool true) then
        `Stats id
      else (
        match
          Result.bind (str_field "model" j) (fun model ->
              Result.map (fun query -> (model, query)) (str_field "query" j))
        with
        | Error msg -> `Err (id, msg, None)
        | Ok (model, query) -> (
          let limit =
            Option.bind (Store.Json.member "limit" j) Store.Json.to_int
          in
          match load_model model with
          | Error msg -> `Err (id, msg, None)
          | exception exn ->
            `Err (id, Printexc.to_string exn, Some (Printexc.get_backtrace ()))
          | Ok net -> (
            match Mc.Query.parse query with
            | Error msg -> `Err (id, "query: " ^ msg, None)
            | Ok q -> (
              let budget = effective_budget cfg in
              let requested =
                { Store.Entry.bg_limit =
                    Option.value limit ~default:Mc.Explorer.default_limit;
                  bg_states = budget.Mc.Runctl.b_states;
                  bg_time_s = budget.Mc.Runctl.b_time_s;
                  bg_mem_bytes = budget.Mc.Runctl.b_mem_bytes }
              in
              let item =
                { ri_id = id;
                  ri_net = net;
                  ri_query = q;
                  ri_limit = limit;
                  ri_key = Qcache.key net q;
                  ri_budget = requested }
              in
              match cache with
              | Some c -> (
                match Qcache.find c ~requested item.ri_key with
                | Some e -> `Hit (id, e)
                | None -> `Run item)
              | None -> `Run item)))))

(* Worker-side evaluation.  Any exception — a crashing predicate, a
   model inconsistency, anything — is confined to this request; the
   diagnosis (with backtrace when recorded) rides in the response's
   error object.  A [Crash]-downgraded parallel search arrives here as
   a normal Unknown outcome, not an exception. *)
let evaluate cfg ?cache ?drain:dtoken (item : prepared) : reply =
  match item with
  | `Err _ | `Hit _ | `Stats _ as r -> (r :> reply)
  | `Run ri -> (
    let ctl = Mc.Runctl.create ~budget:(effective_budget cfg) () in
    (match dtoken with None -> () | Some d -> register_ctl d ctl);
    let finish (r : reply) =
      (match dtoken with None -> () | Some d -> unregister_ctl d ctl);
      r
    in
    match
      let t0 = Unix.gettimeofday () in
      let r = Mc.Query.eval ~ctl ?limit:ri.ri_limit ri.ri_net ri.ri_query in
      let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
      (r, wall_ms)
    with
    | r, wall_ms ->
      (match cache with
      | Some c ->
        Qcache.insert c
          { Store.Entry.en_key = ri.ri_key;
            en_query = Mc.Query.to_string ri.ri_query;
            en_outcome = Qcache.outcome_to_entry r.Mc.Query.res_outcome;
            en_stats = Qcache.stats_to_entry r.Mc.Query.res_stats;
            en_budget = ri.ri_budget;
            en_prov = Qcache.provenance ~jobs:1 ~wall_ms }
      | None -> ());
      finish (`Ok (ri.ri_id, r))
    | exception Not_found ->
      finish (`Err (ri.ri_id, "unknown process, location or variable", None))
    | exception exn ->
      finish
        (`Err
          (ri.ri_id, Printexc.to_string exn, Some (Printexc.get_backtrace ()))))

let with_degraded ?cache fields =
  let degraded =
    match cache with Some c -> Qcache.degraded c | None -> false
  in
  if degraded then fields @ [ ("degraded", Store.Json.Bool true) ] else fields

let reply_json ?cache ?stats_json (reply : reply) =
  let open Store.Json in
  match reply with
  | `Err (id, msg, bt) ->
    let base =
      [ ("id", id);
        ("status", String "error");
        ("error", String (sanitize_utf8 msg)) ]
    in
    let base =
      match bt with
      | Some b when String.trim b <> "" ->
        base @ [ ("backtrace", String (sanitize_utf8 b)) ]
      | _ -> base
    in
    (Obj (with_degraded ?cache base), true)
  | `Hit (id, (e : Store.Entry.t)) ->
    ( Obj
        (with_degraded ?cache
           [ ("id", id);
             ("status", String "ok");
             ("cached", Bool true);
             ("outcome", Store.Entry.outcome_to_json e.Store.Entry.en_outcome);
             ("stats", Store.Entry.stats_to_json e.Store.Entry.en_stats) ]),
      false )
  | `Ok (id, (r : Mc.Query.result)) ->
    ( Obj
        (with_degraded ?cache
           [ ("id", id);
             ("status", String "ok");
             ("cached", Bool false);
             ( "outcome",
               Store.Entry.outcome_to_json
                 (Qcache.outcome_to_entry r.Mc.Query.res_outcome) );
             ( "stats",
               Store.Entry.stats_to_json
                 (Qcache.stats_to_entry r.Mc.Query.res_stats) ) ]),
      false )
  | `Stats id ->
    let body =
      match stats_json with
      | Some f -> f ()
      | None -> (
        match cache with
        | Some c -> Obj [ ("cache", Qcache.stats_json c) ]
        | None -> Obj [])
    in
    ( Obj
        (with_degraded ?cache
           [ ("id", id); ("status", String "stats"); ("stats", body) ]),
      false )

(* The shed response of the admission plane: the queue was full, the
   request was never admitted, and the client learns so immediately —
   a 429, not a hang. *)
let busy_json ?cache ?(reason = "server busy: request queue full") id =
  let open Store.Json in
  Obj
    (with_degraded ?cache
       [ ("id", id); ("status", String "busy"); ("error", String reason) ])

(* --- the batch loop ------------------------------------------------------ *)

let run cfg ?cache ?drain:dtoken ~load_model ~read_line ~write_line () =
  let served = ref 0 in
  let errors = ref 0 in
  let metrics = Metrics.create () in
  let stats_json () =
    Metrics.to_json metrics ?cache ()
  in
  let respond reply =
    let doc, is_error = reply_json ?cache ~stats_json reply in
    if is_error then begin
      incr errors;
      Metrics.incr_errors metrics
    end;
    incr served;
    Metrics.incr_answered metrics;
    write_line (Store.Json.to_string doc)
  in
  let flush_batch lines =
    match lines with
    | [] -> ()
    | lines ->
      let prepared =
        List.map
          (fun line ->
            Metrics.incr_received metrics;
            prepare cfg ?cache ~load_model line)
          lines
      in
      (* hits and errors pass through; only `Run items cost anything,
         and the pool spreads them over [sv_jobs] domains *)
      List.iter respond
        (Queries.pool_map ~jobs:cfg.sv_jobs
           (fun item ->
             let t0 = Unix.gettimeofday () in
             let r = evaluate cfg ?cache ?drain:dtoken item in
             Metrics.record metrics (1000. *. (Unix.gettimeofday () -. t0));
             r)
           prepared)
  in
  let over_error_limit () =
    match cfg.sv_max_errors with None -> false | Some m -> !errors > m
  in
  let rec loop batch =
    match read_line () with
    | Some line ->
      let line = String.trim line in
      if line = "" then begin
        flush_batch (List.rev batch);
        if over_error_limit () then Error_limit else loop []
      end
      else loop (line :: batch)
    | None ->
      flush_batch (List.rev batch);
      if over_error_limit () then Error_limit
      else (
        match dtoken with
        | Some d when draining d -> Drained
        | _ -> Eof)
  in
  let stop = loop [] in
  { sv_served = !served; sv_errors = !errors; sv_stop = stop }
