type config = {
  sv_jobs : int;
  sv_budget : Mc.Runctl.budget;
  sv_request_timeout : float option;
  sv_max_errors : int option;
  sv_max_request_bytes : int;
}

let default_config =
  { sv_jobs = 1;
    sv_budget = Mc.Runctl.no_budget;
    sv_request_timeout = None;
    sv_max_errors = None;
    sv_max_request_bytes = 1 lsl 20 }

type stop = Eof | Drained | Error_limit

type outcome = { sv_served : int; sv_errors : int; sv_stop : stop }

(* --- graceful drain ------------------------------------------------------ *)

(* The flag and the in-flight ctl list are atomic so [request_drain]
   may run inside a signal handler while worker domains evaluate: it
   sets the flag (stops further reads) and cancels every registered
   governance token (stops in-flight searches at their next poll). *)
type drain = {
  dr_flag : bool Atomic.t;
  dr_ctls : Mc.Runctl.t list Atomic.t;
}

let drain () = { dr_flag = Atomic.make false; dr_ctls = Atomic.make [] }
let draining d = Atomic.get d.dr_flag

let request_drain d =
  Atomic.set d.dr_flag true;
  List.iter Mc.Runctl.cancel (Atomic.get d.dr_ctls)

let register_ctl d ctl =
  let rec add () =
    let cur = Atomic.get d.dr_ctls in
    if not (Atomic.compare_and_set d.dr_ctls cur (ctl :: cur)) then add ()
  in
  add ();
  (* drain may have fired between the flag check and registration;
     cancelling here closes that race *)
  if Atomic.get d.dr_flag then Mc.Runctl.cancel ctl

(* --- input hygiene ------------------------------------------------------- *)

let utf8_seq_len c =
  if c < 0x80 then 1
  else if c land 0xE0 = 0xC0 && c >= 0xC2 then 2
  else if c land 0xF0 = 0xE0 then 3
  else if c land 0xF8 = 0xF0 && c <= 0xF4 then 4
  else 0

(* [Some (i + len)] when a valid sequence starts at [i], rejecting
   overlong encodings, surrogates and values above U+10FFFF. *)
let utf8_step s i =
  let n = String.length s in
  let c = Char.code s.[i] in
  let len = utf8_seq_len c in
  if len = 0 || i + len > n then None
  else begin
    let cont k = Char.code s.[i + k] land 0xC0 = 0x80 in
    let conts_ok =
      (len < 2 || cont 1) && (len < 3 || cont 2) && (len < 4 || cont 3)
    in
    if not conts_ok then None
    else
      let range_ok =
        match len with
        | 1 | 2 -> true
        | 3 ->
          let c1 = Char.code s.[i + 1] in
          not (c = 0xE0 && c1 < 0xA0) && not (c = 0xED && c1 >= 0xA0)
        | _ ->
          let c1 = Char.code s.[i + 1] in
          not (c = 0xF0 && c1 < 0x90) && not (c = 0xF4 && c1 >= 0x90)
      in
      if range_ok then Some (i + len) else None
  end

let utf8_valid s =
  let n = String.length s in
  let rec go i =
    if i >= n then true
    else match utf8_step s i with Some j -> go j | None -> false
  in
  go 0

let replacement = "\xEF\xBF\xBD" (* U+FFFD *)

let sanitize_utf8 s =
  if utf8_valid s then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i < n then
        match utf8_step s i with
        | Some j ->
          Buffer.add_substring b s i (j - i);
          go j
        | None ->
          Buffer.add_string b replacement;
          go (i + 1)
    in
    go 0;
    Buffer.contents b
  end

(* --- fd line reader ------------------------------------------------------ *)

let fd_line_reader ?(poll_s = 0.1) ?(cap_bytes = 8 lsl 20) ~draining fd =
  let acc = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let pending : string Queue.t = Queue.create () in
  let eof = ref false in
  let push_acc () =
    Queue.push (Buffer.contents acc) pending;
    Buffer.clear acc
  in
  let consume n =
    for i = 0 to n - 1 do
      let c = Bytes.get chunk i in
      if c = '\n' then push_acc ()
      else if Buffer.length acc < cap_bytes then Buffer.add_char acc c
      (* beyond the cap: swallow bytes until the newline; the truncated
         line is over [sv_max_request_bytes] and will be rejected *)
    done
  in
  fun () ->
    let rec next () =
      if not (Queue.is_empty pending) then Some (Queue.pop pending)
      else if !eof then
        if Buffer.length acc > 0 then begin
          push_acc ();
          next ()
        end
        else None
      else if draining () then None
      else begin
        match Unix.select [ fd ] [] [] poll_s with
        | [], _, _ -> next ()
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 ->
            eof := true;
            next ()
          | n ->
            consume n;
            next ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
      end
    in
    next ()

(* --- the loop ------------------------------------------------------------ *)

let str_field name j =
  match Option.bind (Store.Json.member name j) Store.Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "request needs a %S string field" name)

let run cfg ?cache ?drain:dtoken ~load_model ~read_line ~write_line () =
  let served = ref 0 in
  let errors = ref 0 in
  let effective_budget =
    match cfg.sv_request_timeout with
    | None -> cfg.sv_budget
    | Some tmo ->
      let t =
        match cfg.sv_budget.Mc.Runctl.b_time_s with
        | None -> tmo
        | Some b -> Float.min b tmo
      in
      { cfg.sv_budget with Mc.Runctl.b_time_s = Some t }
  in
  (* Validation before parsing: an over-long or non-UTF-8 line gets a
     JSON error response (id unknowable), and whatever fragment of it
     an error message echoes is sanitized so the output stream stays
     valid UTF-8 LDJSON. *)
  let validate line =
    let n = String.length line in
    if n > cfg.sv_max_request_bytes then
      Error
        (Printf.sprintf "request line too long (%d bytes; limit %d)" n
           cfg.sv_max_request_bytes)
    else if not (utf8_valid line) then Error "request line is not valid UTF-8"
    else Ok ()
  in
  let prepare line =
    match validate line with
    | Error msg -> `Err (Store.Json.Null, msg, None)
    | Ok () -> (
      match Store.Json.parse line with
      | Error msg -> `Err (Store.Json.Null, "bad request: " ^ msg, None)
      | Ok j ->
        let id =
          Option.value (Store.Json.member "id" j) ~default:Store.Json.Null
        in
        (match
           Result.bind (str_field "model" j) (fun model ->
               Result.map (fun query -> (model, query)) (str_field "query" j))
         with
        | Error msg -> `Err (id, msg, None)
        | Ok (model, query) -> (
          let limit =
            Option.bind (Store.Json.member "limit" j) Store.Json.to_int
          in
          match load_model model with
          | Error msg -> `Err (id, msg, None)
          | exception exn ->
            `Err (id, Printexc.to_string exn, Some (Printexc.get_backtrace ()))
          | Ok net -> (
            match Mc.Query.parse query with
            | Error msg -> `Err (id, "query: " ^ msg, None)
            | Ok q -> (
              let requested =
                { Store.Entry.bg_limit =
                    Option.value limit ~default:Mc.Explorer.default_limit;
                  bg_states = effective_budget.Mc.Runctl.b_states;
                  bg_time_s = effective_budget.Mc.Runctl.b_time_s;
                  bg_mem_bytes = effective_budget.Mc.Runctl.b_mem_bytes }
              in
              let key = Qcache.key net q in
              match cache with
              | Some c -> (
                match Qcache.find c ~requested key with
                | Some e -> `Hit (id, e)
                | None -> `Run (id, net, q, limit, key, requested))
              | None -> `Run (id, net, q, limit, key, requested))))))
  in
  (* Worker-side evaluation.  Any exception — a crashing predicate, a
     model inconsistency, anything — is confined to this request; the
     diagnosis (with backtrace when recorded) rides in the response's
     error object.  A [Crash]-downgraded parallel search arrives here
     as a normal Unknown outcome, not an exception. *)
  let evaluate item =
    match item with
    | `Err e -> `Err e
    | `Hit h -> `Hit h
    | `Run (id, net, q, limit, key, requested) -> (
      let ctl = Mc.Runctl.create ~budget:effective_budget () in
      (match dtoken with None -> () | Some d -> register_ctl d ctl);
      match
        let t0 = Unix.gettimeofday () in
        let r = Mc.Query.eval ~ctl ?limit net q in
        let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
        (r, wall_ms)
      with
      | r, wall_ms ->
        (match cache with
        | Some c ->
          Qcache.insert c
            { Store.Entry.en_key = key;
              en_query = Mc.Query.to_string q;
              en_outcome =
                Qcache.outcome_to_entry r.Mc.Query.res_outcome;
              en_stats = Qcache.stats_to_entry r.Mc.Query.res_stats;
              en_budget = requested;
              en_prov = Qcache.provenance ~jobs:1 ~wall_ms }
        | None -> ());
        `Ok (id, r)
      | exception Not_found ->
        `Err (id, "unknown process, location or variable", None)
      | exception exn ->
        `Err (id, Printexc.to_string exn, Some (Printexc.get_backtrace ())))
  in
  let degraded () =
    match cache with
    | Some c -> Qcache.degraded c
    | None -> false
  in
  let respond item =
    let open Store.Json in
    let with_degraded fields =
      if degraded () then fields @ [ ("degraded", Bool true) ] else fields
    in
    let doc =
      match item with
      | `Err (id, msg, bt) ->
        incr errors;
        let base =
          [ ("id", id);
            ("status", String "error");
            ("error", String (sanitize_utf8 msg)) ]
        in
        let base =
          match bt with
          | Some b when String.trim b <> "" ->
            base @ [ ("backtrace", String (sanitize_utf8 b)) ]
          | _ -> base
        in
        Obj (with_degraded base)
      | `Hit (id, (e : Store.Entry.t)) ->
        Obj
          (with_degraded
             [ ("id", id);
               ("status", String "ok");
               ("cached", Bool true);
               ("outcome", Store.Entry.outcome_to_json e.Store.Entry.en_outcome);
               ("stats", Store.Entry.stats_to_json e.Store.Entry.en_stats) ])
      | `Ok (id, (r : Mc.Query.result)) ->
        Obj
          (with_degraded
             [ ("id", id);
               ("status", String "ok");
               ("cached", Bool false);
               ( "outcome",
                 Store.Entry.outcome_to_json
                   (Qcache.outcome_to_entry r.Mc.Query.res_outcome) );
               ( "stats",
                 Store.Entry.stats_to_json
                   (Qcache.stats_to_entry r.Mc.Query.res_stats) ) ])
    in
    incr served;
    write_line (to_string doc)
  in
  let flush_batch lines =
    match lines with
    | [] -> ()
    | lines ->
      let prepared = List.map prepare lines in
      (* hits and errors pass through; only `Run items cost anything,
         and the pool spreads them over [sv_jobs] domains *)
      List.iter respond
        (Queries.pool_map ~jobs:cfg.sv_jobs evaluate prepared);
      (match dtoken with
      | None -> ()
      | Some d -> Atomic.set d.dr_ctls [])
  in
  let over_error_limit () =
    match cfg.sv_max_errors with None -> false | Some m -> !errors > m
  in
  let rec loop batch =
    match read_line () with
    | Some line ->
      let line = String.trim line in
      if line = "" then begin
        flush_batch (List.rev batch);
        if over_error_limit () then Error_limit else loop []
      end
      else loop (line :: batch)
    | None ->
      flush_batch (List.rev batch);
      if over_error_limit () then Error_limit
      else (
        match dtoken with
        | Some d when draining d -> Drained
        | _ -> Eof)
  in
  let stop = loop [] in
  { sv_served = !served; sv_errors = !errors; sv_stop = stop }
