(** The live observability surface of the serve loops: request
    counters plus a fixed-size ring of recent request latencies, from
    which the [stats] wire frame reports p50/p90/p99.

    All counters are atomic and the ring is mutex-guarded, so worker
    domains record while the event loop snapshots.  The ring keeps the
    most recent [ring] latencies (default 1024): percentiles describe
    current behaviour, not the whole process lifetime, which is what an
    operator watching an overload wants. *)

type t

val create : ?ring:int -> ?now:(unit -> float) -> unit -> t
(** [ring] is clamped to at least 16; [now] is injectable for
    deterministic tests. *)

val incr_received : t -> unit
val incr_answered : t -> unit
val incr_errors : t -> unit
val incr_busy : t -> unit

val received : t -> int
val answered : t -> int
val errors : t -> int
val busy : t -> int

val record : t -> float -> unit
(** Record one request latency in milliseconds. *)

val percentiles : t -> (float * float * float) option
(** [(p50, p90, p99)] over the retained window, [None] before the
    first {!record}.  Nearest-rank. *)

(** Point-in-time values owned by the host (the network event loop):
    queue state from {!Admission}, connection counts. *)
type gauges = {
  g_queue_depth : int;
  g_queue_capacity : int;
  g_shed : int;
  g_conns_active : int;
  g_conns_total : int;
}

val to_json : t -> ?cache:Qcache.t -> ?gauges:gauges -> unit -> Store.Json.t
(** The payload of a [stats] response frame: [uptime_s], [requests]
    counters, [latency_ms] percentiles, plus [queue]/[connections]
    when [gauges] is given and the cache counters + breaker state
    ({!Qcache.stats_json}) when [cache] is given. *)
