(** A small bounded least-recently-used cache.

    Built for the serve loop's memoized model parses: a long-lived
    [psv serve] process must not grow its parse cache without limit as
    clients name ever more model files, so the memo table is bounded and
    evicts the stalest entry on overflow.

    Domain-safe: a mutex guards the table, and {!find_or_add} computes
    missing values {e outside} the lock so one slow parse never blocks
    concurrent lookups (two racing misses may both compute; one insert
    wins, which is harmless for a pure loader). *)

type ('k, 'v) t

val create : capacity:int -> unit -> ('k, 'v) t
(** [capacity] is clamped to at least 1. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Refreshes the entry's recency on a hit. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** No-op when the key is already present; evicts the
    least-recently-used entry when the cache is full. *)

val find_or_add : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v
(** [find_or_add t k f] is the cached value, or [f k] computed (outside
    the lock), inserted and returned. *)
