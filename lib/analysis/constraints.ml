open Ta

type status =
  | Satisfied
  | Violated of string list
  | Unknown of string

type result = {
  c_id : int;
  c_name : string;
  c_status : status;
}

(* Reachability of "flag = 1" for any of the given variables; the first
   one reachable yields the witness.  An interrupted search cannot
   certify unreachability, so it degrades to [Unknown]. *)
let flags_unreachable ?limit ?ctl net flags =
  let t = Mc.Explorer.make ?limit net in
  let rec check = function
    | [] -> Satisfied
    | (_, flag) :: rest ->
      let pred st = Mc.Explorer.var_value t flag st = 1 in
      let r = Mc.Explorer.reachable ?ctl t pred in
      (match r.Mc.Explorer.r_trace, r.Mc.Explorer.r_interrupt with
       | Some trace, _ -> Violated trace
       | None, Some reason ->
         Unknown (Fmt.str "search interrupted (%a)" Mc.Runctl.pp_reason reason)
       | None, None -> check rest)
  in
  check flags

let check_internal_transitions (psm : Transform.psm) =
  let pim = psm.Transform.psm_pim in
  let software = Transform.Pim.software pim in
  let taus =
    List.filter
      (fun e -> e.Model.edge_sync = Model.Tau)
      software.Model.aut_edges
  in
  if taus = [] then Satisfied
  else
    Unknown
      (Fmt.str
         "software automaton %s has %d internal transition(s); the \
          structural check cannot rule out interference with in-flight \
          inputs"
         software.Model.aut_name (List.length taus))

let check_all ?limit ?ctl (psm : Transform.psm) =
  let net = psm.Transform.psm_net in
  [ { c_id = 1;
      c_name = "detection of all input signals";
      c_status =
        flags_unreachable ?limit ?ctl net psm.Transform.psm_miss_flags };
    { c_id = 2;
      c_name = "no overflow of the input buffer";
      c_status =
        flags_unreachable ?limit ?ctl net psm.Transform.psm_input_loss_flags };
    { c_id = 3;
      c_name = "no overflow of the output buffer";
      c_status =
        flags_unreachable ?limit ?ctl net psm.Transform.psm_output_loss_flags };
    { c_id = 4;
      c_name = "no internal transition occurrences";
      c_status = check_internal_transitions psm } ]

let all_satisfied results =
  List.for_all
    (fun r -> match r.c_status with
       | Satisfied -> true
       | Violated _ | Unknown _ -> false)
    results

let pp_result ppf r =
  let pp_status ppf = function
    | Satisfied -> Fmt.string ppf "satisfied"
    | Violated trace ->
      Fmt.pf ppf "VIOLATED (witness of %d steps)" (List.length trace)
    | Unknown reason -> Fmt.pf ppf "unknown: %s" reason
  in
  Fmt.pf ppf "Constraint %d (%s): %a" r.c_id r.c_name pp_status r.c_status
