(** Scheme-space sweep: race the Lemma-1/2 analytic bounds against the
    zone explorer over a grid of implementation schemes.

    Per point, in order of cost: a physically invalid scheme
    ({!Scheme.check}) is reported [Invalid] for free; a loss-free point
    whose analytic upper bound already meets the requirement is decided
    [Pass] with zero model checking; a point whose analytic lower
    bound already violates it is decided [Fail] likewise; only the
    remaining {e undecided band} is model checked, with the ceiling at
    the requirement (exact there).

    Undecided points are deduplicated on their canonical key
    ({!spec.sp_key}) {e before} any network is built: axes outside the
    requirement's cone of influence collapse, keys resolved earlier in
    the run answer later points from an in-memory memo, and the
    persistent store ([sw_cache]) extends the same dedup across runs.

    The engine is domain-agnostic: it consumes a point count and a
    [build] function (typically {!Scheme.Grid.point} composed with
    {!Gpca.Sweep_space.build}) and never materialises the grid. *)

type verdict = Pass | Fail | Unknown | Invalid

type decision =
  | By_upper_bound  (** analytic UB [<=] requirement, loss-free *)
  | By_lower_bound  (** analytic LB [>] requirement *)
  | By_invalid      (** {!Scheme.check} refused the combination *)
  | By_explorer     (** model checked in this run *)
  | By_memo         (** same key as an earlier point of this run *)

(** Everything the engine needs to know about one grid point.  [build]
    must be cheap — in particular [sp_net] is a thunk, called at most
    once per distinct [sp_key] and only for the undecided band. *)
type spec = {
  sp_req : int;  (** the requirement bound being raced *)
  sp_ub : int;  (** Lemma-2 analytic upper bound *)
  sp_lb : int;  (** analytic worst-case lower bound *)
  sp_sound : bool;
      (** analytic Pass decisions allowed: the loss-free sufficient
          condition holds ({!Bounds.loss_free_serial}), so the upper
          bound genuinely bounds the model-checked sup *)
  sp_key : string;
      (** canonical digest of the point's requirement cone — scheme
          projection plus model parameters plus requirement; equal keys
          share one exploration *)
  sp_net : unit -> Ta.Model.network;
  sp_trigger : string;
  sp_response : string;
  sp_cost : int array;
      (** platform cost vector, componentwise minimised for the Pareto
          frontier *)
  sp_invalid : string option;  (** [Some problems] from {!Scheme.check} *)
}

type point_result = {
  pr_index : int;
  pr_verdict : verdict;
  pr_decision : decision;
  pr_ub : int;
  pr_lb : int;
  pr_sup : Mc.Explorer.sup_result option;
      (** present for explorer/memo decisions *)
  pr_cost : int array;
}

type config = {
  sw_prefilter : bool;
      (** [false] = explorer-everywhere baseline (still dedups) *)
  sw_jobs : int;  (** domain pool width for the undecided band *)
  sw_limit : int option;  (** per-query state limit *)
  sw_ctl : Mc.Runctl.t option;  (** budgets / cancellation *)
  sw_cache : Qcache.t option;  (** persistent cross-run dedup *)
  sw_batch : int;  (** points decoded and classified per batch *)
  sw_audit : int;
      (** also model check every [N]-th analytically decided point and
          compare verdicts; [0] disables auditing *)
  sw_emit : (point_result -> unit) option;
      (** streaming sink, called once per point in index order *)
}

val default_config : config
(** prefilter on, 1 job, batch 4096, no audit, no cache, no sink. *)

type outcome = {
  o_points : int;
  o_pass : int;
  o_fail : int;
  o_unknown : int;
  o_invalid : int;
  o_analytic_pass : int;  (** Pass points decided without the explorer *)
  o_analytic_fail : int;  (** Fail points decided without the explorer *)
  o_explored : int;  (** points answered by exploration or memo *)
  o_memo_hits : int;  (** of which: answered by the in-run key memo *)
  o_mc_runs : int;
      (** explorer queries issued (persistent-store hits included) *)
  o_skip_rate : float;
      (** (analytic + invalid) / points — the prefilter's yield *)
  o_audited : int;
  o_audit_mismatches : (int * string) list;
      (** point index and diagnosis for every audited analytic decision
          the explorer contradicted; must be empty *)
  o_interrupted : int;
  o_wall_ms : float;
  o_pareto : (int * int array) list;
      (** non-dominated Pass points: (index, cost), discovery order *)
}

val run : config -> points:int -> build:(int -> spec) -> outcome
(** Sweep points [0 .. points-1].  [build i] is called exactly once per
    index, in increasing order within each batch. *)

val verdict_name : verdict -> string
val decision_name : decision -> string

(** [dominates a b]: [a] is componentwise [<=] [b] and strictly [<]
    somewhere (exposed for tests). *)
val dominates : int array -> int array -> bool
