let detection_latency (spec : Scheme.mc_input) =
  match spec.Scheme.in_read with
  | Scheme.Interrupt _ -> 0
  | Scheme.Polling interval -> interval

let buffer_wait (is : Scheme.t) =
  let slots =
    match is.Scheme.is_input_comm with
    | Scheme.Buffer (size, Scheme.Read_one) -> size
    | Scheme.Buffer (_, Scheme.Read_all) | Scheme.Shared_variable -> 1
  in
  match is.Scheme.is_invocation with
  | Scheme.Periodic period -> slots * period
  | Scheme.Aperiodic gap -> (slots - 1) * is.Scheme.is_exec.Scheme.wcet_max + gap

let input_delay is m =
  let spec = Scheme.input_spec is m in
  detection_latency spec
  + spec.Scheme.in_delay.Scheme.delay_max
  + buffer_wait is

(* Lower bounds: detection, buffer wait and visibility can all be zero
   in the best case, leaving only the device's minimum processing time. *)
let input_delay_min is m =
  (Scheme.input_spec is m).Scheme.in_delay.Scheme.delay_min

let output_delay_min is c =
  (Scheme.output_spec is c).Scheme.out_delay.Scheme.delay_min

let output_delay ?(queued_before = 0) is c =
  let spec = Scheme.output_spec is c in
  let visibility = is.Scheme.is_exec.Scheme.wcet_max in
  visibility + ((queued_before + 1) * spec.Scheme.out_delay.Scheme.delay_max)

let relaxed_mc_delay ?queued_before is ~input ~output ~internal =
  input_delay is input + output_delay ?queued_before is output + internal

let detects_all_inputs is m ~min_interarrival =
  let spec = Scheme.input_spec is m in
  detection_latency spec + spec.Scheme.in_delay.Scheme.delay_max
  < min_interarrival

(* A lower bound on the *worst-case* delay needs a witness run.  For a
   polled input there is one: the environment is free to raise the
   signal just after a poll tick, so the worst case waits (at least)
   one full interval before detection — provided the signal is still
   observable at the next tick, which [Scheme.check] guarantees for
   every valid polled scheme (latched signals always; [Sustained d]
   only passes the check when [d >= interval]; pulse + polling is
   rejected outright).  Every run then still pays both devices'
   minimum processing and the software's minimum internal delay. *)
let detection_floor (spec : Scheme.mc_input) =
  match spec.Scheme.in_read with
  | Scheme.Interrupt _ -> 0
  | Scheme.Polling interval -> interval

let relaxed_mc_delay_min is ~input ~output ~internal_min =
  let spec = Scheme.input_spec is input in
  detection_floor spec
  + spec.Scheme.in_delay.Scheme.delay_min
  + output_delay_min is output
  + internal_min

(* Sufficient condition for loss-freedom on a serial input: when each
   triggering is consumed by the code (Lemma 1: within [input_delay])
   before the next one can arrive, at most one value is ever in flight
   on the input path — no register overwrite, no missed poll, no
   buffer overflow, whatever the capacity.  This is the cheap analytic
   stand-in for Constraints 1-3, which are otherwise decided by model
   checking and would defeat a prefilter. *)
let loss_free_serial is m ~min_interarrival =
  input_delay is m < min_interarrival
