let detection_latency (spec : Scheme.mc_input) =
  match spec.Scheme.in_read with
  | Scheme.Interrupt _ -> 0
  | Scheme.Polling interval -> interval

let buffer_wait (is : Scheme.t) =
  let slots =
    match is.Scheme.is_input_comm with
    | Scheme.Buffer (size, Scheme.Read_one) -> size
    | Scheme.Buffer (_, Scheme.Read_all) | Scheme.Shared_variable -> 1
  in
  match is.Scheme.is_invocation with
  | Scheme.Periodic period -> slots * period
  | Scheme.Aperiodic gap -> (slots - 1) * is.Scheme.is_exec.Scheme.wcet_max + gap

let input_delay is m =
  let spec = Scheme.input_spec is m in
  detection_latency spec
  + spec.Scheme.in_delay.Scheme.delay_max
  + buffer_wait is

(* Lower bounds: detection, buffer wait and visibility can all be zero
   in the best case, leaving only the device's minimum processing time. *)
let input_delay_min is m =
  (Scheme.input_spec is m).Scheme.in_delay.Scheme.delay_min

let output_delay_min is c =
  (Scheme.output_spec is c).Scheme.out_delay.Scheme.delay_min

let output_delay ?(queued_before = 0) is c =
  let spec = Scheme.output_spec is c in
  let visibility = is.Scheme.is_exec.Scheme.wcet_max in
  visibility + ((queued_before + 1) * spec.Scheme.out_delay.Scheme.delay_max)

let relaxed_mc_delay ?queued_before is ~input ~output ~internal =
  input_delay is input + output_delay ?queued_before is output + internal

let detects_all_inputs is m ~min_interarrival =
  let spec = Scheme.input_spec is m in
  detection_latency spec + spec.Scheme.in_delay.Scheme.delay_max
  < min_interarrival
