type t = {
  disk : Store.Disk.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  errors : int Atomic.t;
  incr_cone : int Atomic.t;
  incr_delta : int Atomic.t;
  incr_full : int Atomic.t;
  breaker : Fault.Breaker.t;
  warn : string -> unit;
}

let default_warn msg = Printf.eprintf "psv: cache: warning: %s\n%!" msg

let make ?(warn = default_warn) ?breaker disk =
  let breaker =
    match breaker with Some b -> b | None -> Fault.Breaker.create ()
  in
  { disk;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    errors = Atomic.make 0;
    incr_cone = Atomic.make 0;
    incr_delta = Atomic.make 0;
    incr_full = Atomic.make 0;
    breaker;
    warn }

let disk t = t.disk
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let errors t = Atomic.get t.errors
let breaker t = t.breaker
let degraded t = Fault.Breaker.tripped t.breaker

(* Ladder-rung counters of the incremental layer ([Incr.Session]); the
   store-hit rung is the plain [hits] counter above. *)
let note_rung t = function
  | `Cone -> Atomic.incr t.incr_cone
  | `Delta -> Atomic.incr t.incr_delta
  | `Full -> Atomic.incr t.incr_full

let rung_counts t =
  (Atomic.get t.incr_cone, Atomic.get t.incr_delta, Atomic.get t.incr_full)

(* Counter export for the serve metrics surface: everything a stats
   frame reports about the store, including the breaker's state machine
   so degraded-mode flips are observable, not just a stderr line. *)
let stats_json t =
  let open Store.Json in
  Obj
    [ ("hits", Int (Atomic.get t.hits));
      ("misses", Int (Atomic.get t.misses));
      ("errors", Int (Atomic.get t.errors));
      ("degraded", Bool (degraded t));
      ( "incr",
        Obj
          [ ("cone", Int (Atomic.get t.incr_cone));
            ("delta", Int (Atomic.get t.incr_delta));
            ("full", Int (Atomic.get t.incr_full)) ] );
      ( "breaker",
        Obj
          [ ("state", String (Fault.Breaker.state_name t.breaker));
            ("trips", Int (Fault.Breaker.trips t.breaker));
            ("probes", Int (Fault.Breaker.probes t.breaker));
            ("failures", Int (Fault.Breaker.failures t.breaker)) ] ) ]

let key net q = Store.Key.digest ~query:(Mc.Query.to_string q) net

let entry_budget ?limit ?ctl () =
  let bg_limit = Option.value limit ~default:Mc.Explorer.default_limit in
  match ctl with
  | None ->
    { Store.Entry.unlimited with Store.Entry.bg_limit }
  | Some ctl ->
    let b = Mc.Runctl.budget ctl in
    { Store.Entry.bg_limit;
      bg_states = b.Mc.Runctl.b_states;
      bg_time_s = b.Mc.Runctl.b_time_s;
      bg_mem_bytes = b.Mc.Runctl.b_mem_bytes }

(* The breaker guards host I/O, not content: [Unavailable] (sick disk)
   counts as a failure, [Corrupt] (bad bytes on a healthy disk) does
   not.  While the breaker is open the store is not touched at all —
   every request is a miss and the query computes from scratch.  The
   cache can degrade the answer's latency, never its availability. *)
let find t ~requested key =
  if not (Fault.Breaker.allow t.breaker) then begin
    Atomic.incr t.misses;
    None
  end
  else
    match Store.Disk.lookup t.disk key with
    | Store.Disk.Hit e when Store.Entry.reusable e ~requested ->
      Fault.Breaker.success t.breaker;
      Atomic.incr t.hits;
      Some e
    | Store.Disk.Hit _ | Store.Disk.Miss ->
      Fault.Breaker.success t.breaker;
      Atomic.incr t.misses;
      None
    | Store.Disk.Corrupt msg ->
      Fault.Breaker.success t.breaker;
      t.warn
        (Printf.sprintf "corrupt entry %s (%s); recomputing" (Store.D128.to_hex key)
           msg);
      Atomic.incr t.misses;
      None
    | Store.Disk.Unavailable msg ->
      Fault.Breaker.failure t.breaker;
      Atomic.incr t.errors;
      t.warn
        (Printf.sprintf "store unavailable reading %s (%s); recomputing"
           (Store.D128.to_hex key) msg);
      Atomic.incr t.misses;
      None

(* Publishing is also fallible and also must never hurt the query: an
   insert failure is logged, fed to the breaker, and swallowed — the
   computed result has already been produced and will be returned. *)
let insert t entry =
  match entry.Store.Entry.en_outcome with
  | Store.Entry.Unknown ((Store.Entry.Cancelled | Store.Entry.Crash _), _) -> ()
  | _ ->
    if Fault.Breaker.allow t.breaker then begin
      match Store.Disk.insert t.disk entry with
      | () -> Fault.Breaker.success t.breaker
      | exception exn ->
        Fault.Breaker.failure t.breaker;
        Atomic.incr t.errors;
        t.warn
          (Printf.sprintf "store unavailable writing %s (%s); result not cached"
             (Store.D128.to_hex entry.Store.Entry.en_key)
             (Printexc.to_string exn))
    end

(* --- conversions -------------------------------------------------------- *)

let sup_to_entry = function
  | Mc.Explorer.Sup_unreached -> Store.Entry.Sup_unreached
  | Mc.Explorer.Sup (v, strict) -> Store.Entry.Sup_value (v, strict)
  | Mc.Explorer.Sup_exceeds c -> Store.Entry.Sup_exceeds c

let sup_of_entry = function
  | Store.Entry.Sup_unreached -> Mc.Explorer.Sup_unreached
  | Store.Entry.Sup_value (v, strict) -> Mc.Explorer.Sup (v, strict)
  | Store.Entry.Sup_exceeds c -> Mc.Explorer.Sup_exceeds c

let reason_to_entry = function
  | Mc.Runctl.Time_budget s -> Store.Entry.Time_budget s
  | Mc.Runctl.State_budget n -> Store.Entry.State_budget n
  | Mc.Runctl.Memory_budget n -> Store.Entry.Memory_budget n
  | Mc.Runctl.Cancelled -> Store.Entry.Cancelled
  | Mc.Runctl.Crash msg -> Store.Entry.Crash msg

let reason_of_entry = function
  | Store.Entry.Time_budget s -> Mc.Runctl.Time_budget s
  | Store.Entry.State_budget n -> Mc.Runctl.State_budget n
  | Store.Entry.Memory_budget n -> Mc.Runctl.Memory_budget n
  | Store.Entry.Cancelled -> Mc.Runctl.Cancelled
  | Store.Entry.Crash msg -> Mc.Runctl.Crash msg

let outcome_to_entry = function
  | Mc.Query.Holds -> Store.Entry.Holds
  | Mc.Query.Fails trace -> Store.Entry.Fails trace
  | Mc.Query.Sup s -> Store.Entry.Sup (sup_to_entry s)
  | Mc.Query.Unknown (reason, partial) ->
    Store.Entry.Unknown (reason_to_entry reason, Option.map sup_to_entry partial)

let outcome_of_entry = function
  | Store.Entry.Holds -> Mc.Query.Holds
  | Store.Entry.Fails trace -> Mc.Query.Fails trace
  | Store.Entry.Sup s -> Mc.Query.Sup (sup_of_entry s)
  | Store.Entry.Unknown (reason, partial) ->
    Mc.Query.Unknown (reason_of_entry reason, Option.map sup_of_entry partial)

let stats_to_entry s =
  { Store.Entry.visited = s.Mc.Explorer.visited;
    stored = s.Mc.Explorer.stored;
    frontier = s.Mc.Explorer.frontier }

let stats_of_entry s =
  { Mc.Explorer.visited = s.Store.Entry.visited;
    stored = s.Store.Entry.stored;
    frontier = s.Store.Entry.frontier }

let tool = "psv/1.0.0"

let provenance ~jobs ~wall_ms =
  { Store.Entry.pv_tool = tool;
    pv_jobs = jobs;
    pv_wall_ms = wall_ms;
    pv_created = Unix.gettimeofday () }

(* --- cached evaluation -------------------------------------------------- *)

let eval t ?(jobs = 1) ?ctl ?limit net q =
  let requested = entry_budget ?limit ?ctl () in
  let k = key net q in
  match find t ~requested k with
  | Some e ->
    { Mc.Query.res_outcome = outcome_of_entry e.Store.Entry.en_outcome;
      res_stats = stats_of_entry e.Store.Entry.en_stats }
  | None ->
    let t0 = Unix.gettimeofday () in
    let r = Mc.Query.eval ~jobs ?ctl ?limit net q in
    let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
    insert t
      { Store.Entry.en_key = k;
        en_query = Mc.Query.to_string q;
        en_outcome = outcome_to_entry r.Mc.Query.res_outcome;
        en_stats = stats_to_entry r.Mc.Query.res_stats;
        en_budget = requested;
        en_prov = provenance ~jobs ~wall_ms };
    r
