(** The bridge between the model checker and the persistent result
    store ({!Store.Disk}).

    [lib/store] sits below [mc] in the dependency order, so its entry
    type mirrors the checker's result types with plain constructors;
    this module owns the conversions and the lookup-before-run /
    insert-after protocol.  Hit and miss counters live on the handle and
    are atomic, so a cache may be shared across the [--jobs] domain
    pool.

    {b Degraded mode.}  A {!Fault.Breaker} guards the store: host-level
    failures ({!Store.Disk.Unavailable} reads, raised inserts) count
    against it, and once it trips the store is bypassed entirely —
    every request computes from scratch and results are not published
    until the breaker's cooldown probe succeeds.  A sick cache can cost
    time, never an answer: no query ever fails because of cache I/O. *)

type t

(** [make ?warn ?breaker disk] wraps an open store.  [warn] receives one
    line per corrupt entry or store fault encountered (default: stderr);
    a corrupt entry is treated as a miss — the query is recomputed and
    the entry overwritten.  [breaker] defaults to a fresh
    {!Fault.Breaker.create}[ ()]. *)
val make : ?warn:(string -> unit) -> ?breaker:Fault.Breaker.t -> Store.Disk.t -> t

val disk : t -> Store.Disk.t
val hits : t -> int
val misses : t -> int

(** Store faults absorbed so far (unavailable reads + failed inserts). *)
val errors : t -> int

val breaker : t -> Fault.Breaker.t

(** True once the breaker has ever tripped: some answers were (or are
    being) computed without the store.  Reported in cache stats and
    reflected in the CLI's degraded-completion exit code. *)
val degraded : t -> bool

(** [note_rung t rung] bumps the incremental layer's ladder counter:
    which rung ([`Cone] reuse, [`Delta] re-exploration, [`Full]
    recompute) answered a re-verification.  The store-hit rung is the
    ordinary {!hits} counter. *)
val note_rung : t -> [ `Cone | `Delta | `Full ] -> unit

(** [(cone, delta, full)] rung counters. *)
val rung_counts : t -> int * int * int

(** The cache's live counters and breaker state as one JSON object —
    [{"hits", "misses", "errors", "degraded", "incr": {"cone", "delta",
    "full"}, "breaker": {"state", "trips", "probes", "failures"}}] —
    embedded in serve stats frames.  All sources are atomic, so a
    snapshot may be taken while worker domains evaluate. *)
val stats_json : t -> Store.Json.t

(** The cache key for evaluating [query] on [net] under the default
    explorer configuration: {!Store.Key.digest} over the canonical
    {!Mc.Query.to_string} text. *)
val key : Ta.Model.network -> Mc.Query.t -> Store.D128.t

(** The {!Store.Entry.budget} a run would be governed by: the explorer
    state limit (default {!Mc.Explorer.default_limit}) plus [ctl]'s
    budget components. *)
val entry_budget : ?limit:int -> ?ctl:Mc.Runctl.t -> unit -> Store.Entry.budget

(** [find t ~requested key] is the stored entry when present, readable
    and reusable under [requested] (see {!Store.Entry.reusable}).
    Counts a hit or a miss; warns (and counts a miss) on a corrupt
    entry; an unavailable store counts a breaker failure and a miss.
    With the breaker open the store is not touched at all. *)
val find : t -> requested:Store.Entry.budget -> Store.D128.t -> Store.Entry.t option

(** [insert t entry] publishes [entry] — unless its outcome is a
    cancelled or crashed [Unknown], which says nothing reusable about
    any run.  Insert failures are warned, fed to the breaker, and
    swallowed: publishing is strictly best-effort. *)
val insert : t -> Store.Entry.t -> unit

val outcome_to_entry : Mc.Query.outcome -> Store.Entry.outcome
val outcome_of_entry : Store.Entry.outcome -> Mc.Query.outcome
val sup_to_entry : Mc.Explorer.sup_result -> Store.Entry.sup
val sup_of_entry : Store.Entry.sup -> Mc.Explorer.sup_result
val reason_to_entry : Mc.Runctl.reason -> Store.Entry.reason
val reason_of_entry : Store.Entry.reason -> Mc.Runctl.reason
val stats_to_entry : Mc.Explorer.stats -> Store.Entry.stats
val stats_of_entry : Store.Entry.stats -> Mc.Explorer.stats

(** [provenance ~jobs ~wall_ms] stamps an entry with this tool's version
    and the current time. *)
val provenance : jobs:int -> wall_ms:float -> Store.Entry.provenance

(** [eval t net q] is {!Mc.Query.eval} behind the cache: answer from the
    store when a reusable entry exists, otherwise evaluate and insert.
    The cached path returns the producing run's statistics. *)
val eval :
  t -> ?jobs:int -> ?ctl:Mc.Runctl.t -> ?limit:int ->
  Ta.Model.network -> Mc.Query.t -> Mc.Query.result
