(* The scheme-space sweep engine: race the Lemma-1/2 analytic bounds
   against the zone explorer over a grid of implementation schemes.

   Per point the race has four outcomes, tried in order of cost:
     1. the scheme is physically invalid (Scheme.check)  -> Invalid, free;
     2. the analytic upper bound already meets the requirement and the
        point is loss-free                               -> Pass, free;
     3. the analytic lower bound already violates it     -> Fail, free;
     4. otherwise the point joins the undecided band and is model
        checked with ceiling = requirement (exact there).

   Undecided points are deduplicated on their canonical key before any
   network is built: grid axes outside the requirement's cone of
   influence produce identical keys, so a million-point grid often
   collapses to a few hundred explorations.  Keys resolved earlier in
   the run answer later points from an in-memory memo; the persistent
   store (--cache) extends the same dedup across runs. *)

type verdict = Pass | Fail | Unknown | Invalid

type decision =
  | By_upper_bound
  | By_lower_bound
  | By_invalid
  | By_explorer
  | By_memo

type spec = {
  sp_req : int;
  sp_ub : int;
  sp_lb : int;
  sp_sound : bool;
  sp_key : string;
  sp_net : unit -> Ta.Model.network;
  sp_trigger : string;
  sp_response : string;
  sp_cost : int array;
  sp_invalid : string option;
}

type point_result = {
  pr_index : int;
  pr_verdict : verdict;
  pr_decision : decision;
  pr_ub : int;
  pr_lb : int;
  pr_sup : Mc.Explorer.sup_result option;
  pr_cost : int array;
}

type config = {
  sw_prefilter : bool;
  sw_jobs : int;
  sw_limit : int option;
  sw_ctl : Mc.Runctl.t option;
  sw_cache : Qcache.t option;
  sw_batch : int;
  sw_audit : int;
  sw_emit : (point_result -> unit) option;
}

let default_config =
  { sw_prefilter = true;
    sw_jobs = 1;
    sw_limit = None;
    sw_ctl = None;
    sw_cache = None;
    sw_batch = 4096;
    sw_audit = 0;
    sw_emit = None }

type outcome = {
  o_points : int;
  o_pass : int;
  o_fail : int;
  o_unknown : int;
  o_invalid : int;
  o_analytic_pass : int;
  o_analytic_fail : int;
  o_explored : int;
  o_memo_hits : int;
  o_mc_runs : int;
  o_skip_rate : float;
  o_audited : int;
  o_audit_mismatches : (int * string) list;
  o_interrupted : int;
  o_wall_ms : float;
  o_pareto : (int * int array) list;
}

let verdict_name = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Unknown -> "unknown"
  | Invalid -> "invalid"

let decision_name = function
  | By_upper_bound -> "analytic-ub"
  | By_lower_bound -> "analytic-lb"
  | By_invalid -> "invalid"
  | By_explorer -> "explorer"
  | By_memo -> "memo"

(* --- Pareto frontier ----------------------------------------------------- *)

(* [a] dominates [b] when it is no worse on every cost component and
   strictly better on at least one.  The frontier keeps the
   non-dominated Pass points; ties (equal vectors) keep the first. *)
let dominates a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let le = ref true and lt = ref false in
  for i = 0 to n - 1 do
    if a.(i) > b.(i) then le := false;
    if a.(i) < b.(i) then lt := true
  done;
  !le && !lt

let pareto_insert frontier (i, cost) =
  let equal a b = a = b in
  if
    List.exists
      (fun (_, c) -> dominates c cost || equal c cost)
      frontier
  then frontier
  else (i, cost) :: List.filter (fun (_, c) -> not (dominates cost c)) frontier

(* --- the race ------------------------------------------------------------ *)

type classified =
  | C_invalid of string
  | C_analytic of verdict * decision
  | C_explore

let classify cfg sp =
  match sp.sp_invalid with
  | Some msg -> C_invalid msg
  | None ->
    if not cfg.sw_prefilter then C_explore
      (* Pass needs soundness (an input loss would make the true sup
         unbounded however small the analytic bound); Fail does not — a
         lost input only makes the delay worse, and the lower bound's
         witness run exists in every valid scheme. *)
    else if sp.sp_sound && sp.sp_ub <= sp.sp_req then
      C_analytic (Pass, By_upper_bound)
    else if sp.sp_lb > sp.sp_req then C_analytic (Fail, By_lower_bound)
    else C_explore

let verdict_of_delay r ~bound =
  match Queries.verdict_of_delay r ~bound with
  | Mc.Explorer.Proved -> Pass
  | Mc.Explorer.Refuted _ -> Fail
  | Mc.Explorer.Unknown _ -> Unknown

let run cfg ~points ~build =
  if points < 0 then invalid_arg "Sweep.run: negative point count";
  let t0 = Unix.gettimeofday () in
  (* key -> (verdict, sup): every exploration lands here, so a key is
     model checked at most once per run whatever the batch layout *)
  let memo : (string, verdict * Mc.Explorer.sup_result) Hashtbl.t =
    Hashtbl.create 256
  in
  let pass = ref 0 and fail = ref 0 and unknown = ref 0 and invalid = ref 0 in
  let analytic_pass = ref 0 and analytic_fail = ref 0 in
  let explored = ref 0 and memo_hits = ref 0 and mc_runs = ref 0 in
  let audited = ref 0 and audit_mismatches = ref [] in
  let interrupted = ref 0 in
  let analytic_seen = ref 0 in
  let pareto = ref [] in
  let record pr =
    (match pr.pr_verdict with
     | Pass ->
       incr pass;
       pareto := pareto_insert !pareto (pr.pr_index, pr.pr_cost)
     | Fail -> incr fail
     | Unknown -> incr unknown
     | Invalid -> incr invalid);
    match cfg.sw_emit with None -> () | Some emit -> emit pr
  in
  let batch = max 1 cfg.sw_batch in
  let lo = ref 0 in
  while !lo < points do
    let hi = min points (!lo + batch) in
    let specs = Array.init (hi - !lo) (fun k -> build (!lo + k)) in
    let classified = Array.map (classify cfg) specs in
    (* the undecided band of this batch, deduplicated by key; audited
       analytic points piggyback on the same pool run *)
    let to_run : (string, spec) Hashtbl.t = Hashtbl.create 64 in
    let want_explore sp =
      if not (Hashtbl.mem memo sp.sp_key || Hashtbl.mem to_run sp.sp_key) then
        Hashtbl.add to_run sp.sp_key sp
    in
    Array.iteri
      (fun k -> function
        | C_explore -> want_explore specs.(k)
        | C_analytic _ when cfg.sw_audit > 0 ->
          incr analytic_seen;
          if !analytic_seen mod cfg.sw_audit = 0 then want_explore specs.(k)
        | C_analytic _ | C_invalid _ -> ())
      classified;
    let qspecs =
      Hashtbl.fold
        (fun key sp acc ->
          { Queries.qs_name = key;
            qs_net = sp.sp_net;
            qs_trigger = sp.sp_trigger;
            qs_response = sp.sp_response;
            (* ceiling = requirement: the bound check is exact, and a
               partial sup past the ceiling still refutes *)
            qs_ceiling = sp.sp_req }
          :: acc)
        to_run []
    in
    if qspecs <> [] then begin
      let results =
        Queries.run_all ~jobs:cfg.sw_jobs ?limit:cfg.sw_limit ?ctl:cfg.sw_ctl
          ?cache:cfg.sw_cache qspecs
      in
      List.iter
        (fun ((qs : Queries.query_spec), r) ->
          let sp = Hashtbl.find to_run qs.Queries.qs_name in
          incr mc_runs;
          (match r.Queries.dr_interrupt with
           | Some _ -> incr interrupted
           | None -> ());
          Hashtbl.replace memo sp.sp_key
            ( verdict_of_delay r ~bound:sp.sp_req,
              r.Queries.dr_sup ))
        results
    end;
    (* resolve the batch in index order *)
    Array.iteri
      (fun k cls ->
        let sp = specs.(k) in
        let index = !lo + k in
        match cls with
        | C_invalid _ ->
          record
            { pr_index = index;
              pr_verdict = Invalid;
              pr_decision = By_invalid;
              pr_ub = sp.sp_ub;
              pr_lb = sp.sp_lb;
              pr_sup = None;
              pr_cost = sp.sp_cost }
        | C_analytic (v, d) ->
          (match v, d with
           | Pass, _ -> incr analytic_pass
           | Fail, _ -> incr analytic_fail
           | (Unknown | Invalid), _ -> ());
          (match Hashtbl.find_opt memo sp.sp_key with
           | Some (mc_v, _) ->
             (* this analytic decision was sampled for audit *)
             incr audited;
             if mc_v <> v && mc_v <> Unknown then
               audit_mismatches :=
                 ( index,
                   Printf.sprintf "analytic %s vs explorer %s"
                     (verdict_name v) (verdict_name mc_v) )
                 :: !audit_mismatches
           | None -> ());
          record
            { pr_index = index;
              pr_verdict = v;
              pr_decision = d;
              pr_ub = sp.sp_ub;
              pr_lb = sp.sp_lb;
              pr_sup = None;
              pr_cost = sp.sp_cost }
        | C_explore ->
          let v, sup = Hashtbl.find memo sp.sp_key in
          let fresh = Hashtbl.mem to_run sp.sp_key in
          if fresh then Hashtbl.remove to_run sp.sp_key else incr memo_hits;
          incr explored;
          record
            { pr_index = index;
              pr_verdict = v;
              pr_decision = (if fresh then By_explorer else By_memo);
              pr_ub = sp.sp_ub;
              pr_lb = sp.sp_lb;
              pr_sup = Some sup;
              pr_cost = sp.sp_cost })
      classified;
    lo := hi
  done;
  let decided = !analytic_pass + !analytic_fail + !invalid in
  { o_points = points;
    o_pass = !pass;
    o_fail = !fail;
    o_unknown = !unknown;
    o_invalid = !invalid;
    o_analytic_pass = !analytic_pass;
    o_analytic_fail = !analytic_fail;
    o_explored = !explored;
    o_memo_hits = !memo_hits;
    o_mc_runs = !mc_runs;
    o_skip_rate =
      (if points = 0 then 1.0 else float_of_int decided /. float_of_int points);
    o_audited = !audited;
    o_audit_mismatches = List.rev !audit_mismatches;
    o_interrupted = !interrupted;
    o_wall_ms = 1000. *. (Unix.gettimeofday () -. t0);
    o_pareto = List.rev !pareto }
