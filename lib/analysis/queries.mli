(** Model-checking-backed delay queries: the "Verified Upper Bound (PSM)"
    machinery of Table I.  Works uniformly on a PIM or a PSM network,
    since both expose the boundary events as channels. *)

type delay_result = {
  dr_trigger : string;
  dr_response : string;
  dr_sup : Mc.Explorer.sup_result;
  dr_stats : Mc.Explorer.stats;
  dr_interrupt : Mc.Runctl.reason option;
      (** [Some] when a budget or cancellation cut the search short; the
          sup and stats are then partial (the sup is a lower bound on
          the true supremum) *)
  dr_snapshot : Mc.Explorer.snapshot option;
      (** present exactly when interrupted; save it and pass it back as
          [resume] to continue *)
}

(** [max_delay net ~trigger ~response ~ceiling] is the supremum, over all
    runs, of the time between a [trigger] synchronisation and the
    following [response] synchronisation, measured by a non-blocking
    monitor.  [Sup_exceeds] means the delay is not bounded by [ceiling]
    (possibly unbounded).

    [ctl] governs the run (budgets, cancellation); [resume] continues an
    interrupted run from its snapshot — same trigger, response, ceiling
    and network required ({!Mc.Explorer.sup_clock} checks the
    fingerprint).  [jobs] (default 1) runs the exploration itself on
    that many domains via {!Mc.Parsearch}: identical sup, and the same
    snapshot format — a checkpoint taken at any [jobs] resumes at any
    other.
    @raise Invalid_argument when the snapshot does not match. *)
val max_delay :
  ?jobs:int -> ?limit:int -> ?ctl:Mc.Runctl.t -> ?resume:Mc.Explorer.snapshot ->
  Ta.Model.network ->
  trigger:string -> response:string -> ceiling:int -> delay_result

(** The three-valued bound check behind {!satisfies_response_bound},
    exposed for callers that already ran {!max_delay} with
    [ceiling = bound]. *)
val verdict_of_delay : delay_result -> bound:int -> Mc.Explorer.verdict

(** [satisfies_response_bound net ~trigger ~response ~bound] is the
    requirement [P(Δ)]: every [trigger] is answered within [bound].
    Decided by comparing the verified supremum against [bound] (the
    ceiling used is [bound], so the check is exact).  [Unknown] when the
    governed search was interrupted without the partial sup already
    exceeding the bound. *)
val satisfies_response_bound :
  ?jobs:int -> ?limit:int -> ?ctl:Mc.Runctl.t ->
  Ta.Model.network ->
  trigger:string -> response:string -> bound:int -> Mc.Explorer.verdict

(** The maximum internal delay [Δio-internal] of a PIM for an
    input/output pair — in the PIM the platform does not exist, so the
    m-to-c delay {e is} the internal delay. *)
val pim_internal_bound :
  ?limit:int ->
  Transform.Pim.t ->
  input:string -> output:string -> ceiling:int -> delay_result

(** [pool_map ~jobs f items] maps [f] over [items] on a pool of [jobs]
    domains (clamped to the item count; [jobs <= 1] is a plain
    [List.map]).  Results keep list order.  If any [f] raises, the pool
    drains and the first exception is re-raised on the caller's
    domain. *)
val pool_map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** One delay query of a batch: a name for reporting, a thunk building
    the network (called on the worker domain, so no model structure is
    shared between domains), and the boundary pair with its ceiling. *)
type query_spec = {
  qs_name : string;
  qs_net : unit -> Ta.Model.network;
  qs_trigger : string;
  qs_response : string;
  qs_ceiling : int;
}

(** [run_all ~jobs specs] evaluates independent delay queries on a pool
    of [jobs] domains ({!pool_map}); [search_jobs] additionally
    parallelises {e each} exploration (default 1 — for a batch, one
    domain per query usually beats splitting a single search).  Results
    keep the order of [specs].

    A shared [ctl] governs the whole batch: its wall-clock budget is
    measured from token creation (so concurrent queries race the same
    deadline), the visited-state budget applies {e per query} (each
    search counts its own states), and {!Mc.Runctl.cancel} stops every
    query at its next poll.

    With [cache], each query does lookup-before-run and insert-after
    against the persistent store ({!Qcache}): a stored result whose
    producing budget satisfies the reuse rule ({!Store.Entry.reusable})
    is returned without any exploration — with the producing run's
    statistics and no snapshot.  The cache handle is shared across the
    pool; hit/miss counters on it are atomic, and concurrent inserts are
    safe (the store publishes entries by atomic rename). *)
val run_all :
  ?jobs:int -> ?search_jobs:int -> ?limit:int -> ?ctl:Mc.Runctl.t ->
  ?cache:Qcache.t ->
  query_spec list -> (query_spec * delay_result) list

(** The {!Mc.Query.t} a spec denotes ([Sup_delay]); its
    {!Mc.Query.to_string} form keys the cache. *)
val spec_query : query_spec -> Mc.Query.t

val pp_delay_result : Format.formatter -> delay_result -> unit
