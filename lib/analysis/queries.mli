(** Model-checking-backed delay queries: the "Verified Upper Bound (PSM)"
    machinery of Table I.  Works uniformly on a PIM or a PSM network,
    since both expose the boundary events as channels. *)

type delay_result = {
  dr_trigger : string;
  dr_response : string;
  dr_sup : Mc.Explorer.sup_result;
  dr_stats : Mc.Explorer.stats;
  dr_interrupt : Mc.Runctl.reason option;
      (** [Some] when a budget or cancellation cut the search short; the
          sup and stats are then partial (the sup is a lower bound on
          the true supremum) *)
  dr_snapshot : Mc.Explorer.snapshot option;
      (** present exactly when interrupted; save it and pass it back as
          [resume] to continue *)
}

(** [max_delay net ~trigger ~response ~ceiling] is the supremum, over all
    runs, of the time between a [trigger] synchronisation and the
    following [response] synchronisation, measured by a non-blocking
    monitor.  [Sup_exceeds] means the delay is not bounded by [ceiling]
    (possibly unbounded).

    [ctl] governs the run (budgets, cancellation); [resume] continues an
    interrupted run from its snapshot — same trigger, response, ceiling
    and network required ({!Mc.Explorer.sup_clock} checks the
    fingerprint). *)
val max_delay :
  ?limit:int -> ?ctl:Mc.Runctl.t -> ?resume:Mc.Explorer.snapshot ->
  Ta.Model.network ->
  trigger:string -> response:string -> ceiling:int -> delay_result

(** The three-valued bound check behind {!satisfies_response_bound},
    exposed for callers that already ran {!max_delay} with
    [ceiling = bound]. *)
val verdict_of_delay : delay_result -> bound:int -> Mc.Explorer.verdict

(** [satisfies_response_bound net ~trigger ~response ~bound] is the
    requirement [P(Δ)]: every [trigger] is answered within [bound].
    Decided by comparing the verified supremum against [bound] (the
    ceiling used is [bound], so the check is exact).  [Unknown] when the
    governed search was interrupted without the partial sup already
    exceeding the bound. *)
val satisfies_response_bound :
  ?limit:int -> ?ctl:Mc.Runctl.t ->
  Ta.Model.network ->
  trigger:string -> response:string -> bound:int -> Mc.Explorer.verdict

(** The maximum internal delay [Δio-internal] of a PIM for an
    input/output pair — in the PIM the platform does not exist, so the
    m-to-c delay {e is} the internal delay. *)
val pim_internal_bound :
  ?limit:int ->
  Transform.Pim.t ->
  input:string -> output:string -> ceiling:int -> delay_result

val pp_delay_result : Format.formatter -> delay_result -> unit
