(** The four system constraints of Section V (Remark 1): when all of them
    hold, the boundary delays are bounded (Lemma 1) and the relaxed
    requirement [P(Δ'mc)] transfers from the PSM to the implementation
    (Theorem 1).

    Constraints 1-3 are decided by model checking the PSM for
    reachability of the instrumentation flags the transformation plants
    (missed interrupts, input-slot loss, output-slot loss).  Constraint 4
    — the software takes no internal transition while an input is in
    flight — is approximated by a sufficient structural condition on the
    software automaton. *)

type status =
  | Satisfied
  | Violated of string list  (** witness trace, as edge descriptions *)
  | Unknown of string        (** reason the check is inconclusive *)

type result = {
  c_id : int;            (** 1-4, as numbered in the paper *)
  c_name : string;
  c_status : status;
}

(** Check all four constraints on a transformed PSM.  Under a govern
    token [ctl], an interrupted reachability check yields [Unknown]
    (never a spurious [Satisfied]). *)
val check_all : ?limit:int -> ?ctl:Mc.Runctl.t -> Transform.psm -> result list

(** [all_satisfied results] — [Unknown] counts as not satisfied. *)
val all_satisfied : result list -> bool

val pp_result : Format.formatter -> result -> unit
