module M = Ta.Model
module CC = Ta.Clockcons

type edit = {
  ed_desc : string;
  ed_net : M.network;
}

(* A constraint site: one atom of one guard or invariant. *)
type site =
  | Guard of int * int * int  (* automaton, edge, atom *)
  | Inv of int * int * int    (* automaton, location, atom *)

let sites pred net =
  let acc = ref [] in
  List.iteri
    (fun ai (a : M.automaton) ->
      List.iteri
        (fun ei (e : M.edge) ->
          List.iteri
            (fun ci atom -> if pred atom then acc := Guard (ai, ei, ci) :: !acc)
            e.M.edge_guard)
        a.M.aut_edges;
      List.iteri
        (fun li (l : M.location) ->
          List.iteri
            (fun ci atom -> if pred atom then acc := Inv (ai, li, ci) :: !acc)
            l.M.loc_inv)
        a.M.aut_locations)
    net.M.net_automata;
  List.rev !acc

let nth_map i f xs = List.mapi (fun j x -> if j = i then f x else x) xs

let apply_site net site f =
  let on_automaton ai g =
    { net with
      M.net_automata = nth_map ai g net.M.net_automata }
  in
  match site with
  | Guard (ai, ei, ci) ->
    on_automaton ai (fun a ->
        { a with
          M.aut_edges =
            nth_map ei
              (fun e -> { e with M.edge_guard = nth_map ci f e.M.edge_guard })
              a.M.aut_edges })
  | Inv (ai, li, ci) ->
    on_automaton ai (fun a ->
        { a with
          M.aut_locations =
            nth_map li
              (fun l -> { l with M.loc_inv = nth_map ci f l.M.loc_inv })
              a.M.aut_locations })

let site_automaton net site =
  let ai = match site with Guard (ai, _, _) | Inv (ai, _, _) -> ai in
  (List.nth net.M.net_automata ai).M.aut_name

let atom_desc = Format.asprintf "%a" CC.pp_atom

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let tweak_constant rng net =
  match sites (fun _ -> true) net with
  | [] -> None
  | ss ->
    let site = pick rng ss in
    (* Small signed bumps, never below zero: clock comparisons against
       negative constants are degenerate. *)
    let delta = pick rng [ -2; -1; 1; 2 ] in
    let bump = function
      | CC.Simple (x, r, n) -> CC.Simple (x, r, max 0 (n + delta))
      | CC.Diff (x, y, r, n) -> CC.Diff (x, y, r, max 0 (n + delta))
    in
    let before = ref "" and after = ref "" in
    let net' =
      apply_site net site (fun atom ->
          let atom' = bump atom in
          before := atom_desc atom;
          after := atom_desc atom';
          atom')
    in
    Some
      { ed_desc =
          Printf.sprintf "%s: constant %s -> %s" (site_automaton net site)
            !before !after;
        ed_net = net' }

let flippable = function
  | CC.Simple (_, CC.Eq, _) | CC.Diff (_, _, CC.Eq, _) -> false
  | _ -> true

let tweak_guard rng net =
  match sites flippable net with
  | [] -> None
  | ss ->
    let site = pick rng ss in
    let flip_rel = function
      | CC.Lt -> CC.Le
      | CC.Le -> CC.Lt
      | CC.Gt -> CC.Ge
      | CC.Ge -> CC.Gt
      | CC.Eq -> CC.Eq
    in
    let flip = function
      | CC.Simple (x, r, n) -> CC.Simple (x, flip_rel r, n)
      | CC.Diff (x, y, r, n) -> CC.Diff (x, y, flip_rel r, n)
    in
    let before = ref "" and after = ref "" in
    let net' =
      apply_site net site (fun atom ->
          let atom' = flip atom in
          before := atom_desc atom;
          after := atom_desc atom';
          atom')
    in
    Some
      { ed_desc =
          Printf.sprintf "%s: relation %s -> %s" (site_automaton net site)
            !before !after;
        ed_net = net' }

(* The inert automata we add share nothing with the rest of the network
   — no channels, variables or clocks — so declarations are untouched
   and the cone analysis can prove them invisible. *)
let inert_prefix = "psv_inert_"

let inert_automaton name =
  M.automaton ~name ~initial:"A"
    [ M.location "A"; M.location "B" ]
    [ M.edge "A" "B"; M.edge "B" "A" ]

let toggle_inert rng net =
  let ours =
    List.filter
      (fun (a : M.automaton) ->
        String.length a.M.aut_name > String.length inert_prefix
        && String.sub a.M.aut_name 0 (String.length inert_prefix) = inert_prefix)
      net.M.net_automata
  in
  if ours <> [] && Random.State.bool rng then
    let victim = (pick rng ours).M.aut_name in
    Some
      { ed_desc = Printf.sprintf "remove automaton %s" victim;
        ed_net =
          { net with
            M.net_automata =
              List.filter
                (fun (a : M.automaton) -> a.M.aut_name <> victim)
                net.M.net_automata } }
  else
    let rec fresh i =
      let name = Printf.sprintf "%s%d" inert_prefix i in
      if
        List.exists
          (fun (a : M.automaton) -> a.M.aut_name = name)
          net.M.net_automata
      then fresh (i + 1)
      else name
    in
    let name = fresh (Random.State.int rng 100) in
    Some
      { ed_desc = Printf.sprintf "add automaton %s" name;
        ed_net = M.add_automata net [ inert_automaton name ] }

let random_edit rng net =
  let candidates =
    List.filter_map
      (fun f -> f rng net)
      (* Weight toward the constant tweaks the paper's workflow is
         about; the structural edits keep the other rungs honest. *)
      [ tweak_constant; tweak_constant; tweak_guard; toggle_inert ]
  in
  match candidates with
  | [] -> invalid_arg "Incr.Edit.random_edit: network offers no edit site"
  | cs -> pick rng cs
