module Qcache = Analysis.Qcache

type rung = Store_hit | Cone_hit | Delta | Full

let rung_name = function
  | Store_hit -> "store"
  | Cone_hit -> "cone"
  | Delta -> "delta"
  | Full -> "full"

type outcome = {
  so_result : Mc.Query.result;
  so_rung : rung;
  so_replayed : int;
  so_expanded : int;
  so_answer_ms : float;
}

(* What the ladder remembers about the previous run of one query. *)
type prev = {
  pv_net : Ta.Model.network;
  pv_key : Store.D128.t;  (* v1 key its result is stored under *)
  pv_result : Mc.Query.result;
  pv_budget : Store.Entry.budget;
  pv_wall_ms : float;
  pv_graph : Delta.graph;
}

type t = {
  s_cache : Qcache.t option;
  s_tag : string;
  mutable s_prev : (string * prev) list;  (* keyed by canonical query text *)
}

let make ?cache ~tag () = { s_cache = cache; s_tag = tag; s_prev = [] }

let note t rung =
  match t.s_cache with None -> () | Some c -> Qcache.note_rung c rung

(* --- previous-run state: memory first, then the persisted session --- *)

let prev_of_disk t qtext =
  match t.s_cache with
  | None -> None
  | Some cache ->
    let disk = Qcache.disk cache in
    let skey = Store.Session.session_key ~tag:t.s_tag ~query:qtext in
    (match Store.Session.load disk skey with
     | Error _ -> None
     | Ok s -> (
       match Xta.Parse.network s.Store.Session.ss_net with
       | Error _ -> None
       | Ok old_net -> (
         match
           Option.map Delta.decode (Store.Session.load_graph disk skey)
         with
         | Some (Ok graph) -> (
           (* The result itself lives in the ordinary store under the
              session's recorded key. *)
           match Store.Disk.lookup disk s.Store.Session.ss_result_key with
           | Store.Disk.Hit e ->
             Some
               { pv_net = old_net;
                 pv_key = s.Store.Session.ss_result_key;
                 pv_result =
                   { Mc.Query.res_outcome =
                       Qcache.outcome_of_entry e.Store.Entry.en_outcome;
                     res_stats = Qcache.stats_of_entry e.Store.Entry.en_stats };
                 pv_budget = e.Store.Entry.en_budget;
                 pv_wall_ms = e.Store.Entry.en_prov.Store.Entry.pv_wall_ms;
                 pv_graph = graph }
           | _ -> None)
         | _ -> None)))

let prev_for t qtext =
  match List.assoc_opt qtext t.s_prev with
  | Some pv -> Some pv
  | None -> prev_of_disk t qtext

let remember t qtext pv =
  t.s_prev <- (qtext, pv) :: List.remove_assoc qtext t.s_prev

(* Best-effort persistence: failures are swallowed — the session is a
   cache of a cache. *)
let persist t qtext pv =
  match t.s_cache with
  | None -> ()
  | Some cache -> (
    try
      let disk = Qcache.disk cache in
      let skey = Store.Session.session_key ~tag:t.s_tag ~query:qtext in
      let text = Xta.Print.to_string pv.pv_net in
      (* The manifest is computed from the reparsed text, not the
         in-memory network: fsck recomputes it the same way, so a
         print/parse normalisation can never flag a good session. *)
      let manifest =
        match Xta.Parse.network text with
        | Ok net -> Store.Key.manifest net
        | Error _ -> Store.Key.manifest pv.pv_net
      in
      Store.Session.save disk
        { Store.Session.ss_tag = t.s_tag;
          ss_query = qtext;
          ss_net = text;
          ss_result_key = pv.pv_key;
          ss_manifest = manifest };
      Store.Session.save_graph disk skey (Delta.encode pv.pv_graph)
    with _ -> ())

(* --- entries ---------------------------------------------------------- *)

let entry_of ~key ~qtext ~budget ~wall_ms (r : Mc.Query.result) =
  { Store.Entry.en_key = key;
    en_query = qtext;
    en_outcome = Qcache.outcome_to_entry r.Mc.Query.res_outcome;
    en_stats = Qcache.stats_to_entry r.Mc.Query.res_stats;
    en_budget = budget;
    en_prov = Qcache.provenance ~jobs:1 ~wall_ms }

let publish t entry =
  match t.s_cache with None -> () | Some c -> Qcache.insert c entry

(* --- the ladder ------------------------------------------------------- *)

let run ?ctl ?limit t net q =
  let qtext = Mc.Query.to_string q in
  let requested = Qcache.entry_budget ?limit ?ctl () in
  let k = Store.Key.digest ~query:qtext net in
  let store_hit =
    match t.s_cache with
    | None -> None
    | Some cache -> Qcache.find cache ~requested k
  in
  match store_hit with
  | Some e ->
    { so_result =
        { Mc.Query.res_outcome = Qcache.outcome_of_entry e.Store.Entry.en_outcome;
          res_stats = Qcache.stats_of_entry e.Store.Entry.en_stats };
      so_rung = Store_hit;
      so_replayed = 0;
      so_expanded = 0;
      so_answer_ms = 0. }
  | None ->
    let full () =
      let t0 = Unix.gettimeofday () in
      let run = Delta.record ?ctl ?limit net q in
      let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
      note t `Full;
      publish t
        (entry_of ~key:k ~qtext ~budget:requested ~wall_ms run.Delta.dr_result);
      let pv =
        { pv_net = net;
          pv_key = k;
          pv_result = run.Delta.dr_result;
          pv_budget = requested;
          pv_wall_ms = wall_ms;
          pv_graph = run.Delta.dr_graph }
      in
      remember t qtext pv;
      persist t qtext pv;
      { so_result = run.Delta.dr_result;
        so_rung = Full;
        so_replayed = 0;
        so_expanded = run.Delta.dr_expanded;
        so_answer_ms = wall_ms }
    in
    let delta pv =
      let t0 = Unix.gettimeofday () in
      match
        Delta.replay ?ctl ?limit ~old_net:pv.pv_net ~graph:pv.pv_graph net q
      with
      | Error _ -> full ()
      | Ok run ->
        let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
        note t `Delta;
        publish t
          (entry_of ~key:k ~qtext ~budget:requested ~wall_ms
             run.Delta.dr_result);
        let pv' =
          { pv_net = net;
            pv_key = k;
            pv_result = run.Delta.dr_result;
            pv_budget = requested;
            pv_wall_ms = wall_ms;
            pv_graph = run.Delta.dr_graph }
        in
        remember t qtext pv';
        persist t qtext pv';
        { so_result = run.Delta.dr_result;
          so_rung = Delta;
          so_replayed = run.Delta.dr_replayed;
          so_expanded = run.Delta.dr_expanded;
          so_answer_ms = wall_ms }
    in
    (match prev_for t qtext with
     | None -> full ()
     | Some pv ->
       let cone_reusable () =
         (* The previous result answers this request only under the
            entry reuse rule: definitive, or produced under a budget
            dominating the requested one. *)
         Store.Entry.reusable
           (entry_of ~key:pv.pv_key ~qtext ~budget:pv.pv_budget
              ~wall_ms:pv.pv_wall_ms pv.pv_result)
           ~requested
       in
       (match Cone.check ~old_net:pv.pv_net net q with
        | Ok () when cone_reusable () ->
          note t `Cone;
          (* Republish under the new network's key so an identical
             rerun answers on the store rung; the entry keeps the
             producing run's budget and provenance. *)
          publish t
            (entry_of ~key:k ~qtext ~budget:pv.pv_budget
               ~wall_ms:pv.pv_wall_ms pv.pv_result);
          (* The session deliberately stays at [pv]: the graph still
             describes [pv_net], and future cone checks re-diff against
             it, so drift in the invisible part keeps hitting. *)
          { so_result = pv.pv_result;
            so_rung = Cone_hit;
            so_replayed = 0;
            so_expanded = 0;
            so_answer_ms = 0. }
        | Ok () | Error _ -> delta pv))
