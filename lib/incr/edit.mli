(** Seeded random model edits, shared by [bench/incr_bench.ml] and the
    chaos test.  Each mutator is deterministic in the supplied
    {!Random.State.t} and returns a well-formed network (the edit
    classes are chosen so {!Ta.Model.validate} stays clean); [None]
    when the network offers no site for that edit class. *)

type edit = {
  ed_desc : string;  (** human-readable, e.g. ["Pump guard t <= 5 -> 6"] *)
  ed_net : Ta.Model.network;
}

(** Bump one clock-constraint constant (guard or invariant) by a small
    signed amount — the paper's edit-one-constant workflow. *)
val tweak_constant : Random.State.t -> Ta.Model.network -> edit option

(** Flip one non-[Eq] comparison between strict and non-strict
    ([<]/[<=], [>]/[>=]). *)
val tweak_guard : Random.State.t -> Ta.Model.network -> edit option

(** Add a disconnected, time-inert two-location automaton (no channels,
    variables or clocks — declarations unchanged), or remove one added
    earlier.  Exercises the automaton add/remove path of the cone. *)
val toggle_inert : Random.State.t -> Ta.Model.network -> edit option

(** One random edit drawn from the applicable classes above.
    @raise Invalid_argument if no class applies (a network with no
    clock constraints at all). *)
val random_edit : Random.State.t -> Ta.Model.network -> edit
