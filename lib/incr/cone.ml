module M = Ta.Model

(* Per-automaton footprint: every channel, variable and clock name the
   automaton can touch.  Reads and writes are not distinguished — the
   influence graph is undirected and conservative. *)
type footprint = {
  fp_chans : string list;
  fp_vars : string list;
  fp_clocks : string list;
}

let dedup xs = List.sort_uniq String.compare xs

let footprint (a : M.automaton) =
  let chans = ref [] and vars = ref [] and clocks = ref [] in
  List.iter
    (fun (l : M.location) ->
      clocks := Ta.Clockcons.clocks l.M.loc_inv @ !clocks)
    a.M.aut_locations;
  List.iter
    (fun (e : M.edge) ->
      (match e.M.edge_sync with
       | M.Tau -> ()
       | M.Send c | M.Recv c -> chans := c :: !chans);
      clocks := Ta.Clockcons.clocks e.M.edge_guard @ e.M.edge_resets @ !clocks;
      vars := Ta.Expr.vars_of_pred e.M.edge_pred @ !vars;
      List.iter
        (fun (v, rhs) -> vars := (v :: Ta.Expr.vars_of_expr rhs) @ !vars)
        e.M.edge_updates)
    a.M.aut_edges;
  { fp_chans = dedup !chans; fp_vars = dedup !vars; fp_clocks = dedup !clocks }

type t = {
  cn_net : M.network;
  cn_names : string array;
  cn_feet : footprint array;
  cn_comp : int array;  (* automaton index -> component id *)
  cn_comp_inert : bool array;  (* component id -> all members time-inert *)
}

let automaton_inert (a : M.automaton) =
  List.for_all
    (fun (l : M.location) -> l.M.loc_kind = M.Normal && l.M.loc_inv = [])
    a.M.aut_locations

let intersects a b = List.exists (fun x -> List.mem x b) a

let influences fa fb =
  intersects fa.fp_chans fb.fp_chans
  || intersects fa.fp_vars fb.fp_vars
  || intersects fa.fp_clocks fb.fp_clocks

let analyse net =
  let autos = Array.of_list net.M.net_automata in
  let n = Array.length autos in
  let names = Array.map (fun a -> a.M.aut_name) autos in
  let feet = Array.map footprint autos in
  (* Union-find over the pairwise influence relation; n is the number
     of automata in one network — quadratic is nothing here. *)
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if influences feet.(i) feet.(j) then union i j
    done
  done;
  let comp = Array.init n find in
  let comp_inert = Array.make n true in
  Array.iteri
    (fun i a ->
      if not (automaton_inert a) then comp_inert.(find i) <- false)
    autos;
  { cn_net = net; cn_names = names; cn_feet = feet; cn_comp = comp;
    cn_comp_inert = comp_inert }

let index_of t name =
  let n = Array.length t.cn_names in
  let rec go i =
    if i >= n then None
    else if String.equal t.cn_names.(i) name then Some i
    else go (i + 1)
  in
  go 0

(* Root automata of a query: the processes it names, every automaton
   touching a variable it compares, every automaton synchronising on a
   trigger/response channel of a timed query. *)
let roots t q =
  let acc = ref [] in
  let add_name name =
    match index_of t name with Some i -> acc := i :: !acc | None -> ()
  in
  let add_var v =
    Array.iteri
      (fun i fp -> if List.mem v fp.fp_vars then acc := i :: !acc)
      t.cn_feet
  in
  let add_chan c =
    Array.iteri
      (fun i fp -> if List.mem c fp.fp_chans then acc := i :: !acc)
      t.cn_feet
  in
  let rec pred = function
    | Mc.Query.At (aut, _) -> add_name aut
    | Mc.Query.Cmp (v, _, _) -> add_var v
    | Mc.Query.Const _ -> ()
    | Mc.Query.And (a, b) | Mc.Query.Or (a, b) -> pred a; pred b
    | Mc.Query.Not a -> pred a
  in
  (match q with
   | Mc.Query.Exists_eventually p | Mc.Query.Always p -> pred p
   | Mc.Query.Sup_delay { trigger; response; _ }
   | Mc.Query.Bounded_response { trigger; response; _ } ->
     add_chan trigger;
     add_chan response);
  List.sort_uniq compare !acc

let cone_indices t q =
  let root_comps =
    List.sort_uniq compare (List.map (fun i -> t.cn_comp.(i)) (roots t q))
  in
  let acc = ref [] in
  Array.iteri
    (fun i c -> if List.mem c root_comps then acc := i :: !acc)
    t.cn_comp;
  List.rev !acc

let cone t q = List.map (fun i -> t.cn_names.(i)) (cone_indices t q)

let same_component t a b =
  match index_of t a, index_of t b with
  | Some i, Some j -> t.cn_comp.(i) = t.cn_comp.(j)
  | _ -> false

let component_inert t a =
  match index_of t a with
  | Some i -> t.cn_comp_inert.(t.cn_comp.(i))
  | None -> false

(* --- the cone decision --------------------------------------------- *)

let ( let* ) = Result.bind

(* One side of the decision: every automaton in [changed] that exists
   on this side must sit outside the query's cone, in a component that
   is entirely time-inert. *)
let side_ok ~side t q changed =
  let cone_set = cone t q in
  List.fold_left
    (fun acc name ->
      let* () = acc in
      match index_of t name with
      | None -> Ok ()  (* not present on this side *)
      | Some i ->
        if List.mem name cone_set then
          Error
            (Printf.sprintf "%s automaton %s is in the query's cone" side name)
        else if not t.cn_comp_inert.(t.cn_comp.(i)) then
          Error
            (Printf.sprintf
               "%s automaton %s sits in a component that constrains time" side
               name)
        else Ok ())
    (Ok ()) changed

let check ~old_net net q =
  let m_old = Store.Key.manifest old_net in
  let m_new = Store.Key.manifest net in
  let* () =
    if Store.D128.equal m_old.Store.Key.mf_decls m_new.Store.Key.mf_decls then
      Ok ()
    else Error "global declarations (clocks/variables/channels) changed"
  in
  (* Changed = digest moved, or present on only one side.  Membership
     by name; a rename is a removal plus an addition. *)
  let digest m name =
    List.assoc_opt name m.Store.Key.mf_automata
  in
  let names m = List.map fst m.Store.Key.mf_automata in
  let changed =
    List.filter
      (fun name ->
        match digest m_old name, digest m_new name with
        | Some a, Some b -> not (Store.D128.equal a b)
        | _ -> true)
      (List.sort_uniq String.compare (names m_old @ names m_new))
  in
  if changed = [] then Ok ()
  else
    let t_old = analyse old_net and t_new = analyse net in
    let* () = side_ok ~side:"old" t_old q changed in
    side_ok ~side:"edited" t_new q changed
