module C = Ta.Compiled
module E = Mc.Explorer

(* One recorded successor of an expanded state.  Movers are stored as
   (automaton, source location, position in the per-location out-edge
   table): [ce_index] numbers the automaton's whole edge list and
   shifts when an edit inserts an edge elsewhere, while the position
   within [ca_out.(aut).(src)] is stable exactly when the replay
   validity check (that very row unchanged) passes. *)
type succ = {
  s_movers : (int * int * int) array;
  s_chan : int;  (* synchronising channel index; -1 for internal moves *)
  s_locs : int array;
  s_vars : int array;
  s_mon : int;
  s_pre : int array;  (* successor zone before extrapolation *)
  s_post : int array;
      (* the same zone after extrapolation ([||] when extrapolation
         emptied it): when the edit leaves the extrapolation tables
         alone, replay admits this encoding verbatim instead of paying
         the per-successor re-canonicalisation of [admit_pre] *)
}

type node = {
  n_locs : int array;
  n_vars : int array;
  n_mon : int;
  n_zone : int array;  (* the popped state's zone, post-extrapolation *)
  n_succs : succ array;
}

type graph = {
  g_version : int;
  g_query : string;  (* canonical query text *)
  g_net : string;    (* canonical network text the graph was recorded on *)
  g_dim : int;
  g_nodes : node array;
}

let version = 2
let magic = "PSVIG2\n"

let size g = Array.length g.g_nodes

(* The payload is pure data (ints, arrays, strings), so [Marshal] is
   safe; the magic line keeps foreign blobs out of [from_string], and
   the framing digest of [Store.Session] guards the bytes themselves. *)
let encode g = magic ^ Marshal.to_string g []

let decode s =
  let ml = String.length magic in
  if String.length s < ml || String.sub s 0 ml <> magic then
    Error "not a psv incremental graph"
  else
    match (Marshal.from_string s ml : graph) with
    | g when g.g_version = version -> Ok g
    | g -> Error (Printf.sprintf "graph version %d (this build reads %d)" g.g_version version)
    | exception _ -> Error "undecodable graph blob"

(* --- compiled-network diff ------------------------------------------- *)

(* [ce_model] is the edge's source AST — pure data, so structural
   equality is safe and covers the data guard and updates that exist
   only as closures in the compiled form.  The compiled fields compared
   alongside are all derivable from [ce_model] once declarations are
   fixed; comparing them too costs nothing and defends the invariant. *)
let edge_equal (a : C.cedge) (b : C.cedge) =
  a.C.ce_src = b.C.ce_src && a.C.ce_dst = b.C.ce_dst
  && a.C.ce_sync = b.C.ce_sync && a.C.ce_resets = b.C.ce_resets
  && a.C.ce_guard = b.C.ce_guard && a.C.ce_model = b.C.ce_model

let loc_equal (a : C.cloc) (b : C.cloc) =
  String.equal a.C.cl_name b.C.cl_name
  && a.C.cl_kind = b.C.cl_kind && a.C.cl_inv = b.C.cl_inv
  && a.C.cl_free = b.C.cl_free

let out_equal o1 o2 =
  List.length o1 = List.length o2 && List.for_all2 edge_equal o1 o2

type compat = {
  cp_changed : bool array;  (* per automaton: compiled form differs *)
  cp_loc_ok : bool array array;
      (* per (changed automaton, location): a state sitting at this
         location may be replayed — the location row (kind, invariant,
         activity), its out-edge table and every out-edge's target
         location are unchanged *)
}

type diff = Incompatible of string | Compatible of compat

let names_equal a b =
  Array.length a = Array.length b
  && Array.for_all Fun.id (Array.map2 String.equal a b)

let diff (oldc : C.t) (newc : C.t) =
  if oldc.C.c_clock_names <> newc.C.c_clock_names then
    Incompatible "clock declarations changed"
  else if
    oldc.C.c_var_names <> newc.C.c_var_names
    || oldc.C.c_var_bounds <> newc.C.c_var_bounds
    || oldc.C.c_var_init <> newc.C.c_var_init
  then Incompatible "variable declarations changed"
  else if
    oldc.C.c_chan_names <> newc.C.c_chan_names
    || oldc.C.c_chan_kinds <> newc.C.c_chan_kinds
  then Incompatible "channel declarations changed"
  else if
    not
      (names_equal
         (Array.map (fun (a : C.cautomaton) -> a.C.ca_name) oldc.C.c_automata)
         (Array.map (fun (a : C.cautomaton) -> a.C.ca_name) newc.C.c_automata))
  then Incompatible "automata added, removed or renamed"
  else begin
    let n = Array.length oldc.C.c_automata in
    let problem = ref None in
    let changed = Array.make n false in
    let loc_ok = Array.make n [||] in
    for ai = 0 to n - 1 do
      if !problem = None then begin
        let oa = oldc.C.c_automata.(ai) and na = newc.C.c_automata.(ai) in
        let nl = Array.length oa.C.ca_locs in
        if
          nl <> Array.length na.C.ca_locs
          || not
               (names_equal
                  (Array.map (fun (l : C.cloc) -> l.C.cl_name) oa.C.ca_locs)
                  (Array.map (fun (l : C.cloc) -> l.C.cl_name) na.C.ca_locs))
        then
          problem :=
            Some (Printf.sprintf "locations of %s changed" oa.C.ca_name)
        else begin
          (* Conservative fall-back the ISSUE mandates: an edit that
             introduces urgency reshapes delay closure globally. *)
          Array.iteri
            (fun li (ol : C.cloc) ->
              let nw = na.C.ca_locs.(li) in
              if
                ol.C.cl_kind = Ta.Model.Normal
                && nw.C.cl_kind <> Ta.Model.Normal
                && !problem = None
              then
                problem :=
                  Some
                    (Printf.sprintf "urgency added at %s.%s" na.C.ca_name
                       nw.C.cl_name))
            oa.C.ca_locs;
          let loc_diff = ref false in
          for li = 0 to nl - 1 do
            if
              (not (loc_equal oa.C.ca_locs.(li) na.C.ca_locs.(li)))
              || not (out_equal oa.C.ca_out.(li) na.C.ca_out.(li))
            then loc_diff := true
          done;
          if oa.C.ca_initial <> na.C.ca_initial || !loc_diff then begin
            changed.(ai) <- true;
            loc_ok.(ai) <-
              Array.init nl (fun li ->
                  loc_equal oa.C.ca_locs.(li) na.C.ca_locs.(li)
                  && out_equal oa.C.ca_out.(li) na.C.ca_out.(li)
                  && List.for_all
                       (fun (e : C.cedge) ->
                         loc_equal oa.C.ca_locs.(e.C.ce_dst)
                           na.C.ca_locs.(e.C.ce_dst))
                       na.C.ca_out.(li))
          end
        end
      end
    done;
    match !problem with
    | Some msg -> Incompatible msg
    | None -> Compatible { cp_changed = changed; cp_loc_ok = loc_ok }
  end

(* A recorded node is replayable iff every changed automaton sits, in
   the popped state, at a location whose row the edit left alone. *)
let node_valid compat locs =
  let ok = ref true in
  Array.iteri
    (fun ai ch ->
      if ch && not compat.cp_loc_ok.(ai).(locs.(ai)) then ok := false)
    compat.cp_changed;
  !ok

(* --- recording -------------------------------------------------------- *)

let pos_of comp ai (ce : C.cedge) =
  let row = comp.C.c_automata.(ai).C.ca_out.(ce.C.ce_src) in
  let rec go i = function
    | [] -> invalid_arg "Incr.Delta: candidate edge not in its out table"
    | e :: tl -> if e == ce then i else go (i + 1) tl
  in
  go 0 row

let chan_int = function None -> -1 | Some c -> c

(* The recording expansion: candidates + [fire_pre], byte-equivalent to
   the explorer's inline path, with every live firing remembered. *)
let record_expand t comp nodes pool st =
  let succs = ref [] in
  let pairs =
    List.map
      (fun cd ->
        match E.fire_pre t pool st cd with
        | E.Fired_dead -> (cd, None)
        | E.Fired_live { fl_state; fl_locs; fl_vars; fl_mon; fl_pre } ->
          let movers =
            E.movers cd
            |> List.map (fun (ai, ce) -> (ai, ce.C.ce_src, pos_of comp ai ce))
            |> Array.of_list
          in
          let post =
            match fl_state with
            | Some st' -> Zone.Dbm.to_ints st'.E.st_zone
            | None -> [||]
          in
          succs :=
            { s_movers = movers;
              s_chan = chan_int (E.candidate_chan cd);
              s_locs = fl_locs;
              s_vars = fl_vars;
              s_mon = fl_mon;
              s_pre = fl_pre;
              s_post = post }
            :: !succs;
          (cd, fl_state))
      (E.candidates t st)
  in
  nodes :=
    { n_locs = Array.copy st.E.st_locs;
      n_vars = Array.copy st.E.st_vars;
      n_mon = st.E.st_mon;
      n_zone = Zone.Dbm.to_ints st.E.st_zone;
      n_succs = Array.of_list (List.rev !succs) }
    :: !nodes;
  pairs

(* --- replay ----------------------------------------------------------- *)

(* Memo index over the recorded nodes, resolved by full discrete + zone
   comparison.  The bucket key mixes the zone encoding into the
   discrete hash: zone-dense models have thousands of zones per
   discrete state, and bucketing on the discrete part alone makes every
   lookup scan them all.  The zone keys on the {e current} run's
   post-extrapolation encoding, so a state whose zone drifted
   (extrapolation constants moved with an edited constant) simply
   misses and fires for real — never replays stale data. *)
let node_hash locs vars mon zone_ints =
  let h = E.hash_discrete locs vars mon in
  Array.fold_left (fun acc v -> (acc * 31) + v + 1) h zone_ints

let index g =
  let tbl = Hashtbl.create (max 64 (2 * Array.length g.g_nodes)) in
  Array.iter
    (fun nd ->
      Hashtbl.add tbl (node_hash nd.n_locs nd.n_vars nd.n_mon nd.n_zone) nd)
    g.g_nodes;
  tbl

let lookup tbl (st : E.state) zone_ints =
  let h = node_hash st.E.st_locs st.E.st_vars st.E.st_mon zone_ints in
  List.find_opt
    (fun nd ->
      nd.n_mon = st.E.st_mon && nd.n_locs = st.E.st_locs
      && nd.n_vars = st.E.st_vars && nd.n_zone = zone_ints)
    (Hashtbl.find_all tbl h)

(* [fast] asserts the old and new explorers extrapolate identically;
   recorded post zones then admit verbatim ([E.admit_post]), skipping
   the per-successor re-canonicalisation that otherwise dominates the
   replay of an unchanged region. *)
let replay_expand t comp compat ~fast tbl nodes replayed expanded pool st =
  let zone_ints = Zone.Dbm.to_ints st.E.st_zone in
  match lookup tbl st zone_ints with
  | Some nd when node_valid compat nd.n_locs ->
    incr replayed;
    nodes := nd :: !nodes;
    Array.to_list nd.n_succs
    |> List.map (fun s ->
           let movers =
             Array.to_list s.s_movers
             |> List.map (fun (ai, src, pos) ->
                    (ai, List.nth comp.C.c_automata.(ai).C.ca_out.(src) pos))
           in
           let cd =
             E.candidate ~movers
               ~chan:(if s.s_chan < 0 then None else Some s.s_chan)
           in
           ( cd,
             if fast then
               E.admit_post t ~locs:(Array.copy s.s_locs) ~vars:s.s_vars
                 ~mon:s.s_mon ~post:s.s_post
             else
               E.admit_pre t ~locs:(Array.copy s.s_locs) ~vars:s.s_vars
                 ~mon:s.s_mon ~pre:s.s_pre ))
  | _ ->
    incr expanded;
    record_expand t comp nodes pool st

(* --- the query engine ------------------------------------------------- *)

(* Mirrors [Mc.Query.eval]'s four branches on the sequential ([jobs=1])
   path, with the expansion hook threaded through; outcome ladders are
   copied verbatim so results are byte-identical. *)

let make_explorer ?limit net q =
  match q with
  | Mc.Query.Exists_eventually _ | Mc.Query.Always _ -> E.make ?limit net
  | Mc.Query.Sup_delay { trigger; response; ceiling } ->
    let monitor =
      Mc.Monitor.delay ~trigger ~response ~clock:Mc.Query.delay_monitor_clock
        ~ceiling ()
    in
    E.make ?limit ~monitor net
  | Mc.Query.Bounded_response { trigger; response; bound } ->
    let monitor =
      Mc.Monitor.delay ~trigger ~response ~clock:Mc.Query.delay_monitor_clock
        ~ceiling:bound ()
    in
    E.make ?limit ~monitor net

let run_query ?ctl t q ~expand =
  match q with
  | Mc.Query.Exists_eventually p ->
    let r = E.reachable ~expand ?ctl t (Mc.Query.compile_pred t p) in
    let outcome =
      match r.E.r_trace, r.E.r_interrupt with
      | Some _, _ -> Mc.Query.Holds
      | None, Some reason -> Mc.Query.Unknown (reason, None)
      | None, None -> Mc.Query.Fails None
    in
    { Mc.Query.res_outcome = outcome; res_stats = r.E.r_stats }
  | Mc.Query.Always p ->
    let pred = Mc.Query.compile_pred t p in
    let r = E.reachable ~expand ?ctl t (fun st -> not (pred st)) in
    let outcome =
      match r.E.r_trace, r.E.r_interrupt with
      | Some trace, _ -> Mc.Query.Fails (Some trace)
      | None, Some reason -> Mc.Query.Unknown (reason, None)
      | None, None -> Mc.Query.Holds
    in
    { Mc.Query.res_outcome = outcome; res_stats = r.E.r_stats }
  | Mc.Query.Sup_delay _ ->
    let o =
      E.sup_clock ~expand ?ctl t
        ~pred:(E.mon_in t "Waiting")
        ~clock:Mc.Query.delay_monitor_clock
    in
    let outcome =
      match o.E.so_interrupt with
      | Some reason -> Mc.Query.Unknown (reason, Some o.E.so_sup)
      | None -> Mc.Query.Sup o.E.so_sup
    in
    { Mc.Query.res_outcome = outcome; res_stats = o.E.so_stats }
  | Mc.Query.Bounded_response { bound; _ } ->
    let o =
      E.sup_clock ~expand ?ctl t
        ~pred:(E.mon_in t "Waiting")
        ~clock:Mc.Query.delay_monitor_clock
    in
    let outcome =
      match o.E.so_interrupt, o.E.so_sup with
      | None, E.Sup_unreached -> Mc.Query.Holds
      | None, E.Sup (v, _) ->
        if v <= bound then Mc.Query.Holds else Mc.Query.Fails None
      | None, E.Sup_exceeds _ -> Mc.Query.Fails None
      | Some _, E.Sup (v, _) when v > bound -> Mc.Query.Fails None
      | Some _, E.Sup_exceeds _ -> Mc.Query.Fails None
      | Some reason, partial -> Mc.Query.Unknown (reason, Some partial)
    in
    { Mc.Query.res_outcome = outcome; res_stats = o.E.so_stats }

type run = {
  dr_result : Mc.Query.result;
  dr_graph : graph;
  dr_replayed : int;
  dr_expanded : int;
}

let finish net q comp nodes result ~replayed ~expanded =
  { dr_result = result;
    dr_graph =
      { g_version = version;
        g_query = Mc.Query.to_string q;
        g_net = Xta.Print.to_string net;
        g_dim = comp.C.c_nclocks + 1;
        g_nodes = Array.of_list (List.rev !nodes) };
    dr_replayed = replayed;
    dr_expanded = expanded }

let record ?ctl ?limit net q =
  let t = make_explorer ?limit net q in
  let comp = E.compiled t in
  let nodes = ref [] in
  let result = run_query ?ctl t q ~expand:(record_expand t comp nodes) in
  finish net q comp nodes result ~replayed:0 ~expanded:(List.length !nodes)

let replay ?ctl ?limit ~old_net ~graph net q =
  let qtext = Mc.Query.to_string q in
  if not (String.equal graph.g_query qtext) then
    Error "graph records a different query"
  else if not (String.equal graph.g_net (Xta.Print.to_string old_net)) then
    Error "graph does not match the previous network"
  else
    let t = make_explorer ?limit net q in
    let t_old = make_explorer ?limit old_net q in
    match diff (E.compiled t_old) (E.compiled t) with
    | Incompatible reason -> Error reason
    | Compatible compat ->
      let comp = E.compiled t in
      if graph.g_dim <> comp.C.c_nclocks + 1 then
        Error "zone dimension changed"
      else begin
        let tbl = index graph in
        let nodes = ref [] and replayed = ref 0 and expanded = ref 0 in
        let fast = E.same_extrapolation t_old t in
        let expand =
          replay_expand t comp compat ~fast tbl nodes replayed expanded
        in
        let result = run_query ?ctl t q ~expand in
        Ok
          (finish net q comp nodes result ~replayed:!replayed
             ~expanded:!expanded)
      end
