(** Static cone-of-influence analysis over a network of timed automata.

    Two automata {e influence} each other when they share a channel, a
    variable (read or written), or a clock; the influence graph is the
    undirected graph those edges induce on the automata, and a query's
    {e cone} is the union of the connected components containing the
    query's roots — the automata the query names, the automata touching
    the variables it compares, and (for the timed queries) the automata
    synchronising on the trigger or response channel.

    The cone decision {!check} answers: after an edit, can the old
    result for this query still be returned even though the network
    digest moved?  It can when (1) the global declarations are
    unchanged, (2) no changed automaton lies in the query's cone —
    under the {e old} and the {e new} influence graphs — and (3) every
    component containing a changed (or added, or removed) automaton is
    entirely {e time-inert} (every location [Normal] with a true
    invariant) on its side.  Condition (3) is what makes the
    disconnected rest truly invisible: a component that cannot block
    delay, has no committed priority, and shares nothing with the cone
    cannot alter any reachable projection the query observes — see
    DESIGN.md for the full argument. *)

type t

val analyse : Ta.Model.network -> t

(** Automaton names in the query's cone, in declaration order.
    Root resolution is conservative: a root name that matches nothing
    (e.g. a variable no automaton touches) contributes no automata, and
    the constant value argument covers it. *)
val cone : t -> Mc.Query.t -> string list

(** [same_component t a b] — automata [a] and [b] are connected in the
    influence graph (exposed for tests). *)
val same_component : t -> string -> string -> bool

(** The automaton's component is entirely time-inert: every location of
    every member is [Normal] with an empty invariant (exposed for
    tests). *)
val component_inert : t -> string -> bool

(** [check ~old_net net q] decides the cone rung: [Ok ()] when the old
    result for [q] may be returned unchanged, [Error reason]
    otherwise.  Identical networks trivially pass. *)
val check :
  old_net:Ta.Model.network -> Ta.Model.network -> Mc.Query.t ->
  (unit, string) result
