(** Zone-graph delta re-exploration.

    A {e recording} run evaluates a query through the ordinary
    sequential explorer while remembering, for every expanded symbolic
    state, the successors that survived firing: the moving edges (as
    stable positions in the per-location edge tables), the synchronising
    channel, the successor's discrete part and its zone both {e before}
    extrapolation ({!Mc.Explorer.fire_pre}) and after it.  A {e replay}
    run on an edited network first diffs the two compiled networks;
    when the edit kept declarations, automata and locations (by name)
    and added no urgency, each popped state whose recorded expansion is
    untouched by the edit is re-admitted instead of re-fired — dead
    candidates are skipped entirely, and when the edit also left the
    extrapolation tables alone the recorded post-extrapolation zone is
    admitted verbatim ({!Mc.Explorer.admit_post}), skipping the
    per-successor re-canonicalisation otherwise paid by
    {!Mc.Explorer.admit_pre}.  That is where the speedup lives.  States whose
    current location (in any changed automaton) has a different
    out-edge table, invariant, kind or clock-activity set fall back to
    real firing, so verdicts, sups, statistics and traces are
    byte-identical to a from-scratch sequential run (the correctness
    bar; see DESIGN.md "Incremental re-verification").

    Recording only live successors is sound because re-admission is
    gated on the popped state's location row being unchanged: a
    candidate that fired dead under the old network fires dead under
    the new one too (same guards, same invariants, same source zone). *)

type graph

(** Number of recorded (expanded) states. *)
val size : graph -> int

(** Binary encoding for persistence; {!decode} rejects foreign or
    version-skewed blobs by magic, never by crashing. *)
val encode : graph -> string

val decode : string -> (graph, string) result

type run = {
  dr_result : Mc.Query.result;
  dr_graph : graph;  (** the updated graph — persist for the next edit *)
  dr_replayed : int;  (** expansions answered from the recorded graph *)
  dr_expanded : int;  (** expansions that fired for real *)
}

(** Evaluate [q] on [net] sequentially (the [jobs = 1] path of
    {!Mc.Query.eval}, byte-identical results) while recording the
    expansion graph.
    @raise Ta.Compiled.Compile_error / [Not_found] as {!Mc.Query.eval}. *)
val record :
  ?ctl:Mc.Runctl.t -> ?limit:int -> Ta.Model.network -> Mc.Query.t -> run

(** [replay ~old_net ~graph net q] re-evaluates [q] on the edited [net],
    replaying from [graph] (recorded on [old_net]).  [Error reason]
    when the edit is outside the delta engine's reach — declarations,
    automaton/location name lists changed, urgency added, or the graph
    does not belong to ([old_net], [q]) — in which case the caller
    should fall back to {!record}. *)
val replay :
  ?ctl:Mc.Runctl.t -> ?limit:int -> old_net:Ta.Model.network ->
  graph:graph -> Ta.Model.network -> Mc.Query.t -> (run, string) result
