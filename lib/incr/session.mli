(** The incremental re-verification session: the decision ladder.

    A session answers "re-verify query [q] on the current network"
    through four rungs, cheapest first, with the hard invariant that
    every rung returns the verdict a from-scratch sequential run would:

    + {b store} — the exact v1 key hits a reusable cache entry
      (byte-identical network; the pre-existing PR 4 path);
    + {b cone} — the network changed, but {!Cone.check} proves the
      change invisible to this query, so the previous result is
      returned and republished under the new key;
    + {b delta} — {!Delta.replay} re-explores, re-admitting recorded
      expansions where the edit left them untouched;
    + {b full} — {!Delta.record} recomputes from scratch (and records
      a fresh graph for next time).

    The previous run's network, result and expansion graph are kept in
    memory (per query) and, when a cache is attached, persisted beside
    the store entries ({!Store.Session}), so a new process resumes the
    ladder where the last one left it.  Rung counters feed
    {!Analysis.Qcache.note_rung} and surface in cache stats and serve
    stats frames.  Persistence is strictly best-effort — a missing or
    corrupt session costs a full run, never an answer. *)

type rung = Store_hit | Cone_hit | Delta | Full

val rung_name : rung -> string

type outcome = {
  so_result : Mc.Query.result;
  so_rung : rung;
  so_replayed : int;  (** delta rung: expansions answered from the graph *)
  so_expanded : int;  (** delta/full rungs: expansions fired for real *)
  so_answer_ms : float;
      (** wall time of the answering exploration (record or replay)
          alone — the re-verification latency.  Excludes session
          bookkeeping: graph encoding and persistence happen after the
          verdict is available and overlap the caller's idle time in a
          watch loop.  [0.] on the store and cone rungs. *)
}

type t

(** [make ?cache ~tag ()] opens a session.  [tag] identifies the model
    source (a file path, or ["gpca:<property>"]) and keys the persisted
    session together with each query's canonical text.  Without a
    [cache] the ladder runs purely in memory: no store rung, no
    persistence — which is all [psv watch] needs within one process. *)
val make : ?cache:Analysis.Qcache.t -> tag:string -> unit -> t

(** One run of the ladder.  Sequential ([jobs = 1]) by construction —
    delta replay is a sequential-order memo.
    @raise Ta.Compiled.Compile_error / [Not_found] as {!Mc.Query.eval}. *)
val run :
  ?ctl:Mc.Runctl.t -> ?limit:int -> t -> Ta.Model.network -> Mc.Query.t ->
  outcome
