(** Injectable file I/O.

    Everything the persistent store does to the host filesystem goes
    through a value of type {!t}.  Production code uses {!real};
    chaos tests wrap it with {!inject} to replay a seeded fault
    schedule, or substitute handwritten operations to script a specific
    failure (e.g. a SIGINT between tmp write and rename). *)

type t = {
  read_file : string -> string;  (** whole-file read, binary *)
  write_file : string -> string -> unit;  (** whole-file create/replace, binary *)
  rename : string -> string -> unit;
  remove : string -> unit;
  mkdir : string -> int -> unit;
  readdir : string -> string array;
  file_exists : string -> bool;
  is_directory : string -> bool;
  file_size : string -> int;  (** size in bytes; 0 if unreadable *)
}

val real : t
(** Direct passthrough to the host filesystem. *)

type stats = { fs_ops : int Atomic.t; fs_faults : int Atomic.t }
(** Operation / injected-fault counters for an injected interface. *)

val stats : unit -> stats

val inject : ?stats:stats -> Profile.t -> t -> t
(** [inject profile io] wraps [io] so each operation consults the
    profile's deterministic schedule before running:

    - transient [EIO] / [EAGAIN]: the operation raises
      [Unix.Unix_error] without touching the file (a retry re-rolls);
    - short read: the result is silently truncated (corruption is
      caught downstream by the entry digest);
    - short write: a truncated file is written and [EIO] raised
      (detected partial write — a retry rewrites the whole file);
    - fsync loss: a truncated file is written with {e no} error, as if
      the tail was lost in a crash before fsync;
    - rename failure: [rename] raises [EIO] leaving the source intact;
    - latency: every operation sleeps [p_latency_s] first. *)
