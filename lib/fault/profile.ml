type t = {
  p_seed : int;
  p_eio : float;
  p_eagain : float;
  p_short : float;
  p_fsync : float;
  p_rename : float;
  p_latency_s : float;
}

let none =
  { p_seed = 0;
    p_eio = 0.;
    p_eagain = 0.;
    p_short = 0.;
    p_fsync = 0.;
    p_rename = 0.;
    p_latency_s = 0. }

let is_none p =
  p.p_eio = 0. && p.p_eagain = 0. && p.p_short = 0. && p.p_fsync = 0.
  && p.p_rename = 0. && p.p_latency_s = 0.

(* Duration syntax shared with the CLI budget flags: "250ms", "2s", "3m". *)
let parse_duration s =
  let num_with suffix scale =
    let body = String.sub s 0 (String.length s - String.length suffix) in
    Option.map (fun v -> v *. scale) (float_of_string_opt body)
  in
  let has suffix =
    let ls = String.length suffix and l = String.length s in
    l > ls && String.sub s (l - ls) ls = suffix
  in
  if has "ms" then num_with "ms" 1e-3
  else if has "us" then num_with "us" 1e-6
  else if has "m" then num_with "m" 60.
  else if has "h" then num_with "h" 3600.
  else if has "s" then num_with "s" 1.
  else float_of_string_opt s

let parse spec =
  let ( let* ) = Result.bind in
  let prob key v =
    match float_of_string_opt v with
    | Some f when f >= 0. && f <= 1. -> Ok f
    | _ -> Error (Printf.sprintf "fault profile: %s=%s is not a probability in [0,1]" key v)
  in
  let field acc kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "fault profile: %S is not key=value" kv)
    | Some i ->
      let key = String.sub kv 0 i in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      (match key with
      | "eio" ->
        let* f = prob key v in
        Ok { acc with p_eio = f }
      | "eagain" ->
        let* f = prob key v in
        Ok { acc with p_eagain = f }
      | "short" ->
        let* f = prob key v in
        Ok { acc with p_short = f }
      | "fsync" ->
        let* f = prob key v in
        Ok { acc with p_fsync = f }
      | "rename" ->
        let* f = prob key v in
        Ok { acc with p_rename = f }
      | "latency" -> (
        match parse_duration v with
        | Some d when d >= 0. -> Ok { acc with p_latency_s = d }
        | _ -> Error (Printf.sprintf "fault profile: bad latency %S" v))
      | "seed" -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok { acc with p_seed = n }
        | _ -> Error (Printf.sprintf "fault profile: bad seed %S" v))
      | _ -> Error (Printf.sprintf "fault profile: unknown key %S" key))
  in
  let fields =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left (fun acc kv -> Result.bind acc (fun a -> field a kv)) (Ok none) fields

let to_string p =
  let fields = ref [] in
  let add k v = fields := Printf.sprintf "%s=%s" k v :: !fields in
  let addf k v = if v > 0. then add k (Printf.sprintf "%g" v) in
  if p.p_seed <> 0 then add "seed" (string_of_int p.p_seed);
  if p.p_latency_s > 0. then add "latency" (Printf.sprintf "%gs" p.p_latency_s);
  addf "rename" p.p_rename;
  addf "fsync" p.p_fsync;
  addf "short" p.p_short;
  addf "eagain" p.p_eagain;
  addf "eio" p.p_eio;
  String.concat "," !fields

let pp ppf p = Format.pp_print_string ppf (to_string p)

(* splitmix64: decisions are a pure function of (seed, op, stream) so a
   profile replays the identical fault schedule on every run. *)
let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let draw p ~op ~stream =
  let h =
    splitmix64
      (Int64.add
         (splitmix64 (Int64.of_int p.p_seed))
         (Int64.add
            (Int64.mul (Int64.of_int op) 1000003L)
            (Int64.of_int stream)))
  in
  (* 53 high bits -> uniform float in [0,1) *)
  Int64.to_float (Int64.shift_right_logical h 11) *. (1. /. 9007199254740992.)
