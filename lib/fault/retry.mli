(** Bounded retry with exponential backoff and deterministic jitter.

    Wraps transient-failure-prone operations (store reads/writes).  The
    backoff sequence is a pure function of [(seed, attempt)], so tests
    replay it exactly; the clock and sleep are injectable for the same
    reason. *)

type policy = {
  r_attempts : int;  (** total attempts including the first; >= 1 *)
  r_base_s : float;  (** backoff before the first retry, seconds *)
  r_factor : float;  (** exponential growth factor *)
  r_jitter : float;  (** fraction in [\[0,1\]]: delay is scaled by
                         [1 + jitter * u] with deterministic [u] *)
  r_deadline_s : float option;
      (** total elapsed-time cap across all attempts; once exceeded the
          last exception propagates instead of retrying *)
}

val default : policy
(** 3 attempts, 1 ms base, x8 growth, 0.5 jitter, no deadline. *)

val no_retry : policy
(** Single attempt: failures propagate immediately. *)

val with_attempts : int -> policy
(** {!default} with [r_attempts] set to [max 1 n]. *)

val transient : exn -> bool
(** True for exceptions worth retrying: [Unix.Unix_error] with
    [EIO]/[EAGAIN]/[EWOULDBLOCK]/[EINTR]/[EBUSY]/[ENFILE]/[EMFILE],
    and [Sys_error]. *)

val backoff : policy -> seed:int -> attempt:int -> float
(** Backoff in seconds before retry number [attempt] (1-based). *)

val run :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  ?now:(unit -> float) ->
  ?seed:int ->
  label:string ->
  (unit -> 'a) ->
  'a
(** [run ~label f] calls [f], retrying per the policy while
    {!transient} exceptions occur.  Non-transient exceptions, exhausted
    attempts, and deadline overruns re-raise the last exception.
    [label] names the operation in debug contexts; [seed] perturbs the
    jitter stream (default 0). *)
