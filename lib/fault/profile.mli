(** Seeded fault profiles for injectable I/O.

    A profile describes the probability of each host-fault class per I/O
    operation, plus a seed.  Fault decisions are a pure function of
    [(seed, operation index, stream)], so a given profile replays the
    exact same fault schedule on every run — chaos tests rely on this to
    compare faulty runs against fault-free ones. *)

type t = {
  p_seed : int;  (** deterministic schedule seed *)
  p_eio : float;  (** transient [EIO] probability, any operation *)
  p_eagain : float;  (** transient [EAGAIN] probability, any operation *)
  p_short : float;  (** short read / detected short write probability *)
  p_fsync : float;  (** silent fsync-loss (truncated write) probability *)
  p_rename : float;  (** rename failure probability *)
  p_latency_s : float;  (** added latency per operation, seconds *)
}

val none : t
(** All probabilities zero, no latency, seed 0. *)

val is_none : t -> bool
(** [true] iff the profile can never inject anything. *)

val parse : string -> (t, string) result
(** Parse the profile grammar: comma-separated [key=value] fields with
    keys [eio], [eagain], [short], [fsync], [rename] (probabilities in
    [\[0,1\]]), [latency] (duration: [2ms], [1s], ...) and [seed]
    (non-negative integer).  Unset keys default to {!none}'s values.
    The empty string parses to {!none}. *)

val to_string : t -> string
(** Canonical grammar round-trip of the non-default fields. *)

val pp : Format.formatter -> t -> unit

val draw : t -> op:int -> stream:int -> float
(** Deterministic uniform draw in [\[0,1)] for operation number [op],
    decision stream [stream] (several independent decisions are made per
    operation). *)
