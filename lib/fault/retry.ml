type policy = {
  r_attempts : int;
  r_base_s : float;
  r_factor : float;
  r_jitter : float;
  r_deadline_s : float option;
}

let default =
  { r_attempts = 3;
    r_base_s = 0.001;
    r_factor = 8.;
    r_jitter = 0.5;
    r_deadline_s = None }

let no_retry = { default with r_attempts = 1 }
let with_attempts n = { default with r_attempts = max 1 n }

let transient = function
  | Unix.Unix_error
      ( ( Unix.EIO | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.EBUSY
        | Unix.ENFILE | Unix.EMFILE ),
        _,
        _ ) ->
    true
  | Sys_error _ -> true
  | _ -> false

let backoff policy ~seed ~attempt =
  let base = policy.r_base_s *. (policy.r_factor ** float_of_int (attempt - 1)) in
  let u =
    Profile.draw
      { Profile.none with Profile.p_seed = seed }
      ~op:attempt ~stream:7
  in
  base *. (1. +. (policy.r_jitter *. u))

let run ?(policy = default) ?(sleep = Unix.sleepf) ?(now = Unix.gettimeofday)
    ?(seed = 0) ~label f =
  ignore label;
  let started = now () in
  let deadline_over () =
    match policy.r_deadline_s with
    | None -> false
    | Some d -> now () -. started >= d
  in
  let rec go attempt =
    match f () with
    | v -> v
    | exception exn ->
      if attempt >= policy.r_attempts || (not (transient exn)) || deadline_over ()
      then raise exn
      else begin
        sleep (backoff policy ~seed ~attempt);
        go (attempt + 1)
      end
  in
  go 1
