(** Circuit breaker for a sick dependency (the on-disk result cache).

    Domain-safe: all state lives in [Atomic.t] cells, so concurrent
    query workers may record successes/failures and consult {!allow}
    without locking.  The clock is injectable for deterministic tests.

    States: [Closed] (normal), [Open] (dependency bypassed until the
    cooldown elapses), [Half_open] (one probe in flight; its outcome
    closes or re-opens the breaker). *)

type t

type state = Closed | Open | Half_open

val create : ?threshold:int -> ?cooldown_s:float -> ?now:(unit -> float) -> unit -> t
(** [threshold] consecutive failures trip the breaker (default 4);
    after [cooldown_s] seconds (default 5.0) one probe is allowed. *)

val state : t -> state

val state_name : t -> string
(** The current state as a lowercase tag ([closed] / [open] /
    [half-open]) for metrics and stats frames. *)

val allow : t -> bool
(** May the caller touch the dependency right now?  [Closed] — yes.
    [Open] — no, unless the cooldown has elapsed, in which case the
    first caller transitions to [Half_open] and probes (subsequent
    callers are refused until the probe resolves). *)

val success : t -> unit
(** Record a successful operation: resets the consecutive-failure
    count; closes the breaker from [Half_open]. *)

val failure : t -> unit
(** Record a failed operation; trips to [Open] at the threshold, or
    immediately from [Half_open]. *)

val tripped : t -> bool
(** Has the breaker ever opened?  Once true, stays true — reported as
    "degraded" in cache stats even after recovery. *)

val failures : t -> int
(** Total failures recorded over the breaker's lifetime. *)

val trips : t -> int
(** How many times the breaker has transitioned to [Open] — each trip
    is one degraded-mode flip, observable through the serve metrics
    surface rather than only as a stderr warning. *)

val probes : t -> int
(** How many [Half_open] cooldown probes have been granted by
    {!allow}. *)
