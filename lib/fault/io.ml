type t = {
  read_file : string -> string;
  write_file : string -> string -> unit;
  rename : string -> string -> unit;
  remove : string -> unit;
  mkdir : string -> int -> unit;
  readdir : string -> string array;
  file_exists : string -> bool;
  is_directory : string -> bool;
  file_size : string -> int;
}

let real =
  { read_file =
      (fun path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic)));
    write_file =
      (fun path content ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc content));
    rename = Sys.rename;
    remove = Sys.remove;
    mkdir = Unix.mkdir;
    readdir = Sys.readdir;
    file_exists = Sys.file_exists;
    is_directory = Sys.is_directory;
    file_size =
      (fun path ->
        try (Unix.stat path).Unix.st_size with
        | Unix.Unix_error _ | Sys_error _ -> 0) }

type stats = { fs_ops : int Atomic.t; fs_faults : int Atomic.t }

let stats () = { fs_ops = Atomic.make 0; fs_faults = Atomic.make 0 }

(* Each operation consumes one index of the profile's schedule; within
   an operation, independent decisions read distinct streams.  The index
   counter is per-interface, so one [inject] wrapper yields one
   reproducible schedule regardless of which paths are touched. *)
type decision =
  | Pass
  | Fail of Unix.error
  | Short_read
  | Short_write
  | Fsync_loss

let inject ?stats (p : Profile.t) io =
  let ops = Atomic.make 0 in
  let count_fault () =
    match stats with Some s -> Atomic.incr s.fs_faults | None -> ()
  in
  let decide kind =
    let op = Atomic.fetch_and_add ops 1 in
    (match stats with Some s -> Atomic.incr s.fs_ops | None -> ());
    if p.Profile.p_latency_s > 0. then Unix.sleepf p.Profile.p_latency_s;
    let u stream = Profile.draw p ~op ~stream in
    let d =
      if u 0 < p.Profile.p_eio then Fail Unix.EIO
      else if u 1 < p.Profile.p_eagain then Fail Unix.EAGAIN
      else
        match kind with
        | `Read -> if u 2 < p.Profile.p_short then Short_read else Pass
        | `Write ->
          if u 2 < p.Profile.p_short then Short_write
          else if u 3 < p.Profile.p_fsync then Fsync_loss
          else Pass
        | `Rename -> if u 2 < p.Profile.p_rename then Fail Unix.EIO else Pass
        | `Other -> Pass
    in
    (match d with Pass -> () | _ -> count_fault ());
    (d, u)
  in
  let truncated u stream s =
    let n = String.length s in
    String.sub s 0 (int_of_float (u stream *. float_of_int n))
  in
  { read_file =
      (fun path ->
        match decide `Read with
        | Fail e, _ -> raise (Unix.Unix_error (e, "read", path))
        | Short_read, u -> truncated u 4 (io.read_file path)
        | _ -> io.read_file path);
    write_file =
      (fun path content ->
        match decide `Write with
        | Fail e, _ -> raise (Unix.Unix_error (e, "write", path))
        | Short_write, u ->
          io.write_file path (truncated u 4 content);
          raise (Unix.Unix_error (Unix.EIO, "write", path))
        | Fsync_loss, u -> io.write_file path (truncated u 4 content)
        | _ -> io.write_file path content);
    rename =
      (fun src dst ->
        match decide `Rename with
        | Fail e, _ -> raise (Unix.Unix_error (e, "rename", src))
        | _ -> io.rename src dst);
    remove =
      (fun path ->
        match decide `Other with
        | Fail e, _ -> raise (Unix.Unix_error (e, "unlink", path))
        | _ -> io.remove path);
    mkdir =
      (fun path perm ->
        match decide `Other with
        | Fail e, _ -> raise (Unix.Unix_error (e, "mkdir", path))
        | _ -> io.mkdir path perm);
    readdir =
      (fun path ->
        match decide `Other with
        | Fail e, _ -> raise (Unix.Unix_error (e, "readdir", path))
        | _ -> io.readdir path);
    (* Existence probes and size stats stay fault-free: they are cheap,
       idempotent, and injecting here would only turn a Hit into a Miss
       without exercising any new recovery path. *)
    file_exists = io.file_exists;
    is_directory = io.is_directory;
    file_size = io.file_size }
