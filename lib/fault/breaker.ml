type state = Closed | Open | Half_open

type t = {
  threshold : int;
  cooldown_s : float;
  now : unit -> float;
  st : state Atomic.t;
  consecutive : int Atomic.t;
  total_failures : int Atomic.t;
  opened_at : float Atomic.t;
  ever_open : bool Atomic.t;
  total_trips : int Atomic.t;
  total_probes : int Atomic.t;
}

let create ?(threshold = 4) ?(cooldown_s = 5.0) ?(now = Unix.gettimeofday) () =
  { threshold = max 1 threshold;
    cooldown_s;
    now;
    st = Atomic.make Closed;
    consecutive = Atomic.make 0;
    total_failures = Atomic.make 0;
    opened_at = Atomic.make 0.;
    ever_open = Atomic.make false;
    total_trips = Atomic.make 0;
    total_probes = Atomic.make 0 }

let state t = Atomic.get t.st

let state_name t =
  match Atomic.get t.st with
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let allow t =
  match Atomic.get t.st with
  | Closed -> true
  | Half_open -> false
  | Open ->
    t.now () -. Atomic.get t.opened_at >= t.cooldown_s
    (* CAS so exactly one caller wins the probe slot. *)
    && Atomic.compare_and_set t.st Open Half_open
    && begin
      Atomic.incr t.total_probes;
      true
    end

let trip t =
  Atomic.set t.opened_at (t.now ());
  Atomic.set t.st Open;
  Atomic.set t.ever_open true;
  Atomic.incr t.total_trips

let success t =
  Atomic.set t.consecutive 0;
  match Atomic.get t.st with
  | Half_open -> Atomic.set t.st Closed
  | Closed | Open -> ()

let failure t =
  Atomic.incr t.total_failures;
  let n = 1 + Atomic.fetch_and_add t.consecutive 1 in
  match Atomic.get t.st with
  | Half_open -> trip t
  | Closed when n >= t.threshold -> trip t
  | Closed | Open -> ()

let tripped t = Atomic.get t.ever_open
let failures t = Atomic.get t.total_failures
let trips t = Atomic.get t.total_trips
let probes t = Atomic.get t.total_probes
