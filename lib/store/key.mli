(** Canonical cache keys.

    The key identifies everything that determines a verification result:
    the network, the query, and the result-affecting explorer
    configuration (extrapolation flags).  It deliberately excludes run
    budgets — those govern {e whether} the run finishes, not what the
    answer is — so a result computed under one budget can answer
    requests made under another (see {!Entry.reusable}).

    The network contribution is a digest of its {!Xta.Print} text.  The
    printer is canonical (parse-then-print is a fixpoint), so a model
    loaded from [.xta] text and the same model printed and re-parsed
    produce identical keys, while any semantic edit — a renamed clock, a
    changed bound, a reordered edge — changes the text and hence the
    key. *)

(** Digest of the printed network text alone, under the key-schema
    prefix.  This is also the explorer's snapshot fingerprint
    ingredient. *)
val network_digest : Ta.Model.network -> D128.t

(** [digest ?tight ?lu ?reduce ~query net] is the full cache key.
    [query] must be canonical query text ([Mc.Query.to_string]).
    Defaults mirror the explorer's: [tight=true], [lu=true],
    [reduce=true]. *)
val digest :
  ?tight:bool -> ?lu:bool -> ?reduce:bool -> query:string ->
  Ta.Model.network -> D128.t

(** {1 psv-key-v2: per-automaton manifests}

    The v1 key digests the whole printed network, so any edit moves
    every key.  The v2 manifest splits the network into independently
    digested parts — the global declarations (clocks, variables,
    channels) and one digest per automaton — so the incremental layer
    ({!Incr.Cone}) can tell {e which} automata an edit touched and
    reuse results whose cone of influence avoids them.  v1 result keys
    are unchanged: the manifest rides alongside, it does not replace
    them. *)

type manifest = {
  mf_decls : D128.t;
      (** digest of net name, clocks, variable declarations (name,
          init, min, max) and channel declarations (name, kind) *)
  mf_automata : (string * D128.t) list;
      (** per-automaton digests over the canonical
          {!Ta.Model.pp_automaton} text, in declaration order *)
}

(** [manifest net] computes the per-part digests under the
    ["psv-key-v2"] schema. *)
val manifest : Ta.Model.network -> manifest

(** Single digest summarising a whole manifest (used by session
    fingerprints and fsck). *)
val manifest_digest : manifest -> D128.t

val manifest_equal : manifest -> manifest -> bool
