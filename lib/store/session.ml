let magic_sess = "PSVSESS1"
let magic_graph = "PSVGRAPH1"
let schema = "psv-sess-v1"

type t = {
  ss_tag : string;
  ss_query : string;
  ss_net : string;
  ss_result_key : D128.t;
  ss_manifest : Key.manifest;
}

let session_key ~tag ~query =
  let st = D128.builder () in
  D128.add_string st schema;
  D128.add_string st tag;
  D128.add_string st query;
  D128.value st

let sess_name key = D128.to_hex key ^ ".psvs"
let graph_name key = D128.to_hex key ^ ".psvg"
let path disk name = Filename.concat (Disk.dir disk) name

(* Same framing as PSVSTORE1 entries: magic, payload digest, payload
   length, payload.  The digest is verified before the payload is
   interpreted, so truncation and bit rot surface as [Error], never as
   a parse crash (or, for graphs, a [Marshal] segfault). *)
let frame magic payload =
  Printf.sprintf "%s\n%s\n%d\n%s" magic
    (D128.to_hex (D128.of_string payload))
    (String.length payload) payload

let unframe magic raw =
  let ( let* ) = Result.bind in
  let line_end from =
    match String.index_from_opt raw from '\n' with
    | Some i -> Ok i
    | None -> Error "truncated header"
  in
  let* e1 = line_end 0 in
  let* () =
    if String.sub raw 0 e1 = magic then Ok () else Error "bad magic"
  in
  let* e2 = line_end (e1 + 1) in
  let* digest =
    match D128.of_hex (String.sub raw (e1 + 1) (e2 - e1 - 1)) with
    | Some d -> Ok d
    | None -> Error "bad payload digest line"
  in
  let* e3 = line_end (e2 + 1) in
  let* len =
    match int_of_string_opt (String.sub raw (e2 + 1) (e3 - e2 - 1)) with
    | Some n when n >= 0 -> Ok n
    | _ -> Error "bad payload length line"
  in
  let body_start = e3 + 1 in
  let* () =
    if String.length raw - body_start = len then Ok ()
    else Error "payload length mismatch (truncated?)"
  in
  let payload = String.sub raw body_start len in
  if D128.equal (D128.of_string payload) digest then Ok payload
  else Error "payload digest mismatch"

let read_raw p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic publish via tmp + rename, mirroring [Disk.insert]. *)
let tmp_counter = Atomic.make 0

let write_raw disk name content =
  let tmp =
    Filename.concat (Disk.dir disk)
      (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1))
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content);
    Unix.rename tmp (path disk name)
  with
  | () -> ()
  | exception exn ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise exn

let manifest_to_json (m : Key.manifest) =
  Json.Obj
    [
      ("decls", Json.String (D128.to_hex m.Key.mf_decls));
      ( "automata",
        Json.List
          (List.map
             (fun (name, d) ->
               Json.List [ Json.String name; Json.String (D128.to_hex d) ])
             m.Key.mf_automata) );
    ]

let manifest_of_json j =
  let ( let* ) = Option.bind in
  let* decls = Json.member "decls" j in
  let* decls = Json.to_str decls in
  let* decls = D128.of_hex decls in
  let* autos = Json.member "automata" j in
  let* autos = Json.to_list autos in
  let* autos =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match item with
        | Json.List [ Json.String name; Json.String hex ] ->
          let* d = D128.of_hex hex in
          Some ((name, d) :: acc)
        | _ -> None)
      (Some []) autos
  in
  Some { Key.mf_decls = decls; mf_automata = List.rev autos }

let to_json s =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("tag", Json.String s.ss_tag);
      ("query", Json.String s.ss_query);
      ("net", Json.String s.ss_net);
      ("result_key", Json.String (D128.to_hex s.ss_result_key));
      ("manifest", manifest_to_json s.ss_manifest);
    ]

let of_json j =
  let str name =
    match Option.bind (Json.member name j) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let ( let* ) = Result.bind in
  let* sc = str "schema" in
  let* () = if sc = schema then Ok () else Error ("unknown schema " ^ sc) in
  let* ss_tag = str "tag" in
  let* ss_query = str "query" in
  let* ss_net = str "net" in
  let* key_hex = str "result_key" in
  let* ss_result_key =
    match D128.of_hex key_hex with
    | Some k -> Ok k
    | None -> Error "bad result_key"
  in
  let* ss_manifest =
    match Option.bind (Json.member "manifest" j) manifest_of_json with
    | Some m -> Ok m
    | None -> Error "bad manifest"
  in
  Ok { ss_tag; ss_query; ss_net; ss_result_key; ss_manifest }

let save disk s =
  write_raw disk
    (sess_name (session_key ~tag:s.ss_tag ~query:s.ss_query))
    (frame magic_sess (Json.to_string (to_json s)))

let load disk key =
  let p = path disk (sess_name key) in
  if not (Sys.file_exists p) then Error "no session"
  else
    match read_raw p with
    | exception (Sys_error msg) -> Error msg
    | raw ->
      let ( let* ) = Result.bind in
      let* payload = unframe magic_sess raw in
      let* json = Json.parse payload in
      of_json json

let save_graph disk key blob =
  write_raw disk (graph_name key) (frame magic_graph blob)

let load_graph disk key =
  let p = path disk (graph_name key) in
  if not (Sys.file_exists p) then None
  else
    match read_raw p with
    | exception (Sys_error _) -> None
    | raw -> (
      match unframe magic_graph raw with
      | Ok payload -> Some payload
      | Error _ -> None)

let remove disk key =
  List.iter
    (fun name ->
      try Sys.remove (path disk name) with Sys_error _ -> ())
    [ sess_name key; graph_name key ]

let files disk suffix =
  match Sys.readdir (Disk.dir disk) with
  | exception Sys_error _ -> []
  | arr ->
    Array.to_list arr
    |> List.filter (fun f -> Filename.check_suffix f suffix)
    |> List.sort String.compare

let list disk = files disk ".psvs"

type fsck = {
  sk_ok : int;
  sk_bad : (string * string) list;
  sk_graphs : int;
}

(* A session passes fsck only if its stored manifest matches a fresh
   recomputation from the stored network text — digest per automaton,
   not just the roll-up — so a stale or hand-edited manifest is caught
   even when the framing digest is internally consistent. *)
let check_session disk file =
  let ( let* ) = Result.bind in
  let* raw =
    match read_raw (path disk file) with
    | raw -> Ok raw
    | exception (Sys_error msg) -> Error msg
  in
  let* payload = unframe magic_sess raw in
  let* json = Json.parse payload in
  let* s = of_json json in
  let* () =
    if sess_name (session_key ~tag:s.ss_tag ~query:s.ss_query) = file then Ok ()
    else Error "session key does not match file name"
  in
  let* net =
    match Xta.Parse.network s.ss_net with
    | Ok net -> Ok net
    | Error msg -> Error ("stored network does not parse: " ^ msg)
  in
  if Key.manifest_equal (Key.manifest net) s.ss_manifest then Ok ()
  else Error "manifest does not match recomputed per-automaton digests"

let check_graph disk file =
  match read_raw (path disk file) with
  | exception (Sys_error msg) -> Error msg
  | raw -> Result.map (fun _ -> ()) (unframe magic_graph raw)

let fsck disk =
  let acc =
    List.fold_left
      (fun acc file ->
        match check_session disk file with
        | Ok () -> { acc with sk_ok = acc.sk_ok + 1 }
        | Error msg -> { acc with sk_bad = (file, msg) :: acc.sk_bad })
      { sk_ok = 0; sk_bad = []; sk_graphs = 0 }
      (list disk)
  in
  let acc =
    List.fold_left
      (fun acc file ->
        match check_graph disk file with
        | Ok () -> { acc with sk_graphs = acc.sk_graphs + 1 }
        | Error msg -> { acc with sk_bad = (file, msg) :: acc.sk_bad })
      acc (files disk ".psvg")
  in
  { acc with sk_bad = List.rev acc.sk_bad }

let gc disk =
  let removed = ref 0 in
  let sweep suffix check =
    List.iter
      (fun file ->
        match check disk file with
        | Ok () -> ()
        | Error _ -> (
          try
            Sys.remove (path disk file);
            incr removed
          with Sys_error _ -> ()))
      (files disk suffix)
  in
  sweep ".psvs" check_session;
  sweep ".psvg" check_graph;
  !removed
