(** 128-bit structural digests.

    The key primitive of the persistent result store: a strong,
    process-independent digest over structured data.  A single OCaml
    [int] hash (as the explorer's snapshot fingerprint once was) is far
    too collision-prone to key a cache that outlives the process — with
    62 usable bits, a store of a few million entries has a real chance
    of a silent cross-model collision; at 128 bits the chance is
    negligible at any plausible store size.

    The digest is {e not} cryptographic: it defends against accidental
    collisions and bit rot, not adversaries.  It is deterministic across
    runs, platforms and OCaml versions (no [Hashtbl.hash], no
    [Marshal] in the input path), which is what lets one store serve
    many processes over time. *)

type t = { hi : int64; lo : int64 }

val equal : t -> t -> bool
val compare : t -> t -> int

(** 32 lowercase hex characters. *)
val to_hex : t -> string

(** Inverse of {!to_hex}; [None] unless the input is exactly 32 hex
    characters. *)
val of_hex : string -> t option

val pp : Format.formatter -> t -> unit

(** {1 Incremental construction}

    A builder folds a stream of typed atoms into the digest.  Strings
    and arrays are length-prefixed, so adjacent fields cannot alias
    (["ab","c"] and ["a","bc"] digest differently). *)

type builder

val builder : unit -> builder
val add_int : builder -> int -> unit
val add_int64 : builder -> int64 -> unit
val add_bool : builder -> bool -> unit
val add_char : builder -> char -> unit
val add_string : builder -> string -> unit
val add_int_array : builder -> int array -> unit

(** Finalize.  The builder may keep accumulating afterwards; [value]
    reflects everything added so far. *)
val value : builder -> t

(** One-shot digest of a string. *)
val of_string : string -> t
