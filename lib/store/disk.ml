let version = "PSVSTORE1"
let marker = "PSVSTORE"

type t = { dir : string }

(* Temp names must be unique per concurrent writer.  The pid separates
   processes; this process-global counter separates handles and domains
   within one process (a per-handle counter would collide when two
   domains each open their own handle on the same directory). *)
let tmp_counter = Atomic.make 0

let dir t = t.dir
let marker_path dir = Filename.concat dir marker
let entry_name key = D128.to_hex key ^ ".psve"
let entry_path t key = Filename.concat t.dir (entry_name key)

let is_store dir = Sys.file_exists (marker_path dir)

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc content)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let open_ ?(create = true) path =
  if Sys.file_exists path then
    if not (Sys.is_directory path) then
      Error (Printf.sprintf "%s exists and is not a directory" path)
    else if is_store path then Ok { dir = path }
    else if create && Sys.readdir path = [||] then begin
      write_file (marker_path path) (version ^ "\n");
      Ok { dir = path }
    end
    else
      Error
        (Printf.sprintf "%s is not a psv result store (no %s marker)" path
           marker)
  else if create then begin
    (try Unix.mkdir path 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    write_file (marker_path path) (version ^ "\n");
    Ok { dir = path }
  end
  else Error (Printf.sprintf "%s does not exist" path)

let open_existing path = open_ ~create:false path

type lookup =
  | Hit of Entry.t
  | Miss
  | Corrupt of string

(* Parse one entry file body. The digest and length lines guard the
   payload: both are checked before the JSON parser runs, so truncation
   and bit rot surface as [Error] here, not as a parse crash. *)
let decode_entry raw =
  let ( let* ) = Result.bind in
  let line_end from =
    match String.index_from_opt raw from '\n' with
    | Some i -> Ok i
    | None -> Error "truncated header"
  in
  let* e1 = line_end 0 in
  let magic = String.sub raw 0 e1 in
  let* () =
    if magic = version then Ok ()
    else if String.length magic >= 8 && String.sub magic 0 8 = "PSVSTORE" then
      Error (Printf.sprintf "entry version %S (this build reads %S)" magic version)
    else Error "not a psv store entry"
  in
  let* e2 = line_end (e1 + 1) in
  let digest_hex = String.sub raw (e1 + 1) (e2 - e1 - 1) in
  let* digest =
    match D128.of_hex digest_hex with
    | Some d -> Ok d
    | None -> Error "bad payload digest line"
  in
  let* e3 = line_end (e2 + 1) in
  let* len =
    match int_of_string_opt (String.sub raw (e2 + 1) (e3 - e2 - 1)) with
    | Some n when n >= 0 -> Ok n
    | _ -> Error "bad payload length line"
  in
  let body_start = e3 + 1 in
  let* () =
    if String.length raw - body_start = len then Ok ()
    else Error "payload length mismatch (truncated entry?)"
  in
  let payload = String.sub raw body_start len in
  let* () =
    if D128.equal (D128.of_string payload) digest then Ok ()
    else Error "payload digest mismatch"
  in
  let* json = Json.parse payload in
  Entry.of_json json

let read_entry path =
  match read_file path with
  | raw -> (
    match decode_entry raw with
    | Ok e -> Hit e
    | Error msg -> Corrupt msg)
  | exception Sys_error msg -> Corrupt msg

let lookup t key =
  let path = entry_path t key in
  if not (Sys.file_exists path) then Miss
  else
    match read_entry path with
    | Hit e when not (D128.equal e.Entry.en_key key) ->
      Corrupt "entry key does not match file name"
    | r -> r

let encode_entry entry =
  let payload = Json.to_string (Entry.to_json entry) in
  Printf.sprintf "%s\n%s\n%d\n%s" version
    (D128.to_hex (D128.of_string payload))
    (String.length payload) payload

let insert t entry =
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1))
  in
  write_file tmp (encode_entry entry);
  Sys.rename tmp (entry_path t entry.Entry.en_key)

let remove t key =
  try Sys.remove (entry_path t key) with Sys_error _ -> ()

let entry_files t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".psve")
  |> List.sort String.compare

let default_warn msg = Printf.eprintf "psv: store: warning: %s\n%!" msg

let fold ?(warn = default_warn) t ~init ~f =
  List.fold_left
    (fun acc file ->
      match read_entry (Filename.concat t.dir file) with
      | Hit e -> f acc e
      | Miss -> acc
      | Corrupt msg ->
        warn (Printf.sprintf "skipping %s: %s" file msg);
        acc)
    init (entry_files t)

type stats = { st_entries : int; st_corrupt : int; st_bytes : int }

let stats t =
  List.fold_left
    (fun acc file ->
      let path = Filename.concat t.dir file in
      let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
      match read_entry path with
      | Hit _ ->
        { acc with st_entries = acc.st_entries + 1; st_bytes = acc.st_bytes + bytes }
      | Miss | Corrupt _ ->
        { acc with st_corrupt = acc.st_corrupt + 1; st_bytes = acc.st_bytes + bytes })
    { st_entries = 0; st_corrupt = 0; st_bytes = 0 }
    (entry_files t)

let gc t =
  let removed = ref 0 in
  Array.iter
    (fun file ->
      let path = Filename.concat t.dir file in
      let stale_tmp =
        String.length file > 4 && String.sub file 0 4 = ".tmp"
      in
      let corrupt =
        Filename.check_suffix file ".psve"
        && match read_entry path with Corrupt _ -> true | _ -> false
      in
      if stale_tmp || corrupt then begin
        (try Sys.remove path; incr removed with Sys_error _ -> ())
      end)
    (Sys.readdir t.dir);
  !removed

type fsck_report = { fk_ok : int; fk_bad : (string * string) list }

let fsck t =
  List.fold_left
    (fun acc file ->
      match read_entry (Filename.concat t.dir file) with
      | Hit e ->
        if entry_name e.Entry.en_key = file then { acc with fk_ok = acc.fk_ok + 1 }
        else
          { acc with
            fk_bad = (file, "entry key does not match file name") :: acc.fk_bad }
      | Miss -> acc
      | Corrupt msg -> { acc with fk_bad = (file, msg) :: acc.fk_bad })
    { fk_ok = 0; fk_bad = [] }
    (entry_files t)
