let version = "PSVSTORE1"
let marker = "PSVSTORE"

type t = { dir : string; io : Fault.Io.t; retry : Fault.Retry.policy }

(* Temp names must be unique per concurrent writer.  The pid separates
   processes; this process-global counter separates handles and domains
   within one process (a per-handle counter would collide when two
   domains each open their own handle on the same directory). *)
let tmp_counter = Atomic.make 0

let dir t = t.dir
let marker_path dir = Filename.concat dir marker
let entry_name key = D128.to_hex key ^ ".psve"
let entry_path t key = Filename.concat t.dir (entry_name key)

let is_store dir = Sys.file_exists (marker_path dir)

(* All host I/O below goes through [t.io] wrapped in the retry policy,
   so transient faults (injected or real) are absorbed before they can
   surface; what escapes is persistent unavailability. *)
let read_file t path =
  Fault.Retry.run ~policy:t.retry ~label:"store-read" (fun () ->
      t.io.Fault.Io.read_file path)

let write_file t path content =
  Fault.Retry.run ~policy:t.retry ~label:"store-write" (fun () ->
      t.io.Fault.Io.write_file path content)

let rename t src dst =
  Fault.Retry.run ~policy:t.retry ~label:"store-rename" (fun () ->
      t.io.Fault.Io.rename src dst)

let open_ ?(io = Fault.Io.real) ?(retry = Fault.Retry.default) ?(create = true)
    path =
  let t = { dir = path; io; retry } in
  if io.Fault.Io.file_exists path then
    if not (io.Fault.Io.is_directory path) then
      Error (Printf.sprintf "%s exists and is not a directory" path)
    else if is_store path then Ok t
    else if create && io.Fault.Io.readdir path = [||] then begin
      write_file t (marker_path path) (version ^ "\n");
      Ok t
    end
    else
      Error
        (Printf.sprintf "%s is not a psv result store (no %s marker)" path
           marker)
  else if create then begin
    (try io.Fault.Io.mkdir path 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    write_file t (marker_path path) (version ^ "\n");
    Ok t
  end
  else Error (Printf.sprintf "%s does not exist" path)

let open_existing ?io ?retry path = open_ ?io ?retry ~create:false path

type lookup =
  | Hit of Entry.t
  | Miss
  | Corrupt of string
  | Unavailable of string

(* Parse one entry file body. The digest and length lines guard the
   payload: both are checked before the JSON parser runs, so truncation
   and bit rot surface as [Error] here, not as a parse crash. *)
let decode_entry raw =
  let ( let* ) = Result.bind in
  let line_end from =
    match String.index_from_opt raw from '\n' with
    | Some i -> Ok i
    | None -> Error "truncated header"
  in
  let* e1 = line_end 0 in
  let magic = String.sub raw 0 e1 in
  let* () =
    if magic = version then Ok ()
    else if String.length magic >= 8 && String.sub magic 0 8 = "PSVSTORE" then
      Error (Printf.sprintf "entry version %S (this build reads %S)" magic version)
    else Error "not a psv store entry"
  in
  let* e2 = line_end (e1 + 1) in
  let digest_hex = String.sub raw (e1 + 1) (e2 - e1 - 1) in
  let* digest =
    match D128.of_hex digest_hex with
    | Some d -> Ok d
    | None -> Error "bad payload digest line"
  in
  let* e3 = line_end (e2 + 1) in
  let* len =
    match int_of_string_opt (String.sub raw (e2 + 1) (e3 - e2 - 1)) with
    | Some n when n >= 0 -> Ok n
    | _ -> Error "bad payload length line"
  in
  let body_start = e3 + 1 in
  let* () =
    if String.length raw - body_start = len then Ok ()
    else Error "payload length mismatch (truncated entry?)"
  in
  let payload = String.sub raw body_start len in
  let* () =
    if D128.equal (D128.of_string payload) digest then Ok ()
    else Error "payload digest mismatch"
  in
  let* json = Json.parse payload in
  Entry.of_json json

(* I/O-level failure (retries exhausted) is [Unavailable] — the device
   or directory is sick, and the cache layer's circuit breaker feeds on
   it.  A readable file with bad content is [Corrupt] — the host is
   fine, the data is not, so it does not count against the breaker. *)
let read_entry t path =
  match read_file t path with
  | raw -> (
    match decode_entry raw with
    | Ok e -> Hit e
    | Error msg -> Corrupt msg)
  | exception Sys_error msg -> Unavailable msg
  | exception Unix.Unix_error (e, op, _) ->
    Unavailable (Printf.sprintf "%s: %s" op (Unix.error_message e))

let lookup t key =
  let path = entry_path t key in
  if not (t.io.Fault.Io.file_exists path) then Miss
  else
    match read_entry t path with
    | Hit e when not (D128.equal e.Entry.en_key key) ->
      Corrupt "entry key does not match file name"
    | r -> r

let encode_entry entry =
  let payload = Json.to_string (Entry.to_json entry) in
  Printf.sprintf "%s\n%s\n%d\n%s" version
    (D128.to_hex (D128.of_string payload))
    (String.length payload) payload

let insert t entry =
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1))
  in
  match
    write_file t tmp (encode_entry entry);
    rename t tmp (entry_path t entry.Entry.en_key)
  with
  | () -> ()
  | exception exn ->
    (* Leave no trash behind a failed publish; the file is ours alone
       (pid + counter), so removing it never races another writer. *)
    (try t.io.Fault.Io.remove tmp with _ -> ());
    raise exn

let remove t key =
  try t.io.Fault.Io.remove (entry_path t key) with
  | Sys_error _ | Unix.Unix_error _ -> ()

let entry_files t =
  t.io.Fault.Io.readdir t.dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".psve")
  |> List.sort String.compare

(* [.tmp.<pid>.<n>] files belong to a live writer mid-publish or to a
   writer that died between write and rename.  Liveness is decided by
   signal-0 probe; unparsable names count as orphans. *)
let tmp_owner_alive file =
  match String.split_on_char '.' file with
  | [ ""; "tmp"; pid; _n ] -> (
    match int_of_string_opt pid with
    | None -> false
    | Some pid -> (
      match Unix.kill pid 0 with
      | () -> true
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
      | exception Unix.Unix_error _ -> true))
  | _ -> false

let is_tmp file = String.length file > 4 && String.sub file 0 4 = ".tmp"

let orphan_tmp_files t =
  t.io.Fault.Io.readdir t.dir |> Array.to_list
  |> List.filter (fun f -> is_tmp f && not (tmp_owner_alive f))
  |> List.sort String.compare

let default_warn msg = Printf.eprintf "psv: store: warning: %s\n%!" msg

let fold ?(warn = default_warn) t ~init ~f =
  List.fold_left
    (fun acc file ->
      match read_entry t (Filename.concat t.dir file) with
      | Hit e -> f acc e
      | Miss -> acc
      | Corrupt msg | Unavailable msg ->
        warn (Printf.sprintf "skipping %s: %s" file msg);
        acc)
    init (entry_files t)

type stats = {
  st_entries : int;
  st_corrupt : int;
  st_bytes : int;
  st_corrupt_bytes : int;
}

let stats t =
  List.fold_left
    (fun acc file ->
      let path = Filename.concat t.dir file in
      let bytes = t.io.Fault.Io.file_size path in
      match read_entry t path with
      | Hit _ ->
        { acc with st_entries = acc.st_entries + 1; st_bytes = acc.st_bytes + bytes }
      | Miss | Corrupt _ | Unavailable _ ->
        { acc with
          st_corrupt = acc.st_corrupt + 1;
          st_corrupt_bytes = acc.st_corrupt_bytes + bytes })
    { st_entries = 0; st_corrupt = 0; st_bytes = 0; st_corrupt_bytes = 0 }
    (entry_files t)

let gc t =
  let removed = ref 0 in
  Array.iter
    (fun file ->
      let path = Filename.concat t.dir file in
      let orphan_tmp = is_tmp file && not (tmp_owner_alive file) in
      let corrupt =
        Filename.check_suffix file ".psve"
        && match read_entry t path with Corrupt _ -> true | _ -> false
      in
      if orphan_tmp || corrupt then begin
        try
          t.io.Fault.Io.remove path;
          incr removed
        with Sys_error _ | Unix.Unix_error _ -> ()
      end)
    (t.io.Fault.Io.readdir t.dir);
  !removed

type fsck_report = {
  fk_ok : int;
  fk_bad : (string * string) list;
  fk_tmp : string list;
}

let fsck t =
  let report =
    List.fold_left
      (fun acc file ->
        match read_entry t (Filename.concat t.dir file) with
        | Hit e ->
          if entry_name e.Entry.en_key = file then { acc with fk_ok = acc.fk_ok + 1 }
          else
            { acc with
              fk_bad = (file, "entry key does not match file name") :: acc.fk_bad }
        | Miss -> acc
        | Corrupt msg | Unavailable msg ->
          { acc with fk_bad = (file, msg) :: acc.fk_bad })
      { fk_ok = 0; fk_bad = []; fk_tmp = [] }
      (entry_files t)
  in
  { report with fk_tmp = orphan_tmp_files t }
