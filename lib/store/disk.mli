(** The durable on-disk result store.

    A store is one directory holding a recognition marker ([PSVSTORE])
    and one file per entry ([<32-hex-key>.psve]).  An entry file is:

    {v
PSVSTORE1\n
<32-hex digest of the payload>\n
<payload byte length>\n
<payload: canonical JSON, Entry.to_json>
    v}

    {b Crash safety.}  Writes go to a [.tmp.<pid>.<n>] file in the store
    directory and are published with an atomic rename — so readers and
    concurrent [--jobs] writers only ever observe absent or complete
    files, never partial ones.  Two writers racing on the same key both
    publish a complete entry; last rename wins and either answer is
    valid for the key.  A writer killed between write and rename leaves
    an orphan temp file; {!gc} removes temp files whose owning pid is
    dead, and {!fsck} reports them.

    {b Fault plane.}  All host I/O goes through an injectable
    {!Fault.Io.t} wrapped in a {!Fault.Retry} policy: transient faults
    ([EIO]/[EAGAIN]/...) are retried with exponential backoff; what
    escapes surfaces as {!Unavailable} so the cache layer's circuit
    breaker can trip into degraded mode.  Production callers use the
    defaults ({!Fault.Io.real}, {!Fault.Retry.default}); chaos tests
    inject seeded fault schedules.

    {b Corruption tolerance.}  The length and digest lines are verified
    {e before} the JSON is parsed; a truncated, garbled or
    version-bumped file is reported as {!Corrupt} (and skipped with a
    warning by [fold]), never an exception.  No [Marshal] is involved
    anywhere on the read path. *)

type t

val version : string
(** The entry-format magic, ["PSVSTORE1"]. *)

val dir : t -> string

(** [open_ ?io ?retry ?create dir] opens (by default creating) a store
    at [dir].  [Error] if the directory exists but is not a recognized
    store, or — with [create:false] — if it does not exist.  [io]
    (default {!Fault.Io.real}) and [retry] (default
    {!Fault.Retry.default}) configure the host fault plane. *)
val open_ :
  ?io:Fault.Io.t ->
  ?retry:Fault.Retry.policy ->
  ?create:bool ->
  string ->
  (t, string) result

(** [open_existing dir] never creates: [Error] unless [dir] is a
    recognized store.  This is the guard behind [psv cache gc]. *)
val open_existing :
  ?io:Fault.Io.t -> ?retry:Fault.Retry.policy -> string -> (t, string) result

type lookup =
  | Hit of Entry.t
  | Miss
  | Corrupt of string  (** file readable but content bad; reason attached *)
  | Unavailable of string
      (** host I/O failed even after retries — the store is sick, the
          entry may well be fine; feeds the cache circuit breaker *)

val lookup : t -> D128.t -> lookup

(** [insert t entry] durably publishes [entry] under its key,
    overwriting any previous entry for that key.  Raises (after
    exhausting the retry policy) if the host refuses; the temp file is
    cleaned up best-effort first. *)
val insert : t -> Entry.t -> unit

(** [remove t key] deletes the entry for [key] if present. *)
val remove : t -> D128.t -> unit

(** Folds over all well-formed entries; ill-formed files are passed to
    [warn] (default: a [Logs]-style line on stderr) and skipped. *)
val fold :
  ?warn:(string -> unit) -> t -> init:'a -> f:('a -> Entry.t -> 'a) -> 'a

type stats = {
  st_entries : int;       (** well-formed entries *)
  st_corrupt : int;       (** unreadable [.psve] files *)
  st_bytes : int;         (** total size of well-formed entries only *)
  st_corrupt_bytes : int;
      (** bytes held by unreadable files — what [gc] would reclaim *)
}

val stats : t -> stats

(** [gc t] removes corrupt entry files and orphaned temp files (temp
    files whose owning pid is dead; live writers' temps are left
    alone); returns the number of files removed. *)
val gc : t -> int

type fsck_report = {
  fk_ok : int;
  fk_bad : (string * string) list;  (** file name, problem *)
  fk_tmp : string list;
      (** orphaned [.tmp.<pid>.<n>] files left by dead writers *)
}

(** Full verification pass: magic, digest, length, JSON shape, and that
    the key recorded in the payload matches the file name.  Orphaned
    temp files are reported in [fk_tmp] but do not make the store
    unclean ([fk_bad] alone decides that). *)
val fsck : t -> fsck_report
