type t = { hi : int64; lo : int64 }

let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo

let compare a b =
  match Int64.unsigned_compare a.hi b.hi with
  | 0 -> Int64.unsigned_compare a.lo b.lo
  | c -> c

let to_hex t = Printf.sprintf "%016Lx%016Lx" t.hi t.lo

let is_hex c =
  (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let of_hex s =
  if String.length s <> 32 || not (String.for_all is_hex s) then None
  else
    (* unsigned parse: Int64.of_string "0xffff..." wraps to the negative
       representation, which is exactly the bit pattern we want *)
    let part off = Int64.of_string ("0x" ^ String.sub s off 16) in
    Some { hi = part 0; lo = part 16 }

let pp ppf t = Format.pp_print_string ppf (to_hex t)

(* Two 64-bit FNV-1a lanes over the same byte stream, with distinct
   offset bases and the second lane's input bytes perturbed, so the
   lanes never collapse onto each other; a murmur3-style finalizer mixes
   the lanes into the published halves.  ~3 multiplies per byte — cheap
   enough for model-text-sized inputs (tens of kB). *)

type builder = { mutable a : int64; mutable b : int64 }

let fnv_prime = 0x100000001b3L

let builder () = { a = 0xcbf29ce484222325L; b = 0x6c62272e07bb0142L }

let add_byte st c =
  st.a <- Int64.mul (Int64.logxor st.a (Int64.of_int c)) fnv_prime;
  st.b <- Int64.mul (Int64.logxor st.b (Int64.of_int (c lxor 0xa5))) fnv_prime

let add_char st c = add_byte st (Char.code c)

let add_int64 st v =
  for shift = 0 to 7 do
    add_byte st (Int64.to_int (Int64.shift_right_logical v (8 * shift)) land 0xff)
  done

let add_int st v = add_int64 st (Int64.of_int v)

let add_bool st b = add_byte st (if b then 1 else 0)

let add_string st s =
  add_int st (String.length s);
  String.iter (fun c -> add_byte st (Char.code c)) s

let add_int_array st a =
  add_int st (Array.length a);
  Array.iter (fun v -> add_int st v) a

let fmix64 k =
  let k = Int64.logxor k (Int64.shift_right_logical k 33) in
  let k = Int64.mul k 0xff51afd7ed558ccdL in
  let k = Int64.logxor k (Int64.shift_right_logical k 33) in
  let k = Int64.mul k 0xc4ceb9fe1a85ec53L in
  Int64.logxor k (Int64.shift_right_logical k 33)

let value st =
  { hi = fmix64 (Int64.add st.a (Int64.mul 0x9e3779b97f4a7c15L st.b));
    lo = fmix64 (Int64.add st.b (Int64.mul 0xc2b2ae3d27d4eb4fL st.a)) }

let of_string s =
  let st = builder () in
  add_string st s;
  value st
