type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- parsing ------------------------------------------------------------ *)

exception Bad of int * string

let fail pos fmt = Printf.ksprintf (fun m -> raise (Bad (pos, m))) fmt

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail !pos "expected %C, found %C" c d
    | None -> fail !pos "expected %C, found end of input" c
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub text !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail !pos "bad literal"
  in
  let utf8_add buf cp =
    (* encode one Unicode scalar value *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub text !pos 4) in
    match v with
    | Some v -> pos := !pos + 4; v
    | None -> fail !pos "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail !pos "unterminated string"
      | Some '"' -> advance (); Buffer.contents buf
      | Some '\\' ->
        advance ();
        (match peek () with
         | None -> fail !pos "unterminated escape"
         | Some c ->
           advance ();
           (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
              let cp = hex4 () in
              let cp =
                (* combine a surrogate pair when one follows *)
                if cp >= 0xd800 && cp <= 0xdbff && !pos + 6 <= n
                   && text.[!pos] = '\\' && text.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xdc00 && lo <= 0xdfff then
                    0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                  else fail !pos "unpaired surrogate"
                end
                else cp
              in
              utf8_add buf cp
            | c -> fail !pos "bad escape \\%c" c));
        go ()
      | Some c when Char.code c < 0x20 -> fail !pos "raw control character in string"
      | Some c -> advance (); Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') -> advance (); go ()
      | Some ('.' | 'e' | 'E') -> is_float := true; advance (); go ()
      | _ -> ()
    in
    go ();
    let s = String.sub text start (!pos - start) in
    if !is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail start "bad number %S" s
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        (* integer text too wide for an int: keep it as a float *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail start "bad number %S" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let rec fields acc =
          skip_ws ();
          let name = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((name, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((name, v) :: acc))
          | _ -> fail !pos "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); List [])
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail !pos "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos "unexpected %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail !pos "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Bad (pos, msg) ->
    Error (Printf.sprintf "json: at offset %d: %s" pos msg)

(* --- printing ----------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest %g form that round-trips; %g never emits a bare trailing
       '.', so the result is always a valid JSON number *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_into buf s
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf name;
          Buffer.add_char buf ':';
          go item)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- accessors ---------------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
