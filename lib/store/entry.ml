type sup =
  | Sup_unreached
  | Sup_value of int * bool
  | Sup_exceeds of int

type reason =
  | Time_budget of float
  | State_budget of int
  | Memory_budget of int
  | Cancelled
  | Crash of string

type outcome =
  | Holds
  | Fails of string list option
  | Sup of sup
  | Unknown of reason * sup option

type stats = { visited : int; stored : int; frontier : int }

type budget = {
  bg_limit : int;
  bg_states : int option;
  bg_time_s : float option;
  bg_mem_bytes : int option;
}

type provenance = {
  pv_tool : string;
  pv_jobs : int;
  pv_wall_ms : float;
  pv_created : float;
}

type t = {
  en_key : D128.t;
  en_query : string;
  en_outcome : outcome;
  en_stats : stats;
  en_budget : budget;
  en_prov : provenance;
}

let unlimited =
  { bg_limit = max_int; bg_states = None; bg_time_s = None; bg_mem_bytes = None }

let definitive e =
  match e.en_outcome with
  | Holds | Fails _ | Sup _ -> true
  | Unknown _ -> false

(* [None] is "unlimited": it dominates everything and is dominated only
   by another [None]. *)
let ge_opt cached requested =
  match cached, requested with
  | None, _ -> true
  | Some _, None -> false
  | Some c, Some r -> c >= r

let budget_dominates ~cached ~requested =
  cached.bg_limit >= requested.bg_limit
  && ge_opt cached.bg_states requested.bg_states
  && ge_opt cached.bg_time_s requested.bg_time_s
  && ge_opt cached.bg_mem_bytes requested.bg_mem_bytes

let reusable e ~requested =
  match e.en_outcome with
  | Holds | Fails _ | Sup _ -> true
  | Unknown ((Cancelled | Crash _), _) -> false
  | Unknown _ -> budget_dominates ~cached:e.en_budget ~requested

(* --- json --------------------------------------------------------------- *)

let sup_to_json = function
  | Sup_unreached -> Json.Obj [ ("kind", Json.String "unreached") ]
  | Sup_value (v, strict) ->
    Json.Obj
      [ ("kind", Json.String "value");
        ("value", Json.Int v);
        ("strict", Json.Bool strict) ]
  | Sup_exceeds c ->
    Json.Obj [ ("kind", Json.String "exceeds"); ("ceiling", Json.Int c) ]

let reason_to_json = function
  | Time_budget s ->
    Json.Obj [ ("tag", Json.String "time-budget"); ("value", Json.Float s) ]
  | State_budget n ->
    Json.Obj [ ("tag", Json.String "state-budget"); ("value", Json.Int n) ]
  | Memory_budget n ->
    Json.Obj [ ("tag", Json.String "memory-budget"); ("value", Json.Int n) ]
  | Cancelled -> Json.Obj [ ("tag", Json.String "cancelled") ]
  | Crash msg ->
    Json.Obj [ ("tag", Json.String "crash"); ("message", Json.String msg) ]

let outcome_to_json = function
  | Holds -> Json.Obj [ ("kind", Json.String "holds") ]
  | Fails trace ->
    Json.Obj
      [ ("kind", Json.String "fails");
        ( "trace",
          match trace with
          | None -> Json.Null
          | Some steps -> Json.List (List.map (fun s -> Json.String s) steps) )
      ]
  | Sup s -> Json.Obj [ ("kind", Json.String "sup"); ("sup", sup_to_json s) ]
  | Unknown (reason, partial) ->
    Json.Obj
      [ ("kind", Json.String "unknown");
        ("reason", reason_to_json reason);
        ( "partial",
          match partial with None -> Json.Null | Some s -> sup_to_json s ) ]

let stats_to_json s =
  Json.Obj
    [ ("visited", Json.Int s.visited);
      ("stored", Json.Int s.stored);
      ("frontier", Json.Int s.frontier) ]

let opt_int_json = function None -> Json.Null | Some n -> Json.Int n
let opt_float_json = function None -> Json.Null | Some f -> Json.Float f

let to_json e =
  Json.Obj
    [ ("key", Json.String (D128.to_hex e.en_key));
      ("query", Json.String e.en_query);
      ("outcome", outcome_to_json e.en_outcome);
      ("stats", stats_to_json e.en_stats);
      ( "budget",
        Json.Obj
          [ ("limit", Json.Int e.en_budget.bg_limit);
            ("states", opt_int_json e.en_budget.bg_states);
            ("time_s", opt_float_json e.en_budget.bg_time_s);
            ("mem_bytes", opt_int_json e.en_budget.bg_mem_bytes) ] );
      ( "provenance",
        Json.Obj
          [ ("tool", Json.String e.en_prov.pv_tool);
            ("jobs", Json.Int e.en_prov.pv_jobs);
            ("wall_ms", Json.Float e.en_prov.pv_wall_ms);
            ("created", Json.Float e.en_prov.pv_created) ] ) ]

(* decoding: a tiny result monad keyed on field names, so corruption
   reports say which field was bad *)

let ( let* ) r f = Result.bind r f

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let coerce name conv j =
  let* v = field name j in
  match conv v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "field %S has the wrong type" name)

let opt_field name conv j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match conv v with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let sup_of_json j =
  let* kind = coerce "kind" Json.to_str j in
  match kind with
  | "unreached" -> Ok Sup_unreached
  | "value" ->
    let* v = coerce "value" Json.to_int j in
    let* strict = coerce "strict" Json.to_bool j in
    Ok (Sup_value (v, strict))
  | "exceeds" ->
    let* c = coerce "ceiling" Json.to_int j in
    Ok (Sup_exceeds c)
  | k -> Error (Printf.sprintf "unknown sup kind %S" k)

let reason_of_json j =
  let* tag = coerce "tag" Json.to_str j in
  match tag with
  | "time-budget" ->
    let* v = coerce "value" Json.to_float j in
    Ok (Time_budget v)
  | "state-budget" ->
    let* v = coerce "value" Json.to_int j in
    Ok (State_budget v)
  | "memory-budget" ->
    let* v = coerce "value" Json.to_int j in
    Ok (Memory_budget v)
  | "cancelled" -> Ok Cancelled
  | "crash" ->
    let* msg = coerce "message" Json.to_str j in
    Ok (Crash msg)
  | t -> Error (Printf.sprintf "unknown interrupt reason %S" t)

let outcome_of_json j =
  let* kind = coerce "kind" Json.to_str j in
  match kind with
  | "holds" -> Ok Holds
  | "fails" -> (
    match Json.member "trace" j with
    | None | Some Json.Null -> Ok (Fails None)
    | Some (Json.List items) ->
      let rec strings acc = function
        | [] -> Ok (Fails (Some (List.rev acc)))
        | Json.String s :: rest -> strings (s :: acc) rest
        | _ -> Error "trace step is not a string"
      in
      strings [] items
    | Some _ -> Error "field \"trace\" has the wrong type")
  | "sup" ->
    let* s = field "sup" j in
    let* s = sup_of_json s in
    Ok (Sup s)
  | "unknown" ->
    let* r = field "reason" j in
    let* reason = reason_of_json r in
    let* partial =
      match Json.member "partial" j with
      | None | Some Json.Null -> Ok None
      | Some s ->
        let* s = sup_of_json s in
        Ok (Some s)
    in
    Ok (Unknown (reason, partial))
  | k -> Error (Printf.sprintf "unknown outcome kind %S" k)

let stats_of_json j =
  let* visited = coerce "visited" Json.to_int j in
  let* stored = coerce "stored" Json.to_int j in
  let* frontier = coerce "frontier" Json.to_int j in
  Ok { visited; stored; frontier }

let of_json j =
  let* key_hex = coerce "key" Json.to_str j in
  let* en_key =
    match D128.of_hex key_hex with
    | Some k -> Ok k
    | None -> Error "field \"key\" is not a 128-bit hex digest"
  in
  let* en_query = coerce "query" Json.to_str j in
  let* oc = field "outcome" j in
  let* en_outcome = outcome_of_json oc in
  let* st = field "stats" j in
  let* en_stats = stats_of_json st in
  let* bj = field "budget" j in
  let* bg_limit = coerce "limit" Json.to_int bj in
  let* bg_states = opt_field "states" Json.to_int bj in
  let* bg_time_s = opt_field "time_s" Json.to_float bj in
  let* bg_mem_bytes = opt_field "mem_bytes" Json.to_int bj in
  let* pj = field "provenance" j in
  let* pv_tool = coerce "tool" Json.to_str pj in
  let* pv_jobs = coerce "jobs" Json.to_int pj in
  let* pv_wall_ms = coerce "wall_ms" Json.to_float pj in
  let* pv_created = coerce "created" Json.to_float pj in
  Ok
    { en_key;
      en_query;
      en_outcome;
      en_stats;
      en_budget = { bg_limit; bg_states; bg_time_s; bg_mem_bytes };
      en_prov = { pv_tool; pv_jobs; pv_wall_ms; pv_created } }

let pp_sup ppf = function
  | Sup_unreached -> Fmt.string ppf "unreached"
  | Sup_value (v, strict) -> Fmt.pf ppf "%s %d" (if strict then "<" else "<=") v
  | Sup_exceeds c -> Fmt.pf ppf "> %d (ceiling)" c

let pp ppf e =
  let kind =
    match e.en_outcome with
    | Holds -> "holds"
    | Fails _ -> "fails"
    | Sup _ -> "sup"
    | Unknown _ -> "unknown"
  in
  Fmt.pf ppf "%s %s [%s]" (D128.to_hex e.en_key) e.en_query kind;
  match e.en_outcome with
  | Sup s -> Fmt.pf ppf " %a" pp_sup s
  | _ -> ()
