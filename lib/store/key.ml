(* Bump the schema string whenever anything that feeds the digest
   changes meaning: old store entries then miss instead of aliasing. *)
let schema = "psv-key-v1"

let network_digest net =
  let st = D128.builder () in
  D128.add_string st schema;
  D128.add_string st (Xta.Print.to_string net);
  D128.value st

let digest ?(tight = true) ?(lu = true) ?(reduce = true) ~query net =
  let st = D128.builder () in
  D128.add_string st schema;
  D128.add_string st (Xta.Print.to_string net);
  D128.add_string st query;
  D128.add_bool st tight;
  D128.add_bool st lu;
  D128.add_bool st reduce;
  D128.value st

(* --- psv-key-v2: per-automaton manifest ------------------------------- *)

let schema_v2 = "psv-key-v2"

type manifest = {
  mf_decls : D128.t;
  mf_automata : (string * D128.t) list;
}

let decls_digest net =
  let st = D128.builder () in
  D128.add_string st schema_v2;
  D128.add_string st "decls";
  D128.add_string st net.Ta.Model.net_name;
  D128.add_int st (List.length net.Ta.Model.net_clocks);
  List.iter (D128.add_string st) net.Ta.Model.net_clocks;
  D128.add_int st (List.length net.Ta.Model.net_vars);
  List.iter
    (fun (name, vd) ->
      D128.add_string st name;
      D128.add_int st vd.Ta.Model.var_init;
      D128.add_int st vd.Ta.Model.var_min;
      D128.add_int st vd.Ta.Model.var_max)
    net.Ta.Model.net_vars;
  D128.add_int st (List.length net.Ta.Model.net_channels);
  List.iter
    (fun (name, kind) ->
      D128.add_string st name;
      D128.add_bool st (kind = Ta.Model.Broadcast))
    net.Ta.Model.net_channels;
  D128.value st

let automaton_digest a =
  let st = D128.builder () in
  D128.add_string st schema_v2;
  D128.add_string st "automaton";
  D128.add_string st (Format.asprintf "%a" Ta.Model.pp_automaton a);
  D128.value st

let manifest net =
  {
    mf_decls = decls_digest net;
    mf_automata =
      List.map
        (fun a -> (a.Ta.Model.aut_name, automaton_digest a))
        net.Ta.Model.net_automata;
  }

let manifest_digest m =
  let st = D128.builder () in
  D128.add_string st schema_v2;
  D128.add_string st (D128.to_hex m.mf_decls);
  D128.add_int st (List.length m.mf_automata);
  List.iter
    (fun (name, d) ->
      D128.add_string st name;
      D128.add_string st (D128.to_hex d))
    m.mf_automata;
  D128.value st

let manifest_equal a b =
  D128.equal a.mf_decls b.mf_decls
  && List.length a.mf_automata = List.length b.mf_automata
  && List.for_all2
       (fun (n1, d1) (n2, d2) -> String.equal n1 n2 && D128.equal d1 d2)
       a.mf_automata b.mf_automata
