(* Bump the schema string whenever anything that feeds the digest
   changes meaning: old store entries then miss instead of aliasing. *)
let schema = "psv-key-v1"

let network_digest net =
  let st = D128.builder () in
  D128.add_string st schema;
  D128.add_string st (Xta.Print.to_string net);
  D128.value st

let digest ?(tight = true) ?(lu = true) ?(reduce = true) ~query net =
  let st = D128.builder () in
  D128.add_string st schema;
  D128.add_string st (Xta.Print.to_string net);
  D128.add_string st query;
  D128.add_bool st tight;
  D128.add_bool st lu;
  D128.add_bool st reduce;
  D128.value st
