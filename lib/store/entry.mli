(** A cached verification result.

    Entries deliberately mirror the model checker's result types with
    plain, library-local constructors: the store sits {e below} [mc] in
    the dependency order (the explorer uses {!D128} for its snapshot
    fingerprint), so it cannot name [Mc.Explorer.verdict] directly.
    [Analysis.Qcache] owns the conversions.

    {b Reuse rule (budget dominance).}  Definitive outcomes ([Holds],
    [Fails], [Sup]) are facts about the model: once computed under
    {e any} budget they answer every future request for the same key —
    a bigger budget can reuse a smaller budget's result.  An [Unknown]
    is only a statement about the budget that produced it: it may be
    reused exactly when the cached run's budget {e dominates} the
    requested one (at least as many states, at least as much time and
    memory, an unlimited component dominating everything) — if the
    bigger run could not decide, the smaller one cannot either.
    Cancelled runs ([^C]) are never reused: cancellation says nothing
    about any budget.  The same goes for [Crash] — a worker-domain
    failure is a fact about the host, not the model. *)

type sup =
  | Sup_unreached
  | Sup_value of int * bool  (** supremum; [true] means strict *)
  | Sup_exceeds of int       (** exceeds the query ceiling *)

type reason =
  | Time_budget of float
  | State_budget of int
  | Memory_budget of int
  | Cancelled
  | Crash of string  (** a worker domain died; diagnostic attached *)

type outcome =
  | Holds
  | Fails of string list option       (** counterexample trace *)
  | Sup of sup
  | Unknown of reason * sup option    (** partial sup when available *)

type stats = { visited : int; stored : int; frontier : int }

(** The budget a run was (or would be) governed by.  [bg_limit] is the
    explorer's own visited-state limit; the optional components mirror
    [Mc.Runctl.budget].  [None] means unlimited. *)
type budget = {
  bg_limit : int;
  bg_states : int option;
  bg_time_s : float option;
  bg_mem_bytes : int option;
}

type provenance = {
  pv_tool : string;     (** producing tool and version, e.g. ["psv/1.0.0"] *)
  pv_jobs : int;        (** worker domains of the producing search *)
  pv_wall_ms : float;   (** wall time of the producing search *)
  pv_created : float;   (** unix time of insertion *)
}

type t = {
  en_key : D128.t;      (** the content-addressed key ({!Key}) *)
  en_query : string;    (** canonical query text, for humans and [fsck] *)
  en_outcome : outcome;
  en_stats : stats;
  en_budget : budget;
  en_prov : provenance;
}

val unlimited : budget

(** [true] for [Holds], [Fails] and [Sup] — outcomes that hold under
    any budget. *)
val definitive : t -> bool

(** [budget_dominates ~cached ~requested]: every component of [cached]
    is at least as generous as [requested]'s. *)
val budget_dominates : cached:budget -> requested:budget -> bool

(** The reuse rule above. *)
val reusable : t -> requested:budget -> bool

val outcome_to_json : outcome -> Json.t
val outcome_of_json : Json.t -> (outcome, string) result
val stats_to_json : stats -> Json.t

val to_json : t -> Json.t

(** Inverse of {!to_json}; [Error] names the missing or ill-typed
    field. *)
val of_json : Json.t -> (t, string) result

val pp : Format.formatter -> t -> unit
