(** Persisted incremental-verification sessions.

    A session remembers, for one (model tag, query) pair, what the
    previous successful run saw: the canonical network text, its
    {!Key.manifest}, the v1 result key the answer was stored under, and
    (separately) a marshalled zone-graph blob that lets the delta
    explorer replay the previous exploration.  Sessions live beside the
    result entries in the same {!Disk} store directory:

    - [<hex>.psvs] — framed canonical JSON (magic ["PSVSESS1"], payload
      digest and length lines exactly like the entry format), holding
      schema, tag, query, network text, result key and manifest;
    - [<hex>.psvg] — framed binary blob (magic ["PSVGRAPH1"], digest
      and length lines, then a [Marshal] payload).  The digest is
      checked {e before} unmarshalling, so bit rot never reaches
      [Marshal.from_string].

    Sessions are best-effort by design: a missing or corrupt session
    file merely costs a full re-exploration, never a wrong answer.  The
    graph blob is opaque to this module — the incremental layer owns
    its type and its compatibility checks. *)

type t = {
  ss_tag : string;      (** model identity: a file path, or ["gpca:<prop>"] *)
  ss_query : string;    (** canonical query text *)
  ss_net : string;      (** canonical {!Xta.Print} text of the network *)
  ss_result_key : D128.t;  (** v1 key of the stored result entry *)
  ss_manifest : Key.manifest;
}

(** Deterministic session file key for a (tag, query) pair. *)
val session_key : tag:string -> query:string -> D128.t

val save : Disk.t -> t -> unit

(** [load disk key] is [Ok s] for a well-formed session file, [Error
    reason] when the file is corrupt, and [Error "no session"] when
    absent. *)
val load : Disk.t -> D128.t -> (t, string) result

(** The graph blob rides under the same key in a separate [.psvg]
    file; [save_graph] overwrites, [load_graph] is [None] when absent
    or corrupt. *)
val save_graph : Disk.t -> D128.t -> string -> unit

val load_graph : Disk.t -> D128.t -> string option

val remove : Disk.t -> D128.t -> unit

(** Session-file names ([.psvs]) present in the store, sorted. *)
val list : Disk.t -> string list

type fsck = {
  sk_ok : int;        (** well-formed sessions with verified manifests *)
  sk_bad : (string * string) list;  (** file name, problem *)
  sk_graphs : int;    (** well-formed graph blobs *)
}

(** Re-parses each session's network text, recomputes its
    {!Key.manifest} and compares digest-per-automaton against the
    stored manifest; also digest-checks every graph blob. *)
val fsck : Disk.t -> fsck

(** Removes corrupt session and graph files; returns count removed. *)
val gc : Disk.t -> int
