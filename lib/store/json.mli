(** A minimal JSON value type, parser and printer.

    The container ships no JSON library, and the store needs only a
    small, deterministic subset: entry payloads on disk and the
    [psv serve] request/response protocol.  The printer is canonical
    (no whitespace, object fields in the order given), so re-encoding a
    decoded value of the same shape is byte-stable — which is what lets
    a warm [check --cache --json] run reproduce a cold run's output
    byte for byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [parse text] parses one JSON document (trailing whitespace allowed,
    trailing garbage rejected).  Numbers without [./e/E] become [Int];
    others [Float].  Errors carry a character offset. *)
val parse : string -> (t, string) result

(** Compact canonical rendering.  Non-finite floats render as [null]
    (JSON has no representation for them). *)
val to_string : t -> string

(** [member name obj] is the value of field [name], [None] when absent
    or when the value is not an object. *)
val member : string -> t -> t option

(** Coercions; [None] on shape mismatch.  [to_float] accepts [Int]. *)

val to_int : t -> int option
val to_float : t -> float option
val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
