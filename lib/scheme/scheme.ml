type signal_kind =
  | Pulse
  | Sustained of int
  | Sustained_until_read

type signal_edge = Rising | Falling

type read_mechanism =
  | Interrupt of signal_edge
  | Polling of int

type delay_bounds = {
  delay_min : int;
  delay_max : int;
}

type mc_input = {
  in_signal : signal_kind;
  in_read : read_mechanism;
  in_delay : delay_bounds;
}

type mc_output = {
  out_signal : signal_kind;
  out_delay : delay_bounds;
}

type read_policy = Read_one | Read_all

type io_comm =
  | Shared_variable
  | Buffer of int * read_policy

type invocation =
  | Periodic of int
  | Aperiodic of int

type exec_window = {
  wcet_min : int;
  wcet_max : int;
}

type t = {
  is_name : string;
  is_inputs : (string * mc_input) list;
  is_outputs : (string * mc_output) list;
  is_input_comm : io_comm;
  is_output_comm : io_comm;
  is_invocation : invocation;
  is_exec : exec_window;
}

let delay delay_min delay_max = { delay_min; delay_max }

let interrupt_input ?(edge = Rising) in_delay =
  { in_signal = Pulse; in_read = Interrupt edge; in_delay }

let polling_input ?(signal = Sustained_until_read) ~interval in_delay =
  { in_signal = signal; in_read = Polling interval; in_delay }

let pulse_output out_delay = { out_signal = Pulse; out_delay }

let is1 ?(exec = { wcet_min = 1; wcet_max = 10 }) ~inputs ~outputs () =
  let input = interrupt_input (delay 1 3) in
  let output = pulse_output (delay 1 3) in
  { is_name = "IS1";
    is_inputs = List.map (fun m -> (m, input)) inputs;
    is_outputs = List.map (fun c -> (c, output)) outputs;
    is_input_comm = Buffer (5, Read_all);
    is_output_comm = Buffer (5, Read_all);
    is_invocation = Periodic 100;
    is_exec = exec }

let input_spec is m = List.assoc m is.is_inputs
let output_spec is c = List.assoc c is.is_outputs

let period_opt is =
  match is.is_invocation with
  | Periodic p -> Some p
  | Aperiodic _ -> None

let check is =
  let problems = ref [] in
  let fail fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  let check_delay owner d =
    if d.delay_min < 0 then fail "%s: negative delay_min" owner;
    if d.delay_max < d.delay_min then
      fail "%s: delay_max below delay_min" owner
  in
  let check_input (m, spec) =
    check_delay m spec.in_delay;
    (match spec.in_signal, spec.in_read with
     | Pulse, Polling _ ->
       fail
         "%s: a pulse signal has no sustained duration and cannot be \
          observed by polling; use an interrupt"
         m
     | Sustained d, Polling interval when interval > d ->
       fail
         "%s: polling interval %d exceeds the sustained duration %d; \
          signals can be missed"
         m interval d
     | (Pulse | Sustained _ | Sustained_until_read), (Interrupt _ | Polling _)
       -> ());
    (match spec.in_read with
     | Polling interval when interval <= 0 -> fail "%s: polling interval must be positive" m
     | Polling _ | Interrupt _ -> ())
  in
  let check_output (c, spec) = check_delay c spec.out_delay in
  List.iter check_input is.is_inputs;
  List.iter check_output is.is_outputs;
  let check_comm owner = function
    | Buffer (size, _) when size <= 0 -> fail "%s: buffer size must be positive" owner
    | Buffer _ | Shared_variable -> ()
  in
  check_comm "input communication" is.is_input_comm;
  check_comm "output communication" is.is_output_comm;
  (match is.is_invocation with
   | Periodic p when p <= 0 -> fail "invocation period must be positive"
   | Aperiodic gap when gap < 0 -> fail "re-invocation gap must be non-negative"
   | Periodic _ | Aperiodic _ -> ());
  if is.is_exec.wcet_min < 0 then fail "wcet_min must be non-negative";
  if is.is_exec.wcet_max < is.is_exec.wcet_min then
    fail "wcet_max below wcet_min";
  (match is.is_invocation with
   | Periodic p when is.is_exec.wcet_max > p ->
     fail "execution window %d exceeds the invocation period %d"
       is.is_exec.wcet_max p
   | Periodic _ | Aperiodic _ -> ());
  List.rev !problems

(* --- canonical point digests ------------------------------------------- *)

(* A compact, byte-stable serialisation of everything that influences
   the PSM transformation and the analytic bounds.  [is_name] is
   deliberately excluded: two schemes differing only in their label
   describe the same platform and must share one verification result.
   Inputs and outputs are sorted by channel so construction order
   cannot split equivalent schemes into distinct keys. *)
let to_key is =
  let b = Buffer.create 160 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let signal = function
    | Pulse -> "p"
    | Sustained d -> "s" ^ string_of_int d
    | Sustained_until_read -> "l"
  in
  let read = function
    | Interrupt Rising -> "ir"
    | Interrupt Falling -> "if"
    | Polling i -> "po" ^ string_of_int i
  in
  let comm = function
    | Shared_variable -> "sv"
    | Buffer (n, Read_one) -> Printf.sprintf "b%d.1" n
    | Buffer (n, Read_all) -> Printf.sprintf "b%d.*" n
  in
  let by_chan (a, _) (b, _) = String.compare a b in
  add "is|";
  List.iter
    (fun (m, s) ->
      add "i:%s,%s,%s,%d,%d|" m (signal s.in_signal) (read s.in_read)
        s.in_delay.delay_min s.in_delay.delay_max)
    (List.sort by_chan is.is_inputs);
  List.iter
    (fun (c, s) ->
      add "o:%s,%s,%d,%d|" c (signal s.out_signal) s.out_delay.delay_min
        s.out_delay.delay_max)
    (List.sort by_chan is.is_outputs);
  add "ic:%s|oc:%s|" (comm is.is_input_comm) (comm is.is_output_comm);
  (match is.is_invocation with
   | Periodic p -> add "per%d|" p
   | Aperiodic g -> add "ape%d|" g);
  add "x%d:%d" is.is_exec.wcet_min is.is_exec.wcet_max;
  Buffer.contents b

(* --- grid enumeration --------------------------------------------------- *)

module Grid = struct
  type axis = {
    ax_name : string;
    ax_values : int array;
  }

  type t = {
    g_axes : axis array;
    g_card : int;
  }

  let make axes =
    let seen = Hashtbl.create 8 in
    let rec build acc card = function
      | [] -> Ok { g_axes = Array.of_list (List.rev acc); g_card = card }
      | (name, values) :: rest ->
        if name = "" then Error "axis with an empty name"
        else if Hashtbl.mem seen name then
          Error (Printf.sprintf "duplicate axis %S" name)
        else if values = [] then
          Error (Printf.sprintf "axis %S has no values" name)
        else begin
          Hashtbl.add seen name ();
          let n = List.length values in
          (* cardinality stays exact or the grid is refused: a silent
             overflow would make per-index decoding alias points *)
          if card > max_int / n then
            Error (Printf.sprintf "grid too large: axis %S overflows" name)
          else
            build
              ({ ax_name = name; ax_values = Array.of_list values } :: acc)
              (card * n) rest
        end
    in
    build [] 1 axes

  let cardinality g = g.g_card

  let axes g =
    Array.to_list
      (Array.map (fun a -> (a.ax_name, Array.to_list a.ax_values)) g.g_axes)

  (* Mixed-radix decode: the first axis varies fastest.  Points are
     never materialised as a whole — callers enumerate indices in
     batches and decode each on demand. *)
  let point g i =
    if i < 0 || i >= g.g_card then
      invalid_arg
        (Printf.sprintf "Grid.point: index %d outside 0..%d" i (g.g_card - 1));
    let n = Array.length g.g_axes in
    let acc = ref [] in
    let idx = ref i in
    for k = 0 to n - 1 do
      let a = g.g_axes.(k) in
      let len = Array.length a.ax_values in
      acc := (a.ax_name, a.ax_values.(!idx mod len)) :: !acc;
      idx := !idx / len
    done;
    List.rev !acc

  (* axis spec syntax: NAME=LO..HI[/STEP] or NAME=V1,V2,... *)
  let parse_axis s =
    match String.index_opt s '=' with
    | None -> Error (Printf.sprintf "bad axis %S: expected NAME=SPEC" s)
    | Some eq -> (
      let name = String.trim (String.sub s 0 eq) in
      let spec = String.trim (String.sub s (eq + 1) (String.length s - eq - 1)) in
      if name = "" then Error (Printf.sprintf "bad axis %S: empty name" s)
      else
        let int v =
          match int_of_string_opt (String.trim v) with
          | Some n -> Ok n
          | None -> Error (Printf.sprintf "bad axis %S: %S is not an integer" s v)
        in
        let range lo rest =
          let hi, step =
            match String.index_opt rest '/' with
            | None -> (rest, "1")
            | Some sl ->
              ( String.sub rest 0 sl,
                String.sub rest (sl + 1) (String.length rest - sl - 1) )
          in
          match int lo, int hi, int step with
          | Ok lo, Ok hi, Ok step ->
            if step <= 0 then
              Error (Printf.sprintf "bad axis %S: step must be positive" s)
            else if hi < lo then
              Error (Printf.sprintf "bad axis %S: empty range %d..%d" s lo hi)
            else begin
              let values = ref [] in
              let v = ref lo in
              while !v <= hi do
                values := !v :: !values;
                v := !v + step
              done;
              Ok (name, List.rev !values)
            end
          | (Error _ as e), _, _ | _, (Error _ as e), _ | _, _, (Error _ as e)
            -> (match e with Error m -> Error m | Ok _ -> assert false)
        in
        (* ".." separates a range; a leading "-" on LO still parses
           because we search from index 1 *)
        let dots =
          let rec find i =
            if i + 1 >= String.length spec then None
            else if spec.[i] = '.' && spec.[i + 1] = '.' then Some i
            else find (i + 1)
          in
          if spec = "" then None else find 1
        in
        match dots with
        | Some d ->
          range (String.sub spec 0 d)
            (String.sub spec (d + 2) (String.length spec - d - 2))
        | None ->
          if spec = "" then Error (Printf.sprintf "bad axis %S: no values" s)
          else
            let parts = String.split_on_char ',' spec in
            let rec ints acc = function
              | [] -> Ok (name, List.rev acc)
              | p :: rest -> (
                match int p with
                | Ok v -> ints (v :: acc) rest
                | Error m -> Error m)
            in
            ints [] parts)
end

let pp_signal ppf = function
  | Pulse -> Fmt.string ppf "pulse"
  | Sustained d -> Fmt.pf ppf "sustained(%d)" d
  | Sustained_until_read -> Fmt.string ppf "sustained-until-read"

let pp_read ppf = function
  | Interrupt Rising -> Fmt.string ppf "interrupt(rising)"
  | Interrupt Falling -> Fmt.string ppf "interrupt(falling)"
  | Polling i -> Fmt.pf ppf "polling(%d)" i

let pp_delay ppf d = Fmt.pf ppf "[%d, %d]" d.delay_min d.delay_max

let pp_comm ppf = function
  | Shared_variable -> Fmt.string ppf "shared-variable"
  | Buffer (size, Read_one) -> Fmt.pf ppf "buffer(%d, read-one)" size
  | Buffer (size, Read_all) -> Fmt.pf ppf "buffer(%d, read-all)" size

let pp_invocation ppf = function
  | Periodic p -> Fmt.pf ppf "periodic(%d)" p
  | Aperiodic g -> Fmt.pf ppf "aperiodic(min-gap %d)" g

let pp ppf is =
  let pp_input ppf (m, s) =
    Fmt.pf ppf "%s: %a, %a, delay %a" m pp_signal s.in_signal pp_read s.in_read
      pp_delay s.in_delay
  in
  let pp_output ppf (c, s) =
    Fmt.pf ppf "%s: %a, delay %a" c pp_signal s.out_signal pp_delay s.out_delay
  in
  Fmt.pf ppf
    "@[<v 2>scheme %s@,inputs: %a@,outputs: %a@,input comm: %a@,\
     output comm: %a@,invocation: %a@,exec window: [%d, %d]@]"
    is.is_name
    Fmt.(list ~sep:semi pp_input)
    is.is_inputs
    Fmt.(list ~sep:semi pp_output)
    is.is_outputs pp_comm is.is_input_comm pp_comm is.is_output_comm
    pp_invocation is.is_invocation is.is_exec.wcet_min is.is_exec.wcet_max
