(** Implementation schemes (Definition 1 of the paper).

    An implementation scheme describes, in terms of Parnas' four-variable
    formalism, how a platform realises the two interaction boundaries of a
    model-based implementation:

    - the {e mc-boundary} between the environment and the platform: what
      kind of signal each monitored variable carries, how the Input-Device
      reads it (interrupt or polling), and the device's min/max processing
      delays — and symmetrically for the Output-Device and controlled
      variables;
    - the {e io-boundary} between the platform and the generated code: how
      processed inputs reach the code (shared variable or bounded buffer,
      read-one or read-all policy), how outputs travel back, and how the
      code is invoked (periodically or aperiodically).

    A scheme plus a platform-independent model determines the
    platform-specific model via {!Transform} and the analytic delay bounds
    via {!Analysis}. *)

type signal_kind =
  | Pulse
      (** no sustained duration; only an interrupt can catch it *)
  | Sustained of int
      (** held for the given duration, then drops *)
  | Sustained_until_read
      (** latched until the platform consumes it (e.g. a button register) *)

type signal_edge = Rising | Falling

type read_mechanism =
  | Interrupt of signal_edge
  | Polling of int  (** polling interval *)

type delay_bounds = {
  delay_min : int;
  delay_max : int;
}

(** Input-Device treatment of one monitored variable. *)
type mc_input = {
  in_signal : signal_kind;
  in_read : read_mechanism;
  in_delay : delay_bounds;  (** signal-to-program-value processing delay *)
}

(** Output-Device treatment of one controlled variable. *)
type mc_output = {
  out_signal : signal_kind;
  out_delay : delay_bounds;  (** program-value-to-signal processing delay *)
}

type read_policy = Read_one | Read_all

type io_comm =
  | Shared_variable
      (** single slot, overwritten; a pending value can be lost *)
  | Buffer of int * read_policy
      (** bounded FIFO of the given size *)

type invocation =
  | Periodic of int  (** period *)
  | Aperiodic of int  (** minimum re-invocation gap (0 = immediate) *)

(** Execution-time window of one invocation of the generated code
    (read inputs, compute transitions, write outputs). *)
type exec_window = {
  wcet_min : int;
  wcet_max : int;
}

type t = {
  is_name : string;
  is_inputs : (string * mc_input) list;   (** keyed by input channel *)
  is_outputs : (string * mc_output) list; (** keyed by output channel *)
  is_input_comm : io_comm;
  is_output_comm : io_comm;
  is_invocation : invocation;
  is_exec : exec_window;
}

(** {1 Builders} *)

val delay : int -> int -> delay_bounds

val interrupt_input : ?edge:signal_edge -> delay_bounds -> mc_input
(** A pulse signal read by interrupt — the combination of Example 1. *)

val polling_input :
  ?signal:signal_kind -> interval:int -> delay_bounds -> mc_input
(** A latched ([Sustained_until_read] by default) signal read by polling. *)

val pulse_output : delay_bounds -> mc_output

(** [is1 ~inputs ~outputs ()] is the paper's Example 1 scheme: every input
    a pulse signal read on the rising edge with delay [1..3]; every output
    a pulse with delay [1..3]; buffers of size 5 with read-all; periodic
    invocation with period 100.  [exec] defaults to the window [1..10]. *)
val is1 :
  ?exec:exec_window ->
  inputs:string list -> outputs:string list -> unit -> t

(** {1 Accessors} *)

val input_spec : t -> string -> mc_input
(** @raise Not_found *)

val output_spec : t -> string -> mc_output
(** @raise Not_found *)

val period_opt : t -> int option
(** The invocation period, when periodic. *)

(** {1 Compatibility (Section III-A)}

    Some mechanism combinations are physically meaningless — most notably
    a pulse signal observed by polling, which the paper points out can
    only be read by an interrupt.  Returns the list of problems; empty
    means the scheme is realisable. *)
val check : t -> string list

val pp : Format.formatter -> t -> unit

(** {1 Point digests}

    A compact, byte-stable serialisation of everything that influences
    the PSM transformation and the analytic bounds: signals, read
    mechanisms, device delay windows, communication, invocation and the
    execution window.  [is_name] is excluded and channel lists are
    sorted, so two schemes describing the same platform always produce
    the same key — the sweep engine and the result store dedup on it. *)
val to_key : t -> string

(** {1 Grid enumeration}

    A sweep grid is a list of named integer axes; its points are the
    cross product, addressed by a single index in [0, cardinality).
    Points are decoded on demand (mixed-radix, first axis fastest) —
    the grid is never materialised, so million-point spaces cost a few
    hundred bytes. *)
module Grid : sig
  type t

  (** [make axes] checks for duplicate or empty axes and refuses grids
      whose cardinality overflows [max_int]. *)
  val make : (string * int list) list -> (t, string) result

  val cardinality : t -> int

  val axes : t -> (string * int list) list

  (** [point g i] decodes index [i] into an (axis, value) assignment in
      axis order.
      @raise Invalid_argument when [i] is outside the grid. *)
  val point : t -> int -> (string * int) list

  (** [parse_axis "NAME=LO..HI/STEP"] or ["NAME=V1,V2,..."] — the
      compact CLI spec for one axis ([/STEP] optional, default 1). *)
  val parse_axis : string -> (string * int list, string) result
end
