(* The Section VI case study, end to end: REQ1 on the GPCA infusion pump.

   1. Verify the PIM satisfies REQ1 (bolus starts within 500 ms).
   2. Transform the PIM under the Section-VI scheme (IS1 with a polled
      bolus-request button) and show the PSM violates REQ1.
   3. Check the four boundedness constraints, derive the relaxed bound
      Delta'mc = 1430 ms, and verify the PSM satisfies it.
   4. Run 60 simulated bolus scenarios and print the full Table I.

   Run with: dune exec examples/infusion_pump.exe *)

let params = Gpca.Params.default

let () =
  let bound = Gpca.Params.req1_bound in
  let pim_net = Gpca.Model.network ~variant:Gpca.Model.Bolus_only params in

  Fmt.pr "== Step 1: the platform-independent model ==@.";
  let pim_ok =
    Psv.verify_response pim_net ~trigger:Gpca.Model.bolus_req
      ~response:Gpca.Model.start_infusion ~bound
  in
  Fmt.pr "PIM |= P(%d): %a  (REQ1 holds on the model)@.@." bound
    Mc.Explorer.pp_verdict pim_ok;

  Fmt.pr "== Step 2: the platform-specific model ==@.";
  let psm = Gpca.Model.psm ~variant:Gpca.Model.Bolus_only params in
  let scheme = psm.Transform.psm_scheme in
  Fmt.pr "%a@.@." Scheme.pp scheme;
  let psm_ok =
    Psv.verify_response psm.Transform.psm_net ~trigger:Gpca.Model.bolus_req
      ~response:Gpca.Model.start_infusion ~bound
  in
  Fmt.pr "PSM |= P(%d): %a  (the platform breaks REQ1)@.@." bound
    Mc.Explorer.pp_verdict psm_ok;

  Fmt.pr "== Step 3: boundedness constraints and the relaxed bound ==@.";
  let constraints = Analysis.Constraints.check_all psm in
  List.iter (Fmt.pr "%a@." Analysis.Constraints.pp_result) constraints;
  let analytic = Gpca.Experiment.analytic_bounds params in
  Fmt.pr "Delta'mc = %d + %d + %d = %d ms (Lemma 2)@."
    analytic.Gpca.Experiment.a_input analytic.Gpca.Experiment.a_output
    analytic.Gpca.Experiment.a_internal analytic.Gpca.Experiment.a_mc;
  let relaxed_ok =
    Psv.verify_response psm.Transform.psm_net ~trigger:Gpca.Model.bolus_req
      ~response:Gpca.Model.start_infusion ~bound:analytic.Gpca.Experiment.a_mc
  in
  Fmt.pr "PSM |= P(%d): %a  (the relaxed requirement holds)@.@."
    analytic.Gpca.Experiment.a_mc Mc.Explorer.pp_verdict relaxed_ok;

  Fmt.pr "== Step 4: Table I ==@.";
  let table = Gpca.Experiment.table1 ~seed:42 params in
  Fmt.pr "%a@." Gpca.Experiment.pp_table1 table;

  Fmt.pr "@.== Step 5: one simulated scenario, as a timeline ==@.";
  let config = Gpca.Experiment.scenario_config params ~request_time:123.0 in
  let log = Sim.Engine.run ~seed:7 config in
  Fmt.pr "%s%s@." (Sim.Timeline.render ~width:68 log) Sim.Timeline.legend;

  Fmt.pr "@.== Step 6: supplemental requirements (REQ2 alarm, REQ3 pause) ==@.";
  let s = Gpca.Experiment.supplemental params in
  Fmt.pr "%a@." Gpca.Experiment.pp_supplemental s
