(* Quickstart: the whole framework on a miniature system.

   A lamp controller: when the user presses a button (m_Press), the lamp
   must turn on (c_On) within 50 ms.  The controller model satisfies the
   requirement; its implementation on a platform with interrupt input,
   buffered communication and a 20 ms periodic executive does not - and
   the framework computes the relaxed bound that the implementation
   does satisfy.

   Run with: dune exec examples/quickstart.exe *)

open Ta

let loc = Model.location
let edge = Model.edge

(* 1. The platform-independent model: controller || user. *)

let controller =
  Model.automaton ~name:"Controller" ~initial:"Off"
    [ loc "Off";
      (* turning the lamp on takes 10-50 ms of actuation logic *)
      loc ~inv:[ Clockcons.le "x" 50 ] "Switching";
      loc "On" ]
    [ edge ~sync:(Model.Recv "m_Press") ~resets:[ "x" ] "Off" "Switching";
      edge ~guard:[ Clockcons.ge "x" 10 ] ~sync:(Model.Send "c_On")
        "Switching" "On" ]

let user =
  Model.automaton ~name:"User" ~initial:"Idle"
    [ loc "Idle"; loc "Waiting"; loc "Happy" ]
    [ edge ~sync:(Model.Send "m_Press") "Idle" "Waiting";
      edge ~sync:(Model.Recv "c_On") "Waiting" "Happy" ]

let pim_net =
  Model.network ~name:"lamp" ~clocks:[ "x" ] ~vars:[]
    ~channels:[ ("m_Press", Model.Broadcast); ("c_On", Model.Broadcast) ]
    [ controller; user ]

(* 2. The implementation scheme: interrupt input (1-3 ms), buffered io,
   20 ms periodic invocation, 5 ms output device. *)

let scheme =
  { Scheme.is_name = "lamp-platform";
    is_inputs = [ ("m_Press", Scheme.interrupt_input (Scheme.delay 1 3)) ];
    is_outputs = [ ("c_On", Scheme.pulse_output (Scheme.delay 2 5)) ];
    is_input_comm = Scheme.Buffer (2, Scheme.Read_all);
    is_output_comm = Scheme.Buffer (2, Scheme.Read_all);
    is_invocation = Scheme.Periodic 20;
    is_exec = { Scheme.wcet_min = 1; wcet_max = 5 } }

let () =
  (* 3. Verify the PIM: P(50) holds. *)
  let bound = 50 in
  let pim_ok =
    Psv.verify_response pim_net ~trigger:"m_Press" ~response:"c_On" ~bound
  in
  Fmt.pr "PIM:  press -> lamp-on within %d ms: %a@." bound
    Mc.Explorer.pp_verdict pim_ok;

  (* 4. Transform to the PSM and re-verify: P(50) fails on the platform. *)
  let pim = Transform.Pim.make pim_net ~software:"Controller" ~environment:"User" in
  let psm = Transform.psm_of_pim pim scheme in
  let psm_ok =
    Psv.verify_response psm.Transform.psm_net ~trigger:"m_Press"
      ~response:"c_On" ~bound
  in
  Fmt.pr "PSM:  press -> lamp-on within %d ms: %a@." bound
    Mc.Explorer.pp_verdict psm_ok;

  (* 5. The four constraints hold, so the delay is bounded; compute the
     analytic relaxed bound and the verified one. *)
  let constraints = Analysis.Constraints.check_all psm in
  List.iter (Fmt.pr "  %a@." Analysis.Constraints.pp_result) constraints;
  let analytic =
    Analysis.Bounds.relaxed_mc_delay scheme ~input:"m_Press" ~output:"c_On"
      ~internal:bound
  in
  let verified =
    Psv.max_delay psm.Transform.psm_net ~trigger:"m_Press" ~response:"c_On"
      ~ceiling:(2 * analytic)
  in
  Fmt.pr "Analytic relaxed bound (Lemma 2): %d ms@." analytic;
  Fmt.pr "Verified PSM bound:               %a@." Mc.Explorer.pp_sup_result
    verified.Analysis.Queries.dr_sup;

  (* 6. Cross-check on the simulated implementation. *)
  let typical =
    { Sim.Engine.typ_input_proc = (fun _ -> (1.0, 3.0));
      typ_output_proc = (fun _ -> (2.0, 5.0));
      typ_exec = (1.0, 5.0) }
  in
  let config =
    { Sim.Engine.cfg_pim = pim;
      cfg_scheme = scheme;
      cfg_typical = typical;
      cfg_stimuli = [ (7.5, "m_Press") ];
      cfg_horizon = 500.0 }
  in
  let log = Sim.Engine.run ~seed:7 config in
  List.iter (Fmt.pr "  %a@." Sim.Engine.pp_entry) log;
  Fmt.pr "@.%s%s@.@." (Sim.Timeline.render ~width:60 log) Sim.Timeline.legend;
  match
    Sim.Measure.samples log ~trigger:"m_Press" ~response:"c_On"
    |> List.filter_map Sim.Measure.mc_delay
  with
  | [ delay ] ->
    Fmt.pr "Simulated implementation delay: %.1f ms (bound %d ms)@." delay
      analytic
  | _ -> Fmt.pr "unexpected simulation outcome@."
