(* Exploring the implementation-scheme design space.

   The same PIM deployed under different schemes gets different verified
   end-to-end bounds.  This example sweeps the GPCA case study over

   - the invocation period (the io-boundary knob),
   - the polling interval of the bolus-request input (the mc-boundary knob),
   - periodic vs aperiodic invocation, and read-all vs read-one,

   printing the Lemma-1/2 analytic bound next to the model-checked bound
   for each point.

   Run with: dune exec examples/scheme_explorer.exe *)

let base = Gpca.Params.default

(* Cap each verification so a fine-grained grid point that explodes the
   zone graph reports "too large" instead of stalling the sweep. *)
let state_limit = 400_000

let verified_mc p =
  let psm = Gpca.Model.psm ~variant:Gpca.Model.Bolus_only p in
  let ceiling = 3 * (Gpca.Experiment.analytic_bounds p).Gpca.Experiment.a_mc in
  let r =
    Psv.max_delay ~limit:state_limit psm.Transform.psm_net
      ~trigger:Gpca.Model.bolus_req ~response:Gpca.Model.start_infusion
      ~ceiling
  in
  match r.Analysis.Queries.dr_interrupt with
  | Some (Mc.Runctl.State_budget n) -> Fmt.str "(> %d states)" n
  | Some reason -> Fmt.str "(%a)" Mc.Runctl.pp_reason reason
  | None -> Fmt.str "%a" Mc.Explorer.pp_sup_result r.Analysis.Queries.dr_sup

let sup_to_string s = s

let sweep_period () =
  Fmt.pr "== Invocation period sweep (polling 50, WCET window tracks period) ==@.";
  Fmt.pr "%8s | %14s | %14s@." "period" "analytic Δ'mc" "verified sup";
  List.iter
    (fun period ->
      let p =
        { base with
          Gpca.Params.period;
          exec = { Scheme.wcet_min = min 20 (period / 2); wcet_max = period } }
      in
      let analytic = (Gpca.Experiment.analytic_bounds p).Gpca.Experiment.a_mc in
      Fmt.pr "%8d | %14d | %14s@." period analytic
        (sup_to_string (verified_mc p)))
    [ 20; 50; 100; 200; 250 ]

let sweep_polling () =
  Fmt.pr "@.== Polling interval sweep (period 100) ==@.";
  Fmt.pr "%8s | %14s | %14s@." "poll" "analytic Δ'mc" "verified sup";
  List.iter
    (fun poll_interval ->
      let p = { base with Gpca.Params.poll_interval } in
      let analytic = (Gpca.Experiment.analytic_bounds p).Gpca.Experiment.a_mc in
      Fmt.pr "%8d | %14d | %14s@." poll_interval analytic
        (sup_to_string (verified_mc p)))
    [ 25; 50; 100; 200 ]

(* Scheme-shape matrix: hold the GPCA parameters, change the io-boundary
   mechanisms.  Aperiodic invocation removes the period term from the
   input delay; read-one can serialise bursts. *)
let sweep_mechanisms () =
  Fmt.pr "@.== Mechanism matrix (analytic bounds) ==@.";
  let scheme = Gpca.Params.scheme base in
  let describe label s =
    let input = Analysis.Bounds.input_delay s Gpca.Model.bolus_req in
    let output = Analysis.Bounds.output_delay s Gpca.Model.start_infusion in
    Fmt.pr "%-34s | input <= %4d | output <= %4d | Δ'mc <= %4d@." label input
      output
      (input + output + base.Gpca.Params.prep_max)
  in
  describe "periodic(100) + buffer read-all" scheme;
  describe "periodic(100) + buffer read-one"
    { scheme with
      Scheme.is_input_comm = Scheme.Buffer (5, Scheme.Read_one) };
  describe "periodic(100) + shared variable"
    { scheme with Scheme.is_input_comm = Scheme.Shared_variable };
  describe "aperiodic(0) + buffer read-all"
    { scheme with Scheme.is_invocation = Scheme.Aperiodic 0 };
  describe "aperiodic(10) + buffer read-all"
    { scheme with Scheme.is_invocation = Scheme.Aperiodic 10 };
  Fmt.pr
    "(aperiodic rows are analytic what-ifs: the transformation rejects      aperiodic invocation for software with timed waits, like the GPCA      bolus preparation)@."

let () =
  sweep_period ();
  sweep_polling ();
  sweep_mechanisms ()
