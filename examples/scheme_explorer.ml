(* Exploring the implementation-scheme design space.

   The same PIM deployed under different schemes gets different verified
   end-to-end bounds.  This example sweeps the GPCA case study over

   - the invocation period (the io-boundary knob),
   - the polling interval of the bolus-request input (the mc-boundary knob),
   - periodic vs aperiodic invocation, and read-all vs read-one,

   printing the Lemma-1/2 analytic bound next to the model-checked bound
   for each point.  The grid points are independent queries, so the two
   timed sweeps run on a domain pool (Queries.run_all).

   Run with: dune exec examples/scheme_explorer.exe -- [--jobs N] *)

let base = Gpca.Params.default

let jobs =
  let rec find = function
    | "--jobs" :: n :: _ ->
      (match int_of_string_opt n with
       | Some j when j >= 1 -> j
       | Some _ | None ->
         prerr_endline "scheme_explorer: bad --jobs value";
         exit 2)
    | _ :: rest -> find rest
    | [] -> 1
  in
  find (Array.to_list Sys.argv)

(* Cap each verification so a fine-grained grid point that explodes the
   zone graph reports "too large" instead of stalling the sweep. *)
let state_limit = 400_000

let describe_result (r : Analysis.Queries.delay_result) =
  match r.Analysis.Queries.dr_interrupt with
  | Some (Mc.Runctl.State_budget n) -> Fmt.str "(> %d states)" n
  | Some reason -> Fmt.str "(%a)" Mc.Runctl.pp_reason reason
  | None -> Fmt.str "%a" Mc.Explorer.pp_sup_result r.Analysis.Queries.dr_sup

(* One grid point = one mc-boundary sup query on the point's PSM.  The
   network thunk runs on the worker domain: each domain builds and
   explores its own PSM. *)
let mc_spec ~name p =
  { Analysis.Queries.qs_name = name;
    qs_net =
      (fun () ->
        (Gpca.Model.psm ~variant:Gpca.Model.Bolus_only p).Transform.psm_net);
    qs_trigger = Gpca.Model.bolus_req;
    qs_response = Gpca.Model.start_infusion;
    qs_ceiling = 3 * (Gpca.Experiment.analytic_bounds p).Gpca.Experiment.a_mc }

let run_grid points =
  Analysis.Queries.run_all ~jobs ~limit:state_limit points

let sweep_period () =
  Fmt.pr "== Invocation period sweep (polling 50, WCET window tracks period) ==@.";
  Fmt.pr "%8s | %14s | %14s@." "period" "analytic Δ'mc" "verified sup";
  let points =
    List.map
      (fun period ->
        let p =
          { base with
            Gpca.Params.period;
            exec = { Scheme.wcet_min = min 20 (period / 2); wcet_max = period } }
        in
        (period, p))
      [ 20; 50; 100; 200; 250 ]
  in
  let results =
    run_grid
      (List.map (fun (period, p) -> mc_spec ~name:(string_of_int period) p)
         points)
  in
  List.iter2
    (fun (period, p) (_, r) ->
      let analytic = (Gpca.Experiment.analytic_bounds p).Gpca.Experiment.a_mc in
      Fmt.pr "%8d | %14d | %14s@." period analytic (describe_result r))
    points results

let sweep_polling () =
  Fmt.pr "@.== Polling interval sweep (period 100) ==@.";
  Fmt.pr "%8s | %14s | %14s@." "poll" "analytic Δ'mc" "verified sup";
  let points =
    List.map
      (fun poll_interval ->
        (poll_interval, { base with Gpca.Params.poll_interval }))
      [ 25; 50; 100; 200 ]
  in
  let results =
    run_grid
      (List.map (fun (poll, p) -> mc_spec ~name:(string_of_int poll) p) points)
  in
  List.iter2
    (fun (poll_interval, p) (_, r) ->
      let analytic = (Gpca.Experiment.analytic_bounds p).Gpca.Experiment.a_mc in
      Fmt.pr "%8d | %14d | %14s@." poll_interval analytic (describe_result r))
    points results

(* Scheme-shape matrix: hold the GPCA parameters, change the io-boundary
   mechanisms.  Aperiodic invocation removes the period term from the
   input delay; read-one can serialise bursts. *)
let sweep_mechanisms () =
  Fmt.pr "@.== Mechanism matrix (analytic bounds) ==@.";
  let scheme = Gpca.Params.scheme base in
  let describe label s =
    let input = Analysis.Bounds.input_delay s Gpca.Model.bolus_req in
    let output = Analysis.Bounds.output_delay s Gpca.Model.start_infusion in
    Fmt.pr "%-34s | input <= %4d | output <= %4d | Δ'mc <= %4d@." label input
      output
      (input + output + base.Gpca.Params.prep_max)
  in
  describe "periodic(100) + buffer read-all" scheme;
  describe "periodic(100) + buffer read-one"
    { scheme with
      Scheme.is_input_comm = Scheme.Buffer (5, Scheme.Read_one) };
  describe "periodic(100) + shared variable"
    { scheme with Scheme.is_input_comm = Scheme.Shared_variable };
  describe "aperiodic(0) + buffer read-all"
    { scheme with Scheme.is_invocation = Scheme.Aperiodic 0 };
  describe "aperiodic(10) + buffer read-all"
    { scheme with Scheme.is_invocation = Scheme.Aperiodic 10 };
  Fmt.pr
    "(aperiodic rows are analytic what-ifs: the transformation rejects      aperiodic invocation for software with timed waits, like the GPCA      bolus preparation)@."

let () =
  sweep_period ();
  sweep_polling ();
  sweep_mechanisms ()
