(* An event-driven railroad crossing: the second full case study.

   A track-side sensor fires a pulse when a train approaches; the gate
   controller must command the gate down within 80 ms (the gate hardware
   then takes care of the physical motion).  The ECU is event-driven:
   the code runs only when an input arrives (aperiodic invocation) —
   which is exactly the scheme that makes the io-boundary wait vanish
   from the Input-Delay bound, at the price of requiring
   immediate-response software (the transformation enforces this).

   The example verifies the requirement on the PIM, re-verifies on two
   PSMs (event-driven vs a 25 ms periodic loop), checks the boundedness
   constraints, and cross-validates with simulated approaches.

   Run with: dune exec examples/railroad.exe *)

open Ta

let loc = Model.location
let edge = Model.edge

let requirement_bound = 80

(* The controller reacts in the very invocation that delivers the sensor
   pulse; lowering commands are recomputed per approach. *)
let controller =
  Model.automaton ~name:"GateCtrl" ~initial:"Open"
    [ loc "Open";
      loc ~inv:[ Clockcons.le "g" 5 ] "Lowering";
      loc "Closed" ]
    [ edge ~sync:(Model.Recv "m_Train") ~resets:[ "g" ] "Open" "Lowering";
      edge ~sync:(Model.Send "c_GateDown") "Lowering" "Closed";
      edge ~sync:(Model.Recv "m_Clear") "Closed" "Open" ]

(* Trains approach, pass, and clear.  [headway] is the minimum time
   between a train clearing the crossing and the next approach; the
   environment observes the gate command. *)
let track ~headway =
  Model.automaton ~name:"Track" ~initial:"Away"
    [ loc "Away";
      loc "Approaching";
      loc ~inv:[ Clockcons.le "t" 1_500 ] "Passing" ]
    [ edge
        ~guard:(if headway = 0 then [] else [ Clockcons.ge "t" headway ])
        ~sync:(Model.Send "m_Train") ~resets:[ "t" ] "Away" "Approaching";
      edge ~sync:(Model.Recv "c_GateDown") ~resets:[ "t" ] "Approaching"
        "Passing";
      edge
        ~guard:[ Clockcons.ge "t" 1_000 ]
        ~sync:(Model.Send "m_Clear") ~resets:[ "t" ] "Passing" "Away" ]

let net ~headway =
  Model.network ~name:"railroad" ~clocks:[ "g"; "t" ] ~vars:[]
    ~channels:
      [ ("m_Train", Model.Broadcast);
        ("m_Clear", Model.Broadcast);
        ("c_GateDown", Model.Broadcast) ]
    [ controller; track ~headway ]

let pim_of ~headway =
  Transform.Pim.make (net ~headway) ~software:"GateCtrl" ~environment:"Track"

let pim = pim_of ~headway:300

let scheme ~invocation =
  { Scheme.is_name = "ecu";
    is_inputs =
      [ ("m_Train", Scheme.interrupt_input (Scheme.delay 1 4));
        ("m_Clear", Scheme.interrupt_input (Scheme.delay 1 4)) ];
    is_outputs = [ ("c_GateDown", Scheme.pulse_output (Scheme.delay 5 20)) ];
    is_input_comm = Scheme.Buffer (2, Scheme.Read_all);
    is_output_comm = Scheme.Buffer (2, Scheme.Read_all);
    is_invocation = invocation;
    is_exec = { Scheme.wcet_min = 1; wcet_max = 8 } }

let verify_psm label invocation =
  let s = scheme ~invocation in
  let psm = Transform.psm_of_pim pim s in
  let ok =
    Psv.verify_response psm.Transform.psm_net ~trigger:"m_Train"
      ~response:"c_GateDown" ~bound:requirement_bound
  in
  let bound =
    (Psv.max_delay psm.Transform.psm_net ~trigger:"m_Train"
       ~response:"c_GateDown" ~ceiling:(4 * requirement_bound))
      .Analysis.Queries.dr_sup
  in
  let analytic =
    Analysis.Bounds.relaxed_mc_delay s ~input:"m_Train" ~output:"c_GateDown"
      ~internal:5
  in
  Fmt.pr "%-24s P(%d): %-9s verified sup %-8s analytic %d@." label
    requirement_bound
    (match ok with
     | Mc.Explorer.Proved -> "holds"
     | Mc.Explorer.Refuted _ -> "VIOLATED"
     | Mc.Explorer.Unknown _ -> "unknown")
    (Fmt.str "%a" Mc.Explorer.pp_sup_result bound)
    analytic;
  let constraints = Analysis.Constraints.check_all psm in
  if not (Analysis.Constraints.all_satisfied constraints) then
    List.iter (Fmt.pr "  %a@." Analysis.Constraints.pp_result) constraints

let simulate_approaches () =
  let s = scheme ~invocation:(Scheme.Aperiodic 0) in
  let typical =
    { Sim.Engine.typ_input_proc = (fun _ -> (1.0, 4.0));
      typ_output_proc = (fun _ -> (5.0, 20.0));
      typ_exec = (1.0, 8.0) }
  in
  let rng = Sim.Rng.create 17 in
  let delays =
    List.init 20 (fun i ->
        let at = Sim.Rng.float_range rng 0.0 50.0 in
        let config =
          { Sim.Engine.cfg_pim = pim;
            cfg_scheme = s;
            cfg_typical = typical;
            cfg_stimuli = [ (at, "m_Train") ];
            cfg_horizon = at +. 500.0 }
        in
        let log = Sim.Engine.run ~seed:(100 + i) config in
        match
          Sim.Measure.samples log ~trigger:"m_Train" ~response:"c_GateDown"
        with
        | [ sample ] -> Sim.Measure.mc_delay sample
        | _ -> None)
  in
  match Sim.Measure.stats_of (List.filter_map Fun.id delays) with
  | Some stats ->
    Fmt.pr "@.20 simulated approaches (event-driven ECU): %a@."
      Sim.Measure.pp_stats stats
  | None -> Fmt.pr "no complete approaches?!@."

let show_one_timeline () =
  let s = scheme ~invocation:(Scheme.Aperiodic 0) in
  let typical =
    { Sim.Engine.typ_input_proc = (fun _ -> (2.0, 2.0));
      typ_output_proc = (fun _ -> (10.0, 10.0));
      typ_exec = (3.0, 3.0) }
  in
  let config =
    { Sim.Engine.cfg_pim = pim;
      cfg_scheme = s;
      cfg_typical = typical;
      cfg_stimuli = [ (12.0, "m_Train") ];
      cfg_horizon = 80.0 }
  in
  let log = Sim.Engine.run ~seed:3 config in
  Fmt.pr "@.one approach, fixed delays:@.%s%s@." (Sim.Timeline.render ~width:64 log)
    Sim.Timeline.legend

(* With no headway between a clearing train and the next approach, the
   PIM is fine (mc-boundary synchronisation is atomic), but the platform
   introduces a race: both m_Clear and the next m_Train can sit in the
   io-buffers together, the executive delivers i_Train first, the
   controller is still Closed and discards it - and the gate never
   lowers for that train. *)
let show_platform_race () =
  Fmt.pr "@.-- the race a zero-headway track exposes --@.";
  let racy_pim = pim_of ~headway:0 in
  let pim_ok =
    Psv.verify_response (net ~headway:0) ~trigger:"m_Train"
      ~response:"c_GateDown" ~bound:requirement_bound
  in
  Fmt.pr "%-24s P(%d): %s@." "PIM (headway 0)" requirement_bound
    (match pim_ok with
     | Mc.Explorer.Proved -> "holds"
     | Mc.Explorer.Refuted _ -> "VIOLATED"
     | Mc.Explorer.Unknown _ -> "unknown");
  let psm = Transform.psm_of_pim racy_pim (scheme ~invocation:(Scheme.Aperiodic 0)) in
  let bound =
    (Psv.max_delay psm.Transform.psm_net ~trigger:"m_Train"
       ~response:"c_GateDown" ~ceiling:(4 * requirement_bound))
      .Analysis.Queries.dr_sup
  in
  Fmt.pr "%-24s train -> gate-down sup: %a@." "PSM (headway 0)"
    Mc.Explorer.pp_sup_result bound;
  (* diagnose: a stable state where a train approaches an open gate *)
  let t = Mc.Explorer.make psm.Transform.psm_net in
  (* truly stranded: the train approaches an open gate and the whole
     platform is quiescent - nothing in flight that could still fix it *)
  let stranded st =
    Mc.Explorer.at t ~aut:"Track" ~loc:"Approaching" st
    && Mc.Explorer.at t ~aut:"GateCtrl_IO" ~loc:"Open" st
    && Mc.Explorer.at t ~aut:"IFMI_Train" ~loc:"Idle" st
    && Mc.Explorer.at t ~aut:"IFMI_Clear" ~loc:"Idle" st
    && Mc.Explorer.at t ~aut:"EXEIO" ~loc:"Waiting" st
    && Mc.Explorer.var_value t "ibuf_Train" st = 0
    && Mc.Explorer.var_value t "ibuf_Clear" st = 0
  in
  (match Mc.Explorer.timed_trace t stranded with
   | Some steps ->
     Fmt.pr
       "@[<v 2>witness: the train input is discarded while the gate \
        controller is still closing out the previous train@,%a@]@."
       Fmt.(list ~sep:cut Mc.Explorer.pp_timed_step)
       steps
   | None -> Fmt.pr "(race not reproduced?!)@.")

let () =
  Fmt.pr "requirement: gate commanded down within %d ms of train detection@.@."
    requirement_bound;
  let pim_ok =
    Psv.verify_response (net ~headway:300) ~trigger:"m_Train"
      ~response:"c_GateDown" ~bound:requirement_bound
  in
  Fmt.pr "%-24s P(%d): %s@." "PIM (headway 300)" requirement_bound
    (match pim_ok with
     | Mc.Explorer.Proved -> "holds"
     | Mc.Explorer.Refuted _ -> "VIOLATED"
     | Mc.Explorer.Unknown _ -> "unknown");
  verify_psm "PSM event-driven" (Scheme.Aperiodic 0);
  verify_psm "PSM periodic(25)" (Scheme.Periodic 25);
  verify_psm "PSM periodic(60)" (Scheme.Periodic 60);
  simulate_approaches ();
  show_one_timeline ();
  show_platform_race ()
