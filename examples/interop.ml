(* The interoperability case studies, end to end: two published
   closed-loop medical / multi-rate pipeline scenarios expressed in the
   textual model format and checked against their timing requirements.

   1. Load models/interop.xta (an ICE-style PCA-pump + pulse-oximeter
      closed loop) and verify the 50-unit desaturation-to-pump-stop
      requirement, including the exact worst case.
   2. Load models/mimos_pipeline.xta (a MIMOS-style multi-rate
      sensor/controller pipeline) and verify its 43-unit end-to-end
      latency.

   Run with: dune exec examples/interop.exe *)

let read_model path =
  let fallback = Filename.concat ".." path in
  let file = if Sys.file_exists path then path else fallback in
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match Xta.Parse.network text with
  | Ok net ->
      (match Ta.Model.validate net with
      | [] -> net
      | errs ->
          Fmt.epr "%s: invalid model:@.%a@." file
            Fmt.(list ~sep:cut string)
            errs;
          exit 1)
  | Error msg ->
      Fmt.epr "%s: %s@." file msg;
      exit 1

let check net text =
  match Mc.Query.parse text with
  | Error msg ->
      Fmt.epr "bad query %S: %s@." text msg;
      exit 1
  | Ok q ->
      let r = Mc.Query.eval net q in
      Fmt.pr "  %-55s %a@." text Mc.Query.pp_outcome r.Mc.Query.res_outcome

let () =
  Fmt.pr "== Case study 1: interoperable medical system ==@.";
  Fmt.pr
    "A pulse oximeter (period 20, processing <= 5) supervises a PCA@.\
     pump through a supervisor app (decision <= 10, pump stop <= 15).@.\
     Worst case: 20 + 5 + 10 + 15 = 50.@.@.";
  let interop = read_model "models/interop.xta" in
  let locs, edges = Ta.Model.size interop in
  Fmt.pr "  %d automata, %d locations, %d edges@."
    (List.length interop.Ta.Model.net_automata)
    locs edges;
  check interop "bounded: m_Desat -> c_PumpStopped within 50";
  check interop "sup: m_Desat -> c_PumpStopped ceiling 200";
  check interop "bounded: spo2_low -> c_PumpStopped within 25";
  check interop "A[] not Pump.Stopped or desat == 1";

  Fmt.pr "@.== Case study 2: MIMOS-style multi-rate pipeline ==@.";
  Fmt.pr
    "A period-10 sensor stage feeds a period-25 controller stage@.\
     through a shared flag.  Worst case: 10 + 25 + 8 = 43.@.@.";
  let mimos = read_model "models/mimos_pipeline.xta" in
  let locs, edges = Ta.Model.size mimos in
  Fmt.pr "  %d automata, %d locations, %d edges@."
    (List.length mimos.Ta.Model.net_automata)
    locs edges;
  check mimos "bounded: m_Sample -> c_Actuate within 43";
  check mimos "sup: m_Sample -> c_Actuate ceiling 200";
  check mimos "A[] not Controller.Done or staged == 1";

  Fmt.pr "@.Both platform-timing requirements verified.@."
