(* The paper's Section VI results as regression tests.  These pin the
   headline numbers of Table I: the verified PSM bounds equal the
   published 1430/490/440 ms, the PIM meets REQ1 while the PSM does not,
   and every simulated measurement is bounded by its verified bound. *)

let params = Gpca.Params.default

let test_pim_meets_req1 () =
  let net = Gpca.Model.network ~variant:Gpca.Model.Bolus_only params in
  Alcotest.(check bool) "PIM |= P(500)" true
    (Psv.verify_response net ~trigger:Gpca.Model.bolus_req
       ~response:Gpca.Model.start_infusion ~bound:Gpca.Params.req1_bound
     = Mc.Explorer.Proved)

let test_pim_bound_exactly_500 () =
  let net = Gpca.Model.network ~variant:Gpca.Model.Bolus_only params in
  let r =
    Psv.max_delay net ~trigger:Gpca.Model.bolus_req
      ~response:Gpca.Model.start_infusion ~ceiling:1000
  in
  (match r.Analysis.Queries.dr_sup with
   | Mc.Explorer.Sup (500, false) -> ()
   | sup ->
     Alcotest.failf "PIM internal bound should be <= 500, got %a"
       Mc.Explorer.pp_sup_result sup)

let test_psm_violates_req1 () =
  let psm = Gpca.Model.psm ~variant:Gpca.Model.Bolus_only params in
  (match
     Psv.verify_response psm.Transform.psm_net ~trigger:Gpca.Model.bolus_req
       ~response:Gpca.Model.start_infusion ~bound:Gpca.Params.req1_bound
   with
   | Mc.Explorer.Refuted _ -> ()
   | Mc.Explorer.Proved | Mc.Explorer.Unknown _ ->
     Alcotest.fail "PSM should refute P(500)")

let check_sup label expected = function
  | Mc.Explorer.Sup (v, _) -> Alcotest.(check int) label expected v
  | sup ->
    Alcotest.failf "%s: expected a bounded sup, got %a" label
      Mc.Explorer.pp_sup_result sup

let test_verified_bounds_match_table1 () =
  let v = Gpca.Experiment.verified_bounds params in
  check_sup "M-C bound" 1430 v.Gpca.Experiment.v_mc;
  check_sup "Input-Delay bound" 490 v.Gpca.Experiment.v_input;
  check_sup "Output-Delay bound" 440 v.Gpca.Experiment.v_output;
  Alcotest.(check bool) "no buffer overflow" true
    v.Gpca.Experiment.v_overflow_free

let test_analytic_matches_verified () =
  let a = Gpca.Experiment.analytic_bounds params in
  Alcotest.(check int) "input" 490 a.Gpca.Experiment.a_input;
  Alcotest.(check int) "output" 440 a.Gpca.Experiment.a_output;
  Alcotest.(check int) "internal" 500 a.Gpca.Experiment.a_internal;
  Alcotest.(check int) "Delta'mc" 1430 a.Gpca.Experiment.a_mc

let test_psm_satisfies_relaxed_bound () =
  let psm = Gpca.Model.psm ~variant:Gpca.Model.Bolus_only params in
  Alcotest.(check bool) "PSM |= P(1430)" true
    (Psv.verify_response psm.Transform.psm_net ~trigger:Gpca.Model.bolus_req
       ~response:Gpca.Model.start_infusion ~bound:1430
     = Mc.Explorer.Proved)

(* The paper's headline: every measured delay is bounded by the verified
   bound (Theorem 1's conclusion observed on the implementation). *)
let test_measured_within_verified () =
  let m = Gpca.Experiment.measure ~scenarios:30 ~seed:2026 params in
  Alcotest.(check bool) "max M-C <= 1430" true
    (m.Gpca.Experiment.m_mc.Sim.Measure.st_max <= 1430.0);
  Alcotest.(check bool) "max input <= 490" true
    (m.Gpca.Experiment.m_input.Sim.Measure.st_max <= 490.0);
  Alcotest.(check bool) "max output <= 440" true
    (m.Gpca.Experiment.m_output.Sim.Measure.st_max <= 440.0);
  Alcotest.(check int) "no losses" 0 m.Gpca.Experiment.m_losses

let test_majority_violate_req1 () =
  let m = Gpca.Experiment.measure ~scenarios:30 ~seed:7 params in
  Alcotest.(check bool) "most scenarios exceed 500 ms" true
    (m.Gpca.Experiment.m_req1_violations * 2 > m.Gpca.Experiment.m_scenarios)

let test_measure_deterministic () =
  let a = Gpca.Experiment.measure ~scenarios:5 ~seed:11 params in
  let b = Gpca.Experiment.measure ~scenarios:5 ~seed:11 params in
  Alcotest.(check (float 0.0)) "same seed, same average"
    a.Gpca.Experiment.m_mc.Sim.Measure.st_avg
    b.Gpca.Experiment.m_mc.Sim.Measure.st_avg

let test_constraints_all_satisfied () =
  let psm = Gpca.Model.psm ~variant:Gpca.Model.Bolus_only params in
  Alcotest.(check bool) "constraints 1-4" true
    (Analysis.Constraints.all_satisfied (Analysis.Constraints.check_all psm))

let test_full_variant_alarm_path () =
  (* With the empty-syringe path, the alarm is raised within its bound on
     the PIM. *)
  let net = Gpca.Model.network ~variant:Gpca.Model.Full params in
  Alcotest.(check bool) "alarm within 150" true
    (Psv.verify_response net ~trigger:Gpca.Model.empty_syringe
       ~response:Gpca.Model.alarm ~bound:params.Gpca.Params.alarm_max
     = Mc.Explorer.Proved)

let test_model_validates () =
  List.iter
    (fun variant ->
      Alcotest.(check (list string)) "valid" []
        (Ta.Model.validate (Gpca.Model.network ~variant params)))
    [ Gpca.Model.Bolus_only; Gpca.Model.Full ]

let suite =
  [ Alcotest.test_case "PIM meets REQ1" `Quick test_pim_meets_req1;
    Alcotest.test_case "PIM bound is exactly 500" `Quick
      test_pim_bound_exactly_500;
    Alcotest.test_case "PSM violates REQ1" `Slow test_psm_violates_req1;
    Alcotest.test_case "verified bounds match Table I" `Slow
      test_verified_bounds_match_table1;
    Alcotest.test_case "analytic bounds match Table I" `Quick
      test_analytic_matches_verified;
    Alcotest.test_case "PSM satisfies the relaxed bound" `Slow
      test_psm_satisfies_relaxed_bound;
    Alcotest.test_case "measured delays within verified bounds" `Slow
      test_measured_within_verified;
    Alcotest.test_case "majority of runs violate REQ1" `Quick
      test_majority_violate_req1;
    Alcotest.test_case "measurement is deterministic" `Quick
      test_measure_deterministic;
    Alcotest.test_case "constraints all satisfied" `Slow
      test_constraints_all_satisfied;
    Alcotest.test_case "alarm path verified (full variant)" `Quick
      test_full_variant_alarm_path;
    Alcotest.test_case "models validate" `Quick test_model_validates ]
