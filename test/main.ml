let () =
  Alcotest.run "psv"
    [ ("expr", Test_expr.suite);
      ("dbm", Test_dbm.suite);
      ("model", Test_model.suite);
      ("compiled", Test_compiled.suite);
      ("mc", Test_mc.suite);
      ("runctl", Test_runctl.suite);
      ("parsearch", Test_parsearch.suite);
      ("monitor", Test_monitor.suite);
      ("semantics", Test_semantics.suite);
      ("query", Test_query.suite);
      ("scheme", Test_scheme.suite);
      ("transform", Test_transform.suite);
      ("code-runner", Test_code_runner.suite);
      ("sim", Test_sim.suite);
      ("faults", Test_faults.suite);
      ("analysis", Test_analysis.suite);
      ("xta", Test_xta.suite);
      ("implementability", Test_implementability.suite);
      ("end-to-end", Test_endtoend.suite);
      ("render", Test_render.suite);
      ("extras", Test_extras.suite);
      ("codegen", Test_codegen.suite);
      ("gpca", Test_gpca.suite);
      ("store", Test_store.suite);
      ("fault-plane", Test_fault.suite);
      ("chaos-store", Chaos_store.suite);
      ("chaos-serve", Chaos_serve.suite);
      ("sweep", Test_sweep.suite);
      ("chaos-net", Chaos_net.suite);
      ("incr", Test_incr.suite);
      ("chaos-incr", Chaos_incr.suite);
      ("diff", Test_diff.suite) ]
