(* Tests of the incremental re-verification subsystem: the psv-key-v2
   manifest, the cone-of-influence decision, the delta record/replay
   engine (byte-equality with from-scratch sequential runs is the hard
   bar), the session ladder with its persistence, and the corrupt-bytes
   split in the disk stats. *)

module M = Ta.Model
module Q = Mc.Query

let tmp_counter = ref 0

let with_store_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psv_incr_test_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with _ -> ()) (fun () -> f dir)

let query text =
  match Q.parse text with
  | Ok q -> q
  | Error msg -> Alcotest.failf "bad query %S: %s" text msg

(* --- the toy network --------------------------------------------------

   Sender --c--> Receiver form one influence component (channel [c] and
   the flag [v] Receiver writes and the query reads).  Idler is a
   disconnected, time-inert component; Capped is a disconnected
   component that constrains time (an invariant on its private clock
   [y]), so edits to it must refuse the cone rung. *)

let sender =
  M.automaton ~name:"Sender" ~initial:"Idle"
    [ M.location ~inv:[ Ta.Clockcons.le "x" 10 ] "Idle"; M.location "Work" ]
    [ M.edge ~guard:[ Ta.Clockcons.ge "x" 2 ] ~sync:(M.Send "c")
        ~resets:[ "x" ] "Idle" "Work";
      M.edge ~guard:[ Ta.Clockcons.ge "x" 1 ] ~resets:[ "x" ] "Work" "Idle" ]

let receiver =
  M.automaton ~name:"Receiver" ~initial:"Wait"
    [ M.location "Wait"; M.location "Busy" ]
    [ M.edge ~sync:(M.Recv "c")
        ~updates:[ ("v", Ta.Expr.int 1) ]
        "Wait" "Busy";
      M.edge "Busy" "Wait" ]

let idler =
  M.automaton ~name:"Idler" ~initial:"A"
    [ M.location "A"; M.location "B" ]
    [ M.edge "A" "B"; M.edge "B" "A" ]

let capped =
  M.automaton ~name:"Capped" ~initial:"Run"
    [ M.location ~inv:[ Ta.Clockcons.le "y" 50 ] "Run" ]
    [ M.edge ~guard:[ Ta.Clockcons.ge "y" 1 ] ~resets:[ "y" ] "Run" "Run" ]

let toy_net =
  M.network ~name:"toy" ~clocks:[ "x"; "y" ]
    ~vars:[ ("v", M.flag ()) ]
    ~channels:[ ("c", M.Binary) ]
    [ sender; receiver; idler; capped ]

(* An edit helper: replace one automaton wholesale. *)
let with_automaton net name a = M.replace_automaton net name a

let idler' =
  (* same names, one edge fewer: digest moves, still inert *)
  M.automaton ~name:"Idler" ~initial:"A"
    [ M.location "A"; M.location "B" ]
    [ M.edge "A" "B" ]

let sender_tweaked =
  M.automaton ~name:"Sender" ~initial:"Idle"
    [ M.location ~inv:[ Ta.Clockcons.le "x" 10 ] "Idle"; M.location "Work" ]
    [ M.edge ~guard:[ Ta.Clockcons.ge "x" 3 ] ~sync:(M.Send "c")
        ~resets:[ "x" ] "Idle" "Work";
      M.edge ~guard:[ Ta.Clockcons.ge "x" 1 ] ~resets:[ "x" ] "Work" "Idle" ]

(* --- Store.Key v2 manifest -------------------------------------------- *)

let test_manifest () =
  let m = Store.Key.manifest toy_net in
  Alcotest.(check int) "one digest per automaton" 4
    (List.length m.Store.Key.mf_automata);
  Alcotest.(check bool) "self-equal" true (Store.Key.manifest_equal m m);
  (* editing one automaton moves exactly its digest *)
  let m' = Store.Key.manifest (with_automaton toy_net "Idler" idler') in
  Alcotest.(check bool) "decls digest stable" true
    (Store.D128.equal m.Store.Key.mf_decls m'.Store.Key.mf_decls);
  List.iter2
    (fun (name, d) (name', d') ->
      Alcotest.(check string) "same automaton order" name name';
      Alcotest.(check bool)
        (Printf.sprintf "digest of %s %s" name
           (if name = "Idler" then "moves" else "stays"))
        (name <> "Idler")
        (Store.D128.equal d d'))
    m.Store.Key.mf_automata m'.Store.Key.mf_automata;
  (* a declaration change moves the decls digest *)
  let net_decl =
    M.network ~name:"toy" ~clocks:[ "x"; "y" ]
      ~vars:[ ("v", M.flag ()); ("w", M.flag ()) ]
      ~channels:[ ("c", M.Binary) ]
      [ sender; receiver; idler; capped ]
  in
  let md = Store.Key.manifest net_decl in
  Alcotest.(check bool) "decls digest moves" false
    (Store.D128.equal m.Store.Key.mf_decls md.Store.Key.mf_decls);
  Alcotest.(check bool) "manifest_digest separates" false
    (Store.D128.equal
       (Store.Key.manifest_digest m)
       (Store.Key.manifest_digest md))

(* --- cone ------------------------------------------------------------- *)

let test_cone_components () =
  let t = Incr.Cone.analyse toy_net in
  Alcotest.(check bool) "channel links Sender-Receiver" true
    (Incr.Cone.same_component t "Sender" "Receiver");
  Alcotest.(check bool) "Idler disconnected" false
    (Incr.Cone.same_component t "Sender" "Idler");
  Alcotest.(check bool) "Capped disconnected" false
    (Incr.Cone.same_component t "Receiver" "Capped");
  Alcotest.(check bool) "Idler inert" true (Incr.Cone.component_inert t "Idler");
  Alcotest.(check bool) "Capped not inert" false
    (Incr.Cone.component_inert t "Capped");
  Alcotest.(check bool) "Sender component not inert (invariant)" false
    (Incr.Cone.component_inert t "Sender")

let test_cone_channel_chain () =
  (* A -c1-> B -c2-> C: transitively one component, D apart. *)
  let auto name edges locs = M.automaton ~name ~initial:"I" locs edges in
  let a =
    auto "A"
      [ M.edge ~sync:(M.Send "c1") "I" "I" ]
      [ M.location "I" ]
  and b =
    auto "B"
      [ M.edge ~sync:(M.Recv "c1") "I" "J"; M.edge ~sync:(M.Send "c2") "J" "I" ]
      [ M.location "I"; M.location "J" ]
  and c =
    auto "C"
      [ M.edge ~sync:(M.Recv "c2") "I" "I" ]
      [ M.location "I" ]
  and d = auto "D" [ M.edge "I" "I" ] [ M.location "I" ] in
  let net =
    M.network ~name:"chain" ~clocks:[] ~vars:[]
      ~channels:[ ("c1", M.Binary); ("c2", M.Binary) ]
      [ a; b; c; d ]
  in
  let t = Incr.Cone.analyse net in
  Alcotest.(check bool) "A-C linked through B" true
    (Incr.Cone.same_component t "A" "C");
  Alcotest.(check (list string)) "cone of E<> A.I" [ "A"; "B"; "C" ]
    (Incr.Cone.cone t (query "E<> A.I"));
  Alcotest.(check (list string)) "cone of a D query" [ "D" ]
    (Incr.Cone.cone t (query "E<> D.I"))

let test_cone_var_aliasing () =
  (* No channels: W writes [v], R reads it in a guard — shared-variable
     aliasing must link them. *)
  let w =
    M.automaton ~name:"W" ~initial:"I"
      [ M.location "I" ]
      [ M.edge ~updates:[ ("v", Ta.Expr.int 1) ] "I" "I" ]
  and r =
    M.automaton ~name:"R" ~initial:"I"
      [ M.location "I"; M.location "J" ]
      [ M.edge ~pred:(Ta.Expr.var_eq "v" 1) "I" "J" ]
  in
  let net =
    M.network ~name:"alias" ~clocks:[]
      ~vars:[ ("v", M.flag ()) ]
      ~channels:[] [ w; r ]
  in
  let t = Incr.Cone.analyse net in
  Alcotest.(check bool) "aliased" true (Incr.Cone.same_component t "W" "R");
  Alcotest.(check (list string)) "v-query cone covers both" [ "W"; "R" ]
    (Incr.Cone.cone t (query "E<> v == 1"))

let test_cone_check () =
  let q = query "E<> Receiver.Busy" in
  let ok = function
    | Ok () -> true
    | Error _ -> false
  in
  (* identical nets trivially hit *)
  Alcotest.(check bool) "identical nets hit" true
    (ok (Incr.Cone.check ~old_net:toy_net toy_net q));
  (* inert disconnected edit hits *)
  Alcotest.(check bool) "Idler edit hits" true
    (ok
       (Incr.Cone.check ~old_net:toy_net
          (with_automaton toy_net "Idler" idler')
          q));
  (* removing the inert automaton hits too *)
  let removed =
    { toy_net with
      M.net_automata =
        List.filter
          (fun (a : M.automaton) -> a.M.aut_name <> "Idler")
          toy_net.M.net_automata }
  in
  Alcotest.(check bool) "Idler removal hits" true
    (ok (Incr.Cone.check ~old_net:toy_net removed q));
  (* an edit inside the cone misses *)
  Alcotest.(check bool) "Sender edit misses" false
    (ok
       (Incr.Cone.check ~old_net:toy_net
          (with_automaton toy_net "Sender" sender_tweaked)
          q));
  (* an edit in a time-constraining component misses even though it is
     outside the cone *)
  let capped' =
    M.automaton ~name:"Capped" ~initial:"Run"
      [ M.location ~inv:[ Ta.Clockcons.le "y" 40 ] "Run" ]
      [ M.edge ~guard:[ Ta.Clockcons.ge "y" 1 ] ~resets:[ "y" ] "Run" "Run" ]
  in
  Alcotest.(check bool) "Capped edit misses (time)" false
    (ok
       (Incr.Cone.check ~old_net:toy_net
          (with_automaton toy_net "Capped" capped')
          q));
  (* a declaration change misses *)
  let net_decl =
    M.network ~name:"toy" ~clocks:[ "x"; "y"; "z" ]
      ~vars:[ ("v", M.flag ()) ]
      ~channels:[ ("c", M.Binary) ]
      [ sender; receiver; idler; capped ]
  in
  Alcotest.(check bool) "decl change misses" false
    (ok (Incr.Cone.check ~old_net:toy_net net_decl q))

(* --- delta record/replay ---------------------------------------------- *)

let result_json (r : Q.result) =
  Store.Json.to_string
    (Store.Json.Obj
       [ ("outcome",
          Store.Entry.outcome_to_json
            (Analysis.Qcache.outcome_to_entry r.Q.res_outcome));
         ("stats",
          Store.Entry.stats_to_json
            (Analysis.Qcache.stats_to_entry r.Q.res_stats)) ])

let check_scratch_equal label net q (r : Q.result) =
  let scratch = Q.eval ~jobs:1 net q in
  Alcotest.(check string) label (result_json scratch) (result_json r)

let test_delta_record_matches_scratch () =
  List.iter
    (fun qtext ->
      let q = query qtext in
      let run = Incr.Delta.record toy_net q in
      check_scratch_equal ("record " ^ qtext) toy_net q run.Incr.Delta.dr_result;
      Alcotest.(check bool) ("graph nonempty " ^ qtext) true
        (Incr.Delta.size run.Incr.Delta.dr_graph > 0))
    [ "E<> Receiver.Busy"; "A[] v == 0"; "A[] not Sender.Work" ]

let test_delta_replay_identical_net () =
  let q = query "A[] v == 0" in
  let base = Incr.Delta.record toy_net q in
  match
    Incr.Delta.replay ~old_net:toy_net ~graph:base.Incr.Delta.dr_graph toy_net q
  with
  | Error msg -> Alcotest.failf "identical-net replay refused: %s" msg
  | Ok run ->
    check_scratch_equal "identical replay" toy_net q run.Incr.Delta.dr_result;
    Alcotest.(check int) "no real expansions" 0 run.Incr.Delta.dr_expanded;
    Alcotest.(check bool) "everything replayed" true
      (run.Incr.Delta.dr_replayed > 0)

let test_delta_replay_after_edit () =
  let q = query "E<> Receiver.Busy" in
  let base = Incr.Delta.record toy_net q in
  let edited = with_automaton toy_net "Sender" sender_tweaked in
  match
    Incr.Delta.replay ~old_net:toy_net ~graph:base.Incr.Delta.dr_graph edited q
  with
  | Error msg -> Alcotest.failf "edited replay refused: %s" msg
  | Ok run ->
    check_scratch_equal "edited replay" edited q run.Incr.Delta.dr_result

let test_delta_fallback_triggers () =
  let q = query "E<> Receiver.Busy" in
  let base = Incr.Delta.record toy_net q in
  let refused net =
    match
      Incr.Delta.replay ~old_net:toy_net ~graph:base.Incr.Delta.dr_graph net q
    with
    | Error _ -> true
    | Ok _ -> false
  in
  (* added clock *)
  Alcotest.(check bool) "clock added refused" true
    (refused
       (M.network ~name:"toy" ~clocks:[ "x"; "y"; "z" ]
          ~vars:[ ("v", M.flag ()) ]
          ~channels:[ ("c", M.Binary) ]
          [ sender; receiver; idler; capped ]));
  (* added automaton *)
  Alcotest.(check bool) "automaton added refused" true
    (refused
       (M.add_automata toy_net
          [ M.automaton ~name:"Extra" ~initial:"I"
              [ M.location "I" ]
              [ M.edge "I" "I" ] ]));
  (* urgency added *)
  let urgent_idler =
    M.automaton ~name:"Idler" ~initial:"A"
      [ M.location "A"; M.location ~kind:M.Urgent "B" ]
      [ M.edge "A" "B"; M.edge "B" "A" ]
  in
  Alcotest.(check bool) "urgency added refused" true
    (refused (with_automaton toy_net "Idler" urgent_idler));
  (* wrong graph: different query *)
  (match
     Incr.Delta.replay ~old_net:toy_net ~graph:base.Incr.Delta.dr_graph toy_net
       (query "A[] v == 0")
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "foreign query accepted")

let test_graph_codec () =
  let q = query "A[] v == 0" in
  let run = Incr.Delta.record toy_net q in
  let blob = Incr.Delta.encode run.Incr.Delta.dr_graph in
  (match Incr.Delta.decode blob with
   | Ok g ->
     Alcotest.(check int) "size round-trips"
       (Incr.Delta.size run.Incr.Delta.dr_graph)
       (Incr.Delta.size g)
   | Error msg -> Alcotest.failf "decode failed: %s" msg);
  (match Incr.Delta.decode "garbage" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "decoded garbage")

(* --- sup-query delta --------------------------------------------------- *)

(* Sender->Receiver delay: trigger [c], response [d] (Receiver's
   acknowledgement), so the timed queries run with a monitor. *)
let timed_receiver =
  M.automaton ~name:"Receiver" ~initial:"Wait"
    [ M.location ~inv:[ Ta.Clockcons.le "r" 7 ] "Busy"; M.location "Wait" ]
    [ M.edge ~sync:(M.Recv "c") ~resets:[ "r" ]
        ~updates:[ ("v", Ta.Expr.int 1) ]
        "Wait" "Busy";
      M.edge ~guard:[ Ta.Clockcons.ge "r" 3 ] ~sync:(M.Send "d") "Busy" "Wait" ]

let timed_net =
  M.network ~name:"timed" ~clocks:[ "x"; "r" ]
    ~vars:[ ("v", M.flag ()) ]
    ~channels:[ ("c", M.Binary); ("d", M.Broadcast) ]
    [ sender; timed_receiver ]

let test_delta_sup_query () =
  let q = query "sup: c -> d ceiling 100" in
  let run = Incr.Delta.record timed_net q in
  check_scratch_equal "sup record" timed_net q run.Incr.Delta.dr_result;
  (* constant edit inside the receiver, then replay *)
  let receiver' =
    M.automaton ~name:"Receiver" ~initial:"Wait"
      [ M.location ~inv:[ Ta.Clockcons.le "r" 9 ] "Busy"; M.location "Wait" ]
      [ M.edge ~sync:(M.Recv "c") ~resets:[ "r" ]
          ~updates:[ ("v", Ta.Expr.int 1) ]
          "Wait" "Busy";
        M.edge ~guard:[ Ta.Clockcons.ge "r" 3 ] ~sync:(M.Send "d") "Busy"
          "Wait" ]
  in
  let edited = with_automaton timed_net "Receiver" receiver' in
  match
    Incr.Delta.replay ~old_net:timed_net ~graph:run.Incr.Delta.dr_graph edited q
  with
  | Error msg -> Alcotest.failf "sup replay refused: %s" msg
  | Ok r2 ->
    check_scratch_equal "sup replay" edited q r2.Incr.Delta.dr_result;
    (* bounded: same monitor, different ladder *)
    let qb = query "bounded: c -> d within 20" in
    let rb = Incr.Delta.record edited qb in
    check_scratch_equal "bounded record" edited qb rb.Incr.Delta.dr_result

(* --- session ladder ---------------------------------------------------- *)

let test_session_ladder () =
  with_store_dir (fun dir ->
      let disk =
        match Store.Disk.open_ dir with
        | Ok d -> d
        | Error msg -> Alcotest.failf "open store: %s" msg
      in
      let cache = Analysis.Qcache.make disk in
      let sess = Incr.Session.make ~cache ~tag:"test-toy" () in
      let q = query "E<> Receiver.Busy" in
      let o1 = Incr.Session.run sess toy_net q in
      Alcotest.(check string) "cold run answers on the full rung" "full"
        (Incr.Session.rung_name o1.Incr.Session.so_rung);
      check_scratch_equal "full result" toy_net q o1.Incr.Session.so_result;
      (* identical rerun: store rung *)
      let o2 = Incr.Session.run sess toy_net q in
      Alcotest.(check string) "identical rerun hits the store" "store"
        (Incr.Session.rung_name o2.Incr.Session.so_rung);
      (* invisible edit: cone rung *)
      let inert_edit = with_automaton toy_net "Idler" idler' in
      let o3 = Incr.Session.run sess inert_edit q in
      Alcotest.(check string) "invisible edit hits the cone" "cone"
        (Incr.Session.rung_name o3.Incr.Session.so_rung);
      Alcotest.(check string) "cone returns the cached verdict"
        (result_json o1.Incr.Session.so_result)
        (result_json o3.Incr.Session.so_result);
      (* visible constant edit: delta rung, scratch-identical *)
      let edited = with_automaton toy_net "Sender" sender_tweaked in
      let o4 = Incr.Session.run sess edited q in
      Alcotest.(check string) "visible edit re-explores on delta" "delta"
        (Incr.Session.rung_name o4.Incr.Session.so_rung);
      check_scratch_equal "delta result" edited q o4.Incr.Session.so_result;
      (* rung counters surfaced through the cache stats *)
      let cone, delta, full = Analysis.Qcache.rung_counts cache in
      Alcotest.(check (list int)) "rung counters" [ 1; 1; 1 ]
        [ cone; delta; full ];
      (match
         Store.Json.member "incr" (Analysis.Qcache.stats_json cache)
       with
       | Some (Store.Json.Obj _) -> ()
       | _ -> Alcotest.fail "stats_json lacks the incr object"))

let test_session_persistence () =
  with_store_dir (fun dir ->
      let disk =
        match Store.Disk.open_ dir with
        | Ok d -> d
        | Error msg -> Alcotest.failf "open store: %s" msg
      in
      let cache = Analysis.Qcache.make disk in
      let q = query "A[] v == 0" in
      let sess1 = Incr.Session.make ~cache ~tag:"persist" () in
      let _ = Incr.Session.run sess1 toy_net q in
      (* a new session (fresh process, same store) resumes the ladder *)
      let sess2 = Incr.Session.make ~cache ~tag:"persist" () in
      let edited = with_automaton toy_net "Sender" sender_tweaked in
      let o = Incr.Session.run sess2 edited q in
      Alcotest.(check string) "fresh session replays from disk" "delta"
        (Incr.Session.rung_name o.Incr.Session.so_rung);
      check_scratch_equal "persisted delta result" edited q
        o.Incr.Session.so_result;
      (* session files verify *)
      let fsck = Store.Session.fsck disk in
      Alcotest.(check int) "one good session" 1 fsck.Store.Session.sk_ok;
      Alcotest.(check int) "one good graph" 1 fsck.Store.Session.sk_graphs;
      Alcotest.(check (list (pair string string))) "no bad session files" []
        fsck.Store.Session.sk_bad)

let test_session_fsck_catches_corruption () =
  with_store_dir (fun dir ->
      let disk =
        match Store.Disk.open_ dir with
        | Ok d -> d
        | Error msg -> Alcotest.failf "open store: %s" msg
      in
      let cache = Analysis.Qcache.make disk in
      let sess = Incr.Session.make ~cache ~tag:"corrupt" () in
      let _ = Incr.Session.run sess toy_net (query "A[] v == 0") in
      let sessions = Store.Session.list disk in
      Alcotest.(check int) "one session file" 1 (List.length sessions);
      let path = Filename.concat dir (List.hd sessions) in
      let oc = open_out_bin path in
      output_string oc "PSVSESS1\ndeadbeef\n0\n";
      close_out oc;
      let fsck = Store.Session.fsck disk in
      Alcotest.(check int) "no good sessions" 0 fsck.Store.Session.sk_ok;
      Alcotest.(check bool) "corruption reported" true
        (fsck.Store.Session.sk_bad <> []);
      let removed = Store.Session.gc disk in
      Alcotest.(check int) "gc removes the bad session" 1 removed;
      let fsck' = Store.Session.fsck disk in
      Alcotest.(check (list (pair string string))) "clean after gc" []
        fsck'.Store.Session.sk_bad)

(* --- disk stats corrupt-bytes split ------------------------------------ *)

let test_stats_corrupt_bytes () =
  with_store_dir (fun dir ->
      let disk =
        match Store.Disk.open_ dir with
        | Ok d -> d
        | Error msg -> Alcotest.failf "open store: %s" msg
      in
      let entry key =
        { Store.Entry.en_key = key;
          en_query = "E<> true";
          en_outcome = Store.Entry.Holds;
          en_stats = { Store.Entry.visited = 1; stored = 1; frontier = 0 };
          en_budget = Store.Entry.unlimited;
          en_prov =
            { Store.Entry.pv_tool = "test";
              pv_jobs = 1;
              pv_wall_ms = 0.;
              pv_created = 0. } }
      in
      let k1 = Store.D128.of_string "one" and k2 = Store.D128.of_string "two" in
      Store.Disk.insert disk (entry k1);
      Store.Disk.insert disk (entry k2);
      let s0 = Store.Disk.stats disk in
      Alcotest.(check int) "two entries" 2 s0.Store.Disk.st_entries;
      Alcotest.(check int) "no corrupt bytes yet" 0
        s0.Store.Disk.st_corrupt_bytes;
      (* smash one entry *)
      let victim = Filename.concat dir (Store.D128.to_hex k2 ^ ".psve") in
      let garbage = String.make 100 'x' in
      let oc = open_out_bin victim in
      output_string oc garbage;
      close_out oc;
      let s = Store.Disk.stats disk in
      Alcotest.(check int) "one well-formed" 1 s.Store.Disk.st_entries;
      Alcotest.(check int) "one corrupt" 1 s.Store.Disk.st_corrupt;
      Alcotest.(check int) "corrupt bytes separated" 100
        s.Store.Disk.st_corrupt_bytes;
      Alcotest.(check bool) "good bytes exclude the corrupt file" true
        (s.Store.Disk.st_bytes < s0.Store.Disk.st_bytes))

let suite =
  [ Alcotest.test_case "key-v2 manifest" `Quick test_manifest;
    Alcotest.test_case "cone components" `Quick test_cone_components;
    Alcotest.test_case "cone channel chain" `Quick test_cone_channel_chain;
    Alcotest.test_case "cone var aliasing" `Quick test_cone_var_aliasing;
    Alcotest.test_case "cone check" `Quick test_cone_check;
    Alcotest.test_case "delta record = scratch" `Quick
      test_delta_record_matches_scratch;
    Alcotest.test_case "delta replay identical net" `Quick
      test_delta_replay_identical_net;
    Alcotest.test_case "delta replay after edit" `Quick
      test_delta_replay_after_edit;
    Alcotest.test_case "delta fallback triggers" `Quick
      test_delta_fallback_triggers;
    Alcotest.test_case "graph codec" `Quick test_graph_codec;
    Alcotest.test_case "delta sup queries" `Quick test_delta_sup_query;
    Alcotest.test_case "session ladder" `Quick test_session_ladder;
    Alcotest.test_case "session persistence" `Quick test_session_persistence;
    Alcotest.test_case "session fsck" `Quick
      test_session_fsck_catches_corruption;
    Alcotest.test_case "stats corrupt bytes" `Quick test_stats_corrupt_bytes ]
