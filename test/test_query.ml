(* Tests for the query language: parsing, evaluation, and error cases. *)

open Ta

let loc = Model.location
let edge = Model.edge

let net () =
  let worker =
    Model.automaton ~name:"W" ~initial:"Idle"
      [ loc "Idle"; loc ~inv:[ Clockcons.le "w" 8 ] "Busy"; loc "Done" ]
      [ edge ~sync:(Model.Recv "req") ~resets:[ "w" ]
          ~updates:[ ("jobs", Expr.(var "jobs" + int 1)) ]
          "Idle" "Busy";
        edge ~guard:[ Clockcons.ge "w" 2 ] ~sync:(Model.Send "resp") "Busy"
          "Done" ]
  in
  let env =
    Model.automaton ~name:"E" ~initial:"E0"
      [ loc "E0"; loc "E1"; loc "E2" ]
      [ edge ~sync:(Model.Send "req") "E0" "E1";
        edge ~sync:(Model.Recv "resp") "E1" "E2" ]
  in
  Model.network ~name:"q" ~clocks:[ "w" ]
    ~vars:[ ("jobs", Model.int_var ~min:0 ~max:5 0) ]
    ~channels:[ ("req", Model.Broadcast); ("resp", Model.Broadcast) ]
    [ worker; env ]

let run text =
  match Mc.Query.parse text with
  | Error msg -> Alcotest.failf "parse of %S failed: %s" text msg
  | Ok q -> (Mc.Query.eval (net ()) q).Mc.Query.res_outcome

let check_holds text expected =
  let holds = match run text with Mc.Query.Holds -> true | _ -> false in
  Alcotest.(check bool) text expected holds

let test_exists () =
  check_holds "E<> W.Done" true;
  check_holds "E<> W.Idle and jobs == 1" false;
  check_holds "E<> jobs >= 1" true;
  check_holds "E<> jobs >= 2" false

let test_always () =
  check_holds "A[] jobs <= 1" true;
  check_holds "A[] not W.Done" false;
  check_holds "A[] (W.Idle or W.Busy) or W.Done" true

let test_counterexample_trace () =
  match run "A[] not W.Done" with
  | Mc.Query.Fails (Some trace) ->
    Alcotest.(check bool) "trace non-empty" true (trace <> [])
  | _ -> Alcotest.fail "expected a counterexample"

let test_connective_structure () =
  (* 'and' binds tighter than 'or'; 'not' tighter than 'and'. *)
  match Mc.Query.parse "E<> not W.Done and jobs == 0 or W.Idle" with
  | Ok (Mc.Query.Exists_eventually (Mc.Query.Or (Mc.Query.And (Mc.Query.Not _, _), _))) -> ()
  | Ok _ -> Alcotest.fail "unexpected parse structure"
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_sup () =
  match run "sup: req -> resp ceiling 100" with
  | Mc.Query.Sup (Mc.Explorer.Sup (8, false)) -> ()
  | r -> Alcotest.failf "expected sup <= 8, got %a" Mc.Query.pp_outcome r

let test_bounded () =
  check_holds "bounded: req -> resp within 8" true;
  (match run "bounded: req -> resp within 7" with
   | Mc.Query.Fails None -> ()
   | r -> Alcotest.failf "expected failure, got %a" Mc.Query.pp_outcome r)

let test_parse_errors () =
  let bad text =
    match Mc.Query.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "bogus query %S accepted" text
  in
  bad "";
  bad "E<>";
  bad "sup: req resp";
  bad "bounded: req -> resp";
  bad "E<> W .";
  bad "X[] true"

let suite =
  [ Alcotest.test_case "E<> queries" `Quick test_exists;
    Alcotest.test_case "A[] queries" `Quick test_always;
    Alcotest.test_case "counterexample trace" `Quick test_counterexample_trace;
    Alcotest.test_case "connective precedence" `Quick
      test_connective_structure;
    Alcotest.test_case "sup query" `Quick test_sup;
    Alcotest.test_case "bounded query" `Quick test_bounded;
    Alcotest.test_case "parse errors" `Quick test_parse_errors ]
