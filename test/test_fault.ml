(* Tests of the fault plane: the profile grammar, determinism of the
   seeded schedules, injected I/O semantics, retry/backoff, and the
   circuit breaker.  Everything here runs with injected clocks and
   sleeps — no real time passes. *)

let tmp_counter = ref 0

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psv_fault_test_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with _ -> ()) (fun () -> f dir)

let profile text =
  match Fault.Profile.parse text with
  | Ok p -> p
  | Error msg -> Alcotest.failf "profile %S: %s" text msg

(* --- profile grammar ------------------------------------------------------ *)

let test_profile_parse () =
  Alcotest.(check bool) "empty string is the none profile" true
    (Fault.Profile.is_none (profile ""));
  let p = profile "eio=0.25,short=0.5,latency=2ms,seed=42" in
  Alcotest.(check (float 1e-9)) "eio" 0.25 p.Fault.Profile.p_eio;
  Alcotest.(check (float 1e-9)) "short" 0.5 p.Fault.Profile.p_short;
  Alcotest.(check (float 1e-9)) "latency" 0.002 p.Fault.Profile.p_latency_s;
  Alcotest.(check int) "seed" 42 p.Fault.Profile.p_seed;
  Alcotest.(check (float 1e-9)) "unset keys default to zero" 0.0
    p.Fault.Profile.p_eagain;
  Alcotest.(check bool) "non-empty profile is not none" false
    (Fault.Profile.is_none p);
  (* whitespace and empty fields around the commas are tolerated *)
  let p' = profile " eio=0.25 ,, short=0.5 , latency=2ms , seed=42 " in
  Alcotest.(check bool) "spaces around fields are fine" true (p = p')

let test_profile_roundtrip () =
  List.iter
    (fun text ->
      let p = profile text in
      let p' = profile (Fault.Profile.to_string p) in
      Alcotest.(check bool)
        (Printf.sprintf "%S survives to_string/parse" text)
        true (p = p'))
    [ ""; "eio=0.01"; "eagain=1"; "short=0.125,fsync=0.25,rename=0.5";
      "latency=15ms,seed=7"; "eio=0.02,eagain=0.02,seed=123" ]

let test_profile_errors () =
  List.iter
    (fun bad ->
      match Fault.Profile.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [ "bogus=1"; "eio=2"; "eio=-0.5"; "eio=abc"; "latency=xyz"; "seed=-1";
      "seed=1.5"; "eio"; "=0.5" ]

let test_profile_draws () =
  let p = profile "seed=9" in
  let d op stream = Fault.Profile.draw p ~op ~stream in
  (* same coordinates, same draw — the whole chaos story rests on this *)
  Alcotest.(check (float 0.0)) "deterministic" (d 3 1) (d 3 1);
  for op = 0 to 99 do
    for stream = 0 to 4 do
      let u = d op stream in
      if u < 0.0 || u >= 1.0 then
        Alcotest.failf "draw (%d,%d) = %f out of [0,1)" op stream u
    done
  done;
  (* distinct coordinates decorrelate *)
  Alcotest.(check bool) "ops differ" true (d 0 0 <> d 1 0);
  Alcotest.(check bool) "streams differ" true (d 0 0 <> d 0 1);
  let q = profile "seed=10" in
  Alcotest.(check bool) "seeds differ" true
    (Fault.Profile.draw q ~op:0 ~stream:0 <> d 0 0)

(* --- injection ------------------------------------------------------------ *)

let test_inject_eio () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      Fault.Io.real.Fault.Io.write_file path "payload";
      let stats = Fault.Io.stats () in
      let io = Fault.Io.inject ~stats (profile "eio=1,seed=1") Fault.Io.real in
      let expect_eio label f =
        match f () with
        | _ -> Alcotest.failf "%s: no fault injected" label
        | exception Unix.Unix_error (Unix.EIO, _, _) -> ()
      in
      expect_eio "read" (fun () -> io.Fault.Io.read_file path);
      expect_eio "write" (fun () -> io.Fault.Io.write_file path "x");
      expect_eio "rename" (fun () ->
          io.Fault.Io.rename path (Filename.concat dir "g"));
      expect_eio "readdir" (fun () -> io.Fault.Io.readdir dir);
      (* probes stay fault-free by design *)
      Alcotest.(check bool) "file_exists passes through" true
        (io.Fault.Io.file_exists path);
      Alcotest.(check int) "every op counted" 4 (Atomic.get stats.Fault.Io.fs_ops);
      Alcotest.(check int) "every fault counted" 4
        (Atomic.get stats.Fault.Io.fs_faults))

let test_inject_short_read () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      let content = String.init 100 (fun i -> Char.chr (i mod 256)) in
      Fault.Io.real.Fault.Io.write_file path content;
      let p = profile "short=1,seed=3" in
      let read () =
        (Fault.Io.inject p Fault.Io.real).Fault.Io.read_file path
      in
      let got = read () in
      let n = String.length got in
      Alcotest.(check bool) "strictly truncated" true (n < 100);
      Alcotest.(check string) "a prefix of the real content"
        (String.sub content 0 n) got;
      (* a fresh wrapper restarts the schedule: same truncation *)
      Alcotest.(check string) "schedule replays" got (read ()))

let test_inject_short_write () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      let io = Fault.Io.inject (profile "short=1,seed=5") Fault.Io.real in
      (match io.Fault.Io.write_file path "0123456789" with
       | () -> Alcotest.fail "short write must raise"
       | exception Unix.Unix_error (Unix.EIO, _, _) -> ());
      let on_disk = Fault.Io.real.Fault.Io.read_file path in
      Alcotest.(check bool) "truncated file left behind" true
        (String.length on_disk < 10);
      Alcotest.(check string) "still a prefix"
        (String.sub "0123456789" 0 (String.length on_disk)) on_disk)

let test_inject_fsync_loss () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      let io = Fault.Io.inject (profile "fsync=1,seed=7") Fault.Io.real in
      (* the write reports success — the loss is silent *)
      io.Fault.Io.write_file path "0123456789";
      let on_disk = Fault.Io.real.Fault.Io.read_file path in
      Alcotest.(check bool) "tail lost" true (String.length on_disk < 10))

(* --- retry ---------------------------------------------------------------- *)

let no_sleep _ = ()

let test_retry_recovers () =
  let calls = ref 0 in
  let f () =
    incr calls;
    if !calls < 3 then raise (Unix.Unix_error (Unix.EIO, "op", ""));
    42
  in
  let v =
    Fault.Retry.run
      ~policy:(Fault.Retry.with_attempts 5)
      ~sleep:no_sleep ~label:"t" f
  in
  Alcotest.(check int) "returns the value" 42 v;
  Alcotest.(check int) "after exactly 3 attempts" 3 !calls

let test_retry_exhausts () =
  let calls = ref 0 in
  let f () =
    incr calls;
    raise (Unix.Unix_error (Unix.EAGAIN, "op", ""))
  in
  (match
     Fault.Retry.run
       ~policy:(Fault.Retry.with_attempts 3)
       ~sleep:no_sleep ~label:"t" f
   with
   | _ -> Alcotest.fail "must re-raise after exhaustion"
   | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ());
  Alcotest.(check int) "all attempts consumed" 3 !calls

let test_retry_non_transient () =
  let calls = ref 0 in
  (match
     Fault.Retry.run ~sleep:no_sleep ~label:"t" (fun () ->
         incr calls;
         failwith "logic bug")
   with
   | _ -> Alcotest.fail "must propagate"
   | exception Failure _ -> ());
  Alcotest.(check int) "no retry on a non-transient exception" 1 !calls

let test_retry_transient_class () =
  let u e = Unix.Unix_error (e, "op", "") in
  List.iter
    (fun e ->
      Alcotest.(check bool) "transient errno" true (Fault.Retry.transient (u e)))
    [ Unix.EIO; Unix.EAGAIN; Unix.EINTR; Unix.EBUSY ];
  Alcotest.(check bool) "Sys_error is transient" true
    (Fault.Retry.transient (Sys_error "disk on fire"));
  Alcotest.(check bool) "ENOENT is not" false
    (Fault.Retry.transient (u Unix.ENOENT));
  Alcotest.(check bool) "Failure is not" false
    (Fault.Retry.transient (Failure "x"))

let test_backoff_schedule () =
  let p = Fault.Retry.default in
  let b attempt = Fault.Retry.backoff p ~seed:0 ~attempt in
  Alcotest.(check (float 0.0)) "deterministic" (b 2) (b 2);
  Alcotest.(check bool) "grows" true (b 1 < b 2 && b 2 < b 3);
  (* base * factor^(k-1) <= backoff < base * factor^(k-1) * (1 + jitter) *)
  for k = 1 to 4 do
    let lo =
      p.Fault.Retry.r_base_s
      *. (p.Fault.Retry.r_factor ** float_of_int (k - 1))
    in
    let hi = lo *. (1.0 +. p.Fault.Retry.r_jitter) in
    let v = b k in
    if v < lo || v > hi then
      Alcotest.failf "backoff %d = %g outside [%g, %g]" k v lo hi
  done;
  Alcotest.(check bool) "seed perturbs the jitter" true
    (Fault.Retry.backoff p ~seed:1 ~attempt:3 <> b 3)

let test_retry_deadline () =
  let clock = ref 0.0 in
  let policy =
    { Fault.Retry.r_attempts = 100;
      r_base_s = 0.01;
      r_factor = 2.0;
      r_jitter = 0.0;
      r_deadline_s = Some 0.05 }
  in
  let calls = ref 0 in
  (match
     Fault.Retry.run ~policy
       ~sleep:(fun d -> clock := !clock +. d)
       ~now:(fun () -> !clock)
       ~label:"t"
       (fun () ->
         incr calls;
         raise (Unix.Unix_error (Unix.EIO, "op", "")))
   with
   | _ -> Alcotest.fail "must re-raise at the deadline"
   | exception Unix.Unix_error (Unix.EIO, _, _) -> ());
  Alcotest.(check bool)
    (Printf.sprintf "deadline cut retries short (%d calls)" !calls)
    true
    (!calls >= 2 && !calls < 10)

(* --- breaker -------------------------------------------------------------- *)

let test_breaker_lifecycle () =
  let clock = ref 0.0 in
  let b =
    Fault.Breaker.create ~threshold:3 ~cooldown_s:10.0
      ~now:(fun () -> !clock)
      ()
  in
  Alcotest.(check bool) "starts closed" true
    (Fault.Breaker.state b = Fault.Breaker.Closed);
  Alcotest.(check bool) "closed allows" true (Fault.Breaker.allow b);
  Fault.Breaker.failure b;
  Fault.Breaker.failure b;
  Alcotest.(check bool) "below threshold stays closed" true
    (Fault.Breaker.state b = Fault.Breaker.Closed);
  Alcotest.(check bool) "not yet tripped" false (Fault.Breaker.tripped b);
  (* a success resets the consecutive count *)
  Fault.Breaker.success b;
  Fault.Breaker.failure b;
  Fault.Breaker.failure b;
  Alcotest.(check bool) "reset count keeps it closed" true
    (Fault.Breaker.state b = Fault.Breaker.Closed);
  Fault.Breaker.failure b;
  Alcotest.(check bool) "threshold trips" true
    (Fault.Breaker.state b = Fault.Breaker.Open);
  Alcotest.(check bool) "open refuses" false (Fault.Breaker.allow b);
  Alcotest.(check bool) "tripped latches" true (Fault.Breaker.tripped b);
  (* cooldown elapses: exactly one probe gets through *)
  clock := 10.0;
  Alcotest.(check bool) "cooldown admits a probe" true (Fault.Breaker.allow b);
  Alcotest.(check bool) "probe state" true
    (Fault.Breaker.state b = Fault.Breaker.Half_open);
  Alcotest.(check bool) "second caller refused during the probe" false
    (Fault.Breaker.allow b);
  (* probe fails: straight back to open *)
  Fault.Breaker.failure b;
  Alcotest.(check bool) "failed probe re-opens" true
    (Fault.Breaker.state b = Fault.Breaker.Open);
  Alcotest.(check bool) "and refuses again" false (Fault.Breaker.allow b);
  clock := 20.0;
  Alcotest.(check bool) "second probe admitted" true (Fault.Breaker.allow b);
  Fault.Breaker.success b;
  Alcotest.(check bool) "successful probe closes" true
    (Fault.Breaker.state b = Fault.Breaker.Closed);
  Alcotest.(check bool) "closed again allows" true (Fault.Breaker.allow b);
  Alcotest.(check bool) "degraded history survives recovery" true
    (Fault.Breaker.tripped b);
  Alcotest.(check int) "lifetime failure count" 6 (Fault.Breaker.failures b)

let suite =
  [ Alcotest.test_case "profile parse" `Quick test_profile_parse;
    Alcotest.test_case "profile round-trip" `Quick test_profile_roundtrip;
    Alcotest.test_case "profile errors" `Quick test_profile_errors;
    Alcotest.test_case "deterministic draws" `Quick test_profile_draws;
    Alcotest.test_case "inject eio" `Quick test_inject_eio;
    Alcotest.test_case "inject short read" `Quick test_inject_short_read;
    Alcotest.test_case "inject short write" `Quick test_inject_short_write;
    Alcotest.test_case "inject fsync loss" `Quick test_inject_fsync_loss;
    Alcotest.test_case "retry recovers" `Quick test_retry_recovers;
    Alcotest.test_case "retry exhausts" `Quick test_retry_exhausts;
    Alcotest.test_case "retry non-transient" `Quick test_retry_non_transient;
    Alcotest.test_case "transient classification" `Quick
      test_retry_transient_class;
    Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
    Alcotest.test_case "retry deadline" `Quick test_retry_deadline;
    Alcotest.test_case "breaker lifecycle" `Quick test_breaker_lifecycle ]
