(* Chaos tests of the socket front end: real Unix-domain sockets, a
   real event loop and worker pool in a spawned domain, and clients
   behaving badly — disconnecting mid-request, dribbling a partial
   line past the read deadline, flooding a tiny admission queue,
   being told to go away by the connection limit, and being drained
   out from under by SIGTERM's token.  Every client interaction is
   read with a deadline, so a server that hangs fails the test
   instead of wedging the suite. *)

let tmp_counter = ref 0

let fresh_tmp prefix =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) !tmp_counter)

let with_store_dir f =
  let dir = fresh_tmp "psv_chnet_store" in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun g -> rm (Filename.concat path g)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with _ -> ()) (fun () -> f dir)

let net = lazy (Chaos_store.parse_net Chaos_store.model_text)

(* A genuinely slow evaluation (~1s): the GPCA bolus-only PSM's
   response-time sup query explores the full platform-level zone
   graph.  Used to hold a worker busy while clients misbehave. *)
let slow_net =
  lazy (Gpca.Model.psm ~variant:Gpca.Model.Bolus_only Gpca.Params.default)

let slow_query = "sup: m_BolusReq -> c_StartInfusion ceiling 3000"

let load_model name =
  if name = "m" then Ok (Lazy.force net)
  else if name = "gpca" then Ok (Lazy.force slow_net).Transform.psm_net
  else Error (Printf.sprintf "unknown model %S" name)

let request ?(model = "m") ~id query =
  Printf.sprintf "{\"id\": %d, \"model\": %S, \"query\": %S}" id model query

let parse_response line =
  match Store.Json.parse line with
  | Ok j -> j
  | Error msg -> Alcotest.failf "response is not JSON (%s): %s" msg line

let member name j =
  match Store.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Store.Json.to_string j)

let str = function
  | Store.Json.String s -> s
  | j -> Alcotest.failf "expected a string, got %s" (Store.Json.to_string j)

let status j = str (member "status" j)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let int_id j =
  match member "id" j with
  | Store.Json.Int n -> n
  | j -> Alcotest.failf "expected an int id, got %s" (Store.Json.to_string j)

(* --- server harness ------------------------------------------------------- *)

let default_ncfg path =
  { Analysis.Netserve.default_config with
    Analysis.Netserve.ns_addr = Analysis.Netserve.Unix_path path }

(* Run a listener in its own domain; hand the client body the socket
   path and the drain token; always drain and join on the way out. *)
let with_server ?(ncfg = default_ncfg) ?cache f =
  let path = fresh_tmp "psv_chnet_sock" in
  let cfg = ncfg path in
  let drain = Analysis.Serve.drain () in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Analysis.Netserve.listen cfg ?cache ~drain
          ~on_ready:(fun _ -> Atomic.set ready true)
          ~load_model ())
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  if not (Atomic.get ready) then begin
    Analysis.Serve.request_drain drain;
    ignore (Domain.join server);
    Alcotest.fail "server did not come up"
  end;
  let result =
    Fun.protect
      ~finally:(fun () -> Analysis.Serve.request_drain drain)
      (fun () -> f path drain)
  in
  match Domain.join server with
  | Error msg -> Alcotest.failf "listen: %s" msg
  | Ok outcome -> (outcome, result)

(* --- client --------------------------------------------------------------- *)

type client = { fd : Unix.file_descr; rbuf : Buffer.t }

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; rbuf = Buffer.create 256 }

let close cl = try Unix.close cl.fd with Unix.Unix_error _ -> ()

let send cl s = ignore (Unix.write_substring cl.fd s 0 (String.length s))
let send_line cl s = send cl (s ^ "\n")

let take_line cl =
  let s = Buffer.contents cl.rbuf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear cl.rbuf;
    Buffer.add_string cl.rbuf (String.sub s (i + 1) (String.length s - i - 1));
    Some (String.sub s 0 i)

(* [`Line l | `Eof] within [timeout_s], or the test fails — a wedged
   server can never hang the suite. *)
let recv ?(timeout_s = 30.) cl =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Bytes.create 4096 in
  let rec go () =
    match take_line cl with
    | Some l -> `Line l
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then Alcotest.fail "timed out waiting for a response line"
      else (
        match Unix.select [ cl.fd ] [] [] (Float.min left 0.5) with
        | [], _, _ -> go ()
        | _ -> (
          match Unix.read cl.fd buf 0 (Bytes.length buf) with
          | 0 -> `Eof
          | n ->
            Buffer.add_subbytes cl.rbuf buf 0 n;
            go ()
          | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> `Eof))
  in
  go ()

let recv_line ?timeout_s cl =
  match recv ?timeout_s cl with
  | `Line l -> l
  | `Eof -> Alcotest.fail "connection closed while expecting a response"

let recv_eof ?timeout_s cl =
  match recv ?timeout_s cl with
  | `Eof -> ()
  | `Line l -> Alcotest.failf "expected EOF, got: %s" l

(* --- batch and socket render byte-identical responses ---------------------- *)

let test_matches_batch () =
  let requests =
    [ request ~id:1 "E<> P.Busy";
      request ~id:2 ~model:"nope" "E<> P.Busy";
      "{not json";
      request ~id:3 "query: what";
      request ~id:4 "A[] P.Idle" ]
  in
  (* batch mode: each request in its own batch, so response order is
     the request order regardless of evaluation speed *)
  let batch_out = ref [] in
  let input = ref (List.concat_map (fun r -> [ r; "" ]) requests) in
  let read_line () =
    match !input with
    | [] -> None
    | l :: rest ->
      input := rest;
      Some l
  in
  let _ =
    Analysis.Serve.run Analysis.Serve.default_config ~load_model ~read_line
      ~write_line:(fun s -> batch_out := s :: !batch_out)
      ()
  in
  let batch_out = List.rev !batch_out in
  (* socket mode: one request at a time on one connection *)
  let _, socket_out =
    with_server (fun path _drain ->
        let cl = connect path in
        Fun.protect
          ~finally:(fun () -> close cl)
          (fun () ->
            List.map
              (fun r ->
                send_line cl r;
                recv_line cl)
              requests))
  in
  List.iter2
    (Alcotest.(check string) "batch and socket responses are byte-identical")
    batch_out socket_out

(* --- many concurrent connections share the pool and the cache -------------- *)

let test_concurrent_conns () =
  with_store_dir (fun dir ->
      let store =
        match Store.Disk.open_ dir with
        | Ok s -> s
        | Error msg -> Alcotest.failf "open_: %s" msg
      in
      let cache = Analysis.Qcache.make ~warn:(fun _ -> ()) store in
      let outcome, () =
        with_server ~cache (fun path _drain ->
            let clients = List.init 4 (fun i -> (i, connect path)) in
            Fun.protect
              ~finally:(fun () -> List.iter (fun (_, c) -> close c) clients)
              (fun () ->
                (* everyone asks the same three queries: the first
                   client to evaluate populates the store, the rest
                   hit it *)
                List.iter
                  (fun (i, cl) ->
                    send_line cl (request ~id:((i * 10) + 1) "E<> P.Busy");
                    send_line cl (request ~id:((i * 10) + 2) "A[] P.Idle");
                    send_line cl
                      (request ~id:((i * 10) + 3) "E<> (P.Idle and Q.S)"))
                  clients;
                List.iter
                  (fun (i, cl) ->
                    let got =
                      List.init 3 (fun _ -> parse_response (recv_line cl))
                    in
                    List.iter
                      (fun j ->
                        Alcotest.(check string) "status ok" "ok" (status j))
                      got;
                    let ids = List.sort compare (List.map int_id got) in
                    Alcotest.(check (list int))
                      "each connection gets exactly its own ids"
                      [ (i * 10) + 1; (i * 10) + 2; (i * 10) + 3 ]
                      ids)
                  clients))
      in
      Alcotest.(check int) "12 responses" 12
        outcome.Analysis.Netserve.no_served;
      Alcotest.(check int) "4 connections" 4
        outcome.Analysis.Netserve.no_conns;
      Alcotest.(check int) "no errors" 0 outcome.Analysis.Netserve.no_errors)

(* --- a client that vanishes mid-request harms nobody ----------------------- *)

let test_disconnect_mid_request () =
  let ncfg path =
    { (default_ncfg path) with
      Analysis.Netserve.ns_serve =
        { Analysis.Serve.default_config with Analysis.Serve.sv_jobs = 1 } }
  in
  let outcome, () =
    with_server ~ncfg (fun path _drain ->
        let cl = connect path in
        send_line cl (request ~id:1 ~model:"gpca" slow_query);
        (* give the event loop a moment to admit it, then vanish *)
        Unix.sleepf 0.2;
        close cl;
        (* the server keeps serving: a fresh connection gets answers
           (queued behind the orphaned evaluation, which is the point —
           the worker finishes it and discards the response) *)
        let cl2 = connect path in
        Fun.protect
          ~finally:(fun () -> close cl2)
          (fun () ->
            send_line cl2 (request ~id:2 "E<> P.Busy");
            let r = parse_response (recv_line cl2) in
            Alcotest.(check int) "follow-up answered" 2 (int_id r);
            Alcotest.(check string) "status ok" "ok" (status r)))
  in
  (* both the orphaned verdict and the follow-up count as served *)
  Alcotest.(check int) "both requests answered" 2
    outcome.Analysis.Netserve.no_served

(* --- slowloris: a partial line cannot hold a connection forever ------------ *)

let test_slowloris () =
  let ncfg path =
    { (default_ncfg path) with Analysis.Netserve.ns_read_deadline_s = 0.3 }
  in
  let _outcome, () =
    with_server ~ncfg (fun path _drain ->
        let slow = connect path in
        let healthy = connect path in
        Fun.protect
          ~finally:(fun () ->
            close slow;
            close healthy)
          (fun () ->
            (* half a request, never a newline *)
            send slow "{\"id\": 99, \"model";
            (* past the deadline: a diagnosed error frame, then EOF *)
            let r = parse_response (recv_line ~timeout_s:10. slow) in
            Alcotest.(check string) "slowloris gets an error frame" "error"
              (status r);
            let msg = str (member "error" r) in
            Alcotest.(check bool)
              (Printf.sprintf "error names the deadline: %s" msg)
              true
              (contains ~sub:"read deadline" msg);
            recv_eof ~timeout_s:10. slow;
            (* the deadline is per-connection: the idle-but-silent
               healthy client is untouched and still served *)
            send_line healthy (request ~id:7 "E<> P.Busy");
            let h = parse_response (recv_line healthy) in
            Alcotest.(check int) "healthy client unaffected" 7 (int_id h);
            Alcotest.(check string) "and answered ok" "ok" (status h)))
  in
  ()

(* --- a full admission queue sheds loudly, never hangs ---------------------- *)

let test_queue_shed () =
  let ncfg path =
    { (default_ncfg path) with
      Analysis.Netserve.ns_queue = 1;
      ns_serve =
        { Analysis.Serve.default_config with Analysis.Serve.sv_jobs = 1 } }
  in
  let outcome, () =
    with_server ~ncfg (fun path _drain ->
        let cl = connect path in
        Fun.protect
          ~finally:(fun () -> close cl)
          (fun () ->
            (* six slow requests in one burst against queue capacity 1
               and one worker: at most two can be in flight or queued;
               the rest must come back as busy frames immediately *)
            let burst =
              String.concat ""
                (List.init 6 (fun i ->
                     request ~id:(i + 1) ~model:"gpca" slow_query ^ "\n"))
            in
            send cl burst;
            let replies =
              List.init 6 (fun _ -> parse_response (recv_line ~timeout_s:60. cl))
            in
            let ids = List.sort compare (List.map int_id replies) in
            Alcotest.(check (list int)) "every request answered"
              [ 1; 2; 3; 4; 5; 6 ] ids;
            let busy, rest =
              List.partition (fun j -> status j = "busy") replies
            in
            Alcotest.(check bool)
              (Printf.sprintf "most of the burst shed (%d busy)"
                 (List.length busy))
              true
              (List.length busy >= 3);
            List.iter
              (fun j ->
                Alcotest.(check string) "admitted requests answered ok" "ok"
                  (status j))
              rest;
            List.iter
              (fun j ->
                let msg = str (member "error" j) in
                Alcotest.(check bool) "busy frame is diagnosed" true
                  (String.length msg > 0))
              busy))
  in
  Alcotest.(check bool)
    (Printf.sprintf "outcome counted the shed (%d)"
       outcome.Analysis.Netserve.no_shed)
    true
    (outcome.Analysis.Netserve.no_shed >= 3)

(* --- per-connection fairness: one client cannot hog the queue -------------- *)

let test_inflight_cap () =
  (* queue 64 never sheds on capacity; the per-connection cap of 1 is
     what refuses the excess.  One worker on a ~1s query guarantees the
     event loop reads the whole burst before any completion returns. *)
  let ncfg path =
    { (default_ncfg path) with
      Analysis.Netserve.ns_queue = 64;
      ns_max_inflight = 1;
      ns_serve =
        { Analysis.Serve.default_config with Analysis.Serve.sv_jobs = 1 } }
  in
  let outcome, () =
    with_server ~ncfg (fun path _drain ->
        let greedy = connect path in
        Fun.protect
          ~finally:(fun () -> close greedy)
          (fun () ->
            let burst =
              String.concat ""
                (List.init 5 (fun i ->
                     request ~id:(i + 1) ~model:"gpca" slow_query ^ "\n"))
            in
            send greedy burst;
            (* a polite client on another connection is served while the
               greedy one's slow request is still being evaluated *)
            let polite = connect path in
            Fun.protect
              ~finally:(fun () -> close polite)
              (fun () ->
                send_line polite (request ~id:100 "E<> P.Busy");
                let r = parse_response (recv_line ~timeout_s:60. polite) in
                Alcotest.(check int) "other connections stay served" 100
                  (int_id r));
            let replies =
              List.init 5 (fun _ ->
                  parse_response (recv_line ~timeout_s:60. greedy))
            in
            let ids = List.sort compare (List.map int_id replies) in
            Alcotest.(check (list int)) "every request answered"
              [ 1; 2; 3; 4; 5 ] ids;
            let busy, rest =
              List.partition (fun j -> status j = "busy") replies
            in
            (* cap 1: exactly one admitted, the other four refused *)
            Alcotest.(check int) "excess refused" 4 (List.length busy);
            List.iter
              (fun j ->
                Alcotest.(check string) "the admitted request completes" "ok"
                  (status j))
              rest;
            List.iter
              (fun j ->
                let msg = str (member "error" j) in
                Alcotest.(check bool)
                  (Printf.sprintf "busy frame names the in-flight cap: %s" msg)
                  true
                  (contains ~sub:"in-flight" msg))
              busy))
  in
  Alcotest.(check int) "outcome counted the refusals" 4
    outcome.Analysis.Netserve.no_shed

(* --- drain under load: every admitted request answered, store clean -------- *)

let test_drain_under_load () =
  with_store_dir (fun dir ->
      let store =
        match Store.Disk.open_ dir with
        | Ok s -> s
        | Error msg -> Alcotest.failf "open_: %s" msg
      in
      let cache = Analysis.Qcache.make ~warn:(fun _ -> ()) store in
      let ncfg path =
        { (default_ncfg path) with
          Analysis.Netserve.ns_serve =
            { Analysis.Serve.default_config with Analysis.Serve.sv_jobs = 1 }
        }
      in
      let outcome, () =
        with_server ~ncfg ~cache (fun path drain ->
            let cl = connect path in
            Fun.protect
              ~finally:(fun () -> close cl)
              (fun () ->
                send_line cl (request ~id:1 ~model:"gpca" slow_query);
                send_line cl (request ~id:2 ~model:"gpca" slow_query);
                send_line cl (request ~id:3 ~model:"gpca" slow_query);
                (* let the worker start on request 1, then pull the plug *)
                Unix.sleepf 0.3;
                Analysis.Serve.request_drain drain;
                let replies =
                  List.init 3 (fun _ ->
                      parse_response (recv_line ~timeout_s:30. cl))
                in
                let ids = List.sort compare (List.map int_id replies) in
                Alcotest.(check (list int))
                  "every admitted request was answered" [ 1; 2; 3 ] ids;
                List.iter
                  (fun j ->
                    Alcotest.(check string) "answered, not errored" "ok"
                      (status j);
                    let o = member "outcome" j in
                    Alcotest.(check string) "as unknown" "unknown"
                      (str (member "kind" o));
                    Alcotest.(check string) "because cancelled" "cancelled"
                      (str (member "tag" (member "reason" o))))
                  replies;
                recv_eof ~timeout_s:10. cl))
      in
      Alcotest.(check bool) "stopped by the drain" true
        (outcome.Analysis.Netserve.no_stop = Analysis.Netserve.Drained);
      (* cancelled verdicts are never persisted: the store must pass
         fsck with nothing in it *)
      let r = Store.Disk.fsck store in
      Alcotest.(check int) "no bad entries" 0
        (List.length r.Store.Disk.fk_bad);
      Alcotest.(check int) "no orphaned temp files" 0
        (List.length r.Store.Disk.fk_tmp))

(* --- the stats frame ------------------------------------------------------- *)

let test_stats_frame () =
  with_store_dir (fun dir ->
      let store =
        match Store.Disk.open_ dir with
        | Ok s -> s
        | Error msg -> Alcotest.failf "open_: %s" msg
      in
      let cache = Analysis.Qcache.make ~warn:(fun _ -> ()) store in
      let _outcome, () =
        with_server ~cache (fun path _drain ->
            let cl = connect path in
            Fun.protect
              ~finally:(fun () -> close cl)
              (fun () ->
                send_line cl (request ~id:1 "E<> P.Busy");
                ignore (recv_line cl);
                send_line cl (request ~id:2 "E<> P.Busy");
                ignore (recv_line cl);
                send_line cl "{\"id\": 3, \"stats\": true}";
                let r = parse_response (recv_line cl) in
                Alcotest.(check string) "status stats" "stats" (status r);
                let s = member "stats" r in
                let reqs = member "requests" s in
                (match member "received" reqs with
                | Store.Json.Int n ->
                  Alcotest.(check bool) "received >= 3" true (n >= 3)
                | j ->
                  Alcotest.failf "received not an int: %s"
                    (Store.Json.to_string j));
                let q = member "queue" s in
                (match member "capacity" q with
                | Store.Json.Int n ->
                  Alcotest.(check int) "queue capacity" 64 n
                | _ -> Alcotest.fail "queue capacity not an int");
                let conns = member "connections" s in
                (match member "active" conns with
                | Store.Json.Int 1 -> ()
                | j ->
                  Alcotest.failf "active connections: %s"
                    (Store.Json.to_string j));
                let cache_s = member "cache" s in
                let breaker = member "breaker" cache_s in
                Alcotest.(check string) "breaker closed" "closed"
                  (str (member "state" breaker));
                (* one miss then one hit landed above *)
                (match (member "hits" cache_s, member "misses" cache_s) with
                | Store.Json.Int h, Store.Json.Int m ->
                  Alcotest.(check bool)
                    (Printf.sprintf "hits %d, misses %d" h m)
                    true
                    (h >= 1 && m >= 1)
                | _ -> Alcotest.fail "cache counters not ints");
                ignore (member "latency_ms" s)))
      in
      ())

(* --- the connection cap answers before closing ----------------------------- *)

let test_conn_limit () =
  let ncfg path =
    { (default_ncfg path) with Analysis.Netserve.ns_max_conns = 1 }
  in
  let _outcome, () =
    with_server ~ncfg (fun path _drain ->
        let a = connect path in
        Fun.protect
          ~finally:(fun () -> close a)
          (fun () ->
            (* occupy the only slot *)
            send_line a (request ~id:1 "E<> P.Busy");
            ignore (recv_line a);
            let b = connect path in
            Fun.protect
              ~finally:(fun () -> close b)
              (fun () ->
                let r = parse_response (recv_line ~timeout_s:10. b) in
                Alcotest.(check string) "over the cap: a busy frame" "busy"
                  (status r);
                let msg = str (member "error" r) in
                Alcotest.(check bool)
                  (Printf.sprintf "busy frame names the limit: %s" msg)
                  true
                  (String.length msg > 0);
                recv_eof ~timeout_s:10. b);
            (* the occupant is still served *)
            send_line a (request ~id:2 "A[] P.Idle");
            let r = parse_response (recv_line a) in
            Alcotest.(check int) "occupant still served" 2 (int_id r)))
  in
  ()

let suite =
  [ Alcotest.test_case "batch and socket byte-identical" `Quick
      test_matches_batch;
    Alcotest.test_case "concurrent connections" `Quick test_concurrent_conns;
    Alcotest.test_case "disconnect mid-request" `Slow
      test_disconnect_mid_request;
    Alcotest.test_case "slowloris read deadline" `Quick test_slowloris;
    Alcotest.test_case "queue-full shedding" `Slow test_queue_shed;
    Alcotest.test_case "per-connection in-flight cap" `Slow test_inflight_cap;
    Alcotest.test_case "drain under load, store fsck-clean" `Slow
      test_drain_under_load;
    Alcotest.test_case "stats frame" `Quick test_stats_frame;
    Alcotest.test_case "connection limit" `Quick test_conn_limit ]
