(* QCheck generators for random small networks of timed automata.

   The generated networks are "closed" (no strict comparisons), have
   small constants, and respect the static restrictions of the library
   (broadcast receive edges carry no clock guard), so that the
   discrete-time reference semantics of [Discrete] coincides with the
   dense-time zone semantics on location reachability. *)

open Ta

let clock_names = [ "gx"; "gy" ]
let max_const = 5

let gen_clock = QCheck.Gen.oneofl clock_names

let gen_guard_atom =
  let open QCheck.Gen in
  let* x = gen_clock in
  let* n = int_range 0 max_const in
  oneofl [ Clockcons.le x n; Clockcons.ge x n; Clockcons.eq_ x n ]

let gen_invariant =
  let open QCheck.Gen in
  frequency
    [ (3, return []);
      (2,
       let* x = gen_clock in
       let* n = int_range 1 max_const in
       return [ Clockcons.le x n ]) ]

let gen_resets =
  let open QCheck.Gen in
  frequency
    [ (2, return []);
      (1, map (fun c -> [ c ]) gen_clock);
      (1, return clock_names) ]

(* Location names L0..L{n-1}; pick kinds with a strong Normal bias.  At
   most one non-normal location per automaton keeps livelocks rare. *)
let gen_locations n =
  let open QCheck.Gen in
  let* special = int_range (-1) (n - 1) in
  let* kind = oneofl [ Model.Urgent; Model.Committed ] in
  let rec build i acc =
    if i >= n then return (List.rev acc)
    else
      let* inv = gen_invariant in
      let k = if i = special && i > 0 then kind else Model.Normal in
      build (i + 1) (Model.location ~kind:k ~inv (Fmt.str "L%d" i) :: acc)
  in
  build 0 []

let gen_sync ~role =
  let open QCheck.Gen in
  (* Channels: "bin" (binary) and "bc" (broadcast). *)
  match role with
  | `Sender ->
    oneofl [ Model.Tau; Model.Send "bin"; Model.Send "bc"; Model.Tau ]
  | `Receiver ->
    oneofl [ Model.Tau; Model.Recv "bin"; Model.Recv "bc"; Model.Tau ]

let gen_edge nlocs ~role =
  let open QCheck.Gen in
  let* src = int_range 0 (nlocs - 1) in
  let* dst = int_range 0 (nlocs - 1) in
  let* sync = gen_sync ~role in
  let* guard =
    match sync with
    | Model.Recv "bc" -> return []  (* static restriction *)
    | Model.Recv _ | Model.Send _ | Model.Tau ->
      frequency [ (2, return []); (2, map (fun a -> [ a ]) gen_guard_atom) ]
  in
  let* resets = gen_resets in
  return
    (Model.edge ~guard ~sync ~resets (Fmt.str "L%d" src) (Fmt.str "L%d" dst))

let gen_automaton ~name ~role =
  let open QCheck.Gen in
  let* nlocs = int_range 2 4 in
  let* locations = gen_locations nlocs in
  let* nedges = int_range 1 5 in
  let* edges = list_size (return nedges) (gen_edge nlocs ~role) in
  (* Urgent/committed locations with clock-guarded edges out of them often
     deadlock; that is fine for reachability comparison. *)
  return (Model.automaton ~name ~initial:"L0" locations edges)

let gen_network =
  let open QCheck.Gen in
  let* a = gen_automaton ~name:"A" ~role:`Sender in
  let* b = gen_automaton ~name:"B" ~role:`Receiver in
  return
    (Model.network ~name:"random" ~clocks:clock_names ~vars:[]
       ~channels:[ ("bin", Model.Binary); ("bc", Model.Broadcast) ]
       [ a; b ])

let arb_network =
  QCheck.make ~print:(Fmt.to_to_string Model.pp) gen_network

(* --- random DBMs ------------------------------------------------------ *)

(* A random zone is the zero zone driven through a short trail of ups,
   resets and constraints; the trail is kept so failures print nicely.
   Shared by the DBM unit tests and the inclusion/extrapolation property
   tests. *)

type dbm_op =
  | Op_up
  | Op_reset of int
  | Op_constrain of int * int * bool * int

let pp_dbm_op ppf = function
  | Op_up -> Fmt.string ppf "up"
  | Op_reset i -> Fmt.pf ppf "reset x%d" i
  | Op_constrain (i, j, strict, n) ->
    Fmt.pf ppf "x%d - x%d %s %d" i j (if strict then "<" else "<=") n

let dbm_dims = 4 (* 3 real clocks *)

let gen_dbm_op =
  let open QCheck.Gen in
  let clock = int_range 0 (dbm_dims - 1) in
  frequency
    [ (2, return Op_up);
      (2, map (fun i -> Op_reset i) (int_range 1 (dbm_dims - 1)));
      (5,
       map2
         (fun (i, j) (strict, n) -> Op_constrain (i, j, strict, n))
         (pair clock clock)
         (pair bool (int_range (-8) 8))) ]

let apply_dbm_op z = function
  | Op_up -> Zone.Dbm.up z
  | Op_reset i -> Zone.Dbm.reset z i
  | Op_constrain (i, j, strict, n) ->
    if i <> j then
      Zone.Dbm.constrain z i j
        (if strict then Zone.Bound.lt n else Zone.Bound.le n)

let build_dbm ops =
  let z = Zone.Dbm.zero dbm_dims in
  List.iter (apply_dbm_op z) ops;
  z

let arb_dbm_ops =
  QCheck.make
    ~print:(Fmt.to_to_string Fmt.(list ~sep:semi pp_dbm_op))
    QCheck.Gen.(list_size (int_range 0 10) gen_dbm_op)

(* Non-negative extrapolation ceilings, one per clock (index 0 fixed 0). *)
let arb_dbm_ceilings =
  QCheck.make
    ~print:(Fmt.to_to_string Fmt.(Dump.array int))
    QCheck.Gen.(
      map
        (fun l -> Array.of_list (0 :: l))
        (list_size (return (dbm_dims - 1)) (int_range 0 10)))
