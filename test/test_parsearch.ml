(* Determinism of the domain-parallel explorer: for every worker count,
   verdicts and sup values must match the sequential search exactly —
   on completed runs, under injected cancellation, and under budget
   interrupts (where the partial sup must stay a sound lower bound).
   jobs = 1 must be byte-identical to the sequential explorer. *)

open Ta

let params = Gpca.Params.default

(* CI sets PSV_TEST_JOBS to stress a specific worker count on multicore
   runners; it is appended to the default ladder. *)
let jobs_list =
  let base = [ 1; 2; 4 ] in
  match Sys.getenv_opt "PSV_TEST_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some j when j > 0 && not (List.mem j base) -> base @ [ j ]
     | _ -> base)
  | None -> base

let gpca_pim () = Gpca.Model.network ~variant:Gpca.Model.Bolus_only params

let gpca_psm =
  lazy (Gpca.Model.psm ~variant:Gpca.Model.Bolus_only params).Transform.psm_net

(* The racing railroad PSM: no headway between trains, aperiodic
   invocation — its m-to-c delay is unbounded, so the sup query answers
   [Sup_exceeds] and the bounded-response check refutes. *)
let railroad_race_psm () =
  let loc = Model.location and edge = Model.edge in
  let controller =
    Model.automaton ~name:"GateCtrl" ~initial:"Open"
      [ loc "Open";
        loc ~inv:[ Clockcons.le "g" 5 ] "Lowering";
        loc "Closed" ]
      [ edge ~sync:(Model.Recv "m_Train") ~resets:[ "g" ] "Open" "Lowering";
        edge ~sync:(Model.Send "c_GateDown") "Lowering" "Closed";
        edge ~sync:(Model.Recv "m_Clear") "Closed" "Open" ]
  in
  let track =
    Model.automaton ~name:"Track" ~initial:"Away"
      [ loc "Away";
        loc "Approaching";
        loc ~inv:[ Clockcons.le "t" 1_500 ] "Passing" ]
      [ edge ~sync:(Model.Send "m_Train") ~resets:[ "t" ] "Away" "Approaching";
        edge ~sync:(Model.Recv "c_GateDown") ~resets:[ "t" ] "Approaching"
          "Passing";
        edge
          ~guard:[ Clockcons.ge "t" 1_000 ]
          ~sync:(Model.Send "m_Clear") ~resets:[ "t" ] "Passing" "Away" ]
  in
  let net =
    Model.network ~name:"railroad" ~clocks:[ "g"; "t" ] ~vars:[]
      ~channels:
        [ ("m_Train", Model.Broadcast);
          ("m_Clear", Model.Broadcast);
          ("c_GateDown", Model.Broadcast) ]
      [ controller; track ]
  in
  let pim = Transform.Pim.make net ~software:"GateCtrl" ~environment:"Track" in
  let scheme =
    { Scheme.is_name = "ecu";
      is_inputs =
        [ ("m_Train", Scheme.interrupt_input (Scheme.delay 1 4));
          ("m_Clear", Scheme.interrupt_input (Scheme.delay 1 4)) ];
      is_outputs = [ ("c_GateDown", Scheme.pulse_output (Scheme.delay 5 20)) ];
      is_input_comm = Scheme.Buffer (2, Scheme.Read_all);
      is_output_comm = Scheme.Buffer (2, Scheme.Read_all);
      is_invocation = Scheme.Aperiodic 0;
      is_exec = { Scheme.wcet_min = 1; wcet_max = 8 } }
  in
  (Transform.psm_of_pim pim scheme).Transform.psm_net

(* name, net thunk, trigger, response, ceiling *)
let sup_cases () =
  let gpca_ceiling =
    2 * (Gpca.Experiment.analytic_bounds params).Gpca.Experiment.a_mc
  in
  [ ("gpca-pim-mc", gpca_pim, Gpca.Model.bolus_req, Gpca.Model.start_infusion,
     1000);
    ( "gpca-psm-input",
      (fun () -> Lazy.force gpca_psm),
      Gpca.Model.bolus_req,
      Transform.Names.input_chan Gpca.Model.bolus_req,
      gpca_ceiling );
    ("railroad-periodic25", Test_runctl.railroad_psm, "m_Train", "c_GateDown",
     320);
    ("railroad-race", railroad_race_psm, "m_Train", "c_GateDown", 320) ]

let pp_sup = Mc.Explorer.pp_sup_result

let test_sup_determinism () =
  List.iter
    (fun (name, net, trigger, response, ceiling) ->
      let seq =
        Analysis.Queries.max_delay (net ()) ~trigger ~response ~ceiling
      in
      Alcotest.(check bool)
        (name ^ ": sequential run completes")
        true
        (seq.Analysis.Queries.dr_interrupt = None);
      List.iter
        (fun jobs ->
          let par =
            Analysis.Queries.max_delay ~jobs (net ()) ~trigger ~response
              ~ceiling
          in
          if par.Analysis.Queries.dr_interrupt <> None then
            Alcotest.failf "%s: jobs=%d run was interrupted" name jobs;
          if par.Analysis.Queries.dr_sup <> seq.Analysis.Queries.dr_sup then
            Alcotest.failf "%s: jobs=%d sup %a <> sequential %a" name jobs
              pp_sup par.Analysis.Queries.dr_sup pp_sup
              seq.Analysis.Queries.dr_sup)
        jobs_list)
    (sup_cases ())

(* jobs = 1 must take the sequential code path wholesale: same sup, and
   the same order-dependent statistics. *)
let test_jobs1_byte_identical () =
  let net = Test_runctl.railroad_psm () in
  let monitor =
    Mc.Monitor.delay ~trigger:"m_Train" ~response:"c_GateDown"
      ~clock:"psv_delay_mon" ~ceiling:320 ()
  in
  let t = Mc.Explorer.make ~monitor net in
  let pred = Mc.Explorer.mon_in t "Waiting" in
  let seq = Mc.Explorer.sup_clock t ~pred ~clock:"psv_delay_mon" in
  let par = Mc.Parsearch.sup_clock ~jobs:1 t ~pred ~clock:"psv_delay_mon" in
  Alcotest.(check bool) "same sup" true
    (par.Mc.Explorer.so_sup = seq.Mc.Explorer.so_sup);
  Alcotest.(check int) "same visited" seq.Mc.Explorer.so_stats.Mc.Explorer.visited
    par.Mc.Explorer.so_stats.Mc.Explorer.visited;
  Alcotest.(check int) "same stored" seq.Mc.Explorer.so_stats.Mc.Explorer.stored
    par.Mc.Explorer.so_stats.Mc.Explorer.stored;
  Alcotest.(check int) "same frontier"
    seq.Mc.Explorer.so_stats.Mc.Explorer.frontier
    par.Mc.Explorer.so_stats.Mc.Explorer.frontier

let test_verdict_determinism () =
  let check_verdicts name net ~bound expected =
    List.iter
      (fun jobs ->
        let v =
          Psv.verify_response ~jobs (net ()) ~trigger:"m_Train"
            ~response:"c_GateDown" ~bound
        in
        if v <> expected then
          Alcotest.failf "%s: jobs=%d verdict %a, expected %a" name jobs
            Mc.Explorer.pp_verdict v Mc.Explorer.pp_verdict expected)
      jobs_list
  in
  check_verdicts "railroad-periodic25 |= P(320)" Test_runctl.railroad_psm
    ~bound:320 Mc.Explorer.Proved;
  check_verdicts "railroad-race |/= P(320)" railroad_race_psm ~bound:320
    (Mc.Explorer.Refuted None)

let test_query_eval_jobs () =
  let net = gpca_pim () in
  let run text =
    match Mc.Query.parse text with
    | Error msg -> Alcotest.failf "parse %S: %s" text msg
    | Ok q ->
      List.map
        (fun jobs -> (jobs, (Mc.Query.eval ~jobs net q).Mc.Query.res_outcome))
        jobs_list
  in
  List.iter
    (fun (jobs, o) ->
      if o <> Mc.Query.Holds then
        Alcotest.failf "E<> Pump.Infusing: jobs=%d not Holds" jobs)
    (run "E<> Pump.Infusing");
  (* the PIM meets REQ1, and refuting its negation needs a full sweep *)
  List.iter
    (fun (jobs, o) ->
      if o <> Mc.Query.Holds then
        Alcotest.failf "bounded within 500: jobs=%d not Holds" jobs)
    (run
       (Printf.sprintf "bounded: %s -> %s within 500" Gpca.Model.bolus_req
          Gpca.Model.start_infusion))

let test_precancelled () =
  List.iter
    (fun jobs ->
      let ctl = Mc.Runctl.create () in
      Mc.Runctl.cancel ctl;
      let r =
        Analysis.Queries.max_delay ~jobs ~ctl (Test_runctl.railroad_psm ())
          ~trigger:"m_Train" ~response:"c_GateDown" ~ceiling:320
      in
      if r.Analysis.Queries.dr_interrupt <> Some Mc.Runctl.Cancelled then
        Alcotest.failf "jobs=%d: expected a cancellation interrupt" jobs;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d: nothing visited" jobs)
        0 r.Analysis.Queries.dr_stats.Mc.Explorer.visited;
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d: sup unreached" jobs)
        true
        (r.Analysis.Queries.dr_sup = Mc.Explorer.Sup_unreached))
    jobs_list

(* Under a state budget the parallel partial sup must stay a lower
   bound on the true sup (any stored state is reachable). *)
let test_budget_partial_sup () =
  let full =
    Analysis.Queries.max_delay (Test_runctl.railroad_psm ())
      ~trigger:"m_Train" ~response:"c_GateDown" ~ceiling:320
  in
  let le_sup partial total =
    match partial, total with
    | Mc.Explorer.Sup_unreached, _ -> true
    | _, Mc.Explorer.Sup_exceeds _ -> true
    | Mc.Explorer.Sup (v, _), Mc.Explorer.Sup (w, _) -> v <= w
    | (Mc.Explorer.Sup_exceeds _ | Mc.Explorer.Sup _), _ -> false
  in
  List.iter
    (fun jobs ->
      let ctl =
        Mc.Runctl.create
          ~budget:{ Mc.Runctl.no_budget with Mc.Runctl.b_states = Some 200 }
          ()
      in
      let r =
        Analysis.Queries.max_delay ~jobs ~ctl (Test_runctl.railroad_psm ())
          ~trigger:"m_Train" ~response:"c_GateDown" ~ceiling:320
      in
      (match r.Analysis.Queries.dr_interrupt with
       | Some (Mc.Runctl.State_budget 200) -> ()
       | other ->
         Alcotest.failf "jobs=%d: expected a state-budget interrupt, got %a"
           jobs
           Fmt.(option Mc.Runctl.pp_reason)
           other);
      if not (le_sup r.Analysis.Queries.dr_sup full.Analysis.Queries.dr_sup)
      then
        Alcotest.failf "jobs=%d: partial sup %a above the true sup %a" jobs
          pp_sup r.Analysis.Queries.dr_sup pp_sup full.Analysis.Queries.dr_sup)
    jobs_list

(* Witness chains found in parallel must replay: the sequential replay
   of the chain re-checks feasibility edge by edge. *)
let test_timed_witness_feasible () =
  let t = Mc.Explorer.make (gpca_pim ()) in
  let pred = Mc.Explorer.at t ~aut:"Pump" ~loc:"Infusing" in
  List.iter
    (fun jobs ->
      match Mc.Parsearch.timed_witness ~jobs t pred with
      | Some steps ->
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d: non-empty witness" jobs)
          true (steps <> [])
      | None -> Alcotest.failf "jobs=%d: no witness to Pump.Infusing" jobs)
    jobs_list

(* Checkpoint/resume across worker counts: a budget-cut run at any
   [jobs] emits a snapshot that — through the on-disk PSVSNAP2
   round-trip, as psv --checkpoint/--resume does — resumes at any
   other [jobs] to the same sup as an uninterrupted run. *)
let test_parallel_checkpoint_resume () =
  let query ?jobs ?ctl ?resume () =
    Analysis.Queries.max_delay ?jobs ?ctl ?resume
      (Test_runctl.railroad_psm ()) ~trigger:"m_Train"
      ~response:"c_GateDown" ~ceiling:320
  in
  let budget_ctl () =
    Mc.Runctl.create
      ~budget:{ Mc.Runctl.no_budget with Mc.Runctl.b_states = Some 200 }
      ()
  in
  let full = query () in
  Alcotest.(check bool) "reference run completes" true
    (full.Analysis.Queries.dr_interrupt = None);
  List.iter
    (fun (cut_jobs, resume_jobs) ->
      let cut = query ~jobs:cut_jobs ~ctl:(budget_ctl ()) () in
      (match cut.Analysis.Queries.dr_interrupt with
       | Some (Mc.Runctl.State_budget _) -> ()
       | other ->
         Alcotest.failf "cut at jobs=%d: expected a state-budget interrupt, got %a"
           cut_jobs
           Fmt.(option Mc.Runctl.pp_reason)
           other);
      let snap =
        match cut.Analysis.Queries.dr_snapshot with
        | Some s -> s
        | None ->
          Alcotest.failf "cut at jobs=%d: interrupted run carries no snapshot"
            cut_jobs
      in
      let file = Filename.temp_file "psv_test_snap" ".psvsnap" in
      Mc.Explorer.save_snapshot file snap;
      let snap =
        match Mc.Explorer.load_snapshot file with
        | Ok s -> s
        | Error msg -> Alcotest.failf "snapshot reload: %s" msg
      in
      Sys.remove file;
      let resumed = query ~jobs:resume_jobs ~resume:snap () in
      if resumed.Analysis.Queries.dr_interrupt <> None then
        Alcotest.failf "resume at jobs=%d: run was interrupted" resume_jobs;
      if resumed.Analysis.Queries.dr_sup <> full.Analysis.Queries.dr_sup then
        Alcotest.failf
          "cut jobs=%d -> resume jobs=%d: sup %a <> uninterrupted %a"
          cut_jobs resume_jobs pp_sup resumed.Analysis.Queries.dr_sup pp_sup
          full.Analysis.Queries.dr_sup)
    [ (1, 4); (2, 1); (2, 4); (4, 4) ];
  (* a mismatched snapshot is still rejected on the parallel path: the
     fingerprint check runs before any state is restored *)
  let cut = query ~ctl:(budget_ctl ()) () in
  let snap = Option.get cut.Analysis.Queries.dr_snapshot in
  match
    Analysis.Queries.max_delay ~jobs:2 ~resume:snap
      (Test_runctl.railroad_psm ()) ~trigger:"m_Train" ~response:"c_GateDown"
      ~ceiling:640
  with
  | _ -> Alcotest.fail "mismatched snapshot was accepted at jobs=2"
  | exception Invalid_argument _ -> ()

(* The visited counter is reserved by CAS against the budget: even with
   many workers racing into the limit at once it must never pass it —
   not even transiently, so the final count is exact. *)
let test_budget_never_overshoots () =
  for _ = 1 to 4 do
    let ctl =
      Mc.Runctl.create
        ~budget:{ Mc.Runctl.no_budget with Mc.Runctl.b_states = Some 64 }
        ()
    in
    let r =
      Analysis.Queries.max_delay ~jobs:8 ~ctl (Test_runctl.railroad_psm ())
        ~trigger:"m_Train" ~response:"c_GateDown" ~ceiling:320
    in
    (match r.Analysis.Queries.dr_interrupt with
     | Some (Mc.Runctl.State_budget 64) -> ()
     | other ->
       Alcotest.failf "expected State_budget 64, got %a"
         Fmt.(option Mc.Runctl.pp_reason)
         other);
    let v = r.Analysis.Queries.dr_stats.Mc.Explorer.visited in
    if v > 64 then
      Alcotest.failf "visited %d overshoots the 64-state budget" v
  done

(* Seeded random networks (test/gen.ml generators): safety verdicts and
   sup values agree across worker counts, including oversubscribed
   ones.  Verdict witnesses may legitimately differ, so only the
   three-valued shape is compared. *)
let test_random_networks_cross_jobs () =
  let rand = Random.State.make [| 0x5eed; 42 |] in
  let nets =
    List.init 12 (fun _ -> QCheck.Gen.generate1 ~rand Gen.gen_network)
  in
  let verdict_shape = function
    | Mc.Explorer.Proved -> "proved"
    | Mc.Explorer.Refuted _ -> "refuted"
    | Mc.Explorer.Unknown _ -> "unknown"
  in
  List.iteri
    (fun i net ->
      let safe jobs =
        let t = Mc.Explorer.make net in
        (* every generated automaton has locations L0..L{n-1}, n >= 2 *)
        let pred = Mc.Explorer.at t ~aut:"B" ~loc:"L1" in
        verdict_shape (fst (Mc.Parsearch.safe ~jobs t pred))
      in
      let sup jobs =
        (Analysis.Queries.max_delay ~jobs net ~trigger:"bc" ~response:"bin"
           ~ceiling:16)
          .Analysis.Queries.dr_sup
      in
      let v1 = safe 1 and s1 = sup 1 in
      List.iter
        (fun jobs ->
          let v = safe jobs in
          if v <> v1 then
            Alcotest.failf "net %d: jobs=%d verdict %s <> sequential %s" i
              jobs v v1;
          let s = sup jobs in
          if s <> s1 then
            Alcotest.failf "net %d: jobs=%d sup %a <> sequential %a" i jobs
              pp_sup s pp_sup s1)
        [ 2; 4; 8 ])
    nets

(* run_all: order-preserving, same answers as one-by-one evaluation. *)
let test_run_all () =
  let specs =
    [ { Analysis.Queries.qs_name = "periodic25";
        qs_net = Test_runctl.railroad_psm;
        qs_trigger = "m_Train"; qs_response = "c_GateDown"; qs_ceiling = 320 };
      { Analysis.Queries.qs_name = "race";
        qs_net = railroad_race_psm;
        qs_trigger = "m_Train"; qs_response = "c_GateDown"; qs_ceiling = 320 } ]
  in
  let seq = Analysis.Queries.run_all ~jobs:1 specs in
  List.iter
    (fun jobs ->
      let par = Analysis.Queries.run_all ~jobs specs in
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d: order preserved" jobs)
        (List.map (fun (s, _) -> s.Analysis.Queries.qs_name) seq)
        (List.map (fun (s, _) -> s.Analysis.Queries.qs_name) par);
      List.iter2
        (fun (_, a) (_, b) ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: same sup" jobs)
            true
            (a.Analysis.Queries.dr_sup = b.Analysis.Queries.dr_sup))
        seq par)
    jobs_list

let test_pool_map () =
  let items = List.init 37 Fun.id in
  let seq = List.map (fun i -> i * i) items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d square map" jobs)
        seq
        (Analysis.Queries.pool_map ~jobs (fun i -> i * i) items))
    [ 1; 2; 4; 64 ];
  (* exception propagation *)
  match
    Analysis.Queries.pool_map ~jobs:4
      (fun i -> if i = 20 then failwith "boom" else i)
      items
  with
  | _ -> Alcotest.fail "worker exception was swallowed"
  | exception Failure msg when msg = "boom" -> ()

(* A predicate that raises mid-search must not kill the process or
   escape as an exception: the fleet winds down and the caller sees a
   diagnosed Unknown carrying the crash (never cached — see
   Store.Entry.reusable). *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_crash_supervised () =
  let t = Mc.Explorer.make (Test_runctl.railroad_psm ()) in
  List.iter
    (fun jobs ->
      match
        Mc.Parsearch.safe ~jobs t (fun _ -> failwith "poisoned predicate")
      with
      | Mc.Explorer.Unknown (Mc.Runctl.Crash diag), _stats ->
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d: diagnosis names the exception" jobs)
          true
          (contains diag "poisoned predicate")
      | v, _ ->
        Alcotest.failf "jobs=%d: expected a crash-diagnosed Unknown, got %a"
          jobs Mc.Explorer.pp_verdict v
      | exception exn ->
        Alcotest.failf "jobs=%d: crash escaped supervision: %s" jobs
          (Printexc.to_string exn))
    [ 2; 4 ]

(* A crash in the middle of the search, not on the seed: by then the
   other workers hold quiescence tokens for buffered and queued work,
   and they must exit on the stop cell regardless — a worker waiting
   for [pending] to drain would hang this test (and the suite). *)
let test_midsearch_crash_quiesces () =
  List.iter
    (fun jobs ->
      let calls = Atomic.make 0 in
      let pred _ =
        if Atomic.fetch_and_add calls 1 = 100 then
          failwith "mid-search crash"
        else false
      in
      let t = Mc.Explorer.make (Test_runctl.railroad_psm ()) in
      match Mc.Parsearch.safe ~jobs t pred with
      | Mc.Explorer.Unknown (Mc.Runctl.Crash diag), _ ->
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d: diagnosis names the exception" jobs)
          true
          (contains diag "mid-search crash")
      | v, _ ->
        Alcotest.failf "jobs=%d: expected a crash-diagnosed Unknown, got %a"
          jobs Mc.Explorer.pp_verdict v
      | exception exn ->
        Alcotest.failf "jobs=%d: crash escaped supervision: %s" jobs
          (Printexc.to_string exn))
    [ 2; 4; 8 ]

(* Random railroad schemes: sequential and 4-domain sups agree. *)
let prop_random_scheme =
  QCheck.Test.make ~count:6 ~name:"random scheme: par sup = seq sup"
    QCheck.(triple (int_range 10 60) (int_range 1 8) (int_range 1 6))
    (fun (period, wcet_max, dmax) ->
      let net =
        let loc = Model.location and edge = Model.edge in
        let controller =
          Model.automaton ~name:"GateCtrl" ~initial:"Open"
            [ loc "Open";
              loc ~inv:[ Clockcons.le "g" 5 ] "Lowering";
              loc "Closed" ]
            [ edge ~sync:(Model.Recv "m_Train") ~resets:[ "g" ] "Open"
                "Lowering";
              edge ~sync:(Model.Send "c_GateDown") "Lowering" "Closed";
              edge ~sync:(Model.Recv "m_Clear") "Closed" "Open" ]
        in
        let track =
          Model.automaton ~name:"Track" ~initial:"Away"
            [ loc "Away";
              loc "Approaching";
              loc ~inv:[ Clockcons.le "t" 1_500 ] "Passing" ]
            [ edge
                ~guard:[ Clockcons.ge "t" 300 ]
                ~sync:(Model.Send "m_Train") ~resets:[ "t" ] "Away"
                "Approaching";
              edge ~sync:(Model.Recv "c_GateDown") ~resets:[ "t" ]
                "Approaching" "Passing";
              edge
                ~guard:[ Clockcons.ge "t" 1_000 ]
                ~sync:(Model.Send "m_Clear") ~resets:[ "t" ] "Passing" "Away" ]
        in
        let net =
          Model.network ~name:"railroad" ~clocks:[ "g"; "t" ] ~vars:[]
            ~channels:
              [ ("m_Train", Model.Broadcast);
                ("m_Clear", Model.Broadcast);
                ("c_GateDown", Model.Broadcast) ]
            [ controller; track ]
        in
        let pim =
          Transform.Pim.make net ~software:"GateCtrl" ~environment:"Track"
        in
        let scheme =
          { Scheme.is_name = "ecu";
            is_inputs =
              [ ("m_Train", Scheme.interrupt_input (Scheme.delay 1 dmax));
                ("m_Clear", Scheme.interrupt_input (Scheme.delay 1 dmax)) ];
            is_outputs =
              [ ("c_GateDown", Scheme.pulse_output (Scheme.delay 5 20)) ];
            is_input_comm = Scheme.Buffer (2, Scheme.Read_all);
            is_output_comm = Scheme.Buffer (2, Scheme.Read_all);
            is_invocation = Scheme.Periodic period;
            is_exec = { Scheme.wcet_min = 1; wcet_max } }
        in
        (Transform.psm_of_pim pim scheme).Transform.psm_net
      in
      let sup jobs =
        (Analysis.Queries.max_delay ~jobs net ~trigger:"m_Train"
           ~response:"c_GateDown" ~ceiling:400)
          .Analysis.Queries.dr_sup
      in
      sup 1 = sup 4)

let suite =
  [ Alcotest.test_case "sup determinism across jobs" `Quick
      test_sup_determinism;
    Alcotest.test_case "jobs=1 byte-identical to sequential" `Quick
      test_jobs1_byte_identical;
    Alcotest.test_case "verdict determinism across jobs" `Quick
      test_verdict_determinism;
    Alcotest.test_case "query eval across jobs" `Quick test_query_eval_jobs;
    Alcotest.test_case "pre-cancelled ctl" `Quick test_precancelled;
    Alcotest.test_case "budget partial sup is a lower bound" `Quick
      test_budget_partial_sup;
    Alcotest.test_case "parallel witness replays" `Quick
      test_timed_witness_feasible;
    Alcotest.test_case "checkpoint/resume across jobs" `Quick
      test_parallel_checkpoint_resume;
    Alcotest.test_case "state budget never overshoots" `Quick
      test_budget_never_overshoots;
    Alcotest.test_case "random networks agree across jobs" `Quick
      test_random_networks_cross_jobs;
    Alcotest.test_case "run_all matches one-by-one" `Quick test_run_all;
    Alcotest.test_case "pool_map" `Quick test_pool_map;
    Alcotest.test_case "worker crash is supervised" `Quick
      test_crash_supervised;
    Alcotest.test_case "mid-search crash quiesces" `Quick
      test_midsearch_crash_quiesces;
    QCheck_alcotest.to_alcotest prop_random_scheme ]
