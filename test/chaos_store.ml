(* Chaos tests of the store fault plane: seeded fault schedules are
   replayed over the query cache and the definitive verdicts must come
   out identical to a fault-free run — a sick store may cost time,
   never an answer.  Also covered: concurrent writers under transient
   faults, the degraded-mode circuit breaker, silent write loss, and a
   simulated SIGINT in the write/rename window. *)

let tmp_counter = ref 0

let with_store_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psv_chaos_test_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with _ -> ()) (fun () -> f dir)

let model_text =
  {|network chaostest;

clock x;
chan a, b;

process P {
  state
    Idle,
    Busy { x <= 5 };
  init Idle;
  trans
    Idle -> Busy { sync a!; reset x; },
    Busy -> Idle { guard x >= 1; sync b!; };
}

process Q {
  state S;
  init S;
  trans
    S -> S { sync a?; },
    S -> S { sync b?; };
}
|}

let parse_net text =
  match Xta.Parse.network text with
  | Ok net -> net
  | Error msg -> Alcotest.failf "model parse: %s" msg

let parse_query text =
  match Mc.Query.parse text with
  | Ok q -> q
  | Error msg -> Alcotest.failf "query %S: %s" text msg

(* A mix of verdict shapes: holds, refuted-with-trace, and a sup. *)
let query_texts =
  [ "E<> P.Busy";
    "A[] P.Idle";
    "A[] not (P.Busy and P.Idle)";
    "E<> (P.Idle and Q.S)";
    "sup: a -> b ceiling 100";
    "E<> Q.S" ]

let profile text =
  match Fault.Profile.parse text with
  | Ok p -> p
  | Error msg -> Alcotest.failf "profile %S: %s" text msg

let open_store ?io ?retry dir =
  match Store.Disk.open_ ?io ?retry dir with
  | Ok s -> s
  | Error msg -> Alcotest.failf "open_: %s" msg

(* Reference outcomes from a fault-free run, computed once. *)
let clean_outcomes =
  lazy
    (with_store_dir (fun dir ->
         let cache =
           Analysis.Qcache.make ~warn:(fun _ -> ()) (open_store dir)
         in
         let net = parse_net model_text in
         List.map
           (fun text ->
             (Analysis.Qcache.eval cache net (parse_query text))
               .Mc.Query.res_outcome)
           query_texts))

let check_against_clean label outcomes =
  List.iter2
    (fun text (clean, got) ->
      if got <> clean then
        Alcotest.failf "%s: %S diverged: %a <> %a" label text
          Mc.Query.pp_outcome got Mc.Query.pp_outcome clean)
    query_texts
    (List.combine (Lazy.force clean_outcomes) outcomes)

(* --- verdict equality under seeded fault schedules ------------------------ *)

let fault_profiles =
  [ "eio=0.08,seed=11";
    "eagain=0.1,seed=21";
    "short=0.15,seed=2";
    "fsync=0.3,seed=33";
    "rename=0.25,seed=5";
    "eio=0.04,eagain=0.04,short=0.08,fsync=0.08,rename=0.15,seed=4" ]

let test_verdicts_under_faults () =
  List.iter
    (fun spec ->
      with_store_dir (fun dir ->
          (* create the store on a healthy disk, then let the fault
             schedule loose on every subsequent operation *)
          ignore (open_store dir);
          let stats = Fault.Io.stats () in
          let io = Fault.Io.inject ~stats (profile spec) Fault.Io.real in
          let store =
            open_store ~io ~retry:(Fault.Retry.with_attempts 4) dir
          in
          let cache = Analysis.Qcache.make ~warn:(fun _ -> ()) store in
          let net = parse_net model_text in
          (* two passes: the first populates (or fails to), the second
             hits, recomputes through corruption, or rides the breaker —
             either way the verdicts must not move *)
          for pass = 1 to 2 do
            check_against_clean
              (Printf.sprintf "profile %S pass %d" spec pass)
              (List.map
                 (fun text ->
                   (Analysis.Qcache.eval cache net (parse_query text))
                     .Mc.Query.res_outcome)
                 query_texts)
          done;
          (* after the storm: gc with a healthy handle leaves a store
             fsck would bless *)
          let clean = open_store dir in
          ignore (Store.Disk.gc clean);
          let r = Store.Disk.fsck clean in
          Alcotest.(check int)
            (Printf.sprintf "profile %S: fsck clean after gc" spec)
            0
            (List.length r.Store.Disk.fk_bad)))
    fault_profiles

(* --- concurrent writers under transient faults ---------------------------- *)

let test_concurrent_writers_transients () =
  with_store_dir (fun dir ->
      ignore (open_store dir);
      (* one shared injected interface: the op schedule interleaves
         across domains, the atomic counter keeps it race-free *)
      let io =
        Fault.Io.inject (profile "eio=0.02,eagain=0.02,seed=7") Fault.Io.real
      in
      let sample key query =
        { Store.Entry.en_key = key;
          en_query = query;
          en_outcome = Store.Entry.Holds;
          en_stats = { Store.Entry.visited = 1; stored = 1; frontier = 0 };
          en_budget = Store.Entry.unlimited;
          en_prov =
            { Store.Entry.pv_tool = "psv/chaos";
              pv_jobs = 1;
              pv_wall_ms = 0.1;
              pv_created = 1700000000.0 } }
      in
      let worker d () =
        let local = open_store ~io ~retry:(Fault.Retry.with_attempts 5) dir in
        for i = 0 to 24 do
          let key = Store.D128.of_string (Printf.sprintf "key-%d" (i mod 8)) in
          match
            Store.Disk.insert local (sample key (Printf.sprintf "w%d-%d" d i))
          with
          | () -> ()
          | exception exn when Fault.Retry.transient exn ->
            (* retries exhausted under a hostile schedule: acceptable,
               as long as the store stays consistent *)
            ()
        done
      in
      let doms = List.init 4 (fun d -> Domain.spawn (worker d)) in
      List.iter Domain.join doms;
      let clean = open_store dir in
      let s = Store.Disk.stats clean in
      Alcotest.(check int) "no torn entries" 0 s.Store.Disk.st_corrupt;
      Alcotest.(check bool) "most entries landed" true
        (s.Store.Disk.st_entries >= 1);
      ignore (Store.Disk.gc clean);
      let r = Store.Disk.fsck clean in
      Alcotest.(check int) "fsck clean" 0 (List.length r.Store.Disk.fk_bad);
      Alcotest.(check (list string)) "no orphaned temp files" []
        r.Store.Disk.fk_tmp)

(* --- breaker: a persistently sick store degrades, answers keep coming ----- *)

let test_breaker_degrades () =
  with_store_dir (fun dir ->
      ignore (open_store dir);
      (* entry reads always fail at the host level; writes succeed, so
         the first pass populates and the second pass gets sick reads *)
      let io =
        { Fault.Io.real with
          Fault.Io.read_file =
            (fun path ->
              if Filename.check_suffix path ".psve" then
                raise (Unix.Unix_error (Unix.EIO, "read", path))
              else Fault.Io.real.Fault.Io.read_file path) }
      in
      let store = open_store ~io ~retry:Fault.Retry.no_retry dir in
      (* threshold 1 because a successful recompute-and-insert records a
         breaker success between any two sick reads, resetting the
         consecutive count; frozen clock so the cooldown never elapses
         and the breaker stays open once tripped *)
      let breaker =
        Fault.Breaker.create ~threshold:1 ~now:(fun () -> 0.) ()
      in
      let warned = ref 0 in
      let cache =
        Analysis.Qcache.make ~warn:(fun _ -> incr warned) ~breaker store
      in
      let net = parse_net model_text in
      let eval_all () =
        List.map
          (fun text ->
            (Analysis.Qcache.eval cache net (parse_query text))
              .Mc.Query.res_outcome)
          query_texts
      in
      check_against_clean "populate pass" (eval_all ());
      Alcotest.(check bool) "not yet degraded" false
        (Analysis.Qcache.degraded cache);
      check_against_clean "degraded pass" (eval_all ());
      Alcotest.(check bool) "breaker tripped" true
        (Analysis.Qcache.degraded cache);
      Alcotest.(check bool) "store faults were counted" true
        (Analysis.Qcache.errors cache >= 1);
      Alcotest.(check bool) "warnings were emitted" true (!warned >= 1);
      Alcotest.(check int) "no hits off a sick store" 0
        (Analysis.Qcache.hits cache))

(* --- silent write loss: corruption is a miss, not a failure --------------- *)

let test_fsync_loss_recomputes () =
  with_store_dir (fun dir ->
      ignore (open_store dir);
      let io = Fault.Io.inject (profile "fsync=1,seed=5") Fault.Io.real in
      let store = open_store ~io dir in
      let warned = ref 0 in
      let cache = Analysis.Qcache.make ~warn:(fun _ -> incr warned) store in
      let net = parse_net model_text in
      let eval_all () =
        List.map
          (fun text ->
            (Analysis.Qcache.eval cache net (parse_query text))
              .Mc.Query.res_outcome)
          query_texts
      in
      check_against_clean "truncated-write pass 1" (eval_all ());
      (* every stored entry lost its tail: each lookup is Corrupt, each
         query recomputes, and none of it counts against the breaker *)
      check_against_clean "truncated-write pass 2" (eval_all ());
      Alcotest.(check bool) "corruption warned" true (!warned > 0);
      Alcotest.(check int) "corruption is not a store fault" 0
        (Analysis.Qcache.errors cache);
      Alcotest.(check bool) "and does not degrade the cache" false
        (Analysis.Qcache.degraded cache);
      Alcotest.(check int) "every lookup recomputed" 0
        (Analysis.Qcache.hits cache))

(* --- SIGINT in the write/rename window ------------------------------------ *)

let test_interrupt_window () =
  with_store_dir (fun dir ->
      let real = Fault.Io.real in
      ignore (open_store dir);
      (* the signal arrives after the tmp file is written: rename raises
         Sys.Break, and so does the best-effort cleanup — exactly what a
         writer dying in the publish window leaves behind *)
      let armed = ref true in
      let io =
        { real with
          Fault.Io.rename =
            (fun src dst ->
              if !armed then raise Sys.Break
              else real.Fault.Io.rename src dst);
          Fault.Io.remove =
            (fun path ->
              if !armed then begin
                armed := false;
                raise Sys.Break
              end
              else real.Fault.Io.remove path) }
      in
      let store = open_store ~io dir in
      let key = Store.D128.of_string "interrupted" in
      let entry =
        { Store.Entry.en_key = key;
          en_query = "E<> P.Busy";
          en_outcome = Store.Entry.Holds;
          en_stats = { Store.Entry.visited = 1; stored = 1; frontier = 0 };
          en_budget = Store.Entry.unlimited;
          en_prov =
            { Store.Entry.pv_tool = "psv/chaos";
              pv_jobs = 1;
              pv_wall_ms = 0.1;
              pv_created = 1700000000.0 } }
      in
      (match Store.Disk.insert store entry with
       | () -> Alcotest.fail "the interrupt must propagate"
       | exception Sys.Break -> ());
      let clean = open_store dir in
      (match Store.Disk.lookup clean key with
       | Store.Disk.Miss -> ()
       | _ -> Alcotest.fail "a torn publish must stay invisible");
      let tmps =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> String.length f > 4 && String.sub f 0 4 = ".tmp")
      in
      Alcotest.(check int) "one temp file left behind" 1 (List.length tmps);
      (* while the writer pid is alive the temp is presumed in-flight *)
      let r = Store.Disk.fsck clean in
      Alcotest.(check int) "fsck: store content clean" 0
        (List.length r.Store.Disk.fk_bad);
      Alcotest.(check (list string)) "live writer's temp not flagged" []
        r.Store.Disk.fk_tmp;
      Alcotest.(check int) "gc leaves a live writer's temp alone" 0
        (Store.Disk.gc clean);
      (* the writer dies: model that by re-owning the temp under a pid
         that cannot exist (beyond pid_max) *)
      let orphan = Filename.concat dir ".tmp.9999999.0" in
      Sys.rename (Filename.concat dir (List.hd tmps)) orphan;
      let r = Store.Disk.fsck clean in
      Alcotest.(check int) "fsck reports the orphan" 1
        (List.length r.Store.Disk.fk_tmp);
      Alcotest.(check int) "orphan does not make the store unclean" 0
        (List.length r.Store.Disk.fk_bad);
      Alcotest.(check int) "gc reaps the orphan" 1 (Store.Disk.gc clean);
      let r = Store.Disk.fsck clean in
      Alcotest.(check (list string)) "fsck clean afterwards" []
        r.Store.Disk.fk_tmp;
      (* and the store still works *)
      Store.Disk.insert clean entry;
      match Store.Disk.lookup clean key with
      | Store.Disk.Hit _ -> ()
      | _ -> Alcotest.fail "store unusable after recovery")

let suite =
  [ Alcotest.test_case "verdicts stable under fault schedules" `Slow
      test_verdicts_under_faults;
    Alcotest.test_case "concurrent writers with transients" `Slow
      test_concurrent_writers_transients;
    Alcotest.test_case "breaker degrades, answers continue" `Quick
      test_breaker_degrades;
    Alcotest.test_case "silent write loss recomputes" `Quick
      test_fsync_loss_recomputes;
    Alcotest.test_case "interrupt in the publish window" `Quick
      test_interrupt_window ]
