(* Tests of the differential-fuzzing subsystem: generator determinism
   and well-formedness, ground truth vs the explorer, a clean
   full-oracle sweep, the injected-mutation smoke detector, shrinker
   determinism (across runs and across --jobs), and the corpus-entry
   fixture on a canned discrepancy. *)

module G = Diff.Gen
module O = Diff.Oracle
module S = Diff.Shrink

let print net = Xta.Print.to_string net

let sup_of net q =
  let r = Mc.Query.eval net q in
  match r.Mc.Query.res_outcome with
  | Mc.Query.Sup (Mc.Explorer.Sup (v, _)) -> v
  | o -> Alcotest.failf "expected a sup, got %a" Mc.Query.pp_outcome o

(* --- generator ------------------------------------------------------- *)

let test_shape_names () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %s" (G.shape_name s))
        true
        (G.shape_of_name (G.shape_name s) = Some s))
    G.all_shapes;
  Alcotest.(check bool) "alias fanin" true (G.shape_of_name "fanin" = Some G.Fan_in);
  Alcotest.(check bool) "alias psm" true
    (G.shape_of_name "psm" = Some G.Psm_scheme);
  Alcotest.(check bool) "unknown" true (G.shape_of_name "nope" = None)

let test_gen_deterministic () =
  List.iter
    (fun shape ->
      let a = G.instance ~seed:42 ~index:17 shape in
      let b = G.instance ~seed:42 ~index:17 shape in
      Alcotest.(check string)
        (Printf.sprintf "%s byte-identical" (G.shape_name shape))
        (print a.G.net) (print b.G.net);
      Alcotest.(check string) "same id" a.G.id b.G.id;
      let c = G.instance ~seed:43 ~index:17 shape in
      Alcotest.(check bool)
        (Printf.sprintf "%s seed-sensitive" (G.shape_name shape))
        true
        (print a.G.net <> print c.G.net
        || a.G.truth <> c.G.truth
        || a.G.floor <> c.G.floor))
    G.all_shapes

let test_gen_well_formed () =
  List.iter
    (fun shape ->
      for index = 0 to 9 do
        let i = G.instance ~seed:11 ~index shape in
        Alcotest.(check (list string))
          (Printf.sprintf "%s validates" i.G.id)
          []
          (Ta.Model.validate i.G.net);
        Alcotest.(check bool) "floor >= 1" true (i.G.floor >= 1);
        Alcotest.(check bool) "floor <= ub" true (i.G.floor <= G.ub i);
        Alcotest.(check bool) "ceiling above ub" true (i.G.ceiling > G.ub i);
        Alcotest.(check bool) "sim iff psm" true
          (Option.is_some i.G.sim = (shape = G.Psm_scheme))
      done)
    G.all_shapes

let test_truth_vs_explorer () =
  List.iter
    (fun shape ->
      for index = 0 to 14 do
        let i = G.instance ~seed:5 ~index shape in
        let sup = sup_of i.G.net (G.query i) in
        (match i.G.truth with
        | G.Exact v ->
            Alcotest.(check int)
              (Printf.sprintf "%s sup exact" i.G.id)
              v sup
        | G.Between (lb, ub) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s sup in [%d,%d], got %d" i.G.id lb ub sup)
              true
              (lb <= sup && sup <= ub));
        Alcotest.(check bool) "floor <= sup" true (i.G.floor <= sup)
      done)
    G.all_shapes

(* --- oracle ---------------------------------------------------------- *)

let test_oracle_clean_sweep () =
  let cfg = { O.default with O.scenarios = 2 } in
  List.iter
    (fun shape ->
      for index = 0 to 9 do
        let v = O.run cfg (G.instance ~seed:23 ~index shape) in
        Alcotest.(check int)
          (Printf.sprintf "%s clean" v.O.v_id)
          0
          (List.length v.O.v_discrepancies)
      done)
    G.all_shapes

let test_mutation_caught () =
  let cfg = { O.default with O.mutation = Some (O.Sup_skew 3) } in
  let i = G.instance ~seed:42 ~index:0 G.Chain in
  let v = O.run cfg i in
  Alcotest.(check bool) "at least one discrepancy" true
    (v.O.v_discrepancies <> []);
  Alcotest.(check bool) "a Jobs discrepancy among them" true
    (List.exists (fun d -> d.O.d_check = O.Jobs) v.O.v_discrepancies)

let test_check_names () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "check round-trip %s" (O.check_name c))
        true
        (O.check_of_name (O.check_name c) = Some c))
    [ O.Truth; O.Analytic; O.Jobs; O.Bounded; O.Xta; O.Store_trip;
      O.Delta_replay; O.Sim ]

(* --- shrinking ------------------------------------------------------- *)

(* The canned discrepancy: an injected sup skew on a fixed chain
   instance, which the oracle classifies as [Jobs] — the one mutation
   class guaranteed construction-independent, so it survives network
   surgery and the shrinker can chew on it. *)
let canned () =
  let i = G.instance ~seed:42 ~index:2 G.Chain in
  let cfg = { O.default with O.mutation = Some (O.Sup_skew 5) } in
  (cfg, i)

let test_shrink_reproduces_and_reduces () =
  let cfg, i = canned () in
  let q = G.query i in
  let r = S.shrink cfg ~check:O.Jobs ~seed:9 ~q i.G.net in
  Alcotest.(check bool) "accepted some reductions" true (r.S.sh_accepted > 0);
  Alcotest.(check bool) "tested at least as many" true
    (r.S.sh_tested >= r.S.sh_accepted);
  let l0, e0 = Ta.Model.size i.G.net in
  let l1, e1 = Ta.Model.size r.S.sh_net in
  Alcotest.(check bool) "not larger" true (l1 <= l0 && e1 <= e0);
  Alcotest.(check (list string)) "still validates" []
    (Ta.Model.validate r.S.sh_net);
  let _, _, ds = O.core cfg ~net:r.S.sh_net ~q ~seed:9 in
  Alcotest.(check bool) "still reproduces a Jobs discrepancy" true
    (List.exists (fun d -> d.O.d_check = O.Jobs) ds)

let test_shrink_deterministic () =
  let cfg, i = canned () in
  let q = G.query i in
  let r1 = S.shrink cfg ~check:O.Jobs ~seed:9 ~q i.G.net in
  let r2 = S.shrink cfg ~check:O.Jobs ~seed:9 ~q i.G.net in
  Alcotest.(check string) "byte-identical across runs" r1.S.sh_xta r2.S.sh_xta;
  Alcotest.(check int) "same acceptance count" r1.S.sh_accepted r2.S.sh_accepted;
  let r4 =
    S.shrink { cfg with O.jobs = 4 } ~check:O.Jobs ~seed:9 ~q i.G.net
  in
  Alcotest.(check string) "byte-identical across jobs" r1.S.sh_xta r4.S.sh_xta

let test_shrink_no_discrepancy_is_identity () =
  let i = G.instance ~seed:42 ~index:3 G.Chain in
  let q = G.query i in
  (* No mutation: nothing to reproduce, the input comes back unchanged. *)
  let r = S.shrink O.default ~check:O.Jobs ~seed:9 ~q i.G.net in
  Alcotest.(check int) "no reductions" 0 r.S.sh_accepted;
  Alcotest.(check string) "unchanged" (print i.G.net) r.S.sh_xta

let test_corpus_entry () =
  let cfg, i = canned () in
  let q = G.query i in
  let r = S.shrink cfg ~check:O.Jobs ~seed:9 ~q i.G.net in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psv_diff_corpus_%d" (Unix.getpid ()))
  in
  let meta =
    Store.Json.Obj
      [ ("id", Store.Json.String i.G.id);
        ("check", Store.Json.String (O.check_name O.Jobs)) ]
  in
  let entry =
    S.write_entry ~dir ~id:i.G.id ~query_text:(Mc.Query.to_string q)
      ~meta_json:meta r
  in
  let read file =
    let ic = open_in_bin (Filename.concat entry file) in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  Alcotest.(check string) "model.xta is the shrunk net" r.S.sh_xta
    (read "model.xta");
  Alcotest.(check bool) "query.q has the sup query" true
    (let q_text = read "query.q" in
     String.length q_text > 0
     && String.sub q_text 0 4 = "sup:");
  Alcotest.(check bool) "meta.json mentions the check" true
    (let m = read "meta.json" in
     let needle = "\"jobs\"" in
     let n = String.length needle and len = String.length m in
     let rec find k =
       k + n <= len && (String.sub m k n = needle || find (k + 1))
     in
     find 0);
  (* The persisted model reparses to the same canonical text. *)
  (match Xta.Parse.network (read "model.xta") with
  | Ok net -> Alcotest.(check string) "reparses" r.S.sh_xta (print net)
  | Error e -> Alcotest.failf "corpus model does not reparse: %s" e);
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  rm dir

let suite =
  [ Alcotest.test_case "shape names" `Quick test_shape_names;
    Alcotest.test_case "generator deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "generator well-formed" `Quick test_gen_well_formed;
    Alcotest.test_case "truth vs explorer" `Quick test_truth_vs_explorer;
    Alcotest.test_case "oracle clean sweep" `Quick test_oracle_clean_sweep;
    Alcotest.test_case "mutation caught as Jobs" `Quick test_mutation_caught;
    Alcotest.test_case "check names" `Quick test_check_names;
    Alcotest.test_case "shrink reproduces + reduces" `Quick
      test_shrink_reproduces_and_reduces;
    Alcotest.test_case "shrink deterministic" `Quick test_shrink_deterministic;
    Alcotest.test_case "shrink identity w/o discrepancy" `Quick
      test_shrink_no_discrepancy_is_identity;
    Alcotest.test_case "corpus entry fixture" `Quick test_corpus_entry ]
