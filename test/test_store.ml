(* Tests of the persistent result store: the 128-bit digest, the JSON
   codec, canonical query text, cache keys, the on-disk entry format
   (including corruption tolerance and concurrent writers), and the
   budget-dominance reuse rule. *)

let tmp_counter = ref 0

(* fresh store directory per test, removed afterwards *)
let with_store_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psv_store_test_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with _ -> ()) (fun () -> f dir)

(* --- D128 ---------------------------------------------------------------- *)

let test_d128_hex () =
  let d = Store.D128.of_string "hello" in
  let hex = Store.D128.to_hex d in
  Alcotest.(check int) "32 hex chars" 32 (String.length hex);
  (match Store.D128.of_hex hex with
   | Some d' -> Alcotest.(check bool) "round-trips" true (Store.D128.equal d d')
   | None -> Alcotest.fail "of_hex rejected its own to_hex");
  List.iter
    (fun bad ->
      match Store.D128.of_hex bad with
      | None -> ()
      | Some _ -> Alcotest.failf "of_hex accepted %S" bad)
    [ ""; "abc"; String.make 31 '0'; String.make 33 '0';
      String.make 31 '0' ^ "g" ]

let test_d128_sensitivity () =
  let digest parts =
    let st = Store.D128.builder () in
    List.iter (Store.D128.add_string st) parts;
    Store.D128.value st
  in
  (* deterministic *)
  Alcotest.(check bool) "stable" true
    (Store.D128.equal (digest [ "a"; "b" ]) (digest [ "a"; "b" ]));
  (* the length prefix keeps ["ab";"c"] and ["a";"bc"] apart even though
     the concatenated bytes agree *)
  Alcotest.(check bool) "length-prefixed" false
    (Store.D128.equal (digest [ "ab"; "c" ]) (digest [ "a"; "bc" ]));
  Alcotest.(check bool) "content-sensitive" false
    (Store.D128.equal (digest [ "a" ]) (digest [ "b" ]))

(* --- Json ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let open Store.Json in
  let doc =
    Obj
      [ ("null", Null);
        ("flag", Bool true);
        ("n", Int (-42));
        ("big", Int max_int);
        ("f", Float 0.125);
        ("s", String "line\nquote\" back\\slash \t end");
        ("items", List [ Int 1; List []; Obj []; String "" ]) ]
  in
  match parse (to_string doc) with
  | Ok doc' ->
    Alcotest.(check bool) "round-trips" true (doc = doc');
    Alcotest.(check string) "re-encoding is byte-stable" (to_string doc)
      (to_string doc')
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_errors () =
  let open Store.Json in
  List.iter
    (fun text ->
      match parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" text)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "{\"a\":1} trailing"; "\"unterm";
      "nul"; "\"raw\x01control\"" ];
  (match parse "\"a\\u00e9b\"" with
   | Ok (String s) -> Alcotest.(check string) "utf8 escape" "a\xc3\xa9b" s
   | _ -> Alcotest.fail "unicode escape");
  match parse "  {\"a\": [1, 2.5]}  " with
  | Ok (Obj [ ("a", List [ Int 1; Float 2.5 ]) ]) -> ()
  | _ -> Alcotest.fail "whitespace / number kinds"

(* --- Query.to_string ----------------------------------------------------- *)

let test_query_to_string_roundtrip () =
  let queries =
    [ "E<> Pump.Infusing";
      "A[] iovf_BolusReq == 0";
      "E<> (Pump.Idle and (n >= 3 or not Pump.Infusing))";
      "A[] not (a.b and c.d)";
      "E<> (true or (false and n != 7))";
      "sup: m_BolusReq -> c_StartInfusion ceiling 2000";
      "bounded: m_BolusReq -> c_StartInfusion within 500" ]
  in
  List.iter
    (fun text ->
      match Mc.Query.parse text with
      | Error msg -> Alcotest.failf "parse %S: %s" text msg
      | Ok q -> (
        let canon = Mc.Query.to_string q in
        match Mc.Query.parse canon with
        | Error msg -> Alcotest.failf "re-parse %S: %s" canon msg
        | Ok q' ->
          Alcotest.(check bool)
            (Printf.sprintf "%S -> %S round-trips" text canon)
            true (q = q')))
    queries

(* --- cache keys ----------------------------------------------------------- *)

let model_text =
  {|network cachetest;

clock x;
chan a, b;

process P {
  state
    Idle,
    Busy { x <= 5 };
  init Idle;
  trans
    Idle -> Busy { sync a!; reset x; },
    Busy -> Idle { guard x >= 1; sync b!; };
}

process Q {
  state S;
  init S;
  trans
    S -> S { sync a?; },
    S -> S { sync b?; };
}
|}

let parse_net text =
  match Xta.Parse.network text with
  | Ok net -> net
  | Error msg -> Alcotest.failf "model parse: %s" msg

let substitute text sub by =
  let n = String.length text and m = String.length sub in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub text !i m = sub then begin
      Buffer.add_string buf by;
      i := !i + m
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let test_key_stability () =
  let net = parse_net model_text in
  let reparsed = parse_net (Xta.Print.to_string net) in
  Alcotest.(check bool) "digest survives a print/parse round-trip" true
    (Store.D128.equal
       (Store.Key.network_digest net)
       (Store.Key.network_digest reparsed));
  let q = "sup: a -> b ceiling 100" in
  Alcotest.(check bool) "full key too" true
    (Store.D128.equal
       (Store.Key.digest ~query:q net)
       (Store.Key.digest ~query:q reparsed))

let test_key_perturbation () =
  let base = Store.Key.network_digest (parse_net model_text) in
  let differs label text =
    Alcotest.(check bool) label false
      (Store.D128.equal base (Store.Key.network_digest (parse_net text)))
  in
  differs "bound tweak changes the digest"
    (substitute model_text "x <= 5" "x <= 6");
  differs "rename changes the digest" (substitute model_text "chan a, b" "chan c, b"
                                       |> fun t -> substitute t "sync a" "sync c");
  differs "edge reorder changes the digest"
    (substitute model_text
       "S -> S { sync a?; },\n    S -> S { sync b?; };"
       "S -> S { sync b?; },\n    S -> S { sync a?; };");
  let net = parse_net model_text in
  Alcotest.(check bool) "query text feeds the key" false
    (Store.D128.equal
       (Store.Key.digest ~query:"E<> P.Busy" net)
       (Store.Key.digest ~query:"E<> P.Idle" net));
  Alcotest.(check bool) "explorer flags feed the key" false
    (Store.D128.equal
       (Store.Key.digest ~lu:true ~query:"E<> P.Busy" net)
       (Store.Key.digest ~lu:false ~query:"E<> P.Busy" net))

(* --- entries -------------------------------------------------------------- *)

let sample_entry ?(key = Store.D128.of_string "k") ?(outcome = Store.Entry.Holds)
    ?(budget = Store.Entry.unlimited) () =
  { Store.Entry.en_key = key;
    en_query = "E<> P.Busy";
    en_outcome = outcome;
    en_stats = { Store.Entry.visited = 10; stored = 8; frontier = 0 };
    en_budget = budget;
    en_prov =
      { Store.Entry.pv_tool = "psv/test";
        pv_jobs = 1;
        pv_wall_ms = 12.5;
        pv_created = 1700000000.0 } }

let entry_eq = Alcotest.testable Store.Entry.pp (fun a b -> a = b)

let test_entry_json_roundtrip () =
  let outcomes =
    [ Store.Entry.Holds;
      Store.Entry.Fails None;
      Store.Entry.Fails (Some [ "step 1"; "step 2" ]);
      Store.Entry.Sup Store.Entry.Sup_unreached;
      Store.Entry.Sup (Store.Entry.Sup_value (440, false));
      Store.Entry.Sup (Store.Entry.Sup_exceeds 2000);
      Store.Entry.Unknown (Store.Entry.Time_budget 1.5, None);
      Store.Entry.Unknown
        (Store.Entry.State_budget 1000, Some (Store.Entry.Sup_value (7, true)));
      Store.Entry.Unknown (Store.Entry.Memory_budget 4096, None);
      Store.Entry.Unknown (Store.Entry.Cancelled, None) ]
  in
  List.iter
    (fun outcome ->
      let budget =
        { Store.Entry.bg_limit = 500_000;
          bg_states = Some 1000;
          bg_time_s = Some 1.5;
          bg_mem_bytes = None }
      in
      let e = sample_entry ~outcome ~budget () in
      match Store.Entry.of_json (Store.Entry.to_json e) with
      | Ok e' -> Alcotest.check entry_eq "entry round-trips" e e'
      | Error msg -> Alcotest.failf "of_json: %s" msg)
    outcomes

let budget ?states ?time_s ?mem ?(limit = 1000) () =
  { Store.Entry.bg_limit = limit;
    bg_states = states;
    bg_time_s = time_s;
    bg_mem_bytes = mem }

let test_budget_dominance () =
  let dominates c r = Store.Entry.budget_dominates ~cached:c ~requested:r in
  Alcotest.(check bool) "equal budgets dominate" true
    (dominates (budget ()) (budget ()));
  Alcotest.(check bool) "bigger state limit dominates" true
    (dominates (budget ~limit:2000 ()) (budget ~limit:1000 ()));
  Alcotest.(check bool) "smaller state limit does not" false
    (dominates (budget ~limit:500 ()) (budget ~limit:1000 ()));
  Alcotest.(check bool) "None dominates Some" true
    (dominates (budget ()) (budget ~states:10 ()));
  Alcotest.(check bool) "Some never dominates None" false
    (dominates (budget ~states:1_000_000 ()) (budget ()));
  Alcotest.(check bool) "componentwise: time" true
    (dominates (budget ~time_s:2.0 ()) (budget ~time_s:1.0 ()));
  Alcotest.(check bool) "componentwise: time fails" false
    (dominates (budget ~time_s:1.0 ()) (budget ~time_s:2.0 ()));
  Alcotest.(check bool) "componentwise: memory" false
    (dominates (budget ~mem:100 ()) (budget ~mem:200 ()))

let test_reusable () =
  let small = budget ~states:100 () and big = budget ~states:1_000_000 () in
  let reusable ?budget:(b = small) outcome ~requested =
    Store.Entry.reusable (sample_entry ~outcome ~budget:b ()) ~requested
  in
  (* definitive results answer any budget, even a bigger one *)
  Alcotest.(check bool) "Holds reusable under a bigger budget" true
    (reusable Store.Entry.Holds ~requested:big);
  Alcotest.(check bool) "Sup reusable under a bigger budget" true
    (reusable (Store.Entry.Sup (Store.Entry.Sup_value (5, false))) ~requested:big);
  let unk = Store.Entry.Unknown (Store.Entry.State_budget 100, None) in
  (* Unknown only travels downward in budget *)
  Alcotest.(check bool) "Unknown not reusable under a bigger budget" false
    (reusable unk ~requested:big);
  Alcotest.(check bool) "Unknown reusable under a smaller budget" true
    (reusable ~budget:big unk ~requested:small);
  Alcotest.(check bool) "cancelled never reusable" false
    (Store.Entry.reusable
       (sample_entry
          ~outcome:(Store.Entry.Unknown (Store.Entry.Cancelled, None))
          ~budget:big ())
       ~requested:small)

(* --- disk ----------------------------------------------------------------- *)

let open_store dir =
  match Store.Disk.open_ dir with
  | Ok s -> s
  | Error msg -> Alcotest.failf "open_: %s" msg

let test_disk_roundtrip () =
  with_store_dir (fun dir ->
      let store = open_store dir in
      let e = sample_entry ~key:(Store.D128.of_string "k1") () in
      (match Store.Disk.lookup store e.Store.Entry.en_key with
       | Store.Disk.Miss -> ()
       | _ -> Alcotest.fail "expected a miss before insert");
      Store.Disk.insert store e;
      (match Store.Disk.lookup store e.Store.Entry.en_key with
       | Store.Disk.Hit e' -> Alcotest.check entry_eq "hit after insert" e e'
       | _ -> Alcotest.fail "expected a hit after insert");
      (* reopening sees the same durable entry *)
      let store2 = open_store dir in
      (match Store.Disk.lookup store2 e.Store.Entry.en_key with
       | Store.Disk.Hit e' -> Alcotest.check entry_eq "durable" e e'
       | _ -> Alcotest.fail "entry lost across reopen");
      (* overwrite with a different outcome *)
      let e2 = { e with Store.Entry.en_outcome = Store.Entry.Fails None } in
      Store.Disk.insert store e2;
      (match Store.Disk.lookup store e.Store.Entry.en_key with
       | Store.Disk.Hit e' -> Alcotest.check entry_eq "overwritten" e2 e'
       | _ -> Alcotest.fail "overwrite lost the entry");
      Store.Disk.remove store e.Store.Entry.en_key;
      match Store.Disk.lookup store e.Store.Entry.en_key with
      | Store.Disk.Miss -> ()
      | _ -> Alcotest.fail "remove did not remove")

let test_disk_recognition () =
  with_store_dir (fun dir ->
      (match Store.Disk.open_existing dir with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "open_existing created a store");
      Unix.mkdir dir 0o755;
      let oc = open_out (Filename.concat dir "innocent.txt") in
      output_string oc "do not gc me";
      close_out oc;
      (* a non-empty directory without the marker is not a store, even
         with create *)
      (match Store.Disk.open_ dir with
       | Error msg ->
         Alcotest.(check bool) "error names the marker" true
           (let rec contains i =
              i + 8 <= String.length msg
              && (String.sub msg i 8 = "PSVSTORE" || contains (i + 1))
            in
            contains 0)
       | Ok _ -> Alcotest.fail "adopted a foreign directory as a store"))

let entry_file dir key = Filename.concat dir (Store.D128.to_hex key ^ ".psve")

let test_disk_corruption () =
  with_store_dir (fun dir ->
      let store = open_store dir in
      let key = Store.D128.of_string "corruptme" in
      let e = sample_entry ~key () in
      Store.Disk.insert store e;
      let path = entry_file dir key in
      let original =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let write bytes =
        let oc = open_out_bin path in
        output_string oc bytes;
        close_out oc
      in
      let check_corrupt label =
        match Store.Disk.lookup store key with
        | Store.Disk.Corrupt _ -> ()
        | Store.Disk.Hit _ -> Alcotest.failf "%s: accepted as a hit" label
        | Store.Disk.Miss -> Alcotest.failf "%s: reported as a miss" label
        | Store.Disk.Unavailable msg ->
          Alcotest.failf "%s: store unavailable: %s" label msg
        | exception exn ->
          Alcotest.failf "%s: raised %s" label (Printexc.to_string exn)
      in
      let n = String.length original in
      (* truncation at every eighth byte *)
      let cut = ref 0 in
      while !cut < n do
        write (String.sub original 0 !cut);
        check_corrupt (Printf.sprintf "truncated to %d bytes" !cut);
        cut := !cut + 8
      done;
      (* single-byte flips across the file *)
      let pos = ref 0 in
      while !pos < n do
        let b = Bytes.of_string original in
        Bytes.set b !pos (Char.chr (Char.code (Bytes.get b !pos) lxor 0x20));
        write (Bytes.to_string b);
        (match Store.Disk.lookup store key with
         | Store.Disk.Corrupt _ | Store.Disk.Miss -> ()
         | Store.Disk.Hit e' ->
           (* a flip that still reads back must have produced the very
              same entry (e.g. flips inside ignored regions don't exist
              in this format, so really: never) *)
           Alcotest.check entry_eq
             (Printf.sprintf "flip at %d produced a phantom entry" !pos)
             e e'
         | Store.Disk.Unavailable msg ->
           Alcotest.failf "flip at %d made the store unavailable: %s" !pos msg
         | exception exn ->
           Alcotest.failf "flip at %d raised %s" !pos (Printexc.to_string exn));
        pos := !pos + 7
      done;
      (* entry-version bump *)
      write (substitute original "PSVSTORE1" "PSVSTORE9");
      check_corrupt "future entry version";
      (* outright garbage *)
      write (String.make 100 '\xff');
      check_corrupt "garbage";
      (* a permuted header (digest line swapped with length line) *)
      write (substitute original "PSVSTORE1\n" "PSVSTORE1\n\n");
      check_corrupt "permuted header";
      (* restore and confirm the store recovers *)
      write original;
      match Store.Disk.lookup store key with
      | Store.Disk.Hit e' -> Alcotest.check entry_eq "recovers" e e'
      | _ -> Alcotest.fail "restored entry does not read back")

let test_disk_fold_stats_gc_fsck () =
  with_store_dir (fun dir ->
      let store = open_store dir in
      let keys =
        List.map
          (fun i -> Store.D128.of_string (Printf.sprintf "key-%d" i))
          [ 1; 2; 3 ]
      in
      List.iter (fun key -> Store.Disk.insert store (sample_entry ~key ())) keys;
      (* one corrupt entry, one stale temp file *)
      let bad = Store.D128.of_string "bad" in
      let oc = open_out_bin (entry_file dir bad) in
      output_string oc "PSVSTORE1\nnot hex\n4\nxxxx";
      close_out oc;
      (* pid 9999999 exceeds any configured pid_max, so the writer is
         provably dead and gc must treat the temp file as an orphan *)
      let oc = open_out_bin (Filename.concat dir ".tmp.9999999.0") in
      output_string oc "leftover";
      close_out oc;
      let warnings = ref 0 in
      let n =
        Store.Disk.fold ~warn:(fun _ -> incr warnings) store ~init:0
          ~f:(fun acc _ -> acc + 1)
      in
      Alcotest.(check int) "fold sees the good entries" 3 n;
      Alcotest.(check int) "fold warned once" 1 !warnings;
      let s = Store.Disk.stats store in
      Alcotest.(check int) "stats entries" 3 s.Store.Disk.st_entries;
      Alcotest.(check int) "stats corrupt" 1 s.Store.Disk.st_corrupt;
      Alcotest.(check bool) "stats bytes > 0" true (s.Store.Disk.st_bytes > 0);
      let r = Store.Disk.fsck store in
      Alcotest.(check int) "fsck ok" 3 r.Store.Disk.fk_ok;
      Alcotest.(check int) "fsck bad" 1 (List.length r.Store.Disk.fk_bad);
      let removed = Store.Disk.gc store in
      Alcotest.(check int) "gc removes corrupt + temp" 2 removed;
      let s = Store.Disk.stats store in
      Alcotest.(check int) "corrupt gone" 0 s.Store.Disk.st_corrupt;
      Alcotest.(check int) "entries kept" 3 s.Store.Disk.st_entries)

let test_disk_concurrent_writers () =
  with_store_dir (fun dir ->
      let store = open_store dir in
      let jobs = 4 and per_domain = 25 in
      (* all domains hammer an overlapping key range: every file must
         come out whole (rename is atomic), nothing may crash *)
      let worker d () =
        let local = open_store dir in
        for i = 0 to per_domain - 1 do
          let key = Store.D128.of_string (Printf.sprintf "key-%d" (i mod 10)) in
          let e =
            { (sample_entry ~key ()) with
              Store.Entry.en_query = Printf.sprintf "writer-%d-%d" d i }
          in
          Store.Disk.insert local e;
          match Store.Disk.lookup local key with
          | Store.Disk.Hit _ -> ()
          | Store.Disk.Miss -> Alcotest.fail "lost an entry mid-write"
          | Store.Disk.Corrupt msg ->
            Alcotest.failf "torn entry observed: %s" msg
          | Store.Disk.Unavailable msg ->
            Alcotest.failf "store unavailable mid-write: %s" msg
        done
      in
      let doms = List.init jobs (fun d -> Domain.spawn (worker d)) in
      List.iter Domain.join doms;
      let s = Store.Disk.stats store in
      Alcotest.(check int) "10 distinct keys survive" 10 s.Store.Disk.st_entries;
      Alcotest.(check int) "no corruption" 0 s.Store.Disk.st_corrupt;
      let r = Store.Disk.fsck store in
      Alcotest.(check int) "fsck clean" 0 (List.length r.Store.Disk.fk_bad))

(* --- qcache --------------------------------------------------------------- *)

let test_qcache_hit_miss () =
  with_store_dir (fun dir ->
      let cache = Analysis.Qcache.make ~warn:(fun _ -> ()) (open_store dir) in
      let net = parse_net model_text in
      let q =
        match Mc.Query.parse "sup: a -> b ceiling 100" with
        | Ok q -> q
        | Error msg -> Alcotest.failf "query: %s" msg
      in
      let r1 = Analysis.Qcache.eval cache net q in
      Alcotest.(check int) "first eval misses" 1 (Analysis.Qcache.misses cache);
      let r2 = Analysis.Qcache.eval cache net q in
      Alcotest.(check int) "second eval hits" 1 (Analysis.Qcache.hits cache);
      Alcotest.(check bool) "same outcome" true
        (r1.Mc.Query.res_outcome = r2.Mc.Query.res_outcome);
      Alcotest.(check bool) "same stats" true
        (r1.Mc.Query.res_stats = r2.Mc.Query.res_stats);
      (* the sup of the little model is the invariant bound, 5 *)
      match r2.Mc.Query.res_outcome with
      | Mc.Query.Sup (Mc.Explorer.Sup (5, _)) -> ()
      | o -> Alcotest.failf "unexpected outcome %a" Mc.Query.pp_outcome o)

(* a model that needs 15 expansions to reach its target, so a tiny
   state budget genuinely interrupts the search *)
let counter_text =
  {|network counter;

int[0,15] n = 0;

process C {
  state S;
  init S;
  trans
    S -> S { when n != 15; assign n := n + 1; };
}
|}

let test_qcache_unknown_dominance () =
  with_store_dir (fun dir ->
      let cache = Analysis.Qcache.make ~warn:(fun _ -> ()) (open_store dir) in
      let net = parse_net counter_text in
      let q =
        match Mc.Query.parse "E<> n >= 15" with
        | Ok q -> q
        | Error msg -> Alcotest.failf "query: %s" msg
      in
      let tiny_budget =
        { Mc.Runctl.no_budget with Mc.Runctl.b_states = Some 2 }
      in
      let ctl () = Mc.Runctl.create ~budget:tiny_budget () in
      let r1 = Analysis.Qcache.eval cache ~ctl:(ctl ()) net q in
      (match r1.Mc.Query.res_outcome with
       | Mc.Query.Unknown _ -> ()
       | o ->
         Alcotest.failf "expected Unknown under a 2-state budget, got %a"
           Mc.Query.pp_outcome o);
      (* the same tiny budget may reuse the Unknown... *)
      let _ = Analysis.Qcache.eval cache ~ctl:(ctl ()) net q in
      Alcotest.(check int) "dominated request hits" 1
        (Analysis.Qcache.hits cache);
      (* ...but an unbudgeted request must recompute and find the truth *)
      let r3 = Analysis.Qcache.eval cache net q in
      Alcotest.(check bool) "bigger budget recomputes" true
        (Analysis.Qcache.misses cache >= 2);
      (match r3.Mc.Query.res_outcome with
       | Mc.Query.Holds -> ()
       | o -> Alcotest.failf "expected Holds, got %a" Mc.Query.pp_outcome o);
      (* the definitive result overwrote the Unknown: now even the tiny
         budget is answered from the store *)
      let hits_before = Analysis.Qcache.hits cache in
      let r4 = Analysis.Qcache.eval cache ~ctl:(ctl ()) net q in
      Alcotest.(check int) "definitive answers any budget" (hits_before + 1)
        (Analysis.Qcache.hits cache);
      match r4.Mc.Query.res_outcome with
      | Mc.Query.Holds -> ()
      | o -> Alcotest.failf "expected cached Holds, got %a" Mc.Query.pp_outcome o)

(* --- snapshots reject the previous format -------------------------------- *)

let test_old_snapshot_version () =
  let path = Filename.temp_file "psv_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "PSVSNAP1";
      output_string oc (String.make 64 '\x00');
      close_out oc;
      match Mc.Explorer.load_snapshot path with
      | Ok _ -> Alcotest.fail "loaded a PSVSNAP1 snapshot"
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the stale version: %s" msg)
          true
          (let rec contains i =
             i + 8 <= String.length msg
             && (String.sub msg i 8 = "PSVSNAP1" || contains (i + 1))
           in
           contains 0))

let suite =
  [ Alcotest.test_case "d128 hex round-trip" `Quick test_d128_hex;
    Alcotest.test_case "d128 sensitivity" `Quick test_d128_sensitivity;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "query to_string round-trip" `Quick
      test_query_to_string_roundtrip;
    Alcotest.test_case "key stable across print/parse" `Quick
      test_key_stability;
    Alcotest.test_case "key changes under perturbation" `Quick
      test_key_perturbation;
    Alcotest.test_case "entry json round-trip" `Quick test_entry_json_roundtrip;
    Alcotest.test_case "budget dominance" `Quick test_budget_dominance;
    Alcotest.test_case "reuse rule" `Quick test_reusable;
    Alcotest.test_case "disk insert/lookup/remove" `Quick test_disk_roundtrip;
    Alcotest.test_case "store recognition" `Quick test_disk_recognition;
    Alcotest.test_case "corruption never crashes" `Quick test_disk_corruption;
    Alcotest.test_case "fold/stats/gc/fsck" `Quick test_disk_fold_stats_gc_fsck;
    Alcotest.test_case "concurrent writers" `Quick test_disk_concurrent_writers;
    Alcotest.test_case "qcache hit/miss" `Quick test_qcache_hit_miss;
    Alcotest.test_case "qcache unknown dominance" `Quick
      test_qcache_unknown_dominance;
    Alcotest.test_case "old snapshot version rejected" `Quick
      test_old_snapshot_version ]
