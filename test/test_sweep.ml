(* The sweep engine and its GPCA design space.

   Three layers under test: Scheme.Grid (axis parsing and the mixed-radix
   decode), the Analysis.Sweep race (analytic prefilter vs the explorer
   must be an optimisation, never an answer change), and the bounds the
   race rests on — the seeded property test pins the contract that for
   every valid, loss-free scheme point the model-checked supremum lies
   between the analytic lower and upper bounds. *)

let small = Gpca.Sweep_space.Small

let grid_of axes =
  match Scheme.Grid.make axes with
  | Ok g -> g
  | Error msg -> Alcotest.failf "grid: %s" msg

(* --- Grid: parsing and decode ------------------------------------------- *)

let test_parse_axis () =
  let ok spec = match Scheme.Grid.parse_axis spec with
    | Ok (name, vs) -> (name, vs)
    | Error msg -> Alcotest.failf "parse_axis %S: %s" spec msg
  in
  Alcotest.(check (pair string (list int))) "range"
    ("period", [ 10; 20; 30; 40 ])
    (ok "period=10..40/10");
  Alcotest.(check (pair string (list int))) "range step 1"
    ("b", [ 2; 3; 4 ]) (ok "b=2..4");
  Alcotest.(check (pair string (list int))) "list"
    ("poll", [ 5; 80; 7 ]) (ok "poll=5,80,7");
  Alcotest.(check (pair string (list int))) "negative lo"
    ("d", [ -2; 0; 2 ]) (ok "d=-2..2/2");
  List.iter
    (fun spec ->
      match Scheme.Grid.parse_axis spec with
      | Ok _ -> Alcotest.failf "parse_axis %S should fail" spec
      | Error _ -> ())
    [ "noequals"; "=1,2"; "x="; "x=1.."; "x=5..1"; "x=1..9/0"; "x=a,b" ]

let test_grid_make () =
  let g = grid_of [ ("a", [ 1; 2; 3 ]); ("b", [ 10; 20 ]) ] in
  Alcotest.(check int) "cardinality" 6 (Scheme.Grid.cardinality g);
  (match Scheme.Grid.make [ ("a", [ 1 ]); ("a", [ 2 ]) ] with
   | Ok _ -> Alcotest.fail "duplicate axis accepted"
   | Error _ -> ());
  (match Scheme.Grid.make [ ("a", []) ] with
   | Ok _ -> Alcotest.fail "empty axis accepted"
   | Error _ -> ())

let test_grid_decode () =
  let g = grid_of [ ("a", [ 1; 2; 3 ]); ("b", [ 10; 20 ]) ] in
  (* first axis fastest *)
  Alcotest.(check (list (pair string int))) "point 0"
    [ ("a", 1); ("b", 10) ] (Scheme.Grid.point g 0);
  Alcotest.(check (list (pair string int))) "point 1"
    [ ("a", 2); ("b", 10) ] (Scheme.Grid.point g 1);
  Alcotest.(check (list (pair string int))) "point 5"
    [ ("a", 3); ("b", 20) ] (Scheme.Grid.point g 5);
  (* every index decodes to a distinct assignment *)
  let seen = Hashtbl.create 16 in
  for i = 0 to Scheme.Grid.cardinality g - 1 do
    let asg = Scheme.Grid.point g i in
    if Hashtbl.mem seen asg then Alcotest.failf "duplicate assignment %d" i;
    Hashtbl.add seen asg ()
  done;
  (try
     ignore (Scheme.Grid.point g 6);
     Alcotest.fail "out-of-range decode accepted"
   with Invalid_argument _ -> ())

(* --- to_key and dedup ---------------------------------------------------- *)

let spec_at asg = Gpca.Sweep_space.spec_of_assignment ~base:small ~req:60 asg

let test_key_collapses_dead_axes () =
  (* with an interrupt-driven input the poll interval is outside the
     cone of influence: the keys must collide so the engine explores once *)
  let a = spec_at [ ("mech", 0); ("poll", 5) ] in
  let b = spec_at [ ("mech", 0); ("poll", 80) ] in
  Alcotest.(check string) "poll collapses under interrupt"
    a.Analysis.Sweep.sp_key b.Analysis.Sweep.sp_key;
  let c = spec_at [ ("mech", 1); ("poll", 5) ] in
  let d = spec_at [ ("mech", 1); ("poll", 80) ] in
  Alcotest.(check bool) "poll matters when polling" false
    (c.Analysis.Sweep.sp_key = d.Analysis.Sweep.sp_key)

let test_key_separates () =
  let pairs =
    [ ([ ("buffer", 1) ], [ ("buffer", 2) ]);
      ([ ("period", 20) ], [ ("period", 40) ]);
      ([ ("policy", 0) ], [ ("policy", 1) ]);
      ([ ("signal", 0) ], [ ("signal", 1) ]);
      ([ ("in_dmax", 5) ], [ ("in_dmax", 9) ]) ]
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "keys differ (%s)"
           (String.concat "," (List.map fst a)))
        false
        ((spec_at a).Analysis.Sweep.sp_key = (spec_at b).Analysis.Sweep.sp_key))
    pairs

(* --- Pareto -------------------------------------------------------------- *)

let test_dominates () =
  let d = Analysis.Sweep.dominates in
  Alcotest.(check bool) "strictly less" true (d [| 1; 2 |] [| 2; 2 |]);
  Alcotest.(check bool) "equal" false (d [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "incomparable" false (d [| 1; 3 |] [| 2; 2 |]);
  Alcotest.(check bool) "componentwise" true (d [| 1; 1 |] [| 2; 3 |])

(* --- the race: prefilter vs explorer-everywhere -------------------------- *)

(* a grid small enough to explore exhaustively in the test budget but
   wide enough to hit all decision paths: analytic fail (poll=80 makes
   the lower bound exceed req on polling points), undecided band, the
   invalid pulse x polling corner, and interrupt points collapsing the
   poll axis *)
let race_axes =
  [ ("period", [ 20; 40 ]);
    ("poll", [ 5; 80 ]);
    ("mech", [ 0; 1 ]);
    ("signal", [ 0; 1 ]);
    ("buffer", [ 1; 2 ]) ]

let run_grid ~prefilter ~audit () =
  let grid = grid_of race_axes in
  let points = Scheme.Grid.cardinality grid in
  let vs = Array.make points Analysis.Sweep.Unknown in
  let cfg =
    { Analysis.Sweep.default_config with
      Analysis.Sweep.sw_prefilter = prefilter;
      sw_limit = Some 300_000;
      sw_audit = audit;
      sw_batch = 7;  (* force several partial batches *)
      sw_emit =
        Some
          (fun pr ->
            vs.(pr.Analysis.Sweep.pr_index) <- pr.Analysis.Sweep.pr_verdict) }
  in
  let o =
    Analysis.Sweep.run cfg ~points
      ~build:(Gpca.Sweep_space.build ~base:small ~req:150 grid)
  in
  (vs, o)

let test_race_verdicts_agree () =
  let pre_vs, pre = run_grid ~prefilter:true ~audit:1 () in
  let base_vs, baseline = run_grid ~prefilter:false ~audit:0 () in
  Alcotest.(check (array (of_pp Fmt.(of_to_string Analysis.Sweep.verdict_name))))
    "identical verdicts" base_vs pre_vs;
  Alcotest.(check (list (pair int string))) "no audit mismatches" []
    pre.Analysis.Sweep.o_audit_mismatches;
  Alcotest.(check bool) "audited everything analytic" true
    (pre.Analysis.Sweep.o_audited
     >= pre.Analysis.Sweep.o_analytic_pass
        + pre.Analysis.Sweep.o_analytic_fail);
  Alcotest.(check bool) "prefilter actually skipped" true
    (pre.Analysis.Sweep.o_skip_rate > 0.);
  Alcotest.(check int) "baseline skips only invalids"
    baseline.Analysis.Sweep.o_invalid
    (baseline.Analysis.Sweep.o_points - baseline.Analysis.Sweep.o_explored);
  (* counters tile the grid *)
  Alcotest.(check int) "counts tile"
    pre.Analysis.Sweep.o_points
    (pre.Analysis.Sweep.o_pass + pre.Analysis.Sweep.o_fail
     + pre.Analysis.Sweep.o_unknown + pre.Analysis.Sweep.o_invalid);
  (* interrupt points collapse the poll axis: the explorer ran on
     strictly fewer keys than undecided points *)
  Alcotest.(check bool) "memo dedup happened" true
    (pre.Analysis.Sweep.o_memo_hits > 0
     || baseline.Analysis.Sweep.o_memo_hits > 0)

let test_pareto_only_pass () =
  let _, pre = run_grid ~prefilter:true ~audit:0 () in
  List.iter
    (fun (i, _) ->
      let grid = grid_of race_axes in
      let s =
        Gpca.Sweep_space.build ~base:small ~req:150 grid i
      in
      Alcotest.(check bool)
        (Printf.sprintf "pareto point %d is valid" i)
        true
        (s.Analysis.Sweep.sp_invalid = None))
    pre.Analysis.Sweep.o_pareto;
  (* no frontier member dominates another *)
  let costs = List.map snd pre.Analysis.Sweep.o_pareto in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a != b then
            Alcotest.(check bool) "frontier is an antichain" false
              (Analysis.Sweep.dominates a b))
        costs)
    costs

(* --- seeded property: lb <= verified sup <= ub --------------------------- *)

(* random Small-base points kept cheap: short periods and polls so each
   exploration finishes in milliseconds *)
let gen_point =
  QCheck.Gen.(
    let* period = oneofl [ 20; 30; 40 ] in
    let* poll = oneofl [ 5; 10; 20 ] in
    let* mech = oneofl [ 0; 1 ] in
    let* signal = oneofl [ 0; 1 ] in
    let* buffer = oneofl [ 1; 2 ] in
    let* policy = oneofl [ 0; 1 ] in
    let* in_dmax = oneofl [ 2; 5 ] in
    let* out_dmax = oneofl [ 5; 10 ] in
    return
      [ ("period", period); ("poll", poll); ("mech", mech);
        ("signal", signal); ("buffer", buffer); ("policy", policy);
        ("in_dmax", in_dmax); ("out_dmax", out_dmax) ])

let arb_point =
  QCheck.make
    ~print:(fun asg ->
      String.concat " "
        (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) asg))
    gen_point

let prop_bounds_bracket_sup =
  QCheck.Test.make ~name:"analytic bounds bracket the verified sup" ~count:12
    arb_point (fun asg ->
      let s = Gpca.Sweep_space.spec_of_assignment ~base:small ~req:60 asg in
      match s.Analysis.Sweep.sp_invalid with
      | Some _ -> QCheck.assume_fail ()
      | None ->
        let r =
          Analysis.Queries.max_delay
            (s.Analysis.Sweep.sp_net ())
            ~trigger:s.Analysis.Sweep.sp_trigger
            ~response:s.Analysis.Sweep.sp_response
            ~ceiling:(s.Analysis.Sweep.sp_ub + 1)
        in
        (match r.Analysis.Queries.dr_sup with
         | Mc.Explorer.Sup (v, _) ->
           (* the lower bound never overshoots, regardless of loss *)
           if v < s.Analysis.Sweep.sp_lb then
             QCheck.Test.fail_reportf "sup %d under analytic lb %d" v
               s.Analysis.Sweep.sp_lb
           (* the upper bound holds whenever the point is loss-free *)
           else if s.Analysis.Sweep.sp_sound && v > s.Analysis.Sweep.sp_ub
           then
             QCheck.Test.fail_reportf "sup %d over analytic ub %d" v
               s.Analysis.Sweep.sp_ub
           else true
         | Mc.Explorer.Sup_exceeds c ->
           if s.Analysis.Sweep.sp_sound then
             QCheck.Test.fail_reportf "sup exceeds %d despite ub %d" c
               s.Analysis.Sweep.sp_ub
           else true
         | Mc.Explorer.Sup_unreached -> true))

let suite =
  [ Alcotest.test_case "grid: parse_axis" `Quick test_parse_axis;
    Alcotest.test_case "grid: make" `Quick test_grid_make;
    Alcotest.test_case "grid: decode" `Quick test_grid_decode;
    Alcotest.test_case "key: dead axes collapse" `Quick
      test_key_collapses_dead_axes;
    Alcotest.test_case "key: live axes separate" `Quick test_key_separates;
    Alcotest.test_case "pareto: dominates" `Quick test_dominates;
    Alcotest.test_case "race: prefilter = explorer" `Slow
      test_race_verdicts_agree;
    Alcotest.test_case "pareto: frontier invariants" `Slow
      test_pareto_only_pass;
    QCheck_alcotest.to_alcotest prop_bounds_bracket_sup ]
