(* Tests for the analytic bounds (Lemma 1/2), the Section-V constraint
   checks, and the verified-delay queries. *)

open Ta

let loc = Model.location
let edge = Model.edge

let scheme ?(input = Scheme.interrupt_input (Scheme.delay 1 3))
    ?(input_comm = Scheme.Buffer (4, Scheme.Read_all))
    ?(invocation = Scheme.Periodic 20) () =
  { Scheme.is_name = "analysis-test";
    is_inputs = [ ("m_a", input) ];
    is_outputs = [ ("c_b", Scheme.pulse_output (Scheme.delay 2 5)) ];
    is_input_comm = input_comm;
    is_output_comm = Scheme.Buffer (4, Scheme.Read_all);
    is_invocation = invocation;
    is_exec = { Scheme.wcet_min = 1; wcet_max = 6 } }

(* --- Lemma 1 ------------------------------------------------------------ *)

let test_input_delay_interrupt_readall () =
  (* 0 detection + 3 processing + 20 period *)
  Alcotest.(check int) "interrupt" 23
    (Analysis.Bounds.input_delay (scheme ()) "m_a")

let test_input_delay_polling () =
  let input = Scheme.polling_input ~interval:7 (Scheme.delay 1 3) in
  (* 7 detection + 3 processing + 20 period *)
  Alcotest.(check int) "polling" 30
    (Analysis.Bounds.input_delay (scheme ~input ()) "m_a")

let test_input_delay_read_one () =
  let s = scheme ~input_comm:(Scheme.Buffer (4, Scheme.Read_one)) () in
  (* 0 + 3 + 4 slots * 20 *)
  Alcotest.(check int) "read-one charges the queue" 83
    (Analysis.Bounds.input_delay s "m_a")

let test_input_delay_aperiodic () =
  let s = scheme ~invocation:(Scheme.Aperiodic 2) () in
  (* 0 + 3 + gap 2 *)
  Alcotest.(check int) "aperiodic" 5 (Analysis.Bounds.input_delay s "m_a")

let test_output_delay () =
  (* visibility 6 (wcet_max) + 5 processing *)
  Alcotest.(check int) "single output" 11
    (Analysis.Bounds.output_delay (scheme ()) "c_b");
  Alcotest.(check int) "queued outputs charge the device" 21
    (Analysis.Bounds.output_delay ~queued_before:2 (scheme ()) "c_b")

let test_lemma2 () =
  Alcotest.(check int) "Delta'mc = Dmi + Doc + internal" (23 + 11 + 100)
    (Analysis.Bounds.relaxed_mc_delay (scheme ()) ~input:"m_a" ~output:"c_b"
       ~internal:100)

let test_detects_all_inputs () =
  Alcotest.(check bool) "fast device" true
    (Analysis.Bounds.detects_all_inputs (scheme ()) "m_a" ~min_interarrival:10);
  Alcotest.(check bool) "slow device" false
    (Analysis.Bounds.detects_all_inputs (scheme ()) "m_a" ~min_interarrival:3)

(* --- constraints ---------------------------------------------------------- *)

(* Burst PIM: two pulses 2 ms apart; with a 1-slot buffer and a slow
   period the second processed input overflows. *)
let burst_pim () =
  let soft =
    Model.automaton ~name:"Soft" ~initial:"S0"
      [ loc "S0"; loc "S1"; loc "S2"; loc "S3" ]
      [ edge ~sync:(Model.Recv "m_a") "S0" "S1";
        edge ~sync:(Model.Recv "m_a") "S1" "S2";
        edge ~sync:(Model.Send "c_b") "S2" "S3" ]
  in
  let env =
    Model.automaton ~name:"Env" ~initial:"E0"
      [ loc ~inv:[ Clockcons.le "e" 0 ] "E0";
        loc ~inv:[ Clockcons.le "e" 2 ] "E1";
        loc "E2"; loc "E3" ]
      [ edge ~sync:(Model.Send "m_a") ~resets:[ "e" ] "E0" "E1";
        edge ~guard:[ Clockcons.eq_ "e" 2 ] ~sync:(Model.Send "m_a") "E1" "E2";
        edge ~sync:(Model.Recv "c_b") "E2" "E3" ]
  in
  let net =
    Model.network ~name:"burst" ~clocks:[ "e" ] ~vars:[]
      ~channels:[ ("m_a", Model.Broadcast); ("c_b", Model.Broadcast) ]
      [ soft; env ]
  in
  Transform.Pim.make net ~software:"Soft" ~environment:"Env"

let statuses results =
  List.map
    (fun (r : Analysis.Constraints.result) ->
      (r.Analysis.Constraints.c_id,
       match r.Analysis.Constraints.c_status with
       | Analysis.Constraints.Satisfied -> "sat"
       | Analysis.Constraints.Violated _ -> "violated"
       | Analysis.Constraints.Unknown _ -> "unknown"))
    results

let test_constraint2_violated_then_repaired () =
  let small =
    { (scheme ~input_comm:(Scheme.Buffer (1, Scheme.Read_all))
         ~input:(Scheme.interrupt_input (Scheme.delay 1 1))
         ~invocation:(Scheme.Periodic 20) ())
      with Scheme.is_exec = { Scheme.wcet_min = 1; wcet_max = 5 } }
  in
  let psm = Transform.psm_of_pim (burst_pim ()) small in
  let results = Analysis.Constraints.check_all psm in
  Alcotest.(check (list (pair int string))) "1-slot buffer overflows"
    [ (1, "sat"); (2, "violated"); (3, "sat"); (4, "sat") ]
    (statuses results);
  Alcotest.(check bool) "not all satisfied" false
    (Analysis.Constraints.all_satisfied results);
  let big = { small with Scheme.is_input_comm = Scheme.Buffer (3, Scheme.Read_all) } in
  let psm2 = Transform.psm_of_pim (burst_pim ()) big in
  Alcotest.(check bool) "3-slot buffer is safe" true
    (Analysis.Constraints.all_satisfied (Analysis.Constraints.check_all psm2))

let test_constraint1_violated_by_slow_device () =
  (* processing 5..8 but pulses 2 apart: the second interrupt hits a busy
     device -> missed-input flag reachable *)
  let slow =
    scheme ~input:(Scheme.interrupt_input (Scheme.delay 5 8))
      ~input_comm:(Scheme.Buffer (3, Scheme.Read_all)) ()
  in
  let psm = Transform.psm_of_pim (burst_pim ()) slow in
  let results = Analysis.Constraints.check_all psm in
  Alcotest.(check (pair int string)) "constraint 1 violated" (1, "violated")
    (List.hd (statuses results))

let test_constraint4_unknown_on_internal_transitions () =
  let soft =
    Model.automaton ~name:"Soft" ~initial:"S0"
      [ loc "S0"; loc "S1"; loc "S2" ]
      [ edge ~sync:(Model.Recv "m_a") "S0" "S1";
        edge "S1" "S2" ]  (* an internal transition *)
  in
  let env =
    Model.automaton ~name:"Env" ~initial:"E0"
      [ loc "E0"; loc "E1" ]
      [ edge ~sync:(Model.Send "m_a") "E0" "E1" ]
  in
  let net =
    Model.network ~name:"tau" ~clocks:[] ~vars:[]
      ~channels:[ ("m_a", Model.Broadcast); ("c_b", Model.Broadcast) ]
      [ soft; env ]
  in
  (* c_b unused by the software: cover it in the scheme anyway *)
  let pim = Transform.Pim.make net ~software:"Soft" ~environment:"Env" in
  let psm = Transform.psm_of_pim pim (scheme ()) in
  let results = Analysis.Constraints.check_all psm in
  Alcotest.(check (pair int string)) "constraint 4 inconclusive" (4, "unknown")
    (List.nth (statuses results) 3)

(* --- queries -------------------------------------------------------------- *)

let test_satisfies_response_bound () =
  let worker =
    Model.automaton ~name:"W" ~initial:"W0"
      [ loc "W0"; loc ~inv:[ Clockcons.le "w" 8 ] "W1"; loc "W2" ]
      [ edge ~sync:(Model.Recv "req") ~resets:[ "w" ] "W0" "W1";
        edge ~guard:[ Clockcons.ge "w" 2 ] ~sync:(Model.Send "resp") "W1" "W2" ]
  in
  let env =
    Model.automaton ~name:"E" ~initial:"E0"
      [ loc "E0"; loc "E1"; loc "E2" ]
      [ edge ~sync:(Model.Send "req") "E0" "E1";
        edge ~sync:(Model.Recv "resp") "E1" "E2" ]
  in
  let net =
    Model.network ~name:"rr" ~clocks:[ "w" ] ~vars:[]
      ~channels:[ ("req", Model.Broadcast); ("resp", Model.Broadcast) ]
      [ worker; env ]
  in
  Alcotest.(check bool) "P(8) holds" true
    (Analysis.Queries.satisfies_response_bound net ~trigger:"req"
       ~response:"resp" ~bound:8
     = Mc.Explorer.Proved);
  (match
     Analysis.Queries.satisfies_response_bound net ~trigger:"req"
       ~response:"resp" ~bound:7
   with
   | Mc.Explorer.Refuted _ -> ()
   | Mc.Explorer.Proved | Mc.Explorer.Unknown _ ->
     Alcotest.fail "P(7) should be refuted");
  (* never-triggered requirement is vacuously true *)
  Alcotest.(check bool) "vacuous" true
    (Analysis.Queries.satisfies_response_bound net ~trigger:"ghost"
       ~response:"resp" ~bound:1
     = Mc.Explorer.Proved)

let suite =
  [ Alcotest.test_case "Lemma 1: interrupt + read-all" `Quick
      test_input_delay_interrupt_readall;
    Alcotest.test_case "Lemma 1: polling" `Quick test_input_delay_polling;
    Alcotest.test_case "Lemma 1: read-one" `Quick test_input_delay_read_one;
    Alcotest.test_case "Lemma 1: aperiodic" `Quick test_input_delay_aperiodic;
    Alcotest.test_case "Lemma 1: output delay" `Quick test_output_delay;
    Alcotest.test_case "Lemma 2" `Quick test_lemma2;
    Alcotest.test_case "constraint 1 analytic side-condition" `Quick
      test_detects_all_inputs;
    Alcotest.test_case "constraint 2 violated then repaired" `Quick
      test_constraint2_violated_then_repaired;
    Alcotest.test_case "constraint 1 violated by slow device" `Quick
      test_constraint1_violated_by_slow_device;
    Alcotest.test_case "constraint 4 unknown on internal transitions" `Quick
      test_constraint4_unknown_on_internal_transitions;
    Alcotest.test_case "response-bound queries" `Quick
      test_satisfies_response_bound ]
