(* Chaos tests of the supervised serve loop, driven entirely in-process
   through scripted read/write callbacks: malformed and hostile input,
   crashing model loaders, per-request deadlines, the error trip wire,
   graceful drain, and the degraded-cache flag.  Every response must be
   well-formed JSON no matter what comes in. *)

let tmp_counter = ref 0

let with_store_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psv_chserve_test_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with _ -> ()) (fun () -> f dir)

let model_text = Chaos_store.model_text
let parse_net = Chaos_store.parse_net

let net = lazy (parse_net model_text)

let load_model name =
  if name = "m" then Ok (Lazy.force net)
  else if name = "boom" then failwith "model loader exploded"
  else Error (Printf.sprintf "unknown model %S" name)

(* Run the loop over a scripted line list; returns the outcome and the
   response lines in order. *)
let run_serve ?(cfg = Analysis.Serve.default_config) ?cache ?drain lines =
  let input = ref lines in
  let out = ref [] in
  let read_line () =
    match !input with
    | [] -> None
    | l :: rest ->
      input := rest;
      Some l
  in
  let write_line s = out := s :: !out in
  let outcome =
    Analysis.Serve.run cfg ?cache ?drain ~load_model ~read_line ~write_line ()
  in
  (outcome, List.rev !out)

let parse_response line =
  match Store.Json.parse line with
  | Ok j -> j
  | Error msg -> Alcotest.failf "response is not JSON (%s): %s" msg line

let member name j =
  match Store.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Store.Json.to_string j)

let str = function
  | Store.Json.String s -> s
  | j -> Alcotest.failf "expected a string, got %s" (Store.Json.to_string j)

let status j = str (member "status" j)

let request ?(model = "m") ~id query =
  Printf.sprintf "{\"id\": %d, \"model\": %S, \"query\": %S}" id model query

(* --- the happy path, batched, with a cache -------------------------------- *)

let test_ok_and_cached () =
  with_store_dir (fun dir ->
      let store =
        match Store.Disk.open_ dir with
        | Ok s -> s
        | Error msg -> Alcotest.failf "open_: %s" msg
      in
      let cache = Analysis.Qcache.make ~warn:(fun _ -> ()) store in
      let outcome, out =
        run_serve ~cache
          [ request ~id:1 "E<> P.Busy";
            "";
            request ~id:2 "E<> P.Busy" ]
      in
      Alcotest.(check int) "two responses" 2 (List.length out);
      Alcotest.(check int) "served" 2 outcome.Analysis.Serve.sv_served;
      Alcotest.(check int) "no errors" 0 outcome.Analysis.Serve.sv_errors;
      Alcotest.(check bool) "stopped at eof" true
        (outcome.Analysis.Serve.sv_stop = Analysis.Serve.Eof);
      let r1 = parse_response (List.nth out 0) in
      let r2 = parse_response (List.nth out 1) in
      Alcotest.(check string) "first ok" "ok" (status r1);
      Alcotest.(check string) "second ok" "ok" (status r2);
      Alcotest.(check bool) "ids echoed" true
        (member "id" r1 = Store.Json.Int 1 && member "id" r2 = Store.Json.Int 2);
      Alcotest.(check bool) "first computed" true
        (member "cached" r1 = Store.Json.Bool false);
      Alcotest.(check bool) "second answered from the store" true
        (member "cached" r2 = Store.Json.Bool true);
      Alcotest.(check bool) "outcome present" true
        (str (member "kind" (member "outcome" r1)) = "holds"))

(* --- the error taxonomy: one bad request, one JSON error, next please ----- *)

let test_error_taxonomy () =
  let outcome, out =
    run_serve
      [ "{oops";
        "{\"id\": 3}";
        request ~id:4 ~model:"nope" "E<> P.Busy";
        request ~id:5 "sup: what even";
        request ~id:6 ~model:"boom" "E<> P.Busy";
        request ~id:7 "E<> Zzz.Qqq";
        request ~id:8 "E<> P.Busy" ]
  in
  Alcotest.(check int) "every line answered" 7 (List.length out);
  Alcotest.(check int) "errors counted" 6 outcome.Analysis.Serve.sv_errors;
  let rs = List.map parse_response out in
  List.iteri
    (fun i r ->
      let expected = if i = 6 then "ok" else "error" in
      Alcotest.(check string) (Printf.sprintf "response %d status" i) expected
        (status r))
    rs;
  let err_of i = str (member "error" (List.nth rs i)) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "parse error reported" true
    (contains (err_of 0) "bad request");
  Alcotest.(check bool) "missing field reported" true
    (contains (err_of 1) "model");
  Alcotest.(check bool) "unknown model reported" true
    (contains (err_of 2) "nope");
  Alcotest.(check bool) "query error reported" true
    (contains (err_of 3) "query");
  (* the crashing loader is confined to its request *)
  Alcotest.(check bool) "loader crash diagnosed" true
    (contains (err_of 4) "exploded");
  (* an eval-time crash (unknown process) is confined to its request *)
  Alcotest.(check bool) "eval crash diagnosed" true
    (contains (err_of 5) "unknown process");
  (* ids still echoed on errors where the request supplied one *)
  Alcotest.(check bool) "error keeps its id" true
    (member "id" (List.nth rs 2) = Store.Json.Int 4);
  (* and the healthy request at the end of the batch still got answered *)
  Alcotest.(check bool) "survivor answered" true
    (member "id" (List.nth rs 6) = Store.Json.Int 8)

(* --- hostile lines: over-long and invalid UTF-8 --------------------------- *)

let test_line_hygiene () =
  let cfg =
    { Analysis.Serve.default_config with
      Analysis.Serve.sv_max_request_bytes = 64 }
  in
  let long = "{\"id\": 1, \"query\": \"" ^ String.make 200 'x' ^ "\"}" in
  let bad_utf8 = "{\"model\": \"\xff\xfe\x80\", \"query\": \"E<> P.Busy\"}" in
  let outcome, out = run_serve ~cfg [ long; bad_utf8 ] in
  Alcotest.(check int) "both rejected" 2 outcome.Analysis.Serve.sv_errors;
  let rs = List.map parse_response out in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "over-long diagnosed" true
    (contains (str (member "error" (List.nth rs 0))) "too long");
  Alcotest.(check bool) "bad encoding diagnosed" true
    (contains (str (member "error" (List.nth rs 1))) "UTF-8");
  (* whatever the input was, the output stream stays valid UTF-8 *)
  List.iter
    (fun line ->
      Alcotest.(check bool) "response is valid UTF-8" true
        (Analysis.Serve.utf8_valid line))
    out

(* --- per-request deadline -------------------------------------------------- *)

let test_request_timeout () =
  let cfg =
    { Analysis.Serve.default_config with
      Analysis.Serve.sv_request_timeout = Some 1e-9 }
  in
  let _, out = run_serve ~cfg [ request ~id:9 "E<> P.Busy" ] in
  let r = parse_response (List.hd out) in
  Alcotest.(check string) "an overrun is an answer, not an error" "ok"
    (status r);
  let o = member "outcome" r in
  Alcotest.(check string) "diagnosed unknown" "unknown"
    (str (member "kind" o));
  Alcotest.(check string) "with the time-budget reason" "time-budget"
    (str (member "tag" (member "reason" o)))

(* --- the error trip wire --------------------------------------------------- *)

let test_max_errors () =
  let cfg =
    { Analysis.Serve.default_config with
      Analysis.Serve.sv_max_errors = Some 1 }
  in
  let outcome, out =
    run_serve ~cfg
      [ "{bad"; "{worse"; ""; request ~id:1 "E<> P.Busy" ]
  in
  Alcotest.(check bool) "stopped by the trip wire" true
    (outcome.Analysis.Serve.sv_stop = Analysis.Serve.Error_limit);
  Alcotest.(check int) "the tripping batch was still answered in full" 2
    (List.length out);
  Alcotest.(check int) "errors" 2 outcome.Analysis.Serve.sv_errors;
  (* the request after the trip was never served *)
  Alcotest.(check int) "served" 2 outcome.Analysis.Serve.sv_served

(* --- graceful drain -------------------------------------------------------- *)

let test_drain () =
  let d = Analysis.Serve.drain () in
  let input = ref [ request ~id:1 "E<> P.Busy"; "" ] in
  let out = ref [] in
  let read_line () =
    match !input with
    | l :: rest ->
      input := rest;
      Some l
    | [] ->
      (* the signal arrives while we wait for more input *)
      Analysis.Serve.request_drain d;
      None
  in
  let outcome =
    Analysis.Serve.run Analysis.Serve.default_config ~drain:d ~load_model
      ~read_line
      ~write_line:(fun s -> out := s :: !out)
      ()
  in
  Alcotest.(check bool) "drained, not eof" true
    (outcome.Analysis.Serve.sv_stop = Analysis.Serve.Drained);
  Alcotest.(check int) "the flushed batch was answered" 1
    (List.length !out);
  Alcotest.(check string) "and answered correctly" "ok"
    (status (parse_response (List.hd !out)))

(* --- degraded cache is visible in every response --------------------------- *)

let test_degraded_flag () =
  with_store_dir (fun dir ->
      let store =
        match Store.Disk.open_ dir with
        | Ok s -> s
        | Error msg -> Alcotest.failf "open_: %s" msg
      in
      let breaker = Fault.Breaker.create ~threshold:1 () in
      Fault.Breaker.failure breaker;
      let cache =
        Analysis.Qcache.make ~warn:(fun _ -> ()) ~breaker store
      in
      let _, out = run_serve ~cache [ request ~id:1 "E<> P.Busy" ] in
      let r = parse_response (List.hd out) in
      Alcotest.(check string) "still answers" "ok" (status r);
      Alcotest.(check bool) "carries the degraded flag" true
        (member "degraded" r = Store.Json.Bool true))

let suite =
  [ Alcotest.test_case "ok and cached" `Quick test_ok_and_cached;
    Alcotest.test_case "error taxonomy" `Quick test_error_taxonomy;
    Alcotest.test_case "line hygiene" `Quick test_line_hygiene;
    Alcotest.test_case "request timeout" `Quick test_request_timeout;
    Alcotest.test_case "max errors trip wire" `Quick test_max_errors;
    Alcotest.test_case "graceful drain" `Quick test_drain;
    Alcotest.test_case "degraded flag" `Quick test_degraded_flag ]
