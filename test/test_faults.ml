(* Tests of the simulator's fault-injection mode.  Two invariants matter:
   a [None] fault profile changes nothing (draw-for-draw determinism),
   and no profile — however degraded — can push a measured Input-Delay
   below the scheme's analytic lower bound (jitter only stretches). *)

let params = Gpca.Params.default
let scheme = Gpca.Params.scheme params

let config ~request_time =
  Gpca.Experiment.scenario_config params ~request_time

let count_events log pred = Sim.Measure.count log pred

let test_no_faults_identical () =
  let config = config ~request_time:123.0 in
  let plain = Sim.Engine.run ~seed:3 config in
  let zeroed =
    Sim.Engine.run ~seed:3
      ~faults:(Sim.Engine.faults ~jitter:0.0 ~drop:0.0 ~dup:0.0 ())
      config
  in
  Alcotest.(check int) "same length" (List.length plain) (List.length zeroed);
  Alcotest.(check bool) "a zeroed profile is draw-for-draw identical" true
    (plain = zeroed)

let test_fault_determinism () =
  let config = config ~request_time:200.0 in
  let faults = Sim.Engine.faults ~seed:11 ~jitter:0.7 ~drop:0.2 ~dup:0.2 () in
  let a = Sim.Engine.run ~seed:5 ~faults config in
  let b = Sim.Engine.run ~seed:5 ~faults config in
  Alcotest.(check bool) "same seeds, same degraded log" true (a = b)

let test_drop_all () =
  let config = config ~request_time:150.0 in
  let log =
    Sim.Engine.run ~seed:4 ~faults:(Sim.Engine.faults ~drop:1.0 ()) config
  in
  Alcotest.(check int) "nothing is ever read" 0
    (count_events log (function
       | Sim.Engine.Input_read _ -> true
       | _ -> false));
  Alcotest.(check bool) "every signal is recorded lost" true
    (count_events log (function
       | Sim.Engine.Input_lost _ -> true
       | _ -> false)
     = count_events log (function
         | Sim.Engine.Env_signal _ -> true
         | _ -> false))

let test_builder_validates () =
  let invalid f =
    match f () with
    | _ -> Alcotest.fail "invalid fault profile accepted"
    | exception Invalid_argument _ -> ()
  in
  invalid (fun () -> Sim.Engine.faults ~jitter:(-0.1) ());
  invalid (fun () -> Sim.Engine.faults ~drop:1.5 ());
  invalid (fun () -> Sim.Engine.faults ~dup:(-0.2) ())

(* The property behind the robustness bench: fault-injected input delays
   never undercut Lemma 1's analytic lower bound, because jitter only
   ever stretches a device delay and drop/dup act before the device. *)
let prop_input_delay_lower_bound =
  let floor_in =
    float_of_int (Analysis.Bounds.input_delay_min scheme Gpca.Model.bolus_req)
  in
  QCheck.Test.make ~count:60
    ~name:"fault-injected input delays respect the analytic lower bound"
    QCheck.(
      quad (float_bound_inclusive 1.0) (float_bound_inclusive 0.5)
        (float_bound_inclusive 0.5) small_nat)
    (fun (jitter, drop, dup, seed) ->
      let faults = Sim.Engine.faults ~seed ~jitter ~drop ~dup () in
      let log =
        Sim.Engine.run ~seed:(seed + 1) ~faults
          (config ~request_time:(100.0 +. float_of_int (seed mod 50)))
      in
      let samples =
        Sim.Measure.samples log ~trigger:Gpca.Model.bolus_req
          ~response:Gpca.Model.start_infusion
      in
      List.for_all
        (fun s ->
          match Sim.Measure.input_delay s with
          | Some d -> d >= floor_in
          | None -> true)
        samples)

let suite =
  [ Alcotest.test_case "no faults is byte-identical" `Quick
      test_no_faults_identical;
    Alcotest.test_case "fault stream is deterministic" `Quick
      test_fault_determinism;
    Alcotest.test_case "drop probability 1 loses every input" `Quick
      test_drop_all;
    Alcotest.test_case "builder validates its arguments" `Quick
      test_builder_validates;
    QCheck_alcotest.to_alcotest prop_input_delay_lower_bound ]
