(* Chaos testing of the incremental ladder: seeded random edit
   sequences (constant tweaks, guard relation flips, automaton
   add/remove) driven through {!Incr.Session.run}, every step compared
   against a from-scratch sequential {!Mc.Query.eval}.

   The bar per rung:
   - [Delta] and [Full] answers must be byte-equal to scratch as Entry
     JSON — outcome, sup AND statistics;
   - [Store_hit] and [Cone_hit] answers carry the producing run's
     statistics by design, so they are compared on verdict kind and sup
     only. *)

module M = Ta.Model
module Q = Mc.Query

let query text =
  match Q.parse text with
  | Ok q -> q
  | Error msg -> Alcotest.failf "bad query %S: %s" text msg

let result_json (r : Q.result) =
  Store.Json.to_string
    (Store.Json.Obj
       [ ("outcome",
          Store.Entry.outcome_to_json
            (Analysis.Qcache.outcome_to_entry r.Q.res_outcome));
         ("stats",
          Store.Entry.stats_to_json
            (Analysis.Qcache.stats_to_entry r.Q.res_stats)) ])

let outcome_kind (r : Q.result) =
  match r.Q.res_outcome with
  | Q.Holds -> "holds"
  | Q.Fails _ -> "fails"
  | Q.Sup Mc.Explorer.Sup_unreached -> "sup-unreached"
  | Q.Sup (Mc.Explorer.Sup (v, strict)) ->
    Printf.sprintf "sup%s%d" (if strict then "<" else "=") v
  | Q.Sup (Mc.Explorer.Sup_exceeds c) -> Printf.sprintf "sup>%d" c
  | Q.Unknown _ -> "unknown"

(* --- model zoo --------------------------------------------------------- *)

let ping_pong =
  let sender =
    M.automaton ~name:"Sender" ~initial:"Idle"
      [ M.location ~inv:[ Ta.Clockcons.le "x" 10 ] "Idle"; M.location "Work" ]
      [ M.edge ~guard:[ Ta.Clockcons.ge "x" 2 ] ~sync:(M.Send "c")
          ~resets:[ "x" ] "Idle" "Work";
        M.edge ~guard:[ Ta.Clockcons.ge "x" 1 ] ~resets:[ "x" ] "Work" "Idle" ]
  and receiver =
    M.automaton ~name:"Receiver" ~initial:"Wait"
      [ M.location "Wait"; M.location ~inv:[ Ta.Clockcons.le "r" 7 ] "Busy" ]
      [ M.edge ~sync:(M.Recv "c") ~resets:[ "r" ]
          ~updates:[ ("v", Ta.Expr.int 1) ]
          "Wait" "Busy";
        M.edge ~guard:[ Ta.Clockcons.ge "r" 3 ] ~sync:(M.Send "d") "Busy"
          "Wait" ]
  in
  M.network ~name:"pingpong" ~clocks:[ "x"; "r" ]
    ~vars:[ ("v", M.flag ()) ]
    ~channels:[ ("c", M.Binary); ("d", M.Broadcast) ]
    [ sender; receiver ]

let gpca_net () =
  Gpca.Model.network ~variant:Gpca.Model.Bolus_only Gpca.Params.default

(* Each case: a base network and the queries chased across its edits. *)
let cases =
  [ ("pingpong-reach", ping_pong, [ "E<> Receiver.Busy"; "A[] v == 0" ]);
    ("pingpong-sup", ping_pong,
     [ "sup: c -> d ceiling 100"; "bounded: c -> d within 50" ]);
    ("gpca-bolus", gpca_net (),
     [ Printf.sprintf "bounded: %s -> %s within %d" Gpca.Model.bolus_req
         Gpca.Model.start_infusion Gpca.Params.req1_bound ])
  ]

(* --- one sequence ------------------------------------------------------ *)

let run_sequence ~seed ~steps (name, base, qtexts) =
  let rng = Random.State.make [| 0x1AC2; seed |] in
  let queries = List.map query qtexts in
  let sess = Incr.Session.make ~tag:(Printf.sprintf "chaos-%s-%d" name seed) () in
  let net = ref base in
  for step = 0 to steps - 1 do
    (if step > 0 then
       let edit = Incr.Edit.random_edit rng !net in
       net := edit.Incr.Edit.ed_net);
    List.iter
      (fun q ->
        let o = Incr.Session.run sess !net q in
        let scratch = Q.eval ~jobs:1 !net q in
        let where =
          Printf.sprintf "%s seed=%d step=%d rung=%s q=%s" name seed step
            (Incr.Session.rung_name o.Incr.Session.so_rung)
            (Q.to_string q)
        in
        match o.Incr.Session.so_rung with
        | Incr.Session.Delta | Incr.Session.Full ->
          Alcotest.(check string) where (result_json scratch)
            (result_json o.Incr.Session.so_result)
        | Incr.Session.Store_hit | Incr.Session.Cone_hit ->
          Alcotest.(check string) where (outcome_kind scratch)
            (outcome_kind o.Incr.Session.so_result))
      queries
  done

(* 60 sequences in total: 20 seeds for each of the two toy cases and 20
   for the GPCA case, 6 edits each — every step checks every query of
   the case against scratch. *)
let test_sequences case () =
  for seed = 1 to 20 do
    run_sequence ~seed ~steps:6 case
  done

(* The same chase through a disk-backed session, exercising the store
   and cone rungs plus the persistence round-trip mid-sequence. *)
let tmp_counter = ref 0

let with_store_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psv_chaos_incr_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with _ -> ()) (fun () -> f dir)

let test_cached_sequences () =
  with_store_dir (fun dir ->
      let disk =
        match Store.Disk.open_ dir with
        | Ok d -> d
        | Error msg -> Alcotest.failf "open store: %s" msg
      in
      let cache = Analysis.Qcache.make disk in
      let q = query "E<> Receiver.Busy" in
      for seed = 100 to 109 do
        let rng = Random.State.make [| 0x1AC2; seed |] in
        let tag = Printf.sprintf "chaos-cached-%d" seed in
        let net = ref ping_pong in
        let sess = ref (Incr.Session.make ~cache ~tag ()) in
        for step = 0 to 5 do
          (if step > 0 then
             let edit = Incr.Edit.random_edit rng !net in
             net := edit.Incr.Edit.ed_net);
          (* every other step simulates a process restart: a fresh
             session over the same store must resume from disk *)
          if step mod 2 = 1 then sess := Incr.Session.make ~cache ~tag ();
          let o = Incr.Session.run !sess !net q in
          let scratch = Q.eval ~jobs:1 !net q in
          let where =
            Printf.sprintf "cached seed=%d step=%d rung=%s" seed step
              (Incr.Session.rung_name o.Incr.Session.so_rung)
          in
          match o.Incr.Session.so_rung with
          | Incr.Session.Delta | Incr.Session.Full ->
            Alcotest.(check string) where (result_json scratch)
              (result_json o.Incr.Session.so_result)
          | Incr.Session.Store_hit | Incr.Session.Cone_hit ->
            Alcotest.(check string) where (outcome_kind scratch)
              (outcome_kind o.Incr.Session.so_result)
        done
      done;
      (* the persisted sessions all verify *)
      let fsck = Store.Session.fsck disk in
      Alcotest.(check (list (pair string string))) "all sessions verify" []
        fsck.Store.Session.sk_bad)

let suite =
  List.map
    (fun ((name, _, _) as case) ->
      Alcotest.test_case (name ^ " x20 seeds") `Slow (test_sequences case))
    cases
  @ [ Alcotest.test_case "cached+restart x10 seeds" `Slow
        test_cached_sequences ]
