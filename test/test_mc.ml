(* Tests of the zone-graph explorer on small hand-built networks whose
   behavior can be computed by hand. *)

open Ta

let loc = Model.location
let edge = Model.edge

(* One automaton: A (inv x <= 10) --[x >= lo]--> B. *)
let one_step ~lo =
  let a =
    Model.automaton ~name:"P" ~initial:"A"
      [ loc ~inv:[ Clockcons.le "x" 10 ] "A"; loc "B" ]
      [ edge ~guard:[ Clockcons.ge "x" lo ] "A" "B" ]
  in
  Model.network ~name:"one-step" ~clocks:[ "x" ] ~vars:[] ~channels:[] [ a ]

let test_reach_within_invariant () =
  let t = Mc.Explorer.make (one_step ~lo:5) in
  let r = Mc.Explorer.reachable t (Mc.Explorer.at t ~aut:"P" ~loc:"B") in
  Alcotest.(check bool) "B reachable" true (r.Mc.Explorer.r_trace <> None)

let test_invariant_blocks () =
  let t = Mc.Explorer.make (one_step ~lo:11) in
  let r = Mc.Explorer.reachable t (Mc.Explorer.at t ~aut:"P" ~loc:"B") in
  Alcotest.(check bool) "B unreachable past invariant" true
    (r.Mc.Explorer.r_trace = None)

let test_boundary_reachable () =
  (* Guard exactly at the invariant boundary is still reachable. *)
  let t = Mc.Explorer.make (one_step ~lo:10) in
  let r = Mc.Explorer.reachable t (Mc.Explorer.at t ~aut:"P" ~loc:"B") in
  Alcotest.(check bool) "boundary reachable" true (r.Mc.Explorer.r_trace <> None)

(* Two automata on a binary channel; the receiver guards with a clock. *)
let binary_net ~receiver_lo =
  let sender =
    Model.automaton ~name:"S" ~initial:"S0"
      [ loc ~inv:[ Clockcons.le "x" 3 ] "S0"; loc "S1" ]
      [ edge ~sync:(Model.Send "go") "S0" "S1" ]
  in
  let receiver =
    Model.automaton ~name:"R" ~initial:"R0"
      [ loc "R0"; loc "R1" ]
      [ edge
          ~guard:[ Clockcons.ge "y" receiver_lo ]
          ~sync:(Model.Recv "go") "R0" "R1" ]
  in
  Model.network ~name:"binary" ~clocks:[ "x"; "y" ]
    ~vars:[]
    ~channels:[ ("go", Model.Binary) ]
    [ sender; receiver ]

let test_binary_sync () =
  let t = Mc.Explorer.make (binary_net ~receiver_lo:2) in
  let r = Mc.Explorer.reachable t (Mc.Explorer.at t ~aut:"R" ~loc:"R1") in
  Alcotest.(check bool) "handshake happens" true (r.Mc.Explorer.r_trace <> None);
  (* Both participants move atomically. *)
  let both st =
    Mc.Explorer.at t ~aut:"R" ~loc:"R1" st
    && Mc.Explorer.at t ~aut:"S" ~loc:"S0" st
  in
  let r2 = Mc.Explorer.reachable t both in
  Alcotest.(check bool) "no half-synchronisation" true
    (r2.Mc.Explorer.r_trace = None)

let test_binary_sync_blocked () =
  (* Receiver needs y >= 5 but sender's invariant forces go before x <= 3;
     both clocks advance together from 0 so the sync can never happen and
     the sender is stuck: S1 unreachable. *)
  let t = Mc.Explorer.make (binary_net ~receiver_lo:5) in
  let r = Mc.Explorer.reachable t (Mc.Explorer.at t ~aut:"S" ~loc:"S1") in
  Alcotest.(check bool) "sync blocked by receiver guard" true
    (r.Mc.Explorer.r_trace = None)

(* Broadcast: sender proceeds regardless; enabled receivers join. *)
let broadcast_net ~listening =
  let sender =
    Model.automaton ~name:"S" ~initial:"S0"
      [ loc "S0"; loc "S1" ]
      [ edge ~sync:(Model.Send "b") "S0" "S1" ]
  in
  let receiver =
    Model.automaton ~name:"R" ~initial:"R0"
      [ loc "R0"; loc "R1" ]
      [ edge
          ~pred:(if listening then Expr.True else Expr.False)
          ~sync:(Model.Recv "b") "R0" "R1" ]
  in
  Model.network ~name:"broadcast" ~clocks:[] ~vars:[]
    ~channels:[ ("b", Model.Broadcast) ]
    [ sender; receiver ]

let test_broadcast_delivery () =
  let t = Mc.Explorer.make (broadcast_net ~listening:true) in
  let got st =
    Mc.Explorer.at t ~aut:"S" ~loc:"S1" st && Mc.Explorer.at t ~aut:"R" ~loc:"R1" st
  in
  let r = Mc.Explorer.reachable t got in
  Alcotest.(check bool) "receiver joins broadcast" true
    (r.Mc.Explorer.r_trace <> None);
  (* The enabled receiver *must* participate: S1 with R still at R0 is
     unreachable. *)
  let skipped st =
    Mc.Explorer.at t ~aut:"S" ~loc:"S1" st && Mc.Explorer.at t ~aut:"R" ~loc:"R0" st
  in
  let r2 = Mc.Explorer.reachable t skipped in
  Alcotest.(check bool) "enabled receiver cannot be skipped" true
    (r2.Mc.Explorer.r_trace = None)

let test_broadcast_nonblocking () =
  let t = Mc.Explorer.make (broadcast_net ~listening:false) in
  let r = Mc.Explorer.reachable t (Mc.Explorer.at t ~aut:"S" ~loc:"S1") in
  Alcotest.(check bool) "send proceeds without receiver" true
    (r.Mc.Explorer.r_trace <> None)

(* Committed locations take priority over other automata's moves. *)
let committed_net () =
  let hot =
    Model.automaton ~name:"Hot" ~initial:"H0"
      [ loc "H0"; loc ~kind:Model.Committed "H1"; loc "H2" ]
      [ edge ~updates:[ ("step", Expr.int 1) ] "H0" "H1";
        edge ~updates:[ ("step", Expr.int 2) ] "H1" "H2" ]
  in
  let other =
    Model.automaton ~name:"Other" ~initial:"O0"
      [ loc "O0"; loc "O1" ]
      [ edge
          ~pred:(Expr.var_eq "step" 1)
          ~updates:[ ("interleaved", Expr.int 1) ]
          "O0" "O1" ]
  in
  Model.network ~name:"committed" ~clocks:[]
    ~vars:[ ("step", Model.int_var 0); ("interleaved", Model.flag ()) ]
    ~channels:[] [ hot; other ]

let test_committed_atomicity () =
  let t = Mc.Explorer.make (committed_net ()) in
  (* Other can only move while step = 1, i.e. while Hot sits in the
     committed H1 — which the committed semantics forbids. *)
  let interleaved st = Mc.Explorer.var_value t "interleaved" st = 1 in
  let r = Mc.Explorer.reachable t interleaved in
  Alcotest.(check bool) "no interleaving through committed" true
    (r.Mc.Explorer.r_trace = None);
  let done_ st = Mc.Explorer.at t ~aut:"Hot" ~loc:"H2" st in
  let r2 = Mc.Explorer.reachable t done_ in
  Alcotest.(check bool) "committed sequence completes" true
    (r2.Mc.Explorer.r_trace <> None)

(* Urgent locations stop time: a clock guard needing delay is unreachable. *)
let test_urgent_blocks_delay () =
  let a =
    Model.automaton ~name:"U" ~initial:"U0"
      [ loc ~kind:Model.Urgent "U0"; loc "U1" ]
      [ edge ~guard:[ Clockcons.ge "x" 1 ] "U0" "U1" ]
  in
  let net =
    Model.network ~name:"urgent" ~clocks:[ "x" ] ~vars:[] ~channels:[] [ a ]
  in
  let t = Mc.Explorer.make net in
  let r = Mc.Explorer.reachable t (Mc.Explorer.at t ~aut:"U" ~loc:"U1") in
  Alcotest.(check bool) "no delay in urgent location" true
    (r.Mc.Explorer.r_trace = None)

(* Bounded integer variables: counting to three. *)
let test_counter () =
  let a =
    Model.automaton ~name:"C" ~initial:"L"
      [ loc "L"; loc "Done" ]
      [ edge
          ~pred:Expr.(lt (var "n") (int 3))
          ~updates:[ ("n", Expr.(var "n" + int 1)) ]
          "L" "L";
        edge ~pred:(Expr.var_eq "n" 3) "L" "Done" ]
  in
  let net =
    Model.network ~name:"counter" ~clocks:[]
      ~vars:[ ("n", Model.int_var ~min:0 ~max:3 0) ]
      ~channels:[] [ a ]
  in
  let t = Mc.Explorer.make net in
  let r =
    Mc.Explorer.reachable t (fun st ->
        Mc.Explorer.at t ~aut:"C" ~loc:"Done" st
        && Mc.Explorer.var_value t "n" st = 3)
  in
  (match r.Mc.Explorer.r_trace with
   | Some steps -> Alcotest.(check int) "trace length" 4 (List.length steps)
   | None -> Alcotest.fail "counter never completed")

(* sup-query through a delay monitor: the classic request/response chain.
   Env sends req at any time; worker responds within [2, 8]. *)
let req_resp_net ~lo ~hi =
  let env =
    Model.automaton ~name:"Env" ~initial:"E0"
      [ loc "E0"; loc "E1"; loc "E2" ]
      [ edge ~sync:(Model.Send "req") ~resets:[ "e" ] "E0" "E1";
        edge ~sync:(Model.Recv "resp") "E1" "E2" ]
  in
  let worker =
    Model.automaton ~name:"W" ~initial:"W0"
      [ loc "W0"; loc ~inv:[ Clockcons.le "w" hi ] "W1"; loc "W2" ]
      [ edge ~sync:(Model.Recv "req") ~resets:[ "w" ] "W0" "W1";
        edge
          ~guard:[ Clockcons.ge "w" lo ]
          ~sync:(Model.Send "resp") "W1" "W2" ]
  in
  Model.network ~name:"req-resp" ~clocks:[ "e"; "w" ]
    ~vars:[]
    ~channels:[ ("req", Model.Broadcast); ("resp", Model.Broadcast) ]
    [ env; worker ]

let test_sup_delay () =
  let monitor =
    Mc.Monitor.delay ~trigger:"req" ~response:"resp" ~clock:"mon" ~ceiling:100 ()
  in
  let t = Mc.Explorer.make ~monitor (req_resp_net ~lo:2 ~hi:8) in
  let sup =
    (Mc.Explorer.sup_clock t ~pred:(Mc.Explorer.mon_in t "Waiting")
       ~clock:"mon").Mc.Explorer.so_sup
  in
  (match sup with
   | Mc.Explorer.Sup (v, strict) ->
     Alcotest.(check int) "max delay is the invariant bound" 8 v;
     Alcotest.(check bool) "inclusive" false strict
   | Mc.Explorer.Sup_unreached -> Alcotest.fail "monitor never triggered"
   | Mc.Explorer.Sup_exceeds _ -> Alcotest.fail "bounded delay reported unbounded")

(* As [req_resp_net] but without any invariant on W1: the response may be
   postponed forever. *)
let req_resp_unbounded ~lo =
  let env =
    Model.automaton ~name:"Env" ~initial:"E0"
      [ loc "E0"; loc "E1"; loc "E2" ]
      [ edge ~sync:(Model.Send "req") ~resets:[ "e" ] "E0" "E1";
        edge ~sync:(Model.Recv "resp") "E1" "E2" ]
  in
  let worker =
    Model.automaton ~name:"W" ~initial:"W0"
      [ loc "W0"; loc "W1"; loc "W2" ]
      [ edge ~sync:(Model.Recv "req") ~resets:[ "w" ] "W0" "W1";
        edge
          ~guard:[ Clockcons.ge "w" lo ]
          ~sync:(Model.Send "resp") "W1" "W2" ]
  in
  Model.network ~name:"req-resp-unbounded" ~clocks:[ "e"; "w" ]
    ~vars:[]
    ~channels:[ ("req", Model.Broadcast); ("resp", Model.Broadcast) ]
    [ env; worker ]

let test_sup_unbounded_reported () =
  let monitor =
    Mc.Monitor.delay ~trigger:"req" ~response:"resp" ~clock:"mon" ~ceiling:50 ()
  in
  let t = Mc.Explorer.make ~monitor (req_resp_unbounded ~lo:2) in
  let sup =
    (Mc.Explorer.sup_clock t ~pred:(Mc.Explorer.mon_in t "Waiting")
       ~clock:"mon").Mc.Explorer.so_sup
  in
  (match sup with
   | Mc.Explorer.Sup_exceeds _ -> ()
   | Mc.Explorer.Sup (v, _) ->
     Alcotest.failf "expected ceiling overflow, got %d" v
   | Mc.Explorer.Sup_unreached -> Alcotest.fail "monitor never triggered")

let test_sup_lower_bound_exact () =
  (* With lo = hi the delay is deterministic. *)
  let monitor =
    Mc.Monitor.delay ~trigger:"req" ~response:"resp" ~clock:"mon" ~ceiling:100 ()
  in
  let t = Mc.Explorer.make ~monitor (req_resp_net ~lo:5 ~hi:5) in
  let sup =
    (Mc.Explorer.sup_clock t ~pred:(Mc.Explorer.mon_in t "Waiting")
       ~clock:"mon").Mc.Explorer.so_sup
  in
  (match sup with
   | Mc.Explorer.Sup (v, _) -> Alcotest.(check int) "deterministic delay" 5 v
   | _ -> Alcotest.fail "expected a bounded sup")

let test_safe () =
  let t = Mc.Explorer.make (one_step ~lo:5) in
  let v, _ = Mc.Explorer.safe t (Mc.Explorer.at t ~aut:"P" ~loc:"B") in
  (match v with
   | Mc.Explorer.Refuted (Some trace) ->
     Alcotest.(check bool) "counterexample non-empty" true (trace <> [])
   | Mc.Explorer.Refuted None -> Alcotest.fail "refutation lost its trace"
   | Mc.Explorer.Proved | Mc.Explorer.Unknown _ ->
     Alcotest.fail "B is reachable so not safe");
  let t2 = Mc.Explorer.make (one_step ~lo:11) in
  let v2, _ = Mc.Explorer.safe t2 (Mc.Explorer.at t2 ~aut:"P" ~loc:"B") in
  Alcotest.(check bool) "B unreachable so safe" true (v2 = Mc.Explorer.Proved)

let test_search_limit () =
  (* An unbounded counter would explode; the limit must interrupt the
     search with a three-valued answer, not an exception. *)
  let a =
    Model.automaton ~name:"C" ~initial:"L"
      [ loc "L" ]
      [ edge
          ~pred:Expr.(lt (var "n") (int 100_000))
          ~updates:[ ("n", Expr.(var "n" + int 1)) ]
          "L" "L" ]
  in
  let net =
    Model.network ~name:"big" ~clocks:[]
      ~vars:[ ("n", Model.int_var ~min:0 ~max:100_000 0) ]
      ~channels:[] [ a ]
  in
  let t = Mc.Explorer.make ~limit:50 net in
  let r = Mc.Explorer.reachable t (fun _ -> false) in
  Alcotest.(check bool) "interrupted at the state limit" true
    (r.Mc.Explorer.r_interrupt = Some (Mc.Runctl.State_budget 50));
  Alcotest.(check bool) "no witness claimed" true (r.Mc.Explorer.r_trace = None);
  Alcotest.(check bool) "visited stopped at the limit" true
    (r.Mc.Explorer.r_stats.Mc.Explorer.visited <= 50)

let suite =
  [ Alcotest.test_case "reach within invariant" `Quick
      test_reach_within_invariant;
    Alcotest.test_case "invariant blocks guard" `Quick test_invariant_blocks;
    Alcotest.test_case "boundary guard reachable" `Quick
      test_boundary_reachable;
    Alcotest.test_case "binary sync" `Quick test_binary_sync;
    Alcotest.test_case "binary sync blocked" `Quick test_binary_sync_blocked;
    Alcotest.test_case "broadcast delivery" `Quick test_broadcast_delivery;
    Alcotest.test_case "broadcast non-blocking" `Quick
      test_broadcast_nonblocking;
    Alcotest.test_case "committed atomicity" `Quick test_committed_atomicity;
    Alcotest.test_case "urgent blocks delay" `Quick test_urgent_blocks_delay;
    Alcotest.test_case "bounded counter" `Quick test_counter;
    Alcotest.test_case "sup delay query" `Quick test_sup_delay;
    Alcotest.test_case "sup reports unbounded" `Quick
      test_sup_unbounded_reported;
    Alcotest.test_case "sup deterministic delay" `Quick
      test_sup_lower_bound_exact;
    Alcotest.test_case "safe query" `Quick test_safe;
    Alcotest.test_case "search limit" `Quick test_search_limit ]
