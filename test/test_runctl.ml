(* Tests of the run-governance layer: budgets, cancellation, and the
   checkpoint/resume round-trip.  The key invariant: an interrupted
   search resumed from its snapshot ends in exactly the same verdict and
   state counts as an uninterrupted run. *)

open Ta

let loc = Model.location
let edge = Model.edge

(* A 100k-state discrete counter: enough room for any budget to fire. *)
let big_net () =
  let a =
    Model.automaton ~name:"C" ~initial:"L"
      [ loc "L" ]
      [ edge
          ~pred:Expr.(lt (var "n") (int 100_000))
          ~updates:[ ("n", Expr.(var "n" + int 1)) ]
          "L" "L" ]
  in
  Model.network ~name:"big" ~clocks:[]
    ~vars:[ ("n", Model.int_var ~min:0 ~max:100_000 0) ]
    ~channels:[] [ a ]

let state_budget n =
  { Mc.Runctl.no_budget with Mc.Runctl.b_states = Some n }

let test_state_budget_unknown () =
  let ctl = Mc.Runctl.create ~budget:(state_budget 100) () in
  let t = Mc.Explorer.make (big_net ()) in
  let r = Mc.Explorer.reachable ~ctl t (fun _ -> false) in
  Alcotest.(check bool) "interrupted with the state-budget reason" true
    (r.Mc.Explorer.r_interrupt = Some (Mc.Runctl.State_budget 100));
  let st = r.Mc.Explorer.r_stats in
  Alcotest.(check bool) "partial stats are sane" true
    (st.Mc.Explorer.visited <= 100
     && st.Mc.Explorer.stored > 0
     && st.Mc.Explorer.frontier > 0)

let test_time_budget_unknown () =
  (* a zero wall-clock budget fires on the very first check *)
  let ctl =
    Mc.Runctl.create
      ~budget:{ Mc.Runctl.no_budget with Mc.Runctl.b_time_s = Some 0.0 }
      ()
  in
  let t = Mc.Explorer.make (big_net ()) in
  let r = Mc.Explorer.reachable ~ctl t (fun _ -> false) in
  (match r.Mc.Explorer.r_interrupt with
   | Some (Mc.Runctl.Time_budget _) -> ()
   | other ->
     Alcotest.failf "expected a time-budget interrupt, got %a"
       Fmt.(option Mc.Runctl.pp_reason)
       other);
  Alcotest.(check bool) "no witness claimed" true
    (r.Mc.Explorer.r_trace = None)

let test_cancellation () =
  let ctl = Mc.Runctl.create () in
  Mc.Runctl.cancel ctl;
  let t = Mc.Explorer.make (big_net ()) in
  let r = Mc.Explorer.reachable ~ctl t (fun _ -> false) in
  Alcotest.(check bool) "cancelled before the first expansion" true
    (r.Mc.Explorer.r_interrupt = Some Mc.Runctl.Cancelled);
  Alcotest.(check bool) "nothing visited" true
    (r.Mc.Explorer.r_stats.Mc.Explorer.visited = 0)

let test_parse_duration () =
  let ok s expected =
    match Mc.Runctl.parse_duration s with
    | Ok v -> Alcotest.(check (float 1e-9)) s expected v
    | Error msg -> Alcotest.failf "parse_duration %S: %s" s msg
  in
  ok "500ms" 0.5;
  ok "2s" 2.0;
  ok "5m" 300.0;
  ok "1h" 3600.0;
  ok "2.5" 2.5;
  List.iter
    (fun s ->
      match Mc.Runctl.parse_duration s with
      | Ok v -> Alcotest.failf "parse_duration %S accepted as %f" s v
      | Error _ -> ())
    [ ""; "-3s"; "bogus"; "12q" ]

(* --- checkpoint/resume -------------------------------------------------- *)

(* The railroad gate controller PSM: a timed model whose sup query takes
   a few thousand states — room to interrupt in the middle. *)
let railroad_psm () =
  let controller =
    Model.automaton ~name:"GateCtrl" ~initial:"Open"
      [ loc "Open";
        loc ~inv:[ Clockcons.le "g" 5 ] "Lowering";
        loc "Closed" ]
      [ edge ~sync:(Model.Recv "m_Train") ~resets:[ "g" ] "Open" "Lowering";
        edge ~sync:(Model.Send "c_GateDown") "Lowering" "Closed";
        edge ~sync:(Model.Recv "m_Clear") "Closed" "Open" ]
  in
  let track =
    Model.automaton ~name:"Track" ~initial:"Away"
      [ loc "Away";
        loc "Approaching";
        loc ~inv:[ Clockcons.le "t" 1_500 ] "Passing" ]
      [ edge
          ~guard:[ Clockcons.ge "t" 300 ]
          ~sync:(Model.Send "m_Train") ~resets:[ "t" ] "Away" "Approaching";
        edge ~sync:(Model.Recv "c_GateDown") ~resets:[ "t" ] "Approaching"
          "Passing";
        edge
          ~guard:[ Clockcons.ge "t" 1_000 ]
          ~sync:(Model.Send "m_Clear") ~resets:[ "t" ] "Passing" "Away" ]
  in
  let net =
    Model.network ~name:"railroad" ~clocks:[ "g"; "t" ] ~vars:[]
      ~channels:
        [ ("m_Train", Model.Broadcast);
          ("m_Clear", Model.Broadcast);
          ("c_GateDown", Model.Broadcast) ]
      [ controller; track ]
  in
  let pim = Transform.Pim.make net ~software:"GateCtrl" ~environment:"Track" in
  let scheme =
    { Scheme.is_name = "ecu";
      is_inputs =
        [ ("m_Train", Scheme.interrupt_input (Scheme.delay 1 4));
          ("m_Clear", Scheme.interrupt_input (Scheme.delay 1 4)) ];
      is_outputs = [ ("c_GateDown", Scheme.pulse_output (Scheme.delay 5 20)) ];
      is_input_comm = Scheme.Buffer (2, Scheme.Read_all);
      is_output_comm = Scheme.Buffer (2, Scheme.Read_all);
      is_invocation = Scheme.Periodic 25;
      is_exec = { Scheme.wcet_min = 1; wcet_max = 8 } }
  in
  (Transform.psm_of_pim pim scheme).Transform.psm_net

let railroad_delay ?ctl ?resume () =
  Analysis.Queries.max_delay ?ctl ?resume (railroad_psm ()) ~trigger:"m_Train"
    ~response:"c_GateDown" ~ceiling:320

let test_checkpoint_roundtrip () =
  let straight = railroad_delay () in
  Alcotest.(check bool) "straight run completes" true
    (straight.Analysis.Queries.dr_interrupt = None);
  (* interrupt in the middle *)
  let ctl = Mc.Runctl.create ~budget:(state_budget 200) () in
  let cut = railroad_delay ~ctl () in
  Alcotest.(check bool) "interrupted mid-search" true
    (cut.Analysis.Queries.dr_interrupt = Some (Mc.Runctl.State_budget 200));
  let snap =
    match cut.Analysis.Queries.dr_snapshot with
    | Some s -> s
    | None -> Alcotest.fail "interrupted run carries no snapshot"
  in
  (* round-trip through the on-disk format *)
  let path = Filename.temp_file "psv_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Mc.Explorer.save_snapshot path snap;
      let reloaded =
        match Mc.Explorer.load_snapshot path with
        | Ok s -> s
        | Error msg -> Alcotest.failf "load_snapshot: %s" msg
      in
      let resumed = railroad_delay ~resume:reloaded () in
      Alcotest.(check bool) "resumed run completes" true
        (resumed.Analysis.Queries.dr_interrupt = None);
      Alcotest.(check bool) "same sup" true
        (resumed.Analysis.Queries.dr_sup = straight.Analysis.Queries.dr_sup);
      Alcotest.(check int) "same visited count"
        straight.Analysis.Queries.dr_stats.Mc.Explorer.visited
        resumed.Analysis.Queries.dr_stats.Mc.Explorer.visited;
      Alcotest.(check int) "same stored count"
        straight.Analysis.Queries.dr_stats.Mc.Explorer.stored
        resumed.Analysis.Queries.dr_stats.Mc.Explorer.stored)

let test_load_snapshot_errors () =
  (match Mc.Explorer.load_snapshot "/nonexistent/psv.snap" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "loaded a snapshot from a missing file");
  let path = Filename.temp_file "psv_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a snapshot at all";
      close_out oc;
      match Mc.Explorer.load_snapshot path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted garbage as a snapshot")

let test_fingerprint_mismatch () =
  let ctl = Mc.Runctl.create ~budget:(state_budget 200) () in
  let cut = railroad_delay ~ctl () in
  let snap = Option.get cut.Analysis.Queries.dr_snapshot in
  (* same query shape, different network: the fingerprint must reject *)
  match
    Analysis.Queries.max_delay ~resume:snap (big_net ()) ~trigger:"m_Train"
      ~response:"c_GateDown" ~ceiling:320
  with
  | _ -> Alcotest.fail "resumed a snapshot of a different network"
  | exception Invalid_argument _ -> ()

let suite =
  [ Alcotest.test_case "state budget -> Unknown" `Quick
      test_state_budget_unknown;
    Alcotest.test_case "time budget -> Unknown" `Quick
      test_time_budget_unknown;
    Alcotest.test_case "cancellation" `Quick test_cancellation;
    Alcotest.test_case "parse_duration" `Quick test_parse_duration;
    Alcotest.test_case "checkpoint round-trip" `Quick
      test_checkpoint_roundtrip;
    Alcotest.test_case "load_snapshot errors" `Quick
      test_load_snapshot_errors;
    Alcotest.test_case "fingerprint mismatch rejected" `Quick
      test_fingerprint_mismatch ]
