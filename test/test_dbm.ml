(* Unit and property tests for difference bound matrices.

   The property tests cross-check symbolic zone operations against concrete
   integer valuations: membership must be preserved/reflected the way the
   operation's semantics dictates. *)

open Zone

let test_bound_encoding () =
  Alcotest.(check bool) "lt tighter than le" true (Bound.lt 5 < Bound.le 5);
  Alcotest.(check bool) "le 5 tighter than lt 6" true (Bound.le 5 < Bound.lt 6);
  Alcotest.(check int) "constant of le" 7 (Bound.constant (Bound.le 7));
  Alcotest.(check int) "constant of negative lt" (-4)
    (Bound.constant (Bound.lt (-4)));
  Alcotest.(check bool) "strictness" true (Bound.is_strict (Bound.lt 3));
  Alcotest.(check bool) "non-strict" false (Bound.is_strict (Bound.le 3))

let test_bound_add () =
  Alcotest.(check int) "le+le" (Bound.le 5) (Bound.add (Bound.le 2) (Bound.le 3));
  Alcotest.(check int) "le+lt" (Bound.lt 5) (Bound.add (Bound.le 2) (Bound.lt 3));
  Alcotest.(check int) "lt+lt" (Bound.lt 5) (Bound.add (Bound.lt 2) (Bound.lt 3));
  Alcotest.(check int) "inf absorbs" Bound.infinity
    (Bound.add Bound.infinity (Bound.le 3));
  Alcotest.(check int) "negative" (Bound.le (-1))
    (Bound.add (Bound.le (-3)) (Bound.le 2))

let test_bound_negate () =
  Alcotest.(check int) "negate le" (Bound.lt (-5)) (Bound.negate (Bound.le 5));
  Alcotest.(check int) "negate lt" (Bound.le (-5)) (Bound.negate (Bound.lt 5))

let test_zero_zone () =
  let z = Dbm.zero 3 in
  Alcotest.(check bool) "non-empty" false (Dbm.is_empty z);
  Alcotest.(check bool) "origin inside" true (Dbm.contains z [| 0; 0; 0 |]);
  Alcotest.(check bool) "off-origin outside" false (Dbm.contains z [| 0; 1; 0 |])

let test_up_then_constrain () =
  let z = Dbm.zero 3 in
  Dbm.up z;
  Alcotest.(check bool) "diagonal point inside after up" true
    (Dbm.contains z [| 0; 4; 4 |]);
  Alcotest.(check bool) "asymmetric point outside" false
    (Dbm.contains z [| 0; 4; 2 |]);
  (* constrain x1 <= 3 *)
  Dbm.constrain z 1 0 (Bound.le 3);
  Alcotest.(check bool) "x1=3 inside" true (Dbm.contains z [| 0; 3; 3 |]);
  Alcotest.(check bool) "x1=4 outside" false (Dbm.contains z [| 0; 4; 4 |])

let test_constrain_empties () =
  let z = Dbm.zero 2 in
  (* x1 >= 5 contradicts x1 = 0: 0 - x1 <= -5 *)
  Dbm.constrain z 0 1 (Bound.le (-5));
  Alcotest.(check bool) "empty" true (Dbm.is_empty z)

let test_satisfiable_no_mutation () =
  let z = Dbm.zero 2 in
  Dbm.up z;
  Alcotest.(check bool) "x1 >= 5 satisfiable" true
    (Dbm.satisfiable z 0 1 (Bound.le (-5)));
  Alcotest.(check bool) "unchanged" true (Dbm.contains z [| 0; 0 |])

let test_reset () =
  let z = Dbm.zero 3 in
  Dbm.up z;
  Dbm.constrain z 1 0 (Bound.le 10);
  Dbm.reset z 2;
  Alcotest.(check bool) "x2 = 0, x1 free up to 10" true
    (Dbm.contains z [| 0; 7; 0 |]);
  Alcotest.(check bool) "x2 > 0 excluded" false (Dbm.contains z [| 0; 7; 1 |])

let test_free () =
  let z = Dbm.zero 3 in
  (* x1 = x2 = 0; free x1 *)
  Dbm.free z 1;
  Alcotest.(check bool) "x1 arbitrary" true (Dbm.contains z [| 0; 42; 0 |]);
  Alcotest.(check bool) "x2 still 0" false (Dbm.contains z [| 0; 42; 1 |])

let test_inclusion () =
  let small = Dbm.zero 2 in
  let big = Dbm.zero 2 in
  Dbm.up big;
  Alcotest.(check bool) "zero within up" true (Dbm.includes big small);
  Alcotest.(check bool) "up not within zero" false (Dbm.includes small big);
  Alcotest.(check bool) "reflexive" true (Dbm.includes big big)

let test_empty_inclusion () =
  let empty = Dbm.zero 2 in
  Dbm.constrain empty 0 1 (Bound.le (-1));
  let z = Dbm.zero 2 in
  Alcotest.(check bool) "empty included everywhere" true (Dbm.includes z empty);
  Alcotest.(check bool) "nonempty not included in empty" false
    (Dbm.includes empty z)

let test_sup_inf () =
  let z = Dbm.zero 3 in
  Dbm.up z;
  Dbm.constrain z 1 0 (Bound.le 9);
  Dbm.constrain z 0 1 (Bound.lt (-2));
  Alcotest.(check int) "sup x1" (Bound.le 9) (Dbm.sup_clock z 1);
  let lo, strict = Dbm.inf_clock z 1 in
  Alcotest.(check (pair int bool)) "inf x1" (2, true) (lo, strict);
  (* x2 tracked x1 since both started at 0, so it inherits the bound... *)
  Alcotest.(check int) "sup x2 correlates with x1" (Bound.le 9)
    (Dbm.sup_clock z 2);
  (* ...until it is freed. *)
  Dbm.free z 2;
  Alcotest.(check int) "sup x2 unbounded after free" Bound.infinity
    (Dbm.sup_clock z 2)

let test_extrapolate_drops_big_bounds () =
  let z = Dbm.zero 2 in
  Dbm.up z;
  Dbm.constrain z 1 0 (Bound.le 500);
  Dbm.extrapolate z [| 0; 10 |];
  Alcotest.(check int) "bound beyond k dropped" Bound.infinity
    (Dbm.sup_clock z 1)

let test_extrapolate_keeps_small_bounds () =
  let z = Dbm.zero 2 in
  Dbm.up z;
  Dbm.constrain z 1 0 (Bound.le 5);
  Dbm.extrapolate z [| 0; 10 |];
  Alcotest.(check int) "bound within k kept" (Bound.le 5) (Dbm.sup_clock z 1)

let test_extrapolate_lu_directions () =
  (* u bounds survive up to u, lower bounds clamp at -u; l governs the
     upper-bound drop *)
  let z = Dbm.zero 2 in
  Dbm.up z;
  Dbm.constrain z 1 0 (Bound.le 8);
  let z_lu = Dbm.copy z in
  (* l = 3: the upper bound 8 > 3 is dropped even though u = 10 *)
  Dbm.extrapolate_lu z_lu [| 0; 3 |] [| 0; 10 |];
  Alcotest.(check int) "upper bound beyond l dropped" Bound.infinity
    (Dbm.sup_clock z_lu 1);
  let z2 = Dbm.zero 2 in
  Dbm.up z2;
  Dbm.constrain z2 0 1 (Bound.le (-7));  (* x1 >= 7 *)
  Dbm.extrapolate_lu z2 [| 0; 10 |] [| 0; 4 |];
  (* lower bound 7 clamps at u = 4 (strictly) *)
  let lo, strict = Dbm.inf_clock z2 1 in
  Alcotest.(check (pair int bool)) "lower bound clamped at u" (4, true)
    (lo, strict)

let test_extrapolate_lu_equals_m_when_same () =
  let build () =
    let z = Dbm.zero 3 in
    Dbm.up z;
    Dbm.constrain z 1 0 (Bound.le 12);
    Dbm.constrain z 0 2 (Bound.lt (-4));
    z
  in
  let zm = build () and zlu = build () in
  Dbm.extrapolate zm [| 0; 6; 6 |];
  Dbm.extrapolate_lu zlu [| 0; 6; 6 |] [| 0; 6; 6 |];
  Alcotest.(check bool) "ExtraLU with l=u=k equals ExtraM" true
    (Dbm.equal zm zlu)

(* Regression: two empty DBMs of different dimensions are not equal (and
   an empty zone never equals a non-empty one). *)
let test_equal_requires_dimension () =
  let empty n =
    let z = Dbm.zero n in
    Dbm.constrain z 0 1 (Bound.le (-1));
    z
  in
  Alcotest.(check bool) "both empty, same dim" true (Dbm.equal (empty 2) (empty 2));
  Alcotest.(check bool) "both empty, dim 2 vs 3" false
    (Dbm.equal (empty 2) (empty 3));
  Alcotest.(check bool) "empty vs non-empty" false
    (Dbm.equal (empty 2) (Dbm.zero 2))

(* --- property tests --------------------------------------------------- *)

(* Random zones come from the shared generators in [Gen]: a trail of
   ups/resets/constraints applied to the zero zone, printed on failure. *)

let dims = Gen.dbm_dims
let build = Gen.build_dbm
let arb_ops = Gen.arb_dbm_ops

let arb_point =
  QCheck.make
    ~print:(Fmt.to_to_string Fmt.(Dump.array int))
    QCheck.Gen.(
      map
        (fun l -> Array.of_list (0 :: l))
        (list_size (return (dims - 1)) (int_range 0 10)))

(* Constraining is intersection: a point is in the result iff it was in the
   zone and satisfies the constraint. *)
let prop_constrain_is_intersection =
  QCheck.Test.make ~name:"constrain = set intersection" ~count:1000
    (QCheck.triple arb_ops arb_point
       (QCheck.quad (QCheck.int_range 0 (dims - 1)) (QCheck.int_range 0 (dims - 1))
          QCheck.bool (QCheck.int_range (-8) 8)))
    (fun (ops, pt, (i, j, strict, n)) ->
      QCheck.assume (i <> j);
      let z = build ops in
      let before = Dbm.contains z pt in
      let b = if strict then Bound.lt n else Bound.le n in
      let diff = pt.(i) - pt.(j) in
      let sat = if strict then diff < n else diff <= n in
      Dbm.constrain z i j b;
      Dbm.contains z pt = (before && sat))

(* Delay: any point in the zone, shifted uniformly forward, is in up(Z). *)
let prop_up_closure =
  QCheck.Test.make ~name:"up contains forward shifts" ~count:1000
    (QCheck.triple arb_ops arb_point (QCheck.int_range 0 10))
    (fun (ops, pt, d) ->
      let z = build ops in
      QCheck.assume (Dbm.contains z pt);
      Dbm.up z;
      let shifted = Array.mapi (fun i v -> if i = 0 then 0 else v + d) pt in
      Dbm.contains z shifted)

(* Reset: membership transfers to the reset point. *)
let prop_reset_membership =
  QCheck.Test.make ~name:"reset maps members" ~count:1000
    (QCheck.triple arb_ops arb_point (QCheck.int_range 1 (dims - 1)))
    (fun (ops, pt, i) ->
      let z = build ops in
      QCheck.assume (Dbm.contains z pt);
      Dbm.reset z i;
      let pt' = Array.copy pt in
      pt'.(i) <- 0;
      Dbm.contains z pt')

(* Inclusion is sound w.r.t. membership. *)
let prop_inclusion_sound =
  QCheck.Test.make ~name:"includes implies membership transfer" ~count:1000
    (QCheck.triple arb_ops arb_ops arb_point)
    (fun (ops1, ops2, pt) ->
      let a = build ops1 and b = build ops2 in
      QCheck.assume (Dbm.includes a b);
      QCheck.assume (Dbm.contains b pt);
      Dbm.contains a pt)

(* Canonicalize is idempotent on the matrices our ops produce. *)
let prop_canonical_stable =
  QCheck.Test.make ~name:"operations keep zones canonical" ~count:500 arb_ops
    (fun ops ->
      let z = build ops in
      let z' = Dbm.copy z in
      Dbm.canonicalize z';
      Dbm.equal z z')

(* Mutual inclusion is equality (the antisymmetry the subsumption store
   relies on). *)
let prop_mutual_inclusion_is_equal =
  QCheck.Test.make ~name:"includes both ways iff equal" ~count:1000
    (QCheck.pair Gen.arb_dbm_ops Gen.arb_dbm_ops)
    (fun (ops1, ops2) ->
      let a = build ops1 and b = build ops2 in
      (Dbm.includes a b && Dbm.includes b a) = Dbm.equal a b)

(* Extrapolation only widens: the abstracted zone includes the original. *)
let prop_extrapolate_preserves_inclusion =
  QCheck.Test.make ~name:"extrapolate includes original" ~count:1000
    (QCheck.pair Gen.arb_dbm_ops Gen.arb_dbm_ceilings)
    (fun (ops, k) ->
      let z = build ops in
      let z' = Dbm.copy z in
      Dbm.extrapolate z' k;
      Dbm.includes z' z)

(* Same for ExtraLU, which is additionally coarser than (or equal to)
   ExtraM with k = max l u. *)
let prop_extrapolate_lu_preserves_inclusion =
  QCheck.Test.make ~name:"extrapolate_lu includes ExtraM and original"
    ~count:1000
    (QCheck.triple Gen.arb_dbm_ops Gen.arb_dbm_ceilings Gen.arb_dbm_ceilings)
    (fun (ops, l, u) ->
      let z = build ops in
      let z_lu = Dbm.copy z and z_m = Dbm.copy z in
      Dbm.extrapolate_lu z_lu l u;
      Dbm.extrapolate z_m (Array.map2 max l u);
      Dbm.includes z_lu z && Dbm.includes z_lu z_m)

(* Hash is compatible with equality (the explorer's equality-dedup mode
   filters by hash before comparing). *)
let prop_hash_respects_equal =
  QCheck.Test.make ~name:"equal zones hash equal" ~count:1000
    (QCheck.pair Gen.arb_dbm_ops Gen.arb_dbm_ops)
    (fun (ops1, ops2) ->
      let a = build ops1 and b = build ops2 in
      (not (Dbm.equal a b)) || Dbm.hash a = Dbm.hash b)

let suite =
  [ Alcotest.test_case "bound encoding order" `Quick test_bound_encoding;
    Alcotest.test_case "bound addition" `Quick test_bound_add;
    Alcotest.test_case "bound negation" `Quick test_bound_negate;
    Alcotest.test_case "zero zone" `Quick test_zero_zone;
    Alcotest.test_case "up then constrain" `Quick test_up_then_constrain;
    Alcotest.test_case "contradiction empties" `Quick test_constrain_empties;
    Alcotest.test_case "satisfiable does not mutate" `Quick
      test_satisfiable_no_mutation;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "free" `Quick test_free;
    Alcotest.test_case "inclusion" `Quick test_inclusion;
    Alcotest.test_case "empty-zone inclusion" `Quick test_empty_inclusion;
    Alcotest.test_case "sup and inf" `Quick test_sup_inf;
    Alcotest.test_case "extrapolation drops big bounds" `Quick
      test_extrapolate_drops_big_bounds;
    Alcotest.test_case "extrapolation keeps small bounds" `Quick
      test_extrapolate_keeps_small_bounds;
    Alcotest.test_case "ExtraLU directions" `Quick
      test_extrapolate_lu_directions;
    Alcotest.test_case "ExtraLU degenerates to ExtraM" `Quick
      test_extrapolate_lu_equals_m_when_same;
    Alcotest.test_case "equal requires same dimension" `Quick
      test_equal_requires_dimension;
    QCheck_alcotest.to_alcotest prop_constrain_is_intersection;
    QCheck_alcotest.to_alcotest prop_up_closure;
    QCheck_alcotest.to_alcotest prop_reset_membership;
    QCheck_alcotest.to_alcotest prop_inclusion_sound;
    QCheck_alcotest.to_alcotest prop_canonical_stable;
    QCheck_alcotest.to_alcotest prop_mutual_inclusion_is_equal;
    QCheck_alcotest.to_alcotest prop_extrapolate_preserves_inclusion;
    QCheck_alcotest.to_alcotest prop_extrapolate_lu_preserves_inclusion;
    QCheck_alcotest.to_alcotest prop_hash_respects_equal ]
