(** C code generation from the platform-independent model — the TIMES
    step of the paper's pipeline (Section II-A).

    The generator emits a self-contained, allocation-free C module for
    the software automaton, exposing exactly the four-step interaction
    loop the paper describes: the platform invokes the code, delivers
    processed inputs, lets it compute transitions against the current
    clock reading, and collects the outputs it wrote.

    The generated API (for an automaton named [Pump]):

    {v
void pump_init(pump_state_t *s, uint32_t now);
bool pump_deliver(pump_state_t *s, uint32_t now, pump_input_t in);
int  pump_compute(pump_state_t *s, uint32_t now,
                  pump_output_t *out, int max_out);
    v}

    - [deliver] offers one processed input; it returns [true] when the
      current location has an enabled receiving edge (the input is
      consumed), [false] when the input must be discarded — the read-one
      / read-all policies of the implementation scheme decide how often
      the platform calls it per invocation.
    - [compute] takes enabled internal and output edges, first declared
      edge first, until quiescent; outputs are appended to [out].
    - Clocks are [uint32_t] timestamp bases in the platform's time unit;
      guard evaluation is wrap-around-safe for runs shorter than 2^31
      units.

    The semantics mirrors {!Sim.Code_runner} exactly; the test suite
    compiles the generated C and cross-checks the two on random
    invocation schedules.

    Restrictions (checked): the software automaton must have no data
    guards or variable updates (the platform-independent software of
    this framework is pure), which also matches what {!Sim.Code_runner}
    accepts. *)

exception Unsupported of string

(** The C header ([<name>.h]). *)
val emit_header : Transform.Pim.t -> string

(** The C implementation ([<name>.c]). *)
val emit_source : Transform.Pim.t -> string

(** A test harness ([main.c]) driving the module through a simple stdin
    protocol, used by the differential tests:

    {v
init <now>
deliver <channel> <now>     ->  prints "consumed" or "discarded"
compute <now>               ->  prints one emitted channel per line, then "."
location                    ->  prints the current location name
    v} *)
val emit_harness : Transform.Pim.t -> string

(** Lower-case C identifier prefix derived from the automaton name. *)
val prefix : Transform.Pim.t -> string
