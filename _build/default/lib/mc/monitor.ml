type transition = {
  tr_src : int;
  tr_chan : string;
  tr_dst : int;
  tr_resets : string list;
}

type t = {
  mon_name : string;
  mon_states : string array;
  mon_initial : int;
  mon_clocks : (string * int) list;
  mon_transitions : transition list;
  mon_active : int -> string list;
}

let make ?active ~name ~states ~initial ~clocks transitions =
  let nstates = Array.length states in
  let in_range i = i >= 0 && i < nstates in
  if not (in_range initial) then
    invalid_arg (Fmt.str "monitor %s: initial state out of range" name);
  let check_transition t =
    if not (in_range t.tr_src && in_range t.tr_dst) then
      invalid_arg (Fmt.str "monitor %s: transition state out of range" name);
    List.iter
      (fun c ->
        if not (List.mem_assoc c clocks) then
          invalid_arg (Fmt.str "monitor %s: resets unknown clock %S" name c))
      t.tr_resets
  in
  List.iter check_transition transitions;
  let keys = List.map (fun t -> (t.tr_src, t.tr_chan)) transitions in
  let rec has_dup = function
    | [] -> false
    | k :: rest -> List.mem k rest || has_dup rest
  in
  if has_dup keys then
    invalid_arg (Fmt.str "monitor %s: nondeterministic transitions" name);
  let all_clocks = List.map fst clocks in
  let active = match active with Some f -> f | None -> fun _ -> all_clocks in
  { mon_name = name;
    mon_states = states;
    mon_initial = initial;
    mon_clocks = clocks;
    mon_transitions = transitions;
    mon_active = active }

let delay ?(name = "delay-monitor") ~trigger ~response ~clock ~ceiling () =
  (* The clock is only meaningful while waiting for the response; declaring
     it inactive elsewhere lets the explorer free it, which collapses many
     otherwise-incomparable zones. *)
  make ~name
    ~states:[| "Idle"; "Waiting" |]
    ~initial:0
    ~clocks:[ (clock, ceiling) ]
    ~active:(fun state -> if state = 1 then [ clock ] else [])
    [ { tr_src = 0; tr_chan = trigger; tr_dst = 1; tr_resets = [ clock ] };
      { tr_src = 1; tr_chan = response; tr_dst = 0; tr_resets = [] } ]

let state_index m name =
  let n = Array.length m.mon_states in
  let rec loop i =
    if i >= n then raise Not_found
    else if m.mon_states.(i) = name then i
    else loop (i + 1)
  in
  loop 0

let step m state chan =
  let matching t = t.tr_src = state && t.tr_chan = chan in
  match List.find_opt matching m.mon_transitions with
  | Some t -> Some (t.tr_dst, t.tr_resets)
  | None -> None

let trivial =
  make ~name:"trivial" ~states:[| "Only" |] ~initial:0 ~clocks:[] []
