lib/mc/monitor.ml: Array Fmt List
