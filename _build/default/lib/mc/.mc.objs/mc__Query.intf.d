lib/mc/query.mli: Explorer Format Stdlib Ta
