lib/mc/query.ml: Explorer Fmt List Monitor String Ta
