lib/mc/monitor.mli:
