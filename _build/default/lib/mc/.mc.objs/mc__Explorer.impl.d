lib/mc/explorer.ml: Array Compiled Fmt Hashtbl List Model Monitor Option Printf Queue String Sys Ta Zone
