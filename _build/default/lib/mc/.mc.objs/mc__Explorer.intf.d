lib/mc/explorer.mli: Format Monitor Ta Zone
