(** Non-blocking monitors.

    A monitor is a deterministic finite automaton with its own clocks that
    observes the channel of every synchronisation the system performs.  It
    is composed at the semantic level by the explorer, so — unlike an
    UPPAAL observer template — it can never block, delay, or otherwise
    perturb the system.  It is the measurement device of the framework:
    boundary delays are sup-queries over monitor clocks.

    If no transition matches the current state and observed channel, the
    monitor stays put.  Internal ([tau]) moves of the system are never
    observed. *)

type transition = {
  tr_src : int;
  tr_chan : string;
  tr_dst : int;
  tr_resets : string list;
}

type t = {
  mon_name : string;
  mon_states : string array;
  mon_initial : int;
  mon_clocks : (string * int) list;  (** clock name and extrapolation ceiling *)
  mon_transitions : transition list;
  mon_active : int -> string list;
      (** clocks whose value matters in a given state; the explorer frees
          the others, which prunes the zone graph substantially *)
}

(** [make ~name ~states ~initial ~clocks transitions] builds a monitor.
    [active] defaults to "all clocks, in every state".
    @raise Invalid_argument if [transitions] is nondeterministic (two
    transitions from the same state on the same channel), or a state or
    the initial index is out of range. *)
val make :
  ?active:(int -> string list) ->
  name:string ->
  states:string array ->
  initial:int ->
  clocks:(string * int) list ->
  transition list -> t

(** [delay ~trigger ~response ~clock ~ceiling] is the two-state delay
    monitor: [Idle] moves to [Waiting] on [trigger] and resets [clock];
    [Waiting] returns to [Idle] on [response].  Re-triggering while waiting
    keeps the earlier start, so the measured delay is from the {e first}
    unanswered trigger.  [state_index] 1 is [Waiting]. *)
val delay :
  ?name:string ->
  trigger:string -> response:string -> clock:string -> ceiling:int -> unit -> t

val state_index : t -> string -> int
(** @raise Not_found *)

(** [step m state chan] is the successor state and clock resets when
    observing [chan] in [state]; [None] means "stay put, reset nothing". *)
val step : t -> int -> string -> (int * string list) option

(** A monitor with one state, no clocks and no transitions; composing it
    is equivalent to running without a monitor. *)
val trivial : t
