lib/sim/rng.mli:
