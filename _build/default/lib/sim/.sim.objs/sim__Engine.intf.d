lib/sim/engine.mli: Format Scheme Transform
