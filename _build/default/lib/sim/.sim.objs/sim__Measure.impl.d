lib/sim/measure.ml: Engine Fmt List Option
