lib/sim/engine.ml: Code_runner Event_queue Fmt List Rng Scheme Transform
