lib/sim/stimulus.mli: Rng
