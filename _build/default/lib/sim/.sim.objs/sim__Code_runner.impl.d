lib/sim/code_runner.ml: Clockcons Expr Fmt Hashtbl List Model Ta
