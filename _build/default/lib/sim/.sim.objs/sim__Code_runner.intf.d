lib/sim/code_runner.mli: Ta
