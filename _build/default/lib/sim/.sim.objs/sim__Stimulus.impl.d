lib/sim/stimulus.ml: List Rng
