lib/sim/measure.mli: Engine Format
