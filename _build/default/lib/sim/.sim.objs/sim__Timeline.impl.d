lib/sim/timeline.ml: Buffer Bytes Engine Fmt List String
