open Ta

type t = {
  automaton : Model.automaton;
  mutable loc : string;
  reset_times : (string, float) Hashtbl.t;  (* clock -> last reset instant *)
}

let clocks_of automaton =
  let add acc c = if List.mem c acc then acc else c :: acc in
  let of_atoms acc atoms = List.fold_left add acc (Clockcons.clocks atoms) in
  let acc =
    List.fold_left
      (fun acc l -> of_atoms acc l.Model.loc_inv)
      [] automaton.Model.aut_locations
  in
  List.fold_left
    (fun acc e ->
      List.fold_left add (of_atoms acc e.Model.edge_guard) e.Model.edge_resets)
    acc automaton.Model.aut_edges

let create automaton =
  List.iter
    (fun e ->
      if e.Model.edge_pred <> Expr.True then
        invalid_arg
          (Fmt.str "Code_runner.create: %s has data guards on its edges"
             automaton.Model.aut_name))
    automaton.Model.aut_edges;
  let reset_times = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace reset_times c 0.0) (clocks_of automaton);
  { automaton; loc = automaton.Model.aut_initial; reset_times }

let location t = t.loc

let clock_value t ~now c =
  match Hashtbl.find_opt t.reset_times c with
  | Some since -> now -. since
  | None -> now

(* Guard evaluation on real-valued clocks.  The generated code reads an
   integer-resolution timer; we keep floats and compare directly. *)
let guard_holds t ~now atoms =
  let holds rel (a : float) b =
    match rel with
    | Clockcons.Lt -> a < b
    | Clockcons.Le -> a <= b
    | Clockcons.Eq -> a = b
    | Clockcons.Ge -> a >= b
    | Clockcons.Gt -> a > b
  in
  List.for_all
    (fun atom ->
      match atom with
      | Clockcons.Simple (x, rel, n) ->
        holds rel (clock_value t ~now x) (float_of_int n)
      | Clockcons.Diff (x, y, rel, n) ->
        holds rel (clock_value t ~now x -. clock_value t ~now y)
          (float_of_int n))
    atoms

let take t ~now e =
  List.iter (fun c -> Hashtbl.replace t.reset_times c now) e.Model.edge_resets;
  t.loc <- e.Model.edge_dst

let deliver t ~now chan =
  let candidate e =
    e.Model.edge_src = t.loc
    && e.Model.edge_sync = Model.Recv chan
    && guard_holds t ~now e.Model.edge_guard
  in
  match List.find_opt candidate t.automaton.Model.aut_edges with
  | Some e ->
    take t ~now e;
    true
  | None -> false

let compute t ~now =
  let enabled e =
    e.Model.edge_src = t.loc
    && (match e.Model.edge_sync with
        | Model.Tau | Model.Send _ -> true
        | Model.Recv _ -> false)
    && guard_holds t ~now e.Model.edge_guard
  in
  let rec run acc steps =
    if steps > 10_000 then
      failwith "Code_runner.compute: livelock in the software automaton"
    else
      match List.find_opt enabled t.automaton.Model.aut_edges with
      | None -> List.rev acc
      | Some e ->
        take t ~now e;
        (match e.Model.edge_sync with
         | Model.Send c -> run (c :: acc) (steps + 1)
         | Model.Tau -> run acc (steps + 1)
         | Model.Recv _ -> assert false)
  in
  run [] 0

let reset t ~now =
  t.loc <- t.automaton.Model.aut_initial;
  let clocks = Hashtbl.fold (fun c _ acc -> c :: acc) t.reset_times [] in
  List.iter (fun c -> Hashtbl.replace t.reset_times c now) clocks
