(** Stimulus patterns for simulation scenarios: helpers building the
    [(time, channel)] lists consumed by {!Engine.config}. *)

type t = (float * string) list

(** One signal. *)
val single : at:float -> string -> t

(** [n] signals starting at [start] (default 0), [every] time units
    apart. *)
val periodic : ?start:float -> every:float -> n:int -> string -> t

(** A burst of [n] signals beginning at [at], [gap] apart — the paper's
    Fig. 3 input pattern is [burst ~at ~gap ~n:3]. *)
val burst : at:float -> gap:float -> n:int -> string -> t

(** [jittered rng ~start ~every ~jitter ~n chan] is a periodic pattern
    where each arrival is displaced uniformly by up to [jitter]. *)
val jittered :
  Rng.t -> start:float -> every:float -> jitter:float -> n:int -> string -> t

(** Merge patterns into one time-sorted stimulus list. *)
val merge : t list -> t
