(** Extraction of boundary delays from simulation logs — the software
    oscilloscope.

    A {e sample} follows one environment signal through the system:
    signal raised ([t_m]), read by the code ([t_i]), answering output
    produced ([t_o]), output visible to the environment ([t_c]).  The
    three delays of Section V are then [Δmc = t_c - t_m],
    [Δmi = t_i - t_m] and [Δoc = t_c - t_o]. *)

type sample = {
  s_signal : float;
  s_read : float option;
  s_emitted : float option;
  s_visible : float option;
}

(** [samples log ~trigger ~response] pairs each [Env_signal trigger] with
    the next read of that input, the next [Code_output response] and the
    next [Output_visible response] following it. *)
val samples :
  Engine.entry list -> trigger:string -> response:string -> sample list

val mc_delay : sample -> float option
val input_delay : sample -> float option
val output_delay : sample -> float option

(** Aggregate statistics over complete observations. *)
type stats = {
  st_count : int;
  st_avg : float;
  st_max : float;
  st_min : float;
}

(** [None] on the empty list. *)
val stats_of : float list -> stats option

(** Events of a given kind, e.g. losses. *)
val count :
  Engine.entry list -> (Engine.event -> bool) -> int

val pp_stats : Format.formatter -> stats -> unit
