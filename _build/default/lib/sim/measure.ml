type sample = {
  s_signal : float;
  s_read : float option;
  s_emitted : float option;
  s_visible : float option;
}

let first_after log ~time select =
  let hit (e : Engine.entry) = e.Engine.at >= time && select e.Engine.event in
  match List.find_opt hit log with
  | Some e -> Some e.Engine.at
  | None -> None

let samples log ~trigger ~response =
  let is_trigger (e : Engine.entry) =
    e.Engine.event = Engine.Env_signal trigger
  in
  let sample_of (e : Engine.entry) =
    let t_m = e.Engine.at in
    let s_read =
      first_after log ~time:t_m (fun ev -> ev = Engine.Input_read trigger)
    in
    let s_emitted =
      match s_read with
      | None -> None
      | Some t_i ->
        first_after log ~time:t_i (fun ev -> ev = Engine.Code_output response)
    in
    let s_visible =
      match s_emitted with
      | None -> None
      | Some t_o ->
        first_after log ~time:t_o (fun ev ->
            ev = Engine.Output_visible response)
    in
    { s_signal = t_m; s_read; s_emitted; s_visible }
  in
  List.map sample_of (List.filter is_trigger log)

let mc_delay s =
  Option.map (fun t_c -> t_c -. s.s_signal) s.s_visible

let input_delay s =
  Option.map (fun t_i -> t_i -. s.s_signal) s.s_read

let output_delay s =
  match s.s_emitted, s.s_visible with
  | Some t_o, Some t_c -> Some (t_c -. t_o)
  | None, _ | _, None -> None

type stats = {
  st_count : int;
  st_avg : float;
  st_max : float;
  st_min : float;
}

let stats_of = function
  | [] -> None
  | first :: rest ->
    let fold (n, sum, hi, lo) v = (n + 1, sum +. v, max hi v, min lo v) in
    let n, sum, hi, lo = List.fold_left fold (1, first, first, first) rest in
    Some
      { st_count = n;
        st_avg = sum /. float_of_int n;
        st_max = hi;
        st_min = lo }

let count log select =
  List.length (List.filter (fun (e : Engine.entry) -> select e.Engine.event) log)

let pp_stats ppf s =
  Fmt.pf ppf "avg %.0f / max %.0f / min %.0f (n=%d)" s.st_avg s.st_max s.st_min
    s.st_count
