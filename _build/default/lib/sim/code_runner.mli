(** An interpreter of the software automaton that behaves like the code a
    TIMES-style generator produces (Section II-A): the platform invokes
    it, hands it the processed inputs, and it then (1) consumes each
    input if the current location has an enabled edge for it, discarding
    it otherwise, and (2) repeatedly takes enabled internal/output edges
    — evaluating clock guards against the invocation instant — until
    quiescent, returning the outputs it produced.

    Clock values are wall-clock durations since their last reset, as in
    the generated code's timer reads.  Nondeterminism is resolved the way
    a code generator resolves it: first declared edge wins. *)

type t

(** [create automaton] prepares a runner at the automaton's initial
    location with all clocks reset at time 0.
    @raise Invalid_argument if the automaton's data guards mention
    variables (the platform-independent software of this framework is
    pure; variables belong to the platform model). *)
val create : Ta.Model.automaton -> t

val location : t -> string

(** [deliver t ~now chan] offers one processed input; returns [true] when
    the code consumed it (an enabled receiving edge existed). *)
val deliver : t -> now:float -> string -> bool

(** [compute t ~now] takes enabled internal and output edges until no
    more are enabled, returning the output channels emitted, in order.
    Guards are evaluated at the invocation instant [now]. *)
val compute : t -> now:float -> string list

(** Reset to the initial location with all clocks reset at [now]. *)
val reset : t -> now:float -> unit
