(** Deterministic pseudo-random numbers (SplitMix64).

    Every simulation takes an explicit seed, so all measured experiments
    are exactly reproducible. *)

type t

val create : int -> t

(** Uniform in [\[0, 1)]. *)
val float01 : t -> float

(** Uniform in [\[lo, hi)]; [lo <= hi] required. *)
val float_range : t -> float -> float -> float

(** Uniform integer in [\[lo, hi\]] (inclusive). *)
val int_range : t -> int -> int -> int

(** An independent generator split off deterministically. *)
val split : t -> t
