let mark_of = function
  | Engine.Env_signal _ -> 'M'
  | Engine.Input_inserted _ -> 'i'
  | Engine.Input_read _ -> 'R'
  | Engine.Input_discarded _ -> 'D'
  | Engine.Input_lost _ -> 'X'
  | Engine.Code_output _ -> 'O'
  | Engine.Output_visible _ -> 'V'
  | Engine.Output_lost _ -> 'x'

let channel_of = function
  | Engine.Env_signal c
  | Engine.Input_inserted c
  | Engine.Input_read c
  | Engine.Input_discarded c
  | Engine.Input_lost c
  | Engine.Code_output c
  | Engine.Output_visible c
  | Engine.Output_lost c -> c

let render ?(width = 64) log =
  match log with
  | [] -> "(empty log)\n"
  | _ ->
    let horizon =
      List.fold_left (fun acc (e : Engine.entry) -> max acc e.Engine.at) 0.0 log
    in
    let horizon = if horizon <= 0.0 then 1.0 else horizon in
    let scale = horizon /. float_of_int (width - 1) in
    let channels =
      List.fold_left
        (fun acc (e : Engine.entry) ->
          let c = channel_of e.Engine.event in
          if List.mem c acc then acc else acc @ [ c ])
        [] log
    in
    let name_width =
      List.fold_left (fun acc c -> max acc (String.length c)) 8 channels
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Fmt.str "%-*s 0%*s%.0f\n" name_width "time" (width - 2) "" horizon);
    let lane chan =
      let cells = Bytes.make width '.' in
      List.iter
        (fun (e : Engine.entry) ->
          if channel_of e.Engine.event = chan then begin
            let col =
              min (width - 1) (int_of_float (e.Engine.at /. scale))
            in
            let mark = mark_of e.Engine.event in
            let current = Bytes.get cells col in
            Bytes.set cells col (if current = '.' then mark else '*')
          end)
        log;
      Buffer.add_string buf
        (Fmt.str "%-*s %s\n" name_width chan (Bytes.to_string cells))
    in
    List.iter lane channels;
    Buffer.contents buf

let legend =
  "M env signal   i inserted   R read   D discarded   X input lost\n\
   O code output  V visible    x output lost   * several events"
