(** A time-ordered event queue for discrete-event simulation.

    Events at equal times are delivered in insertion order (FIFO), which
    keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push q time payload] schedules [payload] at [time]. *)
val push : 'a t -> float -> 'a -> unit

(** Earliest event, by (time, insertion order).  [None] when empty. *)
val pop : 'a t -> (float * 'a) option
