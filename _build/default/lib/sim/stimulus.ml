type t = (float * string) list

let single ~at chan = [ (at, chan) ]

let periodic ?(start = 0.0) ~every ~n chan =
  List.init n (fun i -> (start +. (float_of_int i *. every), chan))

let burst ~at ~gap ~n chan =
  List.init n (fun i -> (at +. (float_of_int i *. gap), chan))

let jittered rng ~start ~every ~jitter ~n chan =
  List.init n (fun i ->
      let base = start +. (float_of_int i *. every) in
      (base +. Rng.float_range rng 0.0 jitter, chan))

let merge patterns =
  List.sort (fun (a, _) (b, _) -> compare a b) (List.concat patterns)
