(** ASCII rendering of simulation logs as per-channel timelines — the
    textual cousin of the paper's Fig. 3.

    Each channel gets a lane; events are plotted by time with one-letter
    marks:

    - [M] environment signal raised
    - [i] processed input inserted into the io-slot
    - [R] input read by the code, [D] delivered but discarded,
      [X] input lost (missed interrupt / overflow / overwrite)
    - [O] output produced by the code
    - [V] output visible to the environment, [x] output lost

    When several events of a lane fall into the same column, the
    rightmost in the above order wins and a [*] is shown instead. *)

val render : ?width:int -> Engine.entry list -> string

(** The mark legend, for printing below a timeline. *)
val legend : string
