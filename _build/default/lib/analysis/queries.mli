(** Model-checking-backed delay queries: the "Verified Upper Bound (PSM)"
    machinery of Table I.  Works uniformly on a PIM or a PSM network,
    since both expose the boundary events as channels. *)

type delay_result = {
  dr_trigger : string;
  dr_response : string;
  dr_sup : Mc.Explorer.sup_result;
  dr_stats : Mc.Explorer.stats;
}

(** [max_delay net ~trigger ~response ~ceiling] is the supremum, over all
    runs, of the time between a [trigger] synchronisation and the
    following [response] synchronisation, measured by a non-blocking
    monitor.  [Sup_exceeds] means the delay is not bounded by [ceiling]
    (possibly unbounded). *)
val max_delay :
  ?limit:int ->
  Ta.Model.network ->
  trigger:string -> response:string -> ceiling:int -> delay_result

(** [satisfies_response_bound net ~trigger ~response ~bound] is the
    requirement [P(Δ)]: every [trigger] is answered within [bound].
    Decided by comparing the verified supremum against [bound] (the
    ceiling used is [bound], so the check is exact). *)
val satisfies_response_bound :
  ?limit:int ->
  Ta.Model.network ->
  trigger:string -> response:string -> bound:int -> bool

(** The maximum internal delay [Δio-internal] of a PIM for an
    input/output pair — in the PIM the platform does not exist, so the
    m-to-c delay {e is} the internal delay. *)
val pim_internal_bound :
  ?limit:int ->
  Transform.Pim.t ->
  input:string -> output:string -> ceiling:int -> delay_result

val pp_delay_result : Format.formatter -> delay_result -> unit
