lib/analysis/implementability.mli: Format Transform
