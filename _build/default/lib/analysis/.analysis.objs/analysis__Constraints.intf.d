lib/analysis/constraints.mli: Format Transform
