lib/analysis/implementability.ml: Clockcons Fmt List Mc Model Scheme Ta Transform
