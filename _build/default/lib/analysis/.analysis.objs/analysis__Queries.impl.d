lib/analysis/queries.ml: Fmt Mc Transform
