lib/analysis/bounds.ml: Scheme
