lib/analysis/bounds.mli: Scheme
