lib/analysis/constraints.ml: Fmt List Mc Model Ta Transform
