lib/analysis/queries.mli: Format Mc Ta Transform
