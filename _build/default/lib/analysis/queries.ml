type delay_result = {
  dr_trigger : string;
  dr_response : string;
  dr_sup : Mc.Explorer.sup_result;
  dr_stats : Mc.Explorer.stats;
}

let monitor_clock = "psv_delay_mon"

let max_delay ?limit net ~trigger ~response ~ceiling =
  let monitor =
    Mc.Monitor.delay ~trigger ~response ~clock:monitor_clock ~ceiling ()
  in
  let t = Mc.Explorer.make ~monitor ?limit net in
  let sup, stats =
    Mc.Explorer.sup_clock t
      ~pred:(Mc.Explorer.mon_in t "Waiting")
      ~clock:monitor_clock
  in
  { dr_trigger = trigger; dr_response = response; dr_sup = sup;
    dr_stats = stats }

let satisfies_response_bound ?limit net ~trigger ~response ~bound =
  let r = max_delay ?limit net ~trigger ~response ~ceiling:bound in
  match r.dr_sup with
  | Mc.Explorer.Sup_unreached -> true  (* the trigger never fires *)
  | Mc.Explorer.Sup (v, _) -> v <= bound
  | Mc.Explorer.Sup_exceeds _ -> false

let pim_internal_bound ?limit (pim : Transform.Pim.t) ~input ~output ~ceiling =
  max_delay ?limit pim.Transform.Pim.pim_net ~trigger:input ~response:output
    ~ceiling

let pp_delay_result ppf r =
  Fmt.pf ppf "max delay %s -> %s: %a (%d states)" r.dr_trigger r.dr_response
    Mc.Explorer.pp_sup_result r.dr_sup r.dr_stats.Mc.Explorer.visited
