open Ta

type window_warning = {
  ww_edge : string;
  ww_clock : string;
  ww_window : int;
  ww_needed : int;
}

let lower_bound_of_guard clock atoms =
  List.fold_left
    (fun acc atom ->
      match atom with
      | Clockcons.Simple (x, (Clockcons.Ge | Clockcons.Gt | Clockcons.Eq), n)
        when x = clock ->
        Some (match acc with Some m -> max m n | None -> n)
      | Clockcons.Simple _ | Clockcons.Diff _ -> acc)
    None atoms

let upper_bound_of_inv clock atoms =
  List.fold_left
    (fun acc atom ->
      match atom with
      | Clockcons.Simple (x, (Clockcons.Le | Clockcons.Lt | Clockcons.Eq), n)
        when x = clock ->
        Some (match acc with Some m -> min m n | None -> n)
      | Clockcons.Simple _ | Clockcons.Diff _ -> acc)
    None atoms

let check_window_widths (psm : Transform.psm) =
  let scheme = psm.Transform.psm_scheme in
  let needed =
    (match scheme.Scheme.is_invocation with
     | Scheme.Periodic period -> period
     | Scheme.Aperiodic gap -> gap)
    + scheme.Scheme.is_exec.Scheme.wcet_max
  in
  let software = Transform.Pim.software psm.Transform.psm_pim in
  let warn_edge (e : Model.edge) =
    let clocks = Clockcons.clocks e.Model.edge_guard in
    List.filter_map
      (fun clock ->
        match lower_bound_of_guard clock e.Model.edge_guard with
        | None -> None
        | Some lo ->
          let src = Model.find_location software e.Model.edge_src in
          (match upper_bound_of_inv clock src.Model.loc_inv with
           | None -> None
           | Some hi ->
             let window = hi - lo in
             if window < needed then
               Some
                 { ww_edge =
                     Fmt.str "%s -> %s" e.Model.edge_src e.Model.edge_dst;
                   ww_clock = clock;
                   ww_window = window;
                   ww_needed = needed }
             else None))
      clocks
  in
  List.concat_map warn_edge software.Model.aut_edges

let find_timelock ?limit (psm : Transform.psm) =
  let t = Mc.Explorer.make ?limit psm.Transform.psm_net in
  (Mc.Explorer.find_timelock t).Mc.Explorer.r_trace

let pp_window_warning ppf w =
  Fmt.pf ppf
    "edge %s: guard window of %d on clock %s is narrower than one \
     invocation cycle (%d); the reaction can fall between compute stages"
    w.ww_edge w.ww_window w.ww_clock w.ww_needed
