(** Implementability checks for the PSM.

    A platform-independent model may demand reactions the platform cannot
    deliver: a guard window [x in [L, U]] (lower-bound guard plus source
    invariant) narrower than one invocation period plus the execution
    window can fall entirely between two compute stages, leaving [MIO]
    unable to honour its invariant — a {e timelock} in the PSM, and a
    missed deadline in the implementation.  This is the flip side of the
    paper's "similar timed behavior" assumption (Section IV, footnote 3).

    Two complementary checks:

    - {!check_window_widths}: a fast structural sufficient condition on
      the software automaton's guard windows against the scheme's
      invocation parameters — warnings, not verdicts;
    - {!find_timelock}: exact detection by model checking the PSM for a
      reachable time-blocked state without successors. *)

type window_warning = {
  ww_edge : string;    (** [src -> dst] of the offending software edge *)
  ww_clock : string;
  ww_window : int;     (** [U - L] *)
  ww_needed : int;     (** period (or gap) + wcet_max *)
}

(** Structural check.  An edge is flagged when its clock guard has a
    lower bound [L], its source location bounds the same clock by [U],
    and [U - L < needed].  Edges without a lower-bound guard, or source
    locations without an invariant on that clock, are never flagged. *)
val check_window_widths : Transform.psm -> window_warning list

(** Model-check the PSM for a reachable timelock; returns the witness
    trace when one exists. *)
val find_timelock : ?limit:int -> Transform.psm -> string list option

val pp_window_warning : Format.formatter -> window_warning -> unit
