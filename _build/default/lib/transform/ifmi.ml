open Ta

let loc = Model.location
let edge = Model.edge

(* Capacity of the io-boundary slot and the flag set when an insertion
   fails: overflow for buffers, overwrite-loss for a shared variable. *)
let slot_of comm m =
  match comm with
  | Scheme.Buffer (size, _) -> (size, Names.input_overflow m)
  | Scheme.Shared_variable -> (1, Names.input_lost m)

(* The two Processing -> Idle edges shared by both reading mechanisms:
   successful insertion (optionally kicking the aperiodic executive) and
   failed insertion raising the loss flag. *)
let insertion_edges ~aperiodic ~comm m ~extra_resets (spec : Scheme.mc_input) =
  let y = Names.ifmi_clock m in
  let buf = Names.input_buffer m in
  let capacity, loss_flag = slot_of comm m in
  let ready = [ Clockcons.ge y spec.Scheme.in_delay.Scheme.delay_min ] in
  let deliver =
    edge ~guard:ready
      ~pred:Expr.(lt (var buf) (int capacity))
      ~sync:(if aperiodic then Model.Send Names.kick_chan else Model.Tau)
      ~resets:extra_resets
      ~updates:[ (buf, Expr.(var buf + int 1)) ]
      "Processing" "Idle"
  in
  let drop =
    edge ~guard:ready
      ~pred:(Expr.var_eq buf capacity)
      ~resets:extra_resets
      ~updates:[ (loss_flag, Expr.int 1) ]
      "Processing" "Idle"
  in
  [ deliver; drop ]

let processing_loc (spec : Scheme.mc_input) m =
  loc
    ~inv:[ Clockcons.le (Names.ifmi_clock m) spec.Scheme.in_delay.Scheme.delay_max ]
    "Processing"

let build_interrupt ~aperiodic ~comm m spec =
  let y = Names.ifmi_clock m in
  let missed = Names.input_missed m in
  let automaton =
    Model.automaton ~name:(Names.ifmi m) ~initial:"Idle"
      [ loc "Idle"; processing_loc spec m ]
      ([ edge ~sync:(Model.Recv m) ~resets:[ y ] "Idle" "Processing";
         (* a pulse arriving while the device is busy is lost *)
         edge ~sync:(Model.Recv m)
           ~updates:[ (missed, Expr.int 1) ]
           "Processing" "Processing" ]
       @ insertion_edges ~aperiodic ~comm m ~extra_resets:[] spec)
  in
  let _, loss_flag = slot_of comm m in
  { Piece.pc_automata = [ automaton ];
    pc_clocks = [ y ];
    pc_vars =
      [ (Names.input_buffer m, Model.int_var ~min:0 ~max:(fst (slot_of comm m)) 0);
        (loss_flag, Model.flag ());
        (missed, Model.flag ()) ];
    pc_channels = [] }

(* The latch holds the signal level between the environment's broadcast
   and the next poll.  A sustained signal drops on its own after its
   duration; a sustained-until-read signal only drops when consumed. *)
let build_latch m (spec : Scheme.mc_input) =
  let sig_var = Names.signal m in
  match spec.Scheme.in_signal with
  | Scheme.Sustained_until_read ->
    let automaton =
      Model.automaton ~name:(Names.latch m) ~initial:"L"
        [ loc "L" ]
        [ edge ~sync:(Model.Recv m)
            ~updates:[ (sig_var, Expr.int 1) ]
            "L" "L" ]
    in
    { Piece.pc_automata = [ automaton ];
      pc_clocks = [];
      pc_vars = [ (sig_var, Model.flag ()) ];
      pc_channels = [] }
  | Scheme.Sustained duration ->
    let ls = Names.latch_clock m in
    let automaton =
      Model.automaton ~name:(Names.latch m) ~initial:"Off"
        [ loc "Off"; loc ~inv:[ Clockcons.le ls duration ] "On" ]
        [ edge ~sync:(Model.Recv m) ~resets:[ ls ]
            ~updates:[ (sig_var, Expr.int 1) ]
            "Off" "On";
          (* re-trigger extends the level *)
          edge ~sync:(Model.Recv m) ~resets:[ ls ] "On" "On";
          edge
            ~guard:[ Clockcons.eq_ ls duration ]
            ~updates:[ (sig_var, Expr.int 0) ]
            "On" "Off" ]
    in
    { Piece.pc_automata = [ automaton ];
      pc_clocks = [ ls ];
      pc_vars = [ (sig_var, Model.flag ()) ];
      pc_channels = [] }
  | Scheme.Pulse ->
    invalid_arg "Ifmi.build: pulse signals cannot be polled"

let build_polling ~aperiodic ~comm m spec ~interval =
  let y = Names.ifmi_clock m in
  let p = Names.poll_clock m in
  let sig_var = Names.signal m in
  let at_tick = [ Clockcons.eq_ p interval ] in
  let automaton =
    Model.automaton ~name:(Names.ifmi m) ~initial:"Idle"
      [ loc ~inv:[ Clockcons.le p interval ] "Idle"; processing_loc spec m ]
      ([ edge ~guard:at_tick ~pred:(Expr.var_eq sig_var 1)
           ~resets:[ p; y ]
           ~updates:[ (sig_var, Expr.int 0) ]
           "Idle" "Processing";
         edge ~guard:at_tick ~pred:(Expr.var_eq sig_var 0) ~resets:[ p ]
           "Idle" "Idle" ]
       @ insertion_edges ~aperiodic ~comm m ~extra_resets:[ p ] spec)
  in
  let capacity, loss_flag = slot_of comm m in
  let own =
    { Piece.pc_automata = [ automaton ];
      pc_clocks = [ y; p ];
      pc_vars =
        [ (Names.input_buffer m, Model.int_var ~min:0 ~max:capacity 0);
          (loss_flag, Model.flag ()) ];
      pc_channels = [] }
  in
  Piece.merge own (build_latch m spec)

let build ~aperiodic ~comm m spec =
  match spec.Scheme.in_read with
  | Scheme.Interrupt _ -> build_interrupt ~aperiodic ~comm m spec
  | Scheme.Polling interval -> build_polling ~aperiodic ~comm m spec ~interval
