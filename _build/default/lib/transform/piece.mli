(** A fragment of the PSM under construction: some automata together with
    the clocks, variables and channels they need declared at network
    level. *)

type t = {
  pc_automata : Ta.Model.automaton list;
  pc_clocks : string list;
  pc_vars : (string * Ta.Model.var_decl) list;
  pc_channels : (string * Ta.Model.chan_kind) list;
}

val empty : t
val merge : t -> t -> t
val concat : t list -> t
