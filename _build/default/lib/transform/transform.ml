module Pim = Pim
module Names = Names
module Piece = Piece
module Ifmi = Ifmi
module Ifoc = Ifoc
module Exeio = Exeio

open Ta

type psm = {
  psm_net : Model.network;
  psm_pim : Pim.t;
  psm_scheme : Scheme.t;
  psm_mio : string;
  psm_input_loss_flags : (string * string) list;
  psm_output_loss_flags : (string * string) list;
  psm_miss_flags : (string * string) list;
}

exception Transform_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Transform_error s)) fmt

let mio_of_software (pim : Pim.t) =
  let m = Pim.software pim in
  let mapping chan =
    if List.mem chan pim.Pim.pim_inputs then Names.input_chan chan
    else if List.mem chan pim.Pim.pim_outputs then Names.output_chan chan
    else chan
  in
  let renamed = Model.rename_channels mapping m in
  let gated =
    Model.guard_all_edges (Expr.var_eq Names.exe_running 1) renamed
  in
  { gated with Model.aut_name = m.Model.aut_name ^ "_IO" }

let psm_of_pim (pim : Pim.t) (scheme : Scheme.t) =
  (match Scheme.check scheme with
   | [] -> ()
   | problems ->
     fail "scheme %s is not realisable: %s" scheme.Scheme.is_name
       (String.concat "; " problems));
  let input_spec m =
    try Scheme.input_spec scheme m
    with Not_found ->
      fail "scheme %s does not cover input %S" scheme.Scheme.is_name m
  in
  let output_spec c =
    try Scheme.output_spec scheme c
    with Not_found ->
      fail "scheme %s does not cover output %S" scheme.Scheme.is_name c
  in
  let aperiodic =
    match scheme.Scheme.is_invocation with
    | Scheme.Aperiodic _ -> true
    | Scheme.Periodic _ -> false
  in
  (* An aperiodic executive is only invoked when an input is inserted, so
     software that waits on a clock (a strictly positive lower-bound
     guard) is never woken to take the transition: the implementation
     starves and the model timelocks, which would make verified bounds
     unsound.  Reject the combination. *)
  if aperiodic then begin
    let software = Pim.software pim in
    let timed_wait (e : Model.edge) =
      List.exists
        (fun atom ->
          match atom with
          | Ta.Clockcons.Simple (_, (Ta.Clockcons.Ge | Ta.Clockcons.Gt), n) ->
            n > 0
          | Ta.Clockcons.Simple (_, Ta.Clockcons.Eq, n) -> n > 0
          | Ta.Clockcons.Simple (_, (Ta.Clockcons.Le | Ta.Clockcons.Lt), _)
          | Ta.Clockcons.Diff _ -> false)
        e.Model.edge_guard
    in
    match List.find_opt timed_wait software.Model.aut_edges with
    | Some e ->
      fail
        "aperiodic invocation requires immediate-response software, but \
         edge %s -> %s of %s waits on a clock; use periodic invocation"
        e.Model.edge_src e.Model.edge_dst software.Model.aut_name
    | None -> ()
  end;
  let input_pieces =
    List.map
      (fun m ->
        try
          Ifmi.build ~aperiodic ~comm:scheme.Scheme.is_input_comm m
            (input_spec m)
        with Invalid_argument msg -> fail "input %S: %s" m msg)
      pim.Pim.pim_inputs
  in
  let output_pieces =
    List.map
      (fun c -> Ifoc.build ~comm:scheme.Scheme.is_output_comm c (output_spec c))
      pim.Pim.pim_outputs
  in
  let exe_piece =
    Exeio.build ~invocation:scheme.Scheme.is_invocation
      ~exec:scheme.Scheme.is_exec ~input_comm:scheme.Scheme.is_input_comm
      ~output_comm:scheme.Scheme.is_output_comm ~inputs:pim.Pim.pim_inputs
      ~outputs:pim.Pim.pim_outputs
  in
  let platform = Piece.concat (input_pieces @ output_pieces @ [ exe_piece ]) in
  let mio = mio_of_software pim in
  let env = Pim.environment pim in
  let base = pim.Pim.pim_net in
  let net =
    Model.network
      ~name:(base.Model.net_name ^ "_psm")
      ~clocks:(base.Model.net_clocks @ platform.Piece.pc_clocks)
      ~vars:(base.Model.net_vars @ platform.Piece.pc_vars)
      ~channels:(base.Model.net_channels @ platform.Piece.pc_channels)
      ([ mio; env ] @ platform.Piece.pc_automata)
  in
  (match Model.validate net with
   | [] -> ()
   | problems ->
     fail "constructed PSM does not validate (transformation bug): %s"
       (String.concat "; " problems));
  let input_loss m =
    match scheme.Scheme.is_input_comm with
    | Scheme.Buffer _ -> Names.input_overflow m
    | Scheme.Shared_variable -> Names.input_lost m
  in
  let output_loss c =
    match scheme.Scheme.is_output_comm with
    | Scheme.Buffer _ -> Names.output_overflow c
    | Scheme.Shared_variable -> Names.output_lost c
  in
  let miss_flags =
    List.filter_map
      (fun m ->
        match (input_spec m).Scheme.in_read with
        | Scheme.Interrupt _ -> Some (m, Names.input_missed m)
        | Scheme.Polling _ -> None)
      pim.Pim.pim_inputs
  in
  { psm_net = net;
    psm_pim = pim;
    psm_scheme = scheme;
    psm_mio = mio.Model.aut_name;
    psm_input_loss_flags =
      List.map (fun m -> (m, input_loss m)) pim.Pim.pim_inputs;
    psm_output_loss_flags =
      List.map (fun c -> (c, output_loss c)) pim.Pim.pim_outputs;
    psm_miss_flags = miss_flags }
