(** Construction of the output interface automata [IFOC_c] (Section IV,
    step 2, Fig. 5-(2)): one automaton per controlled variable, modeling
    the Output-Device.

    The device sleeps in [Idle] until the executive's write stage
    broadcasts {!Names.flush_chan}; it then dequeues a pending output,
    processes it within [[delay_min, delay_max]], makes it visible to the
    environment by broadcasting the [c]-channel, and drains any remaining
    buffered outputs eagerly (through the committed [Check] location)
    before sleeping again. *)

val build :
  comm:Scheme.io_comm ->
  string ->             (* the c-channel *)
  Scheme.mc_output ->
  Piece.t
