lib/transform/names.ml: String
