lib/transform/names.mli:
