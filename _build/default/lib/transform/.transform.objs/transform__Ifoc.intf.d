lib/transform/ifoc.mli: Piece Scheme
