lib/transform/transform.ml: Exeio Expr Fmt Ifmi Ifoc List Model Names Piece Pim Scheme String Ta
