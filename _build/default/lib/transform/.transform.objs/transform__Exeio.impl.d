lib/transform/exeio.ml: Clockcons Expr List Model Names Piece Scheme Ta
