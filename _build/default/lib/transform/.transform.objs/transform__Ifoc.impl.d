lib/transform/ifoc.ml: Clockcons Expr Model Names Piece Scheme Ta
