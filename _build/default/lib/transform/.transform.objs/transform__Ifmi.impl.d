lib/transform/ifmi.ml: Clockcons Expr Model Names Piece Scheme Ta
