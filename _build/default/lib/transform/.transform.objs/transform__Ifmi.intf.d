lib/transform/ifmi.mli: Piece Scheme
