lib/transform/pim.mli: Ta
