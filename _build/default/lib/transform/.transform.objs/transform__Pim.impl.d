lib/transform/pim.ml: Fmt List Model String Ta
