lib/transform/transform.mli: Exeio Ifmi Ifoc Names Piece Pim Scheme Ta
