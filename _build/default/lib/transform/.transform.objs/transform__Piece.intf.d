lib/transform/piece.mli: Ta
