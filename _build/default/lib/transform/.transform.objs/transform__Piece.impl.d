lib/transform/piece.ml: List Ta
