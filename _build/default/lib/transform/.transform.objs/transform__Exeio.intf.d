lib/transform/exeio.mli: Piece Scheme
