type t = {
  pc_automata : Ta.Model.automaton list;
  pc_clocks : string list;
  pc_vars : (string * Ta.Model.var_decl) list;
  pc_channels : (string * Ta.Model.chan_kind) list;
}

let empty =
  { pc_automata = []; pc_clocks = []; pc_vars = []; pc_channels = [] }

let dedup_assoc l =
  List.fold_left
    (fun acc (k, v) -> if List.mem_assoc k acc then acc else acc @ [ (k, v) ])
    [] l

let dedup l =
  List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] l

let merge a b =
  { pc_automata = a.pc_automata @ b.pc_automata;
    pc_clocks = dedup (a.pc_clocks @ b.pc_clocks);
    pc_vars = dedup_assoc (a.pc_vars @ b.pc_vars);
    pc_channels = dedup_assoc (a.pc_channels @ b.pc_channels) }

let concat pieces = List.fold_left merge empty pieces
