(** Platform-independent models (Definition 2 of the paper).

    A PIM is a network [M || ENV]: [M] models the software, [ENV] the
    environment, and they interact directly over input synchronisations
    (the [m]-channels, sent by [ENV] and received by [M]) and output
    synchronisations (the [c]-channels, sent by [M] and observed by
    [ENV]).  The io-boundary does not exist yet — that is exactly what the
    PIM-to-PSM transformation adds. *)

type t = {
  pim_net : Ta.Model.network;
  pim_software : string;     (** name of the [M] automaton *)
  pim_environment : string;  (** name of the [ENV] automaton *)
  pim_inputs : string list;  (** the [m]-channels *)
  pim_outputs : string list; (** the [c]-channels *)
}

exception Ill_formed of string

(** [make net ~software ~environment] identifies the two automata and
    infers the input/output synchronisation alphabets from the software
    automaton ([Am] = received channels, [Ac] = sent channels).

    Checks Definition 2's side conditions and the restrictions the
    transformation relies on:
    - both automata exist and the network validates;
    - every channel is used at either the software or environment side;
    - input-receiving edges of [M] carry no clock guard (they become
      broadcast receptions in the PSM);
    - [m]- and [c]-channels are declared broadcast (direct, non-blocking
      synchronisation at the mc-boundary).

    @raise Ill_formed when a condition fails. *)
val make :
  Ta.Model.network -> software:string -> environment:string -> t

val software : t -> Ta.Model.automaton
val environment : t -> Ta.Model.automaton
