(** Construction of the input interface automata [IFMI_m] (Section IV,
    step 2, Fig. 5-(1)): one automaton per monitored variable, modeling
    the Input-Device's detection of the environmental signal, the
    processing delay window [[delay_min, delay_max]], and the insertion of
    the processed input into the io-boundary communication slot
    (bounded buffer, or shared variable modeled as a one-slot buffer with
    an overwrite-loss flag instead of an overflow flag).

    Interrupt reading reacts to the [m]-broadcast directly; a second pulse
    arriving while the device is busy sets the {e missed-input} flag
    (Constraint 1 instrumentation).  Polling reading adds a latch
    automaton holding the signal level and samples it every polling
    interval.

    When [aperiodic] is set, every successful insertion also broadcasts
    {!Names.kick_chan} so the executive can be invoked immediately. *)

val build :
  aperiodic:bool ->
  comm:Scheme.io_comm ->
  string ->             (* the m-channel *)
  Scheme.mc_input ->
  Piece.t
