open Ta

let loc = Model.location
let edge = Model.edge

let build ~comm c (spec : Scheme.mc_output) =
  let y = Names.ifoc_clock c in
  let buf = Names.output_buffer c in
  let capacity =
    match comm with
    | Scheme.Buffer (size, _) -> size
    | Scheme.Shared_variable -> 1
  in
  let pending = Expr.(gt (var buf) (int 0)) in
  let empty = Expr.var_eq buf 0 in
  let dequeue = [ (buf, Expr.(var buf - int 1)) ] in
  let automaton =
    Model.automaton ~name:(Names.ifoc c) ~initial:"Idle"
      [ loc "Idle";
        loc ~inv:[ Clockcons.le y spec.Scheme.out_delay.Scheme.delay_max ]
          "Processing";
        loc ~kind:Model.Committed "Check" ]
      [ edge ~sync:(Model.Recv Names.flush_chan) ~pred:pending ~resets:[ y ]
          ~updates:dequeue "Idle" "Processing";
        edge
          ~guard:[ Clockcons.ge y spec.Scheme.out_delay.Scheme.delay_min ]
          ~sync:(Model.Send c) "Processing" "Check";
        edge ~pred:pending ~resets:[ y ] ~updates:dequeue "Check" "Processing";
        edge ~pred:empty "Check" "Idle" ]
  in
  { Piece.pc_automata = [ automaton ];
    pc_clocks = [ y ];
    pc_vars =
      [ (buf, Model.int_var ~min:0 ~max:capacity 0);
        (Names.output_staged c, Model.int_var ~min:0 ~max:capacity 0);
        ((match comm with
          | Scheme.Buffer _ -> Names.output_overflow c
          | Scheme.Shared_variable -> Names.output_lost c),
         Model.flag ()) ];
    pc_channels = [] }
