(** Construction of the code-execution automaton [EXEIO] (Section IV,
    step 3, Fig. 6).  It models the platform's invocation of the generated
    code and the io-boundary data flow, through five stages:

    - [Waiting]: between invocations.  Periodic invocation fires every
      [period] on the executive clock; aperiodic invocation reacts to the
      {!Names.kick_chan} broadcast sent by an input interface on every
      successful insertion.
    - [Active] (committed): invocation accepted, [exe_run] raised so the
      [MIO] edges become enabled.
    - [Reading] (committed): processed inputs are delivered to [MIO] as
      broadcasts on the [i]-channels — one input under read-one, all
      pending inputs under read-all.  An input [MIO] cannot consume in its
      current location is discarded, exactly the transition-decision
      semantics of Section III-B.
    - [Computing]: the code executes for a duration in
      [[wcet_min, wcet_max]]; [MIO] transitions happen here, and outputs
      sent by [MIO] on the [o]-channels are staged.
    - [Writing] (committed): staged outputs are published to the output
      buffers, [exe_run] drops, and {!Names.flush_chan} wakes the output
      devices.  An aperiodic executive with pending inputs re-invokes
      itself immediately (after the minimum gap, if any). *)

val build :
  invocation:Scheme.invocation ->
  exec:Scheme.exec_window ->
  input_comm:Scheme.io_comm ->
  output_comm:Scheme.io_comm ->
  inputs:string list ->
  outputs:string list ->
  Piece.t
