open Ta

let loc = Model.location
let edge = Model.edge

let z = Names.exe_clock
let running = Names.exe_running

let input_policy = function
  | Scheme.Buffer (_, policy) -> policy
  | Scheme.Shared_variable -> Scheme.Read_all

let output_capacity = function
  | Scheme.Buffer (size, _) -> size
  | Scheme.Shared_variable -> 1

let output_loss_flag comm c =
  match comm with
  | Scheme.Buffer _ -> Names.output_overflow c
  | Scheme.Shared_variable -> Names.output_lost c

(* Delivery of processed inputs to MIO.  The i-channels are broadcast, so
   an input MIO cannot consume is discarded by the very same transition. *)
let reading_edges ~input_comm ~inputs =
  let buf m = Expr.var (Names.input_buffer m) in
  let take m = (Names.input_buffer m, Expr.(buf m - int 1)) in
  let all_empty =
    Expr.conj (List.map (fun m -> Expr.var_eq (Names.input_buffer m) 0) inputs)
  in
  match input_policy input_comm with
  | Scheme.Read_all ->
    List.map
      (fun m ->
        edge
          ~pred:Expr.(gt (buf m) (int 0))
          ~sync:(Model.Send (Names.input_chan m))
          ~updates:[ take m ] "Reading" "Reading")
      inputs
    @ [ edge ~pred:all_empty "Reading" "Computing" ]
  | Scheme.Read_one ->
    List.map
      (fun m ->
        edge
          ~pred:Expr.(gt (buf m) (int 0))
          ~sync:(Model.Send (Names.input_chan m))
          ~updates:[ take m ] "Reading" "Computing")
      inputs
    @ [ edge ~pred:all_empty "Reading" "Computing" ]

(* Collection of outputs emitted by MIO while computing.  They are staged
   and only become visible to the output devices at the write stage. *)
let computing_loops ~output_comm ~outputs =
  let per_output c =
    let stg = Expr.var (Names.output_staged c) in
    let buf = Expr.var (Names.output_buffer c) in
    let level = Expr.(stg + buf) in
    let capacity = output_capacity output_comm in
    [ edge
        ~pred:Expr.(lt level (int capacity))
        ~sync:(Model.Recv (Names.output_chan c))
        ~updates:[ (Names.output_staged c, Expr.(stg + int 1)) ]
        "Computing" "Computing";
      edge
        ~pred:Expr.(ge level (int capacity))
        ~sync:(Model.Recv (Names.output_chan c))
        ~updates:[ (output_loss_flag output_comm c, Expr.int 1) ]
        "Computing" "Computing" ]
  in
  List.concat_map per_output outputs

let publish_updates ~outputs =
  List.concat_map
    (fun c ->
      let stg = Names.output_staged c and buf = Names.output_buffer c in
      [ (buf, Expr.(var buf + var stg)); (stg, Expr.int 0) ])
    outputs
  @ [ (running, Expr.int 0) ]

let build ~invocation ~exec ~input_comm ~output_comm ~inputs ~outputs =
  let some_pending =
    match inputs with
    | [] -> Expr.False
    | m :: rest ->
      List.fold_left
        (fun acc m' ->
          Expr.Or (acc, Expr.(gt (var (Names.input_buffer m')) (int 0))))
        Expr.(gt (var (Names.input_buffer m)) (int 0))
        rest
  in
  let invoke_updates = [ (running, Expr.int 1) ] in
  let shared_locs =
    [ loc ~kind:Model.Committed "Active";
      loc ~kind:Model.Committed "Reading";
      loc ~inv:[ Clockcons.le z exec.Scheme.wcet_max ] "Computing";
      loc ~kind:Model.Committed "Writing" ]
  in
  let shared_edges =
    [ edge "Active" "Reading" ]
    @ reading_edges ~input_comm ~inputs
    @ computing_loops ~output_comm ~outputs
    @ [ edge
          ~guard:[ Clockcons.ge z exec.Scheme.wcet_min ]
          ~updates:(publish_updates ~outputs) "Computing" "Writing" ]
  in
  let locs, edges, channels =
    match invocation with
    | Scheme.Periodic period ->
      let locs = loc ~inv:[ Clockcons.le z period ] "Waiting" :: shared_locs in
      let edges =
        edge
          ~guard:[ Clockcons.eq_ z period ]
          ~resets:[ z ] ~updates:invoke_updates "Waiting" "Active"
        :: edge ~sync:(Model.Send Names.flush_chan) "Writing" "Waiting"
        :: shared_edges
      in
      (locs, edges, [ (Names.flush_chan, Model.Broadcast) ])
    | Scheme.Aperiodic gap ->
      let recheck = loc ~kind:Model.Committed "Recheck" in
      let base_locs = loc "Waiting" :: recheck :: shared_locs in
      let base_edges =
        edge ~sync:(Model.Recv Names.kick_chan) ~resets:[ z ]
          ~updates:invoke_updates "Waiting" "Active"
        :: edge ~sync:(Model.Send Names.flush_chan) "Writing" "Recheck"
        :: edge ~pred:(Expr.Not some_pending) "Recheck" "Waiting"
        :: shared_edges
      in
      let locs, edges =
        if gap = 0 then
          ( base_locs,
            edge ~pred:some_pending ~resets:[ z ] ~updates:invoke_updates
              "Recheck" "Active"
            :: base_edges )
        else
          ( loc ~inv:[ Clockcons.le z gap ] "Cooldown" :: base_locs,
            edge ~pred:some_pending ~resets:[ z ] "Recheck" "Cooldown"
            :: edge
                 ~guard:[ Clockcons.eq_ z gap ]
                 ~resets:[ z ] ~updates:invoke_updates "Cooldown" "Active"
            :: base_edges )
      in
      ( locs,
        edges,
        [ (Names.flush_chan, Model.Broadcast);
          (Names.kick_chan, Model.Broadcast) ] )
  in
  let automaton =
    Model.automaton ~name:Names.exeio ~initial:"Waiting" locs edges
  in
  { Piece.pc_automata = [ automaton ];
    pc_clocks = [ z ];
    pc_vars = [ (running, Model.flag ()) ];
    pc_channels =
      channels
      @ List.map (fun m -> (Names.input_chan m, Model.Broadcast)) inputs
      @ List.map (fun c -> (Names.output_chan c, Model.Binary)) outputs }
