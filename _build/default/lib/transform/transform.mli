(** The modular PIM-to-PSM transformation (Section IV of the paper).

    Given a platform-independent model and an implementation scheme, build
    the platform-specific model

    {v PSM = MIO || IFMI_1 .. IFMI_k || IFOC_1 .. IFOC_j || EXEIO || ENVMC v}

    The transformation is modular: [MIO] is the software automaton with
    its synchronisations renamed from the [m]/[c]- to the [i]/[o]-channels
    and every edge gated on the executive's compute window, and [ENVMC]
    is the environment automaton completely unchanged.  All
    platform-specific behavior lives in the generated interface and
    executive automata. *)

(** Re-exports: [transform] is the library's root module, so the sibling
    modules are surfaced here. *)

module Pim = Pim
module Names = Names
module Piece = Piece
module Ifmi = Ifmi
module Ifoc = Ifoc
module Exeio = Exeio

type psm = {
  psm_net : Ta.Model.network;
  psm_pim : Pim.t;
  psm_scheme : Scheme.t;
  psm_mio : string;  (** name of the [MIO] automaton in [psm_net] *)
  psm_input_loss_flags : (string * string) list;
      (** m-channel -> its overflow / overwrite-loss flag *)
  psm_output_loss_flags : (string * string) list;
      (** c-channel -> its overflow / overwrite-loss flag *)
  psm_miss_flags : (string * string) list;
      (** m-channel -> missed-interrupt flag (interrupt inputs only) *)
}

exception Transform_error of string

(** [psm_of_pim pim scheme] runs the transformation.

    @raise Transform_error when the scheme fails {!Scheme.check}, does not
    cover every boundary variable of the PIM, combines aperiodic
    invocation with software that waits on a clock (the executive would
    never wake it: the implementation starves and bounds would be
    unsound), or the assembled network fails validation (a bug — the
    constructed PSM is well-formed by construction). *)
val psm_of_pim : Pim.t -> Scheme.t -> psm

(** The [MIO] construction alone (renaming + compute-window gating),
    exposed for structural tests and the [.xta] exporter. *)
val mio_of_software :
  Pim.t -> Ta.Model.automaton
