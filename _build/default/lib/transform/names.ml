let suffix chan =
  let strip prefix =
    if String.length chan > String.length prefix
       && String.sub chan 0 (String.length prefix) = prefix
    then Some (String.sub chan (String.length prefix)
                 (String.length chan - String.length prefix))
    else None
  in
  match strip "m_" with
  | Some s -> s
  | None ->
    (match strip "c_" with
     | Some s -> s
     | None -> chan)

let input_chan m = "i_" ^ suffix m
let output_chan c = "o_" ^ suffix c
let flush_chan = "exe_flush"
let kick_chan = "exe_kick"

let ifmi m = "IFMI_" ^ suffix m
let ifoc c = "IFOC_" ^ suffix c
let latch m = "Latch_" ^ suffix m
let exeio = "EXEIO"

let ifmi_clock m = "y_in_" ^ suffix m
let poll_clock m = "p_" ^ suffix m
let input_buffer m = "ibuf_" ^ suffix m
let input_overflow m = "iovf_" ^ suffix m
let input_lost m = "ilost_" ^ suffix m
let input_missed m = "imiss_" ^ suffix m
let signal m = "sig_" ^ suffix m
let latch_clock m = "ls_" ^ suffix m

let ifoc_clock c = "y_out_" ^ suffix c
let output_buffer c = "obuf_" ^ suffix c
let output_staged c = "ostg_" ^ suffix c
let output_overflow c = "oovf_" ^ suffix c
let output_lost c = "olost_" ^ suffix c

let exe_clock = "z_exe"
let exe_running = "exe_run"
