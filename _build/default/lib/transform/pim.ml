open Ta

type t = {
  pim_net : Model.network;
  pim_software : string;
  pim_environment : string;
  pim_inputs : string list;
  pim_outputs : string list;
}

exception Ill_formed of string

let fail fmt = Fmt.kstr (fun s -> raise (Ill_formed s)) fmt

let make net ~software ~environment =
  (match Model.validate net with
   | [] -> ()
   | problems -> fail "invalid PIM network: %s" (String.concat "; " problems));
  let find name =
    try Model.find_automaton net name
    with Not_found -> fail "PIM has no automaton named %S" name
  in
  let m = find software in
  let _env = find environment in
  let inputs = Model.receives_of m in
  let outputs = Model.sends_of m in
  if inputs = [] && outputs = [] then
    fail "software automaton %S has no synchronisations" software;
  let check_broadcast chan =
    match Model.channel_kind net chan with
    | Model.Broadcast -> ()
    | Model.Binary ->
      fail
        "channel %S must be declared broadcast: mc-boundary \
         synchronisations are direct and non-blocking"
        chan
  in
  List.iter check_broadcast inputs;
  List.iter check_broadcast outputs;
  let check_input_edge e =
    match e.Model.edge_sync with
    | Model.Recv chan when List.mem chan inputs && e.Model.edge_guard <> [] ->
      fail
        "software edge %s -> %s receives %S with a clock guard; input \
         receptions must be clock-guard-free to become broadcast \
         receptions in the PSM"
        e.Model.edge_src e.Model.edge_dst chan
    | Model.Recv _ | Model.Send _ | Model.Tau -> ()
  in
  List.iter check_input_edge m.Model.aut_edges;
  { pim_net = net;
    pim_software = software;
    pim_environment = environment;
    pim_inputs = inputs;
    pim_outputs = outputs }

let software t = Model.find_automaton t.pim_net t.pim_software
let environment t = Model.find_automaton t.pim_net t.pim_environment
