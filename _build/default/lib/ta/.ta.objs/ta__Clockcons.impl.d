lib/ta/clockcons.ml: Fmt List
