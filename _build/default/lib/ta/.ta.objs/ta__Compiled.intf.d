lib/ta/compiled.mli: Model
