lib/ta/clockcons.mli: Format
