lib/ta/expr.ml: Array Fmt List Stdlib
