lib/ta/model.ml: Clockcons Expr Fmt List
