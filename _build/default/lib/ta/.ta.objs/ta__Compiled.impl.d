lib/ta/compiled.ml: Array Clockcons Expr Fmt Hashtbl List Model String
