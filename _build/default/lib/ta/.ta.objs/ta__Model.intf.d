lib/ta/model.mli: Clockcons Expr Format
