(** Integer expressions and boolean predicates over bounded integer
    variables.  This is the data (non-clock) part of guards and updates in
    the UPPAAL-style modeling language. *)

type t =
  | Int of int
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t

type rel = Lt | Le | Eq | Ge | Gt | Ne

type pred =
  | True
  | False
  | Cmp of t * rel * t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

(** {1 Constructors} *)

val int : int -> t
val var : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t

val eq : t -> t -> pred
val ne : t -> t -> pred
val lt : t -> t -> pred
val le : t -> t -> pred
val gt : t -> t -> pred
val ge : t -> t -> pred
val conj : pred list -> pred

(** [var_eq x n] is the common guard [x == n] on variable [x]. *)
val var_eq : string -> int -> pred

(** {1 Inspection} *)

(** Free variables of an expression, without duplicates. *)
val vars_of_expr : t -> string list

(** Free variables of a predicate, without duplicates. *)
val vars_of_pred : pred -> string list

(** {1 Evaluation} *)

(** [eval_expr env e] evaluates [e]; [env] maps variable names to values and
    must be total on the free variables of [e]. *)
val eval_expr : (string -> int) -> t -> int

val eval_pred : (string -> int) -> pred -> bool

(** {1 Compilation}

    Compiling resolves variable names to integer indices once, returning a
    closure evaluated against an [int array] valuation.  [index] must raise
    [Not_found] only for genuinely unknown names. *)

val compile_expr : index:(string -> int) -> t -> int array -> int
val compile_pred : index:(string -> int) -> pred -> int array -> bool

(** {1 Pretty-printing} *)

val pp_expr : Format.formatter -> t -> unit
val pp_rel : Format.formatter -> rel -> unit
val pp_pred : Format.formatter -> pred -> unit
