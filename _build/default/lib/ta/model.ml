type loc_kind = Normal | Urgent | Committed

type location = {
  loc_name : string;
  loc_kind : loc_kind;
  loc_inv : Clockcons.t;
}

type sync =
  | Tau
  | Send of string
  | Recv of string

type edge = {
  edge_src : string;
  edge_dst : string;
  edge_guard : Clockcons.t;
  edge_pred : Expr.pred;
  edge_sync : sync;
  edge_resets : string list;
  edge_updates : (string * Expr.t) list;
}

type automaton = {
  aut_name : string;
  aut_locations : location list;
  aut_initial : string;
  aut_edges : edge list;
}

type chan_kind = Binary | Broadcast

type var_decl = {
  var_init : int;
  var_min : int;
  var_max : int;
}

type network = {
  net_name : string;
  net_clocks : string list;
  net_vars : (string * var_decl) list;
  net_channels : (string * chan_kind) list;
  net_automata : automaton list;
}

let location ?(kind = Normal) ?(inv = Clockcons.tt) name =
  { loc_name = name; loc_kind = kind; loc_inv = inv }

let edge ?(guard = Clockcons.tt) ?(pred = Expr.True) ?(sync = Tau)
    ?(resets = []) ?(updates = []) src dst =
  { edge_src = src;
    edge_dst = dst;
    edge_guard = guard;
    edge_pred = pred;
    edge_sync = sync;
    edge_resets = resets;
    edge_updates = updates }

let automaton ~name ~initial locations edges =
  { aut_name = name;
    aut_locations = locations;
    aut_initial = initial;
    aut_edges = edges }

let int_var ?(min = 0) ?(max = 1_000_000) init =
  { var_init = init; var_min = min; var_max = max }

let flag () = int_var ~min:0 ~max:1 0

let network ~name ~clocks ~vars ~channels automata =
  { net_name = name;
    net_clocks = clocks;
    net_vars = vars;
    net_channels = channels;
    net_automata = automata }

let find_automaton net name =
  List.find (fun a -> a.aut_name = name) net.net_automata

let find_location a name =
  List.find (fun l -> l.loc_name = name) a.aut_locations

let channel_kind net name = List.assoc name net.net_channels

let chans_matching select a =
  let add acc e =
    match select e.edge_sync with
    | Some c when not (List.mem c acc) -> c :: acc
    | Some _ | None -> acc
  in
  List.rev (List.fold_left add [] a.aut_edges)

let sends_of a =
  chans_matching (function Send c -> Some c | Recv _ | Tau -> None) a

let receives_of a =
  chans_matching (function Recv c -> Some c | Send _ | Tau -> None) a

let rename_channels mapping a =
  let rename_sync = function
    | Tau -> Tau
    | Send c -> Send (mapping c)
    | Recv c -> Recv (mapping c)
  in
  let rename_edge e = { e with edge_sync = rename_sync e.edge_sync } in
  { a with aut_edges = List.map rename_edge a.aut_edges }

let guard_all_edges ?(except = fun _ -> false) pred a =
  let strengthen e =
    if except e then e
    else { e with edge_pred = Expr.conj [ e.edge_pred; pred ] }
  in
  { a with aut_edges = List.map strengthen a.aut_edges }

let replace_automaton net name a =
  let subst b = if b.aut_name = name then a else b in
  { net with net_automata = List.map subst net.net_automata }

let add_automata net automata =
  { net with net_automata = net.net_automata @ automata }

let duplicates names =
  let sorted = List.sort compare names in
  let rec scan acc = function
    | a :: (b :: _ as rest) ->
      scan (if a = b && not (List.mem a acc) then a :: acc else acc) rest
    | [ _ ] | [] -> acc
  in
  scan [] sorted

let validate net =
  let problems = ref [] in
  let fail fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  List.iter (fail "duplicate clock %S") (duplicates net.net_clocks);
  List.iter (fail "duplicate variable %S")
    (duplicates (List.map fst net.net_vars));
  List.iter (fail "duplicate channel %S")
    (duplicates (List.map fst net.net_channels));
  List.iter (fail "duplicate automaton %S")
    (duplicates (List.map (fun a -> a.aut_name) net.net_automata));
  let clock_known c = List.mem c net.net_clocks in
  let var_known v = List.mem_assoc v net.net_vars in
  let chan_known c = List.mem_assoc c net.net_channels in
  let check_clockcons owner atoms =
    List.iter
      (fun c -> if not (clock_known c) then fail "%s: unknown clock %S" owner c)
      (Clockcons.clocks atoms);
    (* Maximal-constant extrapolation is unsound in the presence of
       diagonal constraints, so the model layer forbids them; the zone
       layer still supports difference bounds internally. *)
    List.iter
      (fun atom ->
        match atom with
        | Clockcons.Diff (x, y, _, _) ->
          fail
            "%s: diagonal constraint on %s - %s; diagonal guards and \
             invariants are not supported (extrapolation would be unsound)"
            owner x y
        | Clockcons.Simple _ -> ())
      atoms
  in
  let check_pred owner p =
    List.iter
      (fun v -> if not (var_known v) then fail "%s: unknown variable %S" owner v)
      (Expr.vars_of_pred p)
  in
  let check_automaton a =
    let owner = a.aut_name in
    let loc_names = List.map (fun l -> l.loc_name) a.aut_locations in
    List.iter (fail "%s: duplicate location %S" owner) (duplicates loc_names);
    if not (List.mem a.aut_initial loc_names) then
      fail "%s: initial location %S undeclared" owner a.aut_initial;
    List.iter
      (fun l -> check_clockcons (owner ^ "." ^ l.loc_name) l.loc_inv)
      a.aut_locations;
    let check_edge e =
      let where = Fmt.str "%s: %s -> %s" owner e.edge_src e.edge_dst in
      if not (List.mem e.edge_src loc_names) then
        fail "%s: unknown source location" where;
      if not (List.mem e.edge_dst loc_names) then
        fail "%s: unknown target location" where;
      check_clockcons where e.edge_guard;
      check_pred where e.edge_pred;
      List.iter
        (fun c -> if not (clock_known c) then fail "%s: resets unknown clock %S" where c)
        e.edge_resets;
      List.iter
        (fun (v, rhs) ->
          if not (var_known v) then fail "%s: assigns unknown variable %S" where v;
          List.iter
            (fun u -> if not (var_known u) then fail "%s: unknown variable %S" where u)
            (Expr.vars_of_expr rhs))
        e.edge_updates;
      (match e.edge_sync with
       | Tau -> ()
       | Send c | Recv c ->
         if not (chan_known c) then fail "%s: unknown channel %S" where c);
      (match e.edge_sync with
       | Recv c
         when chan_known c
              && channel_kind net c = Broadcast
              && e.edge_guard <> [] ->
         fail "%s: broadcast receive on %S must not have a clock guard" where c
       | Recv _ | Send _ | Tau -> ())
    in
    List.iter check_edge a.aut_edges
  in
  List.iter check_automaton net.net_automata;
  List.rev !problems

let size net =
  let add (nl, ne) a =
    (nl + List.length a.aut_locations, ne + List.length a.aut_edges)
  in
  List.fold_left add (0, 0) net.net_automata

let pp_sync ppf = function
  | Tau -> Fmt.string ppf "tau"
  | Send c -> Fmt.pf ppf "%s!" c
  | Recv c -> Fmt.pf ppf "%s?" c

let pp_edge ppf e =
  Fmt.pf ppf "%s -> %s [%a; %a; %a" e.edge_src e.edge_dst Clockcons.pp
    e.edge_guard Expr.pp_pred e.edge_pred pp_sync e.edge_sync;
  if e.edge_resets <> [] then
    Fmt.pf ppf "; reset %a" Fmt.(list ~sep:comma string) e.edge_resets;
  List.iter (fun (v, rhs) -> Fmt.pf ppf "; %s := %a" v Expr.pp_expr rhs)
    e.edge_updates;
  Fmt.string ppf "]"

let pp_location ppf l =
  let kind =
    match l.loc_kind with
    | Normal -> ""
    | Urgent -> " (urgent)"
    | Committed -> " (committed)"
  in
  Fmt.pf ppf "%s%s inv: %a" l.loc_name kind Clockcons.pp l.loc_inv

let pp_automaton ppf a =
  Fmt.pf ppf "@[<v 2>automaton %s (init %s)@,%a@,%a@]" a.aut_name a.aut_initial
    Fmt.(list ~sep:cut pp_location)
    a.aut_locations
    Fmt.(list ~sep:cut pp_edge)
    a.aut_edges

let pp ppf net =
  Fmt.pf ppf "@[<v>network %s@,clocks: %a@,vars: %a@,channels: %a@,%a@]"
    net.net_name
    Fmt.(list ~sep:comma string)
    net.net_clocks
    Fmt.(list ~sep:comma (using fst string))
    net.net_vars
    Fmt.(list ~sep:comma (using fst string))
    net.net_channels
    Fmt.(list ~sep:cut pp_automaton)
    net.net_automata
