type t =
  | Int of int
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t

type rel = Lt | Le | Eq | Ge | Gt | Ne

type pred =
  | True
  | False
  | Cmp of t * rel * t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

let int n = Int n
let var x = Var x
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)

let eq a b = Cmp (a, Eq, b)
let ne a b = Cmp (a, Ne, b)
let lt a b = Cmp (a, Lt, b)
let le a b = Cmp (a, Le, b)
let gt a b = Cmp (a, Gt, b)
let ge a b = Cmp (a, Ge, b)

let conj ps =
  let join acc p =
    match acc, p with
    | True, p -> p
    | acc, True -> acc
    | acc, p -> And (acc, p)
  in
  List.fold_left join True ps

let var_eq x n = eq (Var x) (Int n)

let rec add_vars_expr acc e =
  match e with
  | Int _ -> acc
  | Var x -> if List.mem x acc then acc else x :: acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> add_vars_expr (add_vars_expr acc a) b
  | Neg a -> add_vars_expr acc a

let rec add_vars_pred acc p =
  match p with
  | True | False -> acc
  | Cmp (a, _, b) -> add_vars_expr (add_vars_expr acc a) b
  | And (a, b) | Or (a, b) -> add_vars_pred (add_vars_pred acc a) b
  | Not a -> add_vars_pred acc a

let vars_of_expr e = List.rev (add_vars_expr [] e)
let vars_of_pred p = List.rev (add_vars_pred [] p)

let rec eval_expr env e =
  match e with
  | Int n -> n
  | Var x -> env x
  | Add (a, b) -> Stdlib.( + ) (eval_expr env a) (eval_expr env b)
  | Sub (a, b) -> Stdlib.( - ) (eval_expr env a) (eval_expr env b)
  | Mul (a, b) -> Stdlib.( * ) (eval_expr env a) (eval_expr env b)
  | Neg a -> Stdlib.( - ) 0 (eval_expr env a)

let holds rel a b =
  match rel with
  | Lt -> a < b
  | Le -> a <= b
  | Eq -> a = b
  | Ge -> a >= b
  | Gt -> a > b
  | Ne -> a <> b

let rec eval_pred env p =
  match p with
  | True -> true
  | False -> false
  | Cmp (a, rel, b) -> holds rel (eval_expr env a) (eval_expr env b)
  | And (a, b) -> eval_pred env a && eval_pred env b
  | Or (a, b) -> eval_pred env a || eval_pred env b
  | Not a -> not (eval_pred env a)

let rec compile_expr ~index e =
  match e with
  | Int n -> fun _ -> n
  | Var x ->
    let i = index x in
    fun vals -> vals.(i)
  | Add (a, b) ->
    let fa = compile_expr ~index a and fb = compile_expr ~index b in
    fun vals -> Stdlib.( + ) (fa vals) (fb vals)
  | Sub (a, b) ->
    let fa = compile_expr ~index a and fb = compile_expr ~index b in
    fun vals -> Stdlib.( - ) (fa vals) (fb vals)
  | Mul (a, b) ->
    let fa = compile_expr ~index a and fb = compile_expr ~index b in
    fun vals -> Stdlib.( * ) (fa vals) (fb vals)
  | Neg a ->
    let fa = compile_expr ~index a in
    fun vals -> Stdlib.( - ) 0 (fa vals)

let rec compile_pred ~index p =
  match p with
  | True -> fun _ -> true
  | False -> fun _ -> false
  | Cmp (a, rel, b) ->
    let fa = compile_expr ~index a and fb = compile_expr ~index b in
    fun vals -> holds rel (fa vals) (fb vals)
  | And (a, b) ->
    let fa = compile_pred ~index a and fb = compile_pred ~index b in
    fun vals -> fa vals && fb vals
  | Or (a, b) ->
    let fa = compile_pred ~index a and fb = compile_pred ~index b in
    fun vals -> fa vals || fb vals
  | Not a ->
    let fa = compile_pred ~index a in
    fun vals -> not (fa vals)

(* Negative literals print parenthesised so that printing is stable under
   re-parsing: both [Int (-7)] and [Neg (Int 7)] render as ["(-7)"]. *)
let rec pp_expr ppf e =
  match e with
  | Int n -> if n < 0 then Fmt.pf ppf "(%d)" n else Fmt.int ppf n
  | Var x -> Fmt.string ppf x
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_expr a pp_expr b
  | Neg a -> Fmt.pf ppf "(-%a)" pp_expr a

let pp_rel ppf rel =
  let s =
    match rel with
    | Lt -> "<"
    | Le -> "<="
    | Eq -> "=="
    | Ge -> ">="
    | Gt -> ">"
    | Ne -> "!="
  in
  Fmt.string ppf s

let rec pp_pred ppf p =
  match p with
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Cmp (a, rel, b) -> Fmt.pf ppf "%a %a %a" pp_expr a pp_rel rel pp_expr b
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp_pred a pp_pred b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp_pred a pp_pred b
  | Not a -> Fmt.pf ppf "!(%a)" pp_pred a
