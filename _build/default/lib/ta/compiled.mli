(** Compilation of a {!Model.network} to an indexed form used by the zone
    explorer and the discrete-event simulator: clocks, variables, channels
    and locations become dense integer indices; data guards and updates
    become closures over an [int array] valuation; clock constraints are
    normalised to difference bounds [xi - xj {<,<=} n] with index 0 the
    reference clock. *)

(** A normalised difference constraint [xi - xj < n] (strict) or
    [xi - xj <= n]. *)
type dconstraint = {
  dc_i : int;
  dc_j : int;
  dc_strict : bool;
  dc_bound : int;
}

type csync = CTau | CSend of int | CRecv of int

type cedge = {
  ce_aut : int;
  ce_index : int;  (** position in the automaton's edge list, for traces *)
  ce_src : int;
  ce_dst : int;
  ce_guard : dconstraint list;
  ce_pred : int array -> bool;
  ce_sync : csync;
  ce_resets : int list;
  ce_updates : (int * (int array -> int)) list;
  ce_model : Model.edge;
}

type cloc = {
  cl_name : string;
  cl_kind : Model.loc_kind;
  cl_inv : dconstraint list;
  cl_free : int list;
      (** clocks owned by this automaton that are {e inactive} here: on
          every path from this location they are reset before being read
          by any guard or invariant.  A zone explorer may soundly free
          them (Daws-Yovine activity reduction). *)
}

type cautomaton = {
  ca_name : string;
  ca_initial : int;
  ca_locs : cloc array;
  ca_out : cedge list array;  (** outgoing edges, indexed by source location *)
}

type t = {
  c_model : Model.network;
  c_nclocks : int;  (** number of real clocks; DBM dimension is [c_nclocks + 1] *)
  c_clock_names : string array;  (** length [c_nclocks + 1]; slot 0 is ["0"] *)
  c_var_names : string array;
  c_var_bounds : (int * int) array;
  c_var_init : int array;
  c_chan_names : string array;
  c_chan_kinds : Model.chan_kind array;
  c_automata : cautomaton array;
  c_max_consts : int array;  (** per clock index (0 unused), for extrapolation *)
  c_lower_consts : int array;
      (** largest constant in lower-bound comparisons ([x >= c], [x > c],
          [x == c]) per clock — the L of LU-extrapolation *)
  c_upper_consts : int array;
      (** largest constant in upper-bound comparisons ([x <= c], [x < c],
          [x == c]) per clock — the U of LU-extrapolation *)
}

exception Compile_error of string

(** [compile ?extra_clocks ?clock_ceilings net] validates and compiles.
    [extra_clocks] appends clocks that do not occur in the model (monitor
    clocks); [clock_ceilings] raises the extrapolation constant of given
    clocks (e.g. to the ceiling of a sup-query).

    @raise Compile_error if {!Model.validate} reports problems or a name
    cannot be resolved. *)
val compile :
  ?extra_clocks:string list ->
  ?clock_ceilings:(string * int) list ->
  Model.network -> t

val clock_index : t -> string -> int
(** @raise Not_found *)

val var_index : t -> string -> int
(** @raise Not_found *)

val chan_index : t -> string -> int
(** @raise Not_found *)

val loc_index : t -> aut:string -> string -> int * int
(** [(automaton index, location index)].  @raise Not_found *)

(** [apply_updates c vals updates] evaluates the right-hand sides against
    [vals] sequentially (UPPAAL order) into a fresh array, checking declared
    variable bounds.
    @raise Compile_error on a bound violation. *)
val apply_updates : t -> int array -> (int * (int array -> int)) list -> int array

(** Human-readable label of an edge, e.g. ["EXEIO: Waiting->Reading (invoke)"]. *)
val describe_edge : t -> cedge -> string
