(** Clock constraints: the atomic comparisons allowed in guards and
    invariants of timed automata.  Constants are integers, as in UPPAAL. *)

type rel = Lt | Le | Eq | Ge | Gt

(** An atomic constraint over clock names. *)
type atom =
  | Simple of string * rel * int         (** [x ~ n] *)
  | Diff of string * string * rel * int  (** [x - y ~ n] *)

(** A conjunction of atoms.  The empty list is [true]. *)
type t = atom list

val tt : t

(** [simple x rel n] is the constraint [x ~ n]. *)
val simple : string -> rel -> int -> atom

val lt : string -> int -> atom
val le : string -> int -> atom
val eq_ : string -> int -> atom
val ge : string -> int -> atom
val gt : string -> int -> atom

(** Clock names appearing in a conjunction, without duplicates. *)
val clocks : t -> string list

(** Largest constant compared against each clock, as an association list.
    Used for zone extrapolation. *)
val max_consts : t -> (string * int) list

(** [sat values atoms] evaluates the conjunction on a concrete valuation.
    Used by the discrete-time simulator and by tests that cross-check the
    symbolic semantics. *)
val sat : (string -> int) -> t -> bool

val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> t -> unit
