(** UPPAAL-style networks of timed automata.

    A network is a parallel composition of automata over a shared set of
    clocks, bounded integer variables and channels.  Channels are binary
    (one sender paired with exactly one receiver) or broadcast (one sender,
    all enabled receivers; a send never blocks).  Locations may be urgent
    (no delay) or committed (no delay, and committed components move
    first). *)

type loc_kind = Normal | Urgent | Committed

type location = {
  loc_name : string;
  loc_kind : loc_kind;
  loc_inv : Clockcons.t;
}

type sync =
  | Tau
  | Send of string
  | Recv of string

type edge = {
  edge_src : string;
  edge_dst : string;
  edge_guard : Clockcons.t;            (** clock guard *)
  edge_pred : Expr.pred;               (** data guard *)
  edge_sync : sync;
  edge_resets : string list;           (** clocks reset to 0 *)
  edge_updates : (string * Expr.t) list;  (** sequential variable updates *)
}

type automaton = {
  aut_name : string;
  aut_locations : location list;
  aut_initial : string;
  aut_edges : edge list;
}

type chan_kind = Binary | Broadcast

type var_decl = {
  var_init : int;
  var_min : int;
  var_max : int;
}

type network = {
  net_name : string;
  net_clocks : string list;
  net_vars : (string * var_decl) list;
  net_channels : (string * chan_kind) list;
  net_automata : automaton list;
}

(** {1 Builders} *)

val location : ?kind:loc_kind -> ?inv:Clockcons.t -> string -> location

val edge :
  ?guard:Clockcons.t ->
  ?pred:Expr.pred ->
  ?sync:sync ->
  ?resets:string list ->
  ?updates:(string * Expr.t) list ->
  string -> string -> edge

val automaton :
  name:string -> initial:string -> location list -> edge list -> automaton

(** [int_var ?min ?max init] declares a bounded variable; defaults are
    [min = 0] and [max = 1_000_000]. *)
val int_var : ?min:int -> ?max:int -> int -> var_decl

(** [flag ()] is a variable over [{0, 1}] initialised to 0. *)
val flag : unit -> var_decl

val network :
  name:string ->
  clocks:string list ->
  vars:(string * var_decl) list ->
  channels:(string * chan_kind) list ->
  automaton list -> network

(** {1 Accessors} *)

val find_automaton : network -> string -> automaton
(** @raise Not_found if absent. *)

val find_location : automaton -> string -> location
(** @raise Not_found if absent. *)

val channel_kind : network -> string -> chan_kind
(** @raise Not_found if absent. *)

(** Channel names an automaton sends on / receives on. *)
val sends_of : automaton -> string list
val receives_of : automaton -> string list

(** {1 Transformations used by the PIM->PSM construction} *)

(** [rename_channels mapping a] replaces every channel name [c] appearing in
    a sync of [a] by [mapping c]. *)
val rename_channels : (string -> string) -> automaton -> automaton

(** [guard_all_edges pred a] conjoins [pred] to the data guard of every edge
    except those for which [except] holds. *)
val guard_all_edges : ?except:(edge -> bool) -> Expr.pred -> automaton -> automaton

(** [replace_automaton net name a] substitutes the automaton called [name]. *)
val replace_automaton : network -> string -> automaton -> network

val add_automata : network -> automaton list -> network

(** {1 Validation} *)

(** Structural well-formedness: unique names; initial and edge endpoints
    exist; every clock, variable and channel referenced is declared;
    broadcast receive edges carry no clock guard (a restriction inherited
    from UPPAAL that the zone explorer relies on).  Returns the list of
    problems, empty when the network is well-formed. *)
val validate : network -> string list

(** {1 Statistics and printing} *)

val size : network -> int * int
(** [(locations, edges)] summed over all automata. *)

val pp_sync : Format.formatter -> sync -> unit
val pp_edge : Format.formatter -> edge -> unit
val pp_automaton : Format.formatter -> automaton -> unit
val pp : Format.formatter -> network -> unit
