type dconstraint = {
  dc_i : int;
  dc_j : int;
  dc_strict : bool;
  dc_bound : int;
}

type csync = CTau | CSend of int | CRecv of int

type cedge = {
  ce_aut : int;
  ce_index : int;
  ce_src : int;
  ce_dst : int;
  ce_guard : dconstraint list;
  ce_pred : int array -> bool;
  ce_sync : csync;
  ce_resets : int list;
  ce_updates : (int * (int array -> int)) list;
  ce_model : Model.edge;
}

type cloc = {
  cl_name : string;
  cl_kind : Model.loc_kind;
  cl_inv : dconstraint list;
  cl_free : int list;
}

type cautomaton = {
  ca_name : string;
  ca_initial : int;
  ca_locs : cloc array;
  ca_out : cedge list array;
}

type t = {
  c_model : Model.network;
  c_nclocks : int;
  c_clock_names : string array;
  c_var_names : string array;
  c_var_bounds : (int * int) array;
  c_var_init : int array;
  c_chan_names : string array;
  c_chan_kinds : Model.chan_kind array;
  c_automata : cautomaton array;
  c_max_consts : int array;
  c_lower_consts : int array;
  c_upper_consts : int array;
}

exception Compile_error of string

let error fmt = Fmt.kstr (fun s -> raise (Compile_error s)) fmt

let index_table names =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i name -> Hashtbl.replace tbl name i) names;
  tbl

(* Normalise a clock atom to difference constraints over indices. *)
let dconstraints_of_atom lookup atom =
  let open Clockcons in
  let pair i j rel n =
    match rel with
    | Lt -> [ { dc_i = i; dc_j = j; dc_strict = true; dc_bound = n } ]
    | Le -> [ { dc_i = i; dc_j = j; dc_strict = false; dc_bound = n } ]
    | Eq ->
      [ { dc_i = i; dc_j = j; dc_strict = false; dc_bound = n };
        { dc_i = j; dc_j = i; dc_strict = false; dc_bound = -n } ]
    | Ge -> [ { dc_i = j; dc_j = i; dc_strict = false; dc_bound = -n } ]
    | Gt -> [ { dc_i = j; dc_j = i; dc_strict = true; dc_bound = -n } ]
  in
  match atom with
  | Simple (x, rel, n) -> pair (lookup x) 0 rel n
  | Diff (x, y, rel, n) -> pair (lookup x) (lookup y) rel n

let compile ?(extra_clocks = []) ?(clock_ceilings = []) net =
  (match Model.validate net with
   | [] -> ()
   | problems ->
     error "network %s is not well-formed: %s" net.Model.net_name
       (String.concat "; " problems));
  let clock_list = net.Model.net_clocks @ extra_clocks in
  let clock_names = Array.of_list ("0" :: clock_list) in
  let clock_tbl = Hashtbl.create 16 in
  Array.iteri (fun i name -> Hashtbl.replace clock_tbl name i) clock_names;
  let clock_idx x =
    match Hashtbl.find_opt clock_tbl x with
    | Some i -> i
    | None -> error "unknown clock %S" x
  in
  let var_names = Array.of_list (List.map fst net.Model.net_vars) in
  let var_tbl = index_table (Array.to_list var_names) in
  let var_idx v =
    match Hashtbl.find_opt var_tbl v with
    | Some i -> i
    | None -> error "unknown variable %S" v
  in
  let var_decls = Array.of_list (List.map snd net.Model.net_vars) in
  let var_bounds =
    Array.map (fun d -> (d.Model.var_min, d.Model.var_max)) var_decls
  in
  let var_init = Array.map (fun d -> d.Model.var_init) var_decls in
  let chan_names = Array.of_list (List.map fst net.Model.net_channels) in
  let chan_kinds = Array.of_list (List.map snd net.Model.net_channels) in
  let chan_tbl = index_table (Array.to_list chan_names) in
  let chan_idx c =
    match Hashtbl.find_opt chan_tbl c with
    | Some i -> i
    | None -> error "unknown channel %S" c
  in
  let nclocks = Array.length clock_names - 1 in
  let max_consts = Array.make (nclocks + 1) 0 in
  let lower_consts = Array.make (nclocks + 1) 0 in
  let upper_consts = Array.make (nclocks + 1) 0 in
  let note_consts atoms =
    List.iter
      (fun (x, n) ->
        let i = clock_idx x in
        if n > max_consts.(i) then max_consts.(i) <- n)
      (Clockcons.max_consts atoms);
    (* split by comparison direction for LU-extrapolation; diagonal atoms
       are rejected by validation, but charge both sides defensively *)
    let bump arr i n = if abs n > arr.(i) then arr.(i) <- abs n in
    List.iter
      (fun atom ->
        match atom with
        | Clockcons.Simple (x, rel, n) ->
          let i = clock_idx x in
          (match rel with
           | Clockcons.Lt | Clockcons.Le -> bump upper_consts i n
           | Clockcons.Gt | Clockcons.Ge -> bump lower_consts i n
           | Clockcons.Eq ->
             bump upper_consts i n;
             bump lower_consts i n)
        | Clockcons.Diff (x, y, _, n) ->
          let i = clock_idx x and j = clock_idx y in
          bump upper_consts i n;
          bump lower_consts i n;
          bump upper_consts j n;
          bump lower_consts j n)
      atoms
  in
  let compile_atoms atoms =
    note_consts atoms;
    List.concat_map (dconstraints_of_atom clock_idx) atoms
  in
  let compile_automaton ai (a : Model.automaton) =
    let loc_names = List.map (fun l -> l.Model.loc_name) a.Model.aut_locations in
    let loc_tbl = index_table loc_names in
    let loc_idx l =
      match Hashtbl.find_opt loc_tbl l with
      | Some i -> i
      | None -> error "%s: unknown location %S" a.Model.aut_name l
    in
    let locs =
      Array.of_list
        (List.map
           (fun (l : Model.location) ->
             { cl_name = l.Model.loc_name;
               cl_kind = l.Model.loc_kind;
               cl_inv = compile_atoms l.Model.loc_inv;
               cl_free = [] })
           a.Model.aut_locations)
    in
    let out = Array.make (Array.length locs) [] in
    let compile_edge ei (e : Model.edge) =
      let sync =
        match e.Model.edge_sync with
        | Model.Tau -> CTau
        | Model.Send c -> CSend (chan_idx c)
        | Model.Recv c -> CRecv (chan_idx c)
      in
      { ce_aut = ai;
        ce_index = ei;
        ce_src = loc_idx e.Model.edge_src;
        ce_dst = loc_idx e.Model.edge_dst;
        ce_guard = compile_atoms e.Model.edge_guard;
        ce_pred = Expr.compile_pred ~index:var_idx e.Model.edge_pred;
        ce_sync = sync;
        ce_resets = List.map clock_idx e.Model.edge_resets;
        ce_updates =
          List.map
            (fun (v, rhs) -> (var_idx v, Expr.compile_expr ~index:var_idx rhs))
            e.Model.edge_updates;
        ce_model = e }
    in
    List.iteri
      (fun ei e ->
        let ce = compile_edge ei e in
        out.(ce.ce_src) <- out.(ce.ce_src) @ [ ce ])
      a.Model.aut_edges;
    { ca_name = a.Model.aut_name;
      ca_initial = loc_idx a.Model.aut_initial;
      ca_locs = locs;
      ca_out = out }
  in
  let automata =
    Array.of_list (List.mapi compile_automaton net.Model.net_automata)
  in
  (* Clock-activity analysis (Daws-Yovine).  A clock used by exactly one
     automaton is inactive at a location when every path from it resets
     the clock before any guard or invariant reads it; such clocks can be
     freed by the explorer without affecting reachability. *)
  let clocks_of_dcs dcs =
    List.concat_map
      (fun dc ->
        (if dc.dc_i <> 0 then [ dc.dc_i ] else [])
        @ if dc.dc_j <> 0 then [ dc.dc_j ] else [])
      dcs
  in
  let users = Array.make (nclocks + 1) [] in
  let note_user ai i =
    if i <> 0 && not (List.mem ai users.(i)) then users.(i) <- ai :: users.(i)
  in
  Array.iteri
    (fun ai a ->
      Array.iter
        (fun l -> List.iter (note_user ai) (clocks_of_dcs l.cl_inv))
        a.ca_locs;
      Array.iter
        (List.iter (fun ce ->
             List.iter (note_user ai) (clocks_of_dcs ce.ce_guard);
             List.iter (note_user ai) ce.ce_resets))
        a.ca_out)
    automata;
  let analysed =
    Array.mapi
      (fun ai a ->
        let owned = ref [] in
        for i = 1 to nclocks do
          if users.(i) = [ ai ] then owned := i :: !owned
        done;
        let owned = !owned in
        if owned = [] then a
        else begin
          let nlocs = Array.length a.ca_locs in
          let active = Array.make nlocs [] in
          let add l i =
            if List.mem i owned && not (List.mem i active.(l)) then begin
              active.(l) <- i :: active.(l);
              true
            end
            else false
          in
          Array.iteri
            (fun l cl -> List.iter (fun i -> ignore (add l i)) (clocks_of_dcs cl.cl_inv))
            a.ca_locs;
          let changed = ref true in
          while !changed do
            changed := false;
            Array.iteri
              (fun l edges ->
                List.iter
                  (fun ce ->
                    List.iter
                      (fun i -> if add l i then changed := true)
                      (clocks_of_dcs ce.ce_guard);
                    List.iter
                      (fun i ->
                        if (not (List.mem i ce.ce_resets)) && add l i then
                          changed := true)
                      active.(ce.ce_dst))
                  edges)
              a.ca_out
          done;
          let locs =
            Array.mapi
              (fun l cl ->
                { cl with
                  cl_free =
                    List.filter (fun i -> not (List.mem i active.(l))) owned })
              a.ca_locs
          in
          { a with ca_locs = locs }
        end)
      automata
  in
  let automata = analysed in
  List.iter
    (fun (x, ceiling) ->
      let i = clock_idx x in
      if ceiling > max_consts.(i) then max_consts.(i) <- ceiling;
      if ceiling > lower_consts.(i) then lower_consts.(i) <- ceiling;
      if ceiling > upper_consts.(i) then upper_consts.(i) <- ceiling)
    clock_ceilings;
  { c_model = net;
    c_nclocks = nclocks;
    c_clock_names = clock_names;
    c_var_names = var_names;
    c_var_bounds = var_bounds;
    c_var_init = var_init;
    c_chan_names = chan_names;
    c_chan_kinds = chan_kinds;
    c_automata = automata;
    c_max_consts = max_consts;
    c_lower_consts = lower_consts;
    c_upper_consts = upper_consts }

let find_in_array name arr =
  let n = Array.length arr in
  let rec loop i =
    if i >= n then raise Not_found
    else if arr.(i) = name then i
    else loop (i + 1)
  in
  loop 0

let clock_index c name = find_in_array name c.c_clock_names
let var_index c name = find_in_array name c.c_var_names
let chan_index c name = find_in_array name c.c_chan_names

let loc_index c ~aut name =
  let ai =
    find_in_array aut (Array.map (fun a -> a.ca_name) c.c_automata)
  in
  let a = c.c_automata.(ai) in
  let li = find_in_array name (Array.map (fun l -> l.cl_name) a.ca_locs) in
  (ai, li)

let apply_updates c vals updates =
  let next = Array.copy vals in
  let apply (vi, rhs) =
    let value = rhs next in
    let lo, hi = c.c_var_bounds.(vi) in
    if value < lo || value > hi then
      error "assignment %s := %d violates range [%d, %d]" c.c_var_names.(vi)
        value lo hi;
    next.(vi) <- value
  in
  List.iter apply updates;
  next

let describe_edge c ce =
  let a = c.c_automata.(ce.ce_aut) in
  let action =
    match ce.ce_sync with
    | CTau -> "tau"
    | CSend ch -> c.c_chan_names.(ch) ^ "!"
    | CRecv ch -> c.c_chan_names.(ch) ^ "?"
  in
  Fmt.str "%s: %s -> %s (%s)" a.ca_name a.ca_locs.(ce.ce_src).cl_name
    a.ca_locs.(ce.ce_dst).cl_name action
