type rel = Lt | Le | Eq | Ge | Gt

type atom =
  | Simple of string * rel * int
  | Diff of string * string * rel * int

type t = atom list

let tt = []

let simple x rel n = Simple (x, rel, n)
let lt x n = Simple (x, Lt, n)
let le x n = Simple (x, Le, n)
let eq_ x n = Simple (x, Eq, n)
let ge x n = Simple (x, Ge, n)
let gt x n = Simple (x, Gt, n)

let clocks atoms =
  let add acc x = if List.mem x acc then acc else x :: acc in
  let step acc = function
    | Simple (x, _, _) -> add acc x
    | Diff (x, y, _, _) -> add (add acc x) y
  in
  List.rev (List.fold_left step [] atoms)

let max_consts atoms =
  let bump acc x n =
    let n = abs n in
    match List.assoc_opt x acc with
    | Some m when m >= n -> acc
    | Some _ -> (x, n) :: List.remove_assoc x acc
    | None -> (x, n) :: acc
  in
  let step acc = function
    | Simple (x, _, n) -> bump acc x n
    | Diff (x, y, _, n) -> bump (bump acc x n) y n
  in
  List.fold_left step [] atoms

let holds rel a b =
  match rel with
  | Lt -> a < b
  | Le -> a <= b
  | Eq -> a = b
  | Ge -> a >= b
  | Gt -> a > b

let sat values atoms =
  let check = function
    | Simple (x, rel, n) -> holds rel (values x) n
    | Diff (x, y, rel, n) -> holds rel (values x - values y) n
  in
  List.for_all check atoms

let pp_rel ppf rel =
  let s = match rel with Lt -> "<" | Le -> "<=" | Eq -> "==" | Ge -> ">=" | Gt -> ">" in
  Fmt.string ppf s

let pp_atom ppf = function
  | Simple (x, rel, n) -> Fmt.pf ppf "%s %a %d" x pp_rel rel n
  | Diff (x, y, rel, n) -> Fmt.pf ppf "%s - %s %a %d" x y pp_rel rel n

let pp ppf atoms =
  match atoms with
  | [] -> Fmt.string ppf "true"
  | atoms -> Fmt.(list ~sep:(any " && ") pp_atom) ppf atoms
