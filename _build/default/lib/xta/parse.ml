open Ta

exception Parse_error of int * string

type stream = {
  toks : (Lexer.token * int) array;
  mutable pos : int;
}

let peek s = fst s.toks.(s.pos)
let line s = snd s.toks.(s.pos)

(* line of the most recently consumed token (clamped for empty input) *)
let prev_line s = snd s.toks.(max 0 (s.pos - 1))

let fail s fmt =
  Fmt.kstr (fun msg -> raise (Parse_error (line s, msg))) fmt

let advance s = if s.pos < Array.length s.toks - 1 then s.pos <- s.pos + 1

let next s =
  let t = peek s in
  advance s;
  t

let expect s tok =
  let got = next s in
  if got <> tok then
    raise
      (Parse_error
         ( prev_line s,
           Fmt.str "expected %a, found %a" Lexer.pp_token tok Lexer.pp_token
             got ))

let ident s =
  match next s with
  | Lexer.IDENT name -> name
  | t -> raise (Parse_error (prev_line s,
                             Fmt.str "expected an identifier, found %a"
                               Lexer.pp_token t))

let integer s =
  match next s with
  | Lexer.INT n -> n
  | Lexer.MINUS ->
    (match next s with
     | Lexer.INT n -> -n
     | t -> raise (Parse_error (prev_line s,
                                Fmt.str "expected an integer, found %a"
                                  Lexer.pp_token t)))
  | t -> raise (Parse_error (prev_line s,
                             Fmt.str "expected an integer, found %a"
                               Lexer.pp_token t))

let ident_list s =
  let rec more acc =
    if peek s = Lexer.COMMA then begin
      advance s;
      more (ident s :: acc)
    end
    else List.rev acc
  in
  more [ ident s ]

(* --- expressions ------------------------------------------------------ *)

let rec parse_expr s =
  let lhs = parse_term s in
  let rec more lhs =
    match peek s with
    | Lexer.PLUS -> advance s; more (Expr.Add (lhs, parse_term s))
    | Lexer.MINUS -> advance s; more (Expr.Sub (lhs, parse_term s))
    | _ -> lhs
  in
  more lhs

and parse_term s =
  let lhs = parse_factor s in
  let rec more lhs =
    match peek s with
    | Lexer.STAR -> advance s; more (Expr.Mul (lhs, parse_factor s))
    | _ -> lhs
  in
  more lhs

and parse_factor s =
  match next s with
  | Lexer.INT n -> Expr.Int n
  | Lexer.IDENT v -> Expr.Var v
  | Lexer.MINUS -> Expr.Neg (parse_factor s)
  | Lexer.LPAREN ->
    let e = parse_expr s in
    expect s Lexer.RPAREN;
    e
  | t -> raise (Parse_error (prev_line s,
                             Fmt.str "expected an expression, found %a"
                               Lexer.pp_token t))

let relation s =
  match next s with
  | Lexer.OP "<" -> Expr.Lt
  | Lexer.OP "<=" -> Expr.Le
  | Lexer.OP "==" -> Expr.Eq
  | Lexer.OP ">=" -> Expr.Ge
  | Lexer.OP ">" -> Expr.Gt
  | Lexer.OP "!=" -> Expr.Ne
  | t -> raise (Parse_error (prev_line s,
                             Fmt.str "expected a comparison, found %a"
                               Lexer.pp_token t))

(* --- predicates ------------------------------------------------------- *)

let rec parse_pred s = parse_or s

and parse_or s =
  let lhs = parse_and s in
  let rec more lhs =
    match peek s with
    | Lexer.OP "||" -> advance s; more (Expr.Or (lhs, parse_and s))
    | _ -> lhs
  in
  more lhs

and parse_and s =
  let lhs = parse_not s in
  let rec more lhs =
    match peek s with
    | Lexer.OP "&&" -> advance s; more (Expr.And (lhs, parse_not s))
    | _ -> lhs
  in
  more lhs

and parse_not s =
  match peek s with
  | Lexer.BANG | Lexer.KW "not" ->
    advance s;
    Expr.Not (parse_not s)
  | _ -> parse_pred_atom s

and parse_pred_atom s =
  match peek s with
  | Lexer.KW "true" -> advance s; Expr.True
  | Lexer.KW "false" -> advance s; Expr.False
  | _ ->
    (* Could be a comparison of expressions or a parenthesised predicate;
       try the comparison first and backtrack on failure. *)
    let mark = s.pos in
    (try
       let lhs = parse_expr s in
       let rel = relation s in
       let rhs = parse_expr s in
       Expr.Cmp (lhs, rel, rhs)
     with Parse_error _ when peek_was_paren s mark ->
       s.pos <- mark;
       expect s Lexer.LPAREN;
       let p = parse_pred s in
       expect s Lexer.RPAREN;
       p)

and peek_was_paren s mark = fst s.toks.(mark) = Lexer.LPAREN && s.pos >= mark

(* --- clock constraints ------------------------------------------------ *)

let clock_relation s =
  match next s with
  | Lexer.OP "<" -> Clockcons.Lt
  | Lexer.OP "<=" -> Clockcons.Le
  | Lexer.OP "==" -> Clockcons.Eq
  | Lexer.OP ">=" -> Clockcons.Ge
  | Lexer.OP ">" -> Clockcons.Gt
  | t -> raise (Parse_error (prev_line s,
                             Fmt.str "expected a clock comparison, found %a"
                               Lexer.pp_token t))

let parse_clock_atom s =
  let x = ident s in
  match peek s with
  | Lexer.MINUS ->
    advance s;
    let y = ident s in
    let rel = clock_relation s in
    Clockcons.Diff (x, y, rel, integer s)
  | _ ->
    let rel = clock_relation s in
    Clockcons.Simple (x, rel, integer s)

let parse_clockcons s =
  let rec more acc =
    match peek s with
    | Lexer.OP "&&" -> advance s; more (parse_clock_atom s :: acc)
    | _ -> List.rev acc
  in
  more [ parse_clock_atom s ]

(* --- transitions ------------------------------------------------------ *)

let parse_trans s =
  let src = ident s in
  expect s Lexer.ARROW;
  let dst = ident s in
  expect s Lexer.LBRACE;
  let guard = ref [] in
  let pred = ref Expr.True in
  let sync = ref Model.Tau in
  let resets = ref [] in
  let updates = ref [] in
  let rec items () =
    match peek s with
    | Lexer.RBRACE -> advance s
    | Lexer.KW "guard" ->
      advance s;
      guard := parse_clockcons s;
      expect s Lexer.SEMI;
      items ()
    | Lexer.KW "when" ->
      advance s;
      pred := parse_pred s;
      expect s Lexer.SEMI;
      items ()
    | Lexer.KW "sync" ->
      advance s;
      let chan = ident s in
      (match next s with
       | Lexer.BANG -> sync := Model.Send chan
       | Lexer.QUEST -> sync := Model.Recv chan
       | t -> raise (Parse_error (prev_line s,
                                  Fmt.str "expected ! or ?, found %a"
                                    Lexer.pp_token t)));
      expect s Lexer.SEMI;
      items ()
    | Lexer.KW "reset" ->
      advance s;
      resets := ident_list s;
      expect s Lexer.SEMI;
      items ()
    | Lexer.KW "assign" ->
      advance s;
      let rec assignments acc =
        let v = ident s in
        expect s Lexer.ASSIGN;
        let rhs = parse_expr s in
        let acc = (v, rhs) :: acc in
        if peek s = Lexer.COMMA then begin
          advance s;
          assignments acc
        end
        else List.rev acc
      in
      updates := assignments [];
      expect s Lexer.SEMI;
      items ()
    | t -> fail s "unexpected %a in transition body" Lexer.pp_token t
  in
  items ();
  Model.edge ~guard:!guard ~pred:!pred ~sync:!sync ~resets:!resets
    ~updates:!updates src dst

(* --- processes --------------------------------------------------------- *)

let parse_state s =
  let name = ident s in
  if peek s = Lexer.LBRACE then begin
    advance s;
    let inv = parse_clockcons s in
    expect s Lexer.RBRACE;
    Model.location ~inv name
  end
  else Model.location name

let parse_process s =
  let name = ident s in
  expect s Lexer.LBRACE;
  expect s (Lexer.KW "state");
  let rec states acc =
    let acc = parse_state s :: acc in
    if peek s = Lexer.COMMA then begin
      advance s;
      states acc
    end
    else List.rev acc
  in
  let locations = ref (states []) in
  expect s Lexer.SEMI;
  let set_kind kind names =
    locations :=
      List.map
        (fun (l : Model.location) ->
          if List.mem l.Model.loc_name names then
            { l with Model.loc_kind = kind }
          else l)
        !locations
  in
  let rec modifiers () =
    match peek s with
    | Lexer.KW "commit" ->
      advance s;
      set_kind Model.Committed (ident_list s);
      expect s Lexer.SEMI;
      modifiers ()
    | Lexer.KW "urgent" ->
      advance s;
      set_kind Model.Urgent (ident_list s);
      expect s Lexer.SEMI;
      modifiers ()
    | _ -> ()
  in
  modifiers ();
  expect s (Lexer.KW "init");
  let initial = ident s in
  expect s Lexer.SEMI;
  let edges =
    if peek s = Lexer.KW "trans" then begin
      advance s;
      let rec more acc =
        let acc = parse_trans s :: acc in
        if peek s = Lexer.COMMA then begin
          advance s;
          more acc
        end
        else List.rev acc
      in
      let edges = more [] in
      expect s Lexer.SEMI;
      edges
    end
    else []
  in
  expect s Lexer.RBRACE;
  Model.automaton ~name ~initial !locations edges

(* --- network ----------------------------------------------------------- *)

let parse_network s =
  expect s (Lexer.KW "network");
  let name = ident s in
  expect s Lexer.SEMI;
  let clocks = ref [] in
  let vars = ref [] in
  let channels = ref [] in
  let automata = ref [] in
  let rec decls () =
    match peek s with
    | Lexer.EOF -> ()
    | Lexer.KW "clock" ->
      advance s;
      clocks := !clocks @ ident_list s;
      expect s Lexer.SEMI;
      decls ()
    | Lexer.KW "int" ->
      advance s;
      expect s Lexer.LBRACKET;
      let lo = integer s in
      expect s Lexer.COMMA;
      let hi = integer s in
      expect s Lexer.RBRACKET;
      let v = ident s in
      expect s Lexer.EQ;
      let init = integer s in
      expect s Lexer.SEMI;
      vars := !vars @ [ (v, Model.int_var ~min:lo ~max:hi init) ];
      decls ()
    | Lexer.KW "chan" ->
      advance s;
      let names = ident_list s in
      expect s Lexer.SEMI;
      channels := !channels @ List.map (fun c -> (c, Model.Binary)) names;
      decls ()
    | Lexer.KW "broadcast" ->
      advance s;
      expect s (Lexer.KW "chan");
      let names = ident_list s in
      expect s Lexer.SEMI;
      channels := !channels @ List.map (fun c -> (c, Model.Broadcast)) names;
      decls ()
    | Lexer.KW "process" ->
      advance s;
      automata := !automata @ [ parse_process s ];
      decls ()
    | t -> fail s "unexpected %a at top level" Lexer.pp_token t
  in
  decls ();
  Model.network ~name ~clocks:!clocks ~vars:!vars ~channels:!channels
    !automata

let network input =
  match Lexer.tokenize input with
  | exception Lexer.Lex_error (line, msg) ->
    Error (Fmt.str "line %d: %s" line msg)
  | tokens ->
    let s = { toks = Array.of_list tokens; pos = 0 } in
    (match parse_network s with
     | net -> Ok net
     | exception Parse_error (line, msg) ->
       Error (Fmt.str "line %d: %s" line msg))
