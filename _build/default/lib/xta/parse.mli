(** Parser for the [.xta]-style textual model format printed by
    {!Print}.  See {!Print} for the grammar. *)

(** [network input] parses a whole network description.  Returns
    [Error message] (with a line number in the message) on lexical or
    syntax errors.  The resulting network is {e not} validated; callers
    that need well-formedness should run {!Ta.Model.validate}. *)
val network : string -> (Ta.Model.network, string) result
