type token =
  | IDENT of string
  | INT of int
  | KW of string
  | LBRACE | RBRACE
  | LBRACKET | RBRACKET
  | LPAREN | RPAREN
  | SEMI | COMMA
  | ARROW
  | BANG | QUEST
  | ASSIGN
  | EQ
  | OP of string
  | PLUS | MINUS | STAR
  | EOF

exception Lex_error of int * string

let keywords =
  [ "network"; "clock"; "int"; "chan"; "broadcast"; "process"; "state";
    "commit"; "urgent"; "init"; "trans"; "guard"; "when"; "sync"; "reset";
    "assign"; "true"; "false"; "not" ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let line = ref 1 in
  let emit t = tokens := (t, !line) :: !tokens in
  let rec scan i =
    if i >= n then emit EOF
    else
      let c = input.[i] in
      match c with
      | '\n' ->
        incr line;
        scan (i + 1)
      | ' ' | '\t' | '\r' -> scan (i + 1)
      | '/' when i + 1 < n && input.[i + 1] = '/' ->
        let rec skip j =
          if j >= n || input.[j] = '\n' then j else skip (j + 1)
        in
        scan (skip i)
      | '{' -> emit LBRACE; scan (i + 1)
      | '}' -> emit RBRACE; scan (i + 1)
      | '[' -> emit LBRACKET; scan (i + 1)
      | ']' -> emit RBRACKET; scan (i + 1)
      | '(' -> emit LPAREN; scan (i + 1)
      | ')' -> emit RPAREN; scan (i + 1)
      | ';' -> emit SEMI; scan (i + 1)
      | ',' -> emit COMMA; scan (i + 1)
      | '!' when i + 1 < n && input.[i + 1] = '=' -> emit (OP "!="); scan (i + 2)
      | '!' -> emit BANG; scan (i + 1)
      | '?' -> emit QUEST; scan (i + 1)
      | '+' -> emit PLUS; scan (i + 1)
      | '*' -> emit STAR; scan (i + 1)
      | '-' when i + 1 < n && input.[i + 1] = '>' -> emit ARROW; scan (i + 2)
      | '-' -> emit MINUS; scan (i + 1)
      | ':' when i + 1 < n && input.[i + 1] = '=' -> emit ASSIGN; scan (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '=' -> emit (OP "<="); scan (i + 2)
      | '<' -> emit (OP "<"); scan (i + 1)
      | '>' when i + 1 < n && input.[i + 1] = '=' -> emit (OP ">="); scan (i + 2)
      | '>' -> emit (OP ">"); scan (i + 1)
      | '=' when i + 1 < n && input.[i + 1] = '=' -> emit (OP "=="); scan (i + 2)
      | '=' -> emit EQ; scan (i + 1)
      | '&' when i + 1 < n && input.[i + 1] = '&' -> emit (OP "&&"); scan (i + 2)
      | '|' when i + 1 < n && input.[i + 1] = '|' -> emit (OP "||"); scan (i + 2)
      | c when is_digit c ->
        let rec stop j = if j < n && is_digit input.[j] then stop (j + 1) else j in
        let j = stop i in
        emit (INT (int_of_string (String.sub input i (j - i))));
        scan j
      | c when is_ident_start c ->
        let rec stop j =
          if j < n && is_ident_char input.[j] then stop (j + 1) else j
        in
        let j = stop i in
        let word = String.sub input i (j - i) in
        emit (if List.mem word keywords then KW word else IDENT word);
        scan j
      | c -> raise (Lex_error (!line, Fmt.str "unexpected character %C" c))
  in
  scan 0;
  List.rev !tokens

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT n -> Fmt.pf ppf "integer %d" n
  | KW s -> Fmt.pf ppf "keyword %S" s
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | LBRACKET -> Fmt.string ppf "'['"
  | RBRACKET -> Fmt.string ppf "']'"
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | SEMI -> Fmt.string ppf "';'"
  | COMMA -> Fmt.string ppf "','"
  | ARROW -> Fmt.string ppf "'->'"
  | BANG -> Fmt.string ppf "'!'"
  | QUEST -> Fmt.string ppf "'?'"
  | ASSIGN -> Fmt.string ppf "':='"
  | EQ -> Fmt.string ppf "'='"
  | OP s -> Fmt.pf ppf "operator %S" s
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | STAR -> Fmt.string ppf "'*'"
  | EOF -> Fmt.string ppf "end of input"
