(** Tokeniser for the [.xta]-style textual model format (see {!Xta}). *)

type token =
  | IDENT of string
  | INT of int
  | KW of string        (** keyword: network, clock, int, chan, ... *)
  | LBRACE | RBRACE
  | LBRACKET | RBRACKET
  | LPAREN | RPAREN
  | SEMI | COMMA
  | ARROW               (** -> *)
  | BANG | QUEST        (** ! ? *)
  | ASSIGN              (** := *)
  | EQ                  (** = *)
  | OP of string        (** comparison and boolean operators *)
  | PLUS | MINUS | STAR
  | EOF

exception Lex_error of int * string
(** line number and message *)

(** Tokenise a whole input.  [//] line comments are skipped.
    @raise Lex_error on an unexpected character. *)
val tokenize : string -> (token * int) list
(** Each token is paired with its line number, for error reporting. *)

val pp_token : Format.formatter -> token -> unit
