(** Printer for the [.xta]-style textual model format.

    The output is accepted verbatim by {!Parse.network}; round-tripping
    is checked by the test suite.  The grammar is UPPAAL-flavoured:

    {v
network gpca;

clock x, env_x;
int[0,5] ibuf_BolusReq = 0;
broadcast chan m_BolusReq;
chan o_StartInfusion;

process Pump {
  state
    Idle,
    BolusPrep { x <= 500 };
  init Idle;
  trans
    Idle -> BolusPrep { sync m_BolusReq?; reset x; },
    BolusPrep -> Idle { guard x >= 250; when ibuf_BolusReq == 0;
                        sync c_StartInfusion!; assign ibuf_BolusReq := 0; };
}
    v} *)

val network : Format.formatter -> Ta.Model.network -> unit
val to_string : Ta.Model.network -> string
