open Ta

let pp_clockcons ppf atoms = Clockcons.pp ppf atoms

let pp_state ppf (l : Model.location) =
  if l.Model.loc_inv = [] then Fmt.string ppf l.Model.loc_name
  else Fmt.pf ppf "%s { %a }" l.Model.loc_name pp_clockcons l.Model.loc_inv

let pp_kind_group ppf (kw, names) =
  if names <> [] then
    Fmt.pf ppf "  %s %a;@," kw Fmt.(list ~sep:comma string) names

let pp_trans ppf (e : Model.edge) =
  Fmt.pf ppf "%s -> %s {" e.Model.edge_src e.Model.edge_dst;
  if e.Model.edge_guard <> [] then
    Fmt.pf ppf " guard %a;" pp_clockcons e.Model.edge_guard;
  (match e.Model.edge_pred with
   | Expr.True -> ()
   | pred -> Fmt.pf ppf " when %a;" Expr.pp_pred pred);
  (match e.Model.edge_sync with
   | Model.Tau -> ()
   | Model.Send c -> Fmt.pf ppf " sync %s!;" c
   | Model.Recv c -> Fmt.pf ppf " sync %s?;" c);
  if e.Model.edge_resets <> [] then
    Fmt.pf ppf " reset %a;" Fmt.(list ~sep:comma string) e.Model.edge_resets;
  if e.Model.edge_updates <> [] then begin
    let pp_update ppf (v, rhs) = Fmt.pf ppf "%s := %a" v Expr.pp_expr rhs in
    Fmt.pf ppf " assign %a;" Fmt.(list ~sep:comma pp_update) e.Model.edge_updates
  end;
  Fmt.string ppf " }"

let pp_process ppf (a : Model.automaton) =
  Fmt.pf ppf "@[<v>process %s {@," a.Model.aut_name;
  Fmt.pf ppf "  @[<v>state@,  %a;@]@,"
    Fmt.(list ~sep:(any ",@,  ") pp_state)
    a.Model.aut_locations;
  let of_kind kind =
    List.filter_map
      (fun (l : Model.location) ->
        if l.Model.loc_kind = kind then Some l.Model.loc_name else None)
      a.Model.aut_locations
  in
  pp_kind_group ppf ("commit", of_kind Model.Committed);
  pp_kind_group ppf ("urgent", of_kind Model.Urgent);
  Fmt.pf ppf "  init %s;@," a.Model.aut_initial;
  if a.Model.aut_edges <> [] then
    Fmt.pf ppf "  @[<v>trans@,  %a;@]@,"
      Fmt.(list ~sep:(any ",@,  ") pp_trans)
      a.Model.aut_edges;
  Fmt.pf ppf "}@]"

let network ppf (net : Model.network) =
  Fmt.pf ppf "@[<v>network %s;@,@," net.Model.net_name;
  if net.Model.net_clocks <> [] then
    Fmt.pf ppf "clock %a;@,"
      Fmt.(list ~sep:comma string)
      net.Model.net_clocks;
  List.iter
    (fun (v, d) ->
      Fmt.pf ppf "int[%d,%d] %s = %d;@," d.Model.var_min d.Model.var_max v
        d.Model.var_init)
    net.Model.net_vars;
  List.iter
    (fun (c, kind) ->
      match kind with
      | Model.Binary -> Fmt.pf ppf "chan %s;@," c
      | Model.Broadcast -> Fmt.pf ppf "broadcast chan %s;@," c)
    net.Model.net_channels;
  Fmt.pf ppf "@,%a@]"
    Fmt.(list ~sep:(any "@,@,") pp_process)
    net.Model.net_automata

let to_string net = Fmt.str "%a" network net
