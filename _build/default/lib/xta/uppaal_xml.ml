open Ta

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let clockcons_text atoms = Fmt.str "%a" Clockcons.pp atoms

(* UPPAAL merges the clock and data guard into one label. *)
let guard_text (e : Model.edge) =
  let parts =
    (if e.Model.edge_guard = [] then []
     else [ clockcons_text e.Model.edge_guard ])
    @
    match e.Model.edge_pred with
    | Expr.True -> []
    | pred -> [ Fmt.str "%a" Expr.pp_pred pred ]
  in
  String.concat " && " parts

(* UPPAAL assignments use '=' and comma separation; resets first. *)
let assignment_text (e : Model.edge) =
  let resets = List.map (fun c -> c ^ " = 0") e.Model.edge_resets in
  let updates =
    List.map
      (fun (v, rhs) -> Fmt.str "%s = %a" v Expr.pp_expr rhs)
      e.Model.edge_updates
  in
  String.concat ", " (resets @ updates)

let declaration_text (net : Model.network) =
  let buf = Buffer.create 256 in
  if net.Model.net_clocks <> [] then
    Buffer.add_string buf
      (Fmt.str "clock %s;\n" (String.concat ", " net.Model.net_clocks));
  List.iter
    (fun (v, d) ->
      Buffer.add_string buf
        (Fmt.str "int[%d,%d] %s = %d;\n" d.Model.var_min d.Model.var_max v
           d.Model.var_init))
    net.Model.net_vars;
  List.iter
    (fun (c, kind) ->
      Buffer.add_string buf
        (match kind with
         | Model.Binary -> Fmt.str "chan %s;\n" c
         | Model.Broadcast -> Fmt.str "broadcast chan %s;\n" c))
    net.Model.net_channels;
  Buffer.contents buf

let pp_template ppf tindex (a : Model.automaton) =
  let loc_id name =
    let rec index i = function
      | [] -> raise Not_found
      | (l : Model.location) :: rest ->
        if l.Model.loc_name = name then i else index (i + 1) rest
    in
    Fmt.str "id%d_%d" tindex (index 0 a.Model.aut_locations)
  in
  Fmt.pf ppf "  <template>@.";
  Fmt.pf ppf "    <name>%s</name>@." (escape a.Model.aut_name);
  List.iteri
    (fun li (l : Model.location) ->
      let x = 150 * (li mod 4) and y = 120 * (li / 4) in
      Fmt.pf ppf "    <location id=\"%s\" x=\"%d\" y=\"%d\">@."
        (loc_id l.Model.loc_name) x y;
      Fmt.pf ppf "      <name>%s</name>@." (escape l.Model.loc_name);
      if l.Model.loc_inv <> [] then
        Fmt.pf ppf "      <label kind=\"invariant\">%s</label>@."
          (escape (clockcons_text l.Model.loc_inv));
      (match l.Model.loc_kind with
       | Model.Urgent -> Fmt.pf ppf "      <urgent/>@."
       | Model.Committed -> Fmt.pf ppf "      <committed/>@."
       | Model.Normal -> ());
      Fmt.pf ppf "    </location>@.")
    a.Model.aut_locations;
  Fmt.pf ppf "    <init ref=\"%s\"/>@." (loc_id a.Model.aut_initial);
  List.iter
    (fun (e : Model.edge) ->
      Fmt.pf ppf "    <transition>@.";
      Fmt.pf ppf "      <source ref=\"%s\"/>@." (loc_id e.Model.edge_src);
      Fmt.pf ppf "      <target ref=\"%s\"/>@." (loc_id e.Model.edge_dst);
      let guard = guard_text e in
      if guard <> "" then
        Fmt.pf ppf "      <label kind=\"guard\">%s</label>@." (escape guard);
      (match e.Model.edge_sync with
       | Model.Tau -> ()
       | Model.Send c ->
         Fmt.pf ppf "      <label kind=\"synchronisation\">%s!</label>@."
           (escape c)
       | Model.Recv c ->
         Fmt.pf ppf "      <label kind=\"synchronisation\">%s?</label>@."
           (escape c));
      let assignment = assignment_text e in
      if assignment <> "" then
        Fmt.pf ppf "      <label kind=\"assignment\">%s</label>@."
          (escape assignment);
      Fmt.pf ppf "    </transition>@.")
    a.Model.aut_edges;
  Fmt.pf ppf "  </template>@."

let network ppf (net : Model.network) =
  Fmt.pf ppf "<?xml version=\"1.0\" encoding=\"utf-8\"?>@.";
  Fmt.pf ppf
    "<!DOCTYPE nta PUBLIC '-//Uppaal Team//DTD Flat System 1.1//EN' \
     'http://www.it.uu.se/research/group/darts/uppaal/flat-1_1.dtd'>@.";
  Fmt.pf ppf "<nta>@.";
  Fmt.pf ppf "  <declaration>%s</declaration>@."
    (escape (declaration_text net));
  List.iteri (fun ti a -> pp_template ppf ti a) net.Model.net_automata;
  Fmt.pf ppf "  <system>system %s;</system>@."
    (String.concat ", "
       (List.map (fun a -> a.Model.aut_name) net.Model.net_automata));
  Fmt.pf ppf "</nta>@."

let to_string net = Fmt.str "%a" network net
