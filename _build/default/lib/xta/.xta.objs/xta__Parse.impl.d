lib/xta/parse.ml: Array Clockcons Expr Fmt Lexer List Model Ta
