lib/xta/lexer.ml: Fmt List String
