lib/xta/uppaal_xml.mli: Format Ta
