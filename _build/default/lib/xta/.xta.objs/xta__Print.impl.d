lib/xta/print.ml: Clockcons Expr Fmt List Model Ta
