lib/xta/lexer.mli: Format
