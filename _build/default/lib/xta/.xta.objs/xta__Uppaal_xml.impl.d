lib/xta/uppaal_xml.ml: Buffer Clockcons Expr Fmt List Model String Ta
