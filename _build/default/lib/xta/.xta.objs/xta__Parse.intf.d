lib/xta/parse.mli: Ta
