lib/xta/print.mli: Format Ta
