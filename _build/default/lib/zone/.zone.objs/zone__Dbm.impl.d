lib/zone/dbm.ml: Array Bound Fmt
