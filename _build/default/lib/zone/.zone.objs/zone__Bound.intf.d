lib/zone/bound.mli: Format
