lib/zone/dbm.mli: Bound Format
