lib/zone/bound.ml: Fmt
