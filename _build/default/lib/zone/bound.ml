type t = int

let infinity = max_int
let lt m = 2 * m
let le m = (2 * m) + 1
let zero = le 0
let constant b = b asr 1
let is_strict b = b land 1 = 0
let is_infinite b = b = infinity

let add b1 b2 =
  if b1 = infinity || b2 = infinity then infinity
  else (2 * (constant b1 + constant b2)) lor (b1 land b2 land 1)

let negate b =
  assert (b <> infinity);
  if is_strict b then le (-constant b) else lt (-constant b)

let min (a : t) (b : t) = if a < b then a else b

let pp ppf b =
  if is_infinite b then Fmt.string ppf "inf"
  else Fmt.pf ppf "%s%d" (if is_strict b then "<" else "<=") (constant b)
