(** Difference bounds for DBMs.

    A bound is either infinity or a pair of an integer constant and a
    strictness flag, encoded in a single [int]: [(< m)] as [2m] and
    [(<= m)] as [2m + 1].  With this encoding, comparing encoded values
    orders bounds correctly ([(< m)] is tighter than [(<= m)], both tighter
    than any bound with a larger constant), and addition is a few bit
    operations.  Infinity is [max_int]. *)

type t = int

val infinity : t
val lt : int -> t
val le : int -> t

(** [(<= 0)], the diagonal value of a canonical DBM. *)
val zero : t

(** Constant part.  Meaningless on {!infinity}. *)
val constant : t -> int

(** Whether the bound is strict.  Meaningless on {!infinity}. *)
val is_strict : t -> bool

val is_infinite : t -> bool

(** Bound addition: [(~1 m) + (~2 n)] is [< (m+n)] unless both are
    non-strict.  Adding {!infinity} yields {!infinity}. *)
val add : t -> t -> t

(** Negation used when conjoining [xj - xi ~ -m] facts:
    [negate (<= m) = (< -m)] and [negate (< m) = (<= -m)].
    Undefined on {!infinity}. *)
val negate : t -> t

val min : t -> t -> t

val pp : Format.formatter -> t -> unit
