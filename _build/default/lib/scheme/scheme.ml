type signal_kind =
  | Pulse
  | Sustained of int
  | Sustained_until_read

type signal_edge = Rising | Falling

type read_mechanism =
  | Interrupt of signal_edge
  | Polling of int

type delay_bounds = {
  delay_min : int;
  delay_max : int;
}

type mc_input = {
  in_signal : signal_kind;
  in_read : read_mechanism;
  in_delay : delay_bounds;
}

type mc_output = {
  out_signal : signal_kind;
  out_delay : delay_bounds;
}

type read_policy = Read_one | Read_all

type io_comm =
  | Shared_variable
  | Buffer of int * read_policy

type invocation =
  | Periodic of int
  | Aperiodic of int

type exec_window = {
  wcet_min : int;
  wcet_max : int;
}

type t = {
  is_name : string;
  is_inputs : (string * mc_input) list;
  is_outputs : (string * mc_output) list;
  is_input_comm : io_comm;
  is_output_comm : io_comm;
  is_invocation : invocation;
  is_exec : exec_window;
}

let delay delay_min delay_max = { delay_min; delay_max }

let interrupt_input ?(edge = Rising) in_delay =
  { in_signal = Pulse; in_read = Interrupt edge; in_delay }

let polling_input ?(signal = Sustained_until_read) ~interval in_delay =
  { in_signal = signal; in_read = Polling interval; in_delay }

let pulse_output out_delay = { out_signal = Pulse; out_delay }

let is1 ?(exec = { wcet_min = 1; wcet_max = 10 }) ~inputs ~outputs () =
  let input = interrupt_input (delay 1 3) in
  let output = pulse_output (delay 1 3) in
  { is_name = "IS1";
    is_inputs = List.map (fun m -> (m, input)) inputs;
    is_outputs = List.map (fun c -> (c, output)) outputs;
    is_input_comm = Buffer (5, Read_all);
    is_output_comm = Buffer (5, Read_all);
    is_invocation = Periodic 100;
    is_exec = exec }

let input_spec is m = List.assoc m is.is_inputs
let output_spec is c = List.assoc c is.is_outputs

let period_opt is =
  match is.is_invocation with
  | Periodic p -> Some p
  | Aperiodic _ -> None

let check is =
  let problems = ref [] in
  let fail fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  let check_delay owner d =
    if d.delay_min < 0 then fail "%s: negative delay_min" owner;
    if d.delay_max < d.delay_min then
      fail "%s: delay_max below delay_min" owner
  in
  let check_input (m, spec) =
    check_delay m spec.in_delay;
    (match spec.in_signal, spec.in_read with
     | Pulse, Polling _ ->
       fail
         "%s: a pulse signal has no sustained duration and cannot be \
          observed by polling; use an interrupt"
         m
     | Sustained d, Polling interval when interval > d ->
       fail
         "%s: polling interval %d exceeds the sustained duration %d; \
          signals can be missed"
         m interval d
     | (Pulse | Sustained _ | Sustained_until_read), (Interrupt _ | Polling _)
       -> ());
    (match spec.in_read with
     | Polling interval when interval <= 0 -> fail "%s: polling interval must be positive" m
     | Polling _ | Interrupt _ -> ())
  in
  let check_output (c, spec) = check_delay c spec.out_delay in
  List.iter check_input is.is_inputs;
  List.iter check_output is.is_outputs;
  let check_comm owner = function
    | Buffer (size, _) when size <= 0 -> fail "%s: buffer size must be positive" owner
    | Buffer _ | Shared_variable -> ()
  in
  check_comm "input communication" is.is_input_comm;
  check_comm "output communication" is.is_output_comm;
  (match is.is_invocation with
   | Periodic p when p <= 0 -> fail "invocation period must be positive"
   | Aperiodic gap when gap < 0 -> fail "re-invocation gap must be non-negative"
   | Periodic _ | Aperiodic _ -> ());
  if is.is_exec.wcet_min < 0 then fail "wcet_min must be non-negative";
  if is.is_exec.wcet_max < is.is_exec.wcet_min then
    fail "wcet_max below wcet_min";
  (match is.is_invocation with
   | Periodic p when is.is_exec.wcet_max > p ->
     fail "execution window %d exceeds the invocation period %d"
       is.is_exec.wcet_max p
   | Periodic _ | Aperiodic _ -> ());
  List.rev !problems

let pp_signal ppf = function
  | Pulse -> Fmt.string ppf "pulse"
  | Sustained d -> Fmt.pf ppf "sustained(%d)" d
  | Sustained_until_read -> Fmt.string ppf "sustained-until-read"

let pp_read ppf = function
  | Interrupt Rising -> Fmt.string ppf "interrupt(rising)"
  | Interrupt Falling -> Fmt.string ppf "interrupt(falling)"
  | Polling i -> Fmt.pf ppf "polling(%d)" i

let pp_delay ppf d = Fmt.pf ppf "[%d, %d]" d.delay_min d.delay_max

let pp_comm ppf = function
  | Shared_variable -> Fmt.string ppf "shared-variable"
  | Buffer (size, Read_one) -> Fmt.pf ppf "buffer(%d, read-one)" size
  | Buffer (size, Read_all) -> Fmt.pf ppf "buffer(%d, read-all)" size

let pp_invocation ppf = function
  | Periodic p -> Fmt.pf ppf "periodic(%d)" p
  | Aperiodic g -> Fmt.pf ppf "aperiodic(min-gap %d)" g

let pp ppf is =
  let pp_input ppf (m, s) =
    Fmt.pf ppf "%s: %a, %a, delay %a" m pp_signal s.in_signal pp_read s.in_read
      pp_delay s.in_delay
  in
  let pp_output ppf (c, s) =
    Fmt.pf ppf "%s: %a, delay %a" c pp_signal s.out_signal pp_delay s.out_delay
  in
  Fmt.pf ppf
    "@[<v 2>scheme %s@,inputs: %a@,outputs: %a@,input comm: %a@,\
     output comm: %a@,invocation: %a@,exec window: [%d, %d]@]"
    is.is_name
    Fmt.(list ~sep:semi pp_input)
    is.is_inputs
    Fmt.(list ~sep:semi pp_output)
    is.is_outputs pp_comm is.is_input_comm pp_comm is.is_output_comm
    pp_invocation is.is_invocation is.is_exec.wcet_min is.is_exec.wcet_max
