type t = {
  poll_interval : int;
  bolus_proc : Scheme.delay_bounds;
  empty_proc : Scheme.delay_bounds;
  output_proc : Scheme.delay_bounds;
  period : int;
  exec : Scheme.exec_window;
  buffer_size : int;
  prep_min : int;
  prep_max : int;
  infusion_hold : int;
  infusion_slack : int;
  alarm_max : int;
  pause_max : int;
  typ_bolus_proc : int * int;
  typ_output_proc : int * int;
  typ_exec : int * int;
}

let default =
  { poll_interval = 50;
    bolus_proc = Scheme.delay 5 340;
    empty_proc = Scheme.delay 1 3;
    output_proc = Scheme.delay 100 340;
    period = 100;
    exec = { Scheme.wcet_min = 20; wcet_max = 100 };
    buffer_size = 5;
    prep_min = 250;
    prep_max = 500;
    infusion_hold = 2000;
    infusion_slack = 400;
    alarm_max = 150;
    pause_max = 100;
    typ_bolus_proc = (10, 50);
    typ_output_proc = (100, 300);
    typ_exec = (20, 60) }

let scheme p =
  { Scheme.is_name = "IS1-gpca";
    is_inputs =
      [ ("m_BolusReq",
         Scheme.polling_input ~interval:p.poll_interval p.bolus_proc);
        ("m_EmptySyringe", Scheme.interrupt_input p.empty_proc);
        ("m_PauseReq", Scheme.interrupt_input p.empty_proc) ];
    is_outputs =
      [ ("c_StartInfusion", Scheme.pulse_output p.output_proc);
        ("c_StopInfusion", Scheme.pulse_output p.output_proc);
        ("c_Alarm", Scheme.pulse_output p.output_proc);
        ("c_PauseInfusion", Scheme.pulse_output p.output_proc) ];
    is_input_comm = Scheme.Buffer (p.buffer_size, Scheme.Read_all);
    is_output_comm = Scheme.Buffer (p.buffer_size, Scheme.Read_all);
    is_invocation = Scheme.Periodic p.period;
    is_exec = p.exec }

let req1_bound = 500
