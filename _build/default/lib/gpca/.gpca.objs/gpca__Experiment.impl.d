lib/gpca/experiment.ml: Analysis Fmt List Mc Model Params Scheme Sim String Transform
