lib/gpca/params.ml: Scheme
