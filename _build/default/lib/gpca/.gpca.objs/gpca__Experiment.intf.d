lib/gpca/experiment.mli: Format Mc Model Params Sim
