lib/gpca/model.mli: Params Ta Transform
