lib/gpca/model.ml: Clockcons List Model Params Scheme Ta Transform
