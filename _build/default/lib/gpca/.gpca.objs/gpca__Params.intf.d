lib/gpca/params.mli: Scheme
