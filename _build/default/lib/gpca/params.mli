(** Platform and software timing parameters of the GPCA infusion pump case
    study (Section VI).

    The paper's own parameter table lives in the unavailable technical
    report MS-CIS-14-11; the values here are reverse-engineered so that
    the Lemma-1/Lemma-2 analytic bounds reproduce the published Table I
    row exactly:

    - Input-Delay bound: poll 50 + input processing 340 + period 100 = 490 ms
    - Output-Delay bound: execution window 100 + output processing 340 = 440 ms
    - M-C bound: 490 + 440 + internal 500 = 1430 ms

    All times are in milliseconds.  The [delay_max] values play the role
    of tested WCETs, which dominate the delays observed in typical runs —
    the simulator draws typical-case delays from the [typ_*] intervals,
    which sit well inside the WCET windows, mirroring how the paper's
    measured delays sit well below the verified bounds. *)

type t = {
  poll_interval : int;       (** bolus-request polling interval *)
  bolus_proc : Scheme.delay_bounds;   (** Input-Device WCET window *)
  empty_proc : Scheme.delay_bounds;   (** empty-syringe interrupt processing *)
  output_proc : Scheme.delay_bounds;  (** Output-Device WCET window *)
  period : int;              (** code invocation period *)
  exec : Scheme.exec_window; (** invocation execution window *)
  buffer_size : int;         (** io-boundary buffer capacity *)
  prep_min : int;            (** earliest bolus start after the request is read *)
  prep_max : int;            (** latest bolus start (the PIM's 500 ms bound) *)
  infusion_hold : int;       (** infusion duration before stop *)
  infusion_slack : int;      (** stop-deadline slack for implementability *)
  alarm_max : int;           (** alarm deadline after empty-syringe *)
  pause_max : int;           (** motor-stop deadline after a pause request *)
  typ_bolus_proc : int * int;   (** typical input processing, for simulation *)
  typ_output_proc : int * int;  (** typical output processing, for simulation *)
  typ_exec : int * int;         (** typical execution time, for simulation *)
}

(** The Table-I-calibrated parameter set described above. *)
val default : t

(** The Section-VI scheme: Example 1's [IS1], except that the bolus
    request — a latched button register — is read by polling, and the
    device windows are the case study's. *)
val scheme : t -> Scheme.t

(** [REQ1]'s bound: a bolus must start within 500 ms of the request. *)
val req1_bound : int
