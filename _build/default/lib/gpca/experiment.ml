type verified = {
  v_mc : Mc.Explorer.sup_result;
  v_input : Mc.Explorer.sup_result;
  v_output : Mc.Explorer.sup_result;
  v_overflow_free : bool;
}

type analytic = {
  a_input : int;
  a_output : int;
  a_internal : int;
  a_mc : int;
}

type measured = {
  m_mc : Sim.Measure.stats;
  m_input : Sim.Measure.stats;
  m_output : Sim.Measure.stats;
  m_losses : int;
  m_req1_violations : int;
  m_scenarios : int;
}

type table1 = {
  t_analytic : analytic;
  t_verified : verified;
  t_measured : measured;
}

let analytic_bounds p =
  let scheme = Params.scheme p in
  let a_input = Analysis.Bounds.input_delay scheme Model.bolus_req in
  let a_output = Analysis.Bounds.output_delay scheme Model.start_infusion in
  let a_internal = p.Params.prep_max in
  { a_input; a_output; a_internal; a_mc = a_input + a_output + a_internal }

let verified_bounds ?ceiling p =
  let ceiling =
    match ceiling with
    | Some c -> c
    | None -> 2 * (analytic_bounds p).a_mc
  in
  let psm = Model.psm ~variant:Model.Bolus_only p in
  let net = psm.Transform.psm_net in
  let sup ~trigger ~response =
    (Analysis.Queries.max_delay net ~trigger ~response ~ceiling)
      .Analysis.Queries.dr_sup
  in
  let constraints = Analysis.Constraints.check_all psm in
  let overflow_free =
    List.for_all
      (fun (r : Analysis.Constraints.result) ->
        match r.Analysis.Constraints.c_status with
        | Analysis.Constraints.Satisfied -> true
        | Analysis.Constraints.Violated _ -> false
        | Analysis.Constraints.Unknown _ ->
          (* constraint 4's structural check; the bolus-only software has
             no internal transitions, so this does not occur *)
          false)
      constraints
  in
  { v_mc = sup ~trigger:Model.bolus_req ~response:Model.start_infusion;
    v_input =
      sup ~trigger:Model.bolus_req
        ~response:(Transform.Names.input_chan Model.bolus_req);
    v_output =
      sup
        ~trigger:(Transform.Names.output_chan Model.start_infusion)
        ~response:Model.start_infusion;
    v_overflow_free = overflow_free }

let typical p =
  let float_pair (lo, hi) = (float_of_int lo, float_of_int hi) in
  { Sim.Engine.typ_input_proc =
      (fun m ->
        if m = Model.bolus_req then float_pair p.Params.typ_bolus_proc
        else
          let d = (Scheme.input_spec (Params.scheme p) m).Scheme.in_delay in
          (float_of_int d.Scheme.delay_min, float_of_int d.Scheme.delay_max));
    typ_output_proc = (fun _ -> float_pair p.Params.typ_output_proc);
    typ_exec = float_pair p.Params.typ_exec }

let scenario_config ?(variant = Model.Bolus_only) p ~request_time =
  let pim = Model.pim ~variant p in
  let scheme =
    match variant with
    | Model.Full -> Params.scheme p
    | Model.Bolus_only ->
      let s = Params.scheme p in
      { s with
        Scheme.is_inputs =
          List.filter (fun (m, _) -> m = Model.bolus_req) s.Scheme.is_inputs;
        is_outputs =
          List.filter
            (fun (c, _) -> c <> Model.alarm)
            s.Scheme.is_outputs }
  in
  { Sim.Engine.cfg_pim = pim;
    cfg_scheme = scheme;
    cfg_typical = typical p;
    cfg_stimuli = [ (request_time, Model.bolus_req) ];
    cfg_horizon = request_time +. 8.0 *. float_of_int p.Params.period
                  +. float_of_int (2 * (analytic_bounds p).a_mc) }

let is_loss = function
  | Sim.Engine.Input_lost _ | Sim.Engine.Output_lost _ -> true
  | Sim.Engine.Env_signal _ | Sim.Engine.Input_inserted _
  | Sim.Engine.Input_read _ | Sim.Engine.Input_discarded _
  | Sim.Engine.Code_output _ | Sim.Engine.Output_visible _ -> false

let measure ?(scenarios = 60) ~seed p =
  let rng = Sim.Rng.create seed in
  let run_one index =
    let request_time =
      Sim.Rng.float_range rng 0.0 (float_of_int (10 * p.Params.period))
    in
    let config = scenario_config p ~request_time in
    let log = Sim.Engine.run ~seed:(seed + (1000 * (index + 1))) config in
    let losses = Sim.Measure.count log is_loss in
    match
      Sim.Measure.samples log ~trigger:Model.bolus_req
        ~response:Model.start_infusion
    with
    | [ sample ] -> (sample, losses)
    | samples ->
      Fmt.failwith "scenario %d: expected 1 bolus sample, got %d" index
        (List.length samples)
  in
  let observations = List.init scenarios run_one in
  let delays f =
    List.filter_map (fun (sample, _) -> f sample) observations
  in
  let force what = function
    | Some stats -> stats
    | None -> Fmt.failwith "no complete %s observations" what
  in
  let mc_delays = delays Sim.Measure.mc_delay in
  { m_mc = force "M-C" (Sim.Measure.stats_of mc_delays);
    m_input =
      force "input" (Sim.Measure.stats_of (delays Sim.Measure.input_delay));
    m_output =
      force "output" (Sim.Measure.stats_of (delays Sim.Measure.output_delay));
    m_losses = List.fold_left (fun acc (_, l) -> acc + l) 0 observations;
    m_req1_violations =
      List.length
        (List.filter
           (fun d -> d > float_of_int Params.req1_bound)
           mc_delays);
    m_scenarios = scenarios }

let table1 ?scenarios ~seed p =
  { t_analytic = analytic_bounds p;
    t_verified = verified_bounds p;
    t_measured = measure ?scenarios ~seed p }

let pp_sup = Mc.Explorer.pp_sup_result

let pp_table1 ppf t =
  let m = t.t_measured in
  Fmt.pf ppf
    "@[<v>TABLE I - THE EXPERIMENT RESULT (time unit: 1 ms)@,\
     @,\
     %-28s | %-12s | %-12s | %-12s | %s@,%s@,"
    "" "M-C delay" "Input delay" "Output delay" "Buffer overflow"
    (String.make 88 '-');
  Fmt.pf ppf "%-28s | %-12s | %-12s | %-12s | %s@,"
    "Verified upper bound (PSM)"
    (Fmt.str "%a" pp_sup t.t_verified.v_mc)
    (Fmt.str "%a" pp_sup t.t_verified.v_input)
    (Fmt.str "%a" pp_sup t.t_verified.v_output)
    (if t.t_verified.v_overflow_free then "not occurring" else "OCCURRING");
  Fmt.pf ppf "%-28s | %-12s | %-12s | %-12s | %s@,"
    "Analytic bound (Lemma 1/2)"
    (string_of_int t.t_analytic.a_mc)
    (string_of_int t.t_analytic.a_input)
    (string_of_int t.t_analytic.a_output) "-";
  let row label f =
    Fmt.pf ppf "%-28s | %-12.0f | %-12.0f | %-12.0f | %s@," label
      (f m.m_mc) (f m.m_input) (f m.m_output)
      (if m.m_losses = 0 then "not occurring" else "OCCURRING")
  in
  row "Measured delay (IMP) avg" (fun s -> s.Sim.Measure.st_avg);
  row "Measured delay (IMP) max" (fun s -> s.Sim.Measure.st_max);
  row "Measured delay (IMP) min" (fun s -> s.Sim.Measure.st_min);
  Fmt.pf ppf "@,REQ1 (500 ms) violated in %d of %d scenarios@]"
    m.m_req1_violations m.m_scenarios

type supplemental = {
  sup_alarm_pim : Mc.Explorer.sup_result;
  sup_pause_pim : Mc.Explorer.sup_result;
  sup_alarm_analytic : int;
  sup_pause_analytic : int;
  sup_alarm_psm : Mc.Explorer.sup_result option;
  sup_pause_psm : Mc.Explorer.sup_result option;
}

let supplemental ?(verify_psm = false) p =
  let scheme = Params.scheme p in
  let pim_net = Model.network ~variant:Model.Full p in
  let pim_sup ~trigger ~response =
    (Analysis.Queries.max_delay pim_net ~trigger ~response ~ceiling:2000)
      .Analysis.Queries.dr_sup
  in
  let analytic ~input ~output ~internal =
    Analysis.Bounds.relaxed_mc_delay scheme ~input ~output ~internal
  in
  let psm_sups =
    if not verify_psm then (None, None)
    else begin
      let psm = Model.psm ~variant:Model.Full p in
      let sup ~trigger ~response =
        Some
          ((Analysis.Queries.max_delay ~limit:2_000_000 psm.Transform.psm_net
              ~trigger ~response ~ceiling:2000)
             .Analysis.Queries.dr_sup)
      in
      ( sup ~trigger:Model.empty_syringe ~response:Model.alarm,
        sup ~trigger:Model.pause_req ~response:Model.pause_infusion )
    end
  in
  { sup_alarm_pim = pim_sup ~trigger:Model.empty_syringe ~response:Model.alarm;
    sup_pause_pim =
      pim_sup ~trigger:Model.pause_req ~response:Model.pause_infusion;
    sup_alarm_analytic =
      analytic ~input:Model.empty_syringe ~output:Model.alarm
        ~internal:p.Params.alarm_max;
    sup_pause_analytic =
      analytic ~input:Model.pause_req ~output:Model.pause_infusion
        ~internal:p.Params.pause_max;
    sup_alarm_psm = fst psm_sups;
    sup_pause_psm = snd psm_sups }

let pp_supplemental ppf s =
  let pp_opt ppf = function
    | Some sup -> pp_sup ppf sup
    | None -> Fmt.string ppf "(skipped)"
  in
  Fmt.pf ppf
    "@[<v>REQ2 empty-syringe -> alarm:  PIM %a | analytic %d | PSM %a@,\
     REQ3 pause request -> stopped: PIM %a | analytic %d | PSM %a@]"
    pp_sup s.sup_alarm_pim s.sup_alarm_analytic pp_opt s.sup_alarm_psm
    pp_sup s.sup_pause_pim s.sup_pause_analytic pp_opt s.sup_pause_psm
