(** The Section VI experiment: Table I of the paper.

    Three independent ways of looking at the same system:

    - {e analytic} bounds from the platform parameters (Lemmas 1 and 2);
    - {e verified} bounds from model checking the PSM (sup-queries over
      boundary monitors, plus the overflow safety checks);
    - {e measured} delays from executing the generated-code interpreter
      on the simulated platform over repeated bolus-request scenarios
      (the paper used 60 runs on the physical pump).

    The paper's headline result — every measured delay is bounded by the
    verified bound, while the original 500 ms requirement is violated —
    is checked by the test suite on top of this module. *)

type verified = {
  v_mc : Mc.Explorer.sup_result;      (** bolus request -> infusion start *)
  v_input : Mc.Explorer.sup_result;   (** bolus request -> code read *)
  v_output : Mc.Explorer.sup_result;  (** code output -> visible start *)
  v_overflow_free : bool;             (** constraints 1-3 all satisfied *)
}

type analytic = {
  a_input : int;
  a_output : int;
  a_internal : int;
  a_mc : int;
}

type measured = {
  m_mc : Sim.Measure.stats;
  m_input : Sim.Measure.stats;
  m_output : Sim.Measure.stats;
  m_losses : int;            (** lost inputs/outputs across all scenarios *)
  m_req1_violations : int;   (** scenarios with M-C delay > 500 *)
  m_scenarios : int;
}

type table1 = {
  t_analytic : analytic;
  t_verified : verified;
  t_measured : measured;
}

(** Model-check the PSM for the verified row.  [ceiling] defaults to a
    comfortable margin above the analytic bound. *)
val verified_bounds : ?ceiling:int -> Params.t -> verified

(** Lemma-1/2 bounds; [a_internal] is the PIM's verified 500 ms bound. *)
val analytic_bounds : Params.t -> analytic

(** [measure ~seed ~scenarios p] runs the platform simulator over
    [scenarios] independent single-bolus scenarios with randomised
    request phase and typical-case delays. *)
val measure : ?scenarios:int -> seed:int -> Params.t -> measured

(** The full Table I: analytic + verified + measured (60 scenarios, like
    the paper). *)
val table1 : ?scenarios:int -> seed:int -> Params.t -> table1

(** Typical-case distributions used by the simulator, derived from
    {!Params.t}; exposed so examples can build custom scenarios. *)
val typical : Params.t -> Sim.Engine.typical

(** One simulation scenario: a single bolus request at [request_time]. *)
val scenario_config :
  ?variant:Model.variant -> Params.t -> request_time:float -> Sim.Engine.config

val pp_table1 : Format.formatter -> table1 -> unit

(** {1 Supplemental requirements (beyond the paper's Table I)}

    The full GPCA variant carries two more bounded-response requirements
    from the GPCA safety-requirement set the paper cites:
    REQ2 — the empty-syringe alarm sounds within [alarm_max]; and
    REQ3 — a pause request stops the motor within [pause_max].  Both hold
    on the PIM by construction; on the PSM they relax by the same
    platform chain as REQ1. *)

type supplemental = {
  sup_alarm_pim : Mc.Explorer.sup_result;
  sup_pause_pim : Mc.Explorer.sup_result;
  sup_alarm_analytic : int;
  sup_pause_analytic : int;
  sup_alarm_psm : Mc.Explorer.sup_result option;
  sup_pause_psm : Mc.Explorer.sup_result option;
}

(** [supplemental ~verify_psm p]: PIM bounds and Lemma-1/2 sums for the
    alarm and pause chains; with [verify_psm] also the model-checked PSM
    bounds (takes minutes on the full variant). *)
val supplemental : ?verify_psm:bool -> Params.t -> supplemental

val pp_supplemental : Format.formatter -> supplemental -> unit
