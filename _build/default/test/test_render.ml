(* Tests for the rendering back-ends: ASCII timelines and UPPAAL XML. *)

open Ta

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1))
  in
  scan 0

(* --- Timeline ------------------------------------------------------------ *)

let sample_log =
  [ { Sim.Engine.at = 0.0; event = Sim.Engine.Env_signal "m_a" };
    { Sim.Engine.at = 10.0; event = Sim.Engine.Input_inserted "m_a" };
    { Sim.Engine.at = 20.0; event = Sim.Engine.Input_read "m_a" };
    { Sim.Engine.at = 30.0; event = Sim.Engine.Code_output "c_b" };
    { Sim.Engine.at = 40.0; event = Sim.Engine.Output_visible "c_b" } ]

let test_timeline_lanes () =
  let text = Sim.Timeline.render ~width:41 sample_log in
  let lines = String.split_on_char '\n' text in
  (* header + one lane per channel *)
  Alcotest.(check int) "header + 2 lanes (+ trailing)" 4 (List.length lines);
  (match lines with
   | [ _header; lane_m; lane_c; "" ] ->
     Alcotest.(check bool) "m lane named" true (contains lane_m "m_a");
     Alcotest.(check bool) "signal mark" true (contains lane_m "M");
     Alcotest.(check bool) "read mark" true (contains lane_m "R");
     Alcotest.(check bool) "output mark" true (contains lane_c "O");
     Alcotest.(check bool) "visible mark" true (contains lane_c "V");
     (* at width 41 over horizon 40, each mark lands on column = time *)
     let offset = String.index lane_m 'M' in
     Alcotest.(check char) "i at t=10" 'i' lane_m.[offset + 10];
     Alcotest.(check char) "R at t=20" 'R' lane_m.[offset + 20]
   | _ -> Alcotest.fail "unexpected line structure")

let test_timeline_collision () =
  let log =
    [ { Sim.Engine.at = 5.0; event = Sim.Engine.Env_signal "m_a" };
      { Sim.Engine.at = 5.1; event = Sim.Engine.Input_inserted "m_a" };
      { Sim.Engine.at = 10.0; event = Sim.Engine.Input_read "m_a" } ]
  in
  let text = Sim.Timeline.render ~width:10 log in
  Alcotest.(check bool) "collision shown as *" true (contains text "*")

let test_timeline_empty () =
  Alcotest.(check string) "empty" "(empty log)\n" (Sim.Timeline.render [])

(* --- UPPAAL XML ------------------------------------------------------------ *)

let lamp_net =
  let loc = Model.location and edge = Model.edge in
  let controller =
    Model.automaton ~name:"Controller" ~initial:"Off"
      [ loc "Off";
        loc ~inv:[ Clockcons.le "x" 50 ] "Switching";
        loc ~kind:Model.Committed "Commit";
        loc ~kind:Model.Urgent "Rush" ]
      [ edge ~sync:(Model.Recv "m_Press") ~resets:[ "x" ]
          ~updates:[ ("n", Expr.(var "n" + int 1)) ]
          ~pred:Expr.(lt (var "n") (int 3))
          "Off" "Switching";
        edge ~guard:[ Clockcons.ge "x" 10 ] ~sync:(Model.Send "c_On")
          "Switching" "Off" ]
  in
  Model.network ~name:"lamp" ~clocks:[ "x" ]
    ~vars:[ ("n", Model.int_var ~min:0 ~max:3 0) ]
    ~channels:[ ("m_Press", Model.Broadcast); ("c_On", Model.Binary) ]
    [ controller ]

let test_xml_structure () =
  let xml = Xta.Uppaal_xml.to_string lamp_net in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (Fmt.str "contains %S" fragment) true
        (contains xml fragment))
    [ "<?xml version=\"1.0\" encoding=\"utf-8\"?>";
      "<nta>";
      "</nta>";
      "<template>";
      "<name>Controller</name>";
      "broadcast chan m_Press;";
      "chan c_On;";
      "int[0,3] n = 0;";
      "<label kind=\"invariant\">x &lt;= 50</label>";
      "<label kind=\"synchronisation\">m_Press?</label>";
      "<label kind=\"synchronisation\">c_On!</label>";
      "<committed/>";
      "<urgent/>";
      "<init ref=\"id0_0\"/>";
      "<system>system Controller;</system>" ]

let test_xml_merged_guard () =
  let xml = Xta.Uppaal_xml.to_string lamp_net in
  (* data guard escaped and merged; UPPAAL assignment uses '=' *)
  Alcotest.(check bool) "data guard present" true
    (contains xml "n &lt; 3");
  Alcotest.(check bool) "clock guard present" true
    (contains xml "x &gt;= 10");
  Alcotest.(check bool) "reset + update merged" true
    (contains xml "x = 0, n = (n + 1)")

let test_xml_escaping () =
  Alcotest.(check bool) "no raw <= in labels" true
    (not (contains (Xta.Uppaal_xml.to_string lamp_net) "\">x <="))

let test_xml_psm_exports () =
  (* The most feature-dense network we generate must export without
     raising and mention every automaton. *)
  let psm = Gpca.Model.psm Gpca.Params.default in
  let xml = Xta.Uppaal_xml.to_string psm.Transform.psm_net in
  List.iter
    (fun (a : Model.automaton) ->
      Alcotest.(check bool) (a.Model.aut_name ^ " exported") true
        (contains xml ("<name>" ^ a.Model.aut_name ^ "</name>")))
    psm.Transform.psm_net.Model.net_automata

let suite =
  [ Alcotest.test_case "timeline lanes and marks" `Quick test_timeline_lanes;
    Alcotest.test_case "timeline collisions" `Quick test_timeline_collision;
    Alcotest.test_case "timeline of empty log" `Quick test_timeline_empty;
    Alcotest.test_case "xml structure" `Quick test_xml_structure;
    Alcotest.test_case "xml merged guards and assignments" `Quick
      test_xml_merged_guard;
    Alcotest.test_case "xml escaping" `Quick test_xml_escaping;
    Alcotest.test_case "xml exports the PSM" `Quick test_xml_psm_exports ]
